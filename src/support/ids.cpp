#include "support/ids.hpp"

namespace tetra {

const char* to_short_string(CallbackKind k) {
  switch (k) {
    case CallbackKind::Timer: return "T";
    case CallbackKind::Subscription: return "SC";
    case CallbackKind::Service: return "SV";
    case CallbackKind::Client: return "CL";
  }
  return "?";
}

const char* to_string(CallbackKind k) {
  switch (k) {
    case CallbackKind::Timer: return "timer";
    case CallbackKind::Subscription: return "subscriber";
    case CallbackKind::Service: return "service";
    case CallbackKind::Client: return "client";
  }
  return "unknown";
}

}  // namespace tetra
