// Identifier types shared across the tracing substrate and the synthesis
// core. They deliberately mirror what the real tracer can observe: OS
// process/thread ids, pseudo-address callback ids, and CPU indices.
#pragma once

#include <cstdint>
#include <functional>

namespace tetra {

/// OS process id. In ROS2's single-threaded-executor deployment each node
/// maps to exactly one executor thread, whose id the tracer uses as the
/// node identity (paper, probe P1).
using Pid = std::int32_t;

/// Callback identifier as the tracer would see it: the address of the
/// rcl/rclcpp handle object. Unique within a process for one run, but NOT
/// stable across runs — DAG merging must not rely on raw ids.
using CallbackId = std::uint64_t;

/// CPU index on the simulated machine.
using CpuId = std::int32_t;

/// Invalid-value sentinels.
inline constexpr Pid kInvalidPid = -1;

/// PID reported for an idle CPU (the kernel's swapper threads, pid 0).
inline constexpr Pid kIdlePid = 0;
inline constexpr CallbackId kInvalidCallbackId = 0;
inline constexpr CpuId kInvalidCpu = -1;

/// Kinds of ROS2 callbacks the paper's model distinguishes.
enum class CallbackKind : std::uint8_t {
  Timer,
  Subscription,
  Service,
  Client,
};

/// Short label used in DAG dumps and reports ("T", "SC", "SV", "CL").
const char* to_short_string(CallbackKind k);
/// Full label ("timer", "subscriber", "service", "client").
const char* to_string(CallbackKind k);

}  // namespace tetra
