#include "support/json_writer.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace tetra {

std::string JsonWriter::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::prepare_for_value() {
  if (stack_.empty()) return;
  if (stack_.back() == Ctx::Object && !pending_key_) {
    throw std::logic_error("JsonWriter: value in object without key");
  }
  if (stack_.back() == Ctx::Array) {
    if (!first_in_ctx_.back()) out_ += ',';
    first_in_ctx_.back() = false;
  }
  pending_key_ = false;
}

JsonWriter& JsonWriter::begin_object() {
  prepare_for_value();
  out_ += '{';
  stack_.push_back(Ctx::Object);
  first_in_ctx_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (stack_.empty() || stack_.back() != Ctx::Object || pending_key_) {
    throw std::logic_error("JsonWriter: mismatched end_object");
  }
  out_ += '}';
  stack_.pop_back();
  first_in_ctx_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  prepare_for_value();
  out_ += '[';
  stack_.push_back(Ctx::Array);
  first_in_ctx_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (stack_.empty() || stack_.back() != Ctx::Array) {
    throw std::logic_error("JsonWriter: mismatched end_array");
  }
  out_ += ']';
  stack_.pop_back();
  first_in_ctx_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  if (stack_.empty() || stack_.back() != Ctx::Object || pending_key_) {
    throw std::logic_error("JsonWriter: key outside object");
  }
  if (!first_in_ctx_.back()) out_ += ',';
  first_in_ctx_.back() = false;
  out_ += '"';
  out_ += escape(k);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  prepare_for_value();
  out_ += '"';
  out_ += escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  prepare_for_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  prepare_for_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  prepare_for_value();
  if (!std::isfinite(v)) {
    out_ += "null";
    return *this;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  prepare_for_value();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  prepare_for_value();
  out_ += "null";
  return *this;
}

const std::string& JsonWriter::str() const {
  if (!stack_.empty()) {
    throw std::logic_error("JsonWriter: document not closed");
  }
  return out_;
}

}  // namespace tetra
