#include "support/log.hpp"

#include <cstdio>

namespace tetra {

LogLevel Log::level_ = LogLevel::Warn;

void Log::set_level(LogLevel level) { level_ = level; }

LogLevel Log::level() { return level_; }

bool Log::enabled(LogLevel level) {
  return static_cast<int>(level) >= static_cast<int>(level_);
}

namespace {
const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

void Log::write(LogLevel level, std::string_view component,
                std::string_view message) {
  if (!enabled(level)) return;
  // Compose the whole line first and emit it with one fwrite: stdio only
  // guarantees atomicity per call, and the worker pool / shard threads log
  // concurrently — per-field fprintf would interleave fragments.
  std::string line;
  line.reserve(component.size() + message.size() + 16);
  line += '[';
  line += level_name(level);
  line += "] ";
  line += component;
  line += ": ";
  line += message;
  line += '\n';
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace tetra
