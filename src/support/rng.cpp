#include "support/rng.hpp"

#include <algorithm>
#include <cmath>

namespace tetra {

DurationDistribution DurationDistribution::constant(Duration value) {
  DurationDistribution d;
  d.shape_ = Shape::Constant;
  d.nominal_ = value;
  d.min_ = value;
  d.max_ = value;
  return d;
}

DurationDistribution DurationDistribution::uniform(Duration lo, Duration hi) {
  DurationDistribution d;
  d.shape_ = Shape::Uniform;
  d.nominal_ = Duration{(lo.count_ns() + hi.count_ns()) / 2};
  d.min_ = lo;
  d.max_ = hi;
  return d;
}

DurationDistribution DurationDistribution::normal(Duration mean, Duration stddev,
                                                  Duration lo, Duration hi) {
  DurationDistribution d;
  d.shape_ = Shape::Normal;
  d.nominal_ = mean;
  d.spread_ = stddev;
  d.min_ = lo;
  d.max_ = hi;
  return d;
}

DurationDistribution DurationDistribution::lognormal(Duration median, double sigma,
                                                     Duration lo, Duration hi) {
  DurationDistribution d;
  d.shape_ = Shape::LogNormal;
  d.nominal_ = median;
  d.sigma_ = sigma;
  d.min_ = lo;
  d.max_ = hi;
  return d;
}

DurationDistribution DurationDistribution::mixture(const DurationDistribution& a,
                                                   const DurationDistribution& b,
                                                   double weight_a) {
  DurationDistribution d;
  d.shape_ = Shape::Mixture;
  d.component_a_ = std::make_shared<DurationDistribution>(a);
  d.component_b_ = std::make_shared<DurationDistribution>(b);
  d.weight_a_ = weight_a;
  d.min_ = std::min(a.min_, b.min_);
  d.max_ = std::max(a.max_, b.max_);
  d.nominal_ = Duration{static_cast<std::int64_t>(
      weight_a * static_cast<double>(a.nominal_.count_ns()) +
      (1.0 - weight_a) * static_cast<double>(b.nominal_.count_ns()))};
  return d;
}

Duration DurationDistribution::sample(Rng& rng) const {
  if (shape_ == Shape::Mixture) {
    return rng.chance(weight_a_) ? component_a_->sample(rng)
                                 : component_b_->sample(rng);
  }
  std::int64_t ns = 0;
  switch (shape_) {
    case Shape::Mixture:  // handled above; keeps -Wswitch exhaustive
    case Shape::Constant:
      ns = nominal_.count_ns();
      break;
    case Shape::Uniform:
      ns = rng.uniform_int(min_.count_ns(), max_.count_ns());
      break;
    case Shape::Normal:
      ns = static_cast<std::int64_t>(
          rng.normal(static_cast<double>(nominal_.count_ns()),
                     static_cast<double>(spread_.count_ns())));
      break;
    case Shape::LogNormal: {
      const double mu = std::log(static_cast<double>(nominal_.count_ns()));
      ns = static_cast<std::int64_t>(rng.lognormal(mu, sigma_));
      break;
    }
  }
  // Clamp to the declared bounds; negative values are legitimate for
  // jitter distributions (bounds express the caller's validity range).
  ns = std::clamp(ns, min_.count_ns(), max_.count_ns());
  return Duration{ns};
}

DurationDistribution DurationDistribution::scaled(double factor) const {
  auto scale = [factor](Duration d) {
    return Duration{static_cast<std::int64_t>(static_cast<double>(d.count_ns()) * factor)};
  };
  DurationDistribution out = *this;
  out.nominal_ = scale(nominal_);
  out.spread_ = scale(spread_);
  out.min_ = scale(min_);
  out.max_ = scale(max_);
  if (shape_ == Shape::Mixture) {
    out.component_a_ =
        std::make_shared<DurationDistribution>(component_a_->scaled(factor));
    out.component_b_ =
        std::make_shared<DurationDistribution>(component_b_->scaled(factor));
  }
  return out;
}

}  // namespace tetra
