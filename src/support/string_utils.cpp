#include "support/string_utils.hpp"

#include <cstdarg>
#include <cstdio>
#include <stdexcept>

namespace tetra {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed < 0) {
    va_end(args2);
    throw std::runtime_error("format: encoding error");
  }
  std::string out(static_cast<std::size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  va_end(args2);
  return out;
}

std::string hex_id(std::uint64_t id) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "0x%llx", static_cast<unsigned long long>(id));
  return buf;
}

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < widths.size(); ++c) {
      line += "| ";
      const std::string& cell = c < row.size() ? row[c] : headers_[c];
      line += cell;
      line.append(widths[c] - cell.size() + 1, ' ');
    }
    line += "|\n";
    return line;
  };
  std::string out = emit_row(headers_);
  std::string rule;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule += "|";
    rule.append(widths[c] + 2, '-');
  }
  rule += "|\n";
  out += rule;
  for (const auto& row : rows_) out += emit_row(row);
  return out;
}

}  // namespace tetra
