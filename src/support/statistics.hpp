// Measurement statistics: the paper reports measured best-case (mBCET),
// average (mACET) and worst-case (mWCET) execution times per callback, and
// studies how those estimates evolve with the number of runs (Fig. 4).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "support/time.hpp"

namespace tetra {

/// Streaming min/max/mean/stddev accumulator (Welford).
class RunningStats {
 public:
  void add(double x);
  /// Merges another accumulator into this one (parallel Welford merge);
  /// used when DAGs from multiple runs are merged (paper §V option ii).
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  double min() const { return min_; }
  double max() const { return max_; }
  double mean() const { return mean_; }
  double variance() const;
  double stddev() const;

  /// Reconstructs an accumulator from a stored summary (deserialization);
  /// `variance` is the sample variance as reported by variance().
  static RunningStats from_summary(std::size_t count, double min, double max,
                                   double mean, double variance);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Execution-time statistics of one callback, in the units the paper
/// reports (derived from nanosecond samples).
struct ExecStats {
  void add(Duration sample);
  void merge(const ExecStats& other);

  std::size_t count() const { return stats.count(); }
  bool empty() const { return stats.empty(); }

  /// Measured best-case execution time.
  Duration mbcet() const { return Duration{static_cast<std::int64_t>(stats.min())}; }
  /// Measured average execution time.
  Duration macet() const { return Duration{static_cast<std::int64_t>(stats.mean())}; }
  /// Measured worst-case execution time.
  Duration mwcet() const { return Duration{static_cast<std::int64_t>(stats.max())}; }
  Duration stddev() const { return Duration{static_cast<std::int64_t>(stats.stddev())}; }

  RunningStats stats;
};

/// Fixed set of samples with exact quantiles; used where the full sample
/// vector is retained (per-run analyses, convergence studies).
class SampleSet {
 public:
  void add(double x) { samples_.push_back(x); sorted_ = false; }
  void add(Duration d) { add(static_cast<double>(d.count_ns())); }
  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double min() const;
  double max() const;
  double mean() const;
  double stddev() const;
  /// Exact quantile by linear interpolation, q in [0, 1].
  double quantile(double q) const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  void ensure_sorted() const;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

/// Equal-width histogram over a fixed range; used in reports of
/// execution-time profiles.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count() const { return counts_.size(); }
  std::size_t count_in_bin(std::size_t i) const { return counts_.at(i); }
  std::size_t total() const { return total_; }
  double bin_low(std::size_t i) const;
  double bin_high(std::size_t i) const;

  /// Renders a compact ASCII bar chart (one line per bin).
  std::string to_ascii(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace tetra
