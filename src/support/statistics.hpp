// Measurement statistics: the paper reports measured best-case (mBCET),
// average (mACET) and worst-case (mWCET) execution times per callback, and
// studies how those estimates evolve with the number of runs (Fig. 4).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "support/time.hpp"

namespace tetra {

/// Streaming min/max/mean/stddev accumulator (Welford).
class RunningStats {
 public:
  void add(double x);
  /// Merges another accumulator into this one (parallel Welford merge);
  /// used when DAGs from multiple runs are merged (paper §V option ii).
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  double min() const { return min_; }
  double max() const { return max_; }
  double mean() const { return mean_; }
  double variance() const;
  double stddev() const;

  /// Reconstructs an accumulator from a stored summary (deserialization);
  /// `variance` is the sample variance as reported by variance().
  static RunningStats from_summary(std::size_t count, double min, double max,
                                   double mean, double variance);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// NaN-safe, saturating conversion of a nanosecond double to int64. A
/// plain static_cast of a non-finite or out-of-range double is undefined
/// behaviour; summaries deserialized from external JSON can carry both.
std::int64_t checked_ns(double x);

/// Execution-time statistics of one callback, in the units the paper
/// reports (derived from nanosecond samples). Degenerate accumulators are
/// well-defined: empty stats report zero for every metric, a single
/// sample reports mBCET == mACET == mWCET == the sample with zero stddev.
struct ExecStats {
  void add(Duration sample);
  void merge(const ExecStats& other);

  std::size_t count() const { return stats.count(); }
  bool empty() const { return stats.empty(); }

  /// Measured best-case execution time.
  Duration mbcet() const { return Duration{checked_ns(stats.min())}; }
  /// Measured average execution time.
  Duration macet() const { return Duration{checked_ns(stats.mean())}; }
  /// Measured worst-case execution time.
  Duration mwcet() const { return Duration{checked_ns(stats.max())}; }
  Duration stddev() const { return Duration{checked_ns(stats.stddev())}; }

  RunningStats stats;
};

/// Fixed set of samples with exact quantiles; used where the full sample
/// vector is retained (per-run analyses, convergence studies).
class SampleSet {
 public:
  void add(double x) { samples_.push_back(x); sorted_ = false; }
  void add(Duration d) { add(static_cast<double>(d.count_ns())); }
  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double min() const;
  double max() const;
  double mean() const;
  double stddev() const;
  /// Exact quantile by linear interpolation, q in [0, 1].
  double quantile(double q) const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  void ensure_sorted() const;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

/// Result of a two-sample Kolmogorov–Smirnov test: the maximum distance
/// between the empirical CDFs of the two samples, plus the asymptotic
/// probability of seeing a distance at least that large when both samples
/// come from one distribution. The model regression sentinel uses this to
/// decide whether a callback's fresh execution-time window drifted from
/// the baseline model.
struct KsTestResult {
  double statistic = 0.0;  ///< sup |F1(x) - F2(x)|, in [0, 1]
  double p_value = 1.0;
  std::size_t n1 = 0;
  std::size_t n2 = 0;

  /// True when the null hypothesis (same distribution) is rejected at
  /// significance level `alpha` (strict: p < alpha).
  bool significant(double alpha) const { return p_value < alpha; }
};

/// Two-sample KS statistic, exact for the given samples (ties handled by
/// advancing both ECDFs past every equal value before comparing). Either
/// sample empty => 0.0 by definition (nothing to compare).
double ks_statistic(std::vector<double> a, std::vector<double> b);

/// Complementary CDF of the Kolmogorov distribution,
/// Q(lambda) = 2 * sum_{k>=1} (-1)^{k-1} exp(-2 k^2 lambda^2), clamped to
/// [0, 1]. Q(0+) -> 1, monotonically decreasing.
double kolmogorov_q(double lambda);

/// Two-sample KS test with the asymptotic p-value (Stephens' small-sample
/// correction on the effective sample size n1*n2/(n1+n2)). Degenerate
/// inputs never reject: an empty side or a single-point effective sample
/// yields p = 1. The p-value is approximate below ~8 samples per side;
/// callers gate on a minimum sample count for decisions that must not
/// false-alarm (see sentinel::SentinelOptions::min_samples).
KsTestResult two_sample_ks_test(const std::vector<double>& a,
                                const std::vector<double>& b);

/// Calibrates a p-value into an e-value with the square-root calibrator
/// e(p) = 1 / (2 sqrt(p)). The calibrator integrates to 1 over p in
/// [0, 1], so E[e] <= 1 under the null and the running product of
/// independent window e-values is a supermartingale; Ville's inequality
/// then bounds the chance the product ever reaches 1/alpha by alpha
/// (anytime-valid sequential testing). `max_e` > 0 clamps the per-window
/// contribution, which keeps one aberrant window (or an optimistic
/// small-sample KS p approximation) from dominating the accumulated
/// evidence; 0 leaves the calibrator unclamped.
double p_to_e_value(double p, double max_e = 0.0);

/// Log-evidence a sequential e-process must accumulate before alarming at
/// budget `alpha`: ln(1/alpha). Pairs with CusumAccumulator over
/// log(e-value) increments (reference 0).
double e_value_log_threshold(double alpha);

/// One-sided CUSUM accumulator: S_t = max(0, S_{t-1} + x_t - reference),
/// alarming when S_t >= threshold. The reference ("allowance") absorbs
/// in-control drift per observation; the restart at zero makes the
/// statistic forget stretches of clean data instead of banking credit
/// against a future change. With reference 0 and x_t = log(e-value) this
/// is a restarted e-process: evidence compounds across windows and the
/// crossing level e_value_log_threshold(alpha) keeps the per-run false
/// alarm probability at alpha (Ville).
class CusumAccumulator {
 public:
  CusumAccumulator() = default;
  CusumAccumulator(double reference, double threshold)
      : reference_(reference), threshold_(threshold) {}

  void observe(double x);
  void reset();

  double value() const { return s_; }
  double reference() const { return reference_; }
  double threshold() const { return threshold_; }
  bool crossed() const { return s_ >= threshold_; }
  /// Observations since construction or the last reset().
  std::size_t observations() const { return observations_; }

 private:
  double reference_ = 0.0;
  double threshold_ = 1.0;
  double s_ = 0.0;
  std::size_t observations_ = 0;
};

/// Equal-width histogram over a fixed range; used in reports of
/// execution-time profiles.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count() const { return counts_.size(); }
  std::size_t count_in_bin(std::size_t i) const { return counts_.at(i); }
  std::size_t total() const { return total_; }
  double bin_low(std::size_t i) const;
  double bin_high(std::size_t i) const;

  /// Renders a compact ASCII bar chart (one line per bin).
  std::string to_ascii(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace tetra
