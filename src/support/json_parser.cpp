#include "support/json_parser.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace tetra {

bool JsonValue::as_bool() const {
  if (type_ != Type::Bool) throw std::logic_error("JsonValue: not a bool");
  return bool_;
}

std::int64_t JsonValue::as_int() const {
  if (type_ == Type::Int) return int_;
  if (type_ == Type::Double) {
    // Only finite doubles inside the int64 range convert; NaN, "1e999"
    // (inf after strtod) and integers that overflowed into Double must
    // surface as a parse error, not as an undefined float-to-int cast.
    constexpr double kInt64Bound = 9223372036854775808.0;  // 2^63 exactly
    if (!std::isfinite(double_) || double_ < -kInt64Bound ||
        double_ >= kInt64Bound) {
      throw std::runtime_error("JsonValue: number not representable as int64");
    }
    return static_cast<std::int64_t>(double_);
  }
  throw std::logic_error("JsonValue: not a number");
}

double JsonValue::as_double() const {
  if (type_ == Type::Double) return double_;
  if (type_ == Type::Int) return static_cast<double>(int_);
  throw std::logic_error("JsonValue: not a number");
}

const std::string& JsonValue::as_string() const {
  if (type_ != Type::String) throw std::logic_error("JsonValue: not a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  if (type_ != Type::Array) throw std::logic_error("JsonValue: not an array");
  return array_;
}

const std::map<std::string, JsonValue>& JsonValue::as_object() const {
  if (type_ != Type::Object) throw std::logic_error("JsonValue: not an object");
  return object_;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const auto& obj = as_object();
  auto it = obj.find(key);
  if (it == obj.end()) throw std::out_of_range("JsonValue: missing key " + key);
  return it->second;
}

bool JsonValue::contains(const std::string& key) const {
  return is_object() && object_.count(key) > 0;
}

std::int64_t JsonValue::get_int_or(const std::string& key, std::int64_t fallback) const {
  return contains(key) ? at(key).as_int() : fallback;
}

std::string JsonValue::get_string_or(const std::string& key, std::string fallback) const {
  return contains(key) ? at(key).as_string() : std::move(fallback);
}

bool JsonValue::get_bool_or(const std::string& key, bool fallback) const {
  return contains(key) ? at(key).as_bool() : fallback;
}

JsonValue JsonValue::make_null() { return JsonValue{}; }

JsonValue JsonValue::make_bool(bool v) {
  JsonValue j;
  j.type_ = Type::Bool;
  j.bool_ = v;
  return j;
}

JsonValue JsonValue::make_int(std::int64_t v) {
  JsonValue j;
  j.type_ = Type::Int;
  j.int_ = v;
  return j;
}

JsonValue JsonValue::make_double(double v) {
  JsonValue j;
  j.type_ = Type::Double;
  j.double_ = v;
  return j;
}

JsonValue JsonValue::make_string(std::string v) {
  JsonValue j;
  j.type_ = Type::String;
  j.string_ = std::move(v);
  return j;
}

JsonValue JsonValue::make_array(std::vector<JsonValue> v) {
  JsonValue j;
  j.type_ = Type::Array;
  j.array_ = std::move(v);
  return j;
}

JsonValue JsonValue::make_object(std::map<std::string, JsonValue> v) {
  JsonValue j;
  j.type_ = Type::Object;
  j.object_ = std::move(v);
  return j;
}

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::size_t pos) : text_(text), pos_(pos) {}

  JsonValue parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue::make_string(parse_string());
      case 't':
        expect_word("true");
        return JsonValue::make_bool(true);
      case 'f':
        expect_word("false");
        return JsonValue::make_bool(false);
      case 'n':
        expect_word("null");
        return JsonValue::make_null();
      default:
        return parse_number();
    }
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  std::size_t pos() const { return pos_; }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw std::runtime_error("JSON parse error at offset " +
                             std::to_string(pos_) + ": " + what);
  }

  void expect_word(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) fail("expected keyword");
    pos_ += word.size();
  }

  char next_char() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_++];
  }

  std::string parse_string() {
    if (next_char() != '"') fail("expected string");
    std::string out;
    while (true) {
      char c = next_char();
      if (c == '"') break;
      if (c == '\\') {
        char esc = next_char();
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else fail("bad hex digit in \\u escape");
            }
            // Encode as UTF-8 (basic multilingual plane only).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
    return out;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    bool is_double = false;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '-' || c == '+') {
        // '-'/'+' only valid right after e/E, but we accept and let strtod
        // validate; exponents and fractions force double parsing.
        if (c == '.' || c == 'e' || c == 'E') is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected number");
    const std::string token(text_.substr(start, pos_ - start));
    if (!is_double) {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end == token.c_str() + token.size()) {
        return JsonValue::make_int(v);
      }
    }
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("malformed number");
    return JsonValue::make_double(d);
  }

  JsonValue parse_array() {
    ++pos_;  // consume '['
    std::vector<JsonValue> items;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return JsonValue::make_array(std::move(items));
    }
    while (true) {
      items.push_back(parse_value());
      skip_ws();
      char c = next_char();
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']'");
    }
    return JsonValue::make_array(std::move(items));
  }

  JsonValue parse_object() {
    ++pos_;  // consume '{'
    std::map<std::string, JsonValue> members;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return JsonValue::make_object(std::move(members));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      if (next_char() != ':') fail("expected ':'");
      members.emplace(std::move(key), parse_value());
      skip_ws();
      char c = next_char();
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}'");
    }
    return JsonValue::make_object(std::move(members));
  }

  std::string_view text_;
  std::size_t pos_;
};

}  // namespace

JsonValue parse_json(std::string_view text) {
  std::size_t pos = 0;
  JsonValue v = parse_json_prefix(text, pos);
  Parser tail(text, pos);
  tail.skip_ws();
  if (tail.pos() != text.size()) {
    throw std::runtime_error("JSON parse error: trailing garbage at offset " +
                             std::to_string(tail.pos()));
  }
  return v;
}

JsonValue parse_json_prefix(std::string_view text, std::size_t& pos) {
  Parser p(text, pos);
  JsonValue v = p.parse_value();
  pos = p.pos();
  return v;
}

}  // namespace tetra
