// Small string helpers shared across modules (topic-name annotation uses
// concatenation with stable separators; reports need fixed-width tables).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace tetra {

/// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> split(std::string_view s, char delim);

/// Joins strings with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// True if `s` ends with `suffix`.
bool ends_with(std::string_view s, std::string_view suffix);

/// printf-style formatting into std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Renders a pseudo-address callback id the way tracers print pointers.
std::string hex_id(std::uint64_t id);

/// A minimal fixed-column text table for report output.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);
  void add_row(std::vector<std::string> cells);
  std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tetra
