#include "support/time.hpp"

#include <cmath>
#include <cstdio>

namespace tetra {

std::string to_string(Duration d) {
  char buf[64];
  const double ns = static_cast<double>(d.count_ns());
  const double abs_ns = std::fabs(ns);
  if (abs_ns < 1e3) {
    std::snprintf(buf, sizeof buf, "%lldns", static_cast<long long>(d.count_ns()));
  } else if (abs_ns < 1e6) {
    std::snprintf(buf, sizeof buf, "%.3fus", ns / 1e3);
  } else if (abs_ns < 1e9) {
    std::snprintf(buf, sizeof buf, "%.3fms", ns / 1e6);
  } else {
    std::snprintf(buf, sizeof buf, "%.3fs", ns / 1e9);
  }
  return buf;
}

std::string to_string(TimePoint t) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6fs", t.to_sec());
  return buf;
}

}  // namespace tetra
