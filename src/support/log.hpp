// Leveled logging used by the substrate and the tracers. Quiet by default
// (benchmarks and tests control verbosity explicitly).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace tetra {

enum class LogLevel : std::uint8_t { Trace, Debug, Info, Warn, Error, Off };

/// Process-wide log configuration.
class Log {
 public:
  static void set_level(LogLevel level);
  static LogLevel level();
  static bool enabled(LogLevel level);

  /// Writes one log line ("[level] component: message") to stderr.
  static void write(LogLevel level, std::string_view component,
                    std::string_view message);

 private:
  static LogLevel level_;
};

}  // namespace tetra
