// Strong time types used throughout TETRA.
//
// All simulation timestamps are nanoseconds on a single monotonic clock,
// mirroring CLOCK_MONOTONIC timestamps that eBPF's bpf_ktime_get_ns()
// reports. Strong types keep durations and absolute points from mixing.
#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace tetra {

/// A span of time in nanoseconds. Signed so that differences are safe.
class Duration {
 public:
  constexpr Duration() = default;
  constexpr explicit Duration(std::int64_t ns) : ns_(ns) {}

  static constexpr Duration zero() { return Duration{0}; }
  static constexpr Duration ns(std::int64_t v) { return Duration{v}; }
  static constexpr Duration us(std::int64_t v) { return Duration{v * 1000}; }
  static constexpr Duration ms(std::int64_t v) { return Duration{v * 1'000'000}; }
  static constexpr Duration sec(std::int64_t v) { return Duration{v * 1'000'000'000}; }
  /// Builds a duration from a floating-point millisecond count (rounded).
  static constexpr Duration ms_f(double v) {
    return Duration{static_cast<std::int64_t>(v * 1e6 + (v >= 0 ? 0.5 : -0.5))};
  }
  static constexpr Duration max() {
    return Duration{std::numeric_limits<std::int64_t>::max()};
  }

  constexpr std::int64_t count_ns() const { return ns_; }
  constexpr double to_us() const { return static_cast<double>(ns_) / 1e3; }
  constexpr double to_ms() const { return static_cast<double>(ns_) / 1e6; }
  constexpr double to_sec() const { return static_cast<double>(ns_) / 1e9; }

  constexpr auto operator<=>(const Duration&) const = default;

  constexpr Duration operator+(Duration o) const { return Duration{ns_ + o.ns_}; }
  constexpr Duration operator-(Duration o) const { return Duration{ns_ - o.ns_}; }
  constexpr Duration operator-() const { return Duration{-ns_}; }
  constexpr Duration& operator+=(Duration o) { ns_ += o.ns_; return *this; }
  constexpr Duration& operator-=(Duration o) { ns_ -= o.ns_; return *this; }
  constexpr Duration operator*(std::int64_t k) const { return Duration{ns_ * k}; }
  constexpr Duration operator/(std::int64_t k) const { return Duration{ns_ / k}; }
  /// Integer ratio of two durations (how many `o` fit into *this).
  constexpr std::int64_t operator/(Duration o) const { return ns_ / o.ns_; }

 private:
  std::int64_t ns_ = 0;
};

/// An absolute instant on the simulation's monotonic clock.
class TimePoint {
 public:
  constexpr TimePoint() = default;
  constexpr explicit TimePoint(std::int64_t ns) : ns_(ns) {}

  static constexpr TimePoint zero() { return TimePoint{0}; }
  static constexpr TimePoint max() {
    return TimePoint{std::numeric_limits<std::int64_t>::max()};
  }

  constexpr std::int64_t count_ns() const { return ns_; }
  constexpr double to_ms() const { return static_cast<double>(ns_) / 1e6; }
  constexpr double to_sec() const { return static_cast<double>(ns_) / 1e9; }

  constexpr auto operator<=>(const TimePoint&) const = default;

  constexpr TimePoint operator+(Duration d) const { return TimePoint{ns_ + d.count_ns()}; }
  constexpr TimePoint operator-(Duration d) const { return TimePoint{ns_ - d.count_ns()}; }
  constexpr Duration operator-(TimePoint o) const { return Duration{ns_ - o.ns_}; }
  constexpr TimePoint& operator+=(Duration d) { ns_ += d.count_ns(); return *this; }

 private:
  std::int64_t ns_ = 0;
};

/// Renders a duration as a short human-readable string ("12.345ms").
std::string to_string(Duration d);
/// Renders a time point as seconds with millisecond precision ("1.234s").
std::string to_string(TimePoint t);

}  // namespace tetra
