#include "support/statistics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace tetra {

std::int64_t checked_ns(double x) {
  if (!std::isfinite(x)) return 0;
  // Largest doubles exactly representable on both sides of int64's range.
  constexpr double kLo = -9.2e18;
  constexpr double kHi = 9.2e18;
  if (x <= kLo) return std::numeric_limits<std::int64_t>::min();
  if (x >= kHi) return std::numeric_limits<std::int64_t>::max();
  return static_cast<std::int64_t>(x);
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

RunningStats RunningStats::from_summary(std::size_t count, double min,
                                        double max, double mean,
                                        double variance) {
  RunningStats s;
  s.n_ = count;
  s.min_ = min;
  s.max_ = max;
  s.mean_ = mean;
  s.m2_ = count >= 2 ? variance * static_cast<double>(count - 1) : 0.0;
  return s;
}

void ExecStats::add(Duration sample) {
  stats.add(static_cast<double>(sample.count_ns()));
}

void ExecStats::merge(const ExecStats& other) { stats.merge(other.stats); }

void SampleSet::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::min() const {
  if (empty()) throw std::logic_error("SampleSet::min on empty set");
  ensure_sorted();
  return samples_.front();
}

double SampleSet::max() const {
  if (empty()) throw std::logic_error("SampleSet::max on empty set");
  ensure_sorted();
  return samples_.back();
}

double SampleSet::mean() const {
  if (empty()) throw std::logic_error("SampleSet::mean on empty set");
  double sum = 0.0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

double SampleSet::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double s : samples_) acc += (s - m) * (s - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double SampleSet::quantile(double q) const {
  if (empty()) throw std::logic_error("SampleSet::quantile on empty set");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile out of [0,1]");
  ensure_sorted();
  if (samples_.size() == 1) return samples_.front();
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto idx = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(idx);
  if (idx + 1 >= samples_.size()) return samples_.back();
  return samples_[idx] * (1.0 - frac) + samples_[idx + 1] * frac;
}

double ks_statistic(std::vector<double> a, std::vector<double> b) {
  if (a.empty() || b.empty()) return 0.0;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  std::size_t ia = 0;
  std::size_t ib = 0;
  double d = 0.0;
  while (ia < a.size() && ib < b.size()) {
    const double x = std::min(a[ia], b[ib]);
    // Step both ECDFs past every sample equal to x, so tied values are
    // compared only after both sides consumed them.
    while (ia < a.size() && a[ia] == x) ++ia;
    while (ib < b.size() && b[ib] == x) ++ib;
    d = std::max(d, std::abs(static_cast<double>(ia) / na -
                             static_cast<double>(ib) / nb));
  }
  // Once one sample is exhausted its ECDF sits at 1; the remaining gap is
  // covered by the last in-loop comparison (the other ECDF only grows).
  return d;
}

double kolmogorov_q(double lambda) {
  // The alternating series converges fast for lambda >~ 0.3; below that
  // the distribution mass is indistinguishable from 1 at double precision.
  if (lambda <= 0.2) return 1.0;
  double sum = 0.0;
  double sign = 1.0;
  for (int k = 1; k <= 100; ++k) {
    const double term =
        std::exp(-2.0 * static_cast<double>(k) * static_cast<double>(k) *
                 lambda * lambda);
    sum += sign * term;
    sign = -sign;
    if (term < 1e-12) break;
  }
  return std::clamp(2.0 * sum, 0.0, 1.0);
}

KsTestResult two_sample_ks_test(const std::vector<double>& a,
                                const std::vector<double>& b) {
  KsTestResult result;
  result.n1 = a.size();
  result.n2 = b.size();
  if (a.empty() || b.empty()) return result;
  result.statistic = ks_statistic(a, b);
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  const double ne = na * nb / (na + nb);
  if (ne <= 1.0) return result;  // single-point effective sample: no power
  // Stephens (1970): lambda = (sqrt(ne) + 0.12 + 0.11/sqrt(ne)) * D keeps
  // the asymptotic Q usable down to small effective sample sizes.
  const double root = std::sqrt(ne);
  result.p_value =
      kolmogorov_q((root + 0.12 + 0.11 / root) * result.statistic);
  return result;
}

double p_to_e_value(double p, double max_e) {
  // Guard the calibrator's pole at p = 0: approximate p-values (e.g. the
  // small-sample KS tail) can underflow to exactly zero, which must not
  // turn into infinite evidence.
  const double clamped_p = std::clamp(p, 1e-300, 1.0);
  const double e = 0.5 / std::sqrt(clamped_p);
  if (max_e > 0.0) return std::min(e, max_e);
  return e;
}

double e_value_log_threshold(double alpha) {
  if (alpha <= 0.0 || alpha >= 1.0)
    throw std::invalid_argument("e_value_log_threshold needs alpha in (0,1)");
  return std::log(1.0 / alpha);
}

void CusumAccumulator::observe(double x) {
  s_ = std::max(0.0, s_ + x - reference_);
  ++observations_;
}

void CusumAccumulator::reset() {
  s_ = 0.0;
  observations_ = 0;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins == 0) throw std::invalid_argument("Histogram needs >=1 bin");
  if (hi <= lo) throw std::invalid_argument("Histogram range empty");
}

void Histogram::add(double x) {
  const double clamped = std::clamp(x, lo_, hi_);
  auto idx = static_cast<std::size_t>((clamped - lo_) / (hi_ - lo_) *
                                      static_cast<double>(counts_.size()));
  if (idx >= counts_.size()) idx = counts_.size() - 1;
  ++counts_[idx];
  ++total_;
}

double Histogram::bin_low(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

double Histogram::bin_high(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i + 1) / static_cast<double>(counts_.size());
}

std::string Histogram::to_ascii(std::size_t width) const {
  std::size_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::string out;
  char line[160];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = counts_[i] * width / peak;
    std::snprintf(line, sizeof line, "[%10.3f, %10.3f) %8zu ", bin_low(i),
                  bin_high(i), counts_[i]);
    out += line;
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

}  // namespace tetra
