// Minimal recursive-descent JSON parser used to read traces and
// configuration back from disk. Supports the full JSON grammar except
// surrogate-pair escapes; numbers are parsed as double or int64.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace tetra {

/// A parsed JSON value (tree-owning).
class JsonValue {
 public:
  enum class Type : std::uint8_t { Null, Bool, Int, Double, String, Array, Object };

  JsonValue() = default;

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::Null; }
  bool is_bool() const { return type_ == Type::Bool; }
  bool is_int() const { return type_ == Type::Int; }
  bool is_number() const { return type_ == Type::Int || type_ == Type::Double; }
  bool is_string() const { return type_ == Type::String; }
  bool is_array() const { return type_ == Type::Array; }
  bool is_object() const { return type_ == Type::Object; }

  /// Typed accessors; throw std::logic_error on type mismatch.
  bool as_bool() const;
  std::int64_t as_int() const;
  double as_double() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& as_array() const;
  const std::map<std::string, JsonValue>& as_object() const;

  /// Object member access; throws std::out_of_range if missing.
  const JsonValue& at(const std::string& key) const;
  /// True if object has the member.
  bool contains(const std::string& key) const;
  /// Object member or `fallback` when missing.
  std::int64_t get_int_or(const std::string& key, std::int64_t fallback) const;
  std::string get_string_or(const std::string& key, std::string fallback) const;
  bool get_bool_or(const std::string& key, bool fallback) const;

  static JsonValue make_null();
  static JsonValue make_bool(bool v);
  static JsonValue make_int(std::int64_t v);
  static JsonValue make_double(double v);
  static JsonValue make_string(std::string v);
  static JsonValue make_array(std::vector<JsonValue> v);
  static JsonValue make_object(std::map<std::string, JsonValue> v);

 private:
  Type type_ = Type::Null;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Parses one JSON document; throws std::runtime_error with a position on
/// malformed input. Trailing whitespace is allowed, trailing garbage is not.
JsonValue parse_json(std::string_view text);

/// Parses a prefix of `text` starting at `pos`, advancing `pos` past the
/// value. Used for JSONL streams.
JsonValue parse_json_prefix(std::string_view text, std::size_t& pos);

}  // namespace tetra
