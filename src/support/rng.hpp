// Deterministic random number generation for workload models.
//
// Every stochastic element of the substrate (execution-time distributions,
// transport latencies, interference) draws from an explicitly seeded Rng so
// experiments are reproducible run-to-run and machine-to-machine.
#pragma once

#include <cstdint>
#include <memory>
#include <random>

#include "support/time.hpp"

namespace tetra {

/// Thin wrapper over a 64-bit Mersenne twister with convenience samplers.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed'7e74'a11ceULL) : engine_(seed) {}

  /// Derives an independent child generator; used to give each node or
  /// callback its own stream so adding one sampler does not shift others.
  Rng fork() { return Rng{next_u64() ^ 0x9e37'79b9'7f4a'7c15ULL}; }

  std::uint64_t next_u64() { return engine_(); }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    std::uniform_int_distribution<std::int64_t> d(lo, hi);
    return d(engine_);
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    std::uniform_real_distribution<double> d(lo, hi);
    return d(engine_);
  }

  /// Standard normal scaled to (mean, stddev).
  double normal(double mean, double stddev) {
    std::normal_distribution<double> d(mean, stddev);
    return d(engine_);
  }

  /// Log-normal with the given parameters of the underlying normal.
  double lognormal(double mu, double sigma) {
    std::lognormal_distribution<double> d(mu, sigma);
    return d(engine_);
  }

  /// Bernoulli trial.
  bool chance(double p) {
    std::bernoulli_distribution d(p);
    return d(engine_);
  }

  /// Exponential with the given mean.
  double exponential(double mean) {
    std::exponential_distribution<double> d(1.0 / mean);
    return d(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// A reusable description of a random execution-time (or latency) profile.
/// Sampled values are truncated to [min, max] so measured best/worst cases
/// converge to designed bounds as sample counts grow (paper Fig. 4).
class DurationDistribution {
 public:
  enum class Shape : std::uint8_t {
    Constant,   ///< always `nominal`
    Uniform,    ///< uniform on [min, max]
    Normal,     ///< normal(nominal, spread), truncated to [min, max]
    LogNormal,  ///< lognormal calibrated so median==nominal, truncated
    Mixture,    ///< two-component mixture (e.g. bimodal solver profiles)
  };

  /// Constant profile (SYN callbacks use these; measured == designed).
  static DurationDistribution constant(Duration value);
  /// Uniform on [lo, hi].
  static DurationDistribution uniform(Duration lo, Duration hi);
  /// Truncated normal: mean `mean`, std dev `stddev`, clamped to [lo, hi].
  static DurationDistribution normal(Duration mean, Duration stddev,
                                     Duration lo, Duration hi);
  /// Truncated lognormal with median `median` and shape `sigma`, clamped.
  static DurationDistribution lognormal(Duration median, double sigma,
                                        Duration lo, Duration hi);
  /// Two-component mixture: draws from `a` with probability `weight_a`,
  /// else from `b`. Models bimodal profiles like iterative-solver
  /// callbacks that occasionally converge immediately.
  static DurationDistribution mixture(const DurationDistribution& a,
                                      const DurationDistribution& b,
                                      double weight_a);

  Duration sample(Rng& rng) const;

  Duration min() const { return min_; }
  Duration max() const { return max_; }
  Duration nominal() const { return nominal_; }
  Shape shape() const { return shape_; }

  /// Scales the whole profile (nominal and bounds) by `factor`; used to
  /// vary SYN interference loads across runs.
  DurationDistribution scaled(double factor) const;

 private:
  Shape shape_ = Shape::Constant;
  Duration nominal_ = Duration::zero();
  Duration spread_ = Duration::zero();  // stddev for Normal
  double sigma_ = 0.0;                  // for LogNormal
  Duration min_ = Duration::zero();
  Duration max_ = Duration::zero();
  // Mixture components (set only for Shape::Mixture).
  std::shared_ptr<DurationDistribution> component_a_;
  std::shared_ptr<DurationDistribution> component_b_;
  double weight_a_ = 0.0;
};

}  // namespace tetra
