// Minimal streaming JSON writer used by the trace serializers and the DAG
// exporters. Emits compact, valid JSON; no external dependencies.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace tetra {

/// Streaming writer that builds a JSON document into an internal string.
/// Nesting is validated at runtime; misuse throws std::logic_error.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Writes an object key; must be followed by a value or container.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view{v}); }
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// Convenience: key + value in one call.
  template <typename T>
  JsonWriter& kv(std::string_view k, T&& v) {
    key(k);
    return value(std::forward<T>(v));
  }

  /// The completed document; valid once all containers are closed.
  const std::string& str() const;

  /// Escapes a string for inclusion in JSON (without surrounding quotes).
  static std::string escape(std::string_view s);

 private:
  enum class Ctx : std::uint8_t { Object, Array };
  void prepare_for_value();

  std::string out_;
  std::vector<Ctx> stack_;
  std::vector<bool> first_in_ctx_;
  bool pending_key_ = false;
};

}  // namespace tetra
