// Algorithm 1 (paper §IV): extracting every callback of a ROS2 node and
// its architectural + timing attributes from the merged event trace.
//
// The extraction walks the node's ROS2 events chronologically. Because the
// node uses a single-threaded executor, everything between a CB-start
// event and the next CB-end event describes one callback instance. Service
// request/response topics are annotated with caller/client identities via
// the FindCaller/FindClient trace searches, so that multi-client services
// later split into per-caller DAG vertices.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/callback_record.hpp"
#include "core/exec_time.hpp"
#include "trace/event.hpp"
#include "trace/event_columns.hpp"

namespace tetra::core {

struct ExtractOptions {
  /// Also compute waiting times from sched_wakeup events (paper §VII).
  bool compute_waiting_times = false;
  /// Tracer-overhead compensation (src/overhead/): when positive, each
  /// instance's execution time is reduced by this per-probe-hit cost times
  /// the number of probe executions inside its [start, end] window
  /// (clamped at zero). Zero keeps measurements as-is.
  Duration compensate_per_hit = Duration::zero();
};

/// Topic-name suffix conventions by which Alg. 1 classifies dds_write
/// events as service requests/responses (mirrors the rq/…Request and
/// rr/…Reply naming of rmw implementations). The core module re-declares
/// them to stay independent of the middleware substrate.
const char* ros2_request_suffix();
const char* ros2_reply_suffix();
bool is_service_request_topic(const std::string& topic);
bool is_service_reply_topic(const std::string& topic);

/// Lookup key of the (topic, source-timestamp) matching searches.
using TopicTsKey = std::pair<std::string, std::int64_t>;

/// Everything one per-node extraction read outside the node's own event
/// stream. Recorded so incremental re-synthesis can invalidate exactly the
/// nodes whose inputs a new segment touches.
struct ExtractDeps {
  std::set<Pid> pids;                  ///< event streams walked
  std::set<TopicTsKey> write_keys;     ///< dds_write lookups (hit or miss)
  std::set<TopicTsKey> response_keys;  ///< take-response lookups
};

/// What one appended segment contributed, in invalidation terms.
struct AppendDelta {
  std::set<Pid> ros_pids;              ///< pids with new ROS2 events
  std::set<Pid> sched_pids;            ///< pids with new sched activity
  std::set<TopicTsKey> write_keys;     ///< new dds_write keys
  std::set<TopicTsKey> response_keys;  ///< new take-response keys
};

/// Pre-built indices over one trace, shared by per-node extractions and by
/// the caller/client resolution searches.
///
/// Storage is columnar (trace::EventColumns) and append-only: segments are
/// appended in arrival order and every per-pid / per-key index keeps its
/// entries sorted by (time, append-sequence). That order is exactly the
/// k-way-merge order of the segments (ties resolve to the earlier-ingested
/// segment, which always has the smaller sequence number), so an index
/// grown by appends is indistinguishable from one built over the fully
/// merged trace — the property incremental re-synthesis relies on.
class TraceIndex {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  TraceIndex() = default;

  /// Indexes a whole trace at once; copies + sorts when unsorted.
  explicit TraceIndex(const trace::EventVector& events);

  /// Appends one time-sorted segment (throws std::invalid_argument when
  /// unsorted) and returns what it touched.
  AppendDelta append(const trace::EventVector& sorted_segment);

  /// Same, straight from columnar storage (e.g. a mapped .ttb file).
  AppendDelta append(const trace::ColumnsView& view);

  /// Number of indexed events. Sequence numbers are [0, size()).
  std::size_t size() const { return columns_.size(); }

  /// Raw columnar view of the indexed events, in append order.
  trace::ColumnsView view() const { return columns_.view(); }

  /// Decodes one event (tests, diagnostics — not the hot path).
  trace::TraceEvent event_at(std::size_t seq) const;

  /// Sequences of ROS2 events of `pid`, chronological ((time, seq) order).
  const std::vector<std::size_t>& ros_events_of(Pid pid) const;

  /// Node name per PID from P1 events; empty map entry when unknown.
  const std::map<Pid, std::string>& nodes() const { return nodes_; }

  /// Sequence of the dds_write matching (topic, src_ts), or npos. When
  /// several match, the chronologically first one wins.
  std::size_t find_write(const std::string& topic, TimePoint src_ts) const;

  /// All take-response (P13) sequences matching (topic, src_ts),
  /// chronological.
  const std::vector<std::size_t>& find_take_responses(const std::string& topic,
                                                      TimePoint src_ts) const;

  /// The chronologically next P14 event of `pid` strictly after sequence
  /// `after` (in (time, seq) order), or npos.
  std::size_t next_take_type_erased_after(Pid pid, std::size_t after) const;

  const ExecTimeCalculator& exec_calc() const { return exec_calc_; }

 private:
  AppendDelta index_rows(std::size_t base);

  trace::EventColumns columns_;
  std::map<Pid, std::vector<std::size_t>> ros_by_pid_;
  std::map<TopicTsKey, std::size_t> writes_;
  std::map<TopicTsKey, std::vector<std::size_t>> take_responses_;
  std::map<Pid, std::vector<std::size_t>> p14_by_pid_;
  /// (time, seq) of the P1 event currently naming each pid — appends only
  /// replace a name when the newcomer is chronologically no earlier.
  std::map<Pid, std::pair<std::int64_t, std::size_t>> node_event_;
  std::map<Pid, std::string> nodes_;
  ExecTimeCalculator exec_calc_;
  static const std::vector<std::size_t> kEmpty;
};

/// FindCaller (Alg. 1, line 13): resolves which callback issued the
/// service request that the take_request event at `take_seq` consumed.
/// Returns kInvalidCallbackId when unresolvable. When `deps` is given,
/// records everything the search read.
CallbackId find_caller(const TraceIndex& index, std::size_t take_seq,
                       ExtractDeps* deps = nullptr);

/// FindClient (Alg. 1, line 20): resolves which client callback a service
/// response dds_write is dispatched to. Returns kInvalidCallbackId when
/// unresolvable.
CallbackId find_client(const TraceIndex& index, std::size_t write_seq,
                       ExtractDeps* deps = nullptr);

/// Runs Algorithm 1 for one node. `pid` must be a node discovered via P1.
/// When `deps` is given it is reset and filled with the extraction's full
/// read set (for incremental invalidation).
CallbackList extract_callbacks(const TraceIndex& index, Pid pid,
                               const ExtractOptions& options = {},
                               ExtractDeps* deps = nullptr);

/// Convenience: extraction for every node discovered in the trace.
std::vector<CallbackList> extract_all_nodes(const TraceIndex& index,
                                            const ExtractOptions& options = {});

/// Merges per-worker-PID CBlists of one node into a single per-node list.
/// A multi-threaded executor fires P1 once per worker, so Algorithm 1
/// yields one (strictly sequential) list per worker PID; callbacks that
/// migrated between workers are re-unified here via the Alg. 1 matching
/// rule (same id; services also same annotated in-topic), with their
/// instances re-sorted chronologically. Single-threaded nodes pass
/// through untouched. Must run before normalize_labels (ordinals count
/// callbacks per node, not per worker).
void merge_worker_lists(std::vector<CallbackList>& lists);

/// Post-extraction normalization: assigns stable labels
/// ("<node>/<kind><ordinal>", ordinals by callback-id order within the
/// node) and rewrites topic annotations from run-specific raw callback ids
/// to those labels. Required before cross-run DAG merging, since raw ids
/// are pseudo-addresses that change run to run.
void normalize_labels(std::vector<CallbackList>& lists);

}  // namespace tetra::core
