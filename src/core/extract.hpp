// Algorithm 1 (paper §IV): extracting every callback of a ROS2 node and
// its architectural + timing attributes from the merged event trace.
//
// The extraction walks the node's ROS2 events chronologically. Because the
// node uses a single-threaded executor, everything between a CB-start
// event and the next CB-end event describes one callback instance. Service
// request/response topics are annotated with caller/client identities via
// the FindCaller/FindClient trace searches, so that multi-client services
// later split into per-caller DAG vertices.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/callback_record.hpp"
#include "core/exec_time.hpp"
#include "trace/event.hpp"
#include "trace/event_view.hpp"

namespace tetra::core {

struct ExtractOptions {
  /// Also compute waiting times from sched_wakeup events (paper §VII).
  bool compute_waiting_times = false;
};

/// Topic-name suffix conventions by which Alg. 1 classifies dds_write
/// events as service requests/responses (mirrors the rq/…Request and
/// rr/…Reply naming of rmw implementations). The core module re-declares
/// them to stay independent of the middleware substrate.
const char* ros2_request_suffix();
const char* ros2_reply_suffix();
bool is_service_request_topic(const std::string& topic);
bool is_service_reply_topic(const std::string& topic);

/// Pre-built indices over one trace, shared by per-node extractions and by
/// the caller/client resolution searches.
///
/// The index builds over a SortedEventView: an already-sorted EventVector
/// is borrowed without copying (the caller keeps it alive), segmented
/// ingestion feeds a k-way-merged owning view, and only unsorted input
/// pays for a sorted copy.
class TraceIndex {
 public:
  /// Borrows `events` when already sorted; copies + sorts otherwise. The
  /// vector must outlive the index.
  explicit TraceIndex(const trace::EventVector& events);

  /// Builds over a prepared view (moved in; borrowed storage must outlive
  /// the index).
  explicit TraceIndex(trace::SortedEventView view);

  const trace::SortedEventView& events() const { return view_; }

  /// Indices (into events()) of ROS2 events of `pid`, time-ordered.
  const std::vector<std::size_t>& ros_events_of(Pid pid) const;

  /// Node name per PID from P1 events; empty map entry when unknown.
  const std::map<Pid, std::string>& nodes() const { return nodes_; }

  /// The dds_write event matching (topic, src_ts), if any.
  const trace::TraceEvent* find_write(const std::string& topic,
                                      TimePoint src_ts) const;

  /// All take-response (P13) event indices matching (topic, src_ts).
  std::vector<std::size_t> find_take_responses(const std::string& topic,
                                               TimePoint src_ts) const;

  /// The chronologically next P14 event of `pid` at/after index `from`.
  const trace::TraceEvent* next_take_type_erased(Pid pid,
                                                 std::size_t from) const;

  const ExecTimeCalculator& exec_calc() const { return exec_calc_; }

 private:
  using TopicTsKey = std::pair<std::string, std::int64_t>;

  trace::SortedEventView view_;
  std::map<Pid, std::vector<std::size_t>> ros_by_pid_;
  std::map<TopicTsKey, std::size_t> writes_;
  std::map<TopicTsKey, std::vector<std::size_t>> take_responses_;
  std::map<Pid, std::string> nodes_;
  ExecTimeCalculator exec_calc_;
  static const std::vector<std::size_t> kEmpty;
};

/// FindCaller (Alg. 1, line 13): resolves which callback issued the
/// service request that a take_request event consumed. Returns
/// kInvalidCallbackId when unresolvable.
CallbackId find_caller(const TraceIndex& index,
                       const trace::TraceEvent& take_request);

/// FindClient (Alg. 1, line 20): resolves which client callback a service
/// response dds_write is dispatched to. Returns kInvalidCallbackId when
/// unresolvable.
CallbackId find_client(const TraceIndex& index, std::size_t write_event_index);

/// Runs Algorithm 1 for one node. `pid` must be a node discovered via P1.
CallbackList extract_callbacks(const TraceIndex& index, Pid pid,
                               const ExtractOptions& options = {});

/// Convenience: extraction for every node discovered in the trace.
std::vector<CallbackList> extract_all_nodes(const TraceIndex& index,
                                            const ExtractOptions& options = {});

/// Merges per-worker-PID CBlists of one node into a single per-node list.
/// A multi-threaded executor fires P1 once per worker, so Algorithm 1
/// yields one (strictly sequential) list per worker PID; callbacks that
/// migrated between workers are re-unified here via the Alg. 1 matching
/// rule (same id; services also same annotated in-topic), with their
/// instances re-sorted chronologically. Single-threaded nodes pass
/// through untouched. Must run before normalize_labels (ordinals count
/// callbacks per node, not per worker).
void merge_worker_lists(std::vector<CallbackList>& lists);

/// Post-extraction normalization: assigns stable labels
/// ("<node>/<kind><ordinal>", ordinals by callback-id order within the
/// node) and rewrites topic annotations from run-specific raw callback ids
/// to those labels. Required before cross-run DAG merging, since raw ids
/// are pseudo-addresses that change run to run.
void normalize_labels(std::vector<CallbackList>& lists);

}  // namespace tetra::core
