// Model exporters: Graphviz DOT (nodes colored per ROS2 node, edges
// labeled with topics — the rendering style of the paper's Fig. 3) and a
// JSON document for downstream analysis tools.
#pragma once

#include <string>

#include "core/dag.hpp"

namespace tetra::core {

struct DotOptions {
  /// Include mBCET/mACET/mWCET in vertex labels.
  bool show_timing = true;
  /// Include estimated periods on timer vertices.
  bool show_periods = true;
  /// Rankdir (LR matches the paper's horizontal chains).
  std::string rankdir = "LR";
};

/// Renders the DAG as a Graphviz document. Callbacks of the same ROS2 node
/// share a fill color and are grouped in a cluster; AND junctions render
/// as small diamonds labeled "&"; OR junctions get a dashed border.
std::string to_dot(const Dag& dag, const DotOptions& options = {});

/// Serializes the DAG (vertices with statistics, edges with topics) as a
/// JSON object {"vertices": [...], "edges": [...]}.
std::string to_json(const Dag& dag);

/// Parses a DAG back from to_json output (statistics are restored as
/// count/min/mean/max summaries, sufficient for reports and merging).
Dag dag_from_json(const std::string& text);

/// Renders the per-callback execution-time table (the paper's Table II
/// layout: CB, node, mBCET, mACET, mWCET in milliseconds).
std::string to_exec_time_table(const Dag& dag);

}  // namespace tetra::core
