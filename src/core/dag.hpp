// The synthesized timing model: a directed acyclic graph whose vertices
// are callbacks (plus zero-execution-time AND junctions for message
// synchronization) and whose edges are topic-matched precedence relations
// (paper §IV, "DAG synthesis").
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "support/ids.hpp"
#include "support/statistics.hpp"
#include "support/time.hpp"

namespace tetra::core {

struct DagVertex {
  /// Stable unique key ("<node>/<kind><ordinal>", services additionally
  /// suffixed with "@<caller label>", AND junctions "<node>/&<n>").
  std::string key;
  std::string node_name;
  CallbackKind kind = CallbackKind::Timer;
  bool is_and_junction = false;
  /// More than one producer feeds this vertex's in-topic: the vertex
  /// triggers when EITHER produces (paper's OR-junction marking).
  bool is_or_junction = false;
  bool is_sync_member = false;

  std::string in_topic;                 ///< normalized-annotated; may be empty
  std::vector<std::string> out_topics;  ///< normalized-annotated

  /// Measured execution-time statistics; AND junctions have none (they
  /// model zero-execution-time tasks).
  ExecStats stats;
  std::size_t instance_count = 0;
  std::optional<Duration> period;  ///< estimated, timers only

  // Learned executor concurrency (core/concurrency.hpp) ---------------------
  /// Learned serialization group within the node: the model (and its
  /// replay) serializes vertices sharing (node_name, exec_group). The
  /// constraint is conservative — a true mutually-exclusive group is
  /// never split across groups, but sparse observations may merge
  /// distinct groups (extra serialization, never invented concurrency).
  /// A single-threaded node has one group for all its callbacks.
  int exec_group = 0;
  /// Observed overlapping itself (reentrant callback group member); the
  /// exec_group of a reentrant vertex carries no serialization.
  bool reentrant = false;
  /// Executor worker count learned for the vertex's node (max observed
  /// concurrent callbacks; 1 = the paper's single-threaded assumption).
  int node_workers = 1;

  Duration mbcet() const { return stats.empty() ? Duration::zero() : stats.mbcet(); }
  Duration macet() const { return stats.empty() ? Duration::zero() : stats.macet(); }
  Duration mwcet() const { return stats.empty() ? Duration::zero() : stats.mwcet(); }
};

struct DagEdge {
  std::string from;   ///< vertex key
  std::string to;     ///< vertex key
  std::string topic;  ///< normalized-annotated topic carrying the relation

  auto operator<=>(const DagEdge&) const = default;
};

class Dag {
 public:
  /// Adds a vertex; if the key exists, merges attributes and statistics
  /// (union of out-topics, summed instances, merged ExecStats).
  DagVertex& add_or_merge_vertex(const DagVertex& vertex);

  /// Adds an edge if not already present. Endpoints must exist.
  void add_edge(const std::string& from, const std::string& to,
                const std::string& topic);

  bool has_vertex(const std::string& key) const;
  const DagVertex* find_vertex(const std::string& key) const;
  DagVertex* find_vertex(const std::string& key);

  const std::vector<DagVertex>& vertices() const { return vertices_; }
  const std::vector<DagEdge>& edges() const { return edges_; }

  std::size_t vertex_count() const { return vertices_.size(); }
  std::size_t edge_count() const { return edges_.size(); }

  /// Outgoing / incoming adjacency by vertex key.
  std::vector<const DagEdge*> out_edges(const std::string& key) const;
  std::vector<const DagEdge*> in_edges(const std::string& key) const;

  /// Vertices with no incoming edges (chain sources).
  std::vector<const DagVertex*> sources() const;
  /// Vertices with no outgoing edges (chain sinks).
  std::vector<const DagVertex*> sinks() const;

  /// True when the graph has no directed cycle.
  bool is_acyclic() const;

  /// Merges another DAG into this one (paper §V, option ii): vertex and
  /// edge union; per-vertex statistics merged across runs.
  void merge(const Dag& other);

 private:
  std::size_t index_of(const std::string& key) const;

  std::vector<DagVertex> vertices_;
  std::map<std::string, std::size_t> index_;
  std::vector<DagEdge> edges_;
  std::set<DagEdge> edge_set_;
};

/// Merges many DAGs (one per run/trace) into a single model.
Dag merge_dags(const std::vector<Dag>& dags);

/// Multi-mode model (paper §V option iv): one DAG per operating mode
/// (e.g. "city", "highway"), plus a combined view annotated with the
/// modes each vertex appears in.
class MultiModeDag {
 public:
  void add_mode(const std::string& mode, Dag dag);
  /// Merges a run's DAG into the given mode (creates the mode if new).
  void merge_into_mode(const std::string& mode, const Dag& dag);

  std::vector<std::string> modes() const;
  const Dag* mode_dag(const std::string& mode) const;

  /// Union of all modes' DAGs.
  Dag combined() const;
  /// Modes in which the vertex appears.
  std::vector<std::string> modes_of_vertex(const std::string& key) const;

 private:
  std::map<std::string, Dag> by_mode_;
};

}  // namespace tetra::core
