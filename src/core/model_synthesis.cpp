#include "core/model_synthesis.hpp"

namespace tetra::core {

const CallbackRecord* TimingModel::find_callback(const std::string& label) const {
  for (const auto& list : node_callbacks) {
    if (const auto* record = list.find_by_label(label)) return record;
  }
  return nullptr;
}

// ModelSynthesizer's method definitions live in src/api/synthesizer_shim.cpp:
// the deprecated facade delegates to api::SynthesisSession, and the api layer
// sits above core — keeping the definitions there preserves the one-way
// layering (no core source includes api headers).

}  // namespace tetra::core
