#include "core/model_synthesis.hpp"

#include <stdexcept>

#include "trace/merge.hpp"

namespace tetra::core {

const CallbackRecord* TimingModel::find_callback(const std::string& label) const {
  for (const auto& list : node_callbacks) {
    if (const auto* record = list.find_by_label(label)) return record;
  }
  return nullptr;
}

TimingModel ModelSynthesizer::synthesize(const trace::EventVector& events) const {
  TraceIndex index(events);
  TimingModel model;
  model.node_callbacks = extract_all_nodes(index, options_.extract);
  normalize_labels(model.node_callbacks);
  model.dag = build_dag(model.node_callbacks, options_.dag);
  return model;
}

TimingModel ModelSynthesizer::synthesize_merged(
    const std::vector<trace::EventVector>& traces) const {
  return synthesize(trace::merge_unsorted(traces));
}

Dag ModelSynthesizer::synthesize_and_merge(
    const std::vector<trace::EventVector>& traces) const {
  Dag merged;
  for (const auto& trace : traces) {
    merged.merge(synthesize(trace).dag);
  }
  return merged;
}

MultiModeDag ModelSynthesizer::synthesize_multi_mode(
    const std::vector<trace::EventVector>& traces,
    const std::vector<std::string>& modes) const {
  if (traces.size() != modes.size()) {
    throw std::invalid_argument(
        "synthesize_multi_mode: traces/modes size mismatch");
  }
  MultiModeDag multi;
  for (std::size_t i = 0; i < traces.size(); ++i) {
    multi.merge_into_mode(modes[i], synthesize(traces[i]).dag);
  }
  return multi;
}

}  // namespace tetra::core
