#include "core/model_synthesis.hpp"

namespace tetra::core {

const CallbackRecord* TimingModel::find_callback(const std::string& label) const {
  for (const auto& list : node_callbacks) {
    if (const auto* record = list.find_by_label(label)) return record;
  }
  return nullptr;
}

}  // namespace tetra::core
