#include "core/dag.hpp"

#include <algorithm>
#include <stdexcept>

namespace tetra::core {

DagVertex& Dag::add_or_merge_vertex(const DagVertex& vertex) {
  auto it = index_.find(vertex.key);
  if (it == index_.end()) {
    index_.emplace(vertex.key, vertices_.size());
    vertices_.push_back(vertex);
    return vertices_.back();
  }
  DagVertex& existing = vertices_[it->second];
  existing.is_or_junction |= vertex.is_or_junction;
  existing.is_sync_member |= vertex.is_sync_member;
  for (const auto& topic : vertex.out_topics) {
    if (std::find(existing.out_topics.begin(), existing.out_topics.end(),
                  topic) == existing.out_topics.end()) {
      existing.out_topics.push_back(topic);
    }
  }
  if (existing.in_topic.empty()) existing.in_topic = vertex.in_topic;
  existing.stats.merge(vertex.stats);
  existing.instance_count += vertex.instance_count;
  if (!existing.period.has_value()) existing.period = vertex.period;
  return existing;
}

void Dag::add_edge(const std::string& from, const std::string& to,
                   const std::string& topic) {
  if (!has_vertex(from) || !has_vertex(to)) {
    throw std::logic_error("Dag::add_edge: unknown endpoint " + from + " -> " +
                           to);
  }
  DagEdge edge{from, to, topic};
  if (edge_set_.insert(edge).second) {
    edges_.push_back(std::move(edge));
  }
}

bool Dag::has_vertex(const std::string& key) const {
  return index_.count(key) > 0;
}

const DagVertex* Dag::find_vertex(const std::string& key) const {
  auto it = index_.find(key);
  return it == index_.end() ? nullptr : &vertices_[it->second];
}

DagVertex* Dag::find_vertex(const std::string& key) {
  auto it = index_.find(key);
  return it == index_.end() ? nullptr : &vertices_[it->second];
}

std::size_t Dag::index_of(const std::string& key) const {
  auto it = index_.find(key);
  if (it == index_.end()) throw std::out_of_range("Dag: unknown vertex " + key);
  return it->second;
}

std::vector<const DagEdge*> Dag::out_edges(const std::string& key) const {
  std::vector<const DagEdge*> out;
  for (const auto& edge : edges_) {
    if (edge.from == key) out.push_back(&edge);
  }
  return out;
}

std::vector<const DagEdge*> Dag::in_edges(const std::string& key) const {
  std::vector<const DagEdge*> out;
  for (const auto& edge : edges_) {
    if (edge.to == key) out.push_back(&edge);
  }
  return out;
}

std::vector<const DagVertex*> Dag::sources() const {
  std::vector<const DagVertex*> out;
  for (const auto& vertex : vertices_) {
    if (in_edges(vertex.key).empty()) out.push_back(&vertex);
  }
  return out;
}

std::vector<const DagVertex*> Dag::sinks() const {
  std::vector<const DagVertex*> out;
  for (const auto& vertex : vertices_) {
    if (out_edges(vertex.key).empty()) out.push_back(&vertex);
  }
  return out;
}

bool Dag::is_acyclic() const {
  // Kahn's algorithm.
  std::map<std::string, std::size_t> in_degree;
  for (const auto& vertex : vertices_) in_degree[vertex.key] = 0;
  for (const auto& edge : edges_) ++in_degree[edge.to];
  std::vector<std::string> frontier;
  for (const auto& [key, deg] : in_degree) {
    if (deg == 0) frontier.push_back(key);
  }
  std::size_t visited = 0;
  while (!frontier.empty()) {
    std::string key = std::move(frontier.back());
    frontier.pop_back();
    ++visited;
    for (const auto* edge : out_edges(key)) {
      if (--in_degree[edge->to] == 0) frontier.push_back(edge->to);
    }
  }
  return visited == vertices_.size();
}

void Dag::merge(const Dag& other) {
  for (const auto& vertex : other.vertices()) {
    add_or_merge_vertex(vertex);
  }
  for (const auto& edge : other.edges()) {
    add_edge(edge.from, edge.to, edge.topic);
  }
}

Dag merge_dags(const std::vector<Dag>& dags) {
  Dag merged;
  for (const auto& dag : dags) merged.merge(dag);
  return merged;
}

void MultiModeDag::add_mode(const std::string& mode, Dag dag) {
  by_mode_[mode] = std::move(dag);
}

void MultiModeDag::merge_into_mode(const std::string& mode, const Dag& dag) {
  by_mode_[mode].merge(dag);
}

std::vector<std::string> MultiModeDag::modes() const {
  std::vector<std::string> out;
  out.reserve(by_mode_.size());
  for (const auto& [mode, dag] : by_mode_) out.push_back(mode);
  return out;
}

const Dag* MultiModeDag::mode_dag(const std::string& mode) const {
  auto it = by_mode_.find(mode);
  return it == by_mode_.end() ? nullptr : &it->second;
}

Dag MultiModeDag::combined() const {
  Dag merged;
  for (const auto& [mode, dag] : by_mode_) merged.merge(dag);
  return merged;
}

std::vector<std::string> MultiModeDag::modes_of_vertex(
    const std::string& key) const {
  std::vector<std::string> out;
  for (const auto& [mode, dag] : by_mode_) {
    if (dag.has_vertex(key)) out.push_back(mode);
  }
  return out;
}

}  // namespace tetra::core
