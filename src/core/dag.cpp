#include "core/dag.hpp"

#include <algorithm>
#include <stdexcept>

namespace tetra::core {

DagVertex& Dag::add_or_merge_vertex(const DagVertex& vertex) {
  auto it = index_.find(vertex.key);
  if (it == index_.end()) {
    index_.emplace(vertex.key, vertices_.size());
    vertices_.push_back(vertex);
    return vertices_.back();
  }
  DagVertex& existing = vertices_[it->second];
  existing.is_or_junction |= vertex.is_or_junction;
  existing.is_sync_member |= vertex.is_sync_member;
  for (const auto& topic : vertex.out_topics) {
    if (std::find(existing.out_topics.begin(), existing.out_topics.end(),
                  topic) == existing.out_topics.end()) {
      existing.out_topics.push_back(topic);
    }
  }
  if (existing.in_topic.empty()) existing.in_topic = vertex.in_topic;
  existing.stats.merge(vertex.stats);
  existing.instance_count += vertex.instance_count;
  if (!existing.period.has_value()) existing.period = vertex.period;
  // Concurrency: workers and reentrancy are monotone observations; the
  // group partition itself is reconciled in merge() (ordinals from
  // different runs are not comparable one vertex at a time).
  existing.reentrant |= vertex.reentrant;
  existing.node_workers = std::max(existing.node_workers, vertex.node_workers);
  return existing;
}

void Dag::add_edge(const std::string& from, const std::string& to,
                   const std::string& topic) {
  if (!has_vertex(from) || !has_vertex(to)) {
    throw std::logic_error("Dag::add_edge: unknown endpoint " + from + " -> " +
                           to);
  }
  DagEdge edge{from, to, topic};
  if (edge_set_.insert(edge).second) {
    edges_.push_back(std::move(edge));
  }
}

bool Dag::has_vertex(const std::string& key) const {
  return index_.count(key) > 0;
}

const DagVertex* Dag::find_vertex(const std::string& key) const {
  auto it = index_.find(key);
  return it == index_.end() ? nullptr : &vertices_[it->second];
}

DagVertex* Dag::find_vertex(const std::string& key) {
  auto it = index_.find(key);
  return it == index_.end() ? nullptr : &vertices_[it->second];
}

std::size_t Dag::index_of(const std::string& key) const {
  auto it = index_.find(key);
  if (it == index_.end()) throw std::out_of_range("Dag: unknown vertex " + key);
  return it->second;
}

std::vector<const DagEdge*> Dag::out_edges(const std::string& key) const {
  std::vector<const DagEdge*> out;
  for (const auto& edge : edges_) {
    if (edge.from == key) out.push_back(&edge);
  }
  return out;
}

std::vector<const DagEdge*> Dag::in_edges(const std::string& key) const {
  std::vector<const DagEdge*> out;
  for (const auto& edge : edges_) {
    if (edge.to == key) out.push_back(&edge);
  }
  return out;
}

std::vector<const DagVertex*> Dag::sources() const {
  std::vector<const DagVertex*> out;
  for (const auto& vertex : vertices_) {
    if (in_edges(vertex.key).empty()) out.push_back(&vertex);
  }
  return out;
}

std::vector<const DagVertex*> Dag::sinks() const {
  std::vector<const DagVertex*> out;
  for (const auto& vertex : vertices_) {
    if (out_edges(vertex.key).empty()) out.push_back(&vertex);
  }
  return out;
}

bool Dag::is_acyclic() const {
  // Kahn's algorithm.
  std::map<std::string, std::size_t> in_degree;
  for (const auto& vertex : vertices_) in_degree[vertex.key] = 0;
  for (const auto& edge : edges_) ++in_degree[edge.to];
  std::vector<std::string> frontier;
  for (const auto& [key, deg] : in_degree) {
    if (deg == 0) frontier.push_back(key);
  }
  std::size_t visited = 0;
  while (!frontier.empty()) {
    std::string key = std::move(frontier.back());
    frontier.pop_back();
    ++visited;
    for (const auto* edge : out_edges(key)) {
      if (--in_degree[edge->to] == 0) frontier.push_back(edge->to);
    }
  }
  return visited == vertices_.size();
}

namespace {

/// (node, run-local group ordinal) -> member vertex keys, reentrant and
/// junction vertices excluded (they carry no serialization constraint).
std::map<std::pair<std::string, int>, std::vector<std::string>>
collect_groups(const std::vector<DagVertex>& vertices) {
  std::map<std::pair<std::string, int>, std::vector<std::string>> groups;
  for (const auto& vertex : vertices) {
    if (vertex.reentrant || vertex.is_and_junction) continue;
    groups[{vertex.node_name, vertex.exec_group}].push_back(vertex.key);
  }
  return groups;
}

}  // namespace

void Dag::merge(const Dag& other) {
  // Group ordinals of the two runs are independent namespaces, so the
  // partitions must be snapshotted before the vertex merge and re-unioned
  // afterwards: the merged groups are the finest partition both runs'
  // serialization observations allow.
  const auto self_groups = collect_groups(vertices_);
  const auto other_groups = collect_groups(other.vertices());

  for (const auto& vertex : other.vertices()) {
    add_or_merge_vertex(vertex);
  }
  for (const auto& edge : other.edges()) {
    add_edge(edge.from, edge.to, edge.topic);
  }

  // Union-find over vertex keys: members of one group in either run end
  // up in one merged group. Unlike infer_concurrency this union is
  // unconditional — the model retains each run's partition but not its
  // pairwise overlap observations, so cross-run reconciliation is
  // conservative (it can only serialize more, never less, than either
  // run's own partition).
  std::map<std::string, std::string> parent;
  auto find = [&parent](std::string key) {
    while (true) {
      auto it = parent.find(key);
      if (it == parent.end() || it->second == key) return key;
      key = it->second;
    }
  };
  for (const auto* groups : {&self_groups, &other_groups}) {
    for (const auto& [node_group, members] : *groups) {
      for (std::size_t i = 1; i < members.size(); ++i) {
        parent[find(members[i])] = find(members[0]);
      }
    }
  }

  // Renumber dense per node in vertex order; reentrant vertices keep one
  // group of their own each.
  std::map<std::string, int> next_group_of_node;
  std::map<std::string, int> group_of_root;
  std::map<std::string, int> workers_of_node;
  for (auto& vertex : vertices_) {
    workers_of_node[vertex.node_name] = std::max(
        workers_of_node[vertex.node_name], vertex.node_workers);
    if (vertex.is_and_junction) continue;
    int& next_group = next_group_of_node[vertex.node_name];
    if (vertex.reentrant) {
      vertex.exec_group = next_group++;
      continue;
    }
    auto [it, inserted] =
        group_of_root.emplace(find(vertex.key), next_group);
    if (inserted) ++next_group;
    vertex.exec_group = it->second;
  }
  // Worker counts are per executor, i.e. per node: propagate the max.
  for (auto& vertex : vertices_) {
    vertex.node_workers = workers_of_node[vertex.node_name];
  }
}

Dag merge_dags(const std::vector<Dag>& dags) {
  Dag merged;
  for (const auto& dag : dags) merged.merge(dag);
  return merged;
}

void MultiModeDag::add_mode(const std::string& mode, Dag dag) {
  by_mode_[mode] = std::move(dag);
}

void MultiModeDag::merge_into_mode(const std::string& mode, const Dag& dag) {
  by_mode_[mode].merge(dag);
}

std::vector<std::string> MultiModeDag::modes() const {
  std::vector<std::string> out;
  out.reserve(by_mode_.size());
  for (const auto& [mode, dag] : by_mode_) out.push_back(mode);
  return out;
}

const Dag* MultiModeDag::mode_dag(const std::string& mode) const {
  auto it = by_mode_.find(mode);
  return it == by_mode_.end() ? nullptr : &it->second;
}

Dag MultiModeDag::combined() const {
  Dag merged;
  for (const auto& [mode, dag] : by_mode_) merged.merge(dag);
  return merged;
}

std::vector<std::string> MultiModeDag::modes_of_vertex(
    const std::string& key) const {
  std::vector<std::string> out;
  for (const auto& [mode, dag] : by_mode_) {
    if (dag.has_vertex(key)) out.push_back(mode);
  }
  return out;
}

}  // namespace tetra::core
