// Algorithm 2 (paper §IV): measuring a callback instance's execution time
// by intersecting its [start, end] window with the thread's on-CPU
// segments reconstructed from sched_switch events.
//
// Two implementations are provided:
//  - exec_time_naive: a line-by-line transcription of the paper's
//    pseudocode (O(#sched events) per call) — kept as the reference
//    oracle for differential testing;
//  - ExecTimeCalculator: an indexed implementation (per-PID sorted
//    switch lists, binary-searched windows) used by the production
//    extraction pass.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "support/ids.hpp"
#include "support/time.hpp"
#include "trace/event.hpp"
#include "trace/event_columns.hpp"
#include "trace/event_view.hpp"

namespace tetra::core {

/// Paper Algorithm 2, verbatim semantics. `sched_events` must be sorted by
/// time and may contain events of any PID/CPU.
Duration exec_time_naive(TimePoint start, TimePoint end, Pid pid,
                         const trace::EventVector& sched_events);

/// Indexed Algorithm 2 plus the sched_wakeup-based waiting-time extension
/// (paper §VII).
class ExecTimeCalculator {
 public:
  /// Empty calculator; grow it with append_columns.
  ExecTimeCalculator() = default;

  /// Builds per-PID indices from any event stream (non-sched events are
  /// ignored). Events need not be sorted.
  explicit ExecTimeCalculator(const trace::EventVector& events);

  /// Same, over a sorted view (no intermediate event copy).
  explicit ExecTimeCalculator(const trace::SortedEventView& view);

  /// Indexes the sched events of columnar rows [from, view.count). Rows of
  /// one batch must be time-sorted; per-PID lists stay sorted by (time,
  /// append order), matching what a full rebuild over the merged trace
  /// would produce.
  void append_columns(const trace::ColumnsView& view, std::size_t from);

  /// Execution time of the window [start, end] for the thread `pid`:
  /// the sum of its on-CPU segments inside the window. The thread is
  /// assumed on-CPU at both `start` and `end` (callback start/end events
  /// are emitted from the running thread).
  Duration exec_time(TimePoint start, TimePoint end, Pid pid) const;

  /// The most recent sched_wakeup of `pid` at or before `t`, if any.
  std::optional<TimePoint> last_wakeup_before(Pid pid, TimePoint t) const;

  /// Number of preemptions (switch-outs in Runnable state) of `pid`
  /// within [start, end] — useful diagnostics for reports.
  std::size_t preemptions_in(TimePoint start, TimePoint end, Pid pid) const;

 private:
  struct Switch {
    TimePoint time;
    bool in;  ///< true: pid got the CPU; false: pid left the CPU
    trace::ThreadRunState prev_state;  ///< only meaningful when !in
  };
  const std::vector<Switch>* switches_for(Pid pid) const;
  void index_event(const trace::TraceEvent& event);
  void finalize_indices();

  std::map<Pid, std::vector<Switch>> switches_;
  std::map<Pid, std::vector<TimePoint>> wakeups_;
};

}  // namespace tetra::core
