#include "core/concurrency.hpp"

#include <algorithm>
#include <queue>
#include <utility>

namespace tetra::core {

namespace {

/// Union-find over small per-node label sets.
class DisjointSets {
 public:
  explicit DisjointSets(std::size_t n) : parent_(n) {
    for (std::size_t i = 0; i < n; ++i) parent_[i] = i;
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) x = parent_[x] = parent_[parent_[x]];
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

struct Interval {
  TimePoint start;
  TimePoint end;
  std::size_t label = 0;
};

}  // namespace

std::map<std::string, NodeConcurrency> infer_concurrency(
    const std::vector<CallbackList>& lists) {
  std::map<std::string, NodeConcurrency> result;

  for (const CallbackList& list : lists) {
    NodeConcurrency node;

    // Records sharing a label (a multi-caller service's per-caller
    // entries) are one callback: pool their instances.
    std::vector<std::string> labels;
    std::map<std::string, std::size_t> label_index;
    std::vector<Interval> intervals;
    for (const CallbackRecord& record : list.records) {
      auto [it, inserted] =
          label_index.emplace(record.label, labels.size());
      if (inserted) labels.push_back(record.label);
      for (std::size_t i = 0; i < record.start_times.size(); ++i) {
        intervals.push_back(Interval{record.start_times[i],
                                     i < record.end_times.size()
                                         ? record.end_times[i]
                                         : record.start_times[i],
                                     it->second});
      }
    }
    if (labels.empty()) continue;

    std::sort(intervals.begin(), intervals.end(),
              [](const Interval& a, const Interval& b) {
                return a.start != b.start ? a.start < b.start : a.end < b.end;
              });

    // Sweep: the active set is bounded by the executor's worker count, so
    // the pairwise conflict recording stays cheap.
    const std::size_t n = labels.size();
    std::vector<char> conflict(n * n, 0);
    std::vector<char> reentrant(n, 0);
    using Active = std::pair<std::int64_t, std::size_t>;  // (end ns, label)
    std::priority_queue<Active, std::vector<Active>, std::greater<>> active;
    std::size_t max_active = intervals.empty() ? 0 : 1;
    for (const Interval& iv : intervals) {
      // Half-open intervals: an instance starting exactly when another
      // ends is sequential, not concurrent.
      while (!active.empty() && active.top().first <= iv.start.count_ns()) {
        active.pop();
      }
      std::vector<Active> overlapping;
      overlapping.reserve(active.size());
      while (!active.empty()) {
        overlapping.push_back(active.top());
        active.pop();
      }
      for (const Active& a : overlapping) {
        if (a.second == iv.label) {
          reentrant[iv.label] = 1;
        } else {
          conflict[a.second * n + iv.label] = 1;
          conflict[iv.label * n + a.second] = 1;
        }
        active.push(a);
      }
      active.push({iv.end.count_ns(), iv.label});
      max_active = std::max(max_active, active.size());
    }
    node.observed_workers = static_cast<int>(std::max<std::size_t>(
        1, max_active));

    // Mutually-exclusive groups: components of the never-overlapped graph
    // over the non-reentrant callbacks. Deliberately NOT conflict-aware:
    // with sparse observations a rarely-firing callback can bridge two
    // components whose other members were observed overlapping, and the
    // component union then serializes an observed-concurrent pair. The
    // alternative — refusing unions that would merge conflicting
    // members — can instead *split* a true mutually-exclusive group
    // (claiming concurrency the executor forbids), which is the unsound
    // direction for a serialization constraint. Components only ever err
    // toward extra serialization and converge to the true partition as
    // overlap evidence accumulates.
    DisjointSets sets(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (reentrant[i]) continue;
      for (std::size_t j = i + 1; j < n; ++j) {
        if (reentrant[j] || conflict[i * n + j]) continue;
        sets.unite(i, j);
      }
    }

    // Dense group ids in first-appearance order; reentrant callbacks each
    // form their own (unserialized) group.
    std::map<std::size_t, int> group_of_root;
    int next_group = 0;
    for (std::size_t i = 0; i < n; ++i) {
      CallbackConcurrency cc;
      if (reentrant[i]) {
        cc.group = next_group++;
        cc.reentrant = true;
      } else {
        auto [it, inserted] =
            group_of_root.emplace(sets.find(i), next_group);
        if (inserted) ++next_group;
        cc.group = it->second;
      }
      node.by_label[labels[i]] = cc;
    }
    node.group_count = std::max(1, next_group);

    result[list.node_name] = std::move(node);
  }
  return result;
}

}  // namespace tetra::core
