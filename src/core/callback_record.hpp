// CBlist entries: the per-callback architectural and timing attributes
// Algorithm 1 extracts from the traces (paper §IV).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "support/ids.hpp"
#include "support/statistics.hpp"
#include "support/time.hpp"

namespace tetra::core {

/// Separator used when a callback id is concatenated to a topic name to
/// disambiguate per-caller service requests and per-client responses
/// (Alg. 1's cat(topic, id)).
inline constexpr char kTopicAnnotationSeparator = '#';

/// Annotation value used when FindCaller/FindClient cannot resolve an id
/// (e.g. the counterpart event fell outside the trace window).
inline constexpr const char* kUnknownAnnotation = "?";

/// Builds an annotated topic name ("/sv3Request#0x56...").
std::string annotate_topic(const std::string& topic, const std::string& suffix);

/// Splits an annotated topic into (plain topic, suffix); the suffix is
/// empty when the topic carries no annotation.
std::pair<std::string, std::string> split_annotated_topic(const std::string& topic);

/// One entry of a CBlist. A service invoked by n distinct callers yields n
/// entries (same id, different annotated in_topic) — Alg. 1's matching
/// rule — which is what later makes the DAG grow n service vertices.
struct CallbackRecord {
  CallbackKind kind = CallbackKind::Timer;
  CallbackId id = kInvalidCallbackId;
  Pid pid = kInvalidPid;
  std::string node_name;

  /// Subscribed topic; annotated for services (caller id) and clients
  /// (own id). Empty for timers.
  std::string in_topic;
  /// Published topics; annotated for requests (own id) and responses
  /// (client id). Order = first-publication order, no duplicates.
  std::vector<std::string> out_topics;

  bool is_sync_subscriber = false;

  /// Stable cross-run label assigned by normalize_labels
  /// ("<node>/<T|SC|SV|CL><ordinal>"); empty until normalization.
  std::string label;

  // Per-instance measurements -----------------------------------------------
  std::vector<TimePoint> start_times;
  /// Wall-clock instance ends (start + response time, preemption
  /// included), parallel to start_times. Concurrency inference reads the
  /// [start, end) intervals to learn per-group serialization.
  std::vector<TimePoint> end_times;
  std::vector<Duration> exec_times;
  /// Waiting times (wakeup -> dispatch), when computed (paper §VII).
  std::vector<Duration> wait_times;

  /// Aggregated execution-time statistics (mBCET/mACET/mWCET).
  ExecStats stats;

  /// Adds one measured instance. `end` defaults to start + exec_time
  /// (uncontended execution).
  void add_instance(TimePoint start, Duration exec_time,
                    std::optional<Duration> wait_time = std::nullopt,
                    std::optional<TimePoint> end = std::nullopt);

  /// Merges another record of the same callback (same id / matching rule)
  /// observed on a different executor worker: instances re-sorted by
  /// start time, out-topics unioned, statistics merged.
  void merge_from(const CallbackRecord& other);

  /// Adds an out topic if not yet present.
  void add_out_topic(const std::string& topic);

  std::size_t instances() const { return exec_times.size(); }

  /// For timer callbacks: the median difference between consecutive start
  /// times approximates the period (paper §IV). nullopt with <2 starts.
  std::optional<Duration> estimated_period() const;
};

/// All callbacks of one ROS2 node, in discovery order.
struct CallbackList {
  Pid pid = kInvalidPid;
  std::string node_name;
  std::vector<CallbackRecord> records;

  /// Alg. 1's AddToCallback matching: same id (and, for services, same
  /// annotated in_topic) => same entry. Returns the matched or new record.
  CallbackRecord& match_or_insert(const CallbackRecord& instance);

  const CallbackRecord* find_by_label(const std::string& label) const;
  std::size_t total_instances() const;
};

}  // namespace tetra::core
