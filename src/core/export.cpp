#include "core/export.hpp"

#include <map>
#include <set>

#include "support/json_parser.hpp"
#include "support/json_writer.hpp"
#include "support/string_utils.hpp"

namespace tetra::core {

namespace {

/// Pleasant categorical palette; nodes cycle through it.
const char* kPalette[] = {"#a6cee3", "#b2df8a", "#fb9a99", "#fdbf6f",
                          "#cab2d6", "#ffff99", "#1f78b4", "#33a02c",
                          "#e31a1c", "#ff7f00"};

std::string dot_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

std::string vertex_label(const DagVertex& v, const DotOptions& options) {
  if (v.is_and_junction) return "&";
  std::string label = v.key;
  if (options.show_periods && v.period.has_value()) {
    label += format("\\nT=%.1fms", v.period->to_ms());
  }
  if (options.show_timing && !v.stats.empty()) {
    label += format("\\n[%.2f / %.2f / %.2f]ms", v.mbcet().to_ms(),
                    v.macet().to_ms(), v.mwcet().to_ms());
  }
  return label;
}

}  // namespace

std::string to_dot(const Dag& dag, const DotOptions& options) {
  std::string out = "digraph timing_model {\n";
  out += "  rankdir=" + options.rankdir + ";\n";
  out += "  node [shape=ellipse, style=filled, fontsize=10];\n";

  // Group vertices by ROS2 node; each group becomes a cluster with one
  // fill color — the paper's "CBs belonging to the same node are marked
  // with a distinct color and border".
  std::map<std::string, std::vector<const DagVertex*>> by_node;
  for (const auto& v : dag.vertices()) by_node[v.node_name].push_back(&v);

  std::size_t color_index = 0;
  std::map<std::string, std::string> ids;
  std::size_t next_id = 0;
  for (const auto& [node, vertices] : by_node) {
    const char* color = kPalette[color_index++ % (sizeof kPalette / sizeof *kPalette)];
    out += format("  subgraph cluster_%zu {\n", color_index);
    out += format("    label=\"%s\";\n    color=gray;\n", dot_escape(node).c_str());
    for (const auto* v : vertices) {
      std::string id = format("v%zu", next_id++);
      ids[v->key] = id;
      std::string shape = v->is_and_junction ? "diamond" : "ellipse";
      std::string style = v->is_or_junction ? "filled,dashed" : "filled";
      out += format("    %s [label=\"%s\", fillcolor=\"%s\", shape=%s, style=\"%s\"];\n",
                    id.c_str(), dot_escape(vertex_label(*v, options)).c_str(),
                    color, shape.c_str(), style.c_str());
    }
    out += "  }\n";
  }
  for (const auto& edge : dag.edges()) {
    out += format("  %s -> %s [label=\"%s\", fontsize=8];\n",
                  ids.at(edge.from).c_str(), ids.at(edge.to).c_str(),
                  dot_escape(edge.topic).c_str());
  }
  out += "}\n";
  return out;
}

std::string to_json(const Dag& dag) {
  JsonWriter w;
  w.begin_object();
  w.key("vertices").begin_array();
  for (const auto& v : dag.vertices()) {
    w.begin_object();
    w.kv("key", v.key);
    w.kv("node", v.node_name);
    w.kv("kind", v.is_and_junction ? "and_junction" : to_string(v.kind));
    w.kv("or_junction", v.is_or_junction);
    w.kv("sync_member", v.is_sync_member);
    w.kv("in_topic", v.in_topic);
    w.key("out_topics").begin_array();
    for (const auto& t : v.out_topics) w.value(t);
    w.end_array();
    w.kv("instances", static_cast<std::int64_t>(v.instance_count));
    w.kv("exec_group", v.exec_group);
    w.kv("reentrant", v.reentrant);
    w.kv("node_workers", v.node_workers);
    if (v.period.has_value()) w.kv("period_ns", v.period->count_ns());
    if (!v.stats.empty()) {
      w.key("exec_time_ns").begin_object();
      w.kv("count", static_cast<std::int64_t>(v.stats.count()));
      w.kv("min", v.stats.stats.min());
      w.kv("mean", v.stats.stats.mean());
      w.kv("max", v.stats.stats.max());
      w.kv("variance", v.stats.stats.variance());
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.key("edges").begin_array();
  for (const auto& e : dag.edges()) {
    w.begin_object();
    w.kv("from", e.from);
    w.kv("to", e.to);
    w.kv("topic", e.topic);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

Dag dag_from_json(const std::string& text) {
  const JsonValue doc = parse_json(text);
  Dag dag;
  for (const auto& jv : doc.at("vertices").as_array()) {
    DagVertex v;
    v.key = jv.at("key").as_string();
    v.node_name = jv.at("node").as_string();
    const std::string kind = jv.at("kind").as_string();
    if (kind == "and_junction") {
      v.is_and_junction = true;
    } else if (kind == "timer") {
      v.kind = CallbackKind::Timer;
    } else if (kind == "subscriber") {
      v.kind = CallbackKind::Subscription;
    } else if (kind == "service") {
      v.kind = CallbackKind::Service;
    } else if (kind == "client") {
      v.kind = CallbackKind::Client;
    }
    v.is_or_junction = jv.get_bool_or("or_junction", false);
    v.is_sync_member = jv.get_bool_or("sync_member", false);
    v.in_topic = jv.get_string_or("in_topic", "");
    for (const auto& t : jv.at("out_topics").as_array()) {
      v.out_topics.push_back(t.as_string());
    }
    v.instance_count =
        static_cast<std::size_t>(jv.get_int_or("instances", 0));
    if (jv.contains("period_ns")) {
      v.period = Duration{jv.at("period_ns").as_int()};
    }
    if (jv.contains("exec_time_ns")) {
      const auto& s = jv.at("exec_time_ns");
      v.stats.stats = RunningStats::from_summary(
          static_cast<std::size_t>(s.at("count").as_int()),
          s.at("min").as_double(), s.at("max").as_double(),
          s.at("mean").as_double(), s.at("variance").as_double());
    }
    dag.add_or_merge_vertex(v);
  }
  for (const auto& je : doc.at("edges").as_array()) {
    dag.add_edge(je.at("from").as_string(), je.at("to").as_string(),
                 je.at("topic").as_string());
  }
  return dag;
}

std::string to_exec_time_table(const Dag& dag) {
  TextTable table({"CB", "Node", "mBCET (ms)", "mACET (ms)", "mWCET (ms)",
                   "instances"});
  for (const auto& v : dag.vertices()) {
    if (v.is_and_junction) continue;
    table.add_row({v.key, v.node_name, format("%.2f", v.mbcet().to_ms()),
                   format("%.2f", v.macet().to_ms()),
                   format("%.2f", v.mwcet().to_ms()),
                   format("%zu", v.instance_count)});
  }
  return table.to_string();
}

}  // namespace tetra::core
