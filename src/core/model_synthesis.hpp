// DEPRECATED batch facade: traces in, timing model out, one call per
// strategy. Kept as a thin compatibility shim over one-shot
// api::SynthesisSession instances — new code should open a session
// (api/session.hpp), which adds incremental segment ingestion, k-way
// merged zero-copy event views, a worker pool and structured errors.
#pragma once

#include <string>
#include <vector>

#include "core/callback_record.hpp"
#include "core/dag.hpp"
#include "core/dag_builder.hpp"
#include "core/extract.hpp"
#include "trace/event.hpp"

namespace tetra::core {

/// The synthesized model of one trace (or one merged trace).
struct TimingModel {
  /// Per-node CBlists (normalized labels).
  std::vector<CallbackList> node_callbacks;
  /// The synthesized DAG, annotated with timing statistics.
  Dag dag;

  const CallbackRecord* find_callback(const std::string& label) const;
};

struct SynthesisOptions {
  DagOptions dag;
  ExtractOptions extract;
};

/// Deprecated: use api::SynthesisSession. Each call below opens a one-shot
/// session, ingests, queries, and rethrows session errors as
/// std::runtime_error (the facade's historical contract).
class ModelSynthesizer {
 public:
  ModelSynthesizer() = default;
  explicit ModelSynthesizer(SynthesisOptions options) : options_(options) {}

  /// Synthesizes the model from one event stream. The stream must contain
  /// the P1 events (init trace), the runtime ROS2 events and the kernel
  /// events — i.e. the merged output of the three tracers.
  TimingModel synthesize(const trace::EventVector& events) const;

  /// §V option (i): merge all traces first, synthesize once.
  TimingModel synthesize_merged(const std::vector<trace::EventVector>& traces) const;

  /// §V option (ii) — the paper's choice for its experiments: synthesize a
  /// DAG per trace, then merge the DAGs (vertex/edge union, statistics
  /// merged across runs).
  Dag synthesize_and_merge(const std::vector<trace::EventVector>& traces) const;

  /// §V option (iv): per-mode merging; `modes[i]` tags `traces[i]`.
  MultiModeDag synthesize_multi_mode(
      const std::vector<trace::EventVector>& traces,
      const std::vector<std::string>& modes) const;

  const SynthesisOptions& options() const { return options_; }

 private:
  SynthesisOptions options_;
};

}  // namespace tetra::core
