// The synthesized model and the option bundle the synthesis pipeline
// takes. Synthesis itself is driven through api::SynthesisSession
// (api/session.hpp): incremental segment ingestion, k-way merged
// zero-copy event views, a worker pool and structured errors.
#pragma once

#include <string>
#include <vector>

#include "core/callback_record.hpp"
#include "core/dag.hpp"
#include "core/dag_builder.hpp"
#include "core/extract.hpp"
#include "trace/event.hpp"

namespace tetra::core {

/// The synthesized model of one trace (or one merged trace).
struct TimingModel {
  /// Per-node CBlists (normalized labels).
  std::vector<CallbackList> node_callbacks;
  /// The synthesized DAG, annotated with timing statistics.
  Dag dag;

  const CallbackRecord* find_callback(const std::string& label) const;
};

struct SynthesisOptions {
  DagOptions dag;
  ExtractOptions extract;
};

}  // namespace tetra::core
