#include "core/dag_builder.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>

#include "core/concurrency.hpp"

namespace tetra::core {

namespace {

/// Vertex key for a record: the stable label, plus — when services are
/// split per caller — the caller identity carried by the annotated
/// in-topic ("node/SV1@node2/SC1").
std::string vertex_key(const CallbackRecord& record, const DagOptions& options) {
  if (record.label.empty()) {
    throw std::logic_error(
        "build_dag: record without label (run normalize_labels first)");
  }
  if (record.kind == CallbackKind::Service && options.split_service_per_caller) {
    auto [plain, suffix] = split_annotated_topic(record.in_topic);
    if (!suffix.empty()) return record.label + "@" + suffix;
  }
  return record.label;
}

DagVertex make_vertex(const CallbackRecord& record, std::string key) {
  DagVertex v;
  v.key = std::move(key);
  v.node_name = record.node_name;
  v.kind = record.kind;
  v.is_sync_member = record.is_sync_subscriber;
  v.in_topic = record.in_topic;
  v.out_topics = record.out_topics;
  v.stats = record.stats;
  v.instance_count = record.instances();
  v.period = record.estimated_period();
  return v;
}

}  // namespace

Dag build_dag(const std::vector<CallbackList>& lists, const DagOptions& options) {
  Dag dag;

  // ---- vertices ----------------------------------------------------------
  // Also collect, per node, the sync-member records (one MS group per node;
  // distinguishing several groups inside one node is not observable from
  // P7 alone — see DESIGN.md).
  struct RecordRef {
    const CallbackRecord* record;
    std::string key;
  };
  std::vector<RecordRef> refs;
  std::map<std::string, std::vector<RecordRef>> sync_members_by_node;

  for (const auto& list : lists) {
    for (const auto& record : list.records) {
      std::string key = vertex_key(record, options);
      dag.add_or_merge_vertex(make_vertex(record, key));
      refs.push_back(RecordRef{&record, key});
      if (record.is_sync_subscriber && options.model_sync_with_and_junction) {
        sync_members_by_node[record.node_name].push_back(RecordRef{&record, key});
      }
    }
  }

  // ---- producer map: topic -> producing vertex keys ----------------------
  std::map<std::string, std::vector<std::string>> producers;
  for (const auto& ref : refs) {
    for (const auto& topic : ref.record->out_topics) {
      producers[topic].push_back(ref.key);
    }
  }

  // ---- AND junctions ------------------------------------------------------
  // For each node's sync group: add "<node>/&", edges member -> &, and
  // & -> every subscriber of a topic the members publish. Direct edges out
  // of members are suppressed below.
  std::set<std::string> sync_member_keys;
  std::set<std::string> sync_output_topics;
  for (const auto& [node, members] : sync_members_by_node) {
    if (members.size() < 2) continue;  // a lone marked member: no junction
    DagVertex junction;
    junction.key = node + "/&";
    junction.node_name = node;
    junction.is_and_junction = true;
    for (const auto& member : members) {
      for (const auto& topic : member.record->out_topics) {
        if (std::find(junction.out_topics.begin(), junction.out_topics.end(),
                      topic) == junction.out_topics.end()) {
          junction.out_topics.push_back(topic);
        }
        sync_output_topics.insert(topic);
      }
      sync_member_keys.insert(member.key);
    }
    dag.add_or_merge_vertex(junction);
    for (const auto& member : members) {
      dag.add_edge(member.key, junction.key, "&" + node);
    }
  }

  // ---- topic-matched edges -------------------------------------------------
  for (const auto& ref : refs) {
    if (ref.record->in_topic.empty()) continue;
    auto it = producers.find(ref.record->in_topic);
    if (it == producers.end()) continue;
    std::set<std::string> distinct_producers;
    for (const auto& from : it->second) {
      if (from == ref.key) continue;  // no self-loops on republished topics
      if (sync_member_keys.count(from) > 0) continue;  // rerouted through &
      dag.add_edge(from, ref.key, ref.record->in_topic);
      distinct_producers.insert(from);
    }
    // Edges from AND junctions whose members produce this topic.
    if (sync_output_topics.count(ref.record->in_topic) > 0) {
      for (const auto& vertex : dag.vertices()) {
        if (!vertex.is_and_junction) continue;
        for (const auto& topic : vertex.out_topics) {
          if (topic == ref.record->in_topic) {
            dag.add_edge(vertex.key, ref.key, topic);
            distinct_producers.insert(vertex.key);
            break;
          }
        }
      }
    }
    if (options.mark_or_junctions && distinct_producers.size() > 1) {
      dag.find_vertex(ref.key)->is_or_junction = true;
    }
  }

  // ---- learned executor concurrency ---------------------------------------
  // Per-node serialization groups, reentrancy and worker counts from the
  // observed instance intervals; split service vertices share their
  // callback's constraints. AND junctions execute nothing — they only
  // inherit the node's worker count.
  const auto concurrency = infer_concurrency(lists);
  for (const auto& ref : refs) {
    auto node_it = concurrency.find(ref.record->node_name);
    if (node_it == concurrency.end()) continue;
    auto label_it = node_it->second.by_label.find(ref.record->label);
    if (label_it == node_it->second.by_label.end()) continue;
    DagVertex* vertex = dag.find_vertex(ref.key);
    vertex->exec_group = label_it->second.group;
    vertex->reentrant = label_it->second.reentrant;
    vertex->node_workers = node_it->second.observed_workers;
  }
  for (const auto& [node, info] : concurrency) {
    DagVertex* junction = dag.find_vertex(node + "/&");
    if (junction != nullptr) junction->node_workers = info.observed_workers;
  }

  return dag;
}

}  // namespace tetra::core
