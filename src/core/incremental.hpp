// Incremental model synthesis: Algorithm 1 without re-reading history.
//
// A full synthesis re-runs extraction for every node whenever any segment
// arrives. This class instead keeps the appendable TraceIndex plus, per
// node, the cached CBlist AND the extraction's read set (ExtractDeps).
// When a segment lands, the AppendDelta the index reports is intersected
// with each node's read set; only nodes whose inputs actually changed are
// re-extracted. Because extraction is a pure function of (index, pid) and
// the appended index is indistinguishable from a fully rebuilt one (see
// TraceIndex), the incremental model is byte-identical to what a from-
// scratch synthesis over the same segments would produce.
#pragma once

#include <map>
#include <set>

#include "core/extract.hpp"
#include "core/model_synthesis.hpp"

namespace tetra::core {

class IncrementalSynthesizer {
 public:
  explicit IncrementalSynthesizer(SynthesisOptions options = {})
      : options_(std::move(options)) {}

  /// Appends one time-sorted segment (throws std::invalid_argument when
  /// unsorted) and marks affected nodes dirty.
  void append(const trace::EventVector& sorted_segment);
  void append(const trace::ColumnsView& view);

  /// The model over everything appended so far. Re-extracts only dirty
  /// nodes; label normalization, worker merging and DAG building always
  /// rerun (they are cheap relative to extraction and depend on the global
  /// node set).
  const TimingModel& model();

  std::size_t event_count() const { return index_.size(); }

  /// Nodes re-extracted by the last model() call (0 when served from
  /// cache) — the observable measure of incremental work.
  std::size_t last_extracted() const { return last_extracted_; }

  const TraceIndex& index() const { return index_; }

  /// The chronologically merged event stream (a copy; for interop with
  /// consumers of flat traces).
  trace::EventVector merged_events() const;

 private:
  void apply_delta(const AppendDelta& delta);

  SynthesisOptions options_;
  TraceIndex index_;
  std::map<Pid, CallbackList> lists_;  ///< raw (pre-normalization) CBlists
  std::map<Pid, ExtractDeps> deps_;    ///< read set of each cached list
  std::set<Pid> dirty_;
  TimingModel model_;
  bool model_dirty_ = true;
  std::size_t last_extracted_ = 0;
};

}  // namespace tetra::core
