// DAG synthesis from per-node CBlists (paper §IV, "DAG synthesis"):
//
//  - every CBlist entry becomes a vertex; a service called by n callers
//    has n entries and therefore n vertices, keeping computation chains
//    disjoint (the paper's §VI point iv);
//  - an edge cbk' -> cbk is drawn when a published topic of cbk' equals
//    the subscribed topic of cbk — except that edges OUT of message-
//    synchronization members are rerouted through a zero-execution-time
//    AND-junction vertex (members -> & -> downstream subscribers);
//  - a vertex whose in-topic has multiple producers is marked as an OR
//    junction.
//
// Options exist to switch both special constructions off, reproducing the
// "wrong interpretation" baselines the paper argues against.
#pragma once

#include <vector>

#include "core/callback_record.hpp"
#include "core/dag.hpp"

namespace tetra::core {

struct DagOptions {
  /// n-caller services become n vertices (paper's proposal). When false, a
  /// service is a single vertex with n in/out edges — the incorrect model
  /// that creates spurious n x n chains.
  bool split_service_per_caller = true;

  /// Model m-way synchronization with an AND-junction vertex (paper's
  /// proposal). When false, sync members connect directly to downstream
  /// subscribers like ordinary callbacks.
  bool model_sync_with_and_junction = true;

  /// Annotate vertices whose in-topic has several producers as OR.
  bool mark_or_junctions = true;
};

/// Builds the DAG for one trace from normalized CBlists (labels assigned).
/// Lists must come from normalize_labels; throws std::logic_error if a
/// record lacks a label.
Dag build_dag(const std::vector<CallbackList>& lists,
              const DagOptions& options = {});

}  // namespace tetra::core
