#include "core/incremental.hpp"

#include <algorithm>

#include "core/dag_builder.hpp"

namespace tetra::core {

namespace {

template <typename T>
bool intersects(const std::set<T>& a, const std::set<T>& b) {
  // Walk the smaller set, probe the larger.
  const std::set<T>& probe = a.size() <= b.size() ? a : b;
  const std::set<T>& in = a.size() <= b.size() ? b : a;
  for (const T& item : probe) {
    if (in.count(item) > 0) return true;
  }
  return false;
}

}  // namespace

void IncrementalSynthesizer::append(const trace::EventVector& sorted_segment) {
  apply_delta(index_.append(sorted_segment));
}

void IncrementalSynthesizer::append(const trace::ColumnsView& view) {
  apply_delta(index_.append(view));
}

void IncrementalSynthesizer::apply_delta(const AppendDelta& delta) {
  model_dirty_ = true;
  // A node is invalidated when the segment touched its own event stream
  // (ROS or sched — Alg. 2 reads the node's sched windows) …
  dirty_.insert(delta.ros_pids.begin(), delta.ros_pids.end());
  dirty_.insert(delta.sched_pids.begin(), delta.sched_pids.end());
  // … or anything its last extraction read across pids: another stream it
  // walked (FindCaller/FindClient), or a (topic, src_ts) key it looked up —
  // including misses, which a late-arriving counterpart event resolves.
  for (const auto& [pid, deps] : deps_) {
    if (dirty_.count(pid) > 0) continue;
    if (intersects(deps.pids, delta.ros_pids) ||
        intersects(deps.write_keys, delta.write_keys) ||
        intersects(deps.response_keys, delta.response_keys)) {
      dirty_.insert(pid);
    }
  }
}

const TimingModel& IncrementalSynthesizer::model() {
  if (!model_dirty_) {
    last_extracted_ = 0;
    return model_;
  }
  std::size_t extracted = 0;
  for (const auto& [pid, name] : index_.nodes()) {
    if (lists_.count(pid) > 0 && dirty_.count(pid) == 0) continue;
    ExtractDeps deps;
    lists_[pid] = extract_callbacks(index_, pid, options_.extract, &deps);
    deps_[pid] = std::move(deps);
    ++extracted;
  }
  dirty_.clear();
  last_extracted_ = extracted;

  TimingModel model;
  model.node_callbacks.reserve(lists_.size());
  // nodes() iterates pid-ascending — the same order extract_all_nodes
  // produces, so downstream label ordinals match a full synthesis.
  for (const auto& [pid, name] : index_.nodes()) {
    auto it = lists_.find(pid);
    if (it != lists_.end()) model.node_callbacks.push_back(it->second);
  }
  merge_worker_lists(model.node_callbacks);
  normalize_labels(model.node_callbacks);
  model.dag = build_dag(model.node_callbacks, options_.dag);
  model_ = std::move(model);
  model_dirty_ = false;
  return model_;
}

trace::EventVector IncrementalSynthesizer::merged_events() const {
  trace::EventVector events = trace::materialize(index_.view());
  // Rows are stored in append order; the stable sort restores the (time,
  // append-sequence) merged order.
  trace::sort_by_time(events);
  return events;
}

}  // namespace tetra::core
