#include "core/extract.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

#include "support/string_utils.hpp"

namespace tetra::core {

const std::vector<std::size_t> TraceIndex::kEmpty{};

namespace {

bool is_time_sorted(const std::int64_t* time, std::size_t count) {
  for (std::size_t i = 1; i < count; ++i) {
    if (time[i] < time[i - 1]) return false;
  }
  return true;
}

/// Restores (time, seq) order after pushing a batch whose entries are
/// themselves (time, seq)-sorted: one stable in-place merge, skipped when
/// the batch already belongs at the tail (the overwhelmingly common case).
void merge_tail(std::vector<std::size_t>& list, std::size_t old_size,
                const trace::ColumnsView& v) {
  if (old_size == 0 || old_size == list.size()) return;
  const auto chrono_less = [&v](std::size_t a, std::size_t b) {
    return v.time[a] < v.time[b] || (v.time[a] == v.time[b] && a < b);
  };
  if (!chrono_less(list[old_size], list[old_size - 1])) return;
  std::inplace_merge(list.begin(), list.begin() + old_size, list.end(),
                     chrono_less);
}

}  // namespace

const char* ros2_request_suffix() { return "Request"; }
const char* ros2_reply_suffix() { return "Reply"; }

bool is_service_request_topic(const std::string& topic) {
  return ends_with(topic, ros2_request_suffix());
}

bool is_service_reply_topic(const std::string& topic) {
  return ends_with(topic, ros2_reply_suffix());
}

TraceIndex::TraceIndex(const trace::EventVector& events) {
  const bool sorted = std::is_sorted(
      events.begin(), events.end(),
      [](const trace::TraceEvent& a, const trace::TraceEvent& b) {
        return a.time < b.time;
      });
  if (sorted) {
    columns_.append(events);
  } else {
    trace::EventVector copy = events;
    trace::sort_by_time(copy);
    columns_.append(copy);
  }
  index_rows(0);
}

AppendDelta TraceIndex::append(const trace::EventVector& sorted_segment) {
  const bool sorted = std::is_sorted(
      sorted_segment.begin(), sorted_segment.end(),
      [](const trace::TraceEvent& a, const trace::TraceEvent& b) {
        return a.time < b.time;
      });
  if (!sorted) {
    throw std::invalid_argument("TraceIndex::append requires a time-sorted "
                                "segment");
  }
  const std::size_t base = columns_.size();
  columns_.append(sorted_segment);
  return index_rows(base);
}

AppendDelta TraceIndex::append(const trace::ColumnsView& view) {
  if (!is_time_sorted(view.time, view.count)) {
    throw std::invalid_argument("TraceIndex::append requires a time-sorted "
                                "segment");
  }
  const std::size_t base = columns_.size();
  columns_.append(view);
  return index_rows(base);
}

AppendDelta TraceIndex::index_rows(std::size_t base) {
  AppendDelta delta;
  const trace::ColumnsView v = columns_.view();
  // Old sizes of every per-pid / per-key list touched by this batch, so
  // (time, seq) order can be restored with one merge each.
  std::map<Pid, std::size_t> ros_sizes;
  std::map<Pid, std::size_t> p14_sizes;
  std::map<TopicTsKey, std::size_t> response_sizes;

  for (std::size_t i = base; i < v.count; ++i) {
    const auto type = static_cast<trace::EventType>(v.type[i]);
    if (type == trace::EventType::SchedSwitch) {
      const Pid prev = static_cast<Pid>(v.sched_prev_pid(i));
      const Pid next = static_cast<Pid>(v.sched_next_pid(i));
      if (prev != kIdlePid) delta.sched_pids.insert(prev);
      if (next != kIdlePid) delta.sched_pids.insert(next);
      continue;
    }
    if (type == trace::EventType::SchedWakeup) {
      delta.sched_pids.insert(static_cast<Pid>(v.wakeup_pid(i)));
      continue;
    }

    const Pid pid = static_cast<Pid>(v.pid[i]);
    delta.ros_pids.insert(pid);
    auto& ros = ros_by_pid_[pid];
    ros_sizes.emplace(pid, ros.size());
    ros.push_back(i);

    switch (type) {
      case trace::EventType::RmwCreateNode: {
        const auto key = std::make_pair(v.time[i], i);
        auto [it, inserted] = node_event_.emplace(pid, key);
        // Last event in merged order names the node: the newcomer (larger
        // seq) wins unless it is chronologically earlier.
        if (inserted || key.first >= it->second.first) {
          it->second = key;
          nodes_[pid] = std::string(v.str(v.arg_c[i]));
        }
        break;
      }
      case trace::EventType::DdsWrite: {
        TopicTsKey key{std::string(v.str(v.arg_c[i])), v.arg_b[i]};
        auto [it, inserted] = writes_.emplace(key, i);
        // First event in merged order is canonical: replace only when the
        // newcomer is strictly earlier.
        if (!inserted && v.time[i] < v.time[it->second]) it->second = i;
        delta.write_keys.insert(std::move(key));
        break;
      }
      case trace::EventType::Take: {
        if (static_cast<trace::TakeKind>(v.aux[i]) ==
            trace::TakeKind::Response) {
          TopicTsKey key{std::string(v.str(v.arg_c[i])), v.arg_b[i]};
          auto& list = take_responses_[key];
          response_sizes.emplace(key, list.size());
          list.push_back(i);
          delta.response_keys.insert(std::move(key));
        }
        break;
      }
      case trace::EventType::TakeTypeErased: {
        auto& list = p14_by_pid_[pid];
        p14_sizes.emplace(pid, list.size());
        list.push_back(i);
        break;
      }
      default:
        break;
    }
  }

  for (const auto& [pid, old_size] : ros_sizes) {
    merge_tail(ros_by_pid_[pid], old_size, v);
  }
  for (const auto& [pid, old_size] : p14_sizes) {
    merge_tail(p14_by_pid_[pid], old_size, v);
  }
  for (const auto& [key, old_size] : response_sizes) {
    merge_tail(take_responses_[key], old_size, v);
  }
  exec_calc_.append_columns(v, base);
  return delta;
}

trace::TraceEvent TraceIndex::event_at(std::size_t seq) const {
  return trace::materialize_event(columns_.view(), seq);
}

const std::vector<std::size_t>& TraceIndex::ros_events_of(Pid pid) const {
  auto it = ros_by_pid_.find(pid);
  return it == ros_by_pid_.end() ? kEmpty : it->second;
}

std::size_t TraceIndex::find_write(const std::string& topic,
                                   TimePoint src_ts) const {
  auto it = writes_.find(TopicTsKey{topic, src_ts.count_ns()});
  return it == writes_.end() ? npos : it->second;
}

const std::vector<std::size_t>& TraceIndex::find_take_responses(
    const std::string& topic, TimePoint src_ts) const {
  auto it = take_responses_.find(TopicTsKey{topic, src_ts.count_ns()});
  return it == take_responses_.end() ? kEmpty : it->second;
}

std::size_t TraceIndex::next_take_type_erased_after(Pid pid,
                                                    std::size_t after) const {
  auto it = p14_by_pid_.find(pid);
  if (it == p14_by_pid_.end()) return npos;
  const trace::ColumnsView v = columns_.view();
  const auto key = std::make_pair(v.time[after], after);
  auto pos = std::upper_bound(
      it->second.begin(), it->second.end(), key,
      [&v](const std::pair<std::int64_t, std::size_t>& k, std::size_t seq) {
        return k < std::make_pair(v.time[seq], seq);
      });
  return pos == it->second.end() ? npos : *pos;
}

CallbackId find_caller(const TraceIndex& index, std::size_t take_seq,
                       ExtractDeps* deps) {
  // Step 1: the dds_write with the same topic and source timestamp as the
  // take identifies the writing process and the write instant.
  const trace::ColumnsView v = index.view();
  const std::string topic(v.str(v.arg_c[take_seq]));
  const std::int64_t src_ts = v.arg_b[take_seq];
  if (deps != nullptr) deps->write_keys.insert(TopicTsKey{topic, src_ts});
  const std::size_t write_seq = index.find_write(topic, TimePoint{src_ts});
  if (write_seq == TraceIndex::npos) return kInvalidCallbackId;
  const Pid writer_pid = static_cast<Pid>(v.pid[write_seq]);
  const std::int64_t write_time = v.time[write_seq];
  if (deps != nullptr) deps->pids.insert(writer_pid);

  // Step 2: in the writer's event stream, the timer_call or take event
  // that chronologically precedes the write and follows the last CB start
  // identifies the caller callback.
  CallbackId caller = kInvalidCallbackId;
  for (std::size_t seq : index.ros_events_of(writer_pid)) {
    if (v.time[seq] > write_time) break;
    switch (static_cast<trace::EventType>(v.type[seq])) {
      case trace::EventType::CallbackStart:
        caller = kInvalidCallbackId;  // a new CB instance began
        break;
      case trace::EventType::TimerCall:
      case trace::EventType::Take:
        caller = static_cast<CallbackId>(v.arg_a[seq]);
        break;
      default:
        break;
    }
    if (seq == write_seq) break;
  }
  return caller;
}

CallbackId find_client(const TraceIndex& index, std::size_t write_seq,
                       ExtractDeps* deps) {
  const trace::ColumnsView v = index.view();
  const std::string topic(v.str(v.arg_c[write_seq]));
  const std::int64_t src_ts = v.arg_b[write_seq];
  if (deps != nullptr) deps->response_keys.insert(TopicTsKey{topic, src_ts});
  // All take_response events for this response — one per client node of
  // the service (ncl of them). Only the caller's P14 evaluates true.
  for (std::size_t take_seq :
       index.find_take_responses(topic, TimePoint{src_ts})) {
    const Pid take_pid = static_cast<Pid>(v.pid[take_seq]);
    if (deps != nullptr) deps->pids.insert(take_pid);
    const std::size_t p14 = index.next_take_type_erased_after(take_pid,
                                                              take_seq);
    if (p14 != TraceIndex::npos && v.aux[p14] != 0) {
      return static_cast<CallbackId>(v.arg_a[take_seq]);
    }
  }
  return kInvalidCallbackId;
}

namespace {

/// In-flight callback instance state (Alg. 1's CB.* working set).
struct InFlight {
  bool active = false;
  CallbackKind kind = CallbackKind::Timer;
  CallbackId id = kInvalidCallbackId;
  TimePoint start;
  std::string in_topic;
  std::vector<std::string> out_topics;
  bool is_sync_subscriber = false;
  /// Probe executions whose cost lands inside the instance's [start, end]
  /// measurement window (the CB-end exit probe fires after `end` and is
  /// excluded; rmw_take contributes an entry and an exit probe).
  std::int64_t probe_hits = 0;

  void reset() { *this = InFlight{}; }
};

std::string id_suffix(CallbackId id) {
  return id == kInvalidCallbackId ? std::string(kUnknownAnnotation)
                                  : hex_id(id);
}

}  // namespace

CallbackList extract_callbacks(const TraceIndex& index, Pid pid,
                               const ExtractOptions& options,
                               ExtractDeps* deps) {
  if (deps != nullptr) {
    *deps = ExtractDeps{};
    deps->pids.insert(pid);
  }
  CallbackList list;
  list.pid = pid;
  auto node_it = index.nodes().find(pid);
  list.node_name = node_it != index.nodes().end() ? node_it->second : "";

  const trace::ColumnsView v = index.view();
  InFlight cb;
  for (std::size_t seq : index.ros_events_of(pid)) {  // chronological
    switch (static_cast<trace::EventType>(v.type[seq])) {
      case trace::EventType::CallbackStart: {  // lines 3-5
        cb.reset();
        cb.active = true;
        cb.kind = static_cast<CallbackKind>(v.aux[seq]);
        cb.start = TimePoint{v.time[seq]};
        cb.probe_hits = 1;
        break;
      }
      case trace::EventType::TimerCall: {  // lines 6-7
        if (!cb.active) break;
        cb.id = static_cast<CallbackId>(v.arg_a[seq]);
        ++cb.probe_hits;
        break;
      }
      case trace::EventType::Take: {  // lines 8-15
        if (!cb.active) break;
        cb.id = static_cast<CallbackId>(v.arg_a[seq]);
        cb.probe_hits += 2;  // rmw_take entry + exit probes
        const std::string topic(v.str(v.arg_c[seq]));
        switch (static_cast<trace::TakeKind>(v.aux[seq])) {
          case trace::TakeKind::Response:  // lines 10-11
            cb.in_topic = annotate_topic(topic, id_suffix(cb.id));
            break;
          case trace::TakeKind::Request:  // lines 12-13
            cb.in_topic = annotate_topic(
                topic, id_suffix(find_caller(index, seq, deps)));
            break;
          case trace::TakeKind::Data:  // lines 14-15
            cb.in_topic = topic;
            break;
        }
        break;
      }
      case trace::EventType::DdsWrite: {  // lines 16-23
        if (!cb.active) break;
        ++cb.probe_hits;
        const std::string topic(v.str(v.arg_c[seq]));
        std::string top_out;
        if (is_service_request_topic(topic)) {  // lines 17-18
          top_out = annotate_topic(topic, id_suffix(cb.id));
        } else if (is_service_reply_topic(topic)) {  // lines 19-20
          top_out = annotate_topic(topic,
                                   id_suffix(find_client(index, seq, deps)));
        } else {  // lines 21-22
          top_out = topic;
        }
        if (std::find(cb.out_topics.begin(), cb.out_topics.end(), top_out) ==
            cb.out_topics.end()) {
          cb.out_topics.push_back(top_out);
        }
        break;
      }
      case trace::EventType::TakeTypeErased: {  // lines 24-25
        if (cb.active) ++cb.probe_hits;
        if (v.aux[seq] == 0) cb.reset();
        break;
      }
      case trace::EventType::SyncOperator: {  // lines 26-27
        if (!cb.active) break;
        cb.is_sync_subscriber = true;
        ++cb.probe_hits;
        break;
      }
      case trace::EventType::CallbackEnd: {  // lines 28-32
        if (!cb.active) break;
        const TimePoint end{v.time[seq]};
        Duration et = index.exec_calc().exec_time(cb.start, end, pid);
        if (options.compensate_per_hit > Duration::zero() &&
            cb.probe_hits > 0) {
          const Duration overhead = options.compensate_per_hit * cb.probe_hits;
          et = et > overhead ? et - overhead : Duration::zero();
        }

        CallbackRecord instance;
        instance.kind = cb.kind;
        instance.id = cb.id;
        instance.pid = pid;
        instance.node_name = list.node_name;
        instance.in_topic = cb.in_topic;
        instance.is_sync_subscriber = cb.is_sync_subscriber;

        CallbackRecord& record = list.match_or_insert(instance);
        record.is_sync_subscriber |= cb.is_sync_subscriber;
        for (const auto& topic : cb.out_topics) record.add_out_topic(topic);

        std::optional<Duration> wait;
        if (options.compute_waiting_times) {
          if (auto wakeup = index.exec_calc().last_wakeup_before(pid, cb.start)) {
            wait = cb.start - *wakeup;
          }
        }
        record.add_instance(cb.start, et, wait, end);
        cb.reset();
        break;
      }
      default:
        break;
    }
  }
  return list;
}

std::vector<CallbackList> extract_all_nodes(const TraceIndex& index,
                                            const ExtractOptions& options) {
  std::vector<CallbackList> lists;
  lists.reserve(index.nodes().size());
  for (const auto& [pid, name] : index.nodes()) {
    lists.push_back(extract_callbacks(index, pid, options));
  }
  return lists;
}

void merge_worker_lists(std::vector<CallbackList>& lists) {
  std::vector<CallbackList> merged;
  std::map<std::string, std::size_t> index_of_node;
  for (auto& list : lists) {
    // Unnamed lists (PIDs without a P1) are never worker siblings.
    if (list.node_name.empty()) {
      merged.push_back(std::move(list));
      continue;
    }
    auto [it, inserted] = index_of_node.emplace(list.node_name, merged.size());
    if (inserted) {
      merged.push_back(std::move(list));
      continue;
    }
    CallbackList& target = merged[it->second];
    // Keep the lowest PID as the node identity (worker 0 registers first
    // and P1 events arrive in creation order).
    if (list.pid < target.pid) target.pid = list.pid;
    for (auto& record : list.records) {
      CallbackRecord& slot = target.match_or_insert(record);
      slot.merge_from(record);
    }
  }
  lists = std::move(merged);
}

void normalize_labels(std::vector<CallbackList>& lists) {
  // Pass 1: assign a label to every distinct raw callback id, ordering by
  // id within (node, kind) — heap allocation order is creation order, so
  // ordinals are stable across runs.
  std::map<CallbackId, std::string> label_of;
  for (auto& list : lists) {
    std::map<CallbackKind, std::vector<CallbackId>> ids_by_kind;
    for (const auto& record : list.records) {
      auto& ids = ids_by_kind[record.kind];
      if (std::find(ids.begin(), ids.end(), record.id) == ids.end()) {
        ids.push_back(record.id);
      }
    }
    for (auto& [kind, ids] : ids_by_kind) {
      std::sort(ids.begin(), ids.end());
      for (std::size_t i = 0; i < ids.size(); ++i) {
        label_of[ids[i]] = list.node_name + "/" + to_short_string(kind) +
                           std::to_string(i + 1);
      }
    }
  }

  // Pass 2: set record labels and rewrite topic annotations from raw ids
  // to labels (unresolvable annotations keep the '?' marker).
  auto rewrite = [&label_of](const std::string& topic) {
    auto [plain, suffix] = split_annotated_topic(topic);
    if (suffix.empty()) return topic;
    if (suffix == kUnknownAnnotation) return topic;
    const CallbackId id = std::strtoull(suffix.c_str(), nullptr, 16);
    auto it = label_of.find(id);
    return annotate_topic(plain,
                          it == label_of.end() ? kUnknownAnnotation : it->second);
  };
  for (auto& list : lists) {
    for (auto& record : list.records) {
      record.label = label_of[record.id];
      record.in_topic = rewrite(record.in_topic);
      for (auto& topic : record.out_topics) topic = rewrite(topic);
    }
  }
}

}  // namespace tetra::core
