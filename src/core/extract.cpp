#include "core/extract.hpp"

#include <algorithm>
#include <cstdlib>
#include <set>

#include "support/string_utils.hpp"

namespace tetra::core {

const std::vector<std::size_t> TraceIndex::kEmpty{};

namespace {

bool is_ros2_event(const trace::TraceEvent& event) {
  switch (event.type) {
    case trace::EventType::SchedSwitch:
    case trace::EventType::SchedWakeup:
      return false;
    default:
      return true;
  }
}

}  // namespace

const char* ros2_request_suffix() { return "Request"; }
const char* ros2_reply_suffix() { return "Reply"; }

bool is_service_request_topic(const std::string& topic) {
  return ends_with(topic, ros2_request_suffix());
}

bool is_service_reply_topic(const std::string& topic) {
  return ends_with(topic, ros2_reply_suffix());
}

TraceIndex::TraceIndex(const trace::EventVector& events)
    : TraceIndex(trace::SortedEventView::over(events)) {}

TraceIndex::TraceIndex(trace::SortedEventView view)
    : view_(std::move(view)), exec_calc_(view_) {
  for (std::size_t i = 0; i < view_.size(); ++i) {
    const auto& event = view_[i];
    if (event.type == trace::EventType::RmwCreateNode) {
      nodes_[event.pid] = event.as<trace::NodeInfo>().node_name;
    }
    if (is_ros2_event(event)) {
      ros_by_pid_[event.pid].push_back(i);
    }
    if (event.type == trace::EventType::DdsWrite) {
      const auto& info = event.as<trace::DdsWriteInfo>();
      writes_.emplace(TopicTsKey{info.topic, info.src_ts.count_ns()}, i);
    } else if (event.type == trace::EventType::Take) {
      const auto& info = event.as<trace::TakeInfo>();
      if (info.kind == trace::TakeKind::Response) {
        take_responses_[TopicTsKey{info.topic, info.src_ts.count_ns()}]
            .push_back(i);
      }
    }
  }
}

const std::vector<std::size_t>& TraceIndex::ros_events_of(Pid pid) const {
  auto it = ros_by_pid_.find(pid);
  return it == ros_by_pid_.end() ? kEmpty : it->second;
}

const trace::TraceEvent* TraceIndex::find_write(const std::string& topic,
                                                TimePoint src_ts) const {
  auto it = writes_.find(TopicTsKey{topic, src_ts.count_ns()});
  return it == writes_.end() ? nullptr : &view_[it->second];
}

std::vector<std::size_t> TraceIndex::find_take_responses(
    const std::string& topic, TimePoint src_ts) const {
  auto it = take_responses_.find(TopicTsKey{topic, src_ts.count_ns()});
  return it == take_responses_.end() ? std::vector<std::size_t>{} : it->second;
}

const trace::TraceEvent* TraceIndex::next_take_type_erased(
    Pid pid, std::size_t from) const {
  for (std::size_t i = from; i < view_.size(); ++i) {
    const auto& event = view_[i];
    if (event.pid == pid && event.type == trace::EventType::TakeTypeErased) {
      return &event;
    }
  }
  return nullptr;
}

CallbackId find_caller(const TraceIndex& index,
                       const trace::TraceEvent& take_request) {
  // Step 1: the dds_write with the same topic and source timestamp as the
  // take identifies the writing process and the write instant.
  const auto& take_info = take_request.as<trace::TakeInfo>();
  const trace::TraceEvent* write =
      index.find_write(take_info.topic, take_info.src_ts);
  if (write == nullptr) return kInvalidCallbackId;
  const Pid writer_pid = write->pid;
  const TimePoint write_time = write->time;

  // Step 2: in the writer's event stream, the timer_call or take event
  // that chronologically precedes the write and follows the last CB start
  // identifies the caller callback.
  const auto& writer_events = index.ros_events_of(writer_pid);
  CallbackId caller = kInvalidCallbackId;
  for (std::size_t idx : writer_events) {
    const auto& event = index.events()[idx];
    if (event.time > write_time) break;
    switch (event.type) {
      case trace::EventType::CallbackStart:
        caller = kInvalidCallbackId;  // a new CB instance began
        break;
      case trace::EventType::TimerCall:
        caller = event.as<trace::TimerCallInfo>().callback_id;
        break;
      case trace::EventType::Take:
        caller = event.as<trace::TakeInfo>().callback_id;
        break;
      default:
        break;
    }
    if (&event == write) break;
  }
  return caller;
}

CallbackId find_client(const TraceIndex& index, std::size_t write_event_index) {
  const auto& write = index.events()[write_event_index];
  const auto& info = write.as<trace::DdsWriteInfo>();
  // All take_response events for this response — one per client node of
  // the service (ncl of them). Only the caller's P14 evaluates true.
  for (std::size_t take_idx :
       index.find_take_responses(info.topic, info.src_ts)) {
    const auto& take = index.events()[take_idx];
    const trace::TraceEvent* p14 =
        index.next_take_type_erased(take.pid, take_idx + 1);
    if (p14 != nullptr && p14->as<trace::TakeTypeErasedInfo>().will_dispatch) {
      return take.as<trace::TakeInfo>().callback_id;
    }
  }
  return kInvalidCallbackId;
}

namespace {

/// In-flight callback instance state (Alg. 1's CB.* working set).
struct InFlight {
  bool active = false;
  CallbackKind kind = CallbackKind::Timer;
  CallbackId id = kInvalidCallbackId;
  TimePoint start;
  std::string in_topic;
  std::vector<std::string> out_topics;
  bool is_sync_subscriber = false;

  void reset() { *this = InFlight{}; }
};

std::string id_suffix(CallbackId id) {
  return id == kInvalidCallbackId ? std::string(kUnknownAnnotation)
                                  : hex_id(id);
}

}  // namespace

CallbackList extract_callbacks(const TraceIndex& index, Pid pid,
                               const ExtractOptions& options) {
  CallbackList list;
  list.pid = pid;
  auto node_it = index.nodes().find(pid);
  list.node_name = node_it != index.nodes().end() ? node_it->second : "";

  InFlight cb;
  for (std::size_t idx : index.ros_events_of(pid)) {  // chronological
    const auto& event = index.events()[idx];
    switch (event.type) {
      case trace::EventType::CallbackStart: {  // lines 3-5
        cb.reset();
        cb.active = true;
        cb.kind = event.as<trace::CallbackPhaseInfo>().kind;
        cb.start = event.time;
        break;
      }
      case trace::EventType::TimerCall: {  // lines 6-7
        if (!cb.active) break;
        cb.id = event.as<trace::TimerCallInfo>().callback_id;
        break;
      }
      case trace::EventType::Take: {  // lines 8-15
        if (!cb.active) break;
        const auto& info = event.as<trace::TakeInfo>();
        cb.id = info.callback_id;
        switch (info.kind) {
          case trace::TakeKind::Response:  // lines 10-11
            cb.in_topic = annotate_topic(info.topic, id_suffix(cb.id));
            break;
          case trace::TakeKind::Request:  // lines 12-13
            cb.in_topic = annotate_topic(
                info.topic, id_suffix(find_caller(index, event)));
            break;
          case trace::TakeKind::Data:  // lines 14-15
            cb.in_topic = info.topic;
            break;
        }
        break;
      }
      case trace::EventType::DdsWrite: {  // lines 16-23
        if (!cb.active) break;
        const auto& info = event.as<trace::DdsWriteInfo>();
        std::string top_out;
        if (is_service_request_topic(info.topic)) {  // lines 17-18
          top_out = annotate_topic(info.topic, id_suffix(cb.id));
        } else if (is_service_reply_topic(info.topic)) {  // lines 19-20
          top_out =
              annotate_topic(info.topic, id_suffix(find_client(index, idx)));
        } else {  // lines 21-22
          top_out = info.topic;
        }
        if (std::find(cb.out_topics.begin(), cb.out_topics.end(), top_out) ==
            cb.out_topics.end()) {
          cb.out_topics.push_back(top_out);
        }
        break;
      }
      case trace::EventType::TakeTypeErased: {  // lines 24-25
        if (!event.as<trace::TakeTypeErasedInfo>().will_dispatch) {
          cb.reset();
        }
        break;
      }
      case trace::EventType::SyncOperator: {  // lines 26-27
        if (!cb.active) break;
        cb.is_sync_subscriber = true;
        break;
      }
      case trace::EventType::CallbackEnd: {  // lines 28-32
        if (!cb.active) break;
        const TimePoint end = event.time;
        const Duration et = index.exec_calc().exec_time(cb.start, end, pid);

        CallbackRecord instance;
        instance.kind = cb.kind;
        instance.id = cb.id;
        instance.pid = pid;
        instance.node_name = list.node_name;
        instance.in_topic = cb.in_topic;
        instance.is_sync_subscriber = cb.is_sync_subscriber;

        CallbackRecord& record = list.match_or_insert(instance);
        record.is_sync_subscriber |= cb.is_sync_subscriber;
        for (const auto& topic : cb.out_topics) record.add_out_topic(topic);

        std::optional<Duration> wait;
        if (options.compute_waiting_times) {
          if (auto wakeup = index.exec_calc().last_wakeup_before(pid, cb.start)) {
            wait = cb.start - *wakeup;
          }
        }
        record.add_instance(cb.start, et, wait, end);
        cb.reset();
        break;
      }
      default:
        break;
    }
  }
  return list;
}

std::vector<CallbackList> extract_all_nodes(const TraceIndex& index,
                                            const ExtractOptions& options) {
  std::vector<CallbackList> lists;
  lists.reserve(index.nodes().size());
  for (const auto& [pid, name] : index.nodes()) {
    lists.push_back(extract_callbacks(index, pid, options));
  }
  return lists;
}

void merge_worker_lists(std::vector<CallbackList>& lists) {
  std::vector<CallbackList> merged;
  std::map<std::string, std::size_t> index_of_node;
  for (auto& list : lists) {
    // Unnamed lists (PIDs without a P1) are never worker siblings.
    if (list.node_name.empty()) {
      merged.push_back(std::move(list));
      continue;
    }
    auto [it, inserted] = index_of_node.emplace(list.node_name, merged.size());
    if (inserted) {
      merged.push_back(std::move(list));
      continue;
    }
    CallbackList& target = merged[it->second];
    // Keep the lowest PID as the node identity (worker 0 registers first
    // and P1 events arrive in creation order).
    if (list.pid < target.pid) target.pid = list.pid;
    for (auto& record : list.records) {
      CallbackRecord& slot = target.match_or_insert(record);
      slot.merge_from(record);
    }
  }
  lists = std::move(merged);
}

void normalize_labels(std::vector<CallbackList>& lists) {
  // Pass 1: assign a label to every distinct raw callback id, ordering by
  // id within (node, kind) — heap allocation order is creation order, so
  // ordinals are stable across runs.
  std::map<CallbackId, std::string> label_of;
  for (auto& list : lists) {
    std::map<CallbackKind, std::vector<CallbackId>> ids_by_kind;
    for (const auto& record : list.records) {
      auto& ids = ids_by_kind[record.kind];
      if (std::find(ids.begin(), ids.end(), record.id) == ids.end()) {
        ids.push_back(record.id);
      }
    }
    for (auto& [kind, ids] : ids_by_kind) {
      std::sort(ids.begin(), ids.end());
      for (std::size_t i = 0; i < ids.size(); ++i) {
        label_of[ids[i]] = list.node_name + "/" + to_short_string(kind) +
                           std::to_string(i + 1);
      }
    }
  }

  // Pass 2: set record labels and rewrite topic annotations from raw ids
  // to labels (unresolvable annotations keep the '?' marker).
  auto rewrite = [&label_of](const std::string& topic) {
    auto [plain, suffix] = split_annotated_topic(topic);
    if (suffix.empty()) return topic;
    if (suffix == kUnknownAnnotation) return topic;
    const CallbackId id = std::strtoull(suffix.c_str(), nullptr, 16);
    auto it = label_of.find(id);
    return annotate_topic(plain,
                          it == label_of.end() ? kUnknownAnnotation : it->second);
  };
  for (auto& list : lists) {
    for (auto& record : list.records) {
      record.label = label_of[record.id];
      record.in_topic = rewrite(record.in_topic);
      for (auto& topic : record.out_topics) topic = rewrite(topic);
    }
  }
}

}  // namespace tetra::core
