#include "core/exec_time.hpp"

#include <algorithm>

namespace tetra::core {

Duration exec_time_naive(TimePoint start, TimePoint end, Pid pid,
                         const trace::EventVector& sched_events) {
  // Paper Alg. 2. Line numbering follows the pseudocode; the trailing
  // "no event after end" case (the loop running out) is handled after the
  // loop, which the pseudocode leaves implicit.
  if (end < start) return Duration::zero();  // inverted window: no time
  Duration exec_time = Duration::zero();   // line 1
  TimePoint last_start = start;            // line 2
  bool on_cpu = true;  // the CB start event is emitted from the running thread
  for (const auto& event : sched_events) {  // line 3 (pre-sorted)
    if (event.type != trace::EventType::SchedSwitch) continue;
    const auto& info = event.as<trace::SchedSwitchInfo>();
    if (start < event.time && event.time < end) {  // line 4
      if (info.prev_pid == pid) {                  // line 5
        exec_time += event.time - last_start;      // line 6
        on_cpu = false;
      } else if (info.next_pid == pid) {           // line 7
        last_start = event.time;                   // line 8
        on_cpu = true;
      }
    } else if (event.time > end) {                 // line 9
      if (on_cpu) exec_time += end - last_start;   // line 10
      return exec_time;                            // line 11
    }
  }
  if (on_cpu) exec_time += end - last_start;
  return exec_time;
}

ExecTimeCalculator::ExecTimeCalculator(const trace::EventVector& events) {
  for (const auto& event : events) index_event(event);
  finalize_indices();
}

ExecTimeCalculator::ExecTimeCalculator(const trace::SortedEventView& view) {
  for (const auto& event : view) index_event(event);
  finalize_indices();
}

void ExecTimeCalculator::index_event(const trace::TraceEvent& event) {
  if (event.type == trace::EventType::SchedSwitch) {
    const auto& info = event.as<trace::SchedSwitchInfo>();
    if (info.prev_pid != kIdlePid) {
      switches_[info.prev_pid].push_back(
          Switch{event.time, false, info.prev_state});
    }
    if (info.next_pid != kIdlePid) {
      switches_[info.next_pid].push_back(
          Switch{event.time, true, trace::ThreadRunState::Runnable});
    }
  } else if (event.type == trace::EventType::SchedWakeup) {
    wakeups_[event.as<trace::SchedWakeupInfo>().woken_pid].push_back(event.time);
  }
}

void ExecTimeCalculator::append_columns(const trace::ColumnsView& v,
                                        std::size_t from) {
  // First-touch old sizes, so each per-PID list can be re-merged once.
  std::map<Pid, std::size_t> switch_sizes;
  std::map<Pid, std::size_t> wakeup_sizes;
  for (std::size_t i = from; i < v.count; ++i) {
    const auto type = static_cast<trace::EventType>(v.type[i]);
    if (type == trace::EventType::SchedSwitch) {
      const TimePoint t{v.time[i]};
      const Pid prev = static_cast<Pid>(v.sched_prev_pid(i));
      const Pid next = static_cast<Pid>(v.sched_next_pid(i));
      if (prev != kIdlePid) {
        auto& list = switches_[prev];
        switch_sizes.emplace(prev, list.size());
        list.push_back(Switch{
            t, false,
            static_cast<trace::ThreadRunState>(static_cast<char>(v.aux[i]))});
      }
      if (next != kIdlePid) {
        auto& list = switches_[next];
        switch_sizes.emplace(next, list.size());
        list.push_back(Switch{t, true, trace::ThreadRunState::Runnable});
      }
    } else if (type == trace::EventType::SchedWakeup) {
      const Pid pid = static_cast<Pid>(v.wakeup_pid(i));
      auto& list = wakeups_[pid];
      wakeup_sizes.emplace(pid, list.size());
      list.push_back(TimePoint{v.time[i]});
    }
  }
  // A stable merge keeps older entries first on time ties — identical to
  // the stable_sort a full rebuild applies over the merged event order.
  for (const auto& [pid, old_size] : switch_sizes) {
    auto& list = switches_[pid];
    if (old_size == 0 || old_size == list.size()) continue;
    if (!(list[old_size].time < list[old_size - 1].time)) continue;
    std::inplace_merge(
        list.begin(), list.begin() + static_cast<std::ptrdiff_t>(old_size),
        list.end(),
        [](const Switch& a, const Switch& b) { return a.time < b.time; });
  }
  for (const auto& [pid, old_size] : wakeup_sizes) {
    auto& list = wakeups_[pid];
    if (old_size == 0 || old_size == list.size()) continue;
    if (!(list[old_size] < list[old_size - 1])) continue;
    std::inplace_merge(
        list.begin(), list.begin() + static_cast<std::ptrdiff_t>(old_size),
        list.end());
  }
}

void ExecTimeCalculator::finalize_indices() {
  for (auto& [pid, list] : switches_) {
    std::stable_sort(list.begin(), list.end(),
                     [](const Switch& a, const Switch& b) { return a.time < b.time; });
  }
  for (auto& [pid, list] : wakeups_) {
    std::sort(list.begin(), list.end());
  }
}

const std::vector<ExecTimeCalculator::Switch>* ExecTimeCalculator::switches_for(
    Pid pid) const {
  auto it = switches_.find(pid);
  return it == switches_.end() ? nullptr : &it->second;
}

Duration ExecTimeCalculator::exec_time(TimePoint start, TimePoint end,
                                       Pid pid) const {
  // Inverted windows (corrupt or hand-edited traces) have no well-defined
  // on-CPU intersection; report zero rather than a negative duration.
  if (end < start) return Duration::zero();
  const auto* list = switches_for(pid);
  if (list == nullptr) return end - start;  // never switched: ran throughout
  Duration total = Duration::zero();
  TimePoint last_start = start;
  bool on_cpu = true;
  auto it = std::upper_bound(
      list->begin(), list->end(), start,
      [](TimePoint t, const Switch& s) { return t < s.time; });
  for (; it != list->end() && it->time < end; ++it) {
    if (it->time <= start) continue;
    if (!it->in) {
      if (on_cpu) total += it->time - last_start;
      on_cpu = false;
    } else {
      last_start = it->time;
      on_cpu = true;
    }
  }
  if (on_cpu) total += end - last_start;
  return total;
}

std::optional<TimePoint> ExecTimeCalculator::last_wakeup_before(
    Pid pid, TimePoint t) const {
  auto it = wakeups_.find(pid);
  if (it == wakeups_.end() || it->second.empty()) return std::nullopt;
  const auto& list = it->second;
  auto pos = std::upper_bound(list.begin(), list.end(), t);
  if (pos == list.begin()) return std::nullopt;
  return *(pos - 1);
}

std::size_t ExecTimeCalculator::preemptions_in(TimePoint start, TimePoint end,
                                               Pid pid) const {
  const auto* list = switches_for(pid);
  if (list == nullptr) return 0;
  std::size_t count = 0;
  for (const auto& s : *list) {
    if (s.time <= start) continue;
    if (s.time >= end) break;
    if (!s.in && s.prev_state == trace::ThreadRunState::Runnable) ++count;
  }
  return count;
}

}  // namespace tetra::core
