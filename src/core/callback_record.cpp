#include "core/callback_record.hpp"

#include <algorithm>

namespace tetra::core {

std::string annotate_topic(const std::string& topic, const std::string& suffix) {
  std::string out = topic;
  out += kTopicAnnotationSeparator;
  out += suffix;
  return out;
}

std::pair<std::string, std::string> split_annotated_topic(const std::string& topic) {
  const auto pos = topic.find(kTopicAnnotationSeparator);
  if (pos == std::string::npos) return {topic, {}};
  return {topic.substr(0, pos), topic.substr(pos + 1)};
}

void CallbackRecord::add_instance(TimePoint start, Duration exec_time,
                                  std::optional<Duration> wait_time,
                                  std::optional<TimePoint> end) {
  start_times.push_back(start);
  end_times.push_back(end.value_or(start + exec_time));
  exec_times.push_back(exec_time);
  if (wait_time.has_value()) wait_times.push_back(*wait_time);
  stats.add(exec_time);
}

void CallbackRecord::merge_from(const CallbackRecord& other) {
  is_sync_subscriber |= other.is_sync_subscriber;
  for (const auto& topic : other.out_topics) add_out_topic(topic);
  start_times.insert(start_times.end(), other.start_times.begin(),
                     other.start_times.end());
  end_times.insert(end_times.end(), other.end_times.begin(),
                   other.end_times.end());
  exec_times.insert(exec_times.end(), other.exec_times.begin(),
                    other.exec_times.end());
  wait_times.insert(wait_times.end(), other.wait_times.begin(),
                    other.wait_times.end());
  stats.merge(other.stats);

  // Re-sort the parallel instance vectors chronologically: two workers'
  // streams interleave, and estimated_period() reads consecutive starts.
  std::vector<std::size_t> order(start_times.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [this](std::size_t a, std::size_t b) {
                     return start_times[a] < start_times[b];
                   });
  std::vector<TimePoint> starts, ends;
  std::vector<Duration> execs;
  starts.reserve(order.size());
  ends.reserve(order.size());
  execs.reserve(order.size());
  for (std::size_t i : order) {
    starts.push_back(start_times[i]);
    ends.push_back(end_times[i]);
    execs.push_back(exec_times[i]);
  }
  start_times = std::move(starts);
  end_times = std::move(ends);
  exec_times = std::move(execs);
}

void CallbackRecord::add_out_topic(const std::string& topic) {
  if (std::find(out_topics.begin(), out_topics.end(), topic) == out_topics.end()) {
    out_topics.push_back(topic);
  }
}

std::optional<Duration> CallbackRecord::estimated_period() const {
  if (kind != CallbackKind::Timer || start_times.size() < 2) return std::nullopt;
  std::vector<std::int64_t> diffs;
  diffs.reserve(start_times.size() - 1);
  for (std::size_t i = 1; i < start_times.size(); ++i) {
    diffs.push_back((start_times[i] - start_times[i - 1]).count_ns());
  }
  // Median is robust against dispatch jitter from executor contention.
  std::nth_element(diffs.begin(), diffs.begin() + diffs.size() / 2, diffs.end());
  return Duration{diffs[diffs.size() / 2]};
}

CallbackRecord& CallbackList::match_or_insert(const CallbackRecord& instance) {
  for (auto& record : records) {
    if (record.id != instance.id) continue;
    if (record.kind == CallbackKind::Service &&
        record.in_topic != instance.in_topic) {
      continue;  // services additionally match on the annotated in-topic
    }
    return record;
  }
  CallbackRecord fresh;
  fresh.kind = instance.kind;
  fresh.id = instance.id;
  fresh.pid = instance.pid;
  fresh.node_name = instance.node_name;
  fresh.in_topic = instance.in_topic;
  fresh.is_sync_subscriber = instance.is_sync_subscriber;
  records.push_back(std::move(fresh));
  return records.back();
}

const CallbackRecord* CallbackList::find_by_label(const std::string& label) const {
  for (const auto& record : records) {
    if (record.label == label) return &record;
  }
  return nullptr;
}

std::size_t CallbackList::total_instances() const {
  std::size_t total = 0;
  for (const auto& record : records) total += record.instances();
  return total;
}

}  // namespace tetra::core
