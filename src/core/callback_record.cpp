#include "core/callback_record.hpp"

#include <algorithm>

namespace tetra::core {

std::string annotate_topic(const std::string& topic, const std::string& suffix) {
  std::string out = topic;
  out += kTopicAnnotationSeparator;
  out += suffix;
  return out;
}

std::pair<std::string, std::string> split_annotated_topic(const std::string& topic) {
  const auto pos = topic.find(kTopicAnnotationSeparator);
  if (pos == std::string::npos) return {topic, {}};
  return {topic.substr(0, pos), topic.substr(pos + 1)};
}

void CallbackRecord::add_instance(TimePoint start, Duration exec_time,
                                  std::optional<Duration> wait_time) {
  start_times.push_back(start);
  exec_times.push_back(exec_time);
  if (wait_time.has_value()) wait_times.push_back(*wait_time);
  stats.add(exec_time);
}

void CallbackRecord::add_out_topic(const std::string& topic) {
  if (std::find(out_topics.begin(), out_topics.end(), topic) == out_topics.end()) {
    out_topics.push_back(topic);
  }
}

std::optional<Duration> CallbackRecord::estimated_period() const {
  if (kind != CallbackKind::Timer || start_times.size() < 2) return std::nullopt;
  std::vector<std::int64_t> diffs;
  diffs.reserve(start_times.size() - 1);
  for (std::size_t i = 1; i < start_times.size(); ++i) {
    diffs.push_back((start_times[i] - start_times[i - 1]).count_ns());
  }
  // Median is robust against dispatch jitter from executor contention.
  std::nth_element(diffs.begin(), diffs.begin() + diffs.size() / 2, diffs.end());
  return Duration{diffs[diffs.size() / 2]};
}

CallbackRecord& CallbackList::match_or_insert(const CallbackRecord& instance) {
  for (auto& record : records) {
    if (record.id != instance.id) continue;
    if (record.kind == CallbackKind::Service &&
        record.in_topic != instance.in_topic) {
      continue;  // services additionally match on the annotated in-topic
    }
    return record;
  }
  CallbackRecord fresh;
  fresh.kind = instance.kind;
  fresh.id = instance.id;
  fresh.pid = instance.pid;
  fresh.node_name = instance.node_name;
  fresh.in_topic = instance.in_topic;
  fresh.is_sync_subscriber = instance.is_sync_subscriber;
  records.push_back(std::move(fresh));
  return records.back();
}

const CallbackRecord* CallbackList::find_by_label(const std::string& label) const {
  for (const auto& record : records) {
    if (record.label == label) return &record;
  }
  return nullptr;
}

std::size_t CallbackList::total_instances() const {
  std::size_t total = 0;
  for (const auto& record : records) total += record.instances();
  return total;
}

}  // namespace tetra::core
