// Learning executor concurrency from extracted callback instances.
//
// The paper's synthesis assumes single-threaded executors: callbacks of a
// node never overlap. Multi-threaded executors break that assumption in a
// structured way — callbacks of one mutually-exclusive group stay
// serialized while distinct groups overlap — and that structure is
// observable in the trace: the wall-clock [start, end) intervals of the
// extracted instances.
//
// Inference per node:
//  - observed_workers is the maximum number of simultaneously executing
//    callbacks (a lower bound on the executor's worker count; exactly 1
//    for a single-threaded executor);
//  - a callback observed overlapping *itself* is reentrant;
//  - the serialization groups are the connected components of the
//    "never observed overlapping" graph over the remaining callbacks.
//
// The partition is a *conservative* serialization constraint: members of
// a true mutually-exclusive group can never overlap, so they always land
// in one component (the inference never claims concurrency the executor
// forbids), and only self-overlap — impossible for mutually-exclusive
// callbacks — marks reentrancy. In the other direction the partition may
// serialize more than reality: cross-group pairs that happened never to
// overlap merge into one group, and under sparse observations such a
// bridge can even pull an observed-concurrent pair into one component.
// That direction only inflates predicted latency (it never invents
// concurrency) and vanishes as load and trace length grow — the
// partition converges to the deployment's true groups.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/callback_record.hpp"

namespace tetra::core {

/// Learned scheduling constraints of one callback (by label).
struct CallbackConcurrency {
  /// Serialization group ordinal within the node (dense, 0-based, in
  /// first-appearance order of the node's records).
  int group = 0;
  /// Observed overlapping itself: member of a reentrant group.
  bool reentrant = false;
};

/// Learned executor model of one node.
struct NodeConcurrency {
  /// Max simultaneously executing callbacks observed (>= 1).
  int observed_workers = 1;
  /// Number of distinct serialization groups (reentrant callbacks each
  /// count as their own group).
  int group_count = 1;
  std::map<std::string, CallbackConcurrency> by_label;
};

/// Infers per-node concurrency from per-node CBlists (labels assigned,
/// worker lists merged). Nodes without instances yield the
/// single-threaded default.
std::map<std::string, NodeConcurrency> infer_concurrency(
    const std::vector<CallbackList>& lists);

}  // namespace tetra::core
