// Autoware AVP LIDAR-localization workload (paper §VI, Fig. 3b, Table II):
// five ROS2 nodes / six callbacks:
//   cb1 filter_transform_vlp16_rear   lidar_rear/points_raw   -> _filtered
//   cb2 filter_transform_vlp16_front  lidar_front/points_raw  -> _filtered
//   cb3 point_cloud_fusion (sync)     front filtered  --+
//   cb4 point_cloud_fusion (sync)     rear filtered   --+-> & -> points_fused
//   cb5 voxel_grid_cloud_node         points_fused -> points_fused_downsampled
//   cb6 p2d_ndt_localizer_node        downsampled -> localization/ndt_pose
//
// The raw LIDAR topics are produced by *untraced* sensor processes at
// 10 Hz (the AVP demo's replayed drive), so they appear as dangling inputs
// in the DAG, exactly as in the paper's figure. Execution-time profiles
// are calibrated to Table II; cb6 (NDT) is bimodal — iterative
// registration occasionally converges almost immediately.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dds/domain.hpp"
#include "ros2/context.hpp"
#include "scenario/ground_truth.hpp"
#include "scenario/spec.hpp"

namespace tetra::workloads {

struct AvpOptions {
  /// How long the drive lasts (the demo runs for 80 s).
  Duration run_duration = Duration::sec(80);
  /// LIDAR frame period (10 Hz).
  Duration lidar_period = Duration::ms(100);
  /// Per-frame sensor timing jitter half-range.
  Duration lidar_jitter = Duration::ms(6);
  /// Execution-time inflation factor modeling cache/memory contention from
  /// co-running load (0 = pristine; the case study sweeps SYN's load).
  double contention = 0.0;
  /// PIDs for the two untraced sensor replay processes.
  Pid front_sensor_pid = 501;
  Pid rear_sensor_pid = 502;
};

struct AvpApp {
  /// Paper callback name ("cb1".."cb6") -> normalized label.
  std::map<std::string, std::string> label_of;
  /// Node name per paper callback (Table II's second column).
  std::map<std::string, std::string> node_of;
  /// The raw->pose topic chain for end-to-end latency analysis.
  std::vector<std::string> chain_topics;
  /// Owned sensor replay writers (already started).
  std::vector<std::unique_ptr<dds::PeriodicWriter>> sensors;
  /// The declarative description this app was instantiated from, and the
  /// ground truth the synthesis must recover — so AVP flows through the
  /// same round-trip validation as generated scenarios.
  scenario::ScenarioSpec spec;
  scenario::GroundTruth ground_truth;
};

/// The AVP pipeline as a ScenarioSpec: five nodes, the two-member sync
/// group, and the two untraced LIDAR replay writers as external inputs.
/// Profiles are pre-scaled by (1 + options.contention).
scenario::ScenarioSpec avp_scenario_spec(const AvpOptions& options = {});

/// Instantiates the pipeline (via ScenarioRunner::instantiate) and starts
/// the sensor writers for options.run_duration of simulated time.
AvpApp build_avp_localization(ros2::Context& ctx, const AvpOptions& options);

/// Table II reference values (milliseconds), keyed "cb1".."cb6", for
/// experiment reports: {mBCET, mACET, mWCET}.
struct TableIIRow {
  double mbcet_ms;
  double macet_ms;
  double mwcet_ms;
};
const std::map<std::string, TableIIRow>& table2_reference();

}  // namespace tetra::workloads
