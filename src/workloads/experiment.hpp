// The paper's case-study driver (§VI): runs AVP localization and SYN
// concurrently on a simulated multi-core machine N times, tracing each run
// with the three eBPF tracers, synthesizing a DAG per run and merging the
// DAGs (deployment §V option ii). SYN's constant load changes from run to
// run, which inflates AVP execution times through a contention model —
// reproducing the Fig. 4 convergence behaviour.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/dag.hpp"
#include "core/model_synthesis.hpp"
#include "ebpf/tracers.hpp"
#include "trace/event.hpp"
#include "workloads/avp_localization.hpp"
#include "workloads/syn_app.hpp"

namespace tetra::workloads {

struct CaseStudyConfig {
  int runs = 50;
  Duration run_duration = Duration::sec(80);
  int num_cpus = 12;           ///< the paper's Ryzen 3900X has 12 cores
  /// Seed for the per-run SYN load sweep. The default draws a sequence
  /// whose maximal interference occurs at run ~23, mirroring where the
  /// paper's sweep happened to peak (Fig. 4); any seed preserves the
  /// qualitative shape (mWCET grows, then stays flat).
  std::uint64_t seed = 38;
  bool with_avp = true;
  bool with_syn = true;
  int interference_threads = 2;
  /// SYN load factor range sampled per run (paper: load varied per run).
  double syn_load_min = 0.5;
  double syn_load_max = 1.5;
  /// Peak AVP demand inflation at maximal SYN load (cache/memory
  /// contention model, cubic in normalized load); 0.10 gives the paper's
  /// ~10% mWCET span across the load sweep.
  double contention_coefficient = 0.10;
  /// Keep per-run traces (memory-heavy; needed for merge-strategy and
  /// latency experiments).
  bool keep_traces = false;
  core::SynthesisOptions synthesis;
  /// Worker threads for the synthesis session. Only effective without a
  /// per_run observer: an observer needs each model as its run completes,
  /// forcing sequential inline synthesis; without one, all per-run
  /// syntheses batch onto the pool after the last run (the traces are
  /// retained until then, trading peak memory for parallelism).
  int threads = 1;
};

struct RunResult {
  int run_index = 0;
  double syn_load_factor = 1.0;
  core::TimingModel model;
  ebpf::OverheadReport overhead;
  Duration app_busy_time = Duration::zero();
  std::optional<trace::EventVector> trace;  ///< when keep_traces
};

struct CaseStudyResult {
  std::vector<RunResult> runs;
  core::Dag merged_dag;  ///< per-run DAGs merged (§V option ii)
  /// Label maps from the last run (stable across runs by construction).
  std::map<std::string, std::string> avp_labels;
  std::map<std::string, std::string> syn_labels;
  std::vector<std::string> avp_chain_topics;

  /// Total simulated span covered by the merged model (runs x duration).
  Duration observed_span = Duration::zero();
};

/// Runs the full case study. `per_run` (optional) observes each run as it
/// completes (used by convergence tracking and progress output).
CaseStudyResult run_case_study(
    const CaseStudyConfig& config,
    const std::function<void(const RunResult&)>& per_run = {});

}  // namespace tetra::workloads
