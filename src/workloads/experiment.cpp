#include "workloads/experiment.hpp"

#include <stdexcept>

#include "api/session.hpp"
#include "sched/interference.hpp"

namespace tetra::workloads {

CaseStudyResult run_case_study(
    const CaseStudyConfig& config,
    const std::function<void(const RunResult&)>& per_run) {
  CaseStudyResult result;
  // One streaming session spans the whole case study: each run's trace is
  // ingested as its own logical trace, and the final §V option (ii) merge
  // reuses every cached per-run DAG. A per_run observer needs each model
  // the moment its run completes, which forces eager inline synthesis
  // (and lets traces be released immediately, keeping memory bounded);
  // without an observer, synthesis is deferred so all runs hit the
  // config.threads worker pool in one batch.
  const bool eager = static_cast<bool>(per_run);
  api::SynthesisSession session(
      api::SynthesisConfig()
          .merge_strategy(api::MergeStrategy::MergeDags)
          .core_options(config.synthesis)
          .threads(config.threads));
  Rng run_rng(config.seed);

  for (int run = 0; run < config.runs; ++run) {
    // Fresh context per run: new PIDs, new pseudo-addresses, new phases —
    // as with real process restarts.
    ros2::Context::Config ctx_config;
    ctx_config.num_cpus = config.num_cpus;
    ctx_config.seed = config.seed * 1000003ULL + static_cast<std::uint64_t>(run);
    ros2::Context ctx(ctx_config);

    ebpf::TracerSuite suite(ctx);
    suite.start_init();

    const double load_factor =
        run_rng.uniform(config.syn_load_min, config.syn_load_max);

    RunResult run_result;
    run_result.run_index = run;
    run_result.syn_load_factor = load_factor;

    AvpApp avp;
    SynApp syn;
    if (config.with_avp) {
      AvpOptions avp_options;
      avp_options.run_duration = config.run_duration;
      // Cache/memory contention responds convexly to co-runner load: only
      // near-peak SYN loads push AVP execution times appreciably. This is
      // what makes the cumulative mWCET keep creeping up until a run with
      // near-maximal interference has occurred (paper Fig. 4: ~run 23).
      const double span = config.syn_load_max - config.syn_load_min;
      const double normalized =
          span > 0.0 ? (load_factor - config.syn_load_min) / span : 0.0;
      avp_options.contention = config.contention_coefficient * normalized *
                               normalized * normalized;
      avp = build_avp_localization(ctx, avp_options);
    }
    if (config.with_syn) {
      syn = build_syn_app(ctx, SynOptions{load_factor});
    }
    if (config.interference_threads > 0) {
      Rng interference_rng = ctx.rng().fork();
      sched::spawn_interference(ctx.machine(), interference_rng,
                                config.interference_threads,
                                sched::InterferenceConfig{});
    }

    trace::EventVector init_trace = suite.stop_init();
    suite.start_runtime();
    ctx.run_for(config.run_duration);
    trace::EventVector runtime_trace = suite.stop_runtime();

    const std::string trace_id = "run-" + std::to_string(run);
    const api::IngestOptions segment{.trace_id = trace_id, .mode = ""};
    session.ingest(std::move(init_trace), segment);
    session.ingest(std::move(runtime_trace), segment);

    run_result.overhead = suite.overhead_report();
    run_result.app_busy_time = ctx.machine().total_busy_time();
    if (eager) {
      api::Result<core::TimingModel> model = session.trace_model(trace_id);
      if (!model.ok()) {
        throw std::runtime_error("case-study synthesis failed: " +
                                 model.error().to_string());
      }
      run_result.model = std::move(model).take();
      if (config.keep_traces) {
        run_result.trace = session.merged_events(trace_id).value();
      }
      // Keep the session's memory bounded across long sweeps: the cached
      // per-run DAG is all the final merge needs.
      session.release_events(trace_id);
      per_run(run_result);
    }
    result.runs.push_back(std::move(run_result));

    if (config.with_avp && result.avp_labels.empty()) {
      result.avp_labels = avp.label_of;
      result.avp_chain_topics = avp.chain_topics;
    }
    if (config.with_syn && result.syn_labels.empty()) {
      result.syn_labels = syn.label_of;
    }
  }
  // Final §V option (ii) merge. Eager mode arrives with every trace
  // clean (pure DAG union); deferred mode synthesizes all runs here on
  // the worker pool, then back-fills the per-run results.
  api::Result<core::TimingModel> merged = session.model();
  if (!merged.ok()) {
    throw std::runtime_error("case-study merge failed: " +
                             merged.error().to_string());
  }
  result.merged_dag = std::move(merged).take().dag;
  if (!eager) {
    for (RunResult& run_result : result.runs) {
      const std::string trace_id =
          "run-" + std::to_string(run_result.run_index);
      run_result.model = session.trace_model(trace_id).value();  // cached
      if (config.keep_traces) {
        run_result.trace = session.merged_events(trace_id).value();
      }
      session.release_events(trace_id);
    }
  }
  result.observed_span = config.run_duration * config.runs;
  return result;
}

}  // namespace tetra::workloads
