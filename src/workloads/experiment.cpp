#include "workloads/experiment.hpp"

#include "sched/interference.hpp"
#include "trace/merge.hpp"

namespace tetra::workloads {

CaseStudyResult run_case_study(
    const CaseStudyConfig& config,
    const std::function<void(const RunResult&)>& per_run) {
  CaseStudyResult result;
  core::ModelSynthesizer synthesizer(config.synthesis);
  Rng run_rng(config.seed);

  for (int run = 0; run < config.runs; ++run) {
    // Fresh context per run: new PIDs, new pseudo-addresses, new phases —
    // as with real process restarts.
    ros2::Context::Config ctx_config;
    ctx_config.num_cpus = config.num_cpus;
    ctx_config.seed = config.seed * 1000003ULL + static_cast<std::uint64_t>(run);
    ros2::Context ctx(ctx_config);

    ebpf::TracerSuite suite(ctx);
    suite.start_init();

    const double load_factor =
        run_rng.uniform(config.syn_load_min, config.syn_load_max);

    RunResult run_result;
    run_result.run_index = run;
    run_result.syn_load_factor = load_factor;

    AvpApp avp;
    SynApp syn;
    if (config.with_avp) {
      AvpOptions avp_options;
      avp_options.run_duration = config.run_duration;
      // Cache/memory contention responds convexly to co-runner load: only
      // near-peak SYN loads push AVP execution times appreciably. This is
      // what makes the cumulative mWCET keep creeping up until a run with
      // near-maximal interference has occurred (paper Fig. 4: ~run 23).
      const double span = config.syn_load_max - config.syn_load_min;
      const double normalized =
          span > 0.0 ? (load_factor - config.syn_load_min) / span : 0.0;
      avp_options.contention = config.contention_coefficient * normalized *
                               normalized * normalized;
      avp = build_avp_localization(ctx, avp_options);
    }
    if (config.with_syn) {
      syn = build_syn_app(ctx, SynOptions{load_factor});
    }
    if (config.interference_threads > 0) {
      Rng interference_rng = ctx.rng().fork();
      sched::spawn_interference(ctx.machine(), interference_rng,
                                config.interference_threads,
                                sched::InterferenceConfig{});
    }

    trace::EventVector init_trace = suite.stop_init();
    suite.start_runtime();
    ctx.run_for(config.run_duration);
    trace::EventVector runtime_trace = suite.stop_runtime();

    trace::EventVector merged =
        trace::merge_sorted({std::move(init_trace), std::move(runtime_trace)});
    run_result.model = synthesizer.synthesize(merged);
    run_result.overhead = suite.overhead_report();
    run_result.app_busy_time = ctx.machine().total_busy_time();
    if (config.keep_traces) run_result.trace = std::move(merged);

    result.merged_dag.merge(run_result.model.dag);
    if (per_run) per_run(run_result);
    result.runs.push_back(std::move(run_result));

    if (config.with_avp && result.avp_labels.empty()) {
      result.avp_labels = avp.label_of;
      result.avp_chain_topics = avp.chain_topics;
    }
    if (config.with_syn && result.syn_labels.empty()) {
      result.syn_labels = syn.label_of;
    }
  }
  result.observed_span = config.run_duration * config.runs;
  return result;
}

}  // namespace tetra::workloads
