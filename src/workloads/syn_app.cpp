#include "workloads/syn_app.hpp"

namespace tetra::workloads {

using ros2::Plan;

SynApp build_syn_app(ros2::Context& ctx, const SynOptions& options) {
  const double f = options.load_factor;
  auto load = [f](double ms) {
    return DurationDistribution::constant(Duration::ms_f(ms * f));
  };

  // --- nodes ---------------------------------------------------------------
  ros2::Node& timers = ctx.create_node({.name = "syn_timers"});
  ros2::Node& servers = ctx.create_node({.name = "syn_servers"});
  ros2::Node& mixed = ctx.create_node({.name = "syn_mixed"});
  ros2::Node& gateway = ctx.create_node({.name = "syn_gateway"});
  ros2::Node& fusion = ctx.create_node({.name = "syn_fusion"});
  ros2::Node& planning = ctx.create_node({.name = "syn_planning"});

  // --- syn_timers: T2 (100 ms -> /t1), T3 (150 ms -> /t3, dangling) --------
  ros2::Publisher& pub_t1 = timers.create_publisher("/t1");
  ros2::Publisher& pub_t3 = timers.create_publisher("/t3");
  timers.create_timer(Duration::ms(100), Plan::publish_after(load(3.0), pub_t1));
  timers.create_timer(Duration::ms(150), Plan::publish_after(load(2.5), pub_t3));

  // --- syn_servers: SV1 (/sv1), SV2 (/sv2) ----------------------------------
  servers.create_service("/sv1", Plan::just(load(3.0)));
  servers.create_service("/sv2", Plan::just(load(2.5)));

  // --- syn_mixed: T1 (120 ms -> /f1), SC5 (/clp3 -> /f2), SV3 (/sv3) --------
  ros2::Publisher& pub_f1 = mixed.create_publisher("/f1");
  ros2::Publisher& pub_f2 = mixed.create_publisher("/f2");
  mixed.create_timer(Duration::ms(120), Plan::publish_after(load(2.0), pub_f1));
  mixed.create_subscription("/clp3", Plan::publish_after(load(2.0), pub_f2));
  mixed.create_service("/sv3", Plan::just(load(4.0)));

  // --- syn_gateway: SC1, SC4, CL1, CL2, CL4 ---------------------------------
  // Creation order: CL4 (the /sv3 response handler) must exist before CL2,
  // whose plan invokes it; ordinals therefore run CL1, CL4, CL2 and the
  // label map below translates paper names.
  ros2::Publisher& pub_clp3 = gateway.create_publisher("/clp3");
  ros2::Client& cl1 = gateway.create_client(
      "/sv1", Plan::publish_after(load(1.5), pub_clp3));
  ros2::Client& cl4 = gateway.create_client("/sv3", Plan::just(load(1.2)));
  ros2::Client& cl2 =
      gateway.create_client("/sv2", Plan::call_after(load(2.0), cl4));
  gateway.create_subscription("/t1", Plan::call_after(load(4.0), cl1));   // SC1
  gateway.create_subscription("/clp3", Plan::call_after(load(3.0), cl2)); // SC4

  // --- syn_fusion: SC2.1 + SC2.2 synchronized -> /f3 ------------------------
  ros2::Publisher& pub_f3 = fusion.create_publisher("/f3");
  ros2::Subscription& sc21 =
      fusion.create_subscription("/f1", Plan::just(load(1.5)));
  ros2::Subscription& sc22 =
      fusion.create_subscription("/f2", Plan::just(load(1.2)));
  fusion.create_sync_group({&sc21, &sc22}, load(2.0), pub_f3);

  // --- syn_planning: SC3 (sub /f3 -> call /sv3), CL3 ------------------------
  ros2::Client& cl3 = planning.create_client("/sv3", Plan::just(load(1.0)));
  planning.create_subscription("/f3", Plan::call_after(load(5.0), cl3));  // SC3

  // --- paper-name -> normalized-label map -----------------------------------
  SynApp app;
  app.label_of = {
      {"T1", "syn_mixed/T1"},      {"T2", "syn_timers/T1"},
      {"T3", "syn_timers/T2"},     {"SC1", "syn_gateway/SC1"},
      {"SC2.1", "syn_fusion/SC1"}, {"SC2.2", "syn_fusion/SC2"},
      {"SC3", "syn_planning/SC1"}, {"SC4", "syn_gateway/SC2"},
      {"SC5", "syn_mixed/SC1"},    {"SV1", "syn_servers/SV1"},
      {"SV2", "syn_servers/SV2"},  {"SV3", "syn_mixed/SV1"},
      {"CL1", "syn_gateway/CL1"},  {"CL2", "syn_gateway/CL3"},
      {"CL3", "syn_planning/CL1"}, {"CL4", "syn_gateway/CL2"},
  };
  app.main_chain_topics = {"/t1", "/sv1Request", "/sv1Reply", "/clp3", "/f2"};
  app.fusion_chain_topics = {"/f1", "/f3"};
  return app;
}

}  // namespace tetra::workloads
