#include "workloads/syn_app.hpp"

#include "scenario/runner.hpp"

namespace tetra::workloads {

using scenario::call_effect;
using scenario::publish_effect;

scenario::ScenarioSpec syn_scenario_spec(const SynOptions& options) {
  const double f = options.load_factor;
  auto load = [f](double ms) {
    return DurationDistribution::constant(Duration::ms_f(ms * f));
  };

  scenario::ScenarioSpec spec;
  spec.name = "syn";

  // --- syn_timers: T2 (100 ms -> /t1), T3 (150 ms -> /t3, dangling) --------
  scenario::ScenarioNodeSpec timers;
  timers.name = "syn_timers";
  timers.timers.push_back(
      {Duration::ms(100), std::nullopt, load(3.0), {publish_effect("/t1")}});
  timers.timers.push_back(
      {Duration::ms(150), std::nullopt, load(2.5), {publish_effect("/t3")}});
  spec.nodes.push_back(std::move(timers));

  // --- syn_servers: SV1 (/sv1), SV2 (/sv2) ----------------------------------
  scenario::ScenarioNodeSpec servers;
  servers.name = "syn_servers";
  servers.services.push_back({"/sv1", load(3.0), {}});
  servers.services.push_back({"/sv2", load(2.5), {}});
  spec.nodes.push_back(std::move(servers));

  // --- syn_mixed: T1 (120 ms -> /f1), SC5 (/clp3 -> /f2), SV3 (/sv3) --------
  scenario::ScenarioNodeSpec mixed;
  mixed.name = "syn_mixed";
  mixed.timers.push_back(
      {Duration::ms(120), std::nullopt, load(2.0), {publish_effect("/f1")}});
  mixed.subscriptions.push_back({"/clp3", load(2.0), {publish_effect("/f2")}});
  mixed.services.push_back({"/sv3", load(4.0), {}});
  spec.nodes.push_back(std::move(mixed));

  // --- syn_gateway: SC1, SC4, CL1, CL2, CL4 ---------------------------------
  // Client order: CL4 (the /sv3 response handler, ordinal CL2) before CL2
  // (ordinal CL3), whose plan invokes it — call effects may only reference
  // earlier clients. The paper-name map in build_syn_app translates.
  scenario::ScenarioNodeSpec gateway;
  gateway.name = "syn_gateway";
  gateway.clients.push_back({"/sv1", load(1.5), {publish_effect("/clp3")}});
  gateway.clients.push_back({"/sv3", load(1.2), {}});
  gateway.clients.push_back({"/sv2", load(2.0), {call_effect(1)}});
  gateway.subscriptions.push_back({"/t1", load(4.0), {call_effect(0)}});   // SC1
  gateway.subscriptions.push_back({"/clp3", load(3.0), {call_effect(2)}}); // SC4
  spec.nodes.push_back(std::move(gateway));

  // --- syn_fusion: SC2.1 + SC2.2 synchronized -> /f3 ------------------------
  scenario::ScenarioNodeSpec fusion;
  fusion.name = "syn_fusion";
  fusion.subscriptions.push_back({"/f1", load(1.5), {}});
  fusion.subscriptions.push_back({"/f2", load(1.2), {}});
  fusion.sync_groups.push_back({{0, 1}, load(2.0), "/f3", 4096});
  spec.nodes.push_back(std::move(fusion));

  // --- syn_planning: SC3 (sub /f3 -> call /sv3), CL3 ------------------------
  scenario::ScenarioNodeSpec planning;
  planning.name = "syn_planning";
  planning.clients.push_back({"/sv3", load(1.0), {}});
  planning.subscriptions.push_back({"/f3", load(5.0), {call_effect(0)}});  // SC3
  spec.nodes.push_back(std::move(planning));

  return spec;
}

SynApp build_syn_app(ros2::Context& ctx, const SynOptions& options) {
  SynApp app;
  app.spec = syn_scenario_spec(options);
  app.ground_truth = scenario::build_ground_truth(app.spec);
  scenario::ScenarioRunner::instantiate(ctx, app.spec);

  // --- paper-name -> normalized-label map -----------------------------------
  app.label_of = {
      {"T1", "syn_mixed/T1"},      {"T2", "syn_timers/T1"},
      {"T3", "syn_timers/T2"},     {"SC1", "syn_gateway/SC1"},
      {"SC2.1", "syn_fusion/SC1"}, {"SC2.2", "syn_fusion/SC2"},
      {"SC3", "syn_planning/SC1"}, {"SC4", "syn_gateway/SC2"},
      {"SC5", "syn_mixed/SC1"},    {"SV1", "syn_servers/SV1"},
      {"SV2", "syn_servers/SV2"},  {"SV3", "syn_mixed/SV1"},
      {"CL1", "syn_gateway/CL1"},  {"CL2", "syn_gateway/CL3"},
      {"CL3", "syn_planning/CL1"}, {"CL4", "syn_gateway/CL2"},
  };
  app.main_chain_topics = {"/t1", "/sv1Request", "/sv1Reply", "/clp3", "/f2"};
  app.fusion_chain_topics = {"/f1", "/f3"};
  return app;
}

}  // namespace tetra::workloads
