// The SYN synthetic application (paper §VI, Fig. 3a): six ROS2 nodes
// combining timers, subscribers, services (one with two distinct callers)
// and clients, plus a two-way message synchronization. Every structural
// property the paper states about SYN holds:
//   (i)  same-type callbacks coexisting in one node (T2+T3, SC1+SC4,
//        SV1+SV2, CL2+CL4),
//   (ii) a node with three different callback kinds (T1, SC5, SV3),
//   (iii) /clp3 subscribed by two callbacks (SC4, SC5),
//   (iv) service /sv3 invoked from two callbacks (SC3 and CL2) — the DAG
//        must show two SV3 vertices,
//   (v)  /f1 + /f2 synchronized into /f3 via message_filters.
// The exact node grouping in the paper's figure is not recoverable from
// the text; DESIGN.md §5 documents this reconstruction.
#pragma once

#include <map>
#include <string>

#include "ros2/context.hpp"
#include "scenario/ground_truth.hpp"
#include "scenario/spec.hpp"

namespace tetra::workloads {

struct SynOptions {
  /// Scales every callback's (constant) computational load; the paper
  /// varies SYN's load across runs to study interference sensitivity.
  double load_factor = 1.0;
};

/// Handles returned to tests/benches: paper callback names mapped to the
/// normalized labels the synthesis will assign ("T2" -> "syn_timers/T1").
struct SynApp {
  std::map<std::string, std::string> label_of;
  /// Topic sequence of the longest unconditional chain (for latency
  /// analyses): /t1 -> ... -> /clp3 -> /f2 (ends at the sync member —
  /// data flow beyond the AND junction is conditional on arrival order).
  std::vector<std::string> main_chain_topics;
  /// The fusion hop /f1 -> /f3: completes only when the /f1 member is the
  /// last to arrive, which is the common case in this wiring.
  std::vector<std::string> fusion_chain_topics;
  /// The declarative description this app was instantiated from, and the
  /// ground truth the synthesis must recover — so SYN flows through the
  /// same round-trip validation as generated scenarios.
  scenario::ScenarioSpec spec;
  scenario::GroundTruth ground_truth;
};

/// The SYN topology as a ScenarioSpec (callback ordinals match the label
/// map above). Loads are constant per run (paper: "For each CB in SYN, we
/// have used a constant computational load for a single run"), scaled by
/// options.load_factor.
scenario::ScenarioSpec syn_scenario_spec(const SynOptions& options = {});

/// Instantiates SYN into the context (via ScenarioRunner::instantiate).
SynApp build_syn_app(ros2::Context& ctx, const SynOptions& options = {});

}  // namespace tetra::workloads
