#include "workloads/avp_localization.hpp"

namespace tetra::workloads {

using ros2::Plan;

namespace {

/// Table II-calibrated execution-time profiles (before contention).
DurationDistribution cb1_profile() {  // rear filter: 13.82 / 17.1 / 19.82
  return DurationDistribution::normal(Duration::ms_f(17.1), Duration::ms_f(1.3),
                                      Duration::ms_f(13.82),
                                      Duration::ms_f(19.82));
}
DurationDistribution cb2_profile() {  // front filter: 23.31 / 27.07 / 30.5
  return DurationDistribution::normal(Duration::ms_f(27.07), Duration::ms_f(1.6),
                                      Duration::ms_f(23.31),
                                      Duration::ms_f(30.5));
}
DurationDistribution cb3_base() {  // fusion sub (front side) base handling
  return DurationDistribution::normal(Duration::ms_f(0.5), Duration::ms_f(0.06),
                                      Duration::ms_f(0.41), Duration::ms_f(0.8));
}
DurationDistribution cb4_base() {  // fusion sub (rear side) base handling
  return DurationDistribution::normal(Duration::ms_f(0.45), Duration::ms_f(0.05),
                                      Duration::ms_f(0.38), Duration::ms_f(0.75));
}
DurationDistribution fusion_profile() {  // fusion work run by the last arrival
  return DurationDistribution::normal(Duration::ms_f(2.6), Duration::ms_f(0.25),
                                      Duration::ms_f(2.0), Duration::ms_f(3.2));
}
DurationDistribution cb5_profile() {  // voxel grid: 6.58 / 8.47 / 13.36
  return DurationDistribution::lognormal(Duration::ms_f(8.2), 0.12,
                                         Duration::ms_f(6.58),
                                         Duration::ms_f(13.36));
}
DurationDistribution cb6_profile() {  // NDT localizer: 2.78 / 25.64 / 60.93
  // Bimodal: ~7% of frames converge almost immediately (vehicle at rest),
  // the rest follow a heavy-tailed iterative-registration profile.
  return DurationDistribution::mixture(
      DurationDistribution::uniform(Duration::ms_f(2.78), Duration::ms_f(9.0)),
      DurationDistribution::lognormal(Duration::ms_f(25.5), 0.32,
                                      Duration::ms_f(9.0),
                                      Duration::ms_f(60.93)),
      /*weight_a=*/0.07);
}

}  // namespace

AvpApp build_avp_localization(ros2::Context& ctx, const AvpOptions& options) {
  const double inflate = 1.0 + options.contention;
  auto prof = [inflate](DurationDistribution d) { return d.scaled(inflate); };

  // --- nodes ---------------------------------------------------------------
  ros2::Node& rear_filter =
      ctx.create_node({.name = "filter_transform_vlp16_rear"});
  ros2::Node& front_filter =
      ctx.create_node({.name = "filter_transform_vlp16_front"});
  ros2::Node& fusion = ctx.create_node({.name = "point_cloud_fusion"});
  ros2::Node& voxel = ctx.create_node({.name = "voxel_grid_cloud_node"});
  ros2::Node& localizer = ctx.create_node({.name = "p2d_ndt_localizer_node"});

  // --- cb1 / cb2: raw -> filtered -------------------------------------------
  ros2::Publisher& rear_filtered =
      rear_filter.create_publisher("lidar_rear/points_filtered");
  rear_filter.create_subscription(
      "lidar_rear/points_raw",
      Plan::publish_after(prof(cb1_profile()), rear_filtered, 16384));
  ros2::Publisher& front_filtered =
      front_filter.create_publisher("lidar_front/points_filtered");
  front_filter.create_subscription(
      "lidar_front/points_raw",
      Plan::publish_after(prof(cb2_profile()), front_filtered, 16384));

  // --- cb3 / cb4: synchronized fusion -> points_fused ------------------------
  // cb3 subscribes the front side: the front chain is the slower one, so
  // cb3 usually consumes the completing sample and runs the fusion —
  // matching Table II's asymmetric averages (3.1 ms vs 0.62 ms).
  ros2::Publisher& fused = fusion.create_publisher("lidars/points_fused");
  ros2::Subscription& cb3 = fusion.create_subscription(
      "lidar_front/points_filtered", Plan::just(prof(cb3_base())));
  ros2::Subscription& cb4 = fusion.create_subscription(
      "lidar_rear/points_filtered", Plan::just(prof(cb4_base())));
  fusion.create_sync_group({&cb3, &cb4}, prof(fusion_profile()), fused, 32768);

  // --- cb5: voxel grid downsampling ------------------------------------------
  ros2::Publisher& downsampled =
      voxel.create_publisher("lidars/points_fused_downsampled");
  voxel.create_subscription(
      "lidars/points_fused",
      Plan::publish_after(prof(cb5_profile()), downsampled, 8192));

  // --- cb6: NDT localization ---------------------------------------------------
  ros2::Publisher& pose = localizer.create_publisher("localization/ndt_pose");
  localizer.create_subscription(
      "lidars/points_fused_downsampled",
      Plan::publish_after(prof(cb6_profile()), pose, 256));

  // --- untraced sensor replay (10 Hz, jittered) -------------------------------
  AvpApp app;
  const TimePoint until = ctx.simulator().now() + options.run_duration;
  auto jitter = DurationDistribution::uniform(-options.lidar_jitter,
                                              options.lidar_jitter);
  auto front_sensor = std::make_unique<dds::PeriodicWriter>(
      ctx.domain(), "lidar_front/points_raw", options.front_sensor_pid,
      options.lidar_period, Duration::ms(10), std::size_t{32768});
  front_sensor->set_jitter(jitter, ctx.rng().fork());
  front_sensor->start(until);
  auto rear_sensor = std::make_unique<dds::PeriodicWriter>(
      ctx.domain(), "lidar_rear/points_raw", options.rear_sensor_pid,
      options.lidar_period, Duration::ms(10), std::size_t{32768});
  rear_sensor->set_jitter(jitter, ctx.rng().fork());
  rear_sensor->start(until);
  app.sensors.push_back(std::move(front_sensor));
  app.sensors.push_back(std::move(rear_sensor));

  // --- name maps ----------------------------------------------------------------
  app.label_of = {
      {"cb1", "filter_transform_vlp16_rear/SC1"},
      {"cb2", "filter_transform_vlp16_front/SC1"},
      {"cb3", "point_cloud_fusion/SC1"},
      {"cb4", "point_cloud_fusion/SC2"},
      {"cb5", "voxel_grid_cloud_node/SC1"},
      {"cb6", "p2d_ndt_localizer_node/SC1"},
  };
  app.node_of = {
      {"cb1", "filter_transform_vlp16_rear"},
      {"cb2", "filter_transform_vlp16_front"},
      {"cb3", "point_cloud_fusion"},
      {"cb4", "point_cloud_fusion"},
      {"cb5", "voxel_grid_cloud_node"},
      {"cb6", "p2d_ndt_localizer_node"},
  };
  // Latency chain ends at the topic cb6 consumes; the traversal completes
  // at cb6's callback end (the pose publication itself has no subscriber).
  app.chain_topics = {"lidar_front/points_raw", "lidar_front/points_filtered",
                      "lidars/points_fused", "lidars/points_fused_downsampled"};
  return app;
}

const std::map<std::string, TableIIRow>& table2_reference() {
  static const std::map<std::string, TableIIRow> kTable{
      {"cb1", {13.82, 17.10, 19.82}}, {"cb2", {23.31, 27.07, 30.50}},
      {"cb3", {0.41, 3.10, 3.97}},    {"cb4", {0.38, 0.62, 3.36}},
      {"cb5", {6.58, 8.47, 13.36}},   {"cb6", {2.78, 25.64, 60.93}},
  };
  return kTable;
}

}  // namespace tetra::workloads
