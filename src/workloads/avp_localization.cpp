#include "workloads/avp_localization.hpp"

#include "scenario/runner.hpp"

namespace tetra::workloads {

using scenario::publish_effect;

namespace {

/// Table II-calibrated execution-time profiles (before contention).
DurationDistribution cb1_profile() {  // rear filter: 13.82 / 17.1 / 19.82
  return DurationDistribution::normal(Duration::ms_f(17.1), Duration::ms_f(1.3),
                                      Duration::ms_f(13.82),
                                      Duration::ms_f(19.82));
}
DurationDistribution cb2_profile() {  // front filter: 23.31 / 27.07 / 30.5
  return DurationDistribution::normal(Duration::ms_f(27.07), Duration::ms_f(1.6),
                                      Duration::ms_f(23.31),
                                      Duration::ms_f(30.5));
}
DurationDistribution cb3_base() {  // fusion sub (front side) base handling
  return DurationDistribution::normal(Duration::ms_f(0.5), Duration::ms_f(0.06),
                                      Duration::ms_f(0.41), Duration::ms_f(0.8));
}
DurationDistribution cb4_base() {  // fusion sub (rear side) base handling
  return DurationDistribution::normal(Duration::ms_f(0.45), Duration::ms_f(0.05),
                                      Duration::ms_f(0.38), Duration::ms_f(0.75));
}
DurationDistribution fusion_profile() {  // fusion work run by the last arrival
  return DurationDistribution::normal(Duration::ms_f(2.6), Duration::ms_f(0.25),
                                      Duration::ms_f(2.0), Duration::ms_f(3.2));
}
DurationDistribution cb5_profile() {  // voxel grid: 6.58 / 8.47 / 13.36
  return DurationDistribution::lognormal(Duration::ms_f(8.2), 0.12,
                                         Duration::ms_f(6.58),
                                         Duration::ms_f(13.36));
}
DurationDistribution cb6_profile() {  // NDT localizer: 2.78 / 25.64 / 60.93
  // Bimodal: ~7% of frames converge almost immediately (vehicle at rest),
  // the rest follow a heavy-tailed iterative-registration profile.
  return DurationDistribution::mixture(
      DurationDistribution::uniform(Duration::ms_f(2.78), Duration::ms_f(9.0)),
      DurationDistribution::lognormal(Duration::ms_f(25.5), 0.32,
                                      Duration::ms_f(9.0),
                                      Duration::ms_f(60.93)),
      /*weight_a=*/0.07);
}

}  // namespace

scenario::ScenarioSpec avp_scenario_spec(const AvpOptions& options) {
  const double inflate = 1.0 + options.contention;
  auto prof = [inflate](DurationDistribution d) { return d.scaled(inflate); };

  scenario::ScenarioSpec spec;
  spec.name = "avp";
  spec.run_duration = options.run_duration;

  // --- cb1 / cb2: raw -> filtered -------------------------------------------
  scenario::ScenarioNodeSpec rear_filter;
  rear_filter.name = "filter_transform_vlp16_rear";
  rear_filter.subscriptions.push_back(
      {"lidar_rear/points_raw", prof(cb1_profile()),
       {publish_effect("lidar_rear/points_filtered", 16384)}});
  spec.nodes.push_back(std::move(rear_filter));

  scenario::ScenarioNodeSpec front_filter;
  front_filter.name = "filter_transform_vlp16_front";
  front_filter.subscriptions.push_back(
      {"lidar_front/points_raw", prof(cb2_profile()),
       {publish_effect("lidar_front/points_filtered", 16384)}});
  spec.nodes.push_back(std::move(front_filter));

  // --- cb3 / cb4: synchronized fusion -> points_fused ------------------------
  // cb3 subscribes the front side: the front chain is the slower one, so
  // cb3 usually consumes the completing sample and runs the fusion —
  // matching Table II's asymmetric averages (3.1 ms vs 0.62 ms).
  scenario::ScenarioNodeSpec fusion;
  fusion.name = "point_cloud_fusion";
  fusion.subscriptions.push_back(
      {"lidar_front/points_filtered", prof(cb3_base()), {}});
  fusion.subscriptions.push_back(
      {"lidar_rear/points_filtered", prof(cb4_base()), {}});
  fusion.sync_groups.push_back(
      {{0, 1}, prof(fusion_profile()), "lidars/points_fused", 32768});
  spec.nodes.push_back(std::move(fusion));

  // --- cb5: voxel grid downsampling ------------------------------------------
  scenario::ScenarioNodeSpec voxel;
  voxel.name = "voxel_grid_cloud_node";
  voxel.subscriptions.push_back(
      {"lidars/points_fused", prof(cb5_profile()),
       {publish_effect("lidars/points_fused_downsampled", 8192)}});
  spec.nodes.push_back(std::move(voxel));

  // --- cb6: NDT localization --------------------------------------------------
  scenario::ScenarioNodeSpec localizer;
  localizer.name = "p2d_ndt_localizer_node";
  localizer.subscriptions.push_back(
      {"lidars/points_fused_downsampled", prof(cb6_profile()),
       {publish_effect("localization/ndt_pose", 256)}});
  spec.nodes.push_back(std::move(localizer));

  // --- untraced sensor replay (10 Hz, jittered) -------------------------------
  spec.external_inputs.push_back({"lidar_front/points_raw",
                                  options.front_sensor_pid,
                                  options.lidar_period, Duration::ms(10),
                                  options.lidar_jitter, 32768});
  spec.external_inputs.push_back({"lidar_rear/points_raw",
                                  options.rear_sensor_pid,
                                  options.lidar_period, Duration::ms(10),
                                  options.lidar_jitter, 32768});
  return spec;
}

AvpApp build_avp_localization(ros2::Context& ctx, const AvpOptions& options) {
  AvpApp app;
  app.spec = avp_scenario_spec(options);
  app.ground_truth = scenario::build_ground_truth(app.spec);
  scenario::ScenarioInstance instance =
      scenario::ScenarioRunner::instantiate(ctx, app.spec);
  app.sensors = std::move(instance.external_writers);

  // --- name maps ----------------------------------------------------------------
  app.label_of = {
      {"cb1", "filter_transform_vlp16_rear/SC1"},
      {"cb2", "filter_transform_vlp16_front/SC1"},
      {"cb3", "point_cloud_fusion/SC1"},
      {"cb4", "point_cloud_fusion/SC2"},
      {"cb5", "voxel_grid_cloud_node/SC1"},
      {"cb6", "p2d_ndt_localizer_node/SC1"},
  };
  app.node_of = {
      {"cb1", "filter_transform_vlp16_rear"},
      {"cb2", "filter_transform_vlp16_front"},
      {"cb3", "point_cloud_fusion"},
      {"cb4", "point_cloud_fusion"},
      {"cb5", "voxel_grid_cloud_node"},
      {"cb6", "p2d_ndt_localizer_node"},
  };
  // Latency chain ends at the topic cb6 consumes; the traversal completes
  // at cb6's callback end (the pose publication itself has no subscriber).
  app.chain_topics = {"lidar_front/points_raw", "lidar_front/points_filtered",
                      "lidars/points_fused", "lidars/points_fused_downsampled"};
  return app;
}

const std::map<std::string, TableIIRow>& table2_reference() {
  static const std::map<std::string, TableIIRow> kTable{
      {"cb1", {13.82, 17.10, 19.82}}, {"cb2", {23.31, 27.07, 30.50}},
      {"cb3", {0.41, 3.10, 3.97}},    {"cb4", {0.38, 0.62, 3.36}},
      {"cb5", {6.58, 8.47, 13.36}},   {"cb6", {2.78, 25.64, 60.93}},
  };
  return kTable;
}

}  // namespace tetra::workloads
