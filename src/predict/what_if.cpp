#include "predict/what_if.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/string_utils.hpp"

namespace tetra::predict {

std::string_view to_string(Objective objective) {
  switch (objective) {
    case Objective::WorstChainMean: return "worst-chain-mean";
    case Objective::WorstChainP99: return "worst-chain-p99";
    case Objective::WorstChainMax: return "worst-chain-max";
    case Objective::MeanOfMeans: return "mean-of-means";
  }
  return "unknown";
}

WhatIfExplorer::WhatIfExplorer(const core::Dag& dag, PredictionConfig base)
    : dag_(&dag), base_(std::move(base)) {}

WhatIfExplorer& WhatIfExplorer::add(WhatIfCandidate candidate) {
  candidates_.push_back(std::move(candidate));
  return *this;
}

WhatIfExplorer& WhatIfExplorer::add_baseline(std::string name) {
  WhatIfCandidate candidate;
  candidate.name = std::move(name);
  return add(std::move(candidate));
}

WhatIfExplorer& WhatIfExplorer::sweep_timer_period(
    const std::string& vertex_key, const std::vector<Duration>& periods) {
  for (const Duration period : periods) {
    WhatIfCandidate candidate;
    candidate.name =
        vertex_key + "@" + format("%.1fms", period.to_ms());
    candidate.timer_period[vertex_key] = period;
    add(std::move(candidate));
  }
  return *this;
}

WhatIfExplorer& WhatIfExplorer::sweep_exec_scale(
    const std::vector<double>& factors) {
  for (const double factor : factors) {
    WhatIfCandidate candidate;
    candidate.name = format("exec-x%.2f", factor);
    candidate.global_exec_scale = factor;
    add(std::move(candidate));
  }
  return *this;
}

WhatIfExplorer& WhatIfExplorer::sweep_num_cpus(
    const std::vector<int>& cpu_counts) {
  for (const int cpus : cpu_counts) {
    WhatIfCandidate candidate;
    candidate.name = format("cpus-%d", cpus);
    candidate.executors =
        base_.executors.value_or(ExecutorMapping{});
    candidate.executors->num_cpus = cpus;
    add(std::move(candidate));
  }
  return *this;
}

WhatIfExplorer& WhatIfExplorer::sweep_workers(
    const std::string& node, const std::vector<int>& worker_counts) {
  for (const int workers : worker_counts) {
    WhatIfCandidate candidate;
    candidate.name = node + format("@%dw", workers);
    candidate.workers[node] = workers;
    add(std::move(candidate));
  }
  return *this;
}

PredictionConfig WhatIfExplorer::apply(const PredictionConfig& base,
                                       const WhatIfCandidate& candidate) {
  PredictionConfig config = base;
  for (const auto& [key, period] : candidate.timer_period) {
    config.timer_period[key] = period;
  }
  for (const auto& [key, factor] : candidate.exec_scale) {
    config.exec_scale[key] = factor;
  }
  config.global_exec_scale *= candidate.global_exec_scale;
  for (const std::string& key : candidate.pruned) config.pruned.insert(key);
  for (const auto& [node, workers] : candidate.workers) {
    config.workers[node] = workers;
  }
  if (candidate.executors.has_value()) config.executors = candidate.executors;
  return config;
}

double WhatIfExplorer::score_ms(const PredictionResult& prediction,
                                Objective objective) {
  double worst = 0.0;
  double sum = 0.0;
  std::size_t measured = 0;
  for (const PredictedChainLatency& chain : prediction.chains) {
    if (chain.latency.complete == 0) continue;
    double value_ms = 0.0;
    switch (objective) {
      case Objective::WorstChainMean:
      case Objective::MeanOfMeans:
        value_ms = chain.mean().to_ms();
        break;
      case Objective::WorstChainP99:
        value_ms = chain.p99().to_ms();
        break;
      case Objective::WorstChainMax:
        value_ms = chain.max().to_ms();
        break;
    }
    worst = std::max(worst, value_ms);
    sum += value_ms;
    ++measured;
  }
  if (measured == 0) return std::numeric_limits<double>::infinity();
  return objective == Objective::MeanOfMeans
             ? sum / static_cast<double>(measured)
             : worst;
}

std::vector<WhatIfOutcome> WhatIfExplorer::explore(Objective objective) const {
  std::vector<WhatIfOutcome> outcomes;
  outcomes.reserve(candidates_.size());
  for (const WhatIfCandidate& candidate : candidates_) {
    WhatIfOutcome outcome;
    outcome.candidate = candidate;
    outcome.prediction =
        ModelSimulator(*dag_, apply(base_, candidate)).predict();
    outcome.score_ms = score_ms(outcome.prediction, objective);
    outcomes.push_back(std::move(outcome));
  }
  std::stable_sort(outcomes.begin(), outcomes.end(),
                   [](const WhatIfOutcome& a, const WhatIfOutcome& b) {
                     return a.score_ms < b.score_ms;
                   });
  return outcomes;
}

}  // namespace tetra::predict
