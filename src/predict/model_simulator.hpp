// Model-level discrete-event replay: executes a synthesized core::Dag
// directly on the sim::Simulator, with no substrate (no DDS domain, no
// tracers, no trace re-synthesis) — the "use the model" half of the
// paper's trace -> model -> analysis loop.
//
// Replay semantics mirror what the synthesis observed:
//  - timer vertices fire at their estimated period (first fire after one
//    period, the substrate's default phase);
//  - dangling in-topics (untraced external inputs) are driven by periodic
//    writers whose period is estimated from the model itself;
//  - each activation samples an execution time from the vertex's
//    mBCET/mACET/mWCET-fitted distribution (seeded, deterministic);
//  - each node's executor replays with the worker count the synthesis
//    learned (DagVertex::node_workers, overridable per node): callbacks
//    of one mutually-exclusive serialization group (exec_group) never
//    overlap, distinct groups — and reentrant callbacks with themselves —
//    run concurrently up to the worker count;
//  - publications happen at activation completion and reach each
//    subscribing vertex after a sampled DDS hop latency;
//  - AND junctions fire when every member has delivered since the last
//    firing, attributing the fused publication to the member completing
//    the set (exactly the substrate's message_filters semantics);
//  - OR junctions need no special handling: every delivery triggers one
//    activation.
//
// Activations are recorded as analysis::CallbackInstance values, and
// predicted chain latencies are measured by the *same*
// analysis::measure_chain_latency traversal that measures substrate
// traces — predictions and measurements are comparable 1:1.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "analysis/chains.hpp"
#include "analysis/latency.hpp"
#include "core/dag.hpp"
#include "sched/thread.hpp"
#include "support/time.hpp"

namespace tetra::predict {

/// Uniform DDS hop-latency bound applied to every model edge (the
/// synthesized model keeps no per-hop latency samples). Defaults to the
/// substrate's transport model.
struct HopLatencyBound {
  Duration lo = Duration::us(50);
  Duration hi = Duration::us(200);
};

/// What-if executor/thread mapping: replay activations run as compute
/// bursts on a sched::Machine with `num_cpus` CPUs, so predictions
/// include CPU contention and preemption. Without a mapping the replay is
/// contention-free (as many CPUs as executors).
struct ExecutorMapping {
  int num_cpus = 4;
  /// node name -> executor id; nodes sharing an id share one
  /// single-threaded executor (executor consolidation). Unmapped nodes
  /// keep a private executor.
  std::map<std::string, int> executor_of_node;
  int priority = 0;
  sched::SchedPolicy policy = sched::SchedPolicy::RoundRobin;
};

struct PredictionConfig {
  /// Base seed of every sampling stream (per-vertex streams are derived
  /// per key, so vertex sets can change without shifting other streams).
  std::uint64_t seed = 1;
  /// Simulated replay length.
  Duration horizon = Duration::sec(10);
  HopLatencyBound hop_latency;
  /// Drive period for dangling inputs when the model supports no
  /// estimate (no timer to anchor the run length).
  Duration default_input_period = Duration::ms(100);
  /// Per-topic overrides (plain topic names) for dangling-input drives.
  std::map<std::string, Duration> input_period;
  /// Chain-enumeration cap; PredictionResult::chains_truncated reports
  /// when it fires.
  std::size_t max_chains = 4096;

  // -- what-if knobs -------------------------------------------------------
  /// Executor worker-count overrides by node name ("would 2 -> 4 executor
  /// threads cut chain latency?"). Unlisted nodes replay with the worker
  /// count the synthesis learned for them (DagVertex::node_workers).
  std::map<std::string, int> workers;
  /// Timer period overrides by vertex key.
  std::map<std::string, Duration> timer_period;
  /// Execution-time scaling by vertex key (e.g. 0.5 = twice as fast).
  std::map<std::string, double> exec_scale;
  /// Scales every vertex's execution time (deployment-wide speedup).
  double global_exec_scale = 1.0;
  /// Vertices removed from the replay (chain pruning); deliveries to them
  /// are dropped and chains through them are not reported.
  std::set<std::string> pruned;
  /// Executor/thread mapping; enables the contention-aware machine mode.
  std::optional<ExecutorMapping> executors;
};

/// Predicted end-to-end latency distribution of one chain, measured over
/// the replay exactly like analysis::measure_chain_latency measures a
/// substrate trace (same traversal code, same ChainLatencyResult).
struct PredictedChainLatency {
  analysis::Chain chain;             ///< vertex keys, source -> sink
  std::vector<std::string> topics;   ///< measured-comparable topic sequence
  analysis::ChainLatencyResult latency;

  Duration min() const { return latency.min(); }
  Duration mean() const { return latency.mean(); }
  Duration max() const { return latency.max(); }
  Duration p99() const {
    return Duration{static_cast<std::int64_t>(latency.latencies.quantile(0.99))};
  }
};

struct PredictionResult {
  std::vector<PredictedChainLatency> chains;
  /// Chain enumeration hit PredictionConfig::max_chains; the chain list
  /// is incomplete (CLI front-ends warn).
  bool chains_truncated = false;
  std::size_t activations = 0;  ///< callback executions replayed
  std::size_t deliveries = 0;   ///< DDS samples delivered
  Duration horizon = Duration::zero();
};

class ModelSimulator {
 public:
  explicit ModelSimulator(const core::Dag& dag, PredictionConfig config = {});

  /// The recorded replay: activations as CallbackInstances plus the bare
  /// external-input writes, ready for analysis::InstanceTimeline.
  struct Replay {
    std::vector<analysis::CallbackInstance> instances;
    std::map<std::string, std::vector<TimePoint>> external_writes;
    std::size_t activations = 0;
    std::size_t deliveries = 0;
  };

  /// Runs one replay over config.horizon (deterministic in (dag, config)).
  Replay replay() const;

  /// Replays the model and measures every enumerated chain.
  PredictionResult predict() const;

  /// The drive period the replay uses for a dangling input topic (plain
  /// name): the config override, else a model-derived estimate (run
  /// length anchored on timer periods divided by the subscriber's
  /// instance count), else config.default_input_period.
  Duration input_period_for(const std::string& plain_topic) const;

  const core::Dag& dag() const { return *dag_; }
  const PredictionConfig& config() const { return config_; }

 private:
  const core::Dag* dag_;
  PredictionConfig config_;
};

}  // namespace tetra::predict
