// Rendering of prediction results: a compact text table for terminals and
// machine-readable JSON (also the golden-prediction fixture format).
#pragma once

#include <string>
#include <vector>

#include "predict/model_simulator.hpp"
#include "predict/what_if.hpp"

namespace tetra::predict {

/// Per-chain predicted latency table (min/mean/max/p99, completed and
/// died-out traversal counts).
std::string to_text_table(const PredictionResult& result);

/// Ranked what-if outcomes, best first.
std::string to_text_table(const std::vector<WhatIfOutcome>& outcomes,
                          Objective objective);

/// Stable JSON rendering of a prediction (chains in enumeration order;
/// latencies in nanoseconds).
std::string to_json(const PredictionResult& result);

/// JSON rendering of a ranked what-if exploration.
std::string to_json(const std::vector<WhatIfOutcome>& outcomes,
                    Objective objective);

}  // namespace tetra::predict
