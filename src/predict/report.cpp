#include "predict/report.hpp"

#include "analysis/chains.hpp"
#include "support/json_writer.hpp"
#include "support/string_utils.hpp"

namespace tetra::predict {

namespace {

void chain_json(JsonWriter& json, const PredictedChainLatency& chain) {
  json.begin_object()
      .kv("chain", analysis::to_string(chain.chain))
      .key("topics")
      .begin_array();
  for (const std::string& topic : chain.topics) json.value(topic);
  json.end_array()
      .kv("complete", static_cast<std::uint64_t>(chain.latency.complete))
      .kv("incomplete", static_cast<std::uint64_t>(chain.latency.incomplete));
  if (chain.latency.complete > 0) {
    json.kv("min_ns", chain.latency.latencies.min())
        .kv("mean_ns", chain.latency.latencies.mean())
        .kv("max_ns", chain.latency.latencies.max())
        .kv("p99_ns", chain.latency.latencies.quantile(0.99));
  }
  json.end_object();
}

void prediction_json(JsonWriter& json, const PredictionResult& result) {
  json.begin_object()
      .kv("horizon_s", result.horizon.to_sec())
      .kv("activations", static_cast<std::uint64_t>(result.activations))
      .kv("deliveries", static_cast<std::uint64_t>(result.deliveries))
      .kv("chains_truncated", result.chains_truncated)
      .key("chains")
      .begin_array();
  for (const PredictedChainLatency& chain : result.chains) {
    chain_json(json, chain);
  }
  json.end_array().end_object();
}

}  // namespace

std::string to_text_table(const PredictionResult& result) {
  std::string out = format("%-64s %8s %8s %8s %8s %6s %6s\n", "chain",
                           "min ms", "mean ms", "max ms", "p99 ms", "compl",
                           "incompl");
  for (const PredictedChainLatency& chain : result.chains) {
    const std::string name = analysis::to_string(chain.chain);
    if (chain.latency.complete == 0) {
      out += format("%-64s %35s %6zu %6zu\n", name.c_str(), "(no samples)",
                    chain.latency.complete, chain.latency.incomplete);
      continue;
    }
    out += format("%-64s %8.3f %8.3f %8.3f %8.3f %6zu %6zu\n", name.c_str(),
                  chain.min().to_ms(), chain.mean().to_ms(),
                  chain.max().to_ms(), chain.p99().to_ms(),
                  chain.latency.complete, chain.latency.incomplete);
  }
  out += format("replayed %zu activations, %zu deliveries over %.1fs\n",
                result.activations, result.deliveries,
                result.horizon.to_sec());
  return out;
}

std::string to_text_table(const std::vector<WhatIfOutcome>& outcomes,
                          Objective objective) {
  std::string out = format("%-4s %-28s %14s\n", "rank", "candidate",
                           std::string(to_string(objective)).c_str());
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const WhatIfOutcome& outcome = outcomes[i];
    out += format("%-4zu %-28s %11.3f ms\n", i + 1,
                  outcome.candidate.name.c_str(), outcome.score_ms);
  }
  return out;
}

std::string to_json(const PredictionResult& result) {
  JsonWriter json;
  prediction_json(json, result);
  return json.str();
}

std::string to_json(const std::vector<WhatIfOutcome>& outcomes,
                    Objective objective) {
  JsonWriter json;
  json.begin_object()
      .kv("objective", to_string(objective))
      .key("ranking")
      .begin_array();
  for (const WhatIfOutcome& outcome : outcomes) {
    json.begin_object()
        .kv("candidate", outcome.candidate.name)
        .kv("score_ms", outcome.score_ms)
        .key("prediction");
    prediction_json(json, outcome.prediction);
    json.end_object();
  }
  json.end_array().end_object();
  return json.str();
}

}  // namespace tetra::predict
