#include "predict/sampler.hpp"

#include <cmath>

namespace tetra::predict {

std::uint64_t SplitMix64::next_u64() {
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double SplitMix64::next_unit() {
  // 53 high-quality bits -> [0, 1) with full double resolution.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

Duration SplitMix64::uniform(Duration lo, Duration hi) {
  if (hi <= lo) return lo;
  const double span = static_cast<double>((hi - lo).count_ns());
  return lo + Duration{static_cast<std::int64_t>(next_unit() * span)};
}

std::uint64_t stream_seed(std::uint64_t base_seed, const std::string& text) {
  std::uint64_t hash = 0xcbf29ce484222325ULL ^ base_seed;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  // A zero state would make SplitMix64's first outputs weak; never hand
  // one out.
  return hash == 0 ? 0x9e3779b97f4a7c15ULL : hash;
}

ExecTimeSampler::ExecTimeSampler(const ExecStats& stats, std::uint64_t seed)
    : rng_(seed) {
  if (!stats.empty()) {
    mean_ = static_cast<double>(stats.macet().count_ns());
    stddev_ = static_cast<double>(stats.stddev().count_ns());
    lo_ = static_cast<double>(stats.mbcet().count_ns());
    hi_ = static_cast<double>(stats.mwcet().count_ns());
  }
}

Duration ExecTimeSampler::sample() {
  if (stddev_ <= 0.0 || hi_ <= lo_) {
    return Duration{static_cast<std::int64_t>(mean_)};
  }
  // Truncated normal via Box-Muller with bounded rejection: a handful of
  // tries lands inside [mBCET, mWCET] for any sane fit; pathological
  // spreads fall back to a clamp so sampling stays O(1).
  double value = mean_;
  for (int attempt = 0; attempt < 8; ++attempt) {
    double z;
    if (has_spare_) {
      z = spare_;
      has_spare_ = false;
    } else {
      const double u1 = 1.0 - rng_.next_unit();  // (0, 1]
      const double u2 = rng_.next_unit();
      const double radius = std::sqrt(-2.0 * std::log(u1));
      const double angle = 6.283185307179586 * u2;
      z = radius * std::cos(angle);
      spare_ = radius * std::sin(angle);
      has_spare_ = true;
    }
    value = mean_ + stddev_ * z;
    if (value >= lo_ && value <= hi_) break;
  }
  if (value < lo_) value = lo_;
  if (value > hi_) value = hi_;
  return Duration{static_cast<std::int64_t>(value)};
}

}  // namespace tetra::predict
