// Deterministic, platform-portable sampling for model replay.
//
// The substrate samples through <random> distributions, whose output is
// implementation-defined; predictions must instead be reproducible on any
// standard library (the golden prediction fixture is compared across
// toolchains), so the predict layer carries its own tiny generator and
// fits execution-time distributions from the synthesized statistics
// (mBCET/mACET/mWCET + stddev) with explicit Box-Muller sampling.
#pragma once

#include <cstdint>
#include <string>

#include "support/statistics.hpp"
#include "support/time.hpp"

namespace tetra::predict {

/// SplitMix64: 64-bit generator with exactly specified output, unlike the
/// <random> distributions layered over std::mt19937_64.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next_u64();
  /// Uniform double in [0, 1).
  double next_unit();
  /// Uniform duration in [lo, hi) (returns lo when hi <= lo).
  Duration uniform(Duration lo, Duration hi);

 private:
  std::uint64_t state_;
};

/// FNV-1a over (seed, text): derives a stable per-vertex sampling stream
/// from the base seed and the vertex key, so adding or removing one
/// vertex never shifts another vertex's samples.
std::uint64_t stream_seed(std::uint64_t base_seed, const std::string& text);

/// Samples execution times from a distribution fitted to a vertex's
/// measured statistics: truncated normal(mACET, stddev) clamped to
/// [mBCET, mWCET]. Degenerates to constant mACET when the stats carry no
/// spread, and to zero for statistics-free vertices (AND junctions).
class ExecTimeSampler {
 public:
  ExecTimeSampler(const ExecStats& stats, std::uint64_t seed);

  Duration sample();

 private:
  double mean_ = 0.0;
  double stddev_ = 0.0;
  double lo_ = 0.0;
  double hi_ = 0.0;
  SplitMix64 rng_;
  /// Box-Muller yields normals in pairs; the second is cached so only
  /// every other sample pays the transcendental calls.
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace tetra::predict
