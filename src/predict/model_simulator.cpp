#include "predict/model_simulator.hpp"

#include <algorithm>
#include <deque>
#include <optional>
#include <queue>
#include <set>

#include "core/callback_record.hpp"
#include "predict/sampler.hpp"
#include "sched/machine.hpp"
#include "sim/simulator.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"

namespace tetra::predict {

namespace {

/// Junction pseudo-edges ("&<node>") carry no DDS sample: the member
/// completing the set hands its result to the junction instantaneously.
bool is_junction_edge(const std::string& topic) {
  return !topic.empty() && topic.front() == '&';
}

std::string plain_topic(const std::string& topic) {
  return core::split_annotated_topic(topic).first;
}

/// One queued callback activation of a vertex.
struct Activation {
  std::size_t vertex = 0;
  /// The (interned topic, src_ts) this activation consumes; nullopt for
  /// timers.
  std::optional<std::pair<const std::string*, TimePoint>> take;
};

/// The whole replay state; built fresh per ModelSimulator::replay() so
/// the simulator can be const and re-runnable.
class Engine {
 public:
  Engine(const core::Dag& dag, const PredictionConfig& config,
         const std::map<std::string, Duration>& source_periods)
      : dag_(dag), config_(config), hop_rng_(stream_seed(config.seed, "/hops")) {
    build_vertices();
    build_executors();
    build_sources(source_periods);
  }

  ModelSimulator::Replay run() {
    for (std::size_t v = 0; v < vertices_.size(); ++v) {
      if (vertices_[v].timer_period.has_value() && !vertices_[v].pruned) {
        schedule_timer(v, *vertices_[v].timer_period);
      }
    }
    for (std::size_t s = 0; s < sources_.size(); ++s) {
      schedule_source(s, sources_[s].period);
    }
    sim_.run_until(TimePoint::zero() + config_.horizon);

    ModelSimulator::Replay replay;
    replay.instances = std::move(instances_);
    replay.external_writes = std::move(external_writes_);
    replay.activations = activations_;
    replay.deliveries = deliveries_;
    return replay;
  }

 private:
  struct Hop {
    std::size_t target = 0;
    /// Interned plain topic (nullptr for junction hops): deliveries are
    /// scheduled per sample, so the captured topic must be a pointer, not
    /// a per-event string copy.
    const std::string* topic = nullptr;
    bool to_junction = false;
  };

  static constexpr std::size_t kNoUnit = static_cast<std::size_t>(-1);

  struct VertexState {
    const core::DagVertex* dv = nullptr;
    std::size_t executor = 0;
    /// Serialization unit (one per (node, exec_group)); kNoUnit for
    /// reentrant vertices and junctions — no mutual exclusion.
    std::size_t unit = kNoUnit;
    ExecTimeSampler sampler;
    double scale = 1.0;
    bool pruned = false;
    std::optional<Duration> timer_period;
    std::vector<Hop> hops;
    /// Distinct plain topics this vertex writes on completion (interned).
    std::vector<const std::string*> write_topics;
    /// AND junctions: expected member count and per-member pending sample
    /// (producer instance index), cleared on each firing.
    std::size_t member_count = 0;
    std::map<std::size_t, std::size_t> barrier;
  };

  /// One executor worker's in-flight activation. Kept in the executor
  /// state so completion events capture only (engine, executor, slot) and
  /// stay within std::function's small-buffer size — no per-activation
  /// allocation.
  struct WorkerSlot {
    Activation current;
    TimePoint started;
    bool busy = false;
    sched::Thread* thread = nullptr;  // machine mode
  };

  struct ExecutorState {
    std::deque<Activation> queue;
    /// Worker count: max learned node_workers over the executor's nodes
    /// (or the per-node what-if override).
    int capacity = 1;
    int active = 0;  // busy slots (contention-free mode bookkeeping)
    std::vector<WorkerSlot> slots;
  };

  /// A pending DDS sample delivery. Deliveries go through one POD heap
  /// drained by a shared pump event instead of one closure-carrying sim
  /// event each — the replay's highest-volume allocation eliminated.
  struct Delivery {
    TimePoint time;
    std::uint64_t seq = 0;  ///< FIFO tie-break (deterministic replay)
    std::size_t target = 0;
    const std::string* topic = nullptr;
    TimePoint src_ts;
  };
  struct DeliveryLater {
    bool operator()(const Delivery& a, const Delivery& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  struct SourceState {
    const std::string* topic = nullptr;  ///< interned plain topic
    Duration period = Duration::zero();
    std::vector<std::size_t> targets;
  };

  const std::string* intern(const std::string& topic) {
    return &*topic_pool_.insert(topic).first;
  }

  void build_vertices() {
    const auto& verts = dag_.vertices();
    vertices_.reserve(verts.size());
    for (std::size_t i = 0; i < verts.size(); ++i) {
      const core::DagVertex& dv = verts[i];
      index_of_[dv.key] = i;
      VertexState state{
          &dv, 0, kNoUnit,
          ExecTimeSampler(dv.stats, stream_seed(config_.seed, dv.key)),
          1.0, false, std::nullopt, {}, {}, 0, {}};
      state.pruned = config_.pruned.count(dv.key) > 0;
      state.scale = config_.global_exec_scale;
      if (auto it = config_.exec_scale.find(dv.key);
          it != config_.exec_scale.end()) {
        state.scale *= it->second;
      }
      if (dv.kind == CallbackKind::Timer && !dv.is_and_junction) {
        if (auto it = config_.timer_period.find(dv.key);
            it != config_.timer_period.end()) {
          state.timer_period = it->second;
        } else if (dv.period.has_value() && *dv.period > Duration::zero()) {
          state.timer_period = dv.period;
        } else {
          // A timer observed too rarely to estimate a period still has to
          // fire for its chains to produce predictions.
          state.timer_period = config_.default_input_period;
        }
      }
      vertices_.push_back(std::move(state));
    }
    // Hops along the model's edges.
    for (const core::DagEdge& edge : dag_.edges()) {
      const std::size_t from = index_of_.at(edge.from);
      const std::size_t to = index_of_.at(edge.to);
      Hop hop;
      hop.target = to;
      hop.to_junction = is_junction_edge(edge.topic);
      if (!hop.to_junction) {
        hop.topic = intern(plain_topic(edge.topic));
        auto& writes = vertices_[from].write_topics;
        if (std::find(writes.begin(), writes.end(), hop.topic) ==
            writes.end()) {
          writes.push_back(hop.topic);
        }
      }
      vertices_[from].hops.push_back(std::move(hop));
      if (vertices_[to].dv->is_and_junction) ++vertices_[to].member_count;
    }
  }

  void build_executors() {
    // Worker count per node: the what-if override, else the count the
    // synthesis learned for the node's vertices (one pass, then lookups).
    std::map<std::string, int> workers_of_node;
    for (const auto& vertex : vertices_) {
      int& workers = workers_of_node[vertex.dv->node_name];
      workers = std::max({workers, 1, vertex.dv->node_workers});
    }
    for (const auto& [node, workers] : config_.workers) {
      if (auto it = workers_of_node.find(node); it != workers_of_node.end()) {
        it->second = std::max(1, workers);
      }
    }

    // Executor per node, unless a mapping consolidates nodes.
    std::map<std::string, std::size_t> executor_index;
    // push_back+append instead of `"#" + to_string(...)`: the string
    // operator+(const char*, string&&) insert path trips a GCC
    // -Wrestrict false positive under -O3, and CI builds Release with
    // -Werror.
    const auto executor_key = [this](const std::string& node) -> std::string {
      if (config_.executors.has_value()) {
        auto mapped = config_.executors->executor_of_node.find(node);
        if (mapped != config_.executors->executor_of_node.end()) {
          std::string key;
          key.push_back('#');
          key.append(std::to_string(mapped->second));
          return key;
        }
      }
      return node;
    };
    for (auto& vertex : vertices_) {
      auto [it, inserted] = executor_index.emplace(
          executor_key(vertex.dv->node_name), executors_.size());
      if (inserted) executors_.emplace_back();
      vertex.executor = it->second;
      // An executor consolidating several nodes gets the largest member
      // pool (its workers serve every member node's queue).
      ExecutorState& executor = executors_[it->second];
      executor.capacity = std::max(executor.capacity,
                                   workers_of_node.at(vertex.dv->node_name));
    }
    for (auto& executor : executors_) {
      executor.slots.resize(static_cast<std::size_t>(executor.capacity));
    }

    // Serialization units: one per (node, learned exec_group); reentrant
    // vertices and junctions stay unconstrained.
    std::map<std::pair<std::string, int>, std::size_t> unit_index;
    for (auto& vertex : vertices_) {
      if (vertex.dv->is_and_junction || vertex.dv->reentrant) continue;
      auto [it, inserted] = unit_index.emplace(
          std::pair{vertex.dv->node_name, vertex.dv->exec_group},
          unit_busy_.size());
      if (inserted) unit_busy_.push_back(0);
      vertex.unit = it->second;
    }

    if (config_.executors.has_value()) {
      sched::Machine::Config machine_config;
      machine_config.num_cpus = std::max(1, config_.executors->num_cpus);
      machine_.emplace(sim_, machine_config);
      for (std::size_t e = 0; e < executors_.size(); ++e) {
        for (std::size_t w = 0;
             w < static_cast<std::size_t>(executors_[e].capacity); ++w) {
          sched::ThreadConfig thread_config;
          thread_config.name = "predict-exec-" + std::to_string(e);
          if (w > 0) {
            thread_config.name.push_back('w');
            thread_config.name.append(std::to_string(w));
          }
          thread_config.priority = config_.executors->priority;
          thread_config.policy = config_.executors->policy;
          executors_[e].slots[w].thread = &machine_->create_thread(
              thread_config, [this, e, w] { pump(e, w); });
        }
      }
    }
  }

  void build_sources(const std::map<std::string, Duration>& source_periods) {
    std::map<std::string, std::size_t> source_index;
    for (std::size_t v = 0; v < vertices_.size(); ++v) {
      const core::DagVertex& dv = *vertices_[v].dv;
      if (dv.in_topic.empty() || dv.is_and_junction) continue;
      if (!dag_.in_edges(dv.key).empty()) continue;
      const std::string topic = plain_topic(dv.in_topic);
      auto [it, inserted] = source_index.emplace(topic, sources_.size());
      if (inserted) {
        sources_.push_back(
            SourceState{intern(topic), source_periods.at(topic), {}});
      }
      sources_[it->second].targets.push_back(v);
    }
  }

  // -- drive ----------------------------------------------------------------

  void schedule_timer(std::size_t v, Duration period) {
    if (period <= Duration::zero()) return;  // never spin at one instant
    // First fire after one period: ros2::Node's default timer phase.
    // Captures stay within std::function's small buffer (no allocation).
    sim_.post_after(period, [this, v] {
      enqueue(Activation{v, std::nullopt});
      schedule_timer(v, *vertices_[v].timer_period);
    });
  }

  void schedule_source(std::size_t s, Duration period) {
    if (period <= Duration::zero()) return;
    sim_.post_after(period, [this, s] {
      const SourceState& source = sources_[s];
      const TimePoint now = sim_.now();
      external_writes_[*source.topic].push_back(now);
      for (const std::size_t target : source.targets) {
        deliver_after_hop(target, source.topic, now);
      }
      schedule_source(s, source.period);
    });
  }

  void deliver_after_hop(std::size_t target, const std::string* topic,
                         TimePoint src_ts) {
    const Duration hop =
        hop_rng_.uniform(config_.hop_latency.lo, config_.hop_latency.hi);
    const TimePoint at = sim_.now() + hop;
    pending_deliveries_.push(
        Delivery{at, delivery_seq_++, target, topic, src_ts});
    arm_pump(at);
  }

  /// Invariant: whenever deliveries are pending, an armed pump exists at
  /// or before the head's time — and never a redundant duplicate.
  void arm_pump(TimePoint at) {
    if (!armed_pumps_.empty() && *armed_pumps_.begin() <= at) return;
    armed_pumps_.insert(at);
    sim_.post_at(at, [this] { pump_deliveries(); });
  }

  void pump_deliveries() {
    const TimePoint now = sim_.now();
    armed_pumps_.erase(now);
    while (!pending_deliveries_.empty() &&
           pending_deliveries_.top().time <= now) {
      const Delivery delivery = pending_deliveries_.top();
      pending_deliveries_.pop();
      ++deliveries_;
      if (!vertices_[delivery.target].pruned) {
        enqueue(
            Activation{delivery.target, {{delivery.topic, delivery.src_ts}}});
      }
    }
    if (!pending_deliveries_.empty()) {
      arm_pump(pending_deliveries_.top().time);
    }
  }

  // -- executors ------------------------------------------------------------

  void enqueue(Activation activation) {
    if (vertices_[activation.vertex].pruned) return;
    const std::size_t e = vertices_[activation.vertex].executor;
    ExecutorState& executor = executors_[e];
    executor.queue.push_back(std::move(activation));
    if (machine_.has_value()) {
      for (WorkerSlot& slot : executor.slots) slot.thread->wake();
    } else {
      try_dispatch(e);
    }
  }

  Duration sample_exec(VertexState& vertex) {
    const double scaled =
        static_cast<double>(vertex.sampler.sample().count_ns()) * vertex.scale;
    return Duration{static_cast<std::int64_t>(scaled < 0.0 ? 0.0 : scaled)};
  }

  /// First queued activation whose serialization unit is free; npos when
  /// every queued item is blocked behind its group.
  std::size_t pick_eligible(ExecutorState& executor) {
    for (std::size_t i = 0; i < executor.queue.size(); ++i) {
      const std::size_t unit = vertices_[executor.queue[i].vertex].unit;
      if (unit == kNoUnit || !unit_busy_[unit]) return i;
    }
    return kNoUnit;
  }

  /// Claims `activation`'s unit and pops it from the queue.
  Activation claim(ExecutorState& executor, std::size_t queue_index) {
    Activation activation = executor.queue[queue_index];
    executor.queue.erase(executor.queue.begin() +
                         static_cast<std::ptrdiff_t>(queue_index));
    const std::size_t unit = vertices_[activation.vertex].unit;
    if (unit != kNoUnit) unit_busy_[unit] = 1;
    return activation;
  }

  void release(const Activation& activation) {
    const std::size_t unit = vertices_[activation.vertex].unit;
    if (unit != kNoUnit) unit_busy_[unit] = 0;
  }

  /// Contention-free mode: the executor is a pool of `capacity` virtual
  /// workers; group-eligible activations start the moment a worker and
  /// their serialization unit are free.
  void try_dispatch(std::size_t e) {
    ExecutorState& executor = executors_[e];
    while (executor.active < executor.capacity) {
      const std::size_t pick = pick_eligible(executor);
      if (pick == kNoUnit) return;
      std::size_t s = 0;
      while (executor.slots[s].busy) ++s;
      WorkerSlot& slot = executor.slots[s];
      slot.current = claim(executor, pick);
      slot.started = sim_.now();
      slot.busy = true;
      ++executor.active;
      const Duration exec = sample_exec(vertices_[slot.current.vertex]);
      sim_.post_after(exec, [this, e, s] {
        ExecutorState& ex = executors_[e];
        WorkerSlot& done = ex.slots[s];
        done.busy = false;
        --ex.active;
        release(done.current);
        complete(done.current, done.started, sim_.now());
        try_dispatch(e);
      });
    }
  }

  /// Machine mode: per-worker loop (the substrate executor's ready-set
  /// polling pattern) — wall time then includes CPU contention.
  void pump(std::size_t e, std::size_t w) {
    ExecutorState& executor = executors_[e];
    WorkerSlot& slot = executor.slots[w];
    const std::size_t pick = pick_eligible(executor);
    if (pick == kNoUnit) {
      slot.thread->block([this, e, w] { pump(e, w); });
      return;
    }
    slot.current = claim(executor, pick);
    slot.started = sim_.now();
    const Duration exec = sample_exec(vertices_[slot.current.vertex]);
    slot.thread->compute(exec, [this, e, w] {
      ExecutorState& ex = executors_[e];
      WorkerSlot& done = ex.slots[w];
      release(done.current);
      complete(done.current, done.started, sim_.now());
      // The released unit may unblock queued work for sibling workers.
      if (ex.capacity > 1) {
        for (WorkerSlot& other : ex.slots) {
          if (&other != &done) other.thread->wake();
        }
      }
      pump(e, w);
    });
  }

  // -- completion & routing -------------------------------------------------

  void complete(const Activation& activation, TimePoint start, TimePoint end) {
    VertexState& vertex = vertices_[activation.vertex];
    ++activations_;

    analysis::CallbackInstance instance;
    instance.pid = static_cast<Pid>(1000 + vertex.executor);
    instance.callback_id = static_cast<CallbackId>(activation.vertex + 1);
    instance.kind = vertex.dv->kind;
    instance.start = start;
    instance.end = end;
    if (activation.take.has_value()) {
      instance.take = {{*activation.take->first, activation.take->second}};
    }
    instance.writes.reserve(vertex.write_topics.size());
    for (const std::string* topic : vertex.write_topics) {
      instance.writes.push_back({*topic, end});
    }
    const std::size_t instance_index = instances_.size();
    instances_.push_back(std::move(instance));

    for (const Hop& hop : vertex.hops) {
      if (hop.to_junction) {
        junction_arrival(hop.target, activation.vertex, instance_index, end);
      } else {
        deliver_after_hop(hop.target, hop.topic, end);
      }
    }
  }

  /// AND-junction barrier: fires when every member has delivered since
  /// the last firing; the member completing the set carries the fused
  /// publication (its traversal completes, the others' die out — the
  /// substrate's message_filters behaviour).
  void junction_arrival(std::size_t junction_index, std::size_t member,
                        std::size_t member_instance, TimePoint now) {
    VertexState& junction = vertices_[junction_index];
    if (junction.pruned) return;
    junction.barrier[member] = member_instance;
    if (junction.barrier.size() < junction.member_count) return;
    junction.barrier.clear();

    analysis::CallbackInstance& trigger = instances_[member_instance];
    for (const std::string* topic : junction.write_topics) {
      trigger.writes.push_back({*topic, now});
    }
    for (const Hop& hop : junction.hops) {
      deliver_after_hop(hop.target, hop.topic, now);
    }
  }

  const core::Dag& dag_;
  const PredictionConfig& config_;
  /// Stable storage for interned topic names (set nodes never move).
  std::set<std::string> topic_pool_;
  sim::Simulator sim_;
  std::optional<sched::Machine> machine_;
  SplitMix64 hop_rng_;
  std::map<std::string, std::size_t> index_of_;
  std::vector<VertexState> vertices_;
  std::vector<ExecutorState> executors_;
  /// Busy flags of the serialization units ((node, exec_group) pairs).
  std::vector<char> unit_busy_;
  std::vector<SourceState> sources_;

  std::priority_queue<Delivery, std::vector<Delivery>, DeliveryLater>
      pending_deliveries_;
  std::uint64_t delivery_seq_ = 0;
  /// Times with an armed pump event (a handful at most).
  std::set<TimePoint> armed_pumps_;

  std::vector<analysis::CallbackInstance> instances_;
  std::map<std::string, std::vector<TimePoint>> external_writes_;
  std::size_t activations_ = 0;
  std::size_t deliveries_ = 0;
};

}  // namespace

ModelSimulator::ModelSimulator(const core::Dag& dag, PredictionConfig config)
    : dag_(&dag), config_(std::move(config)) {}

Duration ModelSimulator::input_period_for(const std::string& topic) const {
  if (auto it = config_.input_period.find(topic);
      it != config_.input_period.end()) {
    return it->second;
  }
  // Anchor a run-length estimate on the timers (period x instances); the
  // subscriber's own instance count then yields its drive period. Counts
  // merged over several runs inflate both sides of the ratio equally.
  Duration run_estimate = Duration::zero();
  for (const core::DagVertex& dv : dag_->vertices()) {
    if (dv.kind != CallbackKind::Timer || dv.is_and_junction) continue;
    if (!dv.period.has_value() || dv.instance_count == 0) continue;
    const Duration estimate =
        *dv.period * static_cast<std::int64_t>(dv.instance_count);
    run_estimate = std::max(run_estimate, estimate);
  }
  std::size_t subscriber_instances = 0;
  for (const core::DagVertex& dv : dag_->vertices()) {
    if (dv.in_topic.empty() || dv.is_and_junction) continue;
    if (!dag_->in_edges(dv.key).empty()) continue;
    if (plain_topic(dv.in_topic) != topic) continue;
    subscriber_instances = std::max(subscriber_instances, dv.instance_count);
  }
  if (run_estimate > Duration::zero() && subscriber_instances > 0) {
    const Duration period =
        run_estimate / static_cast<std::int64_t>(subscriber_instances);
    if (period > Duration::zero()) return period;
  }
  return config_.default_input_period;
}

ModelSimulator::Replay ModelSimulator::replay() const {
  // Resolve every dangling-input drive period up front; the engine itself
  // never looks at vertex statistics for routing.
  std::map<std::string, Duration> source_periods;
  for (const core::DagVertex& dv : dag_->vertices()) {
    if (dv.in_topic.empty() || dv.is_and_junction) continue;
    if (!dag_->in_edges(dv.key).empty()) continue;
    const std::string topic = plain_topic(dv.in_topic);
    if (source_periods.count(topic) == 0) {
      source_periods[topic] = input_period_for(topic);
    }
  }
  Engine engine(*dag_, config_, source_periods);
  telemetry::ScopedSpan span("predict.replay");
  Replay run = engine.run();
  span.set_items(run.activations);
  static telemetry::Counter& activations_counter =
      telemetry::MetricsRegistry::global().counter("predict.activations");
  static telemetry::Counter& deliveries_counter =
      telemetry::MetricsRegistry::global().counter("predict.deliveries");
  activations_counter.add(run.activations);
  deliveries_counter.add(run.deliveries);
  return run;
}

PredictionResult ModelSimulator::predict() const {
  PredictionResult result;
  result.horizon = config_.horizon;

  analysis::ChainEnumeration enumeration =
      analysis::enumerate_chains(*dag_, config_.max_chains);
  result.chains_truncated = enumeration.truncated;

  Replay run = replay();
  result.activations = run.activations;
  result.deliveries = run.deliveries;
  const analysis::InstanceTimeline timeline(std::move(run.instances),
                                            std::move(run.external_writes));

  for (analysis::Chain& chain : enumeration.chains) {
    const bool pruned =
        std::any_of(chain.begin(), chain.end(), [this](const std::string& key) {
          return config_.pruned.count(key) > 0;
        });
    if (pruned) continue;
    std::vector<std::string> topics = analysis::chain_topics(*dag_, chain);
    if (topics.empty()) continue;  // single-vertex chain: no latency to measure
    PredictedChainLatency predicted;
    predicted.latency = analysis::measure_chain_latency(timeline, topics);
    predicted.chain = std::move(chain);
    predicted.topics = std::move(topics);
    result.chains.push_back(std::move(predicted));
  }
  return result;
}

}  // namespace tetra::predict
