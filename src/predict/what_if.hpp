// What-if exploration over a synthesized model: sweep deployment knobs
// (timer periods, per-vertex execution-time scaling, chain pruning,
// executor/CPU mapping) and rank candidate configurations by predicted
// end-to-end chain latency — design-space exploration without re-running
// or re-tracing the application.
#pragma once

#include <string>
#include <vector>

#include "predict/model_simulator.hpp"

namespace tetra::predict {

/// One candidate deployment configuration: knob deltas applied on top of
/// the explorer's base PredictionConfig.
struct WhatIfCandidate {
  std::string name;
  std::map<std::string, Duration> timer_period;  ///< vertex key -> period
  std::map<std::string, double> exec_scale;      ///< vertex key -> factor
  double global_exec_scale = 1.0;
  std::vector<std::string> pruned;               ///< vertex keys
  /// Executor worker-count overrides by node name (multi-threaded
  /// executor sizing).
  std::map<std::string, int> workers;
  std::optional<ExecutorMapping> executors;
};

/// Ranking objective over the predicted chain latencies (lower = better).
enum class Objective {
  WorstChainMean,
  WorstChainP99,
  WorstChainMax,
  MeanOfMeans,
};

std::string_view to_string(Objective objective);

struct WhatIfOutcome {
  WhatIfCandidate candidate;
  PredictionResult prediction;
  /// Objective value in milliseconds; +inf when no chain produced a
  /// single complete traversal (a broken candidate ranks last).
  double score_ms = 0.0;
};

class WhatIfExplorer {
 public:
  explicit WhatIfExplorer(const core::Dag& dag, PredictionConfig base = {});

  WhatIfExplorer& add(WhatIfCandidate candidate);
  /// The unmodified base configuration, for reference in the ranking.
  WhatIfExplorer& add_baseline(std::string name = "baseline");
  /// One candidate per period for the given timer vertex.
  WhatIfExplorer& sweep_timer_period(const std::string& vertex_key,
                                     const std::vector<Duration>& periods);
  /// One candidate per global execution-time factor (deployment-wide
  /// slowdown/speedup, e.g. CPU frequency scaling).
  WhatIfExplorer& sweep_exec_scale(const std::vector<double>& factors);
  /// One candidate per CPU budget, nodes mapped to executors per the base
  /// config's mapping (or one executor per node).
  WhatIfExplorer& sweep_num_cpus(const std::vector<int>& cpu_counts);
  /// One candidate per executor worker count for the given node ("would
  /// 2 -> 4 executor threads cut chain latency?").
  WhatIfExplorer& sweep_workers(const std::string& node,
                                const std::vector<int>& worker_counts);

  std::size_t candidate_count() const { return candidates_.size(); }
  const PredictionConfig& base() const { return base_; }

  /// Predicts every candidate (each deterministic in (dag, base, knobs))
  /// and returns the outcomes sorted best-first by the objective.
  std::vector<WhatIfOutcome> explore(
      Objective objective = Objective::WorstChainP99) const;

  /// The base config with a candidate's knobs applied (what explore()
  /// hands to ModelSimulator).
  static PredictionConfig apply(const PredictionConfig& base,
                                const WhatIfCandidate& candidate);
  static double score_ms(const PredictionResult& prediction,
                         Objective objective);

 private:
  const core::Dag* dag_;
  PredictionConfig base_;
  std::vector<WhatIfCandidate> candidates_;
};

}  // namespace tetra::predict
