// The simulated DDS domain: topics, writers, readers, a transport latency
// model, and the dds_write_impl hook (probe P16). Mirrors Eclipse Cyclone
// DDS as used by the paper via rmw_cyclonedds_cpp.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dds/sample.hpp"
#include "sim/simulator.hpp"
#include "support/rng.hpp"

namespace tetra::dds {

/// uprobe target for P16 (dds_write_impl in libddsc).
struct DdsHooks {
  /// (time, writer pid, topic, source timestamp, payload bytes)
  std::function<void(TimePoint, Pid, const std::string&, TimePoint, std::size_t)>
      dds_write_impl;
};

/// Delivery endpoint: invoked (after transport latency) once per sample.
using DeliverFn = std::function<void(const Sample&)>;

class Domain;

/// Read side of one topic subscription. Thin: the consumer (ROS2 layer)
/// owns the queueing; the reader only identifies the endpoint.
class DataReader {
 public:
  const std::string& topic() const { return topic_; }

 private:
  friend class Domain;
  DataReader(std::string topic, DeliverFn deliver)
      : topic_(std::move(topic)), deliver_(std::move(deliver)) {}
  std::string topic_;
  DeliverFn deliver_;
};

/// Write side of one topic.
class DataWriter {
 public:
  const std::string& topic() const { return topic_; }

  /// Writes a sample: stamps src_ts with the current time, fires P16, and
  /// schedules delivery to every reader after a sampled transport latency.
  /// Tags are forwarded verbatim (services use them).
  void write(Pid writer_pid, std::size_t payload_bytes = 64,
             std::uint64_t origin_tag = kNoTag, std::uint64_t target_tag = kNoTag);

 private:
  friend class Domain;
  DataWriter(Domain& domain, std::string topic)
      : domain_(&domain), topic_(std::move(topic)) {}
  Domain* domain_;
  std::string topic_;
};

class Domain {
 public:
  Domain(sim::Simulator& sim, Rng rng);

  /// Transport latency applied to every delivery (default 50–200 us).
  void set_latency(DurationDistribution latency) { latency_ = latency; }

  void set_hooks(DdsHooks hooks) { hooks_ = std::move(hooks); }

  /// Creates a writer for `topic` (topic auto-created on first use).
  DataWriter create_writer(const std::string& topic);

  /// Registers a reader; `deliver` runs in simulation-event context after
  /// the transport latency, once per written sample, in write order.
  DataReader& create_reader(const std::string& topic, DeliverFn deliver);

  /// Number of readers currently attached to `topic`.
  std::size_t reader_count(const std::string& topic) const;

  /// Total samples written so far (all topics).
  std::uint64_t samples_written() const { return samples_written_; }

  sim::Simulator& simulator() { return sim_; }

 private:
  friend class DataWriter;
  struct TopicState {
    std::vector<std::unique_ptr<DataReader>> readers;
    std::uint64_t next_sequence = 1;
  };

  void write_impl(const std::string& topic, Pid writer_pid,
                  std::size_t payload_bytes, std::uint64_t origin_tag,
                  std::uint64_t target_tag);

  TopicState& topic_state(const std::string& topic);

  sim::Simulator& sim_;
  Rng rng_;
  DurationDistribution latency_ =
      DurationDistribution::uniform(Duration::us(50), Duration::us(200));
  DdsHooks hooks_;
  std::map<std::string, TopicState> topics_;
  std::uint64_t samples_written_ = 0;
};

/// A periodic, *untraced* data source (sensor driver / rosbag replay): it
/// writes to a topic from a PID that is not a ROS2 node, so its writes are
/// invisible to Algorithm 1's node extraction — exactly how the AVP demo's
/// raw LIDAR topics appear as dangling inputs in Fig. 3b.
class PeriodicWriter {
 public:
  PeriodicWriter(Domain& domain, std::string topic, Pid pid, Duration period,
                 Duration phase = Duration::zero(), std::size_t payload_bytes = 4096);

  /// Adds per-tick timing jitter (sampled around zero; pass a distribution
  /// spanning e.g. [-6ms, +6ms] to model sensor timing noise). The period
  /// itself stays drift-free: jitter offsets each write from its nominal
  /// slot rather than accumulating.
  void set_jitter(DurationDistribution jitter, Rng rng);

  /// Starts periodic publication until `until`.
  void start(TimePoint until);

  std::uint64_t writes_issued() const { return writes_; }

  PeriodicWriter(const PeriodicWriter&) = delete;
  PeriodicWriter& operator=(const PeriodicWriter&) = delete;
  ~PeriodicWriter();

 private:
  void tick(std::uint64_t k);

  Domain& domain_;
  DataWriter writer_;
  Pid pid_;
  Duration period_;
  Duration phase_;
  std::size_t payload_bytes_;
  TimePoint until_;
  std::uint64_t writes_ = 0;
  std::optional<DurationDistribution> jitter_;
  Rng jitter_rng_{0};
  TimePoint epoch_;
  /// Guards scheduled tick events: flips to false on destruction so
  /// in-flight simulator events become no-ops instead of dangling.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace tetra::dds
