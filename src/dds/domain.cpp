#include "dds/domain.hpp"

namespace tetra::dds {

void DataWriter::write(Pid writer_pid, std::size_t payload_bytes,
                       std::uint64_t origin_tag, std::uint64_t target_tag) {
  domain_->write_impl(topic_, writer_pid, payload_bytes, origin_tag, target_tag);
}

Domain::Domain(sim::Simulator& sim, Rng rng) : sim_(sim), rng_(std::move(rng)) {}

DataWriter Domain::create_writer(const std::string& topic) {
  topic_state(topic);
  return DataWriter{*this, topic};
}

DataReader& Domain::create_reader(const std::string& topic, DeliverFn deliver) {
  TopicState& state = topic_state(topic);
  state.readers.push_back(std::unique_ptr<DataReader>(
      new DataReader(topic, std::move(deliver))));
  return *state.readers.back();
}

std::size_t Domain::reader_count(const std::string& topic) const {
  auto it = topics_.find(topic);
  return it == topics_.end() ? 0 : it->second.readers.size();
}

Domain::TopicState& Domain::topic_state(const std::string& topic) {
  return topics_[topic];
}

void Domain::write_impl(const std::string& topic, Pid writer_pid,
                        std::size_t payload_bytes, std::uint64_t origin_tag,
                        std::uint64_t target_tag) {
  TopicState& state = topic_state(topic);
  Sample sample;
  sample.topic = topic;
  sample.src_ts = sim_.now();
  sample.writer_pid = writer_pid;
  sample.origin_tag = origin_tag;
  sample.target_tag = target_tag;
  sample.payload_bytes = payload_bytes;
  sample.sequence = state.next_sequence++;
  ++samples_written_;

  // P16 fires once per write, in the writer's context, before the samples
  // travel (the source timestamp is already assigned at this point).
  if (hooks_.dds_write_impl) {
    hooks_.dds_write_impl(sim_.now(), writer_pid, topic, sample.src_ts,
                          payload_bytes);
  }

  // Fan out with an independently sampled latency per reader. Delivery is
  // always via the event queue (even for zero latency) so readers never
  // run inside the writer's context.
  for (const auto& reader : state.readers) {
    const Duration latency = latency_.sample(rng_);
    DeliverFn deliver = reader->deliver_;
    sim_.after(latency, [deliver = std::move(deliver), sample] {
      deliver(sample);
    });
  }
}

PeriodicWriter::PeriodicWriter(Domain& domain, std::string topic, Pid pid,
                               Duration period, Duration phase,
                               std::size_t payload_bytes)
    : domain_(domain),
      writer_(domain.create_writer(topic)),
      pid_(pid),
      period_(period),
      phase_(phase),
      payload_bytes_(payload_bytes) {}

PeriodicWriter::~PeriodicWriter() { *alive_ = false; }

void PeriodicWriter::set_jitter(DurationDistribution jitter, Rng rng) {
  jitter_ = jitter;
  jitter_rng_ = std::move(rng);
}

void PeriodicWriter::start(TimePoint until) {
  until_ = until;
  epoch_ = domain_.simulator().now() + phase_;
  tick(0);
}

void PeriodicWriter::tick(std::uint64_t k) {
  // Writes are anchored to the drift-free grid epoch + k*period; jitter
  // shifts individual writes without accumulating.
  TimePoint nominal = epoch_ + period_ * static_cast<std::int64_t>(k);
  if (nominal > until_) return;
  TimePoint write_at = nominal;
  if (jitter_.has_value()) {
    const Duration offset = jitter_->sample(jitter_rng_);
    write_at = nominal + offset;
    if (write_at < domain_.simulator().now()) {
      write_at = domain_.simulator().now();
    }
  }
  domain_.simulator().at(write_at, [this, k, alive = alive_] {
    if (!*alive) return;
    writer_.write(pid_, payload_bytes_);
    ++writes_;
    tick(k + 1);
  });
}

}  // namespace tetra::dds
