// Data samples carried by the simulated DDS transport. A sample carries
// exactly the metadata the paper's probes can observe (topic and source
// timestamp) plus routing tags the middleware uses to reproduce service
// semantics (which client issued a request, whom a response targets).
#pragma once

#include <cstdint>
#include <string>

#include "support/ids.hpp"
#include "support/time.hpp"

namespace tetra::dds {

/// Tag value meaning "no specific origin/target".
inline constexpr std::uint64_t kNoTag = 0;

struct Sample {
  std::string topic;
  /// Source timestamp assigned by dds_write (what P6/P10/P13 read back).
  TimePoint src_ts;
  /// Writing process (used by FindCaller's write→caller resolution).
  Pid writer_pid = kInvalidPid;
  /// For service requests: the issuing client handle id.
  std::uint64_t origin_tag = kNoTag;
  /// For service responses: the client handle id the response answers.
  std::uint64_t target_tag = kNoTag;
  /// Payload size (bytes); affects nothing but footprint accounting.
  std::size_t payload_bytes = 64;
  /// Monotonic per-topic sequence number assigned by the topic.
  std::uint64_t sequence = 0;
};

}  // namespace tetra::dds
