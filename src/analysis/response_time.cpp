#include "analysis/response_time.hpp"

#include <algorithm>

namespace tetra::analysis {

namespace {

/// Largest mWCET among other (non-junction) callbacks of the same node:
/// the non-preemptive blocking a just-released callback can suffer from
/// the instance already running on its single-threaded executor.
Duration blocking_term(const core::Dag& dag, const core::DagVertex& vertex) {
  Duration worst = Duration::zero();
  for (const auto& other : dag.vertices()) {
    if (other.key == vertex.key || other.is_and_junction) continue;
    if (other.node_name != vertex.node_name) continue;
    worst = std::max(worst, other.mwcet());
  }
  return worst;
}

/// Sum of mWCETs of other same-node callbacks (each executes at most once
/// from the ready set before the analyzed callback under wait-set order).
Duration queueing_term(const core::Dag& dag, const core::DagVertex& vertex) {
  Duration total = Duration::zero();
  for (const auto& other : dag.vertices()) {
    if (other.key == vertex.key || other.is_and_junction) continue;
    if (other.node_name != vertex.node_name) continue;
    total += other.mwcet();
  }
  return total;
}

}  // namespace

ChainResponseEstimate estimate_chain_response(const core::Dag& dag,
                                              const Chain& chain,
                                              const ResponseTimeOptions& options) {
  ChainResponseEstimate estimate;
  estimate.chain = chain;
  std::size_t hops = 0;
  for (const auto& key : chain) {
    const auto* vertex = dag.find_vertex(key);
    if (vertex == nullptr || vertex->is_and_junction) continue;
    estimate.execution += vertex->mwcet();
    estimate.blocking += blocking_term(dag, *vertex);
    if (options.include_queueing) {
      estimate.queueing += queueing_term(dag, *vertex);
    }
    ++hops;
  }
  if (hops > 1) estimate.transport = options.dds_hop_bound * (hops - 1);
  return estimate;
}

ChainResponseEstimates estimate_all_chains(const core::Dag& dag,
                                           const ResponseTimeOptions& options) {
  ChainResponseEstimates out;
  const ChainEnumeration enumeration = enumerate_chains(dag);
  out.truncated = enumeration.truncated;
  for (const auto& chain : enumeration.chains) {
    out.estimates.push_back(estimate_chain_response(dag, chain, options));
  }
  return out;
}

}  // namespace tetra::analysis
