#include "analysis/convergence.hpp"

#include <algorithm>

namespace tetra::analysis {

const ConvergenceSeries ConvergenceTracker::kEmpty{};

ConvergenceTracker::ConvergenceTracker(std::vector<std::string> tracked_keys)
    : tracked_(std::move(tracked_keys)) {}

void ConvergenceTracker::add_run(const core::Dag& run_dag) {
  cumulative_.merge(run_dag);
  ++runs_;
  auto record = [this](const core::DagVertex& vertex) {
    if (vertex.is_and_junction || vertex.stats.empty()) return;
    series_[vertex.key].push_back(ConvergencePoint{
        runs_, vertex.mbcet(), vertex.macet(), vertex.mwcet()});
  };
  if (tracked_.empty()) {
    for (const auto& vertex : cumulative_.vertices()) record(vertex);
  } else {
    for (const auto& key : tracked_) {
      if (const auto* vertex = cumulative_.find_vertex(key)) record(*vertex);
    }
  }
}

const ConvergenceSeries& ConvergenceTracker::series(const std::string& key) const {
  auto it = series_.find(key);
  return it == series_.end() ? kEmpty : it->second;
}

std::size_t ConvergenceTracker::mwcet_settling_run(const std::string& key,
                                                   double tolerance) const {
  const auto& s = series(key);
  if (s.empty()) return 0;
  const double final_value = static_cast<double>(s.back().mwcet.count_ns());
  if (final_value <= 0.0) return 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const double v = static_cast<double>(s[i].mwcet.count_ns());
    if (std::abs(v - final_value) / final_value <= tolerance) {
      return s[i].runs;
    }
  }
  return 0;
}

}  // namespace tetra::analysis
