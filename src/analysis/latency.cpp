#include "analysis/latency.hpp"

#include <algorithm>

#include "core/exec_time.hpp"

namespace tetra::analysis {

const std::vector<TimePoint> InstanceTimeline::kNoWrites{};

InstanceTimeline::InstanceTimeline(const trace::EventVector& events) {
  trace::EventVector sorted = events;
  trace::sort_by_time(sorted);
  consumers_.reserve(events.size() / 4);

  // Per-PID in-flight instance assembly, mirroring the single-threaded
  // executor assumption: one open instance per PID at a time.
  std::map<Pid, CallbackInstance> open;
  for (const auto& event : sorted) {
    switch (event.type) {
      case trace::EventType::CallbackStart: {
        CallbackInstance inst;
        inst.pid = event.pid;
        inst.kind = event.as<trace::CallbackPhaseInfo>().kind;
        inst.start = event.time;
        open[event.pid] = std::move(inst);
        break;
      }
      case trace::EventType::TimerCall: {
        auto it = open.find(event.pid);
        if (it != open.end()) {
          it->second.callback_id = event.as<trace::TimerCallInfo>().callback_id;
        }
        break;
      }
      case trace::EventType::Take: {
        auto it = open.find(event.pid);
        if (it != open.end()) {
          const auto& info = event.as<trace::TakeInfo>();
          it->second.callback_id = info.callback_id;
          it->second.take = {info.topic, info.src_ts};
        }
        break;
      }
      case trace::EventType::DdsWrite: {
        const auto& info = event.as<trace::DdsWriteInfo>();
        writes_by_topic_[info.topic].push_back(info.src_ts);
        auto it = open.find(event.pid);
        if (it != open.end()) {
          it->second.writes.push_back({info.topic, info.src_ts});
        }
        break;
      }
      case trace::EventType::CallbackEnd: {
        auto it = open.find(event.pid);
        if (it != open.end()) {
          it->second.end = event.time;
          const std::size_t index = instances_.size();
          if (it->second.take.has_value()) {
            consumers_[Key{it->second.take->first,
                           it->second.take->second.count_ns()}]
                .push_back(index);
          }
          instances_.push_back(std::move(it->second));
          open.erase(it);
        }
        break;
      }
      default:
        break;
    }
  }
}

InstanceTimeline::InstanceTimeline(
    std::vector<CallbackInstance> instances,
    std::map<std::string, std::vector<TimePoint>> external_writes)
    : instances_(std::move(instances)),
      writes_by_topic_(std::move(external_writes)) {
  consumers_.reserve(instances_.size());
  for (std::size_t index = 0; index < instances_.size(); ++index) {
    const CallbackInstance& inst = instances_[index];
    if (inst.take.has_value()) {
      consumers_[Key{inst.take->first, inst.take->second.count_ns()}]
          .push_back(index);
    }
    for (const auto& [topic, ts] : inst.writes) {
      writes_by_topic_[topic].push_back(ts);
    }
  }
  // The event-based constructor yields per-topic writes in trace order;
  // match that here so traversal output is independent of how the
  // timeline was fed.
  for (auto& [topic, writes] : writes_by_topic_) {
    std::sort(writes.begin(), writes.end());
  }
}

std::vector<const CallbackInstance*> InstanceTimeline::consumers_of(
    const std::string& topic, TimePoint src_ts) const {
  std::vector<const CallbackInstance*> out;
  const std::vector<std::size_t>* indices = consumer_indices(topic, src_ts);
  if (indices == nullptr) return out;
  out.reserve(indices->size());
  for (std::size_t index : *indices) out.push_back(&instances_[index]);
  return out;
}

const std::vector<std::size_t>* InstanceTimeline::consumer_indices(
    const std::string& topic, TimePoint src_ts) const {
  auto it = consumers_.find(Key{topic, src_ts.count_ns()});
  return it == consumers_.end() ? nullptr : &it->second;
}

const std::vector<TimePoint>& InstanceTimeline::writes_on(
    const std::string& topic) const {
  auto it = writes_by_topic_.find(topic);
  return it == writes_by_topic_.end() ? kNoWrites : it->second;
}

namespace {

/// Follows one sample recursively to the deepest consumer end time.
/// Returns the completion time of the chain for this sample, if the whole
/// remaining topic sequence is traversed.
std::optional<TimePoint> follow(const InstanceTimeline& timeline,
                                const std::vector<std::string>& topics,
                                std::size_t depth, TimePoint src_ts) {
  const std::vector<std::size_t>* consumers =
      timeline.consumer_indices(topics[depth], src_ts);
  if (consumers == nullptr) return std::nullopt;
  std::optional<TimePoint> best;
  for (const std::size_t index : *consumers) {
    const CallbackInstance* instance = &timeline.instances()[index];
    if (depth + 1 == topics.size()) {
      // Last hop: the chain completes when the final consumer finishes.
      if (!best.has_value() || instance->end > *best) best = instance->end;
      continue;
    }
    // Find this instance's write on the next topic (if it produced one).
    for (const auto& [topic, ts] : instance->writes) {
      if (topic == topics[depth + 1]) {
        auto completed = follow(timeline, topics, depth + 1, ts);
        if (completed.has_value() && (!best.has_value() || *completed > *best)) {
          best = completed;
        }
      }
    }
  }
  return best;
}

}  // namespace

ChainLatencyResult measure_chain_latency(const InstanceTimeline& timeline,
                                         const std::vector<std::string>& topics) {
  ChainLatencyResult result;
  if (topics.empty()) return result;
  for (TimePoint src_ts : timeline.writes_on(topics[0])) {
    auto completed = follow(timeline, topics, 0, src_ts);
    if (completed.has_value()) {
      result.latencies.add(*completed - src_ts);
      ++result.complete;
    } else {
      ++result.incomplete;
    }
  }
  return result;
}

std::map<CallbackId, SampleSet> measure_waiting_times(
    const trace::EventVector& events) {
  core::ExecTimeCalculator calc(events);
  InstanceTimeline timeline(events);
  std::map<CallbackId, SampleSet> out;
  for (const auto& instance : timeline.instances()) {
    auto wakeup = calc.last_wakeup_before(instance.pid, instance.start);
    if (!wakeup.has_value()) continue;
    out[instance.callback_id].add(instance.start - *wakeup);
  }
  return out;
}

}  // namespace tetra::analysis
