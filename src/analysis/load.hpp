// Processor-load analysis and core-binding optimization from the measured
// model — the paper's §VI use case: "balancing load across processor cores
// or keeping the load below a certain threshold while determining core
// bindings of ROS2 nodes".
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/dag.hpp"

namespace tetra::analysis {

struct CallbackLoad {
  std::string key;
  std::string node;
  double rate_hz = 0.0;       ///< instances / observed span
  Duration macet;             ///< measured average execution time
  double utilization = 0.0;   ///< rate * mACET (fraction of one core)
};

/// Per-callback average processor load over `observed_span` of wall-clock
/// per merged run (e.g. 50 runs x 80 s => span = 4000 s). AND junctions
/// are skipped (zero execution time).
std::vector<CallbackLoad> per_callback_load(const core::Dag& dag,
                                            Duration observed_span);

/// Sums callback loads per node (a node = one executor thread, so this is
/// the thread's utilization).
std::map<std::string, double> per_node_load(const core::Dag& dag,
                                            Duration observed_span);

struct CoreBinding {
  std::map<std::string, int> node_to_core;
  std::vector<double> core_load;
  double makespan = 0.0;  ///< max core load
};

/// Greedy longest-processing-time bin packing of node loads onto
/// `num_cores` cores: sorts nodes by load, assigns each to the least
/// loaded core. A measured-model-driven heuristic for the core-binding
/// use case.
CoreBinding balance_node_loads(const std::map<std::string, double>& node_loads,
                               int num_cores);

}  // namespace tetra::analysis
