#include "analysis/load.hpp"

#include <algorithm>
#include <stdexcept>

namespace tetra::analysis {

std::vector<CallbackLoad> per_callback_load(const core::Dag& dag,
                                            Duration observed_span) {
  if (observed_span <= Duration::zero()) {
    throw std::invalid_argument("per_callback_load: span must be positive");
  }
  std::vector<CallbackLoad> out;
  for (const auto& vertex : dag.vertices()) {
    if (vertex.is_and_junction || vertex.stats.empty()) continue;
    CallbackLoad load;
    load.key = vertex.key;
    load.node = vertex.node_name;
    load.rate_hz = static_cast<double>(vertex.instance_count) /
                   observed_span.to_sec();
    load.macet = vertex.macet();
    load.utilization = load.rate_hz * load.macet.to_sec();
    out.push_back(std::move(load));
  }
  return out;
}

std::map<std::string, double> per_node_load(const core::Dag& dag,
                                            Duration observed_span) {
  std::map<std::string, double> out;
  for (const auto& load : per_callback_load(dag, observed_span)) {
    out[load.node] += load.utilization;
  }
  return out;
}

CoreBinding balance_node_loads(const std::map<std::string, double>& node_loads,
                               int num_cores) {
  if (num_cores <= 0) {
    throw std::invalid_argument("balance_node_loads: need >= 1 core");
  }
  std::vector<std::pair<std::string, double>> sorted(node_loads.begin(),
                                                     node_loads.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  CoreBinding binding;
  binding.core_load.assign(static_cast<std::size_t>(num_cores), 0.0);
  for (const auto& [node, load] : sorted) {
    const auto least = std::min_element(binding.core_load.begin(),
                                        binding.core_load.end());
    const int core = static_cast<int>(least - binding.core_load.begin());
    binding.node_to_core[node] = core;
    *least += load;
  }
  binding.makespan =
      *std::max_element(binding.core_load.begin(), binding.core_load.end());
  return binding;
}

}  // namespace tetra::analysis
