// A simplified chain response-time estimate over the measured DAG,
// demonstrating that the synthesized model carries everything the
// model-based analyses the paper cites ([1]-[5]) require: per-callback
// WCETs, per-node executor grouping, precedence, and periods.
//
// The bound below follows the structure of Casini et al. (ECRTS'19) for
// single-threaded executors, heavily simplified (documented per term):
//   R(chain) = sum over callbacks c of
//                [ mWCET(c)                       execution
//                + B(c)                           blocking: the executor is
//                                                 non-preemptive per callback,
//                                                 so one maximal other callback
//                                                 of the same node can be ahead
//                + Q(c)                           queueing: other callbacks of
//                                                 the node released during one
//                                                 period each execute at most
//                                                 once before c (round-robin
//                                                 wait-set semantics)
//                + D                               one DDS hop latency bound ]
// It is an estimate, not a safe bound: measured WCETs underestimate true
// WCETs (the paper is explicit that the model is measurement-based).
#pragma once

#include <string>
#include <vector>

#include "analysis/chains.hpp"
#include "core/dag.hpp"

namespace tetra::analysis {

struct ResponseTimeOptions {
  /// Upper bound assumed for one DDS publish->dispatch hop.
  Duration dds_hop_bound = Duration::ms(1);
  /// Include the queueing term Q(c) (other same-node callbacks executing
  /// once each before c).
  bool include_queueing = true;
};

struct ChainResponseEstimate {
  Chain chain;
  Duration execution = Duration::zero();   ///< sum of mWCETs
  Duration blocking = Duration::zero();    ///< sum of B(c)
  Duration queueing = Duration::zero();    ///< sum of Q(c)
  Duration transport = Duration::zero();   ///< hop count * dds bound
  Duration total() const {
    return execution + blocking + queueing + transport;
  }
};

/// Estimates the end-to-end response time of one chain.
ChainResponseEstimate estimate_chain_response(const core::Dag& dag,
                                              const Chain& chain,
                                              const ResponseTimeOptions& options);

/// Estimates of every source->sink chain in the DAG; `truncated` is set
/// when enumeration hit the cap and the list is incomplete (callers
/// presenting reports should surface it).
struct ChainResponseEstimates {
  std::vector<ChainResponseEstimate> estimates;
  bool truncated = false;
};

ChainResponseEstimates estimate_all_chains(const core::Dag& dag,
                                           const ResponseTimeOptions& options);

}  // namespace tetra::analysis
