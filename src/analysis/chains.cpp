#include "analysis/chains.hpp"

#include <functional>
#include <stdexcept>

#include "core/callback_record.hpp"

namespace tetra::analysis {

ChainEnumeration enumerate_chains(const core::Dag& dag,
                                  std::size_t max_chains) {
  ChainEnumeration result;
  Chain current;
  std::function<void(const std::string&)> dfs = [&](const std::string& key) {
    if (result.truncated) return;
    current.push_back(key);
    const auto outs = dag.out_edges(key);
    if (outs.empty()) {
      if (result.chains.size() >= max_chains) {
        result.truncated = true;
      } else {
        result.chains.push_back(current);
      }
    } else {
      for (const auto* edge : outs) dfs(edge->to);
    }
    current.pop_back();
  };
  for (const auto* source : dag.sources()) dfs(source->key);
  return result;
}

ChainEnumeration chains_through(const core::Dag& dag, const std::string& key,
                                std::size_t max_chains) {
  ChainEnumeration result = enumerate_chains(dag, max_chains);
  std::vector<Chain> filtered;
  for (auto& chain : result.chains) {
    for (const auto& vertex : chain) {
      if (vertex == key) {
        filtered.push_back(std::move(chain));
        break;
      }
    }
  }
  result.chains = std::move(filtered);
  return result;
}

std::vector<std::string> chain_topics(const core::Dag& dag,
                                      const Chain& chain) {
  std::vector<std::string> topics;
  if (chain.empty()) return topics;

  const auto plain = [](const std::string& topic) {
    return core::split_annotated_topic(topic).first;
  };

  // A source whose in-topic nobody in the DAG produces is driven by an
  // untraced external writer; its samples are real DdsWrite events, so the
  // measured chain can (and should) start there.
  const auto* source = dag.find_vertex(chain.front());
  if (source != nullptr && !source->in_topic.empty() &&
      dag.in_edges(source->key).empty()) {
    topics.push_back(plain(source->in_topic));
  }

  for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
    const auto outs = dag.out_edges(chain[i]);
    const core::DagEdge* hop = nullptr;
    for (const auto* edge : outs) {
      if (edge->to == chain[i + 1]) {
        hop = edge;
        break;
      }
    }
    if (hop == nullptr) {
      throw std::out_of_range("chain_topics: no edge " + chain[i] + " -> " +
                              chain[i + 1]);
    }
    // AND-junction pseudo-edges never carry a DDS sample: the member that
    // completes the synchronization set publishes the junction's output
    // topic inside its own execution.
    if (!hop->topic.empty() && hop->topic.front() == '&') continue;
    topics.push_back(plain(hop->topic));
  }
  return topics;
}

namespace {
Duration accumulate(const core::Dag& dag, const Chain& chain, bool worst) {
  Duration total = Duration::zero();
  for (const auto& key : chain) {
    const auto* vertex = dag.find_vertex(key);
    if (vertex == nullptr) {
      throw std::out_of_range("chain references unknown vertex " + key);
    }
    total += worst ? vertex->mwcet() : vertex->macet();
  }
  return total;
}
}  // namespace

Duration chain_wcet(const core::Dag& dag, const Chain& chain) {
  return accumulate(dag, chain, true);
}

Duration chain_acet(const core::Dag& dag, const Chain& chain) {
  return accumulate(dag, chain, false);
}

std::string to_string(const Chain& chain) {
  std::string out;
  for (std::size_t i = 0; i < chain.size(); ++i) {
    if (i) out += " -> ";
    out += chain[i];
  }
  return out;
}

}  // namespace tetra::analysis
