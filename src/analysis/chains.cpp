#include "analysis/chains.hpp"

#include <functional>
#include <stdexcept>

namespace tetra::analysis {

std::vector<Chain> enumerate_chains(const core::Dag& dag,
                                    std::size_t max_chains) {
  std::vector<Chain> chains;
  Chain current;
  std::function<void(const std::string&)> dfs = [&](const std::string& key) {
    current.push_back(key);
    const auto outs = dag.out_edges(key);
    if (outs.empty()) {
      if (chains.size() >= max_chains) {
        throw std::runtime_error("enumerate_chains: too many chains");
      }
      chains.push_back(current);
    } else {
      for (const auto* edge : outs) dfs(edge->to);
    }
    current.pop_back();
  };
  for (const auto* source : dag.sources()) dfs(source->key);
  return chains;
}

std::vector<Chain> chains_through(const core::Dag& dag, const std::string& key,
                                  std::size_t max_chains) {
  std::vector<Chain> out;
  for (auto& chain : enumerate_chains(dag, max_chains)) {
    for (const auto& vertex : chain) {
      if (vertex == key) {
        out.push_back(chain);
        break;
      }
    }
  }
  return out;
}

namespace {
Duration accumulate(const core::Dag& dag, const Chain& chain, bool worst) {
  Duration total = Duration::zero();
  for (const auto& key : chain) {
    const auto* vertex = dag.find_vertex(key);
    if (vertex == nullptr) {
      throw std::out_of_range("chain references unknown vertex " + key);
    }
    total += worst ? vertex->mwcet() : vertex->macet();
  }
  return total;
}
}  // namespace

Duration chain_wcet(const core::Dag& dag, const Chain& chain) {
  return accumulate(dag, chain, true);
}

Duration chain_acet(const core::Dag& dag, const Chain& chain) {
  return accumulate(dag, chain, false);
}

std::string to_string(const Chain& chain) {
  std::string out;
  for (std::size_t i = 0; i < chain.size(); ++i) {
    if (i) out += " -> ";
    out += chain[i];
  }
  return out;
}

}  // namespace tetra::analysis
