// End-to-end latency measurement through source timestamps (paper §VII:
// "We are logging the source timestamp of data on publisher and subscriber
// sides using which we can traverse data flow through a computation chain
// and calculate its end-to-end latency").
//
// The InstanceTimeline reconstructs per-instance detail (which sample each
// callback instance consumed, which samples it wrote), then chains are
// traversed sample-by-sample: write on topic[0] -> consuming instance ->
// its write on topic[1] -> ... -> final consumer's end time.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "support/ids.hpp"
#include "support/statistics.hpp"
#include "support/time.hpp"
#include "trace/event.hpp"

namespace tetra::analysis {

/// One observed callback execution with its data-flow endpoints.
struct CallbackInstance {
  Pid pid = kInvalidPid;
  CallbackId callback_id = kInvalidCallbackId;
  CallbackKind kind = CallbackKind::Timer;
  TimePoint start;
  TimePoint end;
  /// The (topic, srcTS) this instance consumed, if any.
  std::optional<std::pair<std::string, TimePoint>> take;
  /// The (topic, srcTS) samples this instance wrote.
  std::vector<std::pair<std::string, TimePoint>> writes;
};

class InstanceTimeline {
 public:
  /// Builds the timeline from a merged trace (ROS2 events only needed).
  explicit InstanceTimeline(const trace::EventVector& events);

  /// Builds the timeline from already-assembled instances, plus writes
  /// that have no owning instance (untraced external inputs, whose
  /// DdsWrite events likewise carry no open callback in a real trace).
  /// The predict:: model replay records its activations as instances and
  /// hands them here, so predicted chain latencies are measured by
  /// exactly the same traversal code as substrate measurements.
  explicit InstanceTimeline(
      std::vector<CallbackInstance> instances,
      std::map<std::string, std::vector<TimePoint>> external_writes = {});

  const std::vector<CallbackInstance>& instances() const { return instances_; }

  /// Instances that consumed the sample identified by (topic, srcTS).
  std::vector<const CallbackInstance*> consumers_of(const std::string& topic,
                                                    TimePoint src_ts) const;

  /// Allocation-free form of consumers_of: indices into instances(), or
  /// nullptr when nobody consumed the sample. The chain-latency traversal
  /// sits on this lookup for every sample at every hop.
  const std::vector<std::size_t>* consumer_indices(const std::string& topic,
                                                   TimePoint src_ts) const;

  /// All source timestamps written on `topic`, in time order.
  const std::vector<TimePoint>& writes_on(const std::string& topic) const;

 private:
  using Key = std::pair<std::string, std::int64_t>;
  struct KeyHash {
    std::size_t operator()(const Key& key) const {
      return std::hash<std::string>()(key.first) ^
             (static_cast<std::size_t>(key.second) * 0x9e3779b97f4a7c15ULL);
    }
  };
  std::vector<CallbackInstance> instances_;
  /// Hashed: consumers_of is the hot lookup of every chain traversal.
  std::unordered_map<Key, std::vector<std::size_t>, KeyHash> consumers_;
  std::map<std::string, std::vector<TimePoint>> writes_by_topic_;
  static const std::vector<TimePoint> kNoWrites;
};

struct ChainLatencyResult {
  /// End-to-end latencies (ns) of completed traversals.
  SampleSet latencies;
  std::size_t complete = 0;
  std::size_t incomplete = 0;

  Duration min() const { return Duration{static_cast<std::int64_t>(latencies.min())}; }
  Duration mean() const { return Duration{static_cast<std::int64_t>(latencies.mean())}; }
  Duration max() const { return Duration{static_cast<std::int64_t>(latencies.max())}; }
};

/// Measures end-to-end latency along a topic chain: for every sample
/// written on topics[0], follows consumption/production through each
/// subsequent topic and reports (final consumer end - first write time).
/// Traversals that die out (e.g. a sync member that was not the last to
/// arrive and therefore never published) count as incomplete.
ChainLatencyResult measure_chain_latency(const InstanceTimeline& timeline,
                                         const std::vector<std::string>& topics);

/// Per-callback waiting times (wakeup -> dispatch) aggregated from the
/// sched_wakeup extension; keyed by callback id.
std::map<CallbackId, SampleSet> measure_waiting_times(
    const trace::EventVector& events);

}  // namespace tetra::analysis
