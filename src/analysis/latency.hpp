// End-to-end latency measurement through source timestamps (paper §VII:
// "We are logging the source timestamp of data on publisher and subscriber
// sides using which we can traverse data flow through a computation chain
// and calculate its end-to-end latency").
//
// The InstanceTimeline reconstructs per-instance detail (which sample each
// callback instance consumed, which samples it wrote), then chains are
// traversed sample-by-sample: write on topic[0] -> consuming instance ->
// its write on topic[1] -> ... -> final consumer's end time.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "support/ids.hpp"
#include "support/statistics.hpp"
#include "support/time.hpp"
#include "trace/event.hpp"

namespace tetra::analysis {

/// One observed callback execution with its data-flow endpoints.
struct CallbackInstance {
  Pid pid = kInvalidPid;
  CallbackId callback_id = kInvalidCallbackId;
  CallbackKind kind = CallbackKind::Timer;
  TimePoint start;
  TimePoint end;
  /// The (topic, srcTS) this instance consumed, if any.
  std::optional<std::pair<std::string, TimePoint>> take;
  /// The (topic, srcTS) samples this instance wrote.
  std::vector<std::pair<std::string, TimePoint>> writes;
};

class InstanceTimeline {
 public:
  /// Builds the timeline from a merged trace (ROS2 events only needed).
  explicit InstanceTimeline(const trace::EventVector& events);

  const std::vector<CallbackInstance>& instances() const { return instances_; }

  /// Instances that consumed the sample identified by (topic, srcTS).
  std::vector<const CallbackInstance*> consumers_of(const std::string& topic,
                                                    TimePoint src_ts) const;

  /// All source timestamps written on `topic`, in time order.
  const std::vector<TimePoint>& writes_on(const std::string& topic) const;

 private:
  using Key = std::pair<std::string, std::int64_t>;
  std::vector<CallbackInstance> instances_;
  std::map<Key, std::vector<std::size_t>> consumers_;
  std::map<std::string, std::vector<TimePoint>> writes_by_topic_;
  static const std::vector<TimePoint> kNoWrites;
};

struct ChainLatencyResult {
  /// End-to-end latencies (ns) of completed traversals.
  SampleSet latencies;
  std::size_t complete = 0;
  std::size_t incomplete = 0;

  Duration min() const { return Duration{static_cast<std::int64_t>(latencies.min())}; }
  Duration mean() const { return Duration{static_cast<std::int64_t>(latencies.mean())}; }
  Duration max() const { return Duration{static_cast<std::int64_t>(latencies.max())}; }
};

/// Measures end-to-end latency along a topic chain: for every sample
/// written on topics[0], follows consumption/production through each
/// subsequent topic and reports (final consumer end - first write time).
/// Traversals that die out (e.g. a sync member that was not the last to
/// arrive and therefore never published) count as incomplete.
ChainLatencyResult measure_chain_latency(const InstanceTimeline& timeline,
                                         const std::vector<std::string>& topics);

/// Per-callback waiting times (wakeup -> dispatch) aggregated from the
/// sched_wakeup extension; keyed by callback id.
std::map<CallbackId, SampleSet> measure_waiting_times(
    const trace::EventVector& events);

}  // namespace tetra::analysis
