// Chain enumeration over the synthesized DAG. Computation chains (source
// to sink paths) are the unit of end-to-end timing analysis in the ROS2
// literature the paper targets ([1]-[5]); the service-vertex splitting
// exists precisely to keep these chains correct.
#pragma once

#include <string>
#include <vector>

#include "core/dag.hpp"

namespace tetra::analysis {

/// One source-to-sink path, as vertex keys in order.
using Chain = std::vector<std::string>;

/// Result of a chain enumeration. When the graph holds more source->sink
/// paths than `max_chains`, `chains` keeps the first `max_chains` found
/// and `truncated` is set — callers that present results to a user should
/// surface the flag (tetra_synth / tetra_predict print a warning).
struct ChainEnumeration {
  std::vector<Chain> chains;
  bool truncated = false;
};

/// Enumerates all simple source->sink paths. `max_chains` guards against
/// pathological graphs: enumeration stops there and the result is flagged
/// as truncated instead of throwing.
ChainEnumeration enumerate_chains(const core::Dag& dag,
                                  std::size_t max_chains = 4096);

/// All chains passing through the given vertex (truncated flags the
/// underlying enumeration hitting `max_chains`, not the filter).
ChainEnumeration chains_through(const core::Dag& dag, const std::string& key,
                                std::size_t max_chains = 4096);

/// The measured-comparable topic sequence of a chain: the dangling
/// in-topic of the source (when nothing in the DAG produces it — an
/// untraced external input writes it), then each edge's topic in order.
/// AND-junction pseudo-edges ("&<node>") carry no DDS sample and are
/// dropped; per-caller/per-client annotations are stripped, leaving the
/// plain topic names that appear in trace events — i.e. exactly a
/// `topics` argument for analysis::measure_chain_latency.
std::vector<std::string> chain_topics(const core::Dag& dag, const Chain& chain);

/// Sum of mWCETs (mACETs) along a chain; AND junctions contribute zero.
Duration chain_wcet(const core::Dag& dag, const Chain& chain);
Duration chain_acet(const core::Dag& dag, const Chain& chain);

/// Renders "A -> B -> C".
std::string to_string(const Chain& chain);

}  // namespace tetra::analysis
