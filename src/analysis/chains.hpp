// Chain enumeration over the synthesized DAG. Computation chains (source
// to sink paths) are the unit of end-to-end timing analysis in the ROS2
// literature the paper targets ([1]-[5]); the service-vertex splitting
// exists precisely to keep these chains correct.
#pragma once

#include <string>
#include <vector>

#include "core/dag.hpp"

namespace tetra::analysis {

/// One source-to-sink path, as vertex keys in order.
using Chain = std::vector<std::string>;

/// Enumerates all simple source->sink paths. `max_chains` guards against
/// pathological graphs (throws std::runtime_error when exceeded).
std::vector<Chain> enumerate_chains(const core::Dag& dag,
                                    std::size_t max_chains = 4096);

/// All chains passing through the given vertex.
std::vector<Chain> chains_through(const core::Dag& dag, const std::string& key,
                                  std::size_t max_chains = 4096);

/// Sum of mWCETs (mACETs) along a chain; AND junctions contribute zero.
Duration chain_wcet(const core::Dag& dag, const Chain& chain);
Duration chain_acet(const core::Dag& dag, const Chain& chain);

/// Renders "A -> B -> C".
std::string to_string(const Chain& chain);

}  // namespace tetra::analysis
