// Convergence of measured timing attributes with the number of runs
// (paper Fig. 4): as per-run DAGs are merged one by one, mBCET/mACET/mWCET
// estimates stabilize; the paper reports mWCET of the front filter growing
// ~10% over the first ~23 runs and then staying flat.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/dag.hpp"

namespace tetra::analysis {

struct ConvergencePoint {
  std::size_t runs = 0;
  Duration mbcet;
  Duration macet;
  Duration mwcet;
};

using ConvergenceSeries = std::vector<ConvergencePoint>;

class ConvergenceTracker {
 public:
  /// Restrict tracking to these vertex keys (empty = track everything).
  explicit ConvergenceTracker(std::vector<std::string> tracked_keys = {});

  /// Merges one more run's DAG into the cumulative model and records the
  /// current estimates of every tracked vertex.
  void add_run(const core::Dag& run_dag);

  std::size_t runs() const { return runs_; }
  const core::Dag& cumulative() const { return cumulative_; }

  /// Series for one vertex key (empty if never seen).
  const ConvergenceSeries& series(const std::string& key) const;

  /// Run index (1-based) after which the mWCET estimate stays within
  /// `tolerance` (relative) of its final value; 0 if it never settles.
  std::size_t mwcet_settling_run(const std::string& key,
                                 double tolerance = 0.01) const;

 private:
  std::vector<std::string> tracked_;
  core::Dag cumulative_;
  std::size_t runs_ = 0;
  std::map<std::string, ConvergenceSeries> series_;
  static const ConvergenceSeries kEmpty;
};

}  // namespace tetra::analysis
