#include "trace/merge.hpp"

#include <algorithm>
#include <queue>

namespace tetra::trace {

EventVector merge_sorted(const std::vector<EventVector>& traces) {
  struct Cursor {
    const EventVector* trace;
    std::size_t index;
    std::size_t source;
  };
  auto later = [](const Cursor& a, const Cursor& b) {
    const TimePoint ta = (*a.trace)[a.index].time;
    const TimePoint tb = (*b.trace)[b.index].time;
    if (ta != tb) return ta > tb;
    return a.source > b.source;
  };
  std::priority_queue<Cursor, std::vector<Cursor>, decltype(later)> heap(later);
  std::size_t total = 0;
  for (std::size_t i = 0; i < traces.size(); ++i) {
    total += traces[i].size();
    if (!traces[i].empty()) heap.push(Cursor{&traces[i], 0, i});
  }
  EventVector out;
  out.reserve(total);
  while (!heap.empty()) {
    Cursor c = heap.top();
    heap.pop();
    out.push_back((*c.trace)[c.index]);
    if (c.index + 1 < c.trace->size()) {
      heap.push(Cursor{c.trace, c.index + 1, c.source});
    }
  }
  return out;
}

EventVector merge_unsorted(const std::vector<EventVector>& traces) {
  EventVector out;
  std::size_t total = 0;
  for (const auto& t : traces) total += t.size();
  out.reserve(total);
  for (const auto& t : traces) out.insert(out.end(), t.begin(), t.end());
  sort_by_time(out);
  return out;
}

EventVector shift_times(const EventVector& trace, Duration offset) {
  EventVector out = trace;
  for (auto& e : out) {
    e.time += offset;
    if (auto* take = std::get_if<TakeInfo>(&e.payload)) {
      take->src_ts += offset;
    } else if (auto* write = std::get_if<DdsWriteInfo>(&e.payload)) {
      write->src_ts += offset;
    }
  }
  return out;
}

}  // namespace tetra::trace
