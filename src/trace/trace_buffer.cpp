#include "trace/trace_buffer.hpp"

#include "telemetry/metrics.hpp"

namespace tetra::trace {

TraceBuffer::TraceBuffer(std::size_t capacity) : capacity_(capacity) {}

bool TraceBuffer::push(TraceEvent event) {
  if (events_.size() >= capacity_) {
    ++dropped_;
    // Surfaced process-wide: per-buffer dropped() is easy to miss once
    // many buffers exist (one per tracer per run).
    static telemetry::Counter& drop_counter =
        telemetry::MetricsRegistry::global().counter("trace.buffer_dropped");
    drop_counter.inc();
    return false;
  }
  events_.push_back(std::move(event));
  return true;
}

EventVector TraceBuffer::drain() {
  EventVector out;
  out.swap(events_);
  return out;
}

std::size_t TraceBuffer::footprint_bytes() const {
  std::size_t total = 0;
  for (const auto& e : events_) total += approximate_record_size(e);
  return total;
}

void TraceBuffer::clear() {
  events_.clear();
  dropped_ = 0;
}

}  // namespace tetra::trace
