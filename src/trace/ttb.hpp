// tetra trace binary (.ttb): the on-disk twin of EventColumns. One small
// header followed by the eight fixed-width columns and the string table,
// laid out so a memory map of the file IS a valid ColumnsView — ingestion
// becomes a handful of pointer fixups plus one validation scan instead of
// per-line JSON parsing. See docs/TRACE_FORMAT.md for the byte layout.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/event_columns.hpp"

namespace tetra::trace {

inline constexpr char kTtbMagic[8] = {'t', 'e', 't', 'r', 'a', 'T', 'T', 'B'};
inline constexpr std::uint32_t kTtbVersion = 1;
inline constexpr std::uint32_t kTtbEndianProbe = 0x0A0B0C0D;
inline constexpr std::size_t kTtbHeaderSize = 40;

/// Writes a .ttb file. Event order is preserved exactly — conversion never
/// sorts, so JSONL -> ttb -> JSONL is byte-identical.
void write_ttb_file(const std::string& path, const ColumnsView& view);
void write_ttb_file(const std::string& path, const EventColumns& columns);
void write_ttb_file(const std::string& path, const EventVector& events);

/// True when the file exists and starts with the .ttb magic.
bool is_ttb_file(const std::string& path);

/// Read-side handle. Memory-maps the file where the platform allows
/// (read-only, private) and falls back to a buffered read elsewhere; either
/// way the header and every row are validated once at open, after which
/// view() exposes the columns zero-copy. Move-only.
class TtbReader {
 public:
  explicit TtbReader(const std::string& path);
  ~TtbReader();

  TtbReader(TtbReader&& other) noexcept;
  TtbReader& operator=(TtbReader&& other) noexcept;
  TtbReader(const TtbReader&) = delete;
  TtbReader& operator=(const TtbReader&) = delete;

  const ColumnsView& view() const { return view_; }
  std::size_t size() const { return view_.count; }

  /// Decodes every row back into heap TraceEvents (tests, conversion).
  EventVector materialize() const;

  /// Whether the file is served from an mmap (vs the read fallback).
  bool mapped() const { return mapped_; }

 private:
  void parse(const char* data, std::size_t size, const std::string& path);
  void unmap();

  ColumnsView view_;
  std::vector<char> fallback_;
  void* map_ = nullptr;
  std::size_t map_size_ = 0;
  bool mapped_ = false;
};

}  // namespace tetra::trace
