#include "trace/event_view.hpp"

#include <queue>

namespace tetra::trace {

std::atomic<std::uint64_t> SortedEventView::copied_{0};

bool is_time_sorted(const EventVector& events) {
  for (std::size_t i = 1; i < events.size(); ++i) {
    if (events[i].time < events[i - 1].time) return false;
  }
  return true;
}

SortedEventView SortedEventView::over(const EventVector& events) {
  SortedEventView view;
  if (is_time_sorted(events)) {
    view.external_ = &events;
  } else {
    view.storage_ = events;
    sort_by_time(view.storage_);
    copied_.fetch_add(events.size(), std::memory_order_relaxed);
  }
  return view;
}

SortedEventView SortedEventView::adopt(EventVector events) {
  SortedEventView view;
  view.storage_ = std::move(events);
  if (!is_time_sorted(view.storage_)) sort_by_time(view.storage_);
  return view;
}

SortedEventView SortedEventView::merged(
    const std::vector<const EventVector*>& parts) {
  if (parts.size() == 1 && is_time_sorted(*parts[0])) {
    return over(*parts[0]);
  }
  struct Cursor {
    const EventVector* part;
    std::size_t index;
    std::size_t source;
  };
  auto later = [](const Cursor& a, const Cursor& b) {
    const TimePoint ta = (*a.part)[a.index].time;
    const TimePoint tb = (*b.part)[b.index].time;
    if (ta != tb) return ta > tb;
    return a.source > b.source;
  };
  std::priority_queue<Cursor, std::vector<Cursor>, decltype(later)> heap(later);
  std::size_t total = 0;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    total += parts[i]->size();
    if (!parts[i]->empty()) heap.push(Cursor{parts[i], 0, i});
  }
  SortedEventView view;
  view.storage_.reserve(total);
  while (!heap.empty()) {
    Cursor c = heap.top();
    heap.pop();
    view.storage_.push_back((*c.part)[c.index]);
    if (c.index + 1 < c.part->size()) {
      heap.push(Cursor{c.part, c.index + 1, c.source});
    }
  }
  copied_.fetch_add(total, std::memory_order_relaxed);
  return view;
}

std::uint64_t SortedEventView::events_copied() {
  return copied_.load(std::memory_order_relaxed);
}

void SortedEventView::reset_copy_counter() {
  copied_.store(0, std::memory_order_relaxed);
}

}  // namespace tetra::trace
