// Trace merging (Fig. 2): traces collected in segments and across runs can
// be merged into one chronologically ordered stream before model synthesis
// (deployment option i), or kept separate with DAG-level merging
// (option ii). Both are supported; this header implements the trace side.
#pragma once

#include <vector>

#include "trace/event.hpp"

namespace tetra::trace {

/// K-way merges already-time-sorted traces into one sorted stream.
/// Ties keep the input order (earlier vector first) for determinism.
EventVector merge_sorted(const std::vector<EventVector>& traces);

/// Concatenates and sorts arbitrary traces (tolerates unsorted inputs).
EventVector merge_unsorted(const std::vector<EventVector>& traces);

/// Shifts all timestamps (and embedded source timestamps) by `offset`;
/// needed when concatenating segments whose clocks restarted, so that the
/// merged stream remains monotonic per run.
EventVector shift_times(const EventVector& trace, Duration offset);

}  // namespace tetra::trace
