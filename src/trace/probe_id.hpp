// Probe identities, matching Table I of the paper (P1..P16) plus the two
// kernel tracepoints (sched_switch; sched_wakeup is the paper's proposed
// extension). Every trace event carries the probe that produced it.
#pragma once

#include <cstdint>
#include <string_view>

namespace tetra::trace {

enum class ProbeId : std::uint8_t {
  P1_RmwCreateNode = 1,       ///< rmw_create_node: node name + executor PID
  P2_ExecuteTimerEntry,       ///< rclcpp execute_timer entry: timer CB start
  P3_RclTimerCall,            ///< rcl_timer_call: timer CB id
  P4_ExecuteTimerExit,        ///< rclcpp execute_timer exit: timer CB end
  P5_ExecuteSubscriptionEntry,///< execute_subscription entry: sub CB start
  P6_RmwTakeInt,              ///< rmw_take w/ info exit: CB id, topic, srcTS
  P7_MessageFilterOperator,   ///< message_filters operator(): sync subscriber
  P8_ExecuteSubscriptionExit, ///< execute_subscription exit: sub CB end
  P9_ExecuteServiceEntry,     ///< execute_service entry: service CB start
  P10_RmwTakeRequest,         ///< rmw_take_request exit: CB id, service, srcTS
  P11_ExecuteServiceExit,     ///< execute_service exit: service CB end
  P12_ExecuteClientEntry,     ///< execute_client entry: client CB start
  P13_RmwTakeResponse,        ///< rmw_take_response exit: CB id, service, srcTS
  P14_TakeTypeErasedResponse, ///< take_type_erased_response exit: dispatch?
  P15_ExecuteClientExit,      ///< execute_client exit: client CB end
  P16_DdsWriteImpl,           ///< dds_write_impl: topic + srcTS
  SchedSwitch,                ///< kernel tracepoint sched:sched_switch
  SchedWakeup,                ///< kernel tracepoint sched:sched_wakeup
};

/// Short name as the tracer would label events ("P6", "sched_switch").
std::string_view to_string(ProbeId id);

/// Parses the short name back; throws std::invalid_argument on unknown.
ProbeId probe_id_from_string(std::string_view name);

/// Validates a raw numeric probe id (binary trace decoding); throws
/// std::invalid_argument when out of range.
ProbeId probe_id_from_int(std::int64_t value);

}  // namespace tetra::trace
