// Trace event records. Each record mirrors what the eBPF programs of the
// paper can observe at their probe site: a timestamp, the PID the event is
// attributed to, the probe name, and a probe-specific payload.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "support/ids.hpp"
#include "support/time.hpp"
#include "trace/probe_id.hpp"

namespace tetra::trace {

/// High-level classification used by Algorithm 1's dispatch.
enum class EventType : std::uint8_t {
  RmwCreateNode,    ///< P1
  CallbackStart,    ///< P2/P5/P9/P12
  TimerCall,        ///< P3
  Take,             ///< P6/P10/P13
  TakeTypeErased,   ///< P14
  SyncOperator,     ///< P7
  CallbackEnd,      ///< P4/P8/P11/P15
  DdsWrite,         ///< P16
  SchedSwitch,
  SchedWakeup,
};

std::string_view to_string(EventType t);
EventType event_type_from_string(std::string_view name);

/// What flavour of rmw_take produced a Take event.
enum class TakeKind : std::uint8_t {
  Data,      ///< rmw_take (with message info) — subscription data
  Request,   ///< rmw_take_request — service side
  Response,  ///< rmw_take_response — client side
};

/// Payloads ---------------------------------------------------------------

struct NodeInfo {
  std::string node_name;
  bool operator==(const NodeInfo&) const = default;
};

struct CallbackPhaseInfo {
  CallbackKind kind = CallbackKind::Timer;
  bool operator==(const CallbackPhaseInfo&) const = default;
};

struct TimerCallInfo {
  CallbackId callback_id = kInvalidCallbackId;
  bool operator==(const TimerCallInfo&) const = default;
};

struct TakeInfo {
  TakeKind kind = TakeKind::Data;
  CallbackId callback_id = kInvalidCallbackId;
  std::string topic;      ///< topic name, or service topic (…Request/…Reply)
  TimePoint src_ts;       ///< source timestamp read via the entry/exit stash
  bool operator==(const TakeInfo&) const = default;
};

struct TakeTypeErasedInfo {
  bool will_dispatch = false;  ///< return value of take_type_erased_response
  bool operator==(const TakeTypeErasedInfo&) const = default;
};

struct SyncOperatorInfo {
  CallbackId callback_id = kInvalidCallbackId;
  bool operator==(const SyncOperatorInfo&) const = default;
};

struct DdsWriteInfo {
  std::string topic;
  TimePoint src_ts;
  bool operator==(const DdsWriteInfo&) const = default;
};

/// Thread states reported by sched_switch for the previous thread, using
/// the kernel's single-letter convention.
enum class ThreadRunState : char {
  Runnable = 'R',       ///< preempted while still runnable
  Sleeping = 'S',       ///< voluntarily blocked (interruptible)
  DiskSleep = 'D',      ///< uninterruptible wait
  Dead = 'X',
};

struct SchedSwitchInfo {
  CpuId cpu = kInvalidCpu;
  Pid prev_pid = kInvalidPid;
  int prev_prio = 0;
  ThreadRunState prev_state = ThreadRunState::Runnable;
  Pid next_pid = kInvalidPid;
  int next_prio = 0;
  bool operator==(const SchedSwitchInfo&) const = default;
};

struct SchedWakeupInfo {
  Pid woken_pid = kInvalidPid;
  CpuId target_cpu = kInvalidCpu;
  bool operator==(const SchedWakeupInfo&) const = default;
};

/// Validating decoders for enum-bearing fields arriving from external
/// input (JSONL lines, .ttb records). Out-of-range values raise
/// std::invalid_argument instead of being static_cast into garbage.
EventType event_type_from_int(std::int64_t value);
TakeKind take_kind_from_int(std::int64_t value);
ThreadRunState thread_run_state_from_char(char state);
CallbackKind callback_kind_from_int(std::int64_t value);

using EventPayload =
    std::variant<NodeInfo, CallbackPhaseInfo, TimerCallInfo, TakeInfo,
                 TakeTypeErasedInfo, SyncOperatorInfo, DdsWriteInfo,
                 SchedSwitchInfo, SchedWakeupInfo>;

/// One trace record. `pid` is the process the event belongs to: the probed
/// process for uprobes, and the CPU's previous-thread owner process for
/// sched events (sched payloads carry both pids explicitly).
struct TraceEvent {
  TimePoint time;
  Pid pid = kInvalidPid;
  ProbeId probe = ProbeId::P1_RmwCreateNode;
  EventType type = EventType::RmwCreateNode;
  EventPayload payload;

  template <typename T>
  const T& as() const {
    return std::get<T>(payload);
  }
  template <typename T>
  bool is() const {
    return std::holds_alternative<T>(payload);
  }

  bool operator==(const TraceEvent&) const = default;
};

/// Convenience constructors -----------------------------------------------

TraceEvent make_node_event(TimePoint t, Pid pid, std::string node_name);
TraceEvent make_callback_start(TimePoint t, Pid pid, CallbackKind kind);
TraceEvent make_callback_end(TimePoint t, Pid pid, CallbackKind kind);
TraceEvent make_timer_call(TimePoint t, Pid pid, CallbackId id);
TraceEvent make_take(TimePoint t, Pid pid, TakeKind kind, CallbackId id,
                     std::string topic, TimePoint src_ts);
TraceEvent make_take_type_erased(TimePoint t, Pid pid, bool will_dispatch);
TraceEvent make_sync_operator(TimePoint t, Pid pid, CallbackId id);
TraceEvent make_dds_write(TimePoint t, Pid pid, std::string topic,
                          TimePoint src_ts);
TraceEvent make_sched_switch(TimePoint t, SchedSwitchInfo info);
TraceEvent make_sched_wakeup(TimePoint t, SchedWakeupInfo info);

/// Probe/phase mapping helpers used both by the tracer and by Algorithm 1.
ProbeId start_probe_for(CallbackKind kind);
ProbeId end_probe_for(CallbackKind kind);
CallbackKind kind_for_phase_probe(ProbeId id);

/// A flat, time-sorted collection of events (one tracer's output, or a
/// merged view). Kept simple on purpose: analysis passes index into it.
using EventVector = std::vector<TraceEvent>;

/// Stable sort by (time, original order).
void sort_by_time(EventVector& events);

/// Returns events with the given PID, preserving order.
EventVector filter_by_pid(const EventVector& events, Pid pid);

/// Approximate serialized size in bytes of one event record, used for the
/// trace-footprint accounting the paper reports (9 MB / 60 s).
std::size_t approximate_record_size(const TraceEvent& event);

}  // namespace tetra::trace
