#include "trace/ttb.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "telemetry/metrics.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define TETRA_TTB_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace tetra::trace {

namespace {

/// Bytes of zero padding after the three byte columns so the string-offset
/// array lands on a 4-byte boundary.
std::size_t byte_column_pad(std::uint64_t count) {
  return (4 - (3 * count) % 4) % 4;
}

void write_bytes(std::ofstream& f, const void* data, std::size_t len) {
  if (len == 0) return;
  f.write(static_cast<const char*>(data), static_cast<std::streamsize>(len));
}

}  // namespace

void write_ttb_file(const std::string& path, const ColumnsView& v) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) throw std::runtime_error("cannot open for write: " + path);

  char header[kTtbHeaderSize] = {};
  std::memcpy(header, kTtbMagic, sizeof(kTtbMagic));
  std::memcpy(header + 8, &kTtbVersion, 4);
  std::memcpy(header + 12, &kTtbEndianProbe, 4);
  const std::uint64_t count = v.count;
  const std::uint64_t string_count = v.string_count;
  const std::uint64_t blob_bytes = v.blob_size;
  std::memcpy(header + 16, &count, 8);
  std::memcpy(header + 24, &string_count, 8);
  std::memcpy(header + 32, &blob_bytes, 8);
  write_bytes(f, header, sizeof(header));

  write_bytes(f, v.time, 8 * v.count);
  write_bytes(f, v.arg_a, 8 * v.count);
  write_bytes(f, v.arg_b, 8 * v.count);
  write_bytes(f, v.pid, 4 * v.count);
  write_bytes(f, v.arg_c, 4 * v.count);
  write_bytes(f, v.probe, v.count);
  write_bytes(f, v.type, v.count);
  write_bytes(f, v.aux, v.count);
  const char zeros[4] = {};
  write_bytes(f, zeros, byte_column_pad(count));
  write_bytes(f, v.str_offsets, 4 * (v.string_count + 1));
  write_bytes(f, v.blob, v.blob_size);

  if (!f) throw std::runtime_error("write failed: " + path);
}

void write_ttb_file(const std::string& path, const EventColumns& columns) {
  write_ttb_file(path, columns.view());
}

void write_ttb_file(const std::string& path, const EventVector& events) {
  EventColumns columns;
  columns.append(events);
  write_ttb_file(path, columns.view());
}

bool is_ttb_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  char magic[sizeof(kTtbMagic)] = {};
  f.read(magic, sizeof(magic));
  return f.gcount() == sizeof(magic) &&
         std::memcmp(magic, kTtbMagic, sizeof(magic)) == 0;
}

void TtbReader::parse(const char* data, std::size_t size,
                      const std::string& path) {
  if (size < kTtbHeaderSize) {
    throw std::runtime_error("truncated ttb file: " + path);
  }
  if (std::memcmp(data, kTtbMagic, sizeof(kTtbMagic)) != 0) {
    throw std::runtime_error("not a ttb file: " + path);
  }
  std::uint32_t version = 0;
  std::uint32_t endian = 0;
  std::memcpy(&version, data + 8, 4);
  std::memcpy(&endian, data + 12, 4);
  if (endian != kTtbEndianProbe) {
    throw std::runtime_error("ttb endianness mismatch: " + path);
  }
  if (version != kTtbVersion) {
    throw std::runtime_error("unsupported ttb version " +
                             std::to_string(version) + ": " + path);
  }
  std::uint64_t count = 0;
  std::uint64_t string_count = 0;
  std::uint64_t blob_bytes = 0;
  std::memcpy(&count, data + 16, 8);
  std::memcpy(&string_count, data + 24, 8);
  std::memcpy(&blob_bytes, data + 32, 8);
  // Reject sizes the file cannot possibly hold before doing arithmetic on
  // them (overflow safety for corrupt headers).
  if (count > size / 8 || string_count > size / 4 || blob_bytes > size) {
    throw std::runtime_error("truncated ttb file: " + path);
  }
  const std::uint64_t expected =
      kTtbHeaderSize + 24 * count /* time, arg_a, arg_b */ +
      8 * count /* pid, arg_c */ + 3 * count /* probe, type, aux */ +
      byte_column_pad(count) + 4 * (string_count + 1) + blob_bytes;
  if (expected != size) {
    throw std::runtime_error("ttb size mismatch (expected " +
                             std::to_string(expected) + " bytes, file has " +
                             std::to_string(size) + "): " + path);
  }

  ColumnsView v;
  const char* p = data + kTtbHeaderSize;
  v.time = reinterpret_cast<const std::int64_t*>(p);
  p += 8 * count;
  v.arg_a = reinterpret_cast<const std::uint64_t*>(p);
  p += 8 * count;
  v.arg_b = reinterpret_cast<const std::int64_t*>(p);
  p += 8 * count;
  v.pid = reinterpret_cast<const std::int32_t*>(p);
  p += 4 * count;
  v.arg_c = reinterpret_cast<const std::uint32_t*>(p);
  p += 4 * count;
  v.probe = reinterpret_cast<const std::uint8_t*>(p);
  p += count;
  v.type = reinterpret_cast<const std::uint8_t*>(p);
  p += count;
  v.aux = reinterpret_cast<const std::uint8_t*>(p);
  p += count + byte_column_pad(count);
  v.str_offsets = reinterpret_cast<const std::uint32_t*>(p);
  p += 4 * (string_count + 1);
  v.blob = p;
  v.count = static_cast<std::size_t>(count);
  v.string_count = static_cast<std::size_t>(string_count);
  v.blob_size = static_cast<std::size_t>(blob_bytes);

  if (v.str_offsets[0] != 0) {
    throw std::runtime_error("corrupt ttb string table: " + path);
  }
  for (std::uint64_t i = 0; i < string_count; ++i) {
    if (v.str_offsets[i] > v.str_offsets[i + 1] ||
        v.str_offsets[i + 1] > blob_bytes) {
      throw std::runtime_error("corrupt ttb string table: " + path);
    }
  }
  try {
    validate_columns(v);
  } catch (const std::invalid_argument& e) {
    // Normalize to the reader's contract: opening a corrupt file is a
    // runtime_error naming the file, whatever the row-level detail.
    throw std::runtime_error("corrupt ttb file " + path + ": " + e.what());
  }
  view_ = v;
}

TtbReader::TtbReader(const std::string& path) {
#if TETRA_TTB_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw std::runtime_error("cannot open for read: " + path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw std::runtime_error("cannot stat: " + path);
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size > 0) {
    void* p = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (p != MAP_FAILED) {
      map_ = p;
      map_size_ = size;
      mapped_ = true;
      try {
        parse(static_cast<const char*>(map_), map_size_, path);
      } catch (...) {
        unmap();
        throw;
      }
      return;
    }
  } else {
    ::close(fd);
  }
#endif
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  if (!f) throw std::runtime_error("cannot open for read: " + path);
  const auto end = f.tellg();
  f.seekg(0, std::ios::beg);
  fallback_.resize(static_cast<std::size_t>(end));
  if (!fallback_.empty()) {
    f.read(fallback_.data(), static_cast<std::streamsize>(fallback_.size()));
    if (!f) throw std::runtime_error("read failed: " + path);
  }
  parse(fallback_.data(), fallback_.size(), path);
}

TtbReader::~TtbReader() { unmap(); }

TtbReader::TtbReader(TtbReader&& other) noexcept
    : view_(other.view_),
      fallback_(std::move(other.fallback_)),
      map_(other.map_),
      map_size_(other.map_size_),
      mapped_(other.mapped_) {
  other.view_ = ColumnsView{};
  other.map_ = nullptr;
  other.map_size_ = 0;
  other.mapped_ = false;
}

TtbReader& TtbReader::operator=(TtbReader&& other) noexcept {
  if (this != &other) {
    unmap();
    view_ = other.view_;
    fallback_ = std::move(other.fallback_);
    map_ = other.map_;
    map_size_ = other.map_size_;
    mapped_ = other.mapped_;
    other.view_ = ColumnsView{};
    other.map_ = nullptr;
    other.map_size_ = 0;
    other.mapped_ = false;
  }
  return *this;
}

void TtbReader::unmap() {
#if TETRA_TTB_HAVE_MMAP
  if (map_ != nullptr) {
    ::munmap(map_, map_size_);
    map_ = nullptr;
    map_size_ = 0;
  }
#endif
  mapped_ = false;
}

EventVector TtbReader::materialize() const {
  EventVector events = trace::materialize(view_);
  static telemetry::Counter& bytes_counter =
      telemetry::MetricsRegistry::global().counter("trace.ttb_bytes");
  static telemetry::Counter& events_counter =
      telemetry::MetricsRegistry::global().counter("trace.ttb_events");
  bytes_counter.add(mapped_ ? map_size_ : fallback_.size());
  events_counter.add(events.size());
  return events;
}

}  // namespace tetra::trace
