#include "trace/serialize.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "support/json_parser.hpp"
#include "support/json_writer.hpp"
#include "support/string_utils.hpp"
#include "telemetry/metrics.hpp"

namespace tetra::trace {

namespace {

struct JsonlMetrics {
  telemetry::Counter& bytes =
      telemetry::MetricsRegistry::global().counter("trace.jsonl_bytes");
  telemetry::Counter& events =
      telemetry::MetricsRegistry::global().counter("trace.jsonl_events");
  telemetry::Counter& malformed = telemetry::MetricsRegistry::global().counter(
      "trace.jsonl_malformed_skipped");

  static JsonlMetrics& get() {
    static JsonlMetrics metrics;
    return metrics;
  }
};

void write_common(JsonWriter& w, const TraceEvent& e) {
  w.kv("t", e.time.count_ns());
  w.kv("pid", static_cast<std::int64_t>(e.pid));
  w.kv("probe", to_string(e.probe));
  w.kv("type", to_string(e.type));
}

}  // namespace

std::string to_jsonl(const TraceEvent& e) {
  JsonWriter w;
  w.begin_object();
  write_common(w, e);
  switch (e.type) {
    case EventType::RmwCreateNode:
      w.kv("node", e.as<NodeInfo>().node_name);
      break;
    case EventType::CallbackStart:
    case EventType::CallbackEnd:
      w.kv("kind", to_string(e.as<CallbackPhaseInfo>().kind));
      break;
    case EventType::TimerCall:
      w.kv("cb", static_cast<std::uint64_t>(e.as<TimerCallInfo>().callback_id));
      break;
    case EventType::Take: {
      const auto& info = e.as<TakeInfo>();
      w.kv("take_kind", static_cast<std::int64_t>(info.kind));
      w.kv("cb", static_cast<std::uint64_t>(info.callback_id));
      w.kv("topic", info.topic);
      w.kv("src_ts", info.src_ts.count_ns());
      break;
    }
    case EventType::TakeTypeErased:
      w.kv("dispatch", e.as<TakeTypeErasedInfo>().will_dispatch);
      break;
    case EventType::SyncOperator:
      w.kv("cb", static_cast<std::uint64_t>(e.as<SyncOperatorInfo>().callback_id));
      break;
    case EventType::DdsWrite: {
      const auto& info = e.as<DdsWriteInfo>();
      w.kv("topic", info.topic);
      w.kv("src_ts", info.src_ts.count_ns());
      break;
    }
    case EventType::SchedSwitch: {
      const auto& info = e.as<SchedSwitchInfo>();
      w.kv("cpu", static_cast<std::int64_t>(info.cpu));
      w.kv("prev_pid", static_cast<std::int64_t>(info.prev_pid));
      w.kv("prev_prio", static_cast<std::int64_t>(info.prev_prio));
      w.kv("prev_state", std::string(1, static_cast<char>(info.prev_state)));
      w.kv("next_pid", static_cast<std::int64_t>(info.next_pid));
      w.kv("next_prio", static_cast<std::int64_t>(info.next_prio));
      break;
    }
    case EventType::SchedWakeup: {
      const auto& info = e.as<SchedWakeupInfo>();
      w.kv("woken_pid", static_cast<std::int64_t>(info.woken_pid));
      w.kv("cpu", static_cast<std::int64_t>(info.target_cpu));
      break;
    }
  }
  w.end_object();
  return w.str();
}

TraceEvent from_jsonl(std::string_view line) {
  const JsonValue j = parse_json(line);
  TraceEvent e;
  e.time = TimePoint{j.at("t").as_int()};
  e.pid = static_cast<Pid>(j.at("pid").as_int());
  e.probe = probe_id_from_string(j.at("probe").as_string());
  e.type = event_type_from_string(j.at("type").as_string());
  switch (e.type) {
    case EventType::RmwCreateNode:
      e.payload = NodeInfo{j.at("node").as_string()};
      break;
    case EventType::CallbackStart:
    case EventType::CallbackEnd: {
      const std::string& kind = j.at("kind").as_string();
      CallbackKind k;
      if (kind == "timer") k = CallbackKind::Timer;
      else if (kind == "subscriber") k = CallbackKind::Subscription;
      else if (kind == "service") k = CallbackKind::Service;
      else if (kind == "client") k = CallbackKind::Client;
      else throw std::runtime_error("bad callback kind: " + kind);
      e.payload = CallbackPhaseInfo{k};
      break;
    }
    case EventType::TimerCall:
      e.payload = TimerCallInfo{
          static_cast<CallbackId>(j.at("cb").as_int())};
      break;
    case EventType::Take: {
      TakeInfo info;
      info.kind = take_kind_from_int(j.at("take_kind").as_int());
      info.callback_id = static_cast<CallbackId>(j.at("cb").as_int());
      info.topic = j.at("topic").as_string();
      info.src_ts = TimePoint{j.at("src_ts").as_int()};
      e.payload = std::move(info);
      break;
    }
    case EventType::TakeTypeErased:
      e.payload = TakeTypeErasedInfo{j.at("dispatch").as_bool()};
      break;
    case EventType::SyncOperator:
      e.payload = SyncOperatorInfo{
          static_cast<CallbackId>(j.at("cb").as_int())};
      break;
    case EventType::DdsWrite:
      e.payload = DdsWriteInfo{j.at("topic").as_string(),
                               TimePoint{j.at("src_ts").as_int()}};
      break;
    case EventType::SchedSwitch: {
      SchedSwitchInfo info;
      info.cpu = static_cast<CpuId>(j.at("cpu").as_int());
      info.prev_pid = static_cast<Pid>(j.at("prev_pid").as_int());
      info.prev_prio = static_cast<int>(j.at("prev_prio").as_int());
      const std::string& st = j.at("prev_state").as_string();
      if (st.size() != 1) {
        throw std::invalid_argument("bad prev_state: '" + st +
                                    "' (expected a single R/S/D/X letter)");
      }
      info.prev_state = thread_run_state_from_char(st[0]);
      info.next_pid = static_cast<Pid>(j.at("next_pid").as_int());
      info.next_prio = static_cast<int>(j.at("next_prio").as_int());
      e.payload = info;
      break;
    }
    case EventType::SchedWakeup: {
      SchedWakeupInfo info;
      info.woken_pid = static_cast<Pid>(j.at("woken_pid").as_int());
      info.target_cpu = static_cast<CpuId>(j.at("cpu").as_int());
      e.payload = info;
      break;
    }
  }
  return e;
}

std::string to_jsonl(const EventVector& events) {
  std::string out;
  for (const auto& e : events) {
    out += to_jsonl(e);
    out += '\n';
  }
  return out;
}

EventVector events_from_jsonl(std::string_view text) {
  EventVector out;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(start, end - start);
    // Tolerate CRLF (and lone-CR-before-LF) line endings from traces that
    // passed through Windows tooling.
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (!line.empty()) out.push_back(from_jsonl(line));
    start = end + 1;
  }
  JsonlMetrics::get().bytes.add(text.size());
  JsonlMetrics::get().events.add(out.size());
  return out;
}

EventVector events_from_jsonl_lenient(std::string_view text,
                                      JsonlParseStats* stats) {
  EventVector out;
  std::size_t malformed = 0;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(start, end - start);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (!line.empty()) {
      try {
        out.push_back(from_jsonl(line));
      } catch (const std::exception&) {
        ++malformed;
      }
    }
    start = end + 1;
  }
  JsonlMetrics::get().bytes.add(text.size());
  JsonlMetrics::get().events.add(out.size());
  JsonlMetrics::get().malformed.add(malformed);
  if (stats != nullptr) {
    stats->events = out.size();
    stats->malformed_skipped = malformed;
    stats->bytes = text.size();
  }
  return out;
}

EventVector read_jsonl_file_lenient(const std::string& path,
                                    JsonlParseStats* stats) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot open for read: " + path);
  std::ostringstream ss;
  ss << f.rdbuf();
  return events_from_jsonl_lenient(ss.str(), stats);
}

void write_jsonl_file(const std::string& path, const EventVector& events) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) throw std::runtime_error("cannot open for write: " + path);
  f << to_jsonl(events);
  if (!f) throw std::runtime_error("write failed: " + path);
}

EventVector read_jsonl_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot open for read: " + path);
  std::ostringstream ss;
  ss << f.rdbuf();
  return events_from_jsonl(ss.str());
}

std::size_t binary_footprint_bytes(const EventVector& events) {
  std::size_t total = 0;
  for (const auto& e : events) total += approximate_record_size(e);
  return total;
}

}  // namespace tetra::trace
