#include "trace/event_columns.hpp"

#include <stdexcept>

namespace tetra::trace {

namespace {

std::uint64_t pack_pid_pair(std::int32_t low, std::int32_t high) {
  return static_cast<std::uint64_t>(static_cast<std::uint32_t>(low)) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(high)) << 32);
}

}  // namespace

std::string_view ColumnsView::str(std::uint32_t index) const {
  if (index >= string_count) {
    throw std::invalid_argument("string index out of range: " +
                                std::to_string(index));
  }
  const std::uint32_t begin = str_offsets[index];
  const std::uint32_t end = str_offsets[index + 1];
  return std::string_view(blob + begin, end - begin);
}

EventColumns::EventColumns() {
  str_offsets_ = {0, 0};  // index 0 is the empty string
  intern_.emplace(std::string(), 0);
}

std::uint32_t EventColumns::intern(std::string_view s) {
  auto it = intern_.find(s);
  if (it != intern_.end()) return it->second;
  const auto index = static_cast<std::uint32_t>(str_offsets_.size() - 1);
  blob_.append(s);
  str_offsets_.push_back(static_cast<std::uint32_t>(blob_.size()));
  intern_.emplace(std::string(s), index);
  return index;
}

void EventColumns::reserve(std::size_t additional_events) {
  const std::size_t target = time_.size() + additional_events;
  time_.reserve(target);
  arg_a_.reserve(target);
  arg_b_.reserve(target);
  pid_.reserve(target);
  arg_c_.reserve(target);
  probe_.reserve(target);
  type_.reserve(target);
  aux_.reserve(target);
}

void EventColumns::append(const TraceEvent& e) {
  std::uint64_t arg_a = 0;
  std::int64_t arg_b = 0;
  std::uint32_t arg_c = 0;
  std::uint8_t aux = 0;
  switch (e.type) {
    case EventType::RmwCreateNode:
      arg_c = intern(e.as<NodeInfo>().node_name);
      break;
    case EventType::CallbackStart:
    case EventType::CallbackEnd:
      aux = static_cast<std::uint8_t>(e.as<CallbackPhaseInfo>().kind);
      break;
    case EventType::TimerCall:
      arg_a = static_cast<std::uint64_t>(e.as<TimerCallInfo>().callback_id);
      break;
    case EventType::Take: {
      const auto& info = e.as<TakeInfo>();
      aux = static_cast<std::uint8_t>(info.kind);
      arg_a = static_cast<std::uint64_t>(info.callback_id);
      arg_b = info.src_ts.count_ns();
      arg_c = intern(info.topic);
      break;
    }
    case EventType::TakeTypeErased:
      aux = e.as<TakeTypeErasedInfo>().will_dispatch ? 1 : 0;
      break;
    case EventType::SyncOperator:
      arg_a = static_cast<std::uint64_t>(e.as<SyncOperatorInfo>().callback_id);
      break;
    case EventType::DdsWrite: {
      const auto& info = e.as<DdsWriteInfo>();
      arg_b = info.src_ts.count_ns();
      arg_c = intern(info.topic);
      break;
    }
    case EventType::SchedSwitch: {
      const auto& info = e.as<SchedSwitchInfo>();
      aux = static_cast<std::uint8_t>(static_cast<char>(info.prev_state));
      arg_a = pack_pid_pair(info.prev_pid, info.next_pid);
      arg_b = static_cast<std::int64_t>(
          pack_pid_pair(info.cpu, info.prev_prio));
      arg_c = static_cast<std::uint32_t>(info.next_prio);
      break;
    }
    case EventType::SchedWakeup: {
      const auto& info = e.as<SchedWakeupInfo>();
      arg_a = pack_pid_pair(info.woken_pid, info.target_cpu);
      break;
    }
  }
  time_.push_back(e.time.count_ns());
  arg_a_.push_back(arg_a);
  arg_b_.push_back(arg_b);
  pid_.push_back(static_cast<std::int32_t>(e.pid));
  arg_c_.push_back(arg_c);
  probe_.push_back(static_cast<std::uint8_t>(e.probe));
  type_.push_back(static_cast<std::uint8_t>(e.type));
  aux_.push_back(aux);
}

void EventColumns::append(const EventVector& events) {
  reserve(events.size());
  for (const auto& e : events) append(e);
}

void EventColumns::append(const ColumnsView& v) {
  const std::size_t base = size();
  time_.insert(time_.end(), v.time, v.time + v.count);
  arg_a_.insert(arg_a_.end(), v.arg_a, v.arg_a + v.count);
  arg_b_.insert(arg_b_.end(), v.arg_b, v.arg_b + v.count);
  pid_.insert(pid_.end(), v.pid, v.pid + v.count);
  arg_c_.insert(arg_c_.end(), v.arg_c, v.arg_c + v.count);
  probe_.insert(probe_.end(), v.probe, v.probe + v.count);
  type_.insert(type_.end(), v.type, v.type + v.count);
  aux_.insert(aux_.end(), v.aux, v.aux + v.count);
  // String-bearing rows index the source view's table; rewrite them to
  // indices in our own.
  for (std::size_t i = 0; i < v.count; ++i) {
    switch (static_cast<EventType>(v.type[i])) {
      case EventType::RmwCreateNode:
      case EventType::Take:
      case EventType::DdsWrite:
        arg_c_[base + i] = intern(v.str(v.arg_c[i]));
        break;
      default:
        break;
    }
  }
}

ColumnsView EventColumns::view() const {
  ColumnsView v;
  v.time = time_.data();
  v.arg_a = arg_a_.data();
  v.arg_b = arg_b_.data();
  v.pid = pid_.data();
  v.arg_c = arg_c_.data();
  v.probe = probe_.data();
  v.type = type_.data();
  v.aux = aux_.data();
  v.count = time_.size();
  v.str_offsets = str_offsets_.data();
  v.string_count = str_offsets_.size() - 1;
  v.blob = blob_.data();
  v.blob_size = blob_.size();
  return v;
}

TraceEvent materialize_event(const ColumnsView& v, std::size_t i) {
  if (i >= v.count) {
    throw std::out_of_range("event row out of range: " + std::to_string(i));
  }
  TraceEvent e;
  e.time = TimePoint{v.time[i]};
  e.pid = static_cast<Pid>(v.pid[i]);
  e.probe = probe_id_from_int(v.probe[i]);
  e.type = event_type_from_int(v.type[i]);
  switch (e.type) {
    case EventType::RmwCreateNode:
      e.payload = NodeInfo{std::string(v.str(v.arg_c[i]))};
      break;
    case EventType::CallbackStart:
    case EventType::CallbackEnd:
      e.payload = CallbackPhaseInfo{callback_kind_from_int(v.aux[i])};
      break;
    case EventType::TimerCall:
      e.payload = TimerCallInfo{static_cast<CallbackId>(v.arg_a[i])};
      break;
    case EventType::Take:
      e.payload = TakeInfo{take_kind_from_int(v.aux[i]),
                           static_cast<CallbackId>(v.arg_a[i]),
                           std::string(v.str(v.arg_c[i])),
                           TimePoint{v.arg_b[i]}};
      break;
    case EventType::TakeTypeErased:
      e.payload = TakeTypeErasedInfo{v.aux[i] != 0};
      break;
    case EventType::SyncOperator:
      e.payload = SyncOperatorInfo{static_cast<CallbackId>(v.arg_a[i])};
      break;
    case EventType::DdsWrite:
      e.payload = DdsWriteInfo{std::string(v.str(v.arg_c[i])),
                               TimePoint{v.arg_b[i]}};
      break;
    case EventType::SchedSwitch: {
      SchedSwitchInfo info;
      info.cpu = static_cast<CpuId>(v.sched_cpu(i));
      info.prev_pid = static_cast<Pid>(v.sched_prev_pid(i));
      info.prev_prio = static_cast<int>(v.sched_prev_prio(i));
      info.prev_state =
          thread_run_state_from_char(static_cast<char>(v.aux[i]));
      info.next_pid = static_cast<Pid>(v.sched_next_pid(i));
      info.next_prio = static_cast<int>(v.sched_next_prio(i));
      e.payload = info;
      break;
    }
    case EventType::SchedWakeup: {
      SchedWakeupInfo info;
      info.woken_pid = static_cast<Pid>(v.wakeup_pid(i));
      info.target_cpu = static_cast<CpuId>(v.wakeup_cpu(i));
      e.payload = info;
      break;
    }
  }
  return e;
}

EventVector materialize(const ColumnsView& view) {
  EventVector out;
  out.reserve(view.count);
  for (std::size_t i = 0; i < view.count; ++i) {
    out.push_back(materialize_event(view, i));
  }
  return out;
}

void validate_columns(const ColumnsView& v) {
  for (std::size_t i = 0; i < v.count; ++i) {
    try {
      probe_id_from_int(v.probe[i]);
      const EventType type = event_type_from_int(v.type[i]);
      switch (type) {
        case EventType::RmwCreateNode:
        case EventType::DdsWrite:
          v.str(v.arg_c[i]);
          break;
        case EventType::CallbackStart:
        case EventType::CallbackEnd:
          callback_kind_from_int(v.aux[i]);
          break;
        case EventType::Take:
          take_kind_from_int(v.aux[i]);
          v.str(v.arg_c[i]);
          break;
        case EventType::SchedSwitch:
          thread_run_state_from_char(static_cast<char>(v.aux[i]));
          break;
        default:
          break;
      }
    } catch (const std::invalid_argument& err) {
      throw std::invalid_argument("invalid event row " + std::to_string(i) +
                                  ": " + err.what());
    }
  }
}

}  // namespace tetra::trace
