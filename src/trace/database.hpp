// Trace database (Fig. 2): traces collected over multiple sessions and
// runs are stored under (run, segment) keys, optionally tagged with a mode
// (e.g. "city", "highway") for multi-mode model synthesis.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "trace/event.hpp"

namespace tetra::trace {

/// Identifies one stored trace segment.
struct TraceKey {
  std::string run;      ///< e.g. "run-07"
  int segment = 0;      ///< session segment index within the run
  auto operator<=>(const TraceKey&) const = default;
};

class TraceDatabase {
 public:
  /// Stores a segment (overwrites an existing identical key).
  void store(TraceKey key, EventVector events, std::string mode = "");

  bool contains(const TraceKey& key) const;
  const EventVector& get(const TraceKey& key) const;

  /// All segments of one run merged chronologically (segments are stored
  /// time-sorted by construction).
  EventVector merged_run(const std::string& run) const;

  /// Every stored segment merged into one stream (deployment option i).
  EventVector merged_all() const;

  /// Runs whose segments are tagged with `mode`.
  std::vector<std::string> runs_for_mode(const std::string& mode) const;

  /// The mode tag of one stored segment ("" when untagged or unknown).
  const std::string& mode_of(const TraceKey& key) const;

  /// Every stored key in (run, segment) order.
  std::vector<TraceKey> keys() const;

  std::vector<std::string> runs() const;
  std::size_t segment_count() const { return segments_.size(); }

  /// Total compact footprint of everything stored, in bytes.
  std::size_t footprint_bytes() const;

  /// Saves/loads every segment as JSONL files under `directory`
  /// ("<run>_<segment>.jsonl" plus an index file). Throws on I/O errors.
  void save_to_directory(const std::string& directory) const;
  static TraceDatabase load_from_directory(const std::string& directory);

 private:
  struct Entry {
    EventVector events;
    std::string mode;
  };
  std::map<TraceKey, Entry> segments_;
};

}  // namespace tetra::trace
