#include "trace/event.hpp"

#include <algorithm>
#include <stdexcept>

namespace tetra::trace {

std::string_view to_string(EventType t) {
  switch (t) {
    case EventType::RmwCreateNode: return "rmw_create_node";
    case EventType::CallbackStart: return "cb_start";
    case EventType::TimerCall: return "timer_call";
    case EventType::Take: return "take";
    case EventType::TakeTypeErased: return "take_type_erased";
    case EventType::SyncOperator: return "sync_operator";
    case EventType::CallbackEnd: return "cb_end";
    case EventType::DdsWrite: return "dds_write";
    case EventType::SchedSwitch: return "sched_switch";
    case EventType::SchedWakeup: return "sched_wakeup";
  }
  return "?";
}

EventType event_type_from_string(std::string_view name) {
  static constexpr EventType all[] = {
      EventType::RmwCreateNode, EventType::CallbackStart, EventType::TimerCall,
      EventType::Take,          EventType::TakeTypeErased, EventType::SyncOperator,
      EventType::CallbackEnd,   EventType::DdsWrite,      EventType::SchedSwitch,
      EventType::SchedWakeup};
  for (EventType t : all) {
    if (to_string(t) == name) return t;
  }
  throw std::invalid_argument("unknown event type: " + std::string(name));
}

EventType event_type_from_int(std::int64_t value) {
  if (value < 0 || value > static_cast<std::int64_t>(EventType::SchedWakeup)) {
    throw std::invalid_argument("bad event type: " + std::to_string(value));
  }
  return static_cast<EventType>(value);
}

TakeKind take_kind_from_int(std::int64_t value) {
  switch (value) {
    case 0: return TakeKind::Data;
    case 1: return TakeKind::Request;
    case 2: return TakeKind::Response;
    default:
      throw std::invalid_argument("bad take_kind: " + std::to_string(value));
  }
}

ThreadRunState thread_run_state_from_char(char state) {
  switch (state) {
    case 'R': return ThreadRunState::Runnable;
    case 'S': return ThreadRunState::Sleeping;
    case 'D': return ThreadRunState::DiskSleep;
    case 'X': return ThreadRunState::Dead;
    default:
      throw std::invalid_argument(std::string("bad prev_state: '") + state +
                                  "' (expected R, S, D or X)");
  }
}

CallbackKind callback_kind_from_int(std::int64_t value) {
  if (value < 0 || value > static_cast<std::int64_t>(CallbackKind::Client)) {
    throw std::invalid_argument("bad callback kind: " + std::to_string(value));
  }
  return static_cast<CallbackKind>(value);
}

TraceEvent make_node_event(TimePoint t, Pid pid, std::string node_name) {
  return TraceEvent{t, pid, ProbeId::P1_RmwCreateNode, EventType::RmwCreateNode,
                    NodeInfo{std::move(node_name)}};
}

TraceEvent make_callback_start(TimePoint t, Pid pid, CallbackKind kind) {
  return TraceEvent{t, pid, start_probe_for(kind), EventType::CallbackStart,
                    CallbackPhaseInfo{kind}};
}

TraceEvent make_callback_end(TimePoint t, Pid pid, CallbackKind kind) {
  return TraceEvent{t, pid, end_probe_for(kind), EventType::CallbackEnd,
                    CallbackPhaseInfo{kind}};
}

TraceEvent make_timer_call(TimePoint t, Pid pid, CallbackId id) {
  return TraceEvent{t, pid, ProbeId::P3_RclTimerCall, EventType::TimerCall,
                    TimerCallInfo{id}};
}

TraceEvent make_take(TimePoint t, Pid pid, TakeKind kind, CallbackId id,
                     std::string topic, TimePoint src_ts) {
  ProbeId probe = ProbeId::P6_RmwTakeInt;
  if (kind == TakeKind::Request) probe = ProbeId::P10_RmwTakeRequest;
  if (kind == TakeKind::Response) probe = ProbeId::P13_RmwTakeResponse;
  return TraceEvent{t, pid, probe, EventType::Take,
                    TakeInfo{kind, id, std::move(topic), src_ts}};
}

TraceEvent make_take_type_erased(TimePoint t, Pid pid, bool will_dispatch) {
  return TraceEvent{t, pid, ProbeId::P14_TakeTypeErasedResponse,
                    EventType::TakeTypeErased, TakeTypeErasedInfo{will_dispatch}};
}

TraceEvent make_sync_operator(TimePoint t, Pid pid, CallbackId id) {
  return TraceEvent{t, pid, ProbeId::P7_MessageFilterOperator,
                    EventType::SyncOperator, SyncOperatorInfo{id}};
}

TraceEvent make_dds_write(TimePoint t, Pid pid, std::string topic,
                          TimePoint src_ts) {
  return TraceEvent{t, pid, ProbeId::P16_DdsWriteImpl, EventType::DdsWrite,
                    DdsWriteInfo{std::move(topic), src_ts}};
}

TraceEvent make_sched_switch(TimePoint t, SchedSwitchInfo info) {
  return TraceEvent{t, info.prev_pid, ProbeId::SchedSwitch,
                    EventType::SchedSwitch, info};
}

TraceEvent make_sched_wakeup(TimePoint t, SchedWakeupInfo info) {
  return TraceEvent{t, info.woken_pid, ProbeId::SchedWakeup,
                    EventType::SchedWakeup, info};
}

ProbeId start_probe_for(CallbackKind kind) {
  switch (kind) {
    case CallbackKind::Timer: return ProbeId::P2_ExecuteTimerEntry;
    case CallbackKind::Subscription: return ProbeId::P5_ExecuteSubscriptionEntry;
    case CallbackKind::Service: return ProbeId::P9_ExecuteServiceEntry;
    case CallbackKind::Client: return ProbeId::P12_ExecuteClientEntry;
  }
  throw std::logic_error("bad callback kind");
}

ProbeId end_probe_for(CallbackKind kind) {
  switch (kind) {
    case CallbackKind::Timer: return ProbeId::P4_ExecuteTimerExit;
    case CallbackKind::Subscription: return ProbeId::P8_ExecuteSubscriptionExit;
    case CallbackKind::Service: return ProbeId::P11_ExecuteServiceExit;
    case CallbackKind::Client: return ProbeId::P15_ExecuteClientExit;
  }
  throw std::logic_error("bad callback kind");
}

CallbackKind kind_for_phase_probe(ProbeId id) {
  switch (id) {
    case ProbeId::P2_ExecuteTimerEntry:
    case ProbeId::P4_ExecuteTimerExit:
      return CallbackKind::Timer;
    case ProbeId::P5_ExecuteSubscriptionEntry:
    case ProbeId::P8_ExecuteSubscriptionExit:
      return CallbackKind::Subscription;
    case ProbeId::P9_ExecuteServiceEntry:
    case ProbeId::P11_ExecuteServiceExit:
      return CallbackKind::Service;
    case ProbeId::P12_ExecuteClientEntry:
    case ProbeId::P15_ExecuteClientExit:
      return CallbackKind::Client;
    default:
      throw std::invalid_argument("probe is not a callback phase probe");
  }
}

void sort_by_time(EventVector& events) {
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.time < b.time;
                   });
}

EventVector filter_by_pid(const EventVector& events, Pid pid) {
  EventVector out;
  out.reserve(events.size() / 4);
  for (const auto& e : events) {
    if (e.pid == pid) out.push_back(e);
  }
  return out;
}

std::size_t approximate_record_size(const TraceEvent& event) {
  // Fixed header: timestamp (8) + pid (4) + probe (1) + type (1).
  std::size_t size = 14;
  if (const auto* node = std::get_if<NodeInfo>(&event.payload)) {
    size += node->node_name.size() + 1;
  } else if (std::holds_alternative<CallbackPhaseInfo>(event.payload)) {
    size += 1;
  } else if (std::holds_alternative<TimerCallInfo>(event.payload)) {
    size += 8;
  } else if (const auto* take = std::get_if<TakeInfo>(&event.payload)) {
    size += 1 + 8 + take->topic.size() + 1 + 8;
  } else if (std::holds_alternative<TakeTypeErasedInfo>(event.payload)) {
    size += 1;
  } else if (std::holds_alternative<SyncOperatorInfo>(event.payload)) {
    size += 8;
  } else if (const auto* write = std::get_if<DdsWriteInfo>(&event.payload)) {
    size += write->topic.size() + 1 + 8;
  } else if (std::holds_alternative<SchedSwitchInfo>(event.payload)) {
    size += 4 + 4 + 4 + 1 + 4 + 4;
  } else if (std::holds_alternative<SchedWakeupInfo>(event.payload)) {
    size += 4 + 4;
  }
  return size;
}

}  // namespace tetra::trace
