// Trace (de)serialization. Two formats:
//  - JSONL: one JSON object per event, human-readable, used by the trace
//    database and for interoperability;
//  - estimated binary footprint accounting used for the paper's trace-size
//    numbers (the real tracer ships compact perf-buffer records).
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "trace/event.hpp"

namespace tetra::trace {

/// Serializes one event as a single-line JSON object (no trailing newline).
std::string to_jsonl(const TraceEvent& event);

/// Parses one JSONL line back into an event; throws on malformed input.
TraceEvent from_jsonl(std::string_view line);

/// Serializes a whole vector, one event per line.
std::string to_jsonl(const EventVector& events);

/// Parses a JSONL document (empty lines ignored).
EventVector events_from_jsonl(std::string_view text);

/// Writes events to a file; throws std::runtime_error on I/O failure.
void write_jsonl_file(const std::string& path, const EventVector& events);

/// Reads events from a file; throws std::runtime_error on I/O failure.
EventVector read_jsonl_file(const std::string& path);

/// Sum of approximate_record_size over all events — the compact on-the-wire
/// footprint the overhead evaluation reports.
std::size_t binary_footprint_bytes(const EventVector& events);

}  // namespace tetra::trace
