// Trace (de)serialization. Two formats:
//  - JSONL: one JSON object per event, human-readable, used by the trace
//    database and for interoperability;
//  - estimated binary footprint accounting used for the paper's trace-size
//    numbers (the real tracer ships compact perf-buffer records).
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "trace/event.hpp"

namespace tetra::trace {

/// Serializes one event as a single-line JSON object (no trailing newline).
std::string to_jsonl(const TraceEvent& event);

/// Parses one JSONL line back into an event; throws on malformed input.
TraceEvent from_jsonl(std::string_view line);

/// Serializes a whole vector, one event per line.
std::string to_jsonl(const EventVector& events);

/// Parses a JSONL document (empty lines ignored).
EventVector events_from_jsonl(std::string_view text);

/// Per-call accounting of a lenient JSONL parse.
struct JsonlParseStats {
  std::size_t events = 0;
  std::size_t malformed_skipped = 0;
  std::size_t bytes = 0;
};

/// Parses a JSONL document, skipping (and counting) malformed lines
/// instead of throwing — the fleet-ingest posture where one corrupt line
/// must not sink a whole upload. Skips also increment the
/// "trace.jsonl_malformed_skipped" telemetry counter so the loss is never
/// silent.
EventVector events_from_jsonl_lenient(std::string_view text,
                                      JsonlParseStats* stats = nullptr);

/// Lenient counterpart of read_jsonl_file; still throws on I/O failure.
EventVector read_jsonl_file_lenient(const std::string& path,
                                    JsonlParseStats* stats = nullptr);

/// Writes events to a file; throws std::runtime_error on I/O failure.
void write_jsonl_file(const std::string& path, const EventVector& events);

/// Reads events from a file; throws std::runtime_error on I/O failure.
EventVector read_jsonl_file(const std::string& path);

/// Sum of approximate_record_size over all events — the compact on-the-wire
/// footprint the overhead evaluation reports.
std::size_t binary_footprint_bytes(const EventVector& events);

}  // namespace tetra::trace
