#include "trace/database.hpp"

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "support/json_parser.hpp"
#include "support/json_writer.hpp"
#include "trace/merge.hpp"
#include "trace/serialize.hpp"

namespace tetra::trace {

void TraceDatabase::store(TraceKey key, EventVector events, std::string mode) {
  segments_[std::move(key)] = Entry{std::move(events), std::move(mode)};
}

bool TraceDatabase::contains(const TraceKey& key) const {
  return segments_.count(key) > 0;
}

const EventVector& TraceDatabase::get(const TraceKey& key) const {
  auto it = segments_.find(key);
  if (it == segments_.end()) {
    throw std::out_of_range("TraceDatabase: no trace " + key.run + "/" +
                            std::to_string(key.segment));
  }
  return it->second.events;
}

EventVector TraceDatabase::merged_run(const std::string& run) const {
  std::vector<EventVector> parts;
  for (const auto& [key, entry] : segments_) {
    if (key.run == run) parts.push_back(entry.events);
  }
  return merge_sorted(parts);
}

EventVector TraceDatabase::merged_all() const {
  std::vector<EventVector> parts;
  parts.reserve(segments_.size());
  for (const auto& [key, entry] : segments_) parts.push_back(entry.events);
  return merge_sorted(parts);
}

std::vector<std::string> TraceDatabase::runs_for_mode(const std::string& mode) const {
  std::set<std::string> unique;
  for (const auto& [key, entry] : segments_) {
    if (entry.mode == mode) unique.insert(key.run);
  }
  return {unique.begin(), unique.end()};
}

const std::string& TraceDatabase::mode_of(const TraceKey& key) const {
  static const std::string kEmpty;
  auto it = segments_.find(key);
  return it == segments_.end() ? kEmpty : it->second.mode;
}

std::vector<TraceKey> TraceDatabase::keys() const {
  std::vector<TraceKey> out;
  out.reserve(segments_.size());
  for (const auto& [key, entry] : segments_) out.push_back(key);
  return out;
}

std::vector<std::string> TraceDatabase::runs() const {
  std::set<std::string> unique;
  for (const auto& [key, entry] : segments_) unique.insert(key.run);
  return {unique.begin(), unique.end()};
}

std::size_t TraceDatabase::footprint_bytes() const {
  std::size_t total = 0;
  for (const auto& [key, entry] : segments_) {
    total += binary_footprint_bytes(entry.events);
  }
  return total;
}

void TraceDatabase::save_to_directory(const std::string& directory) const {
  namespace fs = std::filesystem;
  fs::create_directories(directory);
  JsonWriter index;
  index.begin_array();
  for (const auto& [key, entry] : segments_) {
    const std::string file = key.run + "_" + std::to_string(key.segment) + ".jsonl";
    write_jsonl_file((fs::path(directory) / file).string(), entry.events);
    index.begin_object();
    index.kv("run", key.run);
    index.kv("segment", static_cast<std::int64_t>(key.segment));
    index.kv("mode", entry.mode);
    index.kv("file", file);
    index.end_object();
  }
  index.end_array();
  std::ofstream f(fs::path(directory) / "index.json", std::ios::trunc);
  if (!f) throw std::runtime_error("cannot write index.json in " + directory);
  f << index.str();
}

TraceDatabase TraceDatabase::load_from_directory(const std::string& directory) {
  namespace fs = std::filesystem;
  std::ifstream f(fs::path(directory) / "index.json");
  if (!f) throw std::runtime_error("cannot read index.json in " + directory);
  std::ostringstream ss;
  ss << f.rdbuf();
  const JsonValue index = parse_json(ss.str());
  TraceDatabase db;
  for (const auto& item : index.as_array()) {
    TraceKey key;
    key.run = item.at("run").as_string();
    key.segment = static_cast<int>(item.at("segment").as_int());
    const std::string file = item.at("file").as_string();
    db.store(key, read_jsonl_file((fs::path(directory) / file).string()),
             item.get_string_or("mode", ""));
  }
  return db;
}

}  // namespace tetra::trace
