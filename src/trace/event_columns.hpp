// Columnar (SoA) trace event storage. Events are decomposed into eight
// fixed-width columns plus a deduplicated string table, so hot analysis
// loops (TraceIndex, ExecTimeCalculator) scan contiguous timestamp / pid /
// probe arrays instead of chasing variant payloads, and the whole layout
// maps 1:1 onto the on-disk .ttb format for zero-copy mmap ingestion.
//
// Per-type packing of the generic argument columns (unused fields are 0):
//
//   type            aux           arg_a                 arg_b       arg_c
//   RmwCreateNode   -             -                     -           node str
//   CallbackStart   kind          -                     -           -
//   CallbackEnd     kind          -                     -           -
//   TimerCall       -             callback_id           -           -
//   Take            take_kind     callback_id           src_ts      topic str
//   TakeTypeErased  dispatch 0/1  -                     -           -
//   SyncOperator    -             callback_id           -           -
//   DdsWrite        -             -                     src_ts      topic str
//   SchedSwitch     prev_state    prev_pid|next_pid<<32 cpu|prev_prio<<32
//                                                                   next_prio
//   SchedWakeup     -             woken_pid|cpu<<32     -           -
//
// String columns hold indices into the table; index 0 is always "".
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "trace/event.hpp"

namespace tetra::trace {

/// Non-owning view over columnar event storage. The pointers may target an
/// EventColumns instance or a memory-mapped .ttb file — analysis code is
/// agnostic. All accessors are bounds-unchecked except str().
struct ColumnsView {
  const std::int64_t* time = nullptr;
  const std::uint64_t* arg_a = nullptr;
  const std::int64_t* arg_b = nullptr;
  const std::int32_t* pid = nullptr;
  const std::uint32_t* arg_c = nullptr;
  const std::uint8_t* probe = nullptr;
  const std::uint8_t* type = nullptr;
  const std::uint8_t* aux = nullptr;
  std::size_t count = 0;

  /// String table: offsets has string_count + 1 entries; string i spans
  /// blob[offsets[i], offsets[i + 1]).
  const std::uint32_t* str_offsets = nullptr;
  std::size_t string_count = 0;
  const char* blob = nullptr;
  std::size_t blob_size = 0;

  /// Bounds-checked string lookup; throws std::invalid_argument on a bad
  /// index (possible with corrupt .ttb input).
  std::string_view str(std::uint32_t index) const;

  /// Decoded accessors for the packed sched columns.
  std::int32_t sched_prev_pid(std::size_t i) const {
    return static_cast<std::int32_t>(static_cast<std::uint32_t>(arg_a[i]));
  }
  std::int32_t sched_next_pid(std::size_t i) const {
    return static_cast<std::int32_t>(
        static_cast<std::uint32_t>(arg_a[i] >> 32));
  }
  std::int32_t sched_cpu(std::size_t i) const {
    return static_cast<std::int32_t>(
        static_cast<std::uint32_t>(static_cast<std::uint64_t>(arg_b[i])));
  }
  std::int32_t sched_prev_prio(std::size_t i) const {
    return static_cast<std::int32_t>(
        static_cast<std::uint32_t>(static_cast<std::uint64_t>(arg_b[i]) >> 32));
  }
  std::int32_t sched_next_prio(std::size_t i) const {
    return static_cast<std::int32_t>(arg_c[i]);
  }
  std::int32_t wakeup_pid(std::size_t i) const { return sched_prev_pid(i); }
  std::int32_t wakeup_cpu(std::size_t i) const { return sched_next_pid(i); }
};

/// Owning, append-only columnar store.
class EventColumns {
 public:
  EventColumns();

  void append(const TraceEvent& event);
  void append(const EventVector& events);
  /// Bulk append; fixed columns are copied, string columns re-interned.
  void append(const ColumnsView& view);

  void reserve(std::size_t additional_events);

  std::size_t size() const { return time_.size(); }
  bool empty() const { return time_.empty(); }

  /// View over the current content. Invalidated by any append.
  ColumnsView view() const;

  /// Interns a string, returning its table index ("" is always 0).
  std::uint32_t intern(std::string_view s);

 private:
  std::vector<std::int64_t> time_;
  std::vector<std::uint64_t> arg_a_;
  std::vector<std::int64_t> arg_b_;
  std::vector<std::int32_t> pid_;
  std::vector<std::uint32_t> arg_c_;
  std::vector<std::uint8_t> probe_;
  std::vector<std::uint8_t> type_;
  std::vector<std::uint8_t> aux_;
  std::vector<std::uint32_t> str_offsets_;  ///< string_count + 1 entries
  std::string blob_;
  std::map<std::string, std::uint32_t, std::less<>> intern_;
};

/// Reconstructs one TraceEvent from columnar storage, validating every
/// enum-bearing and string-index field (throws std::invalid_argument on
/// corrupt data, std::out_of_range on a bad row index).
TraceEvent materialize_event(const ColumnsView& view, std::size_t i);

/// Reconstructs the whole view in row order.
EventVector materialize(const ColumnsView& view);

/// O(n) structural validation: probe/type/enum ranges and string indices.
/// Throws std::invalid_argument naming the first offending row. Used when
/// opening untrusted .ttb files so later scans can skip per-row checks.
void validate_columns(const ColumnsView& view);

}  // namespace tetra::trace
