// A time-sorted view over trace events that avoids copying whenever the
// caller's storage is already sorted. TraceIndex (and therefore every
// synthesis pass) builds on this view instead of taking a private sorted
// copy of the whole trace:
//
//  - over(events)   borrows an already-sorted vector (zero copies; falls
//                   back to an owning sorted copy only for unsorted input);
//  - adopt(events)  takes ownership, sorting in place if needed;
//  - merged(parts)  single-pass k-way merge of sorted segments into owned
//                   storage — the streaming-ingestion path, replacing the
//                   old concatenate + re-sort + copy-again pipeline.
//
// A global copy counter tracks how many events were ever copied into view
// storage; benches assert on it to keep the zero/single-copy guarantees
// from regressing.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "trace/event.hpp"

namespace tetra::trace {

class SortedEventView {
 public:
  SortedEventView() = default;

  /// Borrows `events` when already time-sorted (the view holds a pointer;
  /// the caller must keep the vector alive and unmodified for the view's
  /// lifetime). Unsorted input degrades to an owning sorted copy.
  static SortedEventView over(const EventVector& events);

  /// Takes ownership of `events`, stably sorting in place when needed.
  /// Never copies element storage beyond the vector move itself.
  static SortedEventView adopt(EventVector events);

  /// K-way merges already-sorted segments into owned storage in one pass.
  /// Ties keep segment order (earlier pointer first) for determinism —
  /// the same tie-break as concatenation + stable sort.
  static SortedEventView merged(const std::vector<const EventVector*>& parts);

  std::size_t size() const { return data().size(); }
  bool empty() const { return data().empty(); }
  const TraceEvent& operator[](std::size_t i) const { return data()[i]; }
  const TraceEvent* begin() const { return data().data(); }
  const TraceEvent* end() const { return data().data() + data().size(); }

  /// True when the view owns its storage (adopted, merged, or copied).
  bool owns_storage() const { return external_ == nullptr; }

  /// Materializes a copy of the viewed events (not counted as a view copy).
  EventVector to_vector() const { return data(); }

  /// Total events ever copied into view-owned storage, process-wide.
  /// Borrowed (`over` on sorted input) events never count; adopted vectors
  /// never count; `merged` counts each merged event once.
  static std::uint64_t events_copied();
  static void reset_copy_counter();

 private:
  const EventVector& data() const {
    return external_ != nullptr ? *external_ : storage_;
  }

  EventVector storage_;
  const EventVector* external_ = nullptr;

  static std::atomic<std::uint64_t> copied_;
};

/// True when `events` is non-decreasing in time (the view borrow check).
bool is_time_sorted(const EventVector& events);

}  // namespace tetra::trace
