// Bounded trace buffer, mirroring the perf-buffer the eBPF programs write
// into: fixed capacity, overruns are counted as drops (the deployment
// workflow of Fig. 2 restarts tracers with empty buffers between segments
// precisely to avoid such drops).
#pragma once

#include <cstddef>

#include "trace/event.hpp"

namespace tetra::trace {

class TraceBuffer {
 public:
  /// `capacity` = maximum number of records held before drops occur.
  explicit TraceBuffer(std::size_t capacity = 1u << 20);

  /// Appends a record; returns false (and counts a drop) when full.
  bool push(TraceEvent event);

  /// Moves all buffered records out, leaving the buffer empty.
  EventVector drain();

  /// Read-only view of the current content.
  const EventVector& events() const { return events_; }

  std::size_t size() const { return events_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::size_t dropped() const { return dropped_; }
  bool full() const { return events_.size() >= capacity_; }

  /// Approximate wire footprint of the current content in bytes.
  std::size_t footprint_bytes() const;

  /// Empties the buffer and resets drop accounting — reuse starts fresh.
  void clear();

 private:
  std::size_t capacity_;
  std::size_t dropped_ = 0;
  EventVector events_;
};

}  // namespace tetra::trace
