#include "trace/probe_id.hpp"

#include <stdexcept>
#include <string>

namespace tetra::trace {

std::string_view to_string(ProbeId id) {
  switch (id) {
    case ProbeId::P1_RmwCreateNode: return "P1";
    case ProbeId::P2_ExecuteTimerEntry: return "P2";
    case ProbeId::P3_RclTimerCall: return "P3";
    case ProbeId::P4_ExecuteTimerExit: return "P4";
    case ProbeId::P5_ExecuteSubscriptionEntry: return "P5";
    case ProbeId::P6_RmwTakeInt: return "P6";
    case ProbeId::P7_MessageFilterOperator: return "P7";
    case ProbeId::P8_ExecuteSubscriptionExit: return "P8";
    case ProbeId::P9_ExecuteServiceEntry: return "P9";
    case ProbeId::P10_RmwTakeRequest: return "P10";
    case ProbeId::P11_ExecuteServiceExit: return "P11";
    case ProbeId::P12_ExecuteClientEntry: return "P12";
    case ProbeId::P13_RmwTakeResponse: return "P13";
    case ProbeId::P14_TakeTypeErasedResponse: return "P14";
    case ProbeId::P15_ExecuteClientExit: return "P15";
    case ProbeId::P16_DdsWriteImpl: return "P16";
    case ProbeId::SchedSwitch: return "sched_switch";
    case ProbeId::SchedWakeup: return "sched_wakeup";
  }
  return "?";
}

ProbeId probe_id_from_string(std::string_view name) {
  for (int i = 1; i <= 16; ++i) {
    const auto id = static_cast<ProbeId>(i);
    if (to_string(id) == name) return id;
  }
  if (name == "sched_switch") return ProbeId::SchedSwitch;
  if (name == "sched_wakeup") return ProbeId::SchedWakeup;
  throw std::invalid_argument("unknown probe id: " + std::string(name));
}

ProbeId probe_id_from_int(std::int64_t value) {
  if (value < static_cast<std::int64_t>(ProbeId::P1_RmwCreateNode) ||
      value > static_cast<std::int64_t>(ProbeId::SchedWakeup)) {
    throw std::invalid_argument("bad probe id: " + std::to_string(value));
  }
  return static_cast<ProbeId>(value);
}

}  // namespace tetra::trace
