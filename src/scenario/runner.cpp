#include "scenario/runner.hpp"

#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include "api/session.hpp"
#include "overhead/estimator.hpp"
#include "trace/merge.hpp"

namespace tetra::scenario {

ScenarioInstance ScenarioRunner::instantiate(ros2::Context& ctx,
                                             const ScenarioSpec& spec,
                                             double demand_scale) {
  if (const auto issues = validate_spec(spec); !issues.empty()) {
    std::string message = "invalid scenario spec '" + spec.name + "':";
    for (const auto& issue : issues) message += "\n  " + issue;
    throw std::invalid_argument(message);
  }

  ScenarioInstance instance;
  for (const auto& node_spec : spec.nodes) {
    ros2::NodeOptions options;
    options.name = node_spec.name;
    options.priority = node_spec.priority;
    options.policy = node_spec.policy;
    options.affinity_mask = node_spec.affinity_mask;
    options.executor_threads = node_spec.executor_threads;
    ros2::Node& node = ctx.create_node(std::move(options));
    instance.node_of[node_spec.name] = &node;

    // Callback groups: index 0 is the node's default mutually-exclusive
    // group, the spec's callback_groups define the extras.
    std::vector<ros2::CallbackGroup*> groups;
    groups.push_back(&node.default_callback_group());
    for (const auto& group_spec : node_spec.callback_groups) {
      groups.push_back(&node.create_callback_group(
          group_spec.policy == GroupPolicy::Reentrant
              ? ros2::CallbackGroupKind::Reentrant
              : ros2::CallbackGroupKind::MutuallyExclusive));
    }

    // One Publisher per distinct topic the node writes; handle addresses
    // are stable (unique_ptr storage), so plans can capture references.
    std::map<std::string, ros2::Publisher*> publishers;
    auto publisher_for = [&](const std::string& topic) -> ros2::Publisher& {
      auto it = publishers.find(topic);
      if (it == publishers.end()) {
        it = publishers.emplace(topic, &node.create_publisher(topic)).first;
      }
      return *it->second;
    };

    std::vector<ros2::Client*> clients;
    auto build_plan = [&](const DurationDistribution& demand,
                          const std::vector<EffectSpec>& effects) {
      ros2::Plan plan;
      plan.compute(demand.scaled(demand_scale));
      for (const auto& effect : effects) {
        if (effect.kind == EffectSpec::Kind::Publish) {
          ros2::Publisher& pub = publisher_for(effect.topic);
          plan.then([&pub, bytes = effect.bytes](ros2::ActionContext& action) {
            action.publish(pub, bytes);
          });
        } else {
          ros2::Client* client = clients.at(effect.client);
          plan.then([client, bytes = effect.bytes](ros2::ActionContext& action) {
            action.call(*client, bytes);
          });
        }
      }
      return plan;
    };

    // Clients first: the plan of any other callback — and of later clients
    // — may reference them by index.
    for (const auto& client_spec : node_spec.clients) {
      clients.push_back(&node.create_client(
          client_spec.service,
          build_plan(client_spec.demand, client_spec.effects),
          groups.at(client_spec.group)));
    }
    for (const auto& timer_spec : node_spec.timers) {
      node.create_timer(timer_spec.period,
                        build_plan(timer_spec.demand, timer_spec.effects),
                        timer_spec.phase, groups.at(timer_spec.group));
    }
    std::vector<ros2::Subscription*> subscriptions;
    for (const auto& sub_spec : node_spec.subscriptions) {
      subscriptions.push_back(&node.create_subscription(
          sub_spec.topic, build_plan(sub_spec.demand, sub_spec.effects),
          groups.at(sub_spec.group)));
    }
    for (const auto& service_spec : node_spec.services) {
      node.create_service(
          service_spec.service,
          build_plan(service_spec.demand, service_spec.effects),
          groups.at(service_spec.group));
    }
    for (const auto& group_spec : node_spec.sync_groups) {
      std::vector<ros2::Subscription*> members;
      for (std::size_t member : group_spec.members) {
        members.push_back(subscriptions.at(member));
      }
      node.create_sync_group(members,
                             group_spec.fusion_demand.scaled(demand_scale),
                             publisher_for(group_spec.output_topic),
                             group_spec.output_bytes);
    }
  }

  const TimePoint until = ctx.simulator().now() + spec.run_duration;
  for (const auto& input : spec.external_inputs) {
    auto writer = std::make_unique<dds::PeriodicWriter>(
        ctx.domain(), input.topic, input.pid, input.period, input.phase,
        input.bytes);
    if (input.jitter > Duration::zero()) {
      writer->set_jitter(
          DurationDistribution::uniform(-input.jitter, input.jitter),
          ctx.rng().fork());
    }
    writer->start(until);
    instance.external_writers.push_back(std::move(writer));
  }
  return instance;
}

ScenarioRunner::TracedRun ScenarioRunner::trace_run(
    const ScenarioSpec& spec, double demand_scale,
    std::uint64_t run_index) const {
  ros2::Context::Config config;
  config.num_cpus = spec.num_cpus;
  config.seed = spec.seed * 1000003ULL + run_index + 0x7e74ULL;
  ros2::Context ctx(config);

  ebpf::TracerSuite::Options suite_options;
  suite_options.probe_profile = options_.probe_profile;
  // Mix the run seed into the jitter/sampling seed: re-running the same
  // (spec, profile, run_index) reproduces the trace byte for byte, while
  // distinct runs draw independent jitter.
  suite_options.probe_profile.seed ^= config.seed;
  ebpf::TracerSuite suite(ctx, suite_options);
  suite.start_init();
  ScenarioInstance instance = instantiate(ctx, spec, demand_scale);
  if (options_.interference_threads > 0) {
    Rng interference_rng = ctx.rng().fork();
    sched::spawn_interference(ctx.machine(), interference_rng,
                              options_.interference_threads,
                              options_.interference);
  }

  TracedRun traced;
  traced.init_trace = suite.stop_init();
  suite.start_runtime();
  ctx.run_for(spec.run_duration);
  traced.runtime_trace = suite.stop_runtime();
  traced.overhead = suite.overhead_report();
  return traced;
}

api::SynthesisConfig ScenarioRunner::session_config(
    api::MergeStrategy strategy) const {
  return api::SynthesisConfig()
      .merge_strategy(strategy)
      .core_options(options_.synthesis)
      .threads(options_.threads)
      .compensate_overhead(options_.compensate_overhead);
}

ScenarioRunResult ScenarioRunner::run(const ScenarioSpec& spec,
                                      double demand_scale,
                                      std::uint64_t run_index) const {
  TracedRun traced = trace_run(spec, demand_scale, run_index);

  // Merge the init and runtime tracer outputs once; ingested as a single
  // sorted segment, the session synthesizes over borrowed storage with no
  // further copy, and merged_events() is a plain copy (no re-merge).
  api::SynthesisSession session(
      session_config(api::MergeStrategy::MergeTraces));
  session.ingest(trace::merge_sorted({std::move(traced.init_trace),
                                      std::move(traced.runtime_trace)}),
                 {.trace_id = "run", .mode = ""});

  ScenarioRunResult result;
  result.trace = session.merged_events("run").value();
  api::Result<core::TimingModel> model = session.model();
  if (!model.ok()) {
    throw std::runtime_error("scenario synthesis failed: " +
                             model.error().to_string());
  }
  result.model = std::move(model).take();
  result.overhead = traced.overhead;
  return result;
}

core::MultiModeDag ScenarioRunner::run_modes(const ScenarioSpec& spec) const {
  std::vector<ModeSpec> modes = spec.modes;
  if (modes.empty()) modes.push_back(ModeSpec{"nominal", 1.0});

  // One session accumulates all per-mode traces; the per-mode DAG merge
  // (§V option iv) happens in multi_mode_model, with per-trace synthesis
  // parallelized across options_.threads workers.
  api::SynthesisSession session(
      session_config(api::MergeStrategy::MergeDags));
  for (std::size_t i = 0; i < modes.size(); ++i) {
    TracedRun traced = trace_run(spec, modes[i].demand_scale, i + 1);
    const api::IngestOptions segment{
        .trace_id = "mode-" + std::to_string(i), .mode = modes[i].name};
    session.ingest(std::move(traced.init_trace), segment);
    session.ingest(std::move(traced.runtime_trace), segment);
  }
  api::Result<core::MultiModeDag> result = session.multi_mode_model();
  if (!result.ok()) {
    throw std::runtime_error("multi-mode synthesis failed: " +
                             result.error().to_string());
  }
  return std::move(result).take();
}

namespace {

core::TimingModel synthesize_events(const trace::EventVector& events,
                                    api::SynthesisConfig config) {
  api::SynthesisSession session(std::move(config));
  session.ingest(events, {.trace_id = "round-trip", .mode = ""});
  api::Result<core::TimingModel> model = session.model();
  if (!model.ok()) {
    throw std::runtime_error("round-trip synthesis failed: " +
                             model.error().to_string());
  }
  return std::move(model).take();
}

OverheadRoundTrip compare_to_truth(const core::Dag& truth,
                                   const core::Dag& probed) {
  OverheadRoundTrip result;
  double abs_sum = 0.0;
  for (const auto& vertex : truth.vertices()) {
    const core::DagVertex* other = probed.find_vertex(vertex.key);
    if (other == nullptr) {
      ++result.unmatched;
      continue;
    }
    OverheadRoundTrip::Entry entry;
    entry.label = vertex.key;
    entry.truth_ns = vertex.macet().count_ns();
    entry.measured_ns = other->macet().count_ns();
    const double err =
        std::abs(static_cast<double>(entry.measured_ns - entry.truth_ns));
    abs_sum += err;
    if (err > result.max_abs_error_ns) result.max_abs_error_ns = err;
    result.entries.push_back(std::move(entry));
    ++result.matched;
  }
  for (const auto& vertex : probed.vertices()) {
    if (truth.find_vertex(vertex.key) == nullptr) ++result.unmatched;
  }
  if (result.matched > 0) {
    result.mean_abs_error_ns = abs_sum / static_cast<double>(result.matched);
  }
  return result;
}

}  // namespace

OverheadRoundTripResult run_overhead_round_trip(
    const ScenarioSpec& spec, const overhead::ProbeCostProfile& profile,
    const RunnerOptions& base) {
  // Ground truth: the same run under a cost-free tracer.
  RunnerOptions free_options = base;
  free_options.probe_profile = overhead::ProbeCostProfile{};
  free_options.compensate_overhead = false;
  const ScenarioRunResult truth = ScenarioRunner(free_options).run(spec);

  // One probed run; its merged trace is synthesized both ways below, so
  // the comparison isolates compensation (not run-to-run variation).
  RunnerOptions probed_options = base;
  probed_options.probe_profile = profile;
  probed_options.compensate_overhead = false;
  ScenarioRunner probed_runner(probed_options);
  const ScenarioRunResult probed = probed_runner.run(spec);

  OverheadRoundTripResult result;
  result.overhead = probed.overhead;
  result.estimated_per_hit =
      overhead::estimate_probe_cost(probed.trace).per_hit;
  result.uncompensated =
      compare_to_truth(truth.model.dag, probed.model.dag);
  const core::TimingModel compensated = synthesize_events(
      probed.trace,
      probed_runner.session_config(api::MergeStrategy::MergeTraces)
          .compensate_overhead(true));
  result.compensated = compare_to_truth(truth.model.dag, compensated.dag);
  return result;
}

}  // namespace tetra::scenario
