#include "scenario/spec.hpp"

#include <set>

#include "support/json_writer.hpp"
#include "support/string_utils.hpp"

namespace tetra::scenario {

namespace {

const char* shape_name(DurationDistribution::Shape shape) {
  switch (shape) {
    case DurationDistribution::Shape::Constant: return "constant";
    case DurationDistribution::Shape::Uniform: return "uniform";
    case DurationDistribution::Shape::Normal: return "normal";
    case DurationDistribution::Shape::LogNormal: return "lognormal";
    case DurationDistribution::Shape::Mixture: return "mixture";
  }
  return "?";
}

void write_distribution(JsonWriter& w, const DurationDistribution& d) {
  w.begin_object();
  w.kv("shape", shape_name(d.shape()));
  w.kv("nominal_ms", d.nominal().to_ms());
  w.kv("min_ms", d.min().to_ms());
  w.kv("max_ms", d.max().to_ms());
  w.end_object();
}

void write_effects(JsonWriter& w, const std::vector<EffectSpec>& effects) {
  w.key("effects").begin_array();
  for (const auto& effect : effects) {
    w.begin_object();
    if (effect.kind == EffectSpec::Kind::Publish) {
      w.kv("publish", effect.topic);
    } else {
      w.kv("call_client", static_cast<std::uint64_t>(effect.client));
    }
    w.kv("bytes", static_cast<std::uint64_t>(effect.bytes));
    w.end_object();
  }
  w.end_array();
}

}  // namespace

EffectSpec publish_effect(std::string topic, std::size_t bytes) {
  EffectSpec effect;
  effect.kind = EffectSpec::Kind::Publish;
  effect.topic = std::move(topic);
  effect.bytes = bytes;
  return effect;
}

EffectSpec call_effect(std::size_t client, std::size_t bytes) {
  EffectSpec effect;
  effect.kind = EffectSpec::Kind::Call;
  effect.client = client;
  effect.bytes = bytes;
  return effect;
}

std::size_t ScenarioSpec::callback_count() const {
  std::size_t count = 0;
  for (const auto& node : nodes) {
    count += node.timers.size() + node.subscriptions.size() +
             node.services.size() + node.clients.size();
  }
  return count;
}

namespace {
std::string ordinal_label(const ScenarioNodeSpec& node, CallbackKind kind,
                          std::size_t index) {
  return node.name + "/" + to_short_string(kind) + std::to_string(index + 1);
}
}  // namespace

std::string timer_label(const ScenarioNodeSpec& node, std::size_t index) {
  return ordinal_label(node, CallbackKind::Timer, index);
}
std::string subscription_label(const ScenarioNodeSpec& node, std::size_t index) {
  return ordinal_label(node, CallbackKind::Subscription, index);
}
std::string service_label(const ScenarioNodeSpec& node, std::size_t index) {
  return ordinal_label(node, CallbackKind::Service, index);
}
std::string client_label(const ScenarioNodeSpec& node, std::size_t index) {
  return ordinal_label(node, CallbackKind::Client, index);
}

std::vector<std::string> validate_spec(const ScenarioSpec& spec) {
  std::vector<std::string> issues;
  auto complain = [&issues](std::string message) {
    issues.push_back(std::move(message));
  };

  if (spec.num_cpus < 1) complain("num_cpus must be >= 1");
  if (spec.run_duration <= Duration::zero()) {
    complain("run_duration must be positive");
  }

  std::set<std::string> node_names;
  std::set<std::string> service_names;
  auto check_topic = [&complain](const std::string& topic,
                                 const std::string& where) {
    if (topic.empty()) complain(where + ": empty topic");
    if (ends_with(topic, "Request") || ends_with(topic, "Reply")) {
      complain(where + ": topic '" + topic +
               "' uses a reserved service suffix");
    }
  };

  for (const auto& node : spec.nodes) {
    if (!node_names.insert(node.name).second) {
      complain("duplicate node name '" + node.name + "'");
    }
    if (node.executor_threads < 1) {
      complain(node.name + ": executor_threads must be >= 1");
    }
    auto check_group = [&](std::size_t group, const std::string& where) {
      if (group >= node.group_count()) {
        complain(where + ": callback group " + std::to_string(group) +
                 " out of range (node has " +
                 std::to_string(node.group_count()) + " groups)");
      }
    };
    auto check_effects = [&](const std::vector<EffectSpec>& effects,
                             const std::string& where,
                             std::size_t max_client_exclusive) {
      for (const auto& effect : effects) {
        if (effect.kind == EffectSpec::Kind::Publish) {
          check_topic(effect.topic, where);
        } else if (effect.client >= max_client_exclusive) {
          complain(where + ": call effect references client " +
                   std::to_string(effect.client) + " out of range");
        }
      }
    };

    for (std::size_t i = 0; i < node.timers.size(); ++i) {
      const auto& timer = node.timers[i];
      if (timer.period <= Duration::zero()) {
        complain(timer_label(node, i) + ": period must be positive");
      }
      check_effects(timer.effects, timer_label(node, i), node.clients.size());
      check_group(timer.group, timer_label(node, i));
    }
    for (std::size_t i = 0; i < node.subscriptions.size(); ++i) {
      check_topic(node.subscriptions[i].topic, subscription_label(node, i));
      check_effects(node.subscriptions[i].effects, subscription_label(node, i),
                    node.clients.size());
      check_group(node.subscriptions[i].group, subscription_label(node, i));
    }
    for (std::size_t i = 0; i < node.services.size(); ++i) {
      const auto& service = node.services[i];
      if (service.service.empty()) {
        complain(service_label(node, i) + ": empty service name");
      }
      if (!service_names.insert(service.service).second) {
        complain("duplicate service '" + service.service + "'");
      }
      check_effects(service.effects, service_label(node, i),
                    node.clients.size());
      check_group(service.group, service_label(node, i));
    }
    for (std::size_t i = 0; i < node.clients.size(); ++i) {
      // A client's own effects run inside its response callback, whose plan
      // is built at client creation time: it can only call earlier clients.
      check_effects(node.clients[i].effects, client_label(node, i), i);
      check_group(node.clients[i].group, client_label(node, i));
    }

    if (node.sync_groups.size() > 1) {
      complain(node.name + ": at most one sync group per node");
    }
    std::set<std::size_t> member_union;
    for (const auto& group : node.sync_groups) {
      if (group.members.empty()) complain(node.name + ": empty sync group");
      check_topic(group.output_topic, node.name + "/sync");
      for (std::size_t member : group.members) {
        if (member >= node.subscriptions.size()) {
          complain(node.name + ": sync member index out of range");
          continue;
        }
        if (!member_union.insert(member).second) {
          complain(node.name + ": duplicate sync member");
        }
        if (!node.subscriptions[member].effects.empty()) {
          complain(subscription_label(node, member) +
                   ": sync members must not have effects of their own");
        }
        // The synchronizer state is unguarded (message_filters
        // semantics): members must be serialized with each other.
        const std::size_t first = group.members.front();
        const auto& sub = node.subscriptions[member];
        if (first < node.subscriptions.size() &&
            sub.group != node.subscriptions[first].group) {
          complain(node.name +
                   ": sync members must share one callback group");
        } else if (sub.group < node.group_count() &&
                   node.group_policy(sub.group) == GroupPolicy::Reentrant) {
          complain(node.name +
                   ": sync members must be in a mutually-exclusive group");
        }
      }
    }
  }

  // Every client must name an existing service; otherwise its requests go
  // unanswered and the response callback never runs.
  for (const auto& node : spec.nodes) {
    for (std::size_t i = 0; i < node.clients.size(); ++i) {
      if (service_names.count(node.clients[i].service) == 0) {
        complain(client_label(node, i) + ": no service named '" +
                 node.clients[i].service + "'");
      }
    }
  }

  for (const auto& input : spec.external_inputs) {
    check_topic(input.topic, "external input");
    if (input.period <= Duration::zero()) {
      complain("external input '" + input.topic + "': period must be positive");
    }
  }
  for (const auto& mode : spec.modes) {
    if (mode.name.empty()) complain("mode with empty name");
    if (mode.demand_scale <= 0.0) {
      complain("mode '" + mode.name + "': demand_scale must be positive");
    }
  }
  return issues;
}

std::string spec_to_json(const ScenarioSpec& spec) {
  JsonWriter w;
  w.begin_object();
  w.kv("name", spec.name);
  w.kv("seed", spec.seed);
  w.kv("num_cpus", spec.num_cpus);
  w.kv("run_duration_ms", spec.run_duration.to_ms());
  w.key("nodes").begin_array();
  for (const auto& node : spec.nodes) {
    w.begin_object();
    w.kv("name", node.name);
    w.kv("priority", node.priority);
    w.kv("policy",
         node.policy == sched::SchedPolicy::Fifo ? "fifo" : "round_robin");
    w.kv("affinity_mask", node.affinity_mask);
    w.kv("executor_threads", node.executor_threads);
    w.key("callback_groups").begin_array();
    for (const auto& group : node.callback_groups) {
      w.begin_object();
      w.kv("policy", group.policy == GroupPolicy::Reentrant
                         ? "reentrant"
                         : "mutually_exclusive");
      w.end_object();
    }
    w.end_array();
    w.key("timers").begin_array();
    for (const auto& timer : node.timers) {
      w.begin_object();
      w.kv("period_ms", timer.period.to_ms());
      if (timer.phase) w.kv("phase_ms", timer.phase->to_ms());
      w.key("demand");
      write_distribution(w, timer.demand);
      write_effects(w, timer.effects);
      w.kv("group", static_cast<std::uint64_t>(timer.group));
      w.end_object();
    }
    w.end_array();
    w.key("subscriptions").begin_array();
    for (const auto& sub : node.subscriptions) {
      w.begin_object();
      w.kv("topic", sub.topic);
      w.key("demand");
      write_distribution(w, sub.demand);
      write_effects(w, sub.effects);
      w.kv("group", static_cast<std::uint64_t>(sub.group));
      w.end_object();
    }
    w.end_array();
    w.key("services").begin_array();
    for (const auto& service : node.services) {
      w.begin_object();
      w.kv("service", service.service);
      w.key("demand");
      write_distribution(w, service.demand);
      write_effects(w, service.effects);
      w.kv("group", static_cast<std::uint64_t>(service.group));
      w.end_object();
    }
    w.end_array();
    w.key("clients").begin_array();
    for (const auto& client : node.clients) {
      w.begin_object();
      w.kv("service", client.service);
      w.key("demand");
      write_distribution(w, client.demand);
      write_effects(w, client.effects);
      w.kv("group", static_cast<std::uint64_t>(client.group));
      w.end_object();
    }
    w.end_array();
    w.key("sync_groups").begin_array();
    for (const auto& group : node.sync_groups) {
      w.begin_object();
      w.key("members").begin_array();
      for (std::size_t member : group.members) {
        w.value(static_cast<std::uint64_t>(member));
      }
      w.end_array();
      w.kv("output_topic", group.output_topic);
      w.key("fusion_demand");
      write_distribution(w, group.fusion_demand);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.key("external_inputs").begin_array();
  for (const auto& input : spec.external_inputs) {
    w.begin_object();
    w.kv("topic", input.topic);
    w.kv("pid", static_cast<std::int64_t>(input.pid));
    w.kv("period_ms", input.period.to_ms());
    w.kv("jitter_ms", input.jitter.to_ms());
    w.end_object();
  }
  w.end_array();
  w.key("modes").begin_array();
  for (const auto& mode : spec.modes) {
    w.begin_object();
    w.kv("name", mode.name);
    w.kv("demand_scale", mode.demand_scale);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace tetra::scenario
