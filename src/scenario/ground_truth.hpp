// Ground truth implied by a ScenarioSpec: the exact CBlists (labels,
// annotated in/out topics, sync markers) that Algorithm 1 must extract
// from a trace of the scenario, and the DAG Algorithm 2 + DAG synthesis
// must build from them. The expected DAG is produced by running the
// expected CBlists through the *real* core::build_dag, so vertex keys,
// junction construction and OR marking can never drift from the
// implementation under test.
#pragma once

#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "core/callback_record.hpp"
#include "core/dag.hpp"
#include "core/dag_builder.hpp"
#include "scenario/spec.hpp"

namespace tetra::scenario {

/// Expected executor concurrency of one node, derived from the spec's
/// executor/callback-group dimensions and restricted to live callbacks.
struct ExpectedNodeConcurrency {
  int executor_threads = 1;
  /// Spec callback-group index per live callback label. With a
  /// single-threaded executor the partition is unobservable (everything
  /// serializes), so the synthesis is expected to learn exactly one group.
  std::map<std::string, std::size_t> group_of_label;
  /// Labels in reentrant groups — the only callbacks the synthesis may
  /// flag reentrant (and only when executor_threads > 1).
  std::set<std::string> reentrant_labels;
};

struct GroundTruth {
  /// Expected per-node CBlists (only live callbacks — see note below),
  /// with labels assigned and topic annotations in normalized form.
  std::vector<core::CallbackList> expected_lists;
  /// Expected DAG: build_dag(expected_lists, options).
  core::Dag dag;
  /// Union of expected callback labels (one per callback; a multi-caller
  /// service still has a single label, though several DAG vertices).
  std::set<std::string> callback_labels;
  /// Number of source->sink computation chains in `dag`.
  std::size_t chain_count = 0;
  /// Per-node executor/group expectations (only nodes with live
  /// callbacks appear).
  std::map<std::string, ExpectedNodeConcurrency> concurrency;
};

/// Derives the ground truth for a spec. Only *live* callbacks appear: a
/// callback that can structurally never execute (subscription on a topic
/// nobody produces, service without callers, client nobody calls through,
/// timer whose first firing falls outside run_duration) leaves no trace
/// and therefore no CBlist entry or vertex. Liveness is structural: the
/// contract assumes live callbacks get enough wall-clock to run at least
/// once (generator scenarios keep periods well under run_duration).
GroundTruth build_ground_truth(const ScenarioSpec& spec,
                               const core::DagOptions& options = {});

}  // namespace tetra::scenario
