// Round-trip validation: does the model synthesized from a scenario's
// traces equal the ground truth its spec implies? The comparison is
// structural — vertex set, junction/kind flags, edge set, computation
// chain count, and the extracted callback label set — the properties the
// paper's synthesis claims to recover exactly. Timing statistics are
// measurements, not structure, and are out of scope here (the convergence
// analyses cover them).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/dag.hpp"
#include "core/model_synthesis.hpp"
#include "scenario/ground_truth.hpp"

namespace tetra::scenario {

struct ValidationReport {
  // Vertex keys present in the ground truth but not the synthesis / vice
  // versa.
  std::vector<std::string> missing_vertices;
  std::vector<std::string> unexpected_vertices;
  // Edges (from, to, topic) differing between the two DAGs.
  std::vector<core::DagEdge> missing_edges;
  std::vector<core::DagEdge> unexpected_edges;
  // Kind / AND / OR / sync-member flag disagreements on common vertices.
  std::vector<std::string> attribute_mismatches;
  // Learned executor-concurrency inconsistencies against the spec's
  // executor/callback-group dimensions: a learned model that splits a
  // mutually-exclusive group, invents reentrancy, or claims more workers
  // than the executor has is unsound. (Merging two true groups after an
  // observation window without cross-group overlap is conservative and
  // NOT a mismatch.)
  std::vector<std::string> concurrency_mismatches;
  // CBlist labels absent from / unexpected in the synthesized lists (only
  // checked when CBlists are available, i.e. validate() not validate_dag()).
  std::vector<std::string> missing_labels;
  std::vector<std::string> unexpected_labels;

  std::size_t expected_chain_count = 0;
  std::size_t synthesized_chain_count = 0;
  bool chains_checked = false;

  bool ok() const;
  /// Multi-line human-readable mismatch summary ("round trip OK" when ok).
  std::string to_string() const;
};

class RoundTripValidator {
 public:
  /// Full validation: DAG structure plus extracted-callback label sets.
  ValidationReport validate(const core::TimingModel& model,
                            const GroundTruth& truth) const;

  /// DAG-only validation (used for merged / multi-mode DAGs where the
  /// per-run CBlists are no longer available).
  ValidationReport validate_dag(const core::Dag& dag,
                                const GroundTruth& truth) const;

 private:
  /// Learned-concurrency consistency against the spec's executor and
  /// callback-group dimensions (see ValidationReport's field note).
  void check_concurrency(const core::Dag& dag, const GroundTruth& truth,
                         ValidationReport& report) const;
};

}  // namespace tetra::scenario
