#include "scenario/validator.hpp"

#include <map>
#include <set>
#include <sstream>

#include "analysis/chains.hpp"

namespace tetra::scenario {

bool ValidationReport::ok() const {
  return missing_vertices.empty() && unexpected_vertices.empty() &&
         missing_edges.empty() && unexpected_edges.empty() &&
         attribute_mismatches.empty() && concurrency_mismatches.empty() &&
         missing_labels.empty() && unexpected_labels.empty() &&
         (!chains_checked || expected_chain_count == synthesized_chain_count);
}

std::string ValidationReport::to_string() const {
  if (ok()) {
    std::ostringstream out;
    out << "round trip OK (" << expected_chain_count << " chains)";
    return out.str();
  }
  std::ostringstream out;
  out << "round trip MISMATCH\n";
  auto dump_keys = [&out](const char* what,
                          const std::vector<std::string>& keys) {
    if (keys.empty()) return;
    out << "  " << what << " (" << keys.size() << "):\n";
    for (const auto& key : keys) out << "    " << key << "\n";
  };
  auto dump_edges = [&out](const char* what,
                           const std::vector<core::DagEdge>& edges) {
    if (edges.empty()) return;
    out << "  " << what << " (" << edges.size() << "):\n";
    for (const auto& edge : edges) {
      out << "    " << edge.from << " -> " << edge.to << " [" << edge.topic
          << "]\n";
    }
  };
  dump_keys("missing vertices", missing_vertices);
  dump_keys("unexpected vertices", unexpected_vertices);
  dump_edges("missing edges", missing_edges);
  dump_edges("unexpected edges", unexpected_edges);
  dump_keys("attribute mismatches", attribute_mismatches);
  dump_keys("concurrency mismatches", concurrency_mismatches);
  dump_keys("missing callback labels", missing_labels);
  dump_keys("unexpected callback labels", unexpected_labels);
  if (chains_checked && expected_chain_count != synthesized_chain_count) {
    out << "  chain count: expected " << expected_chain_count << ", got "
        << synthesized_chain_count << "\n";
  }
  return out.str();
}

ValidationReport RoundTripValidator::validate_dag(const core::Dag& dag,
                                                  const GroundTruth& truth) const {
  ValidationReport report;

  for (const auto& vertex : truth.dag.vertices()) {
    if (!dag.has_vertex(vertex.key)) {
      report.missing_vertices.push_back(vertex.key);
    }
  }
  for (const auto& vertex : dag.vertices()) {
    const auto* expected = truth.dag.find_vertex(vertex.key);
    if (expected == nullptr) {
      report.unexpected_vertices.push_back(vertex.key);
      continue;
    }
    auto flag_mismatch = [&](const char* what, bool exp, bool got) {
      if (exp != got) {
        report.attribute_mismatches.push_back(
            vertex.key + ": " + what + " expected " + (exp ? "true" : "false") +
            ", got " + (got ? "true" : "false"));
      }
    };
    if (!expected->is_and_junction && expected->kind != vertex.kind) {
      report.attribute_mismatches.push_back(
          vertex.key + ": kind expected " + to_string(expected->kind) +
          ", got " + to_string(vertex.kind));
    }
    flag_mismatch("is_and_junction", expected->is_and_junction,
                  vertex.is_and_junction);
    flag_mismatch("is_or_junction", expected->is_or_junction,
                  vertex.is_or_junction);
    flag_mismatch("is_sync_member", expected->is_sync_member,
                  vertex.is_sync_member);
  }

  const std::set<core::DagEdge> expected_edges(truth.dag.edges().begin(),
                                               truth.dag.edges().end());
  const std::set<core::DagEdge> actual_edges(dag.edges().begin(),
                                             dag.edges().end());
  for (const auto& edge : expected_edges) {
    if (actual_edges.count(edge) == 0) report.missing_edges.push_back(edge);
  }
  for (const auto& edge : actual_edges) {
    if (expected_edges.count(edge) == 0) report.unexpected_edges.push_back(edge);
  }

  report.expected_chain_count = truth.chain_count;
  // Chain enumeration on a structurally wrong graph can explode; it is
  // only run (and only reported) once the vertex/edge sets agree, where
  // it serves as an end-to-end cross-check of the chain machinery.
  if (report.missing_edges.empty() && report.unexpected_edges.empty() &&
      report.missing_vertices.empty() && report.unexpected_vertices.empty()) {
    report.synthesized_chain_count =
        analysis::enumerate_chains(dag, std::size_t{1} << 16).chains.size();
    report.chains_checked = true;
  }

  check_concurrency(dag, truth, report);
  return report;
}

void RoundTripValidator::check_concurrency(const core::Dag& dag,
                                           const GroundTruth& truth,
                                           ValidationReport& report) const {
  auto complain = [&report](std::string message) {
    report.concurrency_mismatches.push_back(std::move(message));
  };

  // Learned constraints per callback label (a split service's per-caller
  // vertices carry their callback's constraints and must agree).
  struct Learned {
    int group = 0;
    bool reentrant = false;
    int workers = 1;
  };
  std::map<std::string, std::map<std::string, Learned>> learned_by_node;
  for (const auto& vertex : dag.vertices()) {
    if (vertex.is_and_junction) continue;
    // Vertex keys are "<label>" or, for split services, "<label>@<caller>".
    const std::string label = vertex.key.substr(0, vertex.key.find('@'));
    auto& node_map = learned_by_node[vertex.node_name];
    auto [it, inserted] = node_map.emplace(
        label, Learned{vertex.exec_group, vertex.reentrant,
                       vertex.node_workers});
    if (!inserted && (it->second.group != vertex.exec_group ||
                      it->second.reentrant != vertex.reentrant)) {
      complain(vertex.key + ": split vertices of one callback disagree on "
               "serialization constraints");
    }
  }

  for (const auto& [node, expected] : truth.concurrency) {
    auto node_it = learned_by_node.find(node);
    if (node_it == learned_by_node.end()) continue;  // vertex checks report
    const auto& learned = node_it->second;

    std::set<int> learned_groups;
    for (const auto& [label, info] : learned) {
      learned_groups.insert(info.group);
      if (info.workers > expected.executor_threads) {
        complain(node + "/" + label + ": learned " +
                 std::to_string(info.workers) + " workers, executor has " +
                 std::to_string(expected.executor_threads));
      }
      if (info.reentrant && expected.reentrant_labels.count(label) == 0) {
        complain(node + "/" + label +
                 ": learned reentrant, spec group is mutually exclusive");
      }
    }

    if (expected.executor_threads == 1) {
      // Single-threaded executor: the whole node serializes, any learned
      // split would claim impossible concurrency.
      if (learned_groups.size() > 1) {
        complain(node + ": learned " +
                 std::to_string(learned_groups.size()) +
                 " serialization groups on a single-threaded executor");
      }
      continue;
    }

    // Soundness on multi-threaded executors: two callbacks of one
    // mutually-exclusive spec group may never be learned concurrent —
    // neither split into different groups nor via reentrancy.
    for (const auto& [a_label, a_group] : expected.group_of_label) {
      if (expected.reentrant_labels.count(a_label) > 0) continue;
      auto a_it = learned.find(a_label);
      if (a_it == learned.end()) continue;
      for (const auto& [b_label, b_group] : expected.group_of_label) {
        if (b_label <= a_label || a_group != b_group) continue;
        if (expected.reentrant_labels.count(b_label) > 0) continue;
        auto b_it = learned.find(b_label);
        if (b_it == learned.end()) continue;
        if (a_it->second.group != b_it->second.group) {
          complain(node + ": " + a_label + " and " + b_label +
                   " share a mutually-exclusive group but were learned "
                   "concurrent");
        }
      }
    }
  }
}

ValidationReport RoundTripValidator::validate(const core::TimingModel& model,
                                              const GroundTruth& truth) const {
  ValidationReport report = validate_dag(model.dag, truth);

  std::set<std::string> synthesized_labels;
  for (const auto& list : model.node_callbacks) {
    for (const auto& record : list.records) {
      synthesized_labels.insert(record.label);
    }
  }
  for (const auto& label : truth.callback_labels) {
    if (synthesized_labels.count(label) == 0) {
      report.missing_labels.push_back(label);
    }
  }
  for (const auto& label : synthesized_labels) {
    if (truth.callback_labels.count(label) == 0) {
      report.unexpected_labels.push_back(label);
    }
  }
  return report;
}

}  // namespace tetra::scenario
