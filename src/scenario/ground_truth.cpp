#include "scenario/ground_truth.hpp"

#include <algorithm>
#include <map>
#include <tuple>

#include "analysis/chains.hpp"
#include "ros2/node.hpp"

namespace tetra::scenario {

namespace {

struct ServiceRef {
  std::size_t node = 0;
  std::size_t index = 0;
};

/// Identifies one spec callback during liveness analysis (labels can only
/// be assigned afterwards: extraction numbers the callbacks it *observes*,
/// so ordinals count live callbacks, not spec entries).
struct CbKey {
  std::size_t node = 0;
  CallbackKind kind = CallbackKind::Timer;
  std::size_t index = 0;

  auto operator<=>(const CbKey&) const = default;
};

}  // namespace

GroundTruth build_ground_truth(const ScenarioSpec& spec,
                               const core::DagOptions& options) {
  const std::size_t n_nodes = spec.nodes.size();

  std::map<std::string, ServiceRef> service_by_name;
  for (std::size_t ni = 0; ni < n_nodes; ++ni) {
    const auto& node = spec.nodes[ni];
    for (std::size_t si = 0; si < node.services.size(); ++si) {
      service_by_name.emplace(node.services[si].service, ServiceRef{ni, si});
    }
  }

  // ---- liveness fixpoint ---------------------------------------------------
  // A callback is live when it can structurally execute at least once:
  // timers whose first firing fits the run, subscriptions on produced
  // topics, services with >=1 live caller, clients some live caller calls
  // through. Topics become live through external inputs, live publishers,
  // and sync groups whose members are all live.
  std::vector<std::vector<char>> timer_live(n_nodes), sub_live(n_nodes),
      client_live(n_nodes);
  // Per service: live caller -> indices of the caller-node clients used.
  std::vector<std::vector<std::map<CbKey, std::set<std::size_t>>>> callers(
      n_nodes);
  for (std::size_t ni = 0; ni < n_nodes; ++ni) {
    const auto& node = spec.nodes[ni];
    timer_live[ni].resize(node.timers.size(), 0);
    sub_live[ni].resize(node.subscriptions.size(), 0);
    client_live[ni].resize(node.clients.size(), 0);
    callers[ni].resize(node.services.size());
    for (std::size_t ti = 0; ti < node.timers.size(); ++ti) {
      const auto& timer = node.timers[ti];
      const Duration first_fire = timer.phase.value_or(timer.period);
      timer_live[ni][ti] = first_fire < spec.run_duration ? 1 : 0;
    }
  }

  std::set<std::string> live_topics;
  for (const auto& input : spec.external_inputs) {
    if (input.phase < spec.run_duration) live_topics.insert(input.topic);
  }

  bool changed = true;
  while (changed) {
    changed = false;
    auto mark_topic = [&](const std::string& topic) {
      if (live_topics.insert(topic).second) changed = true;
    };
    auto process_effects = [&](CbKey owner,
                               const std::vector<EffectSpec>& effects) {
      const auto& node = spec.nodes[owner.node];
      for (const auto& effect : effects) {
        if (effect.kind == EffectSpec::Kind::Publish) {
          mark_topic(effect.topic);
          continue;
        }
        const auto& client = node.clients[effect.client];
        auto service = service_by_name.find(client.service);
        if (service == service_by_name.end()) continue;  // unanswered request
        auto& used_clients =
            callers[service->second.node][service->second.index][owner];
        if (used_clients.insert(effect.client).second) changed = true;
        if (!client_live[owner.node][effect.client]) {
          client_live[owner.node][effect.client] = 1;
          changed = true;
        }
      }
    };

    for (std::size_t ni = 0; ni < n_nodes; ++ni) {
      const auto& node = spec.nodes[ni];
      for (std::size_t ti = 0; ti < node.timers.size(); ++ti) {
        if (timer_live[ni][ti]) {
          process_effects(CbKey{ni, CallbackKind::Timer, ti},
                          node.timers[ti].effects);
        }
      }
      for (std::size_t si = 0; si < node.subscriptions.size(); ++si) {
        if (!sub_live[ni][si] &&
            live_topics.count(node.subscriptions[si].topic) > 0) {
          sub_live[ni][si] = 1;
          changed = true;
        }
        if (sub_live[ni][si]) {
          process_effects(CbKey{ni, CallbackKind::Subscription, si},
                          node.subscriptions[si].effects);
        }
      }
      for (const auto& group : node.sync_groups) {
        const bool all_members_live = std::all_of(
            group.members.begin(), group.members.end(),
            [&](std::size_t member) { return sub_live[ni][member] != 0; });
        if (all_members_live) mark_topic(group.output_topic);
      }
      for (std::size_t vi = 0; vi < node.services.size(); ++vi) {
        if (!callers[ni][vi].empty()) {
          process_effects(CbKey{ni, CallbackKind::Service, vi},
                          node.services[vi].effects);
        }
      }
      for (std::size_t ci = 0; ci < node.clients.size(); ++ci) {
        if (client_live[ni][ci]) {
          process_effects(CbKey{ni, CallbackKind::Client, ci},
                          node.clients[ci].effects);
        }
      }
    }
  }

  // ---- labels --------------------------------------------------------------
  // Ordinals count *live* callbacks per (node, kind), exactly as
  // normalize_labels numbers the callbacks the trace actually contains.
  std::map<CbKey, std::string> label_of;
  for (std::size_t ni = 0; ni < n_nodes; ++ni) {
    const auto& node = spec.nodes[ni];
    auto assign = [&](CallbackKind kind, std::size_t count,
                      auto is_live) {
      std::size_t ordinal = 0;
      for (std::size_t i = 0; i < count; ++i) {
        if (!is_live(i)) continue;
        label_of[CbKey{ni, kind, i}] = node.name + "/" +
                                       to_short_string(kind) +
                                       std::to_string(++ordinal);
      }
    };
    assign(CallbackKind::Timer, node.timers.size(),
           [&](std::size_t i) { return timer_live[ni][i] != 0; });
    assign(CallbackKind::Subscription, node.subscriptions.size(),
           [&](std::size_t i) { return sub_live[ni][i] != 0; });
    assign(CallbackKind::Service, node.services.size(),
           [&](std::size_t i) { return !callers[ni][i].empty(); });
    assign(CallbackKind::Client, node.clients.size(),
           [&](std::size_t i) { return client_live[ni][i] != 0; });
  }

  // Out-topics a callback's effects produce, in effect order: plain topics
  // for publishes, caller-annotated request topics for service calls
  // (Alg. 1 annotates a request dds_write with the id of the callback that
  // issued it — here already in normalized label form).
  auto effect_out_topics = [&](const ScenarioNodeSpec& node,
                               const std::string& own_label,
                               const std::vector<EffectSpec>& effects) {
    std::vector<std::string> outs;
    for (const auto& effect : effects) {
      std::string topic;
      if (effect.kind == EffectSpec::Kind::Publish) {
        topic = effect.topic;
      } else {
        topic = core::annotate_topic(
            node.clients[effect.client].service + ros2::kServiceRequestSuffix,
            own_label);
      }
      if (std::find(outs.begin(), outs.end(), topic) == outs.end()) {
        outs.push_back(std::move(topic));
      }
    }
    return outs;
  };

  // ---- expected CBlists ----------------------------------------------------
  GroundTruth truth;
  for (std::size_t ni = 0; ni < n_nodes; ++ni) {
    const auto& node = spec.nodes[ni];
    core::CallbackList list;
    list.pid = static_cast<Pid>(1000 + ni);
    list.node_name = node.name;

    // Synthetic ids: unique per callback, ascending in creation order (the
    // same ordering invariant real pseudo-address ids satisfy).
    CallbackId next_id = (static_cast<CallbackId>(ni) + 1) << 16;
    auto make_record = [&](CallbackKind kind, std::string label,
                           std::string in_topic,
                           std::vector<std::string> out_topics,
                           bool is_sync) {
      core::CallbackRecord record;
      record.kind = kind;
      record.id = next_id;
      record.pid = list.pid;
      record.node_name = node.name;
      record.label = std::move(label);
      record.in_topic = std::move(in_topic);
      record.out_topics = std::move(out_topics);
      record.is_sync_subscriber = is_sync;
      return record;
    };

    // Which sync group (if any) each subscription belongs to, and whether
    // that group ever completes (all members live => fused topic written).
    std::map<std::size_t, const SyncGroupSpec*> group_of;
    std::map<const SyncGroupSpec*, bool> group_completes;
    for (const auto& group : node.sync_groups) {
      bool all_live = true;
      for (std::size_t member : group.members) {
        group_of[member] = &group;
        all_live = all_live && sub_live[ni][member] != 0;
      }
      group_completes[&group] = all_live;
    }

    for (std::size_t ti = 0; ti < node.timers.size(); ++ti) {
      next_id += 0x10;
      if (!timer_live[ni][ti]) continue;
      const std::string& label = label_of.at(CbKey{ni, CallbackKind::Timer, ti});
      list.records.push_back(
          make_record(CallbackKind::Timer, label, "",
                      effect_out_topics(node, label, node.timers[ti].effects),
                      false));
    }
    for (std::size_t si = 0; si < node.subscriptions.size(); ++si) {
      next_id += 0x10;
      if (!sub_live[ni][si]) continue;
      const std::string& label =
          label_of.at(CbKey{ni, CallbackKind::Subscription, si});
      const auto& sub = node.subscriptions[si];
      auto member = group_of.find(si);
      if (member != group_of.end()) {
        // The fused output is the member's only publication, and only if
        // the set ever completes; every live member is a candidate "last
        // arrival" over a long enough run.
        std::vector<std::string> outs;
        if (group_completes[member->second]) {
          outs.push_back(member->second->output_topic);
        }
        list.records.push_back(make_record(CallbackKind::Subscription, label,
                                           sub.topic, std::move(outs), true));
      } else {
        list.records.push_back(
            make_record(CallbackKind::Subscription, label, sub.topic,
                        effect_out_topics(node, label, sub.effects), false));
      }
    }
    for (std::size_t vi = 0; vi < node.services.size(); ++vi) {
      next_id += 0x10;
      if (callers[ni][vi].empty()) continue;
      const auto& service = node.services[vi];
      const std::string& label =
          label_of.at(CbKey{ni, CallbackKind::Service, vi});
      // One record per distinct caller (Alg. 1's annotated-in-topic
      // matching rule) — this is what later splits the DAG vertex.
      for (const auto& [caller, used_clients] : callers[ni][vi]) {
        auto outs = effect_out_topics(node, label, service.effects);
        for (std::size_t client : used_clients) {
          outs.push_back(core::annotate_topic(
              service.service + ros2::kServiceReplySuffix,
              label_of.at(CbKey{caller.node, CallbackKind::Client, client})));
        }
        list.records.push_back(make_record(
            CallbackKind::Service, label,
            core::annotate_topic(service.service + ros2::kServiceRequestSuffix,
                                 label_of.at(caller)),
            std::move(outs), false));
      }
    }
    for (std::size_t ci = 0; ci < node.clients.size(); ++ci) {
      next_id += 0x10;
      if (!client_live[ni][ci]) continue;
      const auto& client = node.clients[ci];
      const std::string& label =
          label_of.at(CbKey{ni, CallbackKind::Client, ci});
      list.records.push_back(make_record(
          CallbackKind::Client, label,
          core::annotate_topic(client.service + ros2::kServiceReplySuffix,
                               label),
          effect_out_topics(node, label, client.effects), false));
    }

    truth.expected_lists.push_back(std::move(list));
  }

  for (const auto& list : truth.expected_lists) {
    for (const auto& record : list.records) {
      truth.callback_labels.insert(record.label);
    }
  }

  // ---- expected concurrency ------------------------------------------------
  for (std::size_t ni = 0; ni < n_nodes; ++ni) {
    const auto& node = spec.nodes[ni];
    ExpectedNodeConcurrency expected;
    expected.executor_threads = node.executor_threads;
    auto note = [&](CallbackKind kind, std::size_t index, std::size_t group) {
      auto it = label_of.find(CbKey{ni, kind, index});
      if (it == label_of.end()) return;  // not live
      expected.group_of_label[it->second] = group;
      // Reentrancy is only observable (self-overlap) with > 1 worker.
      if (node.executor_threads > 1 &&
          node.group_policy(group) == GroupPolicy::Reentrant) {
        expected.reentrant_labels.insert(it->second);
      }
    };
    for (std::size_t i = 0; i < node.timers.size(); ++i) {
      note(CallbackKind::Timer, i, node.timers[i].group);
    }
    for (std::size_t i = 0; i < node.subscriptions.size(); ++i) {
      note(CallbackKind::Subscription, i, node.subscriptions[i].group);
    }
    for (std::size_t i = 0; i < node.services.size(); ++i) {
      note(CallbackKind::Service, i, node.services[i].group);
    }
    for (std::size_t i = 0; i < node.clients.size(); ++i) {
      note(CallbackKind::Client, i, node.clients[i].group);
    }
    if (!expected.group_of_label.empty()) {
      truth.concurrency[node.name] = std::move(expected);
    }
  }
  truth.dag = core::build_dag(truth.expected_lists, options);
  // Path cap well above anything the generator emits (OR fan-ins multiply
  // source->sink paths); a pathological hand-written spec beyond it shows
  // up as a truncated (undercounted) enumeration.
  truth.chain_count =
      analysis::enumerate_chains(truth.dag, std::size_t{1} << 16).chains.size();
  return truth;
}

}  // namespace tetra::scenario
