// Seeded random application generator. Every scenario it emits is a valid
// ROS2 application for the substrate — arbitrary node/callback/topic
// topologies with timers, subscription chains, multi-caller services,
// chained client calls, message synchronization, OR fan-ins, untraced
// external inputs, per-node CPU affinity/priority and optional operating
// modes — paired with the GroundTruth the synthesis must recover.
//
// Reproducibility contract: generation draws exclusively from one
// support/rng.hpp Rng seeded with the scenario seed; the same
// (seed, options) always yields an identical spec on every machine.
//
// Acyclicity guarantee: every topic carries a level; callbacks only
// subscribe existing topics and only publish fresh topics (one level
// higher) or existing topics of strictly higher level, and service/client
// hops always increase the level — so every DAG edge increases the level
// and no cycle (and no self-loop) can be generated.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "scenario/ground_truth.hpp"
#include "scenario/spec.hpp"

namespace tetra::scenario {

struct GeneratorOptions {
  int min_nodes = 2;
  int max_nodes = 5;
  int max_timers_per_node = 2;
  /// Number of topology-growth steps (subscription / service / sync).
  int min_growth_steps = 3;
  int max_growth_steps = 12;

  double p_timer_publishes = 0.8;
  double p_sub_publishes = 0.55;
  /// When a subscription publishes: chance it re-publishes an existing
  /// higher-level topic instead of a fresh one (creates OR fan-ins).
  double p_republish = 0.15;
  double p_service_step = 0.2;
  double p_sync_step = 0.12;
  double p_second_caller = 0.5;
  double p_client_publishes = 0.5;
  double p_external_input = 0.35;
  /// Chance a node is left without any callbacks (P1-only node).
  double p_empty_node = 0.07;
  double p_modes = 0.15;
  double p_priority_boost = 0.25;
  double p_fifo_policy = 0.2;

  int num_cpus = 4;
  Duration run_duration = Duration::ms(1500);
  int min_period_ms = 40;
  int max_period_ms = 200;
  double min_demand_ms = 0.05;
  double max_demand_ms = 0.8;

  // -- executor dimension (drawn from a separate stream derived from the
  // scenario seed, so enabling/tuning it never reshuffles the topology a
  // seed generates) -------------------------------------------------------
  /// Chance a node runs a multi-threaded executor.
  double p_multithreaded = 0.35;
  int min_executor_threads = 2;
  int max_executor_threads = 4;
  /// Extra callback groups of a multi-threaded node (the default
  /// mutually-exclusive group 0 always exists).
  int max_extra_callback_groups = 2;
  /// Chance an extra group is reentrant instead of mutually exclusive.
  double p_reentrant_group = 0.3;
};

struct Scenario {
  ScenarioSpec spec;
  GroundTruth ground_truth;
};

/// One labeled drift axis a spec can be perturbed along. Each kind changes
/// exactly one aspect of the application — the ground truth for what a
/// drift detector must (or, for Reprioritize without CPU contention, may
/// not) observe.
enum class MutationKind : std::uint8_t {
  DropEdge,       ///< remove one live publish effect (DAG edge disappears)
  AddEdge,        ///< add a subscription to a produced topic (new vertex+edge)
  RetimeTimer,    ///< change one live timer's period (nothing else)
  ScaleExecTime,  ///< scale one live callback's demand by kExecMutationScale
  Reprioritize,   ///< flip one node's scheduling priority
};

std::string_view to_string(MutationKind kind);
/// Parses the kebab-case name ("drop-edge", ...); nullopt when unknown.
std::optional<MutationKind> mutation_kind_from_string(std::string_view name);

/// Demand scale factor applied by MutationKind::ScaleExecTime. Chosen so
/// the mutant's execution-time support is disjoint from the baseline's
/// (generator demands span at most [0.5, 1.6] x nominal), which keeps the
/// drift unambiguous even at small per-window sample counts.
inline constexpr double kExecMutationScale = 3.0;

/// Outcome of ScenarioGenerator::mutate. `applied` is false when the spec
/// offers no candidate for the requested axis (e.g. DropEdge on a spec
/// whose publishes feed nobody); the spec is then returned unchanged. The
/// target fields identify the perturbed element precisely enough for a
/// test to revert the mutation and verify no other axis moved.
struct MutationResult {
  bool applied = false;
  MutationKind kind = MutationKind::DropEdge;
  ScenarioSpec spec;        ///< the mutant (== input when !applied)
  std::string description;  ///< human-readable summary of the change

  // Target identification ----------------------------------------------------
  std::string node;   ///< target node name
  std::string label;  ///< target callback label (when a callback is targeted)
  CallbackKind callback_kind = CallbackKind::Timer;
  std::size_t callback_index = 0;  ///< into the node's per-kind vector
  std::size_t effect_index = 0;    ///< DropEdge: position within effects
  EffectSpec removed_effect;       ///< DropEdge: the erased effect, verbatim
  std::string topic;               ///< DropEdge / AddEdge topic
  Duration old_period, new_period;  ///< RetimeTimer
  double exec_scale = 1.0;          ///< ScaleExecTime factor applied
  int old_priority = 0, new_priority = 0;  ///< Reprioritize
};

class ScenarioGenerator {
 public:
  ScenarioGenerator() = default;
  explicit ScenarioGenerator(GeneratorOptions options) : options_(options) {}

  /// Generates the scenario for `seed`. Deterministic in (seed, options).
  Scenario generate(std::uint64_t seed) const;

  /// Perturbs `spec` along exactly the axis named by `kind`, drawing every
  /// choice from an Rng seeded with `seed` (deterministic in
  /// (spec, seed, kind)). Structural kinds (DropEdge, AddEdge) only report
  /// applied=true when the mutant's ground-truth DAG actually differs from
  /// the input's; the non-structural kinds leave the DAG shape untouched.
  /// Every applied mutant still passes validate_spec.
  MutationResult mutate(const ScenarioSpec& spec, std::uint64_t seed,
                        MutationKind kind) const;

  const GeneratorOptions& options() const { return options_; }

 private:
  GeneratorOptions options_;
};

}  // namespace tetra::scenario
