// Declarative ROS2 application descriptions. A ScenarioSpec is pure data:
// nodes, callbacks (with demand distributions and publish/call effects),
// message-synchronization groups, untraced external inputs, executor/CPU
// placement, and optional operating modes. Both the hand-written workloads
// (SYN, AVP) and the randomized ScenarioGenerator emit specs; the
// ScenarioRunner instantiates them on the simulation substrate and the
// GroundTruth derived from a spec says exactly what the synthesis must
// recover from the traces.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sched/thread.hpp"
#include "support/ids.hpp"
#include "support/rng.hpp"
#include "support/time.hpp"

namespace tetra::scenario {

/// One observable side effect of a callback body, executed after the
/// callback's compute demand.
struct EffectSpec {
  enum class Kind : std::uint8_t {
    Publish,  ///< publish `topic`
    Call,     ///< issue a request through the owning node's clients[client]
  };
  Kind kind = Kind::Publish;
  std::string topic;        ///< Publish only
  std::size_t client = 0;   ///< Call only: index into the node's clients
  std::size_t bytes = 64;
};

EffectSpec publish_effect(std::string topic, std::size_t bytes = 64);
EffectSpec call_effect(std::size_t client, std::size_t bytes = 64);

/// Callback-group policy (mirrors ros2::CallbackGroupKind).
enum class GroupPolicy : std::uint8_t {
  MutuallyExclusive,  ///< member callbacks are serialized
  Reentrant,          ///< member callbacks overlap freely
};

/// One *additional* callback group of a node. Group index 0 is always the
/// implicit default mutually-exclusive group; callback_groups[i] defines
/// group index i + 1.
struct CallbackGroupSpec {
  GroupPolicy policy = GroupPolicy::MutuallyExclusive;
};

struct TimerSpec {
  Duration period = Duration::ms(100);
  /// First-fire offset; defaults to one period (ros2::Node semantics).
  std::optional<Duration> phase;
  DurationDistribution demand = DurationDistribution::constant(Duration::ms(1));
  std::vector<EffectSpec> effects;
  /// Callback group index (0 = the node's default group).
  std::size_t group = 0;
};

struct SubscriptionSpec {
  std::string topic;
  DurationDistribution demand = DurationDistribution::constant(Duration::ms(1));
  /// Must stay empty for sync-group members: their only output is the
  /// group's fused topic, published by whichever member completes the set.
  std::vector<EffectSpec> effects;
  /// Callback group index (0 = the node's default group). Sync-group
  /// members must share one mutually-exclusive group.
  std::size_t group = 0;
};

struct ServiceSpec {
  std::string service;  ///< e.g. "/svc0"; request/reply topics are derived
  DurationDistribution demand = DurationDistribution::constant(Duration::ms(1));
  std::vector<EffectSpec> effects;
  /// Callback group index (0 = the node's default group).
  std::size_t group = 0;
};

struct ClientSpec {
  std::string service;  ///< the service this client calls
  /// Demand of the response callback.
  DurationDistribution demand = DurationDistribution::constant(Duration::ms(1));
  /// Effects of the response callback. Call effects may only reference
  /// clients with a smaller index (they must exist when the plan is built).
  std::vector<EffectSpec> effects;
  /// Callback group index (0 = the node's default group).
  std::size_t group = 0;
};

/// message_filters-style synchronizer over subscriptions of one node. At
/// most one group per node: the DAG builder cannot distinguish two groups
/// inside one node from P7 alone and merges them into one AND junction.
struct SyncGroupSpec {
  std::vector<std::size_t> members;  ///< indices into the node's subscriptions
  DurationDistribution fusion_demand =
      DurationDistribution::constant(Duration::ms(1));
  std::string output_topic;
  std::size_t output_bytes = 4096;
};

struct ScenarioNodeSpec {
  std::string name;
  int priority = 0;
  sched::SchedPolicy policy = sched::SchedPolicy::RoundRobin;
  std::uint64_t affinity_mask = ~0ULL;
  /// Executor worker threads (1 = single-threaded executor).
  int executor_threads = 1;
  /// Additional callback groups; group index 0 (the default
  /// mutually-exclusive group) always exists, callback_groups[i] is
  /// group index i + 1.
  std::vector<CallbackGroupSpec> callback_groups;
  std::vector<TimerSpec> timers;
  std::vector<SubscriptionSpec> subscriptions;
  std::vector<ServiceSpec> services;
  std::vector<ClientSpec> clients;
  std::vector<SyncGroupSpec> sync_groups;

  /// Total group count (default group + extras).
  std::size_t group_count() const { return callback_groups.size() + 1; }
  /// Policy of group index `g` (0 = default, mutually exclusive).
  GroupPolicy group_policy(std::size_t g) const {
    return g == 0 ? GroupPolicy::MutuallyExclusive
                  : callback_groups[g - 1].policy;
  }
};

/// An untraced periodic data source (sensor driver / rosbag replay). Its
/// PID is not a ROS2 node, so its topic appears as a dangling DAG input.
struct ExternalInputSpec {
  std::string topic;
  Pid pid = 500;
  Duration period = Duration::ms(100);
  Duration phase = Duration::ms(10);
  /// Per-tick jitter half-range (zero = none).
  Duration jitter = Duration::zero();
  std::size_t bytes = 4096;
};

/// An operating mode: same topology, scaled compute demands (paper §V
/// option iv — per-mode trace tagging and merging).
struct ModeSpec {
  std::string name;
  double demand_scale = 1.0;
};

struct ScenarioSpec {
  std::string name = "scenario";
  std::uint64_t seed = 0;
  int num_cpus = 4;
  Duration run_duration = Duration::sec(2);
  std::vector<ScenarioNodeSpec> nodes;
  std::vector<ExternalInputSpec> external_inputs;
  std::vector<ModeSpec> modes;

  std::size_t callback_count() const;
};

// Stable labels the synthesis assigns ("<node>/<T|SC|SV|CL><ordinal>",
// ordinals 1-based in per-kind creation order — the order of the spec
// vectors). GroundTruth and the workloads' label maps both rely on these.
std::string timer_label(const ScenarioNodeSpec& node, std::size_t index);
std::string subscription_label(const ScenarioNodeSpec& node, std::size_t index);
std::string service_label(const ScenarioNodeSpec& node, std::size_t index);
std::string client_label(const ScenarioNodeSpec& node, std::size_t index);

/// Structural sanity checks: unique node names, one service per service
/// name, client/call references in range (call effects only to earlier
/// clients), sync members valid/distinct/effect-free, at most one sync
/// group per node, topics free of the reserved Request/Reply suffixes.
/// Returns human-readable violations; empty = valid.
std::vector<std::string> validate_spec(const ScenarioSpec& spec);

/// Compact JSON rendering of a spec (informational: distributions are
/// summarized by shape and bounds, not round-trippable).
std::string spec_to_json(const ScenarioSpec& spec);

}  // namespace tetra::scenario
