// Instantiates a ScenarioSpec on the simulation substrate and drives the
// full trace->model cycle: build the application in a fresh Context, trace
// it with the three eBPF tracers (TR_IN / TR_RT / TR_KN), run it under
// optional background interference, merge the traces and synthesize a
// TimingModel — the same deployment loop the case-study driver uses, but
// for arbitrary specs.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "api/session.hpp"
#include "core/model_synthesis.hpp"
#include "dds/domain.hpp"
#include "ebpf/tracers.hpp"
#include "overhead/profile.hpp"
#include "ros2/context.hpp"
#include "sched/interference.hpp"
#include "scenario/spec.hpp"
#include "trace/event.hpp"

namespace tetra::scenario {

struct RunnerOptions {
  /// Background busy/sleep threads fragmenting callback executions.
  int interference_threads = 0;
  sched::InterferenceConfig interference;
  core::SynthesisOptions synthesis;
  /// Worker threads for the synthesis session (per-trace parallelism in
  /// multi-run/multi-mode synthesis).
  int threads = 1;
  /// Per-probe tracer cost injected into every run (src/overhead/). The
  /// profile's jitter seed is mixed with the run seed, so distinct runs
  /// draw distinct jitter while identical (spec, profile) runs stay
  /// byte-reproducible.
  overhead::ProbeCostProfile probe_profile;
  /// Estimate the injected probe cost from each trace and subtract it from
  /// execution-time statistics during synthesis.
  bool compensate_overhead = false;
};

/// Handles to a spec instantiated into a Context. Owns the untraced
/// external writers; nodes are owned by the Context as usual.
struct ScenarioInstance {
  std::map<std::string, ros2::Node*> node_of;
  std::vector<std::unique_ptr<dds::PeriodicWriter>> external_writers;
};

struct ScenarioRunResult {
  core::TimingModel model;
  trace::EventVector trace;  ///< merged init + runtime trace
  ebpf::OverheadReport overhead;
};

class ScenarioRunner {
 public:
  ScenarioRunner() = default;
  explicit ScenarioRunner(RunnerOptions options) : options_(std::move(options)) {}

  /// Builds the spec's nodes, callbacks, sync groups and external inputs
  /// into an existing context. `demand_scale` scales every compute demand
  /// (mode variation / load sweeps). Throws std::invalid_argument when
  /// validate_spec reports violations.
  static ScenarioInstance instantiate(ros2::Context& ctx,
                                      const ScenarioSpec& spec,
                                      double demand_scale = 1.0);

  /// One traced run: fresh context (seeded from spec.seed and run_index),
  /// tracers around the app, spec.run_duration of simulated time, model
  /// synthesis over the merged trace.
  ScenarioRunResult run(const ScenarioSpec& spec, double demand_scale = 1.0,
                        std::uint64_t run_index = 0) const;

  /// §V option (iv): one traced run per spec mode (scenarios without modes
  /// get a single "nominal" mode), per-mode DAGs kept separate.
  core::MultiModeDag run_modes(const ScenarioSpec& spec) const;

  const RunnerOptions& options() const { return options_; }

  api::SynthesisConfig session_config(api::MergeStrategy strategy) const;

 private:
  /// One traced simulation without synthesis: the init/runtime tracer
  /// outputs are returned as separate segments for session ingestion.
  struct TracedRun {
    trace::EventVector init_trace;
    trace::EventVector runtime_trace;
    ebpf::OverheadReport overhead;
  };
  TracedRun trace_run(const ScenarioSpec& spec, double demand_scale,
                      std::uint64_t run_index) const;

  RunnerOptions options_;
};

/// Per-vertex comparison of a probed model against the probe-free truth.
struct OverheadRoundTrip {
  struct Entry {
    std::string label;
    std::int64_t truth_ns = 0;     ///< free-trace mACET
    std::int64_t measured_ns = 0;  ///< probed-trace mACET
  };
  std::vector<Entry> entries;
  std::size_t matched = 0;    ///< vertices present in both models
  std::size_t unmatched = 0;  ///< vertices missing on either side
  double mean_abs_error_ns = 0.0;
  double max_abs_error_ns = 0.0;
};

/// Round-trip validation of overhead compensation (ISSUE 8 acceptance):
/// runs `spec` probe-free for the ground-truth model, runs it once under
/// `profile`, then synthesizes that single probed trace twice — with and
/// without compensation — and compares per-vertex mean execution times
/// against the truth. A working estimator makes `compensated` much closer
/// to the truth than `uncompensated`.
struct OverheadRoundTripResult {
  OverheadRoundTrip compensated;
  OverheadRoundTrip uncompensated;
  Duration estimated_per_hit;  ///< estimator output on the probed trace
  ebpf::OverheadReport overhead;  ///< of the probed run
};

OverheadRoundTripResult run_overhead_round_trip(
    const ScenarioSpec& spec, const overhead::ProbeCostProfile& profile,
    const RunnerOptions& base = {});

}  // namespace tetra::scenario
