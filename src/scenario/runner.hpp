// Instantiates a ScenarioSpec on the simulation substrate and drives the
// full trace->model cycle: build the application in a fresh Context, trace
// it with the three eBPF tracers (TR_IN / TR_RT / TR_KN), run it under
// optional background interference, merge the traces and synthesize a
// TimingModel — the same deployment loop the case-study driver uses, but
// for arbitrary specs.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "api/session.hpp"
#include "core/model_synthesis.hpp"
#include "dds/domain.hpp"
#include "ebpf/tracers.hpp"
#include "ros2/context.hpp"
#include "sched/interference.hpp"
#include "scenario/spec.hpp"
#include "trace/event.hpp"

namespace tetra::scenario {

struct RunnerOptions {
  /// Background busy/sleep threads fragmenting callback executions.
  int interference_threads = 0;
  sched::InterferenceConfig interference;
  core::SynthesisOptions synthesis;
  /// Worker threads for the synthesis session (per-trace parallelism in
  /// multi-run/multi-mode synthesis).
  int threads = 1;
};

/// Handles to a spec instantiated into a Context. Owns the untraced
/// external writers; nodes are owned by the Context as usual.
struct ScenarioInstance {
  std::map<std::string, ros2::Node*> node_of;
  std::vector<std::unique_ptr<dds::PeriodicWriter>> external_writers;
};

struct ScenarioRunResult {
  core::TimingModel model;
  trace::EventVector trace;  ///< merged init + runtime trace
  ebpf::OverheadReport overhead;
};

class ScenarioRunner {
 public:
  ScenarioRunner() = default;
  explicit ScenarioRunner(RunnerOptions options) : options_(std::move(options)) {}

  /// Builds the spec's nodes, callbacks, sync groups and external inputs
  /// into an existing context. `demand_scale` scales every compute demand
  /// (mode variation / load sweeps). Throws std::invalid_argument when
  /// validate_spec reports violations.
  static ScenarioInstance instantiate(ros2::Context& ctx,
                                      const ScenarioSpec& spec,
                                      double demand_scale = 1.0);

  /// One traced run: fresh context (seeded from spec.seed and run_index),
  /// tracers around the app, spec.run_duration of simulated time, model
  /// synthesis over the merged trace.
  ScenarioRunResult run(const ScenarioSpec& spec, double demand_scale = 1.0,
                        std::uint64_t run_index = 0) const;

  /// §V option (iv): one traced run per spec mode (scenarios without modes
  /// get a single "nominal" mode), per-mode DAGs kept separate.
  core::MultiModeDag run_modes(const ScenarioSpec& spec) const;

  const RunnerOptions& options() const { return options_; }

 private:
  /// One traced simulation without synthesis: the init/runtime tracer
  /// outputs are returned as separate segments for session ingestion.
  struct TracedRun {
    trace::EventVector init_trace;
    trace::EventVector runtime_trace;
    ebpf::OverheadReport overhead;
  };
  TracedRun trace_run(const ScenarioSpec& spec, double demand_scale,
                      std::uint64_t run_index) const;
  api::SynthesisConfig session_config(api::MergeStrategy strategy) const;

  RunnerOptions options_;
};

}  // namespace tetra::scenario
