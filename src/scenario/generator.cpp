#include "scenario/generator.hpp"

#include <algorithm>
#include <set>
#include <string>
#include <tuple>
#include <vector>

namespace tetra::scenario {

namespace {

struct TopicInfo {
  std::string name;
  int level = 0;
};

/// A callback eligible to become a service caller (sync members and
/// services are excluded). Indices are into the spec's vectors and are
/// kept in sync when client insertion renumbers a node's clients.
struct CallerRef {
  std::size_t node = 0;
  CallbackKind kind = CallbackKind::Timer;
  std::size_t index = 0;
  int level = 0;
};

class Generation {
 public:
  Generation(const GeneratorOptions& options, std::uint64_t seed)
      : options_(options), rng_(seed * 0x9e3779b97f4a7c15ULL + 0x5ca1ab1eULL),
        mt_rng_(seed * 0xd1b54a32d192ed03ULL + 0x7e74e8ecULL) {
    spec_.seed = seed;
    spec_.name = "scenario-" + std::to_string(seed);
    spec_.num_cpus = options.num_cpus;
    spec_.run_duration = options.run_duration;

    // Ground truth counts a callback live when it *structurally* executes,
    // so every generated chain must also get enough simulated time: keep
    // timer periods a healthy factor below run_duration (the defaults'
    // ratio), scaling demands by the same factor so utilization — and
    // with it queueing behaviour — is independent of the chosen duration.
    const std::int64_t duration_ms = spec_.run_duration.to_ms() >= 1.0
                                         ? static_cast<std::int64_t>(
                                               spec_.run_duration.to_ms())
                                         : 1;
    max_period_ms_ = std::min<std::int64_t>(options.max_period_ms,
                                            std::max<std::int64_t>(
                                                duration_ms / 7, 2));
    min_period_ms_ = std::min<std::int64_t>(options.min_period_ms,
                                            max_period_ms_);
    const double demand_scale =
        static_cast<double>(max_period_ms_) /
        static_cast<double>(std::max(options.max_period_ms, 1));
    min_demand_ms_ = options.min_demand_ms * demand_scale;
    max_demand_ms_ = options.max_demand_ms * demand_scale;
  }

  ScenarioSpec build() {
    make_nodes();
    make_timers();
    make_external_inputs();
    const int steps = static_cast<int>(rng_.uniform_int(
        options_.min_growth_steps, options_.max_growth_steps));
    for (int step = 0; step < steps; ++step) {
      const double roll = rng_.uniform(0.0, 1.0);
      if (roll < options_.p_sync_step) {
        grow_sync_group();
      } else if (roll < options_.p_sync_step + options_.p_service_step) {
        grow_service();
      } else {
        grow_subscription();
      }
    }
    make_modes();
    assign_executors();
    return std::move(spec_);
  }

 private:
  // ---- building blocks -----------------------------------------------------

  DurationDistribution random_demand() {
    const double base = rng_.uniform(min_demand_ms_, max_demand_ms_);
    switch (rng_.uniform_int(0, 2)) {
      case 0:
        return DurationDistribution::constant(Duration::ms_f(base));
      case 1:
        return DurationDistribution::uniform(Duration::ms_f(base * 0.5),
                                             Duration::ms_f(base * 1.5));
      default:
        return DurationDistribution::normal(
            Duration::ms_f(base), Duration::ms_f(base * 0.15),
            Duration::ms_f(base * 0.5), Duration::ms_f(base * 1.6));
    }
  }

  std::string fresh_topic(int level) {
    TopicInfo topic;
    topic.name = "/tp" + std::to_string(topic_counter_++);
    topic.level = level;
    topics_.push_back(topic);
    return topic.name;
  }

  std::size_t random_active_node() {
    return active_nodes_[static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(active_nodes_.size()) - 1))];
  }

  const TopicInfo& random_topic() {
    return topics_[static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(topics_.size()) - 1))];
  }

  std::vector<EffectSpec>* effects_of(const CallerRef& ref) {
    auto& node = spec_.nodes[ref.node];
    switch (ref.kind) {
      case CallbackKind::Timer: return &node.timers[ref.index].effects;
      case CallbackKind::Subscription:
        return &node.subscriptions[ref.index].effects;
      case CallbackKind::Client: return &node.clients[ref.index].effects;
      default: return nullptr;
    }
  }

  // ---- phases --------------------------------------------------------------

  void make_nodes() {
    const int n_nodes = static_cast<int>(
        rng_.uniform_int(options_.min_nodes, options_.max_nodes));
    for (int i = 0; i < n_nodes; ++i) {
      ScenarioNodeSpec node;
      node.name = "node" + std::to_string(i);
      node.priority = rng_.chance(options_.p_priority_boost) ? 1 : 0;
      node.policy = rng_.chance(options_.p_fifo_policy)
                        ? sched::SchedPolicy::Fifo
                        : sched::SchedPolicy::RoundRobin;
      std::uint64_t mask = 0;
      for (int cpu = 0; cpu < spec_.num_cpus; ++cpu) {
        if (rng_.chance(0.6)) mask |= 1ULL << cpu;
      }
      node.affinity_mask = mask != 0 ? mask : ~0ULL;
      spec_.nodes.push_back(std::move(node));
    }
    // Non-empty nodes receive callbacks; empty ones stay P1-only shells.
    for (std::size_t i = 0; i < spec_.nodes.size(); ++i) {
      if (!rng_.chance(options_.p_empty_node)) active_nodes_.push_back(i);
    }
    if (active_nodes_.empty()) active_nodes_.push_back(0);
  }

  void make_timers() {
    int total_timers = 0;
    for (std::size_t ni : active_nodes_) {
      const int count = static_cast<int>(
          rng_.uniform_int(0, options_.max_timers_per_node));
      for (int t = 0; t < count; ++t) add_timer(ni);
      total_timers += count;
    }
    if (total_timers == 0) add_timer(random_active_node());
  }

  void add_timer(std::size_t ni) {
    auto& node = spec_.nodes[ni];
    TimerSpec timer;
    timer.period = Duration::ms(rng_.uniform_int(min_period_ms_, max_period_ms_));
    timer.demand = random_demand();
    if (rng_.chance(options_.p_timer_publishes)) {
      timer.effects.push_back(publish_effect(fresh_topic(1)));
    }
    callable_.push_back(
        CallerRef{ni, CallbackKind::Timer, node.timers.size(), 0});
    node.timers.push_back(std::move(timer));
  }

  void make_external_inputs() {
    if (!rng_.chance(options_.p_external_input)) return;
    const int count = static_cast<int>(rng_.uniform_int(1, 2));
    for (int i = 0; i < count; ++i) {
      ExternalInputSpec input;
      input.topic = "/ext" + std::to_string(i);
      input.pid = static_cast<Pid>(500 + i);
      input.period = Duration::ms(
          rng_.uniform_int(std::min<std::int64_t>(50, max_period_ms_),
                           std::min<std::int64_t>(150, max_period_ms_ * 3)));
      input.phase = Duration::ms(rng_.uniform_int(
          std::min<std::int64_t>(5, std::max<std::int64_t>(max_period_ms_ / 8, 1)),
          std::min<std::int64_t>(20, std::max<std::int64_t>(max_period_ms_ / 4, 2))));
      if (rng_.chance(0.5)) {
        // Jitter shrinks with the timing scale so it stays well inside a
        // period at short run durations.
        const double jitter_scale =
            static_cast<double>(max_period_ms_) /
            static_cast<double>(std::max(options_.max_period_ms, 1));
        input.jitter = Duration::ms_f(rng_.uniform(1.0, 5.0) * jitter_scale);
      }
      input.bytes = 1024;
      topics_.push_back(TopicInfo{input.topic, 1});
      spec_.external_inputs.push_back(std::move(input));
    }
  }

  void grow_subscription() {
    if (topics_.empty()) return;
    const TopicInfo in_topic = random_topic();
    const std::size_t ni = random_active_node();
    auto& node = spec_.nodes[ni];

    SubscriptionSpec sub;
    sub.topic = in_topic.name;
    sub.demand = random_demand();
    if (rng_.chance(options_.p_sub_publishes)) {
      if (rng_.chance(options_.p_republish)) {
        // Re-publish an existing strictly-higher-level topic: creates an
        // OR fan-in at that topic's subscribers without risking a cycle.
        std::vector<std::size_t> eligible;
        for (std::size_t t = 0; t < topics_.size(); ++t) {
          if (topics_[t].level > in_topic.level) eligible.push_back(t);
        }
        if (!eligible.empty()) {
          const auto pick = eligible[static_cast<std::size_t>(rng_.uniform_int(
              0, static_cast<std::int64_t>(eligible.size()) - 1))];
          sub.effects.push_back(publish_effect(topics_[pick].name));
        } else {
          sub.effects.push_back(publish_effect(fresh_topic(in_topic.level + 1)));
        }
      } else {
        sub.effects.push_back(publish_effect(fresh_topic(in_topic.level + 1)));
      }
    }
    callable_.push_back(CallerRef{ni, CallbackKind::Subscription,
                                  node.subscriptions.size(), in_topic.level});
    node.subscriptions.push_back(std::move(sub));
  }

  void grow_service() {
    if (callable_.empty()) return;
    const std::size_t server_ni = random_active_node();
    auto& server = spec_.nodes[server_ni];
    const std::string service_name = "/svc" + std::to_string(service_counter_++);

    // Pick 1-2 distinct callers (multi-caller services are what the
    // per-caller vertex split exists for).
    std::vector<std::size_t> caller_ids;
    caller_ids.push_back(static_cast<std::size_t>(rng_.uniform_int(
        0, static_cast<std::int64_t>(callable_.size()) - 1)));
    if (callable_.size() > 1 && rng_.chance(options_.p_second_caller)) {
      std::size_t second = static_cast<std::size_t>(rng_.uniform_int(
          0, static_cast<std::int64_t>(callable_.size()) - 1));
      if (second != caller_ids[0]) caller_ids.push_back(second);
    }

    // Client callers first (lowest index first): they insert the new
    // client *before* themselves, and every later caller can then share it
    // — at any index for non-client callers, and at a lower index for a
    // higher-placed client caller. Any other order can hand a client
    // caller a forward reference its plan cannot resolve.
    std::sort(caller_ids.begin(), caller_ids.end(),
              [this](std::size_t a, std::size_t b) {
                const CallerRef& ra = callable_[a];
                const CallerRef& rb = callable_[b];
                const bool ca = ra.kind == CallbackKind::Client;
                const bool cb = rb.kind == CallbackKind::Client;
                if (ca != cb) return ca;
                if (ra.node != rb.node) return ra.node < rb.node;
                return ra.index < rb.index;
              });

    int max_caller_level = 0;
    for (std::size_t id : caller_ids) {
      max_caller_level = std::max(max_caller_level, callable_[id].level);
    }
    const int service_level = max_caller_level + 1;

    ServiceSpec service_spec;
    service_spec.service = service_name;
    service_spec.demand = random_demand();
    if (rng_.chance(0.4)) {
      service_spec.effects.push_back(
          publish_effect(fresh_topic(service_level + 1)));
    }
    server.services.push_back(std::move(service_spec));

    // One client per caller node; callers on the same node share it.
    for (std::size_t id : caller_ids) {
      CallerRef& caller = callable_[id];
      auto& caller_node = spec_.nodes[caller.node];

      std::size_t client_index = caller_node.clients.size();
      bool found = false;
      for (std::size_t ci = 0; ci < caller_node.clients.size(); ++ci) {
        if (caller_node.clients[ci].service == service_name) {
          client_index = ci;
          found = true;
          break;
        }
      }
      if (!found) {
        ClientSpec client;
        client.service = service_name;
        client.demand = random_demand();
        if (rng_.chance(options_.p_client_publishes)) {
          client.effects.push_back(
              publish_effect(fresh_topic(service_level + 2)));
        }
        if (caller.kind == CallbackKind::Client) {
          // A client calling a service must reference an *earlier* client
          // (its plan is built at creation time): insert the callee before
          // the caller and renumber every call-effect and registry index
          // at or past the insertion point.
          client_index = caller.index;
          caller_node.clients.insert(
              caller_node.clients.begin() +
                  static_cast<std::ptrdiff_t>(client_index),
              std::move(client));
          renumber_clients(caller.node, client_index);
        } else {
          caller_node.clients.push_back(std::move(client));
        }
        callable_.push_back(CallerRef{caller.node, CallbackKind::Client,
                                      client_index, service_level + 1});
      }
      // `caller` may have been invalidated-by-value (renumber mutates the
      // registry in place, not the vector), so re-read through the id.
      const CallerRef& resolved = callable_[id];
      effects_of(resolved)->push_back(call_effect(client_index));
    }
  }

  /// After inserting a client at `at` in node `ni`: shift call effects and
  /// registry entries referencing clients at indices >= at.
  void renumber_clients(std::size_t ni, std::size_t at) {
    auto& node = spec_.nodes[ni];
    auto bump = [&](std::vector<EffectSpec>& effects) {
      for (auto& effect : effects) {
        if (effect.kind == EffectSpec::Kind::Call && effect.client >= at) {
          ++effect.client;
        }
      }
    };
    for (auto& timer : node.timers) bump(timer.effects);
    for (auto& sub : node.subscriptions) bump(sub.effects);
    for (auto& service : node.services) bump(service.effects);
    for (std::size_t ci = 0; ci < node.clients.size(); ++ci) {
      if (ci != at) bump(node.clients[ci].effects);
    }
    for (auto& ref : callable_) {
      if (ref.node == ni && ref.kind == CallbackKind::Client &&
          ref.index >= at) {
        ++ref.index;
      }
    }
  }

  void grow_sync_group() {
    // Distinct in-topics for the members.
    std::vector<std::size_t> pool(topics_.size());
    for (std::size_t i = 0; i < pool.size(); ++i) pool[i] = i;
    if (pool.size() < 2) return;

    // A node that doesn't have a group yet (one junction per node).
    std::vector<std::size_t> candidates;
    for (std::size_t ni : active_nodes_) {
      if (spec_.nodes[ni].sync_groups.empty()) candidates.push_back(ni);
    }
    if (candidates.empty()) return;
    const std::size_t ni = candidates[static_cast<std::size_t>(rng_.uniform_int(
        0, static_cast<std::int64_t>(candidates.size()) - 1))];
    auto& node = spec_.nodes[ni];

    const std::size_t members =
        pool.size() >= 3 && rng_.chance(0.35) ? 3 : 2;
    SyncGroupSpec group;
    int max_level = 0;
    for (std::size_t m = 0; m < members; ++m) {
      const std::size_t pick = static_cast<std::size_t>(rng_.uniform_int(
          0, static_cast<std::int64_t>(pool.size()) - 1));
      const TopicInfo& topic = topics_[pool[pick]];
      pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(pick));
      max_level = std::max(max_level, topic.level);

      SubscriptionSpec member;
      member.topic = topic.name;
      member.demand = random_demand();
      // Members are not callable and carry no effects of their own: their
      // only output is the fused topic.
      group.members.push_back(node.subscriptions.size());
      node.subscriptions.push_back(std::move(member));
    }
    group.fusion_demand = random_demand();
    group.output_topic = fresh_topic(max_level + 1);
    node.sync_groups.push_back(std::move(group));
  }

  void make_modes() {
    if (!rng_.chance(options_.p_modes)) return;
    spec_.modes.push_back(ModeSpec{"calm", 0.75});
    spec_.modes.push_back(ModeSpec{"nominal", 1.0});
    if (rng_.chance(0.5)) spec_.modes.push_back(ModeSpec{"stress", 1.35});
  }

  /// Executor dimension: rolled last, from its own stream (mt_rng_), so
  /// the topology a seed generates is independent of these options.
  void assign_executors() {
    if (options_.p_multithreaded <= 0.0) return;
    for (auto& node : spec_.nodes) {
      if (!mt_rng_.chance(options_.p_multithreaded)) continue;
      node.executor_threads = static_cast<int>(mt_rng_.uniform_int(
          options_.min_executor_threads, options_.max_executor_threads));
      const int extra_groups = static_cast<int>(mt_rng_.uniform_int(
          0, options_.max_extra_callback_groups));
      for (int g = 0; g < extra_groups; ++g) {
        CallbackGroupSpec group;
        group.policy = mt_rng_.chance(options_.p_reentrant_group)
                           ? GroupPolicy::Reentrant
                           : GroupPolicy::MutuallyExclusive;
        node.callback_groups.push_back(group);
      }

      // Spread the callbacks over the groups. Sync-group members stay in
      // the (mutually-exclusive) default group: the synchronizer state
      // must remain serialized.
      std::set<std::size_t> sync_members;
      for (const auto& sync : node.sync_groups) {
        sync_members.insert(sync.members.begin(), sync.members.end());
      }
      const auto roll_group = [&]() -> std::size_t {
        return static_cast<std::size_t>(mt_rng_.uniform_int(
            0, static_cast<std::int64_t>(node.group_count()) - 1));
      };
      for (auto& timer : node.timers) timer.group = roll_group();
      for (std::size_t si = 0; si < node.subscriptions.size(); ++si) {
        if (sync_members.count(si) > 0) continue;
        node.subscriptions[si].group = roll_group();
      }
      for (auto& service : node.services) service.group = roll_group();
      for (auto& client : node.clients) client.group = roll_group();
    }
  }

  const GeneratorOptions& options_;
  Rng rng_;
  /// Executor-dimension stream (see assign_executors).
  Rng mt_rng_;
  ScenarioSpec spec_;
  std::vector<std::size_t> active_nodes_;
  std::vector<TopicInfo> topics_;
  std::vector<CallerRef> callable_;
  std::int64_t min_period_ms_ = 0;
  std::int64_t max_period_ms_ = 0;
  double min_demand_ms_ = 0.0;
  double max_demand_ms_ = 0.0;
  int topic_counter_ = 0;
  int service_counter_ = 0;
};

}  // namespace

Scenario ScenarioGenerator::generate(std::uint64_t seed) const {
  Scenario scenario;
  scenario.spec = Generation(options_, seed).build();
  scenario.ground_truth = build_ground_truth(scenario.spec);
  return scenario;
}

// ---- mutation --------------------------------------------------------------

namespace {

using EdgeKey = std::tuple<std::string, std::string, std::string>;

std::set<EdgeKey> dag_edge_set(const core::Dag& dag) {
  std::set<EdgeKey> out;
  for (const auto& edge : dag.edges()) {
    out.insert(EdgeKey{edge.from, edge.to, edge.topic});
  }
  return out;
}

std::set<std::string> dag_vertex_keys(const core::Dag& dag) {
  std::set<std::string> out;
  for (const auto& vertex : dag.vertices()) out.insert(vertex.key);
  return out;
}

/// One spec callback addressed by (node, kind, per-kind index), with the
/// label the synthesis will assign it.
struct CallbackTarget {
  std::size_t node = 0;
  CallbackKind kind = CallbackKind::Timer;
  std::size_t index = 0;
  std::string label;
};

/// Every *live* callback of the spec (label present in the ground truth),
/// in deterministic spec order. `include_sync_members` excludes sync-group
/// member subscriptions when false: their observed execution time mixes
/// member and fusion demand, so they make poor single-axis targets.
std::vector<CallbackTarget> live_callbacks(const ScenarioSpec& spec,
                                           const GroundTruth& truth,
                                           bool include_sync_members) {
  std::vector<CallbackTarget> out;
  for (std::size_t ni = 0; ni < spec.nodes.size(); ++ni) {
    const auto& node = spec.nodes[ni];
    std::set<std::size_t> sync_members;
    for (const auto& group : node.sync_groups) {
      sync_members.insert(group.members.begin(), group.members.end());
    }
    const auto add = [&](CallbackKind kind, std::size_t index,
                         std::string label) {
      if (truth.callback_labels.count(label) == 0) return;
      out.push_back(CallbackTarget{ni, kind, index, std::move(label)});
    };
    for (std::size_t i = 0; i < node.timers.size(); ++i) {
      add(CallbackKind::Timer, i, timer_label(node, i));
    }
    for (std::size_t i = 0; i < node.subscriptions.size(); ++i) {
      if (!include_sync_members && sync_members.count(i) > 0) continue;
      add(CallbackKind::Subscription, i, subscription_label(node, i));
    }
    for (std::size_t i = 0; i < node.services.size(); ++i) {
      add(CallbackKind::Service, i, service_label(node, i));
    }
    for (std::size_t i = 0; i < node.clients.size(); ++i) {
      add(CallbackKind::Client, i, client_label(node, i));
    }
  }
  return out;
}

std::vector<EffectSpec>* callback_effects(ScenarioSpec& spec,
                                          const CallbackTarget& target) {
  auto& node = spec.nodes[target.node];
  switch (target.kind) {
    case CallbackKind::Timer: return &node.timers[target.index].effects;
    case CallbackKind::Subscription:
      return &node.subscriptions[target.index].effects;
    case CallbackKind::Service: return &node.services[target.index].effects;
    case CallbackKind::Client: return &node.clients[target.index].effects;
  }
  return nullptr;
}

DurationDistribution* callback_demand(ScenarioSpec& spec,
                                      const CallbackTarget& target) {
  auto& node = spec.nodes[target.node];
  switch (target.kind) {
    case CallbackKind::Timer: return &node.timers[target.index].demand;
    case CallbackKind::Subscription:
      return &node.subscriptions[target.index].demand;
    case CallbackKind::Service: return &node.services[target.index].demand;
    case CallbackKind::Client: return &node.clients[target.index].demand;
  }
  return nullptr;
}

/// Fisher-Yates permutation of [0, n) drawn from `rng`.
std::vector<std::size_t> shuffled_indices(std::size_t n, Rng& rng) {
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(order[i - 1], order[j]);
  }
  return order;
}

}  // namespace

std::string_view to_string(MutationKind kind) {
  switch (kind) {
    case MutationKind::DropEdge: return "drop-edge";
    case MutationKind::AddEdge: return "add-edge";
    case MutationKind::RetimeTimer: return "retime-timer";
    case MutationKind::ScaleExecTime: return "scale-exec-time";
    case MutationKind::Reprioritize: return "reprioritize";
  }
  return "unknown";
}

std::optional<MutationKind> mutation_kind_from_string(std::string_view name) {
  for (const auto kind :
       {MutationKind::DropEdge, MutationKind::AddEdge,
        MutationKind::RetimeTimer, MutationKind::ScaleExecTime,
        MutationKind::Reprioritize}) {
    if (name == to_string(kind)) return kind;
  }
  return std::nullopt;
}

MutationResult ScenarioGenerator::mutate(const ScenarioSpec& spec,
                                         std::uint64_t seed,
                                         MutationKind kind) const {
  MutationResult result;
  result.kind = kind;
  result.spec = spec;
  Rng rng(seed * 0xbf58476d1ce4e5b9ULL + 0x94d049bb133111ebULL);

  const GroundTruth truth = build_ground_truth(spec);
  const auto base_edges = dag_edge_set(truth.dag);
  const auto base_vertices = dag_vertex_keys(truth.dag);

  switch (kind) {
    case MutationKind::DropEdge: {
      // Candidate publish effects of live callbacks; accepted only when
      // erasing one actually changes the ground-truth DAG (a publish that
      // nobody consumes is not an edge).
      struct DropCandidate {
        CallbackTarget target;
        std::size_t effect = 0;
      };
      std::vector<DropCandidate> candidates;
      for (const auto& target : live_callbacks(spec, truth, false)) {
        ScenarioSpec probe = spec;
        const auto* effects = callback_effects(probe, target);
        for (std::size_t e = 0; e < effects->size(); ++e) {
          if ((*effects)[e].kind == EffectSpec::Kind::Publish) {
            candidates.push_back(DropCandidate{target, e});
          }
        }
      }
      for (const auto ci : shuffled_indices(candidates.size(), rng)) {
        const auto& candidate = candidates[ci];
        ScenarioSpec mutant = spec;
        auto* effects = callback_effects(mutant, candidate.target);
        const EffectSpec removed = (*effects)[candidate.effect];
        effects->erase(effects->begin() +
                       static_cast<std::ptrdiff_t>(candidate.effect));
        if (!validate_spec(mutant).empty()) continue;
        const GroundTruth mutated = build_ground_truth(mutant);
        if (dag_edge_set(mutated.dag) == base_edges &&
            dag_vertex_keys(mutated.dag) == base_vertices) {
          continue;
        }
        result.applied = true;
        result.spec = std::move(mutant);
        result.node = spec.nodes[candidate.target.node].name;
        result.label = candidate.target.label;
        result.callback_kind = candidate.target.kind;
        result.callback_index = candidate.target.index;
        result.effect_index = candidate.effect;
        result.removed_effect = removed;
        result.topic = removed.topic;
        result.description = "dropped publish of " + removed.topic +
                             " from " + result.label;
        return result;
      }
      result.description = "no droppable publish changes the DAG";
      return result;
    }

    case MutationKind::AddEdge: {
      // Topics something live actually produces (publish effects of live
      // callbacks, fused sync outputs whose members are all live, external
      // inputs) — subscribing to one is guaranteed to add a live vertex
      // and edge, and can never create a cycle because the new
      // subscription publishes nothing.
      std::set<std::string> produced;
      for (const auto& input : spec.external_inputs) {
        produced.insert(input.topic);
      }
      {
        ScenarioSpec probe = spec;
        for (const auto& target : live_callbacks(spec, truth, true)) {
          for (const auto& effect : *callback_effects(probe, target)) {
            if (effect.kind == EffectSpec::Kind::Publish) {
              produced.insert(effect.topic);
            }
          }
        }
      }
      for (const auto& node : spec.nodes) {
        for (const auto& group : node.sync_groups) {
          bool all_live = !group.members.empty();
          for (const auto mi : group.members) {
            all_live = all_live &&
                       truth.callback_labels.count(
                           subscription_label(node, mi)) > 0;
          }
          if (all_live) produced.insert(group.output_topic);
        }
      }
      if (produced.empty() || spec.nodes.empty()) {
        result.description = "no produced topic to subscribe to";
        return result;
      }
      const std::vector<std::string> topics(produced.begin(), produced.end());
      const auto& topic = topics[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(topics.size()) - 1))];
      const auto ni = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(spec.nodes.size()) - 1));

      ScenarioSpec mutant = spec;
      auto& node = mutant.nodes[ni];
      SubscriptionSpec sub;
      sub.topic = topic;
      sub.demand = DurationDistribution::constant(Duration::ms_f(
          rng.uniform(options_.min_demand_ms, options_.max_demand_ms)));
      node.subscriptions.push_back(sub);
      if (!validate_spec(mutant).empty()) {
        result.description = "added subscription failed validation";
        return result;
      }
      const GroundTruth mutated = build_ground_truth(mutant);
      if (dag_edge_set(mutated.dag) == base_edges &&
          dag_vertex_keys(mutated.dag) == base_vertices) {
        result.description = "added subscription left the DAG unchanged";
        return result;
      }
      result.applied = true;
      result.node = spec.nodes[ni].name;
      result.callback_kind = CallbackKind::Subscription;
      result.callback_index = mutant.nodes[ni].subscriptions.size() - 1;
      result.label = subscription_label(mutant.nodes[ni],
                                        result.callback_index);
      result.topic = topic;
      result.spec = std::move(mutant);
      result.description = "added subscription " + result.label + " on " +
                           topic;
      return result;
    }

    case MutationKind::RetimeTimer: {
      std::vector<CallbackTarget> timers;
      for (auto& target : live_callbacks(spec, truth, false)) {
        if (target.kind == CallbackKind::Timer) timers.push_back(target);
      }
      for (const auto ti : shuffled_indices(timers.size(), rng)) {
        const auto& target = timers[ti];
        const Duration old_period =
            spec.nodes[target.node].timers[target.index].period;
        // Double when the slower cadence still fits enough instances into
        // the run (first fire is one period in), otherwise halve.
        Duration new_period = Duration{old_period.count_ns() * 2};
        if (new_period.count_ns() * 4 > spec.run_duration.count_ns()) {
          new_period = Duration{std::max<std::int64_t>(
              old_period.count_ns() / 2, Duration::ms(1).count_ns())};
        }
        if (new_period == old_period) continue;
        ScenarioSpec mutant = spec;
        mutant.nodes[target.node].timers[target.index].period = new_period;
        result.applied = true;
        result.spec = std::move(mutant);
        result.node = spec.nodes[target.node].name;
        result.label = target.label;
        result.callback_kind = CallbackKind::Timer;
        result.callback_index = target.index;
        result.old_period = old_period;
        result.new_period = new_period;
        result.description =
            "retimed " + result.label + " from " +
            std::to_string(old_period.to_ms()) + "ms to " +
            std::to_string(new_period.to_ms()) + "ms";
        return result;
      }
      result.description = "no live timer to retime";
      return result;
    }

    case MutationKind::ScaleExecTime: {
      const auto targets = live_callbacks(spec, truth, false);
      if (targets.empty()) {
        result.description = "no live callback to scale";
        return result;
      }
      const auto& target = targets[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(targets.size()) - 1))];
      ScenarioSpec mutant = spec;
      auto* demand = callback_demand(mutant, target);
      *demand = demand->scaled(kExecMutationScale);
      result.applied = true;
      result.spec = std::move(mutant);
      result.node = spec.nodes[target.node].name;
      result.label = target.label;
      result.callback_kind = target.kind;
      result.callback_index = target.index;
      result.exec_scale = kExecMutationScale;
      result.description = "scaled demand of " + result.label + " by " +
                           std::to_string(kExecMutationScale);
      return result;
    }

    case MutationKind::Reprioritize: {
      std::set<std::size_t> live_nodes;
      for (const auto& target : live_callbacks(spec, truth, true)) {
        live_nodes.insert(target.node);
      }
      if (live_nodes.empty()) {
        result.description = "no live node to reprioritize";
        return result;
      }
      const std::vector<std::size_t> nodes(live_nodes.begin(),
                                           live_nodes.end());
      const auto ni = nodes[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(nodes.size()) - 1))];
      ScenarioSpec mutant = spec;
      result.old_priority = mutant.nodes[ni].priority;
      result.new_priority = result.old_priority == 0 ? 1 : 0;
      mutant.nodes[ni].priority = result.new_priority;
      result.applied = true;
      result.node = spec.nodes[ni].name;
      result.spec = std::move(mutant);
      result.description = "flipped priority of " + result.node + " from " +
                           std::to_string(result.old_priority) + " to " +
                           std::to_string(result.new_priority);
      return result;
    }
  }
  return result;
}

}  // namespace tetra::scenario
