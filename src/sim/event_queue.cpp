#include "sim/event_queue.hpp"

namespace tetra::sim {

EventHandle EventQueue::schedule(TimePoint t, Action action) {
  auto cancelled = std::make_shared<bool>(false);
  heap_.push(Entry{t, next_seq_++, std::move(action), cancelled});
  ++live_;
  return EventHandle{cancelled};
}

void EventQueue::post(TimePoint t, Action action) {
  heap_.push(Entry{t, next_seq_++, std::move(action), nullptr});
  ++live_;
}

void EventQueue::cancel(EventHandle& handle) {
  if (handle.state_ && !*handle.state_) {
    *handle.state_ = true;
    --live_;
  }
  handle.state_.reset();
}

void EventQueue::drop_dead_prefix() {
  while (!heap_.empty() && heap_.top().cancelled != nullptr &&
         *heap_.top().cancelled) {
    heap_.pop();
  }
}

TimePoint EventQueue::next_time() const {
  // The heap may hold a cancelled prefix; dropping it is observationally
  // const (live events are unaffected).
  auto* self = const_cast<EventQueue*>(this);
  self->drop_dead_prefix();
  if (heap_.empty()) return TimePoint::max();
  return heap_.top().time;
}

bool EventQueue::pop_and_run(TimePoint& now) {
  drop_dead_prefix();
  if (heap_.empty()) return false;
  // Moving the action out of the top entry is safe: the heap comparator
  // only reads (time, seq), which stay intact until the pop below.
  Entry top = std::move(const_cast<Entry&>(heap_.top()));
  heap_.pop();
  --live_;
  if (top.cancelled != nullptr) {
    *top.cancelled = true;  // marks as consumed so late cancels are no-ops
  }
  now = top.time;
  top.action();
  return true;
}

}  // namespace tetra::sim
