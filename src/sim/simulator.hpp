// The simulation executive: owns the clock and the event queue, and runs
// events until a horizon or until the model quiesces.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/event_queue.hpp"
#include "support/time.hpp"

namespace tetra::sim {

/// Single-clock discrete-event simulator. All substrate components hold a
/// reference to one Simulator and schedule their activity through it.
class Simulator {
 public:
  /// Current simulation time (monotonic, ns).
  TimePoint now() const { return now_; }

  /// Schedules `action` at the absolute time `t` (must be >= now()).
  EventHandle at(TimePoint t, EventQueue::Action action);

  /// Schedules `action` after a relative delay (must be >= 0).
  EventHandle after(Duration delay, EventQueue::Action action);

  /// Fire-and-forget forms of at()/after(): no cancellation handle, no
  /// per-event handle allocation.
  void post_at(TimePoint t, EventQueue::Action action);
  void post_after(Duration delay, EventQueue::Action action);

  /// Cancels a previously scheduled event (no-op if already run).
  void cancel(EventHandle& handle) { queue_.cancel(handle); }

  /// Runs all events with time <= horizon. Events scheduled during the run
  /// are processed too if they fall within the horizon. The clock is left
  /// at `horizon` afterwards (matching "the apps ran for N seconds").
  void run_until(TimePoint horizon);

  /// Runs until the queue is empty (use only with self-terminating models).
  void run_to_completion();

  /// Runs exactly one event if any is pending; returns false otherwise.
  bool step();

  bool idle() const { return queue_.empty(); }
  std::size_t pending_events() const { return queue_.size(); }
  std::uint64_t executed_events() const { return executed_; }

 private:
  EventQueue queue_;
  TimePoint now_ = TimePoint::zero();
  std::uint64_t executed_ = 0;
};

}  // namespace tetra::sim
