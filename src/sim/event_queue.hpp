// Discrete-event simulation core: a time-ordered queue of cancellable
// events. Everything in the substrate (scheduler quanta, DDS delivery,
// timer expiry) is driven by this queue.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "support/time.hpp"

namespace tetra::sim {

/// Opaque handle used to cancel a scheduled event. Default-constructed
/// handles refer to nothing and are safe to cancel.
class EventHandle {
 public:
  EventHandle() = default;
  bool valid() const { return state_ != nullptr && !*state_; }

 private:
  friend class EventQueue;
  explicit EventHandle(std::shared_ptr<bool> state) : state_(std::move(state)) {}
  std::shared_ptr<bool> state_;  // *state_ == true means cancelled
};

/// Min-heap of (time, insertion-sequence) ordered events. Ties are broken
/// by insertion order so simulation outcomes are deterministic.
class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Schedules `action` at absolute time `t`; returns a cancellation handle.
  EventHandle schedule(TimePoint t, Action action);

  /// Fire-and-forget scheduling: no cancellation handle, and none of the
  /// handle's allocation cost — the fast path for high-volume schedulers
  /// (the predict:: model replay posts one event per sample delivery).
  void post(TimePoint t, Action action);

  /// Marks the event as cancelled; it will be skipped when popped.
  /// Cancelling an already-cancelled/run/empty handle is a no-op.
  void cancel(EventHandle& handle);

  bool empty() const { return live_ == 0; }
  std::size_t size() const { return live_; }

  /// Time of the earliest live event; TimePoint::max() when empty.
  TimePoint next_time() const;

  /// Pops and runs the earliest live event; returns false if none.
  /// `now` receives the event's timestamp before the action runs.
  bool pop_and_run(TimePoint& now);

 private:
  struct Entry {
    TimePoint time;
    std::uint64_t seq;
    Action action;
    std::shared_ptr<bool> cancelled;  ///< nullptr for post()ed events
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void drop_dead_prefix();

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
};

}  // namespace tetra::sim
