#include "sim/simulator.hpp"

#include <stdexcept>

namespace tetra::sim {

EventHandle Simulator::at(TimePoint t, EventQueue::Action action) {
  if (t < now_) {
    throw std::logic_error("Simulator::at: scheduling in the past");
  }
  return queue_.schedule(t, std::move(action));
}

EventHandle Simulator::after(Duration delay, EventQueue::Action action) {
  if (delay < Duration::zero()) {
    throw std::logic_error("Simulator::after: negative delay");
  }
  return queue_.schedule(now_ + delay, std::move(action));
}

void Simulator::post_at(TimePoint t, EventQueue::Action action) {
  if (t < now_) {
    throw std::logic_error("Simulator::post_at: scheduling in the past");
  }
  queue_.post(t, std::move(action));
}

void Simulator::post_after(Duration delay, EventQueue::Action action) {
  if (delay < Duration::zero()) {
    throw std::logic_error("Simulator::post_after: negative delay");
  }
  queue_.post(now_ + delay, std::move(action));
}

void Simulator::run_until(TimePoint horizon) {
  // now_ is passed by reference so the clock reads correctly *inside* the
  // event actions, not just after they return.
  while (!queue_.empty() && queue_.next_time() <= horizon) {
    if (!queue_.pop_and_run(now_)) break;
    ++executed_;
  }
  if (horizon > now_) now_ = horizon;
}

void Simulator::run_to_completion() {
  while (queue_.pop_and_run(now_)) {
    ++executed_;
  }
}

bool Simulator::step() {
  if (!queue_.pop_and_run(now_)) return false;
  ++executed_;
  return true;
}

}  // namespace tetra::sim
