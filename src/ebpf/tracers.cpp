#include "ebpf/tracers.hpp"

#include <algorithm>

#include "telemetry/metrics.hpp"
#include "trace/merge.hpp"
#include "trace/serialize.hpp"

namespace tetra::ebpf {

// -------------------------------------------------------- Ros2InitTracer --

Ros2InitTracer::Ros2InitTracer(ros2::Context& ctx,
                               std::shared_ptr<PidMap> traced_pids,
                               ProbeCostModel cost_model,
                               overhead::OverheadInjector* injector)
    : ctx_(ctx),
      traced_pids_(std::move(traced_pids)),
      cost_model_(cost_model),
      injector_(injector) {}

void Ros2InitTracer::attach() {
  attached_ = true;
  ctx_.hooks().rmw_create_node = [this](TimePoint t, Pid pid,
                                        const std::string& node_name) {
    if (!attached_) return;
    traced_pids_->update(pid, 1);
    const TimePoint ts = injector_ != nullptr ? injector_->stamp(t, pid) : t;
    buffer_.push(trace::make_node_event(ts, pid, node_name));
    program_.account_run(cost_model_, /*map_ops=*/1, /*submits=*/1);
    if (injector_ != nullptr) injector_->charge(pid);
  };
}

void Ros2InitTracer::detach() {
  attached_ = false;
  ctx_.hooks().rmw_create_node = nullptr;
}

std::vector<ProgramReport> Ros2InitTracer::program_reports() const {
  return {{program_.name(), program_.target(), program_.run_count(),
           program_.run_time()}};
}

// ---------------------------------------------------------- Ros2RtTracer --

Ros2RtTracer::Ros2RtTracer(ros2::Context& ctx,
                           std::shared_ptr<PidMap> traced_pids)
    : Ros2RtTracer(ctx, std::move(traced_pids), Options{}) {}

Ros2RtTracer::Ros2RtTracer(ros2::Context& ctx,
                           std::shared_ptr<PidMap> traced_pids, Options options,
                           ProbeCostModel cost_model,
                           overhead::OverheadInjector* injector)
    : ctx_(ctx),
      traced_pids_(std::move(traced_pids)),
      options_(options),
      cost_model_(cost_model),
      injector_(injector),
      buffer_(options.buffer_capacity) {
  auto add = [this](const char* name, AttachType type, const char* target) {
    programs_.emplace(name, Program{name, type, target});
  };
  add("tetra_execute_entry", AttachType::Uprobe, "rclcpp:execute_*");
  add("tetra_execute_exit", AttachType::Uretprobe, "rclcpp:execute_*");
  add("tetra_rcl_timer_call", AttachType::Uprobe, "rcl:rcl_timer_call");
  add("tetra_rmw_take_entry", AttachType::Uprobe, "rmw_cyclonedds_cpp:rmw_take_*");
  add("tetra_rmw_take_exit", AttachType::Uretprobe, "rmw_cyclonedds_cpp:rmw_take_*");
  add("tetra_take_type_erased", AttachType::Uretprobe,
      "rclcpp:take_type_erased_response");
  add("tetra_msg_filter_op", AttachType::Uprobe, "message_filters:operator()");
  add("tetra_dds_write", AttachType::Uprobe, "cyclonedds:dds_write_impl");
}

bool Ros2RtTracer::pid_allowed(Pid pid) const {
  if (!options_.filter_by_traced_pids) return true;
  return traced_pids_->contains(pid);
}

void Ros2RtTracer::submit(trace::TraceEvent event, Program& program,
                          int map_ops) {
  buffer_.push(std::move(event));
  program.account_run(cost_model_, map_ops, /*submits=*/1);
}

void Ros2RtTracer::attach() {
  attached_ = true;
  ros2::Ros2Hooks& hooks = ctx_.hooks();

  hooks.execute_callback = [this](TimePoint t, Pid pid, CallbackKind kind,
                                  bool is_entry) {
    if (!attached_ || !pid_allowed(pid)) return;
    if (injector_ != nullptr) {
      // Instance boundary: the entry probe decides (1-in-K) whether this
      // instance is traced; suppressed instances pay only the early-exit
      // cost on every probe until the exit hook closes the window.
      if (is_entry) {
        if (!injector_->begin_instance(pid)) {
          injector_->charge_skip(pid);
          return;
        }
      } else {
        const bool traced = injector_->instance_traced(pid);
        injector_->end_instance(pid);
        if (!traced) {
          injector_->charge_skip(pid);
          return;
        }
      }
    }
    Program& program = programs_.at(is_entry ? "tetra_execute_entry"
                                             : "tetra_execute_exit");
    const TimePoint ts = stamped(t, pid);
    submit(is_entry ? trace::make_callback_start(ts, pid, kind)
                    : trace::make_callback_end(ts, pid, kind),
           program, /*map_ops=*/0);
    charge(pid);
  };

  hooks.rcl_timer_call = [this](TimePoint t, Pid pid, CallbackId id) {
    if (!attached_ || !pid_allowed(pid)) return;
    if (sampled_out(pid)) return;
    submit(trace::make_timer_call(stamped(t, pid), pid, id),
           programs_.at("tetra_rcl_timer_call"), /*map_ops=*/0);
    charge(pid);
  };

  // The srcTS technique (paper §III-A): the entry probe can read the
  // callback id and topic from the arguments, but the source timestamp is
  // an out-parameter — only its address is known. Stash argument data
  // keyed by (pid, address); the uretprobe reads the value at the stashed
  // address and assembles the full P6/P10/P13 event.
  hooks.rmw_take_entry = [this](TimePoint, Pid pid, trace::TakeKind kind,
                                std::uint64_t addr, CallbackId cb,
                                const std::string& topic) {
    if (!attached_ || !pid_allowed(pid)) return;
    if (sampled_out(pid)) return;
    take_stash_.update(stash_key(pid, addr), StashValue{kind, cb, topic});
    programs_.at("tetra_rmw_take_entry")
        .account_run(cost_model_, /*map_ops=*/1, /*submits=*/0);
    charge(pid);
  };

  hooks.rmw_take_exit = [this](TimePoint t, Pid pid, trace::TakeKind kind,
                               std::uint64_t addr, TimePoint src_ts) {
    if (!attached_ || !pid_allowed(pid)) return;
    if (sampled_out(pid)) return;
    Program& program = programs_.at("tetra_rmw_take_exit");
    const StashKey key = stash_key(pid, addr);
    auto stashed = take_stash_.lookup(key);
    if (!stashed.has_value()) {
      // Exit without a matching entry (tracer attached mid-call): drop.
      program.account_run(cost_model_, /*map_ops=*/1, /*submits=*/0);
      charge(pid);
      return;
    }
    take_stash_.erase(key);
    submit(trace::make_take(stamped(t, pid), pid, kind, stashed->callback_id,
                            stashed->topic, src_ts),
           program, /*map_ops=*/2);
    charge(pid);
  };

  hooks.take_type_erased_response = [this](TimePoint t, Pid pid, bool taken) {
    if (!attached_ || !pid_allowed(pid)) return;
    if (sampled_out(pid)) return;
    submit(trace::make_take_type_erased(stamped(t, pid), pid, taken),
           programs_.at("tetra_take_type_erased"), /*map_ops=*/0);
    charge(pid);
  };

  hooks.message_filter_operator = [this](TimePoint t, Pid pid, CallbackId id) {
    if (!attached_ || !pid_allowed(pid)) return;
    if (sampled_out(pid)) return;
    submit(trace::make_sync_operator(stamped(t, pid), pid, id),
           programs_.at("tetra_msg_filter_op"), /*map_ops=*/0);
    charge(pid);
  };

  ctx_.domain().set_hooks(dds::DdsHooks{
      [this](TimePoint t, Pid pid, const std::string& topic, TimePoint src_ts,
             std::size_t) {
        if (!attached_ || !pid_allowed(pid)) return;
        if (sampled_out(pid)) return;
        submit(trace::make_dds_write(stamped(t, pid), pid, topic, src_ts),
               programs_.at("tetra_dds_write"), /*map_ops=*/0);
        charge(pid);
      }});
}

void Ros2RtTracer::detach() {
  attached_ = false;
  ros2::Ros2Hooks& hooks = ctx_.hooks();
  hooks.execute_callback = nullptr;
  hooks.rcl_timer_call = nullptr;
  hooks.rmw_take_entry = nullptr;
  hooks.rmw_take_exit = nullptr;
  hooks.take_type_erased_response = nullptr;
  hooks.message_filter_operator = nullptr;
  ctx_.domain().set_hooks({});
}

std::vector<ProgramReport> Ros2RtTracer::program_reports() const {
  std::vector<ProgramReport> out;
  out.reserve(programs_.size());
  for (const auto& [name, program] : programs_) {
    out.push_back({program.name(), program.target(), program.run_count(),
                   program.run_time()});
  }
  return out;
}

Duration Ros2RtTracer::total_run_time() const {
  Duration total = Duration::zero();
  for (const auto& [name, program] : programs_) total += program.run_time();
  return total;
}

// ----------------------------------------------------------- KernelTracer --

KernelTracer::KernelTracer(sched::Machine& machine,
                           std::shared_ptr<PidMap> traced_pids)
    : KernelTracer(machine, std::move(traced_pids), Options{}) {}

KernelTracer::KernelTracer(sched::Machine& machine,
                           std::shared_ptr<PidMap> traced_pids, Options options,
                           ProbeCostModel cost_model)
    : machine_(machine),
      traced_pids_(std::move(traced_pids)),
      options_(options),
      cost_model_(cost_model),
      buffer_(options.buffer_capacity) {}

void KernelTracer::attach() {
  attached_ = true;
  sched::KernelHooks hooks;
  hooks.sched_switch = [this](TimePoint t, const trace::SchedSwitchInfo& info) {
    if (!attached_) return;
    ++seen_;
    int map_ops = 0;
    bool record = true;
    if (options_.filter_by_traced_pids) {
      // In-kernel filtering: record only switches involving a traced PID.
      map_ops = 2;
      record = traced_pids_->contains(info.prev_pid) ||
               traced_pids_->contains(info.next_pid);
    }
    if (record) {
      buffer_.push(trace::make_sched_switch(t, info));
      ++recorded_;
    }
    switch_program_.account_run(cost_model_, map_ops, record ? 1 : 0);
  };
  hooks.sched_wakeup = [this](TimePoint t, const trace::SchedWakeupInfo& info) {
    if (!attached_ || !options_.record_wakeups) return;
    ++seen_;
    int map_ops = 0;
    bool record = true;
    if (options_.filter_by_traced_pids) {
      map_ops = 1;
      record = traced_pids_->contains(info.woken_pid);
    }
    if (record) {
      buffer_.push(trace::make_sched_wakeup(t, info));
      ++recorded_;
    }
    wakeup_program_.account_run(cost_model_, map_ops, record ? 1 : 0);
  };
  machine_.set_kernel_hooks(std::move(hooks));
}

void KernelTracer::detach() {
  attached_ = false;
  machine_.set_kernel_hooks({});
}

std::vector<ProgramReport> KernelTracer::program_reports() const {
  return {{switch_program_.name(), switch_program_.target(),
           switch_program_.run_count(), switch_program_.run_time()},
          {wakeup_program_.name(), wakeup_program_.target(),
           wakeup_program_.run_count(), wakeup_program_.run_time()}};
}

Duration KernelTracer::total_run_time() const {
  return switch_program_.run_time() + wakeup_program_.run_time();
}

// ------------------------------------------------------------ TracerSuite --

TracerSuite::TracerSuite(ros2::Context& ctx) : TracerSuite(ctx, Options{}) {}

TracerSuite::TracerSuite(ros2::Context& ctx, Options options)
    : ctx_(ctx), traced_pids_(std::make_shared<PidMap>(4096)) {
  if (options.probe_profile.active()) {
    injector_ = std::make_unique<overhead::OverheadInjector>(
        ctx_.machine(), options.probe_profile);
  }
  init_ = std::make_unique<Ros2InitTracer>(ctx_, traced_pids_,
                                           options.cost_model, injector_.get());
  rt_ = std::make_unique<Ros2RtTracer>(ctx_, traced_pids_, options.rt,
                                        options.cost_model, injector_.get());
  // Kernel tracepoints are not injected: sched events already shift
  // because the injected debt physically delays the traced threads.
  kernel_ = std::make_unique<KernelTracer>(ctx_.machine(), traced_pids_,
                                           options.kernel, options.cost_model);
}

void TracerSuite::start_init() { init_->attach(); }

trace::EventVector TracerSuite::stop_init() {
  init_->detach();
  trace::EventVector events = init_->buffer().drain();
  bytes_collected_ += trace::binary_footprint_bytes(events);
  events_collected_ += events.size();
  static telemetry::Counter& captured_counter =
      telemetry::MetricsRegistry::global().counter("trace.events_captured");
  captured_counter.add(events.size());
  return events;
}

void TracerSuite::start_runtime() {
  runtime_started_ = ctx_.simulator().now();
  rt_->buffer().clear();
  kernel_->buffer().clear();
  rt_->attach();
  kernel_->attach();
}

trace::EventVector TracerSuite::stop_runtime() {
  rt_->detach();
  kernel_->detach();
  traced_elapsed_ += ctx_.simulator().now() - runtime_started_;
  trace::EventVector rt_events = rt_->buffer().drain();
  trace::EventVector kernel_events = kernel_->buffer().drain();
  if (injector_ != nullptr && injector_->injects()) {
    // Stamped timestamps are monotone per pid but not across pids (a
    // thread deep in probe debt stamps ahead of a lightly-probed one);
    // merge_sorted below requires globally sorted inputs. The stable sort
    // preserves per-pid causal order on ties.
    std::stable_sort(rt_events.begin(), rt_events.end(),
                     [](const trace::TraceEvent& a, const trace::TraceEvent& b) {
                       return a.time < b.time;
                     });
  }
  bytes_collected_ += trace::binary_footprint_bytes(rt_events) +
                      trace::binary_footprint_bytes(kernel_events);
  events_collected_ += rt_events.size() + kernel_events.size();
  static telemetry::Counter& captured_counter =
      telemetry::MetricsRegistry::global().counter("trace.events_captured");
  captured_counter.add(rt_events.size() + kernel_events.size());
  return trace::merge_sorted({std::move(rt_events), std::move(kernel_events)});
}

OverheadReport TracerSuite::overhead_report() const {
  OverheadReport report;
  report.ebpf_run_time = init_->total_run_time() + rt_->total_run_time() +
                         kernel_->total_run_time();
  report.elapsed = traced_elapsed_;
  report.app_busy_time = ctx_.machine().total_busy_time();
  report.trace_bytes = bytes_collected_;
  report.events = events_collected_;
  if (injector_ != nullptr) {
    report.injected_time = injector_->injected_total();
    report.probe_hits = injector_->charges();
    report.instances_total = injector_->instances_total();
    report.instances_sampled = injector_->instances_sampled();
  }
  return report;
}

std::vector<ProgramReport> TracerSuite::program_reports() const {
  std::vector<ProgramReport> out = init_->program_reports();
  for (auto& r : rt_->program_reports()) out.push_back(r);
  for (auto& r : kernel_->program_reports()) out.push_back(r);
  return out;
}

}  // namespace tetra::ebpf
