// BPF map analogue: bounded-capacity key/value store. The paper uses maps
// for (i) stashing the srcTS out-parameter address between rmw_take entry
// and exit, and (ii) sharing the traced-PID set between the ROS2-INIT
// tracer and the sched_switch handler. Updates fail when the map is full,
// exactly like BPF_HASH with max_entries.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

namespace tetra::ebpf {

template <typename K, typename V>
class BpfMap {
 public:
  explicit BpfMap(std::size_t max_entries = 10240) : max_entries_(max_entries) {}

  /// Inserts or overwrites; returns false (E2BIG analogue) when inserting
  /// a new key into a full map.
  bool update(const K& key, V value) {
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      it->second = std::move(value);
      return true;
    }
    if (entries_.size() >= max_entries_) {
      ++failed_updates_;
      return false;
    }
    entries_.emplace(key, std::move(value));
    return true;
  }

  std::optional<V> lookup(const K& key) const {
    auto it = entries_.find(key);
    if (it == entries_.end()) return std::nullopt;
    return it->second;
  }

  bool contains(const K& key) const { return entries_.count(key) > 0; }

  bool erase(const K& key) { return entries_.erase(key) > 0; }

  void clear() { entries_.clear(); }

  std::size_t size() const { return entries_.size(); }
  std::size_t max_entries() const { return max_entries_; }
  std::uint64_t failed_updates() const { return failed_updates_; }

 private:
  std::size_t max_entries_;
  std::unordered_map<K, V> entries_;
  std::uint64_t failed_updates_ = 0;
};

}  // namespace tetra::ebpf
