// eBPF program bookkeeping: per-program run counts and simulated run time,
// the numbers `bpftool prog show` reports and the paper's overhead
// evaluation quotes (0.008 CPU cores on average for all probes together).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/time.hpp"

namespace tetra::ebpf {

/// Cost model for one simulated eBPF program execution. Defaults are in
/// line with published uprobe/tracepoint overhead measurements (uprobes
/// cost ~1-2 us including the trap; tracepoints are tens of ns).
struct ProbeCostModel {
  Duration uprobe_run = Duration::ns(1500);
  Duration uretprobe_run = Duration::ns(1800);
  Duration tracepoint_run = Duration::ns(250);
  Duration map_op = Duration::ns(60);
  Duration perf_submit = Duration::ns(400);
};

enum class AttachType : std::uint8_t { Uprobe, Uretprobe, Tracepoint };

/// One loaded program attached to one probe site.
class Program {
 public:
  Program(std::string name, AttachType attach, std::string target)
      : name_(std::move(name)), attach_(attach), target_(std::move(target)) {}

  const std::string& name() const { return name_; }
  AttachType attach_type() const { return attach_; }
  const std::string& target() const { return target_; }

  std::uint64_t run_count() const { return run_count_; }
  Duration run_time() const { return run_time_; }

  /// Records one execution: base cost by attach type plus per-operation
  /// costs (map operations, perf submissions) the handler performed.
  void account_run(const ProbeCostModel& model, int map_ops, int submits) {
    ++run_count_;
    switch (attach_) {
      case AttachType::Uprobe: run_time_ += model.uprobe_run; break;
      case AttachType::Uretprobe: run_time_ += model.uretprobe_run; break;
      case AttachType::Tracepoint: run_time_ += model.tracepoint_run; break;
    }
    run_time_ += model.map_op * map_ops;
    run_time_ += model.perf_submit * submits;
  }

 private:
  std::string name_;
  AttachType attach_;
  std::string target_;
  std::uint64_t run_count_ = 0;
  Duration run_time_ = Duration::zero();
};

/// Flat listing of program statistics (bpftool-style).
struct ProgramReport {
  std::string name;
  std::string target;
  std::uint64_t run_count = 0;
  Duration run_time = Duration::zero();
};

}  // namespace tetra::ebpf
