// The three tracers of the proposed framework (paper Fig. 1/Fig. 2):
//
//   TR_IN  (Ros2InitTracer)  — P1 only; discovers node names and the PIDs
//                              of their executor threads.
//   TR_RT  (Ros2RtTracer)    — P2..P16; runtime ROS2 events including the
//                              srcTS entry/exit stash technique.
//   TR_KN  (KernelTracer)    — sched_switch (+ sched_wakeup extension),
//                              PID-filtered via the BPF map TR_IN fills.
//
// Each tracer owns a perf buffer and per-program accounting. A TracerSuite
// wires all three to a ros2::Context and drives the Fig. 2 deployment
// cycle (init session, then segmented runtime sessions).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ebpf/bpf_map.hpp"
#include "ebpf/program.hpp"
#include "overhead/injector.hpp"
#include "overhead/profile.hpp"
#include "ros2/context.hpp"
#include "trace/trace_buffer.hpp"

namespace tetra::ebpf {

/// PID set shared between tracers (BPF map semantics).
using PidMap = BpfMap<Pid, std::uint8_t>;

/// TR_IN: probes rmw_create_node (P1).
class Ros2InitTracer {
 public:
  Ros2InitTracer(ros2::Context& ctx, std::shared_ptr<PidMap> traced_pids,
                 ProbeCostModel cost_model = {},
                 overhead::OverheadInjector* injector = nullptr);

  /// Installs the P1 uprobe handler. Must run before nodes are created.
  void attach();
  void detach();
  bool attached() const { return attached_; }

  trace::TraceBuffer& buffer() { return buffer_; }
  std::vector<ProgramReport> program_reports() const;
  Duration total_run_time() const { return program_.run_time(); }

 private:
  ros2::Context& ctx_;
  std::shared_ptr<PidMap> traced_pids_;
  ProbeCostModel cost_model_;
  overhead::OverheadInjector* injector_ = nullptr;
  Program program_{"tetra_p1_rmw_create_node", AttachType::Uprobe,
                   "rmw_cyclonedds_cpp:rmw_create_node"};
  trace::TraceBuffer buffer_{1u << 12};
  bool attached_ = false;
};

/// TR_RT: probes P2..P16 across rclcpp / rcl / rmw / cyclonedds /
/// message_filters. Optionally restricted to a PID set (the paper's
/// "filter events pertaining to one or more ROS2 nodes" debug feature).
class Ros2RtTracer {
 public:
  struct Options {
    /// When true, only events whose PID is in the traced-PID map are
    /// recorded (quick-debugging mode); default records all processes that
    /// cross the probed libraries.
    bool filter_by_traced_pids = false;
    std::size_t buffer_capacity = 1u << 22;
  };

  Ros2RtTracer(ros2::Context& ctx, std::shared_ptr<PidMap> traced_pids);
  Ros2RtTracer(ros2::Context& ctx, std::shared_ptr<PidMap> traced_pids,
               Options options, ProbeCostModel cost_model = {},
               overhead::OverheadInjector* injector = nullptr);

  void attach();
  void detach();
  bool attached() const { return attached_; }

  trace::TraceBuffer& buffer() { return buffer_; }
  std::vector<ProgramReport> program_reports() const;
  Duration total_run_time() const;

  /// Size of the in-flight srcTS stash map (should be ~0 when quiescent).
  std::size_t stash_size() const { return take_stash_.size(); }

 private:
  struct StashValue {
    trace::TakeKind kind;
    CallbackId callback_id;
    std::string topic;
  };
  /// Key: (pid, srcTS address). The address alone is not unique across
  /// processes — each process has its own stack.
  using StashKey = std::uint64_t;
  static StashKey stash_key(Pid pid, std::uint64_t addr) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(pid)) << 48) ^
           addr;
  }

  bool pid_allowed(Pid pid) const;
  void submit(trace::TraceEvent event, Program& program, int map_ops);

  /// Event timestamp as a probed backend would record it (hook time plus
  /// the thread's pending probe debt); hook time when tracing is free.
  TimePoint stamped(TimePoint t, Pid pid) const {
    return injector_ != nullptr ? injector_->stamp(t, pid) : t;
  }
  /// Charges one probe execution to the traced thread (no-op when free).
  void charge(Pid pid) {
    if (injector_ != nullptr) injector_->charge(pid);
  }
  /// True when 1-in-K sampling suppressed this probe hit for `pid`'s
  /// current callback instance (the probe early-exits; charges skip cost).
  bool sampled_out(Pid pid) {
    if (injector_ == nullptr || injector_->instance_traced(pid)) return false;
    injector_->charge_skip(pid);
    return true;
  }

  ros2::Context& ctx_;
  std::shared_ptr<PidMap> traced_pids_;
  Options options_;
  ProbeCostModel cost_model_;
  overhead::OverheadInjector* injector_ = nullptr;
  BpfMap<StashKey, StashValue> take_stash_{1024};
  std::map<std::string, Program> programs_;
  trace::TraceBuffer buffer_;
  bool attached_ = false;
};

/// TR_KN: sched_switch + sched_wakeup tracepoints with in-kernel PID
/// filtering through the shared PID map (paper §III-B: reduces the trace
/// footprint by orders of magnitude).
class KernelTracer {
 public:
  struct Options {
    bool filter_by_traced_pids = true;  ///< the ablation flips this off
    bool record_wakeups = true;         ///< paper §VII extension
    std::size_t buffer_capacity = 1u << 22;
  };

  KernelTracer(sched::Machine& machine, std::shared_ptr<PidMap> traced_pids);
  KernelTracer(sched::Machine& machine, std::shared_ptr<PidMap> traced_pids,
               Options options, ProbeCostModel cost_model = {});

  void attach();
  void detach();
  bool attached() const { return attached_; }

  trace::TraceBuffer& buffer() { return buffer_; }
  std::vector<ProgramReport> program_reports() const;
  Duration total_run_time() const;

  /// Events seen at the tracepoint (pre-filter) vs recorded (post-filter).
  std::uint64_t events_seen() const { return seen_; }
  std::uint64_t events_recorded() const { return recorded_; }

 private:
  sched::Machine& machine_;
  std::shared_ptr<PidMap> traced_pids_;
  Options options_;
  ProbeCostModel cost_model_;
  Program switch_program_{"tetra_sched_switch", AttachType::Tracepoint,
                          "sched:sched_switch"};
  Program wakeup_program_{"tetra_sched_wakeup", AttachType::Tracepoint,
                          "sched:sched_wakeup"};
  trace::TraceBuffer buffer_;
  std::uint64_t seen_ = 0;
  std::uint64_t recorded_ = 0;
  bool attached_ = false;
};

/// Overall tracing overhead summary (paper §VI "Tracing overheads").
struct OverheadReport {
  Duration ebpf_run_time = Duration::zero();  ///< total eBPF CPU time
  Duration elapsed = Duration::zero();        ///< observed wall-clock span
  Duration app_busy_time = Duration::zero();  ///< CPU consumed by workload
  std::size_t trace_bytes = 0;                ///< compact record footprint
  std::uint64_t events = 0;

  // Injected-overhead accounting (zero under the free profile) ------------
  /// Simulated time the probes consumed on the traced threads.
  Duration injected_time = Duration::zero();
  std::uint64_t probe_hits = 0;            ///< charged probe executions
  std::uint64_t instances_total = 0;       ///< callback instances observed
  std::uint64_t instances_sampled = 0;     ///< instances actually traced

  /// Average CPU cores consumed by the probes (bpftool-style).
  double cpu_cores() const {
    return elapsed > Duration::zero()
               ? static_cast<double>(ebpf_run_time.count_ns()) /
                     static_cast<double>(elapsed.count_ns())
               : 0.0;
  }
  /// Probe CPU as a fraction of application CPU (paper: 0.3%).
  double fraction_of_app_load() const {
    return app_busy_time > Duration::zero()
               ? static_cast<double>(ebpf_run_time.count_ns()) /
                     static_cast<double>(app_busy_time.count_ns())
               : 0.0;
  }
};

/// Drives the Fig. 2 deployment: TR_IN before app start, then segmented
/// TR_RT + TR_KN sessions whose traces land in a database or are returned
/// per segment.
class TracerSuite {
 public:
  struct Options {
    Ros2RtTracer::Options rt;
    KernelTracer::Options kernel;
    ProbeCostModel cost_model;
    /// Per-probe cost/sampling profile; the default "free" profile keeps
    /// the legacy zero-overhead behaviour.
    overhead::ProbeCostProfile probe_profile;
  };

  explicit TracerSuite(ros2::Context& ctx);
  TracerSuite(ros2::Context& ctx, Options options);

  Ros2InitTracer& init_tracer() { return *init_; }
  /// Non-null when the suite runs with an active (non-free) profile.
  const overhead::OverheadInjector* injector() const { return injector_.get(); }
  Ros2RtTracer& rt_tracer() { return *rt_; }
  KernelTracer& kernel_tracer() { return *kernel_; }
  std::shared_ptr<PidMap> traced_pids() { return traced_pids_; }

  /// Starts TR_IN (call before creating nodes).
  void start_init();
  /// Stops TR_IN; returns the init trace (P1 events).
  trace::EventVector stop_init();

  /// Starts TR_RT and TR_KN with empty buffers (one session segment).
  void start_runtime();
  /// Stops both and returns their merged, time-sorted trace.
  trace::EventVector stop_runtime();

  /// Overhead accounting over everything recorded so far.
  OverheadReport overhead_report() const;

  std::vector<ProgramReport> program_reports() const;

 private:
  ros2::Context& ctx_;
  std::shared_ptr<PidMap> traced_pids_;
  std::unique_ptr<overhead::OverheadInjector> injector_;
  std::unique_ptr<Ros2InitTracer> init_;
  std::unique_ptr<Ros2RtTracer> rt_;
  std::unique_ptr<KernelTracer> kernel_;
  TimePoint runtime_started_;
  Duration traced_elapsed_ = Duration::zero();
  std::size_t bytes_collected_ = 0;
  std::uint64_t events_collected_ = 0;
};

}  // namespace tetra::ebpf
