// The simulated multi-core machine and its preemptive priority scheduler.
//
// Faithfully reproduces the observable behaviour Algorithm 2 depends on:
// every context switch on every CPU emits a sched_switch record carrying
// (cpu, prev_pid, prev_prio, prev_state, next_pid, next_prio), and every
// block->ready transition emits a sched_wakeup record. Threads are
// dispatched to CPUs by priority, preempting lower-priority threads, with
// optional round-robin slicing among equal priorities.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "sched/thread.hpp"
#include "sim/simulator.hpp"
#include "support/ids.hpp"
#include "support/time.hpp"
#include "trace/event.hpp"

namespace tetra::sched {

/// Kernel tracepoint callbacks. The eBPF kernel tracer attaches here; the
/// raw hook sees *all* events (filtering happens in the tracer program,
/// as in the paper).
struct KernelHooks {
  std::function<void(TimePoint, const trace::SchedSwitchInfo&)> sched_switch;
  std::function<void(TimePoint, const trace::SchedWakeupInfo&)> sched_wakeup;
};

class Machine {
 public:
  struct Config {
    int num_cpus = 4;
    /// Round-robin slice for SchedPolicy::RoundRobin threads.
    Duration rr_slice = Duration::ms(4);
    /// First PID handed out (idle is kIdlePid).
    Pid first_pid = 1000;
  };

  Machine(sim::Simulator& sim, Config config);

  /// Creates a thread whose first continuation is `entry`; it becomes
  /// ready immediately and may start running in the current event.
  Thread& create_thread(ThreadConfig config, Thread::Continuation entry);

  sim::Simulator& simulator() { return sim_; }
  TimePoint now() const { return sim_.now(); }
  int num_cpus() const { return static_cast<int>(cpus_.size()); }

  Thread* thread_by_pid(Pid pid);
  const std::vector<std::unique_ptr<Thread>>& threads() const { return threads_; }

  /// Tracepoint registration (single consumer each, like one attached
  /// eBPF program; chain externally if needed).
  void set_kernel_hooks(KernelHooks hooks) { hooks_ = std::move(hooks); }

  /// The thread currently on `cpu`, or nullptr when idle.
  Thread* running_on(CpuId cpu) const;

  // --- statistics ---------------------------------------------------------
  std::uint64_t context_switches() const { return context_switches_; }
  std::uint64_t wakeups() const { return wakeups_; }
  /// Busy time summed over all threads, including in-flight segments.
  Duration total_busy_time() const;
  Duration idle_time(CpuId cpu) const;

 private:
  friend class Thread;

  struct Cpu {
    Thread* current = nullptr;      // nullptr = idle
    TimePoint switched_in_at;       // when current got the CPU
    TimePoint work_armed_at;        // when the pending completion was armed
    TimePoint idle_since;           // when the CPU last became idle
    Duration idle_accum = Duration::zero();
    sim::EventHandle completion;
    sim::EventHandle slice;
  };

  // Request handling (called by Thread).
  void request_from(Thread& thread);

  void enqueue_ready(Thread& thread, bool to_front);
  Thread* pop_ready_for(CpuId cpu);
  bool has_ready_at_or_above(int priority, CpuId cpu) const;
  void remove_from_ready(Thread& thread);

  /// Called when `thread` became ready: place it on an idle CPU, preempt a
  /// lower-priority thread, or queue it.
  void make_ready(Thread& thread, bool to_front);

  /// Runs the current thread of `cpu` until it has pending compute or the
  /// CPU goes idle. The heart of the scheduler.
  void service(CpuId cpu);

  /// Folds the thread's pending probe-overhead debt into its staged
  /// request so the debt is consumed as on-CPU time before the request
  /// takes effect.
  void consume_overhead(Thread& thread);

  void switch_to(CpuId cpu, Thread* next, trace::ThreadRunState prev_state);
  void preempt(CpuId cpu);
  void arm_completion(CpuId cpu);
  void arm_slice(CpuId cpu);
  void on_completion(CpuId cpu, Thread* expected);
  void on_slice_expiry(CpuId cpu, Thread* expected);
  void wake_internal(Thread& thread);

  void emit_switch(CpuId cpu, Thread* prev, trace::ThreadRunState prev_state,
                   Thread* next);
  void emit_wakeup(Thread& thread, CpuId target);

  bool allowed_on(const Thread& thread, CpuId cpu) const {
    return (thread.affinity_mask() >> cpu) & 1ULL;
  }

  sim::Simulator& sim_;
  Config config_;
  std::vector<Cpu> cpus_;
  std::vector<std::unique_ptr<Thread>> threads_;
  // Ready queues: highest priority first, FIFO within a priority.
  std::map<int, std::deque<Thread*>, std::greater<>> ready_;
  KernelHooks hooks_;
  std::uint64_t context_switches_ = 0;
  std::uint64_t wakeups_ = 0;
  Pid next_pid_;
  bool in_thread_context_ = false;
  Thread* context_thread_ = nullptr;
};

}  // namespace tetra::sched
