// Background (non-ROS2) processes. They serve two purposes in the
// reproduction: (i) generating preemptions so Algorithm 2 is exercised on
// fragmented callback executions, and (ii) producing the kernel-event
// volume that the paper's PID filtering reduces "by an order of three or
// more" (§III-B).
#pragma once

#include <string>
#include <vector>

#include "sched/machine.hpp"
#include "support/rng.hpp"

namespace tetra::sched {

/// Configuration of one background busy/sleep thread.
struct InterferenceConfig {
  std::string name = "background";
  int priority = 0;
  SchedPolicy policy = SchedPolicy::RoundRobin;
  std::uint64_t affinity_mask = ~0ULL;
  /// Busy-burst length distribution.
  DurationDistribution busy = DurationDistribution::uniform(
      Duration::us(50), Duration::us(500));
  /// Sleep length distribution between bursts.
  DurationDistribution idle = DurationDistribution::uniform(
      Duration::us(100), Duration::ms(2));
};

/// Spawns `count` background threads that loop busy-burst / sleep forever.
/// Returns their PIDs (useful for assertions about PID filtering).
std::vector<Pid> spawn_interference(Machine& machine, Rng& rng, int count,
                                    const InterferenceConfig& config);

}  // namespace tetra::sched
