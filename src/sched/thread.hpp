// Simulated OS threads. A thread's "program" is written in continuation
// style: from within its own running context it requests CPU time
// (compute), blocks waiting for an external wake, sleeps, or terminates.
// The Machine (scheduler) decides when it actually runs, emitting
// sched_switch events exactly like the kernel tracepoint would.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "support/ids.hpp"
#include "support/time.hpp"

namespace tetra::sched {

class Machine;

enum class ThreadState : std::uint8_t { Ready, Running, Blocked, Terminated };

/// Scheduling classes supported by the simulated kernel. Fifo runs to
/// block/preemption; RoundRobin additionally rotates among equal-priority
/// ready threads on a fixed time slice (a CFS-lite stand-in).
enum class SchedPolicy : std::uint8_t { Fifo, RoundRobin };

struct ThreadConfig {
  std::string name = "thread";
  /// Higher value = more important (mapped to sched_switch's prio field).
  int priority = 0;
  SchedPolicy policy = SchedPolicy::RoundRobin;
  /// Bitmask of CPUs this thread may run on (bit i = CPU i).
  std::uint64_t affinity_mask = ~0ULL;
};

/// One simulated thread. Created via Machine::create_thread; lifetime is
/// owned by the Machine.
class Thread {
 public:
  using Continuation = std::function<void()>;

  Pid pid() const { return pid_; }
  const std::string& name() const { return config_.name; }
  int priority() const { return config_.priority; }
  SchedPolicy policy() const { return config_.policy; }
  std::uint64_t affinity_mask() const { return config_.affinity_mask; }
  ThreadState state() const { return state_; }

  /// Total CPU time consumed so far (excludes current in-flight segment).
  Duration cpu_time() const { return cpu_time_; }

  /// --- Tracer-overhead injection (src/overhead/) ------------------------

  /// Adds simulated probe-execution debt to this thread. The Machine
  /// consumes the debt as extra on-CPU time before the thread's next
  /// scheduling request takes effect, so every downstream timestamp is
  /// physically delayed. Callable from any context.
  void inject_overhead(Duration d) { overhead_pending_ += d; }
  /// Debt injected but not yet consumed by the scheduler.
  Duration pending_overhead() const { return overhead_pending_; }
  /// Total injected debt consumed as CPU time so far.
  Duration overhead_time() const { return overhead_consumed_; }

  /// --- Requests; callable only from this thread's running context ------

  /// Consume `d` of CPU time, then continue at `k` (still on-CPU).
  void compute(Duration d, Continuation k);
  /// Give up the CPU until someone calls wake(); then continue at `k`.
  void block(Continuation k);
  /// Sleep for `d` of wall-clock time, then become ready and continue at `k`.
  void sleep_for(Duration d, Continuation k);
  /// End the thread.
  void terminate();

  /// --- External API -----------------------------------------------------

  /// Makes a Blocked thread Ready (emits sched_wakeup); no-op otherwise.
  void wake();

 private:
  friend class Machine;
  Thread(Machine& machine, Pid pid, ThreadConfig config)
      : machine_(machine), pid_(pid), config_(std::move(config)) {}

  enum class Request : std::uint8_t { None, Compute, Block, Sleep, Terminate };

  Machine& machine_;
  Pid pid_;
  ThreadConfig config_;
  ThreadState state_ = ThreadState::Ready;

  // Scheduling bookkeeping (owned by Machine).
  Duration remaining_ = Duration::zero();  ///< compute left in current burst
  Continuation pending_;                   ///< next continuation to run
  Duration cpu_time_ = Duration::zero();
  Duration overhead_pending_ = Duration::zero();
  Duration overhead_consumed_ = Duration::zero();

  // Request staging set by compute()/block()/... and consumed by Machine.
  Request request_ = Request::None;
  Duration request_duration_ = Duration::zero();
  Continuation request_continuation_;
};

}  // namespace tetra::sched
