#include "sched/interference.hpp"

#include <memory>

namespace tetra::sched {

namespace {

/// Self-perpetuating busy/sleep loop body. Owns its RNG stream.
struct Loop : std::enable_shared_from_this<Loop> {
  Loop(Thread& thread, Rng rng, InterferenceConfig config)
      : thread(thread), rng(std::move(rng)), config(std::move(config)) {}

  void step() {
    auto self = shared_from_this();
    thread.compute(config.busy.sample(rng), [self] {
      self->thread.sleep_for(self->config.idle.sample(self->rng),
                             [self] { self->step(); });
    });
  }

  Thread& thread;
  Rng rng;
  InterferenceConfig config;
};

}  // namespace

std::vector<Pid> spawn_interference(Machine& machine, Rng& rng, int count,
                                    const InterferenceConfig& config) {
  std::vector<Pid> pids;
  pids.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    ThreadConfig tc;
    tc.name = config.name + "-" + std::to_string(i);
    tc.priority = config.priority;
    tc.policy = config.policy;
    tc.affinity_mask = config.affinity_mask;
    // The loop object must exist before the entry continuation runs; the
    // entry captures the shared_ptr, keeping the loop alive with the thread.
    auto placeholder = std::make_shared<std::shared_ptr<Loop>>();
    Thread& thread = machine.create_thread(
        tc, [placeholder] { (*placeholder)->step(); });
    *placeholder = std::make_shared<Loop>(thread, rng.fork(), config);
    pids.push_back(thread.pid());
  }
  return pids;
}

}  // namespace tetra::sched
