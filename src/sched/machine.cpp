#include "sched/machine.hpp"

#include <stdexcept>

namespace tetra::sched {

// ---------------------------------------------------------------- Thread --

void Thread::compute(Duration d, Continuation k) {
  if (d < Duration::zero()) throw std::logic_error("compute: negative duration");
  request_ = Request::Compute;
  request_duration_ = d;
  request_continuation_ = std::move(k);
  machine_.request_from(*this);
}

void Thread::block(Continuation k) {
  request_ = Request::Block;
  request_continuation_ = std::move(k);
  machine_.request_from(*this);
}

void Thread::sleep_for(Duration d, Continuation k) {
  if (d < Duration::zero()) throw std::logic_error("sleep_for: negative duration");
  request_ = Request::Sleep;
  request_duration_ = d;
  request_continuation_ = std::move(k);
  machine_.request_from(*this);
}

void Thread::terminate() {
  request_ = Request::Terminate;
  machine_.request_from(*this);
}

void Thread::wake() { machine_.wake_internal(*this); }

// --------------------------------------------------------------- Machine --

Machine::Machine(sim::Simulator& sim, Config config)
    : sim_(sim), config_(config), next_pid_(config.first_pid) {
  if (config_.num_cpus <= 0 || config_.num_cpus > 64) {
    throw std::invalid_argument("Machine: num_cpus must be in [1, 64]");
  }
  cpus_.resize(static_cast<std::size_t>(config_.num_cpus));
  for (auto& cpu : cpus_) cpu.idle_since = sim_.now();
}

Thread& Machine::create_thread(ThreadConfig config, Thread::Continuation entry) {
  if ((config.affinity_mask & ((config_.num_cpus >= 64)
                                   ? ~0ULL
                                   : ((1ULL << config_.num_cpus) - 1))) == 0) {
    throw std::invalid_argument("create_thread: affinity excludes all CPUs");
  }
  auto thread = std::unique_ptr<Thread>(
      new Thread(*this, next_pid_++, std::move(config)));
  Thread& ref = *thread;
  ref.pending_ = std::move(entry);
  ref.state_ = ThreadState::Ready;
  threads_.push_back(std::move(thread));
  // First dispatch is deferred one event-queue hop so callers can finish
  // wiring state that the entry continuation captures, and so threads can
  // be created from any context.
  Thread* created = &ref;
  sim_.after(Duration::zero(), [this, created] {
    if (created->state_ == ThreadState::Ready) {
      make_ready(*created, /*to_front=*/false);
    }
  });
  return ref;
}

Thread* Machine::thread_by_pid(Pid pid) {
  for (auto& t : threads_) {
    if (t->pid() == pid) return t.get();
  }
  return nullptr;
}

Thread* Machine::running_on(CpuId cpu) const {
  return cpus_.at(static_cast<std::size_t>(cpu)).current;
}

Duration Machine::total_busy_time() const {
  Duration total = Duration::zero();
  for (const auto& t : threads_) total += t->cpu_time_;
  for (const auto& cpu : cpus_) {
    if (cpu.current != nullptr) total += sim_.now() - cpu.switched_in_at;
  }
  return total;
}

Duration Machine::idle_time(CpuId cpu) const {
  const Cpu& c = cpus_.at(static_cast<std::size_t>(cpu));
  Duration total = c.idle_accum;
  if (c.current == nullptr) total += sim_.now() - c.idle_since;
  return total;
}

void Machine::request_from(Thread& thread) {
  if (!in_thread_context_ || context_thread_ != &thread) {
    throw std::logic_error(
        "Thread scheduling request outside the thread's running context");
  }
  // The request is staged in the thread; service() consumes it after the
  // continuation returns.
}

void Machine::enqueue_ready(Thread& thread, bool to_front) {
  auto& queue = ready_[thread.priority()];
  if (to_front) {
    queue.push_front(&thread);
  } else {
    queue.push_back(&thread);
  }
}

Thread* Machine::pop_ready_for(CpuId cpu) {
  for (auto it = ready_.begin(); it != ready_.end(); ++it) {
    auto& queue = it->second;
    for (auto qit = queue.begin(); qit != queue.end(); ++qit) {
      if (allowed_on(**qit, cpu)) {
        Thread* t = *qit;
        queue.erase(qit);
        if (queue.empty()) ready_.erase(it);
        return t;
      }
    }
  }
  return nullptr;
}

bool Machine::has_ready_at_or_above(int priority, CpuId cpu) const {
  for (const auto& [prio, queue] : ready_) {
    if (prio < priority) break;
    for (const Thread* t : queue) {
      if (allowed_on(*t, cpu)) return true;
    }
  }
  return false;
}

void Machine::remove_from_ready(Thread& thread) {
  auto it = ready_.find(thread.priority());
  if (it == ready_.end()) return;
  auto& queue = it->second;
  for (auto qit = queue.begin(); qit != queue.end(); ++qit) {
    if (*qit == &thread) {
      queue.erase(qit);
      if (queue.empty()) ready_.erase(it);
      return;
    }
  }
}

void Machine::make_ready(Thread& thread, bool to_front) {
  // 1) Idle CPU?
  for (std::size_t ci = 0; ci < cpus_.size(); ++ci) {
    if (cpus_[ci].current == nullptr && allowed_on(thread, static_cast<CpuId>(ci))) {
      switch_to(static_cast<CpuId>(ci), &thread, trace::ThreadRunState::Runnable);
      service(static_cast<CpuId>(ci));
      return;
    }
  }
  // 2) Preemptable lower-priority thread?
  CpuId victim_cpu = kInvalidCpu;
  int victim_prio = thread.priority();
  for (std::size_t ci = 0; ci < cpus_.size(); ++ci) {
    Thread* cur = cpus_[ci].current;
    if (cur != nullptr && allowed_on(thread, static_cast<CpuId>(ci)) &&
        cur->priority() < victim_prio) {
      victim_prio = cur->priority();
      victim_cpu = static_cast<CpuId>(ci);
    }
  }
  if (victim_cpu != kInvalidCpu) {
    preempt(victim_cpu);  // victim returns to the front of its ready queue
    switch_to(victim_cpu, &thread, trace::ThreadRunState::Runnable);
    service(victim_cpu);
    return;
  }
  // 3) Queue.
  enqueue_ready(thread, to_front);
}

void Machine::service(CpuId cpu_id) {
  Cpu& cpu = cpus_[static_cast<std::size_t>(cpu_id)];
  while (true) {
    Thread* t = cpu.current;
    if (t == nullptr) return;  // idle
    if (t->remaining_ > Duration::zero()) {
      cpu.work_armed_at = sim_.now();
      arm_completion(cpu_id);
      if (t->policy() == SchedPolicy::RoundRobin) arm_slice(cpu_id);
      return;
    }
    if (!t->pending_) {
      throw std::logic_error("thread '" + t->name() +
                             "' has no continuation to run");
    }
    Thread::Continuation k = std::move(t->pending_);
    t->pending_ = nullptr;
    t->request_ = Thread::Request::None;
    in_thread_context_ = true;
    context_thread_ = t;
    k();
    in_thread_context_ = false;
    context_thread_ = nullptr;

    consume_overhead(*t);

    switch (t->request_) {
      case Thread::Request::Compute:
        t->remaining_ = t->request_duration_;
        t->pending_ = std::move(t->request_continuation_);
        break;  // loop arms the completion
      case Thread::Request::Block:
        t->pending_ = std::move(t->request_continuation_);
        t->state_ = ThreadState::Blocked;
        switch_to(cpu_id, pop_ready_for(cpu_id), trace::ThreadRunState::Sleeping);
        break;
      case Thread::Request::Sleep: {
        t->pending_ = std::move(t->request_continuation_);
        t->state_ = ThreadState::Blocked;
        const Duration delay = t->request_duration_;
        Thread* sleeper = t;
        switch_to(cpu_id, pop_ready_for(cpu_id), trace::ThreadRunState::Sleeping);
        sim_.after(delay, [this, sleeper] { wake_internal(*sleeper); });
        break;
      }
      case Thread::Request::Terminate:
        t->state_ = ThreadState::Terminated;
        switch_to(cpu_id, pop_ready_for(cpu_id), trace::ThreadRunState::Dead);
        break;
      case Thread::Request::None:
        throw std::logic_error("thread '" + t->name() +
                               "' continuation made no scheduling request");
    }
    t->request_ = Thread::Request::None;
  }
}

void Machine::consume_overhead(Thread& thread) {
  if (thread.overhead_pending_ <= Duration::zero()) return;
  const Duration debt = thread.overhead_pending_;
  thread.overhead_pending_ = Duration::zero();
  thread.overhead_consumed_ += debt;
  Thread* t = &thread;
  switch (thread.request_) {
    case Thread::Request::Compute:
      // Probe executions ran on this thread before/within the burst; the
      // burst simply takes longer.
      thread.request_duration_ += debt;
      break;
    case Thread::Request::Block: {
      // Burn the debt on-CPU first, then re-issue the block. The rewritten
      // continuation runs in thread context, where block() is legal.
      Thread::Continuation k = std::move(thread.request_continuation_);
      thread.request_ = Thread::Request::Compute;
      thread.request_duration_ = debt;
      thread.request_continuation_ = [t, k = std::move(k)]() mutable {
        t->block(std::move(k));
      };
      break;
    }
    case Thread::Request::Sleep: {
      Thread::Continuation k = std::move(thread.request_continuation_);
      const Duration delay = thread.request_duration_;
      thread.request_ = Thread::Request::Compute;
      thread.request_duration_ = debt;
      thread.request_continuation_ = [t, delay, k = std::move(k)]() mutable {
        t->sleep_for(delay, std::move(k));
      };
      break;
    }
    case Thread::Request::Terminate:
      thread.request_ = Thread::Request::Compute;
      thread.request_duration_ = debt;
      thread.request_continuation_ = [t] { t->terminate(); };
      break;
    case Thread::Request::None:
      break;  // service() reports the missing request as usual
  }
}

void Machine::switch_to(CpuId cpu_id, Thread* next,
                        trace::ThreadRunState prev_state) {
  Cpu& cpu = cpus_[static_cast<std::size_t>(cpu_id)];
  Thread* prev = cpu.current;
  if (prev == next) return;

  sim_.cancel(cpu.completion);
  sim_.cancel(cpu.slice);

  if (prev != nullptr) {
    prev->cpu_time_ += sim_.now() - cpu.switched_in_at;
  } else {
    cpu.idle_accum += sim_.now() - cpu.idle_since;
  }

  emit_switch(cpu_id, prev, prev_state, next);
  ++context_switches_;

  cpu.current = next;
  if (next != nullptr) {
    next->state_ = ThreadState::Running;
    cpu.switched_in_at = sim_.now();
    cpu.work_armed_at = sim_.now();
  } else {
    cpu.idle_since = sim_.now();
  }
}

void Machine::preempt(CpuId cpu_id) {
  Cpu& cpu = cpus_[static_cast<std::size_t>(cpu_id)];
  Thread* t = cpu.current;
  if (t == nullptr) return;
  sim_.cancel(cpu.completion);
  sim_.cancel(cpu.slice);
  if (t->remaining_ > Duration::zero()) {
    const Duration done = sim_.now() - cpu.work_armed_at;
    t->remaining_ = (done >= t->remaining_) ? Duration::zero()
                                            : t->remaining_ - done;
  }
  t->state_ = ThreadState::Ready;
  enqueue_ready(*t, /*to_front=*/true);
  // Note: the caller immediately switches someone else in; prev accounting
  // happens inside switch_to, so temporarily keep cpu.current as-is.
}

void Machine::arm_completion(CpuId cpu_id) {
  Cpu& cpu = cpus_[static_cast<std::size_t>(cpu_id)];
  Thread* expected = cpu.current;
  cpu.completion = sim_.after(expected->remaining_, [this, cpu_id, expected] {
    on_completion(cpu_id, expected);
  });
}

void Machine::arm_slice(CpuId cpu_id) {
  Cpu& cpu = cpus_[static_cast<std::size_t>(cpu_id)];
  Thread* expected = cpu.current;
  cpu.slice = sim_.after(config_.rr_slice, [this, cpu_id, expected] {
    on_slice_expiry(cpu_id, expected);
  });
}

void Machine::on_completion(CpuId cpu_id, Thread* expected) {
  Cpu& cpu = cpus_[static_cast<std::size_t>(cpu_id)];
  if (cpu.current != expected) return;  // stale (preempted meanwhile)
  expected->remaining_ = Duration::zero();
  sim_.cancel(cpu.slice);
  service(cpu_id);
}

void Machine::on_slice_expiry(CpuId cpu_id, Thread* expected) {
  Cpu& cpu = cpus_[static_cast<std::size_t>(cpu_id)];
  if (cpu.current != expected) return;  // stale
  if (has_ready_at_or_above(expected->priority(), cpu_id)) {
    // Rotate: unlike an involuntary priority preemption, the thread used up
    // its slice, so it goes to the back of its priority queue.
    sim_.cancel(cpu.completion);
    if (expected->remaining_ > Duration::zero()) {
      const Duration done = sim_.now() - cpu.work_armed_at;
      expected->remaining_ = (done >= expected->remaining_)
                                 ? Duration::zero()
                                 : expected->remaining_ - done;
    }
    expected->state_ = ThreadState::Ready;
    enqueue_ready(*expected, /*to_front=*/false);
    switch_to(cpu_id, pop_ready_for(cpu_id), trace::ThreadRunState::Runnable);
    service(cpu_id);
  } else {
    arm_slice(cpu_id);
  }
}

void Machine::wake_internal(Thread& thread) {
  if (in_thread_context_) {
    // A running continuation woke another thread directly. Defer via the
    // event queue (same timestamp) so the scheduler is never reentered
    // while a continuation is mid-flight.
    Thread* target = &thread;
    sim_.after(Duration::zero(), [this, target] { wake_internal(*target); });
    return;
  }
  if (thread.state_ != ThreadState::Blocked) return;
  thread.state_ = ThreadState::Ready;
  ++wakeups_;
  emit_wakeup(thread, kInvalidCpu);
  make_ready(thread, /*to_front=*/false);
}

void Machine::emit_switch(CpuId cpu, Thread* prev,
                          trace::ThreadRunState prev_state, Thread* next) {
  if (!hooks_.sched_switch) return;
  trace::SchedSwitchInfo info;
  info.cpu = cpu;
  info.prev_pid = prev != nullptr ? prev->pid() : kIdlePid;
  info.prev_prio = prev != nullptr ? prev->priority() : 0;
  info.prev_state = prev != nullptr ? prev_state : trace::ThreadRunState::Runnable;
  info.next_pid = next != nullptr ? next->pid() : kIdlePid;
  info.next_prio = next != nullptr ? next->priority() : 0;
  hooks_.sched_switch(sim_.now(), info);
}

void Machine::emit_wakeup(Thread& thread, CpuId target) {
  if (!hooks_.sched_wakeup) return;
  trace::SchedWakeupInfo info;
  info.woken_pid = thread.pid();
  info.target_cpu = target;
  hooks_.sched_wakeup(sim_.now(), info);
}

}  // namespace tetra::sched
