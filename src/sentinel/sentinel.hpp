// Model regression sentinel: continuous drift detection against a
// baseline synthesized model.
//
// The paper synthesizes a timing model once from a recorded trace; a
// fleet operator re-synthesizes continuously and needs to know when the
// model stopped matching reality. The ModelSentinel holds a baseline
// (ingested as one or more trace segments through the streaming
// api::SynthesisSession machinery), accepts fresh trace windows, and
// emits a structured DriftVerdict per window covering both drift axes the
// related work motivates: structural DAG/connectivity changes and timing
// envelope violations.
//
//   sentinel::ModelSentinel sentinel;
//   sentinel.ingest_baseline_file("baseline.jsonl");
//   auto verdict = sentinel.check_file("window.jsonl");
//   if (verdict.ok() && verdict->drifted) alert(verdict_to_json(*verdict));
//
// Every check synthesizes the window with the same pipeline as the
// baseline (same labels, same DAG construction), compares, then releases
// the window's events — long-running sentinels stay bounded in memory.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/latency.hpp"
#include "api/config.hpp"
#include "api/result.hpp"
#include "api/session.hpp"
#include "core/model_synthesis.hpp"
#include "support/time.hpp"
#include "trace/event.hpp"

namespace tetra::sentinel {

/// One detected drift axis.
enum class DriftKind : std::uint8_t {
  VertexAdded,        ///< callback/junction in the window, not the baseline
  VertexRemoved,      ///< callback/junction in the baseline, not the window
  EdgeAdded,          ///< precedence relation only the window shows
  EdgeRemoved,        ///< precedence relation the window lost
  ExecTimeShift,      ///< execution-time distribution shifted (two-sample KS)
  PeriodShift,        ///< timer period moved beyond the tolerance
  LatencyEnvelope,    ///< chain latency left the baseline envelope
  DeadlineViolation,  ///< chain latency exceeded a configured deadline
};

std::string_view to_string(DriftKind kind);

struct DriftFinding {
  DriftKind kind = DriftKind::VertexAdded;
  /// What drifted: a vertex key, a callback label, "from -> to" for
  /// edges, or a chain's plain topic path joined with " -> ".
  std::string subject;
  std::string detail;  ///< human-readable explanation
  /// Axis-specific magnitude: KS statistic, relative period/latency
  /// delta, or deadline-miss fraction. 1.0 for structural findings.
  double statistic = 1.0;
  /// KS p-value for ExecTimeShift; 0.0 elsewhere (the change is certain).
  double p_value = 0.0;
};

/// Structured verdict of one window check. `drifted` is true iff any
/// finding fired; `checks` counts the statistical comparisons that ran
/// (sample-starved callbacks are skipped, not silently passed).
struct DriftVerdict {
  bool drifted = false;
  std::vector<DriftFinding> findings;  ///< sorted by (kind, subject)
  std::size_t checks = 0;

  std::size_t baseline_events = 0;
  std::size_t baseline_vertices = 0;
  std::size_t baseline_edges = 0;
  std::size_t window_events = 0;
  std::size_t window_vertices = 0;
  std::size_t window_edges = 0;
};

/// Compact single-object JSON rendering of a verdict (schema documented
/// in docs/SENTINEL.md). Deterministic for a deterministic input trace.
std::string verdict_to_json(const DriftVerdict& verdict);

struct SentinelOptions {
  /// Significance level of the two-sample KS execution-time test. The
  /// default trades detection lag for a near-zero false-alarm rate over
  /// the hundreds of per-callback tests a long-running sentinel performs.
  double alpha = 1e-4;
  /// Minimum samples per side before the KS test is consulted at all;
  /// below this the asymptotic p-value is unreliable in both directions.
  std::size_t min_samples = 8;
  /// Relative timer-period change that counts as drift.
  double period_tolerance = 0.2;
  /// Relative mean chain-latency change that counts as drift.
  double latency_tolerance = 0.5;
  /// Chain enumeration guard (pathological DAGs).
  std::size_t max_chains = 256;
  /// Optional per-chain deadlines, keyed by the chain's plain topic path
  /// joined with " -> " (the DriftFinding subject format). Any window
  /// instance above the deadline raises DeadlineViolation.
  std::map<std::string, Duration> chain_deadlines;
  /// Synthesis pipeline configuration. Must keep MergeStrategy::MergeDags
  /// (the sentinel compares per-trace models and releases window events).
  api::SynthesisConfig synthesis;
};

class ModelSentinel {
 public:
  ModelSentinel() : ModelSentinel(SentinelOptions{}) {}
  explicit ModelSentinel(SentinelOptions options);

  // -- baseline -----------------------------------------------------------

  /// Adds one event segment to the baseline trace. May be called several
  /// times (segments k-way merge); the baseline model is re-synthesized
  /// lazily on the next check.
  api::Result<api::SegmentInfo> ingest_baseline(trace::EventVector events);
  /// Reads a JSONL trace file into the baseline.
  api::Result<api::SegmentInfo> ingest_baseline_file(const std::string& path);

  /// The baseline model (synthesizing it first if dirty).
  api::Result<core::TimingModel> baseline_model();

  // -- window checks ------------------------------------------------------

  /// Synthesizes `events` as a fresh window, compares it against the
  /// baseline and returns the verdict. InvalidArgument before any
  /// baseline was ingested. The window's events are released afterwards.
  api::Result<DriftVerdict> check(trace::EventVector events);
  /// Reads a JSONL trace file and checks it as a window.
  api::Result<DriftVerdict> check_file(const std::string& path);

  // -- introspection ------------------------------------------------------

  const SentinelOptions& options() const { return options_; }
  std::size_t windows_checked() const { return window_counter_; }

 private:
  struct BaselineChain {
    std::string key;                  ///< plain topic path, " -> " joined
    std::vector<std::string> topics;  ///< measure_chain_latency argument
    analysis::ChainLatencyResult latency;
  };
  struct BaselineCache {
    bool valid = false;
    core::TimingModel model;
    std::size_t events = 0;
    /// Per-label raw execution-time samples (ns), KS baseline side.
    std::map<std::string, std::vector<double>> exec_samples;
    std::vector<BaselineChain> chains;
  };

  /// Re-synthesizes the baseline cache when dirty; ErrorCode::None on
  /// success.
  api::Error refresh_baseline();
  api::Result<DriftVerdict> check_trace(const std::string& trace_id);

  SentinelOptions options_;
  api::SynthesisSession session_;
  BaselineCache baseline_;
  std::size_t window_counter_ = 0;
};

}  // namespace tetra::sentinel
