// Model regression sentinel: one-shot drift detection against a baseline
// synthesized model.
//
// The paper synthesizes a timing model once from a recorded trace; a
// fleet operator re-synthesizes continuously and needs to know when the
// model stopped matching reality. ModelSentinel holds a baseline
// (ingested as one or more trace segments through the streaming
// api::SynthesisSession machinery), accepts fresh trace windows, and
// emits a structured DriftVerdict per window covering both drift axes the
// related work motivates: structural DAG/connectivity changes and timing
// envelope violations.
//
//   sentinel::ModelSentinel sentinel;
//   sentinel.ingest_baseline_file("baseline.jsonl");
//   auto verdict = sentinel.check_file("window.jsonl");
//   if (verdict.ok() && verdict->drifted) alert(verdict_to_json(*verdict));
//
// ModelSentinel is a thin one-window wrapper over sentinel::StreamSentinel
// (sentinel/stream.hpp), which additionally accumulates evidence
// *sequentially* across a sliding window over a continuous stream. Both
// entry points share one SentinelConfig (sentinel/config.hpp) and one
// verdict vocabulary (sentinel/verdict.hpp).
#pragma once

#include <cstddef>
#include <string>

#include "api/result.hpp"
#include "core/model_synthesis.hpp"
#include "sentinel/config.hpp"
#include "sentinel/stream.hpp"
#include "sentinel/verdict.hpp"
#include "trace/event.hpp"

namespace tetra::sentinel {

class ModelSentinel {
 public:
  ModelSentinel() : ModelSentinel(SentinelConfig{}) {}
  explicit ModelSentinel(SentinelConfig config) : stream_(std::move(config)) {}

  // -- baseline -----------------------------------------------------------

  /// Adds one event segment to the baseline trace. May be called several
  /// times (segments k-way merge); the baseline model is re-synthesized
  /// lazily on the next check.
  api::Result<api::SegmentInfo> ingest_baseline(trace::EventVector events) {
    return stream_.ingest_baseline(std::move(events));
  }
  /// Reads a JSONL or .ttb trace file into the baseline.
  api::Result<api::SegmentInfo> ingest_baseline_file(const std::string& path) {
    return stream_.ingest_baseline_file(path);
  }

  /// The baseline model (synthesizing it first if dirty).
  api::Result<core::TimingModel> baseline_model() {
    return stream_.baseline_model();
  }

  // -- window checks ------------------------------------------------------

  /// Synthesizes `events` as a fresh window, compares it against the
  /// baseline and returns the verdict. InvalidArgument before any
  /// baseline was ingested.
  api::Result<DriftVerdict> check(trace::EventVector events) {
    return stream_.check_window(std::move(events));
  }
  /// Reads a JSONL or .ttb trace file and checks it as a window.
  api::Result<DriftVerdict> check_file(const std::string& path) {
    return stream_.check_window_file(path);
  }

  // -- introspection ------------------------------------------------------

  const SentinelConfig& options() const { return stream_.config(); }
  std::size_t windows_checked() const { return stream_.windows_checked(); }

 private:
  StreamSentinel stream_;
};

}  // namespace tetra::sentinel
