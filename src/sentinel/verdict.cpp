#include "sentinel/verdict.hpp"

#include "support/json_writer.hpp"

namespace tetra::sentinel {

namespace {

void write_finding(JsonWriter& writer, const DriftFinding& finding) {
  writer.begin_object();
  writer.kv("kind", to_string(finding.kind));
  writer.kv("subject", finding.subject);
  writer.kv("detail", finding.detail);
  writer.kv("statistic", finding.statistic);
  writer.kv("p_value", finding.p_value);
  writer.kv("evidence", finding.evidence);
  writer.kv("windows", finding.windows);
  writer.end_object();
}

void write_findings(JsonWriter& writer, const char* key,
                    const std::vector<DriftFinding>& findings) {
  writer.key(key).begin_array();
  for (const auto& finding : findings) write_finding(writer, finding);
  writer.end_array();
}

}  // namespace

std::string_view to_string(DriftKind kind) {
  switch (kind) {
    case DriftKind::VertexAdded: return "vertex-added";
    case DriftKind::VertexRemoved: return "vertex-removed";
    case DriftKind::EdgeAdded: return "edge-added";
    case DriftKind::EdgeRemoved: return "edge-removed";
    case DriftKind::ExecTimeShift: return "exec-time-shift";
    case DriftKind::PeriodShift: return "period-shift";
    case DriftKind::LatencyEnvelope: return "latency-envelope";
    case DriftKind::DeadlineViolation: return "deadline-violation";
  }
  return "unknown";
}

std::string verdict_to_json(const DriftVerdict& verdict) {
  JsonWriter writer;
  writer.begin_object();
  writer.kv("schema_version", kVerdictSchemaVersion);
  writer.kv("drifted", verdict.drifted);
  writer.kv("checks", static_cast<std::uint64_t>(verdict.checks));
  writer.key("baseline").begin_object();
  writer.kv("events", static_cast<std::uint64_t>(verdict.baseline_events));
  writer.kv("vertices", static_cast<std::uint64_t>(verdict.baseline_vertices));
  writer.kv("edges", static_cast<std::uint64_t>(verdict.baseline_edges));
  writer.end_object();
  writer.key("window").begin_object();
  writer.kv("events", static_cast<std::uint64_t>(verdict.window_events));
  writer.kv("vertices", static_cast<std::uint64_t>(verdict.window_vertices));
  writer.kv("edges", static_cast<std::uint64_t>(verdict.window_edges));
  writer.end_object();
  write_findings(writer, "findings", verdict.findings);
  writer.end_object();
  return writer.str();
}

std::string window_verdict_to_json(const WindowVerdict& verdict) {
  JsonWriter writer;
  writer.begin_object();
  writer.kv("schema_version", kVerdictSchemaVersion);
  writer.kv("window", static_cast<std::uint64_t>(verdict.index));
  writer.kv("t_begin_ns", verdict.begin.count_ns());
  writer.kv("t_end_ns", verdict.end.count_ns());
  writer.kv("events", static_cast<std::uint64_t>(verdict.events));
  writer.kv("checks", static_cast<std::uint64_t>(verdict.checks));
  writer.kv("window_drifted", verdict.window_drifted);
  writer.kv("alarmed", verdict.alarmed);
  writer.kv("refreshed", verdict.refreshed);
  write_findings(writer, "alarms", verdict.alarms);
  write_findings(writer, "transient", verdict.transient);
  writer.key("localization").begin_array();
  for (const auto& axis : verdict.localization) {
    writer.begin_object();
    writer.kv("axis", axis.axis);
    writer.kv("score", axis.score);
    writer.end_object();
  }
  writer.end_array();
  writer.end_object();
  return writer.str();
}

}  // namespace tetra::sentinel
