#include "sentinel/sentinel.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>
#include <tuple>
#include <utility>

#include "analysis/chains.hpp"
#include "support/json_writer.hpp"
#include "support/statistics.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"

namespace tetra::sentinel {

namespace {

constexpr const char* kBaselineTraceId = "baseline";

struct SentinelMetrics {
  telemetry::Counter& windows = telemetry::MetricsRegistry::global().counter(
      "sentinel.windows_checked");
  telemetry::Histogram& ks_ns = telemetry::MetricsRegistry::global().histogram(
      "sentinel.ks_test_ns",
      {1'000, 10'000, 100'000, 1'000'000, 10'000'000, 100'000'000});

  static SentinelMetrics& get() {
    static SentinelMetrics metrics;
    return metrics;
  }

  telemetry::Counter& findings(DriftKind kind) {
    return telemetry::MetricsRegistry::global().counter(
        "sentinel.findings", {{"kind", std::string(to_string(kind))}});
  }
};

std::string format_double(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.6g", v);
  return buffer;
}

/// Raw per-label execution-time samples (ns) of a synthesized model. A
/// label maps to exactly one record per node list; records from several
/// lists (one per node) never share labels.
std::map<std::string, std::vector<double>> collect_exec_samples(
    const core::TimingModel& model) {
  std::map<std::string, std::vector<double>> samples;
  for (const auto& list : model.node_callbacks) {
    for (const auto& record : list.records) {
      if (record.label.empty()) continue;
      auto& out = samples[record.label];
      out.reserve(out.size() + record.exec_times.size());
      for (const auto exec : record.exec_times) {
        out.push_back(static_cast<double>(exec.count_ns()));
      }
    }
  }
  return samples;
}

std::set<std::string> vertex_keys(const core::Dag& dag) {
  std::set<std::string> keys;
  for (const auto& vertex : dag.vertices()) keys.insert(vertex.key);
  return keys;
}

using EdgeKey = std::tuple<std::string, std::string, std::string>;

std::set<EdgeKey> edge_keys(const core::Dag& dag) {
  std::set<EdgeKey> keys;
  for (const auto& edge : dag.edges()) {
    keys.insert(EdgeKey{edge.from, edge.to, edge.topic});
  }
  return keys;
}

std::string chain_key(const std::vector<std::string>& topics) {
  std::string key;
  for (const auto& topic : topics) {
    if (!key.empty()) key += " -> ";
    key += topic;
  }
  return key;
}

void add_structural_findings(const core::Dag& baseline, const core::Dag& window,
                             std::vector<DriftFinding>& findings) {
  const auto base_vertices = vertex_keys(baseline);
  const auto window_vertices = vertex_keys(window);
  for (const auto& key : base_vertices) {
    if (window_vertices.count(key) == 0) {
      findings.push_back(DriftFinding{
          DriftKind::VertexRemoved, key,
          "callback present in the baseline model never executed in the "
          "window",
          1.0, 0.0});
    }
  }
  for (const auto& key : window_vertices) {
    if (base_vertices.count(key) == 0) {
      findings.push_back(DriftFinding{
          DriftKind::VertexAdded, key,
          "window executed a callback the baseline model does not contain",
          1.0, 0.0});
    }
  }

  const auto base_edges = edge_keys(baseline);
  const auto win_edges = edge_keys(window);
  for (const auto& [from, to, topic] : base_edges) {
    if (win_edges.count(EdgeKey{from, to, topic}) == 0) {
      findings.push_back(DriftFinding{DriftKind::EdgeRemoved,
                                      from + " -> " + to,
                                      "baseline precedence relation on " +
                                          topic + " absent from the window",
                                      1.0, 0.0});
    }
  }
  for (const auto& [from, to, topic] : win_edges) {
    if (base_edges.count(EdgeKey{from, to, topic}) == 0) {
      findings.push_back(DriftFinding{DriftKind::EdgeAdded,
                                      from + " -> " + to,
                                      "window shows a precedence relation on " +
                                          topic + " the baseline lacks",
                                      1.0, 0.0});
    }
  }
}

}  // namespace

std::string_view to_string(DriftKind kind) {
  switch (kind) {
    case DriftKind::VertexAdded: return "vertex-added";
    case DriftKind::VertexRemoved: return "vertex-removed";
    case DriftKind::EdgeAdded: return "edge-added";
    case DriftKind::EdgeRemoved: return "edge-removed";
    case DriftKind::ExecTimeShift: return "exec-time-shift";
    case DriftKind::PeriodShift: return "period-shift";
    case DriftKind::LatencyEnvelope: return "latency-envelope";
    case DriftKind::DeadlineViolation: return "deadline-violation";
  }
  return "unknown";
}

std::string verdict_to_json(const DriftVerdict& verdict) {
  JsonWriter writer;
  writer.begin_object();
  writer.kv("drifted", verdict.drifted);
  writer.kv("checks", static_cast<std::uint64_t>(verdict.checks));
  writer.key("baseline").begin_object();
  writer.kv("events", static_cast<std::uint64_t>(verdict.baseline_events));
  writer.kv("vertices", static_cast<std::uint64_t>(verdict.baseline_vertices));
  writer.kv("edges", static_cast<std::uint64_t>(verdict.baseline_edges));
  writer.end_object();
  writer.key("window").begin_object();
  writer.kv("events", static_cast<std::uint64_t>(verdict.window_events));
  writer.kv("vertices", static_cast<std::uint64_t>(verdict.window_vertices));
  writer.kv("edges", static_cast<std::uint64_t>(verdict.window_edges));
  writer.end_object();
  writer.key("findings").begin_array();
  for (const auto& finding : verdict.findings) {
    writer.begin_object();
    writer.kv("kind", to_string(finding.kind));
    writer.kv("subject", finding.subject);
    writer.kv("detail", finding.detail);
    writer.kv("statistic", finding.statistic);
    writer.kv("p_value", finding.p_value);
    writer.end_object();
  }
  writer.end_array();
  writer.end_object();
  return writer.str();
}

ModelSentinel::ModelSentinel(SentinelOptions options)
    : options_(std::move(options)), session_(options_.synthesis) {}

api::Result<api::SegmentInfo> ModelSentinel::ingest_baseline(
    trace::EventVector events) {
  baseline_.valid = false;
  api::IngestOptions ingest;
  ingest.trace_id = kBaselineTraceId;
  return session_.ingest(std::move(events), ingest);
}

api::Result<api::SegmentInfo> ModelSentinel::ingest_baseline_file(
    const std::string& path) {
  baseline_.valid = false;
  api::IngestOptions ingest;
  ingest.trace_id = kBaselineTraceId;
  return session_.ingest_file(path, ingest);
}

api::Result<core::TimingModel> ModelSentinel::baseline_model() {
  const api::Error error = refresh_baseline();
  if (error.code != api::ErrorCode::None) return error;
  return baseline_.model;
}

api::Error ModelSentinel::refresh_baseline() {
  if (baseline_.valid) return {};
  auto model = session_.trace_model(kBaselineTraceId);
  if (!model.ok()) {
    if (model.error().code == api::ErrorCode::UnknownTrace) {
      return api::Error{api::ErrorCode::InvalidArgument,
                        "no baseline ingested before the first check",
                        kBaselineTraceId};
    }
    return model.error();
  }
  auto events = session_.merged_events(kBaselineTraceId);
  if (!events.ok()) return events.error();

  baseline_.model = std::move(model).take();
  baseline_.events = events.value().size();
  baseline_.exec_samples = collect_exec_samples(baseline_.model);
  baseline_.chains.clear();

  const analysis::InstanceTimeline timeline(events.value());
  const auto enumeration =
      analysis::enumerate_chains(baseline_.model.dag, options_.max_chains);
  for (const auto& chain : enumeration.chains) {
    BaselineChain entry;
    entry.topics = analysis::chain_topics(baseline_.model.dag, chain);
    if (entry.topics.empty()) continue;
    entry.key = chain_key(entry.topics);
    entry.latency = analysis::measure_chain_latency(timeline, entry.topics);
    // A chain the baseline itself never completed carries no envelope.
    if (entry.latency.complete == 0) continue;
    // Chains can repeat a topic path (per-caller service splits); keep the
    // first — same topics means the same measured samples.
    const bool duplicate =
        std::any_of(baseline_.chains.begin(), baseline_.chains.end(),
                    [&](const BaselineChain& c) { return c.key == entry.key; });
    if (!duplicate) baseline_.chains.push_back(std::move(entry));
  }
  baseline_.valid = true;
  return {};
}

api::Result<DriftVerdict> ModelSentinel::check(trace::EventVector events) {
  const api::Error error = refresh_baseline();
  if (error.code != api::ErrorCode::None) return error;
  const std::string trace_id = "window-" + std::to_string(window_counter_);
  api::IngestOptions ingest;
  ingest.trace_id = trace_id;
  auto segment = session_.ingest(std::move(events), ingest);
  if (!segment.ok()) return segment.error();
  return check_trace(trace_id);
}

api::Result<DriftVerdict> ModelSentinel::check_file(const std::string& path) {
  const api::Error error = refresh_baseline();
  if (error.code != api::ErrorCode::None) return error;
  const std::string trace_id = "window-" + std::to_string(window_counter_);
  api::IngestOptions ingest;
  ingest.trace_id = trace_id;
  auto segment = session_.ingest_file(path, ingest);
  if (!segment.ok()) return segment.error();
  return check_trace(trace_id);
}

api::Result<DriftVerdict> ModelSentinel::check_trace(
    const std::string& trace_id) {
  ++window_counter_;
  SentinelMetrics::get().windows.inc();
  telemetry::ScopedSpan check_span("sentinel.check");
  auto model = session_.trace_model(trace_id);
  if (!model.ok()) return model.error();
  auto events = session_.merged_events(trace_id);
  if (!events.ok()) return events.error();
  const core::TimingModel& window = model.value();

  DriftVerdict verdict;
  verdict.baseline_events = baseline_.events;
  verdict.baseline_vertices = baseline_.model.dag.vertex_count();
  verdict.baseline_edges = baseline_.model.dag.edge_count();
  verdict.window_events = events.value().size();
  verdict.window_vertices = window.dag.vertex_count();
  verdict.window_edges = window.dag.edge_count();

  // Axis 1: structure (vertex and edge sets).
  add_structural_findings(baseline_.model.dag, window.dag, verdict.findings);

  // Axis 2: per-callback execution-time distributions (two-sample KS on
  // the raw samples, gated on min_samples per side).
  const auto window_samples = collect_exec_samples(window);
  for (const auto& [label, base] : baseline_.exec_samples) {
    const auto it = window_samples.find(label);
    if (it == window_samples.end()) continue;  // structural finding already
    if (base.size() < options_.min_samples ||
        it->second.size() < options_.min_samples) {
      continue;
    }
    ++verdict.checks;
    const std::int64_t ks_started = telemetry::clock_now();
    const KsTestResult ks = two_sample_ks_test(base, it->second);
    SentinelMetrics::get().ks_ns.observe(telemetry::clock_now() - ks_started);
    if (ks.significant(options_.alpha)) {
      verdict.findings.push_back(DriftFinding{
          DriftKind::ExecTimeShift, label,
          "execution-time distribution shifted (D = " +
              format_double(ks.statistic) + " over " +
              std::to_string(ks.n1) + " baseline / " +
              std::to_string(ks.n2) + " window samples)",
          ks.statistic, ks.p_value});
    }
  }

  // Axis 3: timer periods (estimated from start times by the synthesis).
  for (const auto& base_vertex : baseline_.model.dag.vertices()) {
    if (!base_vertex.period.has_value()) continue;
    const auto* win_vertex = window.dag.find_vertex(base_vertex.key);
    if (win_vertex == nullptr || !win_vertex->period.has_value()) continue;
    const double base_ms = base_vertex.period->to_ms();
    const double win_ms = win_vertex->period->to_ms();
    if (base_ms <= 0.0) continue;
    ++verdict.checks;
    const double rel = std::abs(win_ms - base_ms) / base_ms;
    if (rel > options_.period_tolerance) {
      verdict.findings.push_back(DriftFinding{
          DriftKind::PeriodShift, base_vertex.key,
          "timer period moved from " + format_double(base_ms) + "ms to " +
              format_double(win_ms) + "ms",
          rel, 0.0});
    }
  }

  // Axis 4: chain-latency envelopes (and configured deadlines).
  const analysis::InstanceTimeline timeline(events.value());
  for (const auto& chain : baseline_.chains) {
    const auto latency = analysis::measure_chain_latency(timeline, chain.topics);
    ++verdict.checks;
    if (latency.complete == 0) {
      verdict.findings.push_back(DriftFinding{
          DriftKind::LatencyEnvelope, chain.key,
          "chain completed " + std::to_string(chain.latency.complete) +
              " times in the baseline but never in the window",
          1.0, 0.0});
      continue;
    }
    const double base_mean = chain.latency.latencies.mean();
    const double win_mean = latency.latencies.mean();
    if (base_mean > 0.0) {
      const double rel = std::abs(win_mean - base_mean) / base_mean;
      if (rel > options_.latency_tolerance) {
        verdict.findings.push_back(DriftFinding{
            DriftKind::LatencyEnvelope, chain.key,
            "mean end-to-end latency moved from " +
                format_double(base_mean / 1e6) + "ms to " +
                format_double(win_mean / 1e6) + "ms",
            rel, 0.0});
      }
    }
    const auto deadline = options_.chain_deadlines.find(chain.key);
    if (deadline != options_.chain_deadlines.end()) {
      ++verdict.checks;
      const auto limit = static_cast<double>(deadline->second.count_ns());
      std::size_t misses = 0;
      for (const double sample : latency.latencies.samples()) {
        if (sample > limit) ++misses;
      }
      if (misses > 0) {
        const double fraction =
            static_cast<double>(misses) /
            static_cast<double>(latency.latencies.count());
        verdict.findings.push_back(DriftFinding{
            DriftKind::DeadlineViolation, chain.key,
            std::to_string(misses) + " of " +
                std::to_string(latency.latencies.count()) +
                " window instances exceeded the " +
                format_double(deadline->second.to_ms()) + "ms deadline",
            fraction, 0.0});
      }
    }
  }

  std::sort(verdict.findings.begin(), verdict.findings.end(),
            [](const DriftFinding& a, const DriftFinding& b) {
              return std::tie(a.kind, a.subject) < std::tie(b.kind, b.subject);
            });
  verdict.drifted = !verdict.findings.empty();
  for (const DriftFinding& finding : verdict.findings) {
    SentinelMetrics::get().findings(finding.kind).inc();
  }
  check_span.set_items(verdict.checks);

  // Bound memory: the window's raw events are no longer needed (MergeDags
  // keeps its cached model; under MergeTraces release is rejected and the
  // events simply stay).
  (void)session_.release_events(trace_id);
  return verdict;
}

}  // namespace tetra::sentinel
