#include "sentinel/stream.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>
#include <tuple>

#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"
#include "trace/serialize.hpp"
#include "trace/ttb.hpp"

namespace tetra::sentinel {

namespace {

std::string format_double(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.6g", v);
  return buffer;
}

struct StreamMetrics {
  telemetry::Counter& advanced = telemetry::MetricsRegistry::global().counter(
      "sentinel.windows_advanced");
  telemetry::Counter& refreshes = telemetry::MetricsRegistry::global().counter(
      "sentinel.refreshes");

  static StreamMetrics& get() {
    static StreamMetrics metrics;
    return metrics;
  }
};

/// Shifts an event batch along the stream clock. Embedded source
/// timestamps (the write/take matching key) must move together with the
/// event times or cross-segment windows never match publications.
void shift_events(trace::EventVector& events, Duration offset) {
  for (trace::TraceEvent& event : events) {
    event.time += offset;
    if (auto* take = std::get_if<trace::TakeInfo>(&event.payload)) {
      take->src_ts += offset;
    } else if (auto* write =
                   std::get_if<trace::DdsWriteInfo>(&event.payload)) {
      write->src_ts += offset;
    }
  }
}

/// The mutation axes drift localization ranks, in rank-tie order.
constexpr const char* kAxisDropEdge = "drop-edge";
constexpr const char* kAxisAddEdge = "add-edge";
constexpr const char* kAxisRetimeTimer = "retime-timer";
constexpr const char* kAxisScaleExecTime = "scale-exec-time";
constexpr const char* kAxisReprioritize = "reprioritize";

/// How strongly evidence on one drift axis implicates each mutation
/// axis. Structural evidence is near-diagnostic; latency evidence is
/// shared — a retimed timer, a scaled callback and a reprioritized
/// executor all move chain latency, but only the last moves *nothing
/// else*, so reprioritize leans on it hardest.
std::vector<std::pair<const char*, double>> axis_weights(DriftKind kind) {
  switch (kind) {
    case DriftKind::VertexRemoved: return {{kAxisDropEdge, 0.9}};
    case DriftKind::EdgeRemoved: return {{kAxisDropEdge, 1.0}};
    case DriftKind::VertexAdded: return {{kAxisAddEdge, 0.9}};
    case DriftKind::EdgeAdded: return {{kAxisAddEdge, 1.0}};
    case DriftKind::PeriodShift: return {{kAxisRetimeTimer, 1.0}};
    case DriftKind::ExecTimeShift: return {{kAxisScaleExecTime, 1.0}};
    case DriftKind::LatencyEnvelope:
      return {{kAxisReprioritize, 0.5},
              {kAxisRetimeTimer, 0.2},
              {kAxisScaleExecTime, 0.2}};
    case DriftKind::DeadlineViolation:
      return {{kAxisReprioritize, 0.3}, {kAxisScaleExecTime, 0.2}};
  }
  return {};
}

}  // namespace

StreamSentinel::StreamSentinel(SentinelConfig config)
    : config_(std::move(config)), engine_(config_) {}

api::Result<api::SegmentInfo> StreamSentinel::ingest_baseline(
    trace::EventVector events) {
  return engine_.ingest_baseline(std::move(events));
}

api::Result<api::SegmentInfo> StreamSentinel::ingest_baseline_file(
    const std::string& path) {
  return engine_.ingest_baseline_file(path);
}

api::Result<core::TimingModel> StreamSentinel::baseline_model() {
  return engine_.baseline_model();
}

api::Result<DriftVerdict> StreamSentinel::check_window(
    trace::EventVector events) {
  auto analysis = engine_.analyze(std::move(events));
  if (!analysis.ok()) return analysis.error();
  return std::move(analysis).take().verdict;
}

api::Result<DriftVerdict> StreamSentinel::check_window_file(
    const std::string& path) {
  auto analysis = engine_.analyze_file(path);
  if (!analysis.ok()) return analysis.error();
  return std::move(analysis).take().verdict;
}

api::Result<std::vector<WindowVerdict>> StreamSentinel::feed(
    trace::EventVector events) {
  const Duration span = config_.window_span;
  const Duration advance = config_.window_advance;
  if (span.count_ns() <= 0 || advance.count_ns() <= 0) {
    return api::Error{api::ErrorCode::InvalidArgument,
                      "window span and advance must be positive", "stream"};
  }
  if (advance > span) {
    return api::Error{
        api::ErrorCode::InvalidArgument,
        "window advance exceeds the span: events between windows would "
        "never be checked",
        "stream"};
  }
  const api::Error baseline_error = engine_.ensure_baseline();
  if (baseline_error.code != api::ErrorCode::None) return baseline_error;

  telemetry::ScopedSpan stream_span("sentinel.stream");
  trace::sort_by_time(events);

  if (config_.rebase_segments && have_origin_ && !events.empty()) {
    const Duration offset =
        (stream_end_ + config_.rebase_gap) - events.front().time;
    shift_events(events, offset);
  }
  if (!config_.rebase_segments && have_origin_) {
    // Late events precede the window the stream already committed to;
    // dropping them keeps verdicts append-only and deterministic.
    auto fresh = std::partition_point(
        events.begin(), events.end(), [&](const trace::TraceEvent& e) {
          return e.time < window_start_;
        });
    late_events_ += static_cast<std::size_t>(fresh - events.begin());
    events.erase(events.begin(), fresh);
  }
  if (!events.empty()) {
    if (!have_origin_) {
      have_origin_ = true;
      window_start_ = events.front().time;
      stream_end_ = events.front().time;
    }
    stream_end_ = std::max(stream_end_, events.back().time);
    for (const trace::TraceEvent& event : events) {
      if (event.type == trace::EventType::RmwCreateNode) {
        node_events_[event.pid] = event;
      }
    }
    const std::size_t old_size = buffer_.size();
    buffer_.insert(buffer_.end(), events.begin(), events.end());
    std::inplace_merge(buffer_.begin(),
                       buffer_.begin() + static_cast<std::ptrdiff_t>(old_size),
                       buffer_.end(),
                       [](const trace::TraceEvent& a,
                          const trace::TraceEvent& b) {
                         return a.time < b.time;
                       });
  }

  auto verdicts = advance_windows();
  if (verdicts.ok()) {
    stream_span.set_items(verdicts.value().size());
  }
  return verdicts;
}

api::Result<std::vector<WindowVerdict>> StreamSentinel::feed_file(
    const std::string& path) {
  trace::EventVector events;
  try {
    events = trace::is_ttb_file(path) ? trace::TtbReader(path).materialize()
                                      : trace::read_jsonl_file(path);
  } catch (const std::exception& e) {
    return api::Error{api::ErrorCode::Io, e.what(), path};
  }
  return feed(std::move(events));
}

trace::EventVector StreamSentinel::window_slice(TimePoint begin,
                                                TimePoint end) const {
  trace::EventVector slice;
  // The sticky node table rides along even when the creation events fall
  // outside the window: extraction resolves node names by pid, not time.
  for (const auto& [pid, event] : node_events_) slice.push_back(event);
  const auto lo = std::partition_point(
      buffer_.begin(), buffer_.end(),
      [&](const trace::TraceEvent& e) { return e.time < begin; });
  const auto hi = std::partition_point(
      lo, buffer_.end(),
      [&](const trace::TraceEvent& e) { return e.time < end; });
  for (auto it = lo; it != hi; ++it) {
    if (it->type == trace::EventType::RmwCreateNode) continue;  // already in
    slice.push_back(*it);
  }
  trace::sort_by_time(slice);
  return slice;
}

api::Result<std::vector<WindowVerdict>> StreamSentinel::advance_windows() {
  std::vector<WindowVerdict> verdicts;
  if (!have_origin_) return verdicts;
  const Duration span = config_.window_span;
  const Duration advance = config_.window_advance;

  while (stream_end_ - window_start_ >= span) {
    const TimePoint begin = window_start_;
    const TimePoint end = begin + span;
    trace::EventVector slice = window_slice(begin, end);
    const bool empty = slice.size() <= node_events_.size();
    if (empty) {
      // A gap in the stream (e.g. a large rebase jump): skip empty
      // windows in one step instead of evaluating vacuous total drift
      // once per advance.
      const auto next = std::partition_point(
          buffer_.begin(), buffer_.end(),
          [&](const trace::TraceEvent& e) { return e.time < begin; });
      if (next == buffer_.end()) {
        // Nothing buffered ahead either; wait for more data.
        break;
      }
      const std::int64_t gap_ns = (next->time - begin).count_ns();
      const std::int64_t steps =
          std::max<std::int64_t>(1, gap_ns / advance.count_ns());
      windows_skipped_empty_ += static_cast<std::size_t>(steps);
      window_index_ += static_cast<std::size_t>(steps);
      window_start_ += advance * steps;
      continue;
    }

    auto analysis = engine_.analyze(std::move(slice));
    if (!analysis.ok()) return analysis.error();
    WindowVerdict verdict = evaluate_window(begin, end, analysis.value());

    if (config_.refresh_after > 0 && !verdict.alarmed &&
        verdict.window_drifted &&
        consecutive_shifted_ >= config_.refresh_after) {
      const api::Error error = refresh_baseline_from_stream(begin, end);
      if (error.code != api::ErrorCode::None) return error;
      verdict.refreshed = true;
    }

    verdicts.push_back(std::move(verdict));
    ++windows_advanced_;
    ++window_index_;
    StreamMetrics::get().advanced.inc();
    window_start_ += advance;

    // Evict behind the window, keeping the refresh horizon when
    // auto-refresh needs to fold recent windows into a new baseline.
    Duration retain = Duration::zero();
    if (config_.refresh_after > 0) {
      retain = advance * static_cast<std::int64_t>(config_.refresh_after);
    }
    const TimePoint evict_before = window_start_ - retain;
    const auto keep = std::partition_point(
        buffer_.begin(), buffer_.end(),
        [&](const trace::TraceEvent& e) { return e.time < evict_before; });
    buffer_.erase(buffer_.begin(), keep);
  }
  return verdicts;
}

CusumAccumulator StreamSentinel::make_accumulator(DriftKind kind) const {
  switch (kind) {
    case DriftKind::VertexAdded:
    case DriftKind::VertexRemoved:
    case DriftKind::EdgeAdded:
    case DriftKind::EdgeRemoved:
      // Presence indicator (0/1) with allowance 0.5: crosses after
      // structural_hits consecutive present windows, decays at the same
      // rate over absent ones.
      return CusumAccumulator(
          0.5, 0.5 * static_cast<double>(config_.structural_hits));
    case DriftKind::PeriodShift:
      return CusumAccumulator(
          config_.cusum_reference_fraction * config_.period_tolerance,
          config_.cusum_threshold_fraction * config_.period_tolerance);
    case DriftKind::LatencyEnvelope:
      return CusumAccumulator(
          config_.cusum_reference_fraction * config_.latency_tolerance,
          config_.cusum_threshold_fraction * config_.latency_tolerance);
    case DriftKind::ExecTimeShift:
      // Restarted e-process: log e-values accumulate with no allowance;
      // Ville's inequality puts the crossing budget at ln(1/alpha).
      return CusumAccumulator(0.0,
                              e_value_log_threshold(config_.evidence_alpha));
    case DriftKind::DeadlineViolation:
      break;  // alarms immediately, never accumulated
  }
  return CusumAccumulator(0.0, 1.0);
}

WindowVerdict StreamSentinel::evaluate_window(TimePoint begin, TimePoint end,
                                              const WindowAnalysis& analysis) {
  WindowVerdict verdict;
  verdict.index = window_index_;
  verdict.begin = begin;
  verdict.end = end;
  verdict.events = analysis.verdict.window_events;
  verdict.checks = analysis.verdict.checks;
  verdict.transient = analysis.verdict.findings;
  verdict.window_drifted = analysis.verdict.drifted;

  // Feed this window's observations into the sequential accumulators.
  std::set<AccumulatorKey> observed;
  for (const AxisObservation& obs : analysis.observations) {
    if (obs.kind == DriftKind::DeadlineViolation) {
      // Hard violations alarm immediately; there is nothing to
      // accumulate about an SLO breach.
      DriftFinding finding;
      finding.kind = obs.kind;
      finding.subject = obs.subject;
      finding.detail = obs.detail;
      finding.statistic = obs.value;
      finding.p_value = 0.0;
      finding.evidence = obs.value;
      finding.windows = 1;
      verdict.alarms.push_back(std::move(finding));
      continue;
    }
    const AccumulatorKey key{obs.kind, obs.subject};
    auto [it, inserted] =
        accumulators_.try_emplace(key, make_accumulator(obs.kind));
    CusumAccumulator& acc = it->second;
    if (obs.kind == DriftKind::ExecTimeShift) {
      if (obs.n_baseline < config_.sequential_min_samples ||
          obs.n_window < config_.sequential_min_samples) {
        continue;  // starved window: no evidence either way
      }
      acc.observe(std::log(
          p_to_e_value(obs.p_value, config_.max_window_e_value)));
    } else {
      acc.observe(obs.value);
    }
    observed.insert(key);
    if (!obs.detail.empty()) {
      last_details_[key] = obs.detail;
    } else if (obs.kind == DriftKind::ExecTimeShift) {
      last_details_[key] = "KS D = " + format_double(obs.value);
    }
  }
  // Structural accumulators decay over windows where the difference is
  // gone (the debounce half of the hysteresis); the delta axes re-observe
  // every window by construction, so only structural keys need this.
  for (auto& [key, acc] : accumulators_) {
    const bool structural = key.first == DriftKind::VertexAdded ||
                            key.first == DriftKind::VertexRemoved ||
                            key.first == DriftKind::EdgeAdded ||
                            key.first == DriftKind::EdgeRemoved;
    if (structural && observed.count(key) == 0) acc.observe(0.0);
  }

  // Emit an alarm for every accumulator over its budgeted level.
  for (const auto& [key, acc] : accumulators_) {
    if (!acc.crossed()) continue;
    DriftFinding finding;
    finding.kind = key.first;
    finding.subject = key.second;
    finding.statistic = acc.value();
    finding.evidence = acc.value();
    finding.windows = acc.observations();
    if (key.first == DriftKind::ExecTimeShift) {
      // Anytime-valid bound on the accumulated e-process (satellite 3:
      // NOT a per-window KS p-value).
      finding.p_value = std::min(1.0, std::exp(-acc.value()));
    } else {
      finding.p_value = config_.evidence_alpha;
    }
    std::string detail = "sequential evidence crossed after " +
                         std::to_string(acc.observations()) +
                         " windows (S = " + format_double(acc.value()) +
                         ", threshold = " + format_double(acc.threshold()) +
                         ")";
    const auto detail_it = last_details_.find(key);
    if (detail_it != last_details_.end() && !detail_it->second.empty()) {
      detail += "; last window: " + detail_it->second;
    }
    finding.detail = std::move(detail);
    verdict.alarms.push_back(std::move(finding));
  }
  std::sort(verdict.alarms.begin(), verdict.alarms.end(),
            [](const DriftFinding& a, const DriftFinding& b) {
              return std::tie(a.kind, a.subject) < std::tie(b.kind, b.subject);
            });
  verdict.alarmed = !verdict.alarms.empty();
  // Localization explains findings; a clean window has nothing to
  // localize and must not render its residual evidence as a ranking.
  if (verdict.alarmed || verdict.window_drifted) {
    verdict.localization = localize();
  }

  // Refresh hysteresis: count consecutive clean-but-shifted windows. A
  // window under an active alarm never counts (the operator is already
  // paged; auto-refresh must not absorb alarmed drift), and a clean
  // window breaks the streak.
  if (verdict.alarmed || !verdict.window_drifted) {
    consecutive_shifted_ = 0;
  } else {
    ++consecutive_shifted_;
  }
  return verdict;
}

std::vector<AxisScore> StreamSentinel::localize() const {
  // Accumulators far from their threshold are noise (a clean stream's
  // e-process wobbles a little above zero); ranking them would render a
  // confident-looking localization out of nothing.
  constexpr double kMinFraction = 0.1;
  std::map<std::string, double> scores;
  for (const auto& [key, acc] : accumulators_) {
    if (acc.value() <= 0.0) continue;
    const double fraction =
        acc.threshold() > 0.0 ? std::min(1.0, acc.value() / acc.threshold())
                              : 1.0;
    if (fraction < kMinFraction) continue;
    for (const auto& [axis, weight] : axis_weights(key.first)) {
      scores[axis] += weight * fraction;
    }
  }
  double total = 0.0;
  for (const auto& [axis, score] : scores) total += score;
  std::vector<AxisScore> ranked;
  if (total <= 0.0) return ranked;
  for (const auto& [axis, score] : scores) {
    ranked.push_back(AxisScore{axis, score / total});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const AxisScore& a, const AxisScore& b) {
              return std::tie(b.score, a.axis) < std::tie(a.score, b.axis);
            });
  return ranked;
}

api::Error StreamSentinel::refresh_baseline_from_stream(TimePoint window_begin,
                                                        TimePoint window_end) {
  // Fold the union of the last refresh_after windows into the new
  // baseline: [begin - (K-1) * advance, end) is still buffered because
  // eviction retains the refresh horizon.
  const TimePoint fold_begin =
      window_begin -
      config_.window_advance *
          static_cast<std::int64_t>(config_.refresh_after - 1);
  trace::EventVector fold = window_slice(fold_begin, window_end);
  engine_.reset_baseline();
  auto ingested = engine_.ingest_baseline(std::move(fold));
  if (!ingested.ok()) return ingested.error();
  const api::Error error = engine_.ensure_baseline();
  if (error.code != api::ErrorCode::None) return error;
  // The old evidence measured distance to the retired baseline.
  accumulators_.clear();
  last_details_.clear();
  consecutive_shifted_ = 0;
  ++refreshes_;
  StreamMetrics::get().refreshes.inc();
  return {};
}

}  // namespace tetra::sentinel
