// StreamSentinel: continuous drift detection over an event stream.
//
// Events arrive incrementally (feed / feed_file); a sliding window of
// configurable span and advance is maintained over the stream, and every
// window advance re-runs the drift axes against the baseline through the
// shared DriftEngine. Unlike the one-shot ModelSentinel, per-axis
// evidence accumulates *sequentially* across windows — a one-sided CUSUM
// over period/latency deltas and structural presence, and a restarted
// e-process over the per-window KS p-values — so an alarm fires when the
// accumulated evidence crosses a budgeted level (Ville's inequality), not
// when one window happens to look odd.
//
//   sentinel::StreamSentinel stream(config);
//   stream.ingest_baseline_file("baseline.jsonl");
//   auto verdicts = stream.feed_file("segment-000.jsonl");
//   for (const auto& w : verdicts.value())
//     if (w.alarmed) page(window_verdict_to_json(w));
//
// Drift localization ranks which ScenarioGenerator::mutate axis best
// explains the accumulated findings, and baseline auto-refresh (with
// hysteresis, config.refresh_after) folds a persistently clean-but-
// shifted stream into a new baseline — emitting an operator-visible
// BaselineRefreshed window flag, never silently.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "api/result.hpp"
#include "sentinel/engine.hpp"
#include "support/statistics.hpp"
#include "support/time.hpp"
#include "trace/event.hpp"

namespace tetra::sentinel {

class StreamSentinel {
 public:
  StreamSentinel() : StreamSentinel(SentinelConfig{}) {}
  explicit StreamSentinel(SentinelConfig config);

  // -- baseline -----------------------------------------------------------

  /// Adds one event segment to the baseline trace. May be called several
  /// times (segments k-way merge); the baseline model is re-synthesized
  /// lazily on the next check or feed.
  api::Result<api::SegmentInfo> ingest_baseline(trace::EventVector events);
  /// Reads a JSONL or .ttb trace file into the baseline.
  api::Result<api::SegmentInfo> ingest_baseline_file(const std::string& path);
  /// The baseline model (synthesizing it first if dirty).
  api::Result<core::TimingModel> baseline_model();

  // -- one-shot windows (ModelSentinel compatibility) ---------------------

  /// Synthesizes `events` as one independent window and compares it
  /// against the baseline; no streaming state is touched.
  api::Result<DriftVerdict> check_window(trace::EventVector events);
  /// Reads a JSONL or .ttb trace file and checks it as one window.
  api::Result<DriftVerdict> check_window_file(const std::string& path);

  // -- streaming ----------------------------------------------------------

  /// Feeds one batch of events into the stream and returns the verdicts
  /// of every window that closed. InvalidArgument when the window
  /// geometry is invalid (advance > span, non-positive span/advance) or
  /// no baseline was ingested. With config.rebase_segments each batch
  /// after the first is shifted to start rebase_gap after the previous
  /// batch's last event; without it, events older than the current
  /// window start are dropped (and counted in late_events()).
  api::Result<std::vector<WindowVerdict>> feed(trace::EventVector events);
  /// Reads a JSONL or .ttb trace file and feeds it as one batch.
  api::Result<std::vector<WindowVerdict>> feed_file(const std::string& path);

  // -- introspection ------------------------------------------------------

  const SentinelConfig& config() const { return config_; }
  /// Windows evaluated in total (streaming advances + one-shot checks).
  std::size_t windows_checked() const { return engine_.windows_analyzed(); }
  /// Streaming windows closed so far.
  std::size_t windows_advanced() const { return windows_advanced_; }
  /// Baseline auto-refreshes fired so far.
  std::size_t refreshes() const { return refreshes_; }
  /// Events dropped because they arrived before the current window start
  /// (only possible with config.rebase_segments off).
  std::size_t late_events() const { return late_events_; }
  /// Empty windows skipped over stream gaps (no events in span).
  std::size_t windows_skipped_empty() const { return windows_skipped_empty_; }

 private:
  /// One sequential accumulator per (axis, subject).
  using AccumulatorKey = std::pair<DriftKind, std::string>;

  api::Result<std::vector<WindowVerdict>> advance_windows();
  WindowVerdict evaluate_window(TimePoint begin, TimePoint end,
                                const WindowAnalysis& analysis);
  /// Folds the last refresh_after windows into a new baseline.
  api::Error refresh_baseline_from_stream(TimePoint window_begin,
                                          TimePoint window_end);
  CusumAccumulator make_accumulator(DriftKind kind) const;
  std::vector<AxisScore> localize() const;
  trace::EventVector window_slice(TimePoint begin, TimePoint end) const;

  SentinelConfig config_;
  DriftEngine engine_;

  /// Buffered stream events, time-sorted; evicted behind the window (plus
  /// the refresh horizon when auto-refresh is enabled).
  trace::EventVector buffer_;
  /// Sticky node table: the latest RmwCreateNode event per pid. Node
  /// creation happens once at process start, so mid-stream windows would
  /// otherwise synthesize nameless callbacks whose vertex keys all differ
  /// from the baseline — every clean window would look like total
  /// structural drift. The table is prepended to every window slice.
  std::map<Pid, trace::TraceEvent> node_events_;

  bool have_origin_ = false;
  TimePoint window_start_;
  TimePoint stream_end_;
  std::size_t window_index_ = 0;

  std::map<AccumulatorKey, CusumAccumulator> accumulators_;
  /// Detail/value of the last observation per accumulator, for alarm
  /// rendering.
  std::map<AccumulatorKey, std::string> last_details_;

  std::size_t consecutive_shifted_ = 0;
  std::size_t windows_advanced_ = 0;
  std::size_t refreshes_ = 0;
  std::size_t late_events_ = 0;
  std::size_t windows_skipped_empty_ = 0;
};

}  // namespace tetra::sentinel
