// Drift verdict types shared by the one-shot (ModelSentinel) and
// streaming (StreamSentinel) entry points, plus their byte-stable JSON
// renderings (schema documented in docs/SENTINEL.md).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "support/time.hpp"

namespace tetra::sentinel {

/// Version of the verdict JSON schema emitted by verdict_to_json and
/// window_verdict_to_json. Bumped whenever a field is added, removed or
/// changes meaning; consumers should reject versions they don't know.
inline constexpr std::uint64_t kVerdictSchemaVersion = 2;

/// One detected drift axis.
enum class DriftKind : std::uint8_t {
  VertexAdded,        ///< callback/junction in the window, not the baseline
  VertexRemoved,      ///< callback/junction in the baseline, not the window
  EdgeAdded,          ///< precedence relation only the window shows
  EdgeRemoved,        ///< precedence relation the window lost
  ExecTimeShift,      ///< execution-time distribution shifted (two-sample KS)
  PeriodShift,        ///< timer period moved beyond the tolerance
  LatencyEnvelope,    ///< chain latency left the baseline envelope
  DeadlineViolation,  ///< chain latency exceeded a configured deadline
};

std::string_view to_string(DriftKind kind);

struct DriftFinding {
  DriftKind kind = DriftKind::VertexAdded;
  /// What drifted: a vertex key, a callback label, "from -> to" for
  /// edges, or a chain's plain topic path joined with " -> ".
  std::string subject;
  std::string detail;  ///< human-readable explanation
  /// Axis-specific magnitude: KS statistic, relative period/latency
  /// delta, or deadline-miss fraction. 1.0 for structural findings. For
  /// sequential (streaming) findings: the accumulated CUSUM statistic.
  double statistic = 1.0;
  /// For a one-shot ExecTimeShift: the per-window KS p-value. For a
  /// sequential finding this is NOT a per-window p-value — it is the
  /// anytime-valid bound exp(-evidence) for the exec-time e-process, and
  /// the configured alarm budget (SentinelConfig::evidence_alpha) for
  /// the CUSUM axes. 0.0 where the change is certain (structural,
  /// deadline).
  double p_value = 0.0;
  /// Accumulated sequential evidence at emission time (CUSUM statistic,
  /// log e-value for the exec axis); 0.0 for one-shot findings.
  double evidence = 0.0;
  /// Windows of evidence behind a sequential finding; 0 for one-shot.
  std::uint64_t windows = 0;
};

/// Structured verdict of one window check. `drifted` is true iff any
/// finding fired; `checks` counts the statistical comparisons that ran
/// (sample-starved callbacks are skipped, not silently passed).
struct DriftVerdict {
  bool drifted = false;
  std::vector<DriftFinding> findings;  ///< sorted by (kind, subject)
  std::size_t checks = 0;

  std::size_t baseline_events = 0;
  std::size_t baseline_vertices = 0;
  std::size_t baseline_edges = 0;
  std::size_t window_events = 0;
  std::size_t window_vertices = 0;
  std::size_t window_edges = 0;
};

/// Compact single-object JSON rendering of a verdict. Deterministic for a
/// deterministic input trace.
std::string verdict_to_json(const DriftVerdict& verdict);

/// How well one ScenarioGenerator::mutate axis explains the accumulated
/// streaming evidence; scores are normalized to sum to 1 across axes.
struct AxisScore {
  std::string axis;  ///< "drop-edge", "add-edge", "retime-timer", ...
  double score = 0.0;
};

/// Verdict of one streaming window advance. `transient` holds the
/// per-window findings (one-shot thresholds — informational); `alarms`
/// holds the sequential findings whose accumulated evidence crossed the
/// budgeted level, plus any deadline violations (alarming immediately).
struct WindowVerdict {
  std::size_t index = 0;  ///< 0-based window number since stream start
  TimePoint begin;        ///< window [begin, end) in stream event time
  TimePoint end;
  std::size_t events = 0;  ///< events in the window slice
  std::size_t checks = 0;  ///< statistical comparisons run this window
  bool window_drifted = false;  ///< any transient finding
  bool alarmed = false;         ///< any sequential alarm active
  bool refreshed = false;       ///< BaselineRefreshed fired this window
  std::vector<DriftFinding> alarms;     ///< sorted by (kind, subject)
  std::vector<DriftFinding> transient;  ///< sorted by (kind, subject)
  std::vector<AxisScore> localization;  ///< sorted by score desc, axis asc
};

/// One-line JSON rendering of a streaming window verdict; byte-stable for
/// a deterministic stream (the CI determinism job diffs two runs).
std::string window_verdict_to_json(const WindowVerdict& verdict);

}  // namespace tetra::sentinel
