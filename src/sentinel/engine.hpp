// DriftEngine: the comparison core shared by the one-shot and streaming
// sentinels. It owns the baseline (ingested through api::SynthesisSession
// and cached as model + exec samples + chain envelopes) and evaluates one
// window of events against it, reporting both the per-window verdict
// (one-shot thresholds) and the raw per-axis observations the streaming
// layer feeds into its sequential accumulators.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "analysis/latency.hpp"
#include "api/result.hpp"
#include "api/session.hpp"
#include "core/model_synthesis.hpp"
#include "sentinel/config.hpp"
#include "sentinel/verdict.hpp"
#include "trace/event.hpp"

namespace tetra::sentinel {

/// One raw measurement on one drift axis, before any thresholding. The
/// streaming layer accumulates these across windows; `finding` is set iff
/// the observation crossed the one-shot (per-window) thresholds.
struct AxisObservation {
  DriftKind kind = DriftKind::VertexAdded;
  std::string subject;
  /// Axis magnitude: KS statistic (exec), relative delta (period,
  /// latency), miss fraction (deadline), 1.0 (structural).
  double value = 0.0;
  /// KS p-value for the exec axis; 1.0 elsewhere.
  double p_value = 1.0;
  std::size_t n_baseline = 0;  ///< samples on the baseline side (exec)
  std::size_t n_window = 0;    ///< samples on the window side (exec)
  bool finding = false;        ///< crossed the per-window thresholds
  std::string detail;          ///< set when finding is true
};

struct WindowAnalysis {
  DriftVerdict verdict;  ///< one-shot semantics, findings sorted
  std::vector<AxisObservation> observations;
};

class DriftEngine {
 public:
  explicit DriftEngine(SentinelConfig config);

  // -- baseline -----------------------------------------------------------

  api::Result<api::SegmentInfo> ingest_baseline(trace::EventVector events);
  api::Result<api::SegmentInfo> ingest_baseline_file(const std::string& path);
  api::Result<core::TimingModel> baseline_model();
  /// Synthesizes the baseline cache if dirty; InvalidArgument when no
  /// baseline was ingested.
  api::Error ensure_baseline();
  /// Drops the baseline entirely (auto-refresh re-ingests afterwards).
  void reset_baseline();

  // -- window evaluation --------------------------------------------------

  /// Synthesizes `events` as one window (in an ephemeral session, so
  /// long streams do not accumulate per-window state) and compares it
  /// against the baseline.
  api::Result<WindowAnalysis> analyze(trace::EventVector events);
  /// Reads a JSONL or .ttb trace file and analyzes it as one window.
  api::Result<WindowAnalysis> analyze_file(const std::string& path);

  // -- introspection ------------------------------------------------------

  const SentinelConfig& config() const { return config_; }
  std::size_t windows_analyzed() const { return window_counter_; }

 private:
  struct BaselineChain {
    std::string key;                  ///< plain topic path, " -> " joined
    std::vector<std::string> topics;  ///< measure_chain_latency argument
    analysis::ChainLatencyResult latency;
  };
  struct BaselineCache {
    bool valid = false;
    core::TimingModel model;
    std::size_t events = 0;
    /// Per-label raw execution-time samples (ns), KS baseline side.
    std::map<std::string, std::vector<double>> exec_samples;
    std::vector<BaselineChain> chains;
  };

  api::Result<WindowAnalysis> analyze_ingested(
      api::SynthesisSession& window_session, const std::string& trace_id);

  SentinelConfig config_;
  api::SynthesisSession session_;  ///< baseline segments only
  BaselineCache baseline_;
  std::size_t window_counter_ = 0;
};

}  // namespace tetra::sentinel
