// SentinelConfig: the one configuration shared by both sentinel entry
// points — the one-shot ModelSentinel::check and the streaming
// StreamSentinel::feed. Per-window thresholds come first (they also gate
// the transient findings of every streaming window); the streaming
// window geometry and sequential-evidence knobs follow.
#pragma once

#include <cstddef>
#include <map>
#include <string>

#include "api/config.hpp"
#include "support/time.hpp"

namespace tetra::sentinel {

struct SentinelConfig {
  // -- per-window thresholds ----------------------------------------------

  /// Significance level of the two-sample KS execution-time test. The
  /// default trades detection lag for a near-zero false-alarm rate over
  /// the hundreds of per-callback tests a long-running sentinel performs.
  double alpha = 1e-4;
  /// Minimum samples per side before the KS test can produce a
  /// per-window finding; below this the asymptotic p-value is unreliable
  /// in both directions.
  std::size_t min_samples = 8;
  /// Relative timer-period change that counts as drift.
  double period_tolerance = 0.2;
  /// Relative mean chain-latency change that counts as drift.
  double latency_tolerance = 0.5;
  /// Chain enumeration guard (pathological DAGs).
  std::size_t max_chains = 256;
  /// Optional per-chain deadlines, keyed by the chain's plain topic path
  /// joined with " -> " (the DriftFinding subject format). Any window
  /// instance above the deadline raises DeadlineViolation — immediately,
  /// even in streaming mode (a hard violation is not statistical).
  std::map<std::string, Duration> chain_deadlines;
  /// Synthesis pipeline configuration. Must keep MergeStrategy::MergeDags
  /// (the sentinel compares per-trace models and releases window events).
  api::SynthesisConfig synthesis;

  // -- streaming window geometry ------------------------------------------

  /// Event-time span of one sliding window. Must comfortably exceed the
  /// longest timer period in the system or every window looks
  /// structurally starved.
  Duration window_span = Duration::ms(1000);
  /// Event-time step between window starts; advance < span overlaps
  /// windows, advance == span tiles them. feed() rejects advance > span
  /// (events would be skipped) and non-positive values.
  Duration window_advance = Duration::ms(500);
  /// Rebase each fed segment to start rebase_gap after the previous
  /// segment's last event. Required when following a directory of
  /// per-run segment files that each restart near t=0.
  bool rebase_segments = false;
  Duration rebase_gap = Duration::ms(1);

  // -- sequential evidence ------------------------------------------------

  /// Per-stream alarm budget: sequential evidence must reach
  /// ln(1/evidence_alpha) (exec-time e-process) or the per-axis CUSUM
  /// threshold before an alarm fires. By Ville's inequality this bounds
  /// the probability a clean stream ever alarms on one accumulator.
  double evidence_alpha = 1e-3;
  /// Minimum samples per side before a window's KS result feeds the
  /// sequential exec-time accumulator (lower than min_samples: evidence
  /// merely accumulates, it does not alarm by itself).
  std::size_t sequential_min_samples = 4;
  /// Clamp on one window's e-value contribution, so a single aberrant
  /// window (or an optimistic small-sample p approximation) cannot carry
  /// an alarm alone.
  double max_window_e_value = 20.0;
  /// Consecutive windows a structural difference must persist before its
  /// alarm fires; debounces transient drops and window-boundary effects.
  std::size_t structural_hits = 2;
  /// CUSUM geometry for the period/latency delta axes, as fractions of
  /// the matching per-window tolerance: the reference (allowance)
  /// absorbs reference_fraction * tolerance of drift per window, and the
  /// alarm threshold sits at threshold_fraction * tolerance of
  /// accumulated excess.
  double cusum_reference_fraction = 0.5;
  double cusum_threshold_fraction = 2.0;

  // -- baseline auto-refresh ----------------------------------------------

  /// After this many consecutive clean-but-shifted windows (transient
  /// findings present, no sequential alarm active) the stream is folded
  /// into a new baseline and a BaselineRefreshed event is emitted. Keep
  /// it well above the typical alarm latency or a real drift can be
  /// absorbed before it alarms. 0 disables auto-refresh (default).
  std::size_t refresh_after = 0;
};

/// Historical name of the one-shot configuration; both entry points now
/// share SentinelConfig.
using SentinelOptions = SentinelConfig;

}  // namespace tetra::sentinel
