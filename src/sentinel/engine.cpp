#include "sentinel/engine.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>
#include <tuple>
#include <utility>

#include "analysis/chains.hpp"
#include "support/statistics.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"

namespace tetra::sentinel {

namespace {

constexpr const char* kBaselineTraceId = "baseline";

struct SentinelMetrics {
  telemetry::Counter& windows = telemetry::MetricsRegistry::global().counter(
      "sentinel.windows_checked");
  telemetry::Histogram& ks_ns = telemetry::MetricsRegistry::global().histogram(
      "sentinel.ks_test_ns",
      {1'000, 10'000, 100'000, 1'000'000, 10'000'000, 100'000'000});

  static SentinelMetrics& get() {
    static SentinelMetrics metrics;
    return metrics;
  }

  telemetry::Counter& findings(DriftKind kind) {
    return telemetry::MetricsRegistry::global().counter(
        "sentinel.findings", {{"kind", std::string(to_string(kind))}});
  }
};

std::string format_double(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.6g", v);
  return buffer;
}

/// Raw per-label execution-time samples (ns) of a synthesized model. A
/// label maps to exactly one record per node list; records from several
/// lists (one per node) never share labels.
std::map<std::string, std::vector<double>> collect_exec_samples(
    const core::TimingModel& model) {
  std::map<std::string, std::vector<double>> samples;
  for (const auto& list : model.node_callbacks) {
    for (const auto& record : list.records) {
      if (record.label.empty()) continue;
      auto& out = samples[record.label];
      out.reserve(out.size() + record.exec_times.size());
      for (const auto exec : record.exec_times) {
        out.push_back(static_cast<double>(exec.count_ns()));
      }
    }
  }
  return samples;
}

std::set<std::string> vertex_keys(const core::Dag& dag) {
  std::set<std::string> keys;
  for (const auto& vertex : dag.vertices()) keys.insert(vertex.key);
  return keys;
}

using EdgeKey = std::tuple<std::string, std::string, std::string>;

std::set<EdgeKey> edge_keys(const core::Dag& dag) {
  std::set<EdgeKey> keys;
  for (const auto& edge : dag.edges()) {
    keys.insert(EdgeKey{edge.from, edge.to, edge.topic});
  }
  return keys;
}

std::string chain_key(const std::vector<std::string>& topics) {
  std::string key;
  for (const auto& topic : topics) {
    if (!key.empty()) key += " -> ";
    key += topic;
  }
  return key;
}

AxisObservation structural_observation(DriftKind kind, std::string subject,
                                       std::string detail) {
  AxisObservation obs;
  obs.kind = kind;
  obs.subject = std::move(subject);
  obs.value = 1.0;
  obs.p_value = 0.0;
  obs.finding = true;
  obs.detail = std::move(detail);
  return obs;
}

void add_structural_observations(const core::Dag& baseline,
                                 const core::Dag& window,
                                 std::vector<AxisObservation>& observations) {
  const auto base_vertices = vertex_keys(baseline);
  const auto window_vertices = vertex_keys(window);
  for (const auto& key : base_vertices) {
    if (window_vertices.count(key) == 0) {
      observations.push_back(structural_observation(
          DriftKind::VertexRemoved, key,
          "callback present in the baseline model never executed in the "
          "window"));
    }
  }
  for (const auto& key : window_vertices) {
    if (base_vertices.count(key) == 0) {
      observations.push_back(structural_observation(
          DriftKind::VertexAdded, key,
          "window executed a callback the baseline model does not contain"));
    }
  }

  const auto base_edges = edge_keys(baseline);
  const auto win_edges = edge_keys(window);
  for (const auto& [from, to, topic] : base_edges) {
    if (win_edges.count(EdgeKey{from, to, topic}) == 0) {
      observations.push_back(structural_observation(
          DriftKind::EdgeRemoved, from + " -> " + to,
          "baseline precedence relation on " + topic +
              " absent from the window"));
    }
  }
  for (const auto& [from, to, topic] : win_edges) {
    if (base_edges.count(EdgeKey{from, to, topic}) == 0) {
      observations.push_back(structural_observation(
          DriftKind::EdgeAdded, from + " -> " + to,
          "window shows a precedence relation on " + topic +
              " the baseline lacks"));
    }
  }
}

}  // namespace

DriftEngine::DriftEngine(SentinelConfig config)
    : config_(std::move(config)), session_(config_.synthesis) {}

api::Result<api::SegmentInfo> DriftEngine::ingest_baseline(
    trace::EventVector events) {
  baseline_.valid = false;
  api::IngestOptions ingest;
  ingest.trace_id = kBaselineTraceId;
  return session_.ingest(std::move(events), ingest);
}

api::Result<api::SegmentInfo> DriftEngine::ingest_baseline_file(
    const std::string& path) {
  baseline_.valid = false;
  api::IngestOptions ingest;
  ingest.trace_id = kBaselineTraceId;
  return session_.ingest_file(path, ingest);
}

api::Result<core::TimingModel> DriftEngine::baseline_model() {
  const api::Error error = ensure_baseline();
  if (error.code != api::ErrorCode::None) return error;
  return baseline_.model;
}

void DriftEngine::reset_baseline() {
  session_.clear();
  baseline_ = BaselineCache{};
}

api::Error DriftEngine::ensure_baseline() {
  if (baseline_.valid) return {};
  auto model = session_.trace_model(kBaselineTraceId);
  if (!model.ok()) {
    if (model.error().code == api::ErrorCode::UnknownTrace) {
      return api::Error{api::ErrorCode::InvalidArgument,
                        "no baseline ingested before the first check",
                        kBaselineTraceId};
    }
    return model.error();
  }
  auto events = session_.merged_events(kBaselineTraceId);
  if (!events.ok()) return events.error();

  baseline_.model = std::move(model).take();
  baseline_.events = events.value().size();
  baseline_.exec_samples = collect_exec_samples(baseline_.model);
  baseline_.chains.clear();

  const analysis::InstanceTimeline timeline(events.value());
  const auto enumeration =
      analysis::enumerate_chains(baseline_.model.dag, config_.max_chains);
  for (const auto& chain : enumeration.chains) {
    BaselineChain entry;
    entry.topics = analysis::chain_topics(baseline_.model.dag, chain);
    if (entry.topics.empty()) continue;
    entry.key = chain_key(entry.topics);
    entry.latency = analysis::measure_chain_latency(timeline, entry.topics);
    // A chain the baseline itself never completed carries no envelope.
    if (entry.latency.complete == 0) continue;
    // Chains can repeat a topic path (per-caller service splits); keep the
    // first — same topics means the same measured samples.
    const bool duplicate =
        std::any_of(baseline_.chains.begin(), baseline_.chains.end(),
                    [&](const BaselineChain& c) { return c.key == entry.key; });
    if (!duplicate) baseline_.chains.push_back(std::move(entry));
  }
  baseline_.valid = true;
  return {};
}

api::Result<WindowAnalysis> DriftEngine::analyze(trace::EventVector events) {
  const api::Error error = ensure_baseline();
  if (error.code != api::ErrorCode::None) return error;
  api::SynthesisSession window_session(config_.synthesis);
  api::IngestOptions ingest;
  ingest.trace_id = "window";
  auto segment = window_session.ingest(std::move(events), ingest);
  if (!segment.ok()) return segment.error();
  return analyze_ingested(window_session, ingest.trace_id);
}

api::Result<WindowAnalysis> DriftEngine::analyze_file(
    const std::string& path) {
  const api::Error error = ensure_baseline();
  if (error.code != api::ErrorCode::None) return error;
  api::SynthesisSession window_session(config_.synthesis);
  api::IngestOptions ingest;
  ingest.trace_id = "window";
  auto segment = window_session.ingest_file(path, ingest);
  if (!segment.ok()) return segment.error();
  return analyze_ingested(window_session, ingest.trace_id);
}

api::Result<WindowAnalysis> DriftEngine::analyze_ingested(
    api::SynthesisSession& window_session, const std::string& trace_id) {
  ++window_counter_;
  SentinelMetrics::get().windows.inc();
  telemetry::ScopedSpan check_span("sentinel.check");
  auto model = window_session.trace_model(trace_id);
  if (!model.ok()) return model.error();
  auto events = window_session.merged_events(trace_id);
  if (!events.ok()) return events.error();
  const core::TimingModel& window = model.value();

  WindowAnalysis analysis;
  DriftVerdict& verdict = analysis.verdict;
  verdict.baseline_events = baseline_.events;
  verdict.baseline_vertices = baseline_.model.dag.vertex_count();
  verdict.baseline_edges = baseline_.model.dag.edge_count();
  verdict.window_events = events.value().size();
  verdict.window_vertices = window.dag.vertex_count();
  verdict.window_edges = window.dag.edge_count();

  // Axis 1: structure (vertex and edge sets).
  add_structural_observations(baseline_.model.dag, window.dag,
                              analysis.observations);

  // Axis 2: per-callback execution-time distributions (two-sample KS on
  // the raw samples). The test runs from sequential_min_samples per side
  // so streaming evidence can accumulate early, but a per-window finding
  // still requires min_samples (the asymptotic p-value is unreliable
  // below that, in both directions).
  const std::size_t ks_gate =
      std::min(config_.min_samples, config_.sequential_min_samples);
  const auto window_samples = collect_exec_samples(window);
  for (const auto& [label, base] : baseline_.exec_samples) {
    const auto it = window_samples.find(label);
    if (it == window_samples.end()) continue;  // structural finding already
    if (base.size() < ks_gate || it->second.size() < ks_gate) continue;
    const std::int64_t ks_started = telemetry::clock_now();
    const KsTestResult ks = two_sample_ks_test(base, it->second);
    SentinelMetrics::get().ks_ns.observe(telemetry::clock_now() - ks_started);

    AxisObservation obs;
    obs.kind = DriftKind::ExecTimeShift;
    obs.subject = label;
    obs.value = ks.statistic;
    obs.p_value = ks.p_value;
    obs.n_baseline = ks.n1;
    obs.n_window = ks.n2;
    const bool gated =
        base.size() >= config_.min_samples &&
        it->second.size() >= config_.min_samples;
    if (gated) ++verdict.checks;
    if (gated && ks.significant(config_.alpha)) {
      obs.finding = true;
      obs.detail = "execution-time distribution shifted (D = " +
                   format_double(ks.statistic) + " over " +
                   std::to_string(ks.n1) + " baseline / " +
                   std::to_string(ks.n2) + " window samples)";
    }
    analysis.observations.push_back(std::move(obs));
  }

  // Axis 3: timer periods (estimated from start times by the synthesis).
  for (const auto& base_vertex : baseline_.model.dag.vertices()) {
    if (!base_vertex.period.has_value()) continue;
    const auto* win_vertex = window.dag.find_vertex(base_vertex.key);
    if (win_vertex == nullptr || !win_vertex->period.has_value()) continue;
    const double base_ms = base_vertex.period->to_ms();
    const double win_ms = win_vertex->period->to_ms();
    if (base_ms <= 0.0) continue;
    ++verdict.checks;
    const double rel = std::abs(win_ms - base_ms) / base_ms;
    AxisObservation obs;
    obs.kind = DriftKind::PeriodShift;
    obs.subject = base_vertex.key;
    obs.value = rel;
    if (rel > config_.period_tolerance) {
      obs.finding = true;
      obs.detail = "timer period moved from " + format_double(base_ms) +
                   "ms to " + format_double(win_ms) + "ms";
    }
    analysis.observations.push_back(std::move(obs));
  }

  // Axis 4: chain-latency envelopes (and configured deadlines).
  const analysis::InstanceTimeline timeline(events.value());
  for (const auto& chain : baseline_.chains) {
    const auto latency =
        analysis::measure_chain_latency(timeline, chain.topics);
    ++verdict.checks;
    AxisObservation obs;
    obs.kind = DriftKind::LatencyEnvelope;
    obs.subject = chain.key;
    if (latency.complete == 0) {
      // Never completing is the strongest latency signal a window can
      // give; the magnitude saturates well past the per-window tolerance
      // so the sequential accumulator crosses within a couple windows.
      obs.value = config_.latency_tolerance * 2.0 + 1.0;
      obs.finding = true;
      obs.detail = "chain completed " +
                   std::to_string(chain.latency.complete) +
                   " times in the baseline but never in the window";
      analysis.observations.push_back(std::move(obs));
      continue;
    }
    const double base_mean = chain.latency.latencies.mean();
    const double win_mean = latency.latencies.mean();
    if (base_mean > 0.0) {
      const double rel = std::abs(win_mean - base_mean) / base_mean;
      obs.value = rel;
      if (rel > config_.latency_tolerance) {
        obs.finding = true;
        obs.detail = "mean end-to-end latency moved from " +
                     format_double(base_mean / 1e6) + "ms to " +
                     format_double(win_mean / 1e6) + "ms";
      }
      analysis.observations.push_back(std::move(obs));
    }
    const auto deadline = config_.chain_deadlines.find(chain.key);
    if (deadline != config_.chain_deadlines.end()) {
      ++verdict.checks;
      const auto limit = static_cast<double>(deadline->second.count_ns());
      std::size_t misses = 0;
      for (const double sample : latency.latencies.samples()) {
        if (sample > limit) ++misses;
      }
      if (misses > 0) {
        const double fraction =
            static_cast<double>(misses) /
            static_cast<double>(latency.latencies.count());
        AxisObservation miss;
        miss.kind = DriftKind::DeadlineViolation;
        miss.subject = chain.key;
        miss.value = fraction;
        miss.p_value = 0.0;
        miss.finding = true;
        miss.detail = std::to_string(misses) + " of " +
                      std::to_string(latency.latencies.count()) +
                      " window instances exceeded the " +
                      format_double(deadline->second.to_ms()) + "ms deadline";
        analysis.observations.push_back(std::move(miss));
      }
    }
  }

  // The per-window verdict keeps the original one-shot semantics: every
  // observation that crossed its threshold becomes a finding.
  for (const AxisObservation& obs : analysis.observations) {
    if (!obs.finding) continue;
    DriftFinding finding;
    finding.kind = obs.kind;
    finding.subject = obs.subject;
    finding.detail = obs.detail;
    finding.statistic = obs.value;
    finding.p_value = obs.kind == DriftKind::ExecTimeShift ? obs.p_value : 0.0;
    verdict.findings.push_back(std::move(finding));
  }
  std::sort(verdict.findings.begin(), verdict.findings.end(),
            [](const DriftFinding& a, const DriftFinding& b) {
              return std::tie(a.kind, a.subject) < std::tie(b.kind, b.subject);
            });
  verdict.drifted = !verdict.findings.empty();
  for (const DriftFinding& finding : verdict.findings) {
    SentinelMetrics::get().findings(finding.kind).inc();
  }
  check_span.set_items(verdict.checks);
  return analysis;
}

}  // namespace tetra::sentinel
