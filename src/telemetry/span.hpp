// Hierarchical stage timing: ScopedSpan RAII timers recording into a
// bounded process-wide ring buffer.
//
//   {
//     telemetry::ScopedSpan span("synth.trace", events.size());
//     ... extract/build ...
//   }  // closing records {name, parent, start_ns, wall_ns, items}
//
// Parenthood follows RAII nesting per thread (a thread-local stack of
// open spans); worker threads start at the root unless an explicit
// parent id — captured via ScopedSpan::current_id() before handing work
// off — is passed. Records land in the ring buffer at close, so a parent
// appears after its children; tree reconstruction uses the ids.
//
// The clock is pluggable: the default reads the steady clock, while
// use_simulated_clock() installs a deterministic counter clock (each
// read advances a fixed step) so snapshots of seeded runs are
// byte-stable — the property the CI determinism job diffs.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace tetra::telemetry {

struct SpanRecord {
  std::string name;
  std::uint64_t id = 0;      ///< 1-based, process-wide open order
  std::uint64_t parent = 0;  ///< 0 = root
  std::int64_t start_ns = 0;
  std::int64_t wall_ns = 0;
  std::uint64_t items = 0;  ///< optional item count (events, vertices, ...)
};

/// Clock reading in nanoseconds. Monotonic per thread of control.
using ClockFn = std::int64_t (*)();

/// Installs a custom clock; nullptr restores the steady clock.
void set_clock(ClockFn clock);
/// Installs the deterministic counter clock: every read advances the
/// shared counter by `step_ns`. Identical seeded runs then produce
/// byte-identical span timings.
void use_simulated_clock(std::int64_t step_ns = 1000);
/// Current reading of the installed clock.
std::int64_t clock_now();

#if !defined(TETRA_TELEMETRY_DISABLED)

/// Process-wide bounded span storage. When full, the oldest record is
/// overwritten and counted as dropped.
class SpanRecorder {
 public:
  static SpanRecorder& global();

  explicit SpanRecorder(std::size_t capacity = kDefaultCapacity);

  void record(SpanRecord record);
  /// Records oldest -> newest (close order among the retained window).
  std::vector<SpanRecord> snapshot() const;
  std::uint64_t dropped() const;
  std::size_t size() const;
  std::size_t capacity() const;
  void set_capacity(std::size_t capacity);

  /// Clears records, the drop counter and the span id counter (tests and
  /// per-run CLI resets).
  void reset();

  /// Next span id (shared by every ScopedSpan).
  std::uint64_t next_id();

  static constexpr std::size_t kDefaultCapacity = 4096;

 private:
  mutable std::mutex mutex_;
  std::vector<SpanRecord> ring_;
  std::size_t capacity_;
  std::size_t head_ = 0;  ///< index of the oldest record when full
  std::uint64_t dropped_ = 0;
  std::atomic<std::uint64_t> id_counter_{0};
};

class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name, std::uint64_t items = 0);
  /// Explicit parent (cross-thread nesting: capture current_id() before
  /// handing work to a pool thread).
  ScopedSpan(std::string_view name, std::uint64_t parent_id,
             std::uint64_t items);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void set_items(std::uint64_t items) { record_.items = items; }
  void add_items(std::uint64_t delta) { record_.items += delta; }
  std::uint64_t id() const { return record_.id; }

  /// Innermost open span of this thread (0 at the root).
  static std::uint64_t current_id();

 private:
  SpanRecord record_;
  bool active_ = false;
};

#else  // TETRA_TELEMETRY_DISABLED

class SpanRecorder {
 public:
  static SpanRecorder& global();
  explicit SpanRecorder(std::size_t = 0) {}
  void record(SpanRecord) {}
  std::vector<SpanRecord> snapshot() const { return {}; }
  std::uint64_t dropped() const { return 0; }
  std::size_t size() const { return 0; }
  std::size_t capacity() const { return 0; }
  void set_capacity(std::size_t) {}
  void reset() {}
  std::uint64_t next_id() { return 0; }
  static constexpr std::size_t kDefaultCapacity = 0;
};

class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view, std::uint64_t = 0) {}
  ScopedSpan(std::string_view, std::uint64_t, std::uint64_t) {}
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  void set_items(std::uint64_t) {}
  void add_items(std::uint64_t) {}
  std::uint64_t id() const { return 0; }
  static std::uint64_t current_id() { return 0; }
};

#endif  // TETRA_TELEMETRY_DISABLED

}  // namespace tetra::telemetry
