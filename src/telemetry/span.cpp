#include "telemetry/span.hpp"

#include <chrono>

#include "telemetry/metrics.hpp"

namespace tetra::telemetry {

namespace {

std::int64_t steady_now() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Deterministic counter clock: each read advances the shared counter by a
// fixed step, so span timings depend only on the order of clock reads —
// identical for identical seeded single-threaded runs.
std::atomic<std::int64_t> g_sim_ticks{0};
std::atomic<std::int64_t> g_sim_step{1000};

std::int64_t simulated_now() {
  const std::int64_t step = g_sim_step.load(std::memory_order_relaxed);
  return g_sim_ticks.fetch_add(step, std::memory_order_relaxed) + step;
}

std::atomic<ClockFn> g_clock{&steady_now};

}  // namespace

void set_clock(ClockFn clock) {
  g_clock.store(clock != nullptr ? clock : &steady_now,
                std::memory_order_relaxed);
}

void use_simulated_clock(std::int64_t step_ns) {
  g_sim_step.store(step_ns, std::memory_order_relaxed);
  g_sim_ticks.store(0, std::memory_order_relaxed);
  g_clock.store(&simulated_now, std::memory_order_relaxed);
}

std::int64_t clock_now() {
  return g_clock.load(std::memory_order_relaxed)();
}

#if !defined(TETRA_TELEMETRY_DISABLED)

namespace {
// Innermost open span per thread; ScopedSpan pushes on open and pops on
// close, so strict RAII nesting is the invariant.
thread_local std::vector<std::uint64_t> t_open_spans;
}  // namespace

SpanRecorder& SpanRecorder::global() {
  static SpanRecorder recorder;
  return recorder;
}

SpanRecorder::SpanRecorder(std::size_t capacity) : capacity_(capacity) {
  ring_.reserve(capacity_ < 64 ? capacity_ : 64);
}

void SpanRecorder::record(SpanRecord record) {
  std::lock_guard lock(mutex_);
  if (capacity_ == 0) {
    ++dropped_;
    return;
  }
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(record));
    return;
  }
  // Full: overwrite the oldest record and count it as dropped.
  ring_[head_] = std::move(record);
  head_ = (head_ + 1) % capacity_;
  ++dropped_;
}

std::vector<SpanRecord> SpanRecorder::snapshot() const {
  std::lock_guard lock(mutex_);
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

std::uint64_t SpanRecorder::dropped() const {
  std::lock_guard lock(mutex_);
  return dropped_;
}

std::size_t SpanRecorder::size() const {
  std::lock_guard lock(mutex_);
  return ring_.size();
}

std::size_t SpanRecorder::capacity() const {
  std::lock_guard lock(mutex_);
  return capacity_;
}

void SpanRecorder::set_capacity(std::size_t capacity) {
  std::lock_guard lock(mutex_);
  // Straighten the ring before resizing so record order survives.
  std::vector<SpanRecord> straight;
  straight.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    straight.push_back(std::move(ring_[(head_ + i) % ring_.size()]));
  }
  if (straight.size() > capacity) {
    straight.erase(straight.begin(),
                   straight.begin() +
                       static_cast<std::ptrdiff_t>(straight.size() - capacity));
  }
  ring_ = std::move(straight);
  head_ = 0;
  capacity_ = capacity;
}

void SpanRecorder::reset() {
  std::lock_guard lock(mutex_);
  ring_.clear();
  head_ = 0;
  dropped_ = 0;
  id_counter_.store(0, std::memory_order_relaxed);
}

std::uint64_t SpanRecorder::next_id() {
  return id_counter_.fetch_add(1, std::memory_order_relaxed) + 1;
}

ScopedSpan::ScopedSpan(std::string_view name, std::uint64_t items)
    : ScopedSpan(name, current_id(), items) {}

ScopedSpan::ScopedSpan(std::string_view name, std::uint64_t parent_id,
                       std::uint64_t items) {
  if (!enabled()) return;
  record_.name = std::string(name);
  record_.id = SpanRecorder::global().next_id();
  record_.parent = parent_id;
  record_.items = items;
  record_.start_ns = clock_now();
  t_open_spans.push_back(record_.id);
  active_ = true;
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  record_.wall_ns = clock_now() - record_.start_ns;
  if (!t_open_spans.empty() && t_open_spans.back() == record_.id) {
    t_open_spans.pop_back();
  }
  SpanRecorder::global().record(std::move(record_));
}

std::uint64_t ScopedSpan::current_id() {
  return t_open_spans.empty() ? 0 : t_open_spans.back();
}

#else  // TETRA_TELEMETRY_DISABLED

SpanRecorder& SpanRecorder::global() {
  static SpanRecorder recorder;
  return recorder;
}

#endif  // TETRA_TELEMETRY_DISABLED

}  // namespace tetra::telemetry
