// Process-wide metrics registry: counters, gauges and fixed-boundary
// histograms, optionally labeled ("shard=3", "stage=extract").
//
// Registration (name + label lookup) takes a mutex and is expected to run
// once per call site; the returned handle is a stable reference whose
// update path is a single relaxed atomic op — safe and cheap to hammer
// from the worker pool and the shard threads. The whole subsystem
// compiles down to no-ops under -DTETRA_TELEMETRY=OFF (the
// TETRA_TELEMETRY_DISABLED macro), and can be switched off at runtime via
// set_enabled(false) for overhead A/B measurements (bench_telemetry).
//
//   auto& hits = telemetry::MetricsRegistry::global().counter(
//       "session.cache_hits");
//   hits.inc();
//   auto& depth = telemetry::MetricsRegistry::global().gauge(
//       "ingest.queue_depth", {{"shard", "3"}});
//   depth.set(queue.size());
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tetra::telemetry {

/// Label set of one metric instance, e.g. {{"shard", "0"}}. Stored sorted
/// by key; two sets with the same pairs address the same instance.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Runtime kill switch (default on). Disabling stops counters, gauges,
/// histograms and spans from recording; handles stay valid.
void set_enabled(bool enabled);
bool enabled();

#if !defined(TETRA_TELEMETRY_DISABLED)

/// Monotonically increasing event count.
class Counter {
 public:
  void inc() { add(1); }
  void add(std::uint64_t delta) {
    if (enabled()) value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time signed level (queue depth, bytes held).
class Gauge {
 public:
  void set(std::int64_t value) {
    if (enabled()) value_.store(value, std::memory_order_relaxed);
  }
  void add(std::int64_t delta) {
    if (enabled()) value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-boundary histogram. An observation lands in the first bucket
/// whose upper boundary is >= the value (Prometheus "le" semantics); the
/// implicit last bucket catches everything above the highest boundary.
class Histogram {
 public:
  explicit Histogram(std::vector<std::int64_t> boundaries);

  void observe(std::int64_t value);

  const std::vector<std::int64_t>& boundaries() const { return boundaries_; }
  /// Cumulative-free per-bucket counts; size() == boundaries().size() + 1.
  std::vector<std::uint64_t> bucket_counts() const;
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::int64_t sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  std::vector<std::int64_t> boundaries_;  ///< strictly increasing
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};
};

class MetricsRegistry {
 public:
  /// The process-wide registry every subsystem reports into. First use
  /// also arms the TETRA_STATS / TETRA_STATS_CLOCK environment hooks
  /// (see snapshot.hpp).
  static MetricsRegistry& global();

  /// Returns the counter instance for (name, labels), creating it on
  /// first use. The reference stays valid for the registry's lifetime.
  Counter& counter(std::string_view name, const Labels& labels = {});
  Gauge& gauge(std::string_view name, const Labels& labels = {});
  /// `boundaries` must be strictly increasing; it is fixed on first
  /// registration and ignored on later lookups of the same instance.
  Histogram& histogram(std::string_view name,
                       std::vector<std::int64_t> boundaries,
                       const Labels& labels = {});

  /// Flat key "name{k1=v1,k2=v2}" (plain "name" without labels) — the
  /// snapshot/export key format.
  static std::string flat_key(std::string_view name, const Labels& labels);

  /// Stable point-in-time copy, keys sorted (std::map order).
  struct Snapshot {
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, std::int64_t> gauges;
    struct HistogramData {
      std::vector<std::int64_t> boundaries;
      std::vector<std::uint64_t> counts;
      std::uint64_t count = 0;
      std::int64_t sum = 0;
    };
    std::map<std::string, HistogramData> histograms;
  };
  Snapshot snapshot() const;

  /// Drops every registered instance (tests). Outstanding handles dangle;
  /// only use between test cases, never mid-pipeline.
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

#else  // TETRA_TELEMETRY_DISABLED: every operation is a no-op.

class Counter {
 public:
  void inc() {}
  void add(std::uint64_t) {}
  std::uint64_t value() const { return 0; }
};

class Gauge {
 public:
  void set(std::int64_t) {}
  void add(std::int64_t) {}
  std::int64_t value() const { return 0; }
};

class Histogram {
 public:
  explicit Histogram(std::vector<std::int64_t>) {}
  void observe(std::int64_t) {}
  const std::vector<std::int64_t>& boundaries() const {
    static const std::vector<std::int64_t> kEmpty;
    return kEmpty;
  }
  std::vector<std::uint64_t> bucket_counts() const { return {}; }
  std::uint64_t count() const { return 0; }
  std::int64_t sum() const { return 0; }
};

class MetricsRegistry {
 public:
  static MetricsRegistry& global();

  Counter& counter(std::string_view, const Labels& = {}) { return counter_; }
  Gauge& gauge(std::string_view, const Labels& = {}) { return gauge_; }
  Histogram& histogram(std::string_view, std::vector<std::int64_t>,
                       const Labels& = {}) {
    return histogram_;
  }

  static std::string flat_key(std::string_view name, const Labels& labels);

  struct Snapshot {
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, std::int64_t> gauges;
    struct HistogramData {
      std::vector<std::int64_t> boundaries;
      std::vector<std::uint64_t> counts;
      std::uint64_t count = 0;
      std::int64_t sum = 0;
    };
    std::map<std::string, HistogramData> histograms;
  };
  Snapshot snapshot() const { return {}; }
  void reset() {}

 private:
  Counter counter_;
  Gauge gauge_;
  Histogram histogram_{{}};
};

#endif  // TETRA_TELEMETRY_DISABLED

}  // namespace tetra::telemetry
