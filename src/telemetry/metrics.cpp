#include "telemetry/metrics.hpp"

#include <algorithm>
#include <stdexcept>

#include "telemetry/snapshot.hpp"

namespace tetra::telemetry {

namespace {
std::atomic<bool> g_enabled{true};
}  // namespace

void set_enabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

#if !defined(TETRA_TELEMETRY_DISABLED)

Histogram::Histogram(std::vector<std::int64_t> boundaries)
    : boundaries_(std::move(boundaries)),
      buckets_(new std::atomic<std::uint64_t>[boundaries_.size() + 1]) {
  for (std::size_t i = 1; i < boundaries_.size(); ++i) {
    if (boundaries_[i] <= boundaries_[i - 1]) {
      throw std::invalid_argument(
          "histogram boundaries must be strictly increasing");
    }
  }
  for (std::size_t i = 0; i <= boundaries_.size(); ++i) buckets_[i] = 0;
}

void Histogram::observe(std::int64_t value) {
  if (!enabled()) return;
  // First boundary >= value; everything above the last boundary lands in
  // the implicit overflow bucket.
  const std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(boundaries_.begin(), boundaries_.end(), value) -
      boundaries_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> counts(boundaries_.size() + 1);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  // Arms the TETRA_STATS at-exit dump and TETRA_STATS_CLOCK the first
  // time any subsystem touches telemetry (examples and tools alike).
  init_from_environment();
  return registry;
}

std::string MetricsRegistry::flat_key(std::string_view name,
                                      const Labels& labels) {
  std::string key(name);
  if (labels.empty()) return key;
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  key += '{';
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) key += ',';
    key += sorted[i].first;
    key += '=';
    key += sorted[i].second;
  }
  key += '}';
  return key;
}

Counter& MetricsRegistry::counter(std::string_view name, const Labels& labels) {
  const std::string key = flat_key(name, labels);
  std::lock_guard lock(mutex_);
  auto it = counters_.find(key);
  if (it == counters_.end()) {
    it = counters_.emplace(key, std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name, const Labels& labels) {
  const std::string key = flat_key(name, labels);
  std::lock_guard lock(mutex_);
  auto it = gauges_.find(key);
  if (it == gauges_.end()) {
    it = gauges_.emplace(key, std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<std::int64_t> boundaries,
                                      const Labels& labels) {
  const std::string key = flat_key(name, labels);
  std::lock_guard lock(mutex_);
  auto it = histograms_.find(key);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(key, std::make_unique<Histogram>(std::move(boundaries)))
             .first;
  }
  return *it->second;
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  Snapshot snap;
  std::lock_guard lock(mutex_);
  for (const auto& [key, counter] : counters_) {
    snap.counters.emplace(key, counter->value());
  }
  for (const auto& [key, gauge] : gauges_) {
    snap.gauges.emplace(key, gauge->value());
  }
  for (const auto& [key, histogram] : histograms_) {
    Snapshot::HistogramData data;
    data.boundaries = histogram->boundaries();
    data.counts = histogram->bucket_counts();
    data.count = histogram->count();
    data.sum = histogram->sum();
    snap.histograms.emplace(key, std::move(data));
  }
  return snap;
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

#else  // TETRA_TELEMETRY_DISABLED

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

std::string MetricsRegistry::flat_key(std::string_view name,
                                      const Labels& labels) {
  std::string key(name);
  if (labels.empty()) return key;
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  key += '{';
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) key += ',';
    key += sorted[i].first;
    key += '=';
    key += sorted[i].second;
  }
  key += '}';
  return key;
}

#endif  // TETRA_TELEMETRY_DISABLED

}  // namespace tetra::telemetry
