#include "telemetry/snapshot.hpp"

#include <cctype>
#include <cstdlib>
#include <map>
#include <mutex>
#include <string_view>

#include "support/json_writer.hpp"

namespace tetra::telemetry {

namespace {

// Splits a flat key "name{k1=v1,k2=v2}" back into name and label pairs
// (the registry guarantees the embedded form is sorted and well formed).
struct ParsedKey {
  std::string name;
  Labels labels;
};

ParsedKey parse_flat_key(std::string_view key) {
  ParsedKey parsed;
  const std::size_t brace = key.find('{');
  if (brace == std::string_view::npos) {
    parsed.name = std::string(key);
    return parsed;
  }
  parsed.name = std::string(key.substr(0, brace));
  std::string_view body = key.substr(brace + 1);
  if (!body.empty() && body.back() == '}') body.remove_suffix(1);
  while (!body.empty()) {
    const std::size_t comma = body.find(',');
    const std::string_view pair =
        comma == std::string_view::npos ? body : body.substr(0, comma);
    const std::size_t eq = pair.find('=');
    if (eq != std::string_view::npos) {
      parsed.labels.emplace_back(std::string(pair.substr(0, eq)),
                                 std::string(pair.substr(eq + 1)));
    }
    if (comma == std::string_view::npos) break;
    body = body.substr(comma + 1);
  }
  return parsed;
}

// Prometheus metric names allow [a-zA-Z0-9_:]; everything else becomes
// '_'. All series carry the "tetra_" namespace prefix.
std::string prometheus_name(std::string_view name) {
  std::string out = "tetra_";
  for (const char c : name) {
    out += (std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_')
               ? c
               : '_';
  }
  return out;
}

void append_prometheus_labels(std::string& out, const Labels& labels,
                              const std::string* extra_key = nullptr,
                              const std::string* extra_value = nullptr) {
  if (labels.empty() && extra_key == nullptr) return;
  out += '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    out += JsonWriter::escape(v);
    out += '"';
  }
  if (extra_key != nullptr) {
    if (!first) out += ',';
    out += *extra_key;
    out += "=\"";
    out += *extra_value;
    out += '"';
  }
  out += '}';
}

struct SpanAggregate {
  std::uint64_t count = 0;
  std::int64_t wall_ns = 0;
  std::uint64_t items = 0;
};

std::map<std::string, SpanAggregate> aggregate_spans(
    const std::vector<SpanRecord>& spans) {
  std::map<std::string, SpanAggregate> by_name;
  for (const SpanRecord& span : spans) {
    SpanAggregate& agg = by_name[span.name];
    ++agg.count;
    agg.wall_ns += span.wall_ns;
    agg.items += span.items;
  }
  return by_name;
}

}  // namespace

std::string snapshot_to_json(const MetricsRegistry::Snapshot& metrics,
                             const std::vector<SpanRecord>& spans,
                             std::uint64_t spans_dropped) {
  JsonWriter w;
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [key, value] : metrics.counters) w.kv(key, value);
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [key, value] : metrics.gauges) w.kv(key, value);
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [key, data] : metrics.histograms) {
    w.key(key).begin_object();
    w.key("boundaries").begin_array();
    for (const std::int64_t b : data.boundaries) w.value(b);
    w.end_array();
    w.key("counts").begin_array();
    for (const std::uint64_t c : data.counts) w.value(c);
    w.end_array();
    w.kv("count", data.count);
    w.kv("sum", data.sum);
    w.end_object();
  }
  w.end_object();
  w.key("spans").begin_array();
  for (const SpanRecord& span : spans) {
    w.begin_object();
    w.kv("name", span.name);
    w.kv("id", span.id);
    w.kv("parent", span.parent);
    w.kv("start_ns", span.start_ns);
    w.kv("wall_ns", span.wall_ns);
    w.kv("items", span.items);
    w.end_object();
  }
  w.end_array();
  w.kv("spans_dropped", spans_dropped);
  w.end_object();
  return w.str();
}

std::string snapshot_to_json() {
  return snapshot_to_json(MetricsRegistry::global().snapshot(),
                          SpanRecorder::global().snapshot(),
                          SpanRecorder::global().dropped());
}

std::string snapshot_to_prometheus(const MetricsRegistry::Snapshot& metrics) {
  std::string out;
  for (const auto& [key, value] : metrics.counters) {
    const ParsedKey parsed = parse_flat_key(key);
    out += prometheus_name(parsed.name);
    append_prometheus_labels(out, parsed.labels);
    out += ' ';
    out += std::to_string(value);
    out += '\n';
  }
  for (const auto& [key, value] : metrics.gauges) {
    const ParsedKey parsed = parse_flat_key(key);
    out += prometheus_name(parsed.name);
    append_prometheus_labels(out, parsed.labels);
    out += ' ';
    out += std::to_string(value);
    out += '\n';
  }
  for (const auto& [key, data] : metrics.histograms) {
    const ParsedKey parsed = parse_flat_key(key);
    const std::string name = prometheus_name(parsed.name);
    const std::string le = "le";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < data.counts.size(); ++i) {
      cumulative += data.counts[i];
      const std::string bound = i < data.boundaries.size()
                                    ? std::to_string(data.boundaries[i])
                                    : std::string("+Inf");
      out += name;
      out += "_bucket";
      append_prometheus_labels(out, parsed.labels, &le, &bound);
      out += ' ';
      out += std::to_string(cumulative);
      out += '\n';
    }
    out += name;
    out += "_sum";
    append_prometheus_labels(out, parsed.labels);
    out += ' ';
    out += std::to_string(data.sum);
    out += '\n';
    out += name;
    out += "_count";
    append_prometheus_labels(out, parsed.labels);
    out += ' ';
    out += std::to_string(data.count);
    out += '\n';
  }
  return out;
}

std::string snapshot_to_prometheus() {
  return snapshot_to_prometheus(MetricsRegistry::global().snapshot());
}

std::string summary_text() {
  const MetricsRegistry::Snapshot metrics =
      MetricsRegistry::global().snapshot();
  const std::vector<SpanRecord> spans = SpanRecorder::global().snapshot();
  const std::uint64_t dropped = SpanRecorder::global().dropped();

  std::string out = "== tetra telemetry ==\n";
  if (!metrics.counters.empty()) {
    out += "counters:\n";
    for (const auto& [key, value] : metrics.counters) {
      out += "  " + key + " = " + std::to_string(value) + "\n";
    }
  }
  if (!metrics.gauges.empty()) {
    out += "gauges:\n";
    for (const auto& [key, value] : metrics.gauges) {
      out += "  " + key + " = " + std::to_string(value) + "\n";
    }
  }
  if (!metrics.histograms.empty()) {
    out += "histograms:\n";
    for (const auto& [key, data] : metrics.histograms) {
      out += "  " + key + ": count=" + std::to_string(data.count) +
             " sum=" + std::to_string(data.sum) + "\n";
    }
  }
  const auto by_name = aggregate_spans(spans);
  if (!by_name.empty()) {
    out += "spans (aggregated by name):\n";
    char line[256];
    for (const auto& [name, agg] : by_name) {
      std::snprintf(line, sizeof(line),
                    "  %s: count=%llu wall_ms=%.3f items=%llu\n", name.c_str(),
                    static_cast<unsigned long long>(agg.count),
                    static_cast<double>(agg.wall_ns) / 1e6,
                    static_cast<unsigned long long>(agg.items));
      out += line;
    }
  }
  if (dropped > 0) {
    out += "spans dropped: " + std::to_string(dropped) + "\n";
  }
  if (metrics.counters.empty() && metrics.gauges.empty() &&
      metrics.histograms.empty() && by_name.empty()) {
    out += "(no telemetry recorded)\n";
  }
  return out;
}

void write_summary(std::FILE* out) {
  const std::string text = summary_text();
  std::fwrite(text.data(), 1, text.size(), out);
  std::fflush(out);
}

bool write_snapshot_file(const std::string& path, std::string* error) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  const std::string json = snapshot_to_json();
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), file);
  const bool newline_ok = std::fputc('\n', file) != EOF;
  const bool close_ok = std::fclose(file) == 0;
  if (written != json.size() || !newline_ok || !close_ok) {
    if (error != nullptr) *error = "short write to " + path;
    return false;
  }
  return true;
}

namespace {
void dump_summary_at_exit() { write_summary(stderr); }
}  // namespace

void init_from_environment() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* clock = std::getenv("TETRA_STATS_CLOCK");
    if (clock != nullptr && std::string_view(clock) == "sim") {
      use_simulated_clock();
    }
    const char* stats = std::getenv("TETRA_STATS");
    if (stats != nullptr && std::string_view(stats) != "" &&
        std::string_view(stats) != "0") {
      // The dump reads the registry (alive: global() calls us after
      // constructing it) and the span ring; construct the ring BEFORE
      // registering the handler so its static destructor runs after it.
      (void)SpanRecorder::global();
      std::atexit(&dump_summary_at_exit);
    }
  });
}

}  // namespace tetra::telemetry
