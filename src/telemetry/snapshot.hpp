// Export surface for the telemetry subsystem: byte-stable JSON snapshots,
// Prometheus-style text exposition, a human summary table, and the
// TETRA_STATS / TETRA_STATS_CLOCK environment hooks.
//
// The JSON writer emits sorted keys (registry snapshots are std::map) and
// spans in close order, so two identical seeded runs under the simulated
// clock produce byte-identical documents — the property the CI
// determinism job byte-diffs. Schema details live in docs/TELEMETRY.md.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"

namespace tetra::telemetry {

/// JSON document for explicit state — what the tests golden against.
std::string snapshot_to_json(const MetricsRegistry::Snapshot& metrics,
                             const std::vector<SpanRecord>& spans,
                             std::uint64_t spans_dropped);
/// JSON document for the process-wide registry + span recorder.
std::string snapshot_to_json();

/// Prometheus text exposition ("name{k=\"v\"} value", histograms as
/// cumulative `_bucket{le=...}` series) for explicit state.
std::string snapshot_to_prometheus(const MetricsRegistry::Snapshot& metrics);
/// Prometheus text exposition for the process-wide registry.
std::string snapshot_to_prometheus();

/// Human-readable summary table (counters, gauges, histogram totals, span
/// aggregates by name) of the process-wide state.
std::string summary_text();
/// Writes summary_text() to `out` (tools pass stderr for --stats).
void write_summary(std::FILE* out);

/// Writes snapshot_to_json() to `path`. Returns false and fills `error`
/// (when non-null) on I/O failure.
bool write_snapshot_file(const std::string& path, std::string* error);

/// Idempotent: arms the TETRA_STATS=1 at-exit summary dump and the
/// TETRA_STATS_CLOCK=sim simulated clock. Called from
/// MetricsRegistry::global() so any instrumented binary honors the
/// environment without code changes.
void init_from_environment();

}  // namespace tetra::telemetry
