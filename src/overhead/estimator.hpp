// Estimates the per-probe tracer cost from a trace itself.
//
// The estimator exploits the known probe placement (trace::ProbeId): in
// the instrumented rclcpp/rmw code paths several probe pairs fire with
// *zero* application work between them — execute_callback is followed
// immediately by rcl_timer_call (timers) or rmw_take (subscriptions /
// services / clients), rmw_take by the message-filter operator or the
// client's take_type_erased. Any timestamp gap inside such a pair is
// pure probe overhead, and because rmw_take runs an entry *and* an exit
// probe it contributes two hits. Fitting one constant through all pairs
// (weighted by hit count) recovers the per-hit cost; a probe-free trace
// has zero gaps and estimates zero.
#pragma once

#include <cstddef>

#include "core/extract.hpp"
#include "support/time.hpp"
#include "trace/event.hpp"

namespace tetra::overhead {

struct OverheadEstimate {
  /// Fitted per-probe-hit cost (zero for probe-free traces).
  Duration per_hit = Duration::zero();
  /// Number of zero-work probe pairs the fit used.
  std::size_t samples = 0;
  /// Standard deviation of the per-hit samples (jitter indicator).
  double stddev_ns = 0.0;

  bool usable() const { return samples > 0; }
};

/// Fits the per-hit probe cost over every node pid in the index.
OverheadEstimate estimate_probe_cost(const core::TraceIndex& index);

/// Convenience overload: indexes `events` and fits.
OverheadEstimate estimate_probe_cost(const trace::EventVector& events);

}  // namespace tetra::overhead
