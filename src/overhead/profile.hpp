// Per-probe cost profiles for tracer-overhead injection.
//
// Real tracing backends are not free: a uprobe costs a near-constant
// ~5 µs per hit (trap into the kernel and back), a USDT probe ~1.5 µs,
// an LTTng tracepoint a few hundred ns. A ProbeCostProfile describes
// that cost (constant + seeded jitter) plus an optional 1-in-K instance
// sampling mode; the OverheadInjector applies it to the simulated
// tracers so every probe hit consumes time on the traced thread.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "support/time.hpp"

namespace tetra::overhead {

struct ProbeCostProfile {
  /// Preset name ("uprobe", "usdt", "lttng", "free") or "custom".
  std::string backend = "free";
  /// Constant cost charged to the traced thread per probe execution.
  Duration cost = Duration::zero();
  /// Half-range of uniform per-hit jitter around `cost` (seeded).
  Duration jitter = Duration::zero();
  /// Cost of a probe that early-exits because the current callback
  /// instance is sampled out (the filter map lookup still runs).
  Duration skip_cost = Duration::zero();
  /// Seed for the jitter stream and the sampling hash.
  std::uint64_t seed = 0x0ead'bee7ULL;
  /// Trace 1 in K callback instances per pid (1 = trace everything).
  unsigned sample_every = 1;

  /// True when probe hits consume simulated time.
  bool injects() const {
    return cost > Duration::zero() || jitter > Duration::zero();
  }
  /// True when the profile changes tracer behaviour at all.
  bool active() const { return injects() || sample_every > 1; }

  /// Named preset; unknown names return std::nullopt.
  static std::optional<ProbeCostProfile> preset(std::string_view name);

  /// Parses "uprobe" | "usdt" | "lttng" | "free" | "COST[~JITTER]" where
  /// COST/JITTER are durations like "5us", "500ns", "1ms", or bare ns.
  static std::optional<ProbeCostProfile> parse(std::string_view spec);

  /// Human-readable one-liner ("uprobe (5us ± 500ns)").
  std::string describe() const;
};

/// Parses "12ns" / "5us" / "3ms" / "1s" / bare integer (= ns).
std::optional<Duration> parse_duration(std::string_view text);

}  // namespace tetra::overhead
