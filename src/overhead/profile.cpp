#include "overhead/profile.hpp"

#include <cctype>
#include <cstdlib>

namespace tetra::overhead {

namespace {

ProbeCostProfile make(std::string backend, Duration cost, Duration jitter,
                      Duration skip) {
  ProbeCostProfile p;
  p.backend = std::move(backend);
  p.cost = cost;
  p.jitter = jitter;
  p.skip_cost = skip;
  return p;
}

}  // namespace

std::optional<ProbeCostProfile> ProbeCostProfile::preset(std::string_view name) {
  // Costs follow the uprobe-vs-USDT-vs-LTTng benchmarking consensus: a
  // uprobe traps into the kernel (~5 µs, noticeably noisy), USDT is a
  // lighter trap, LTTng writes to a user-space ring buffer.
  if (name == "free") return make("free", Duration::zero(), Duration::zero(), Duration::zero());
  if (name == "uprobe") return make("uprobe", Duration::us(5), Duration::ns(500), Duration::ns(600));
  if (name == "usdt") return make("usdt", Duration::ns(1500), Duration::ns(150), Duration::ns(200));
  if (name == "lttng") return make("lttng", Duration::ns(200), Duration::ns(20), Duration::ns(50));
  return std::nullopt;
}

std::optional<Duration> parse_duration(std::string_view text) {
  if (text.empty()) return std::nullopt;
  std::size_t i = 0;
  while (i < text.size() &&
         (std::isdigit(static_cast<unsigned char>(text[i])) || text[i] == '.')) {
    ++i;
  }
  if (i == 0) return std::nullopt;
  const std::string number(text.substr(0, i));
  char* end = nullptr;
  const double value = std::strtod(number.c_str(), &end);
  if (end == nullptr || *end != '\0') return std::nullopt;
  const std::string_view unit = text.substr(i);
  double scale = 1.0;  // bare number = nanoseconds
  if (unit == "ns" || unit.empty()) {
    scale = 1.0;
  } else if (unit == "us") {
    scale = 1e3;
  } else if (unit == "ms") {
    scale = 1e6;
  } else if (unit == "s") {
    scale = 1e9;
  } else {
    return std::nullopt;
  }
  return Duration::ns(static_cast<std::int64_t>(value * scale + 0.5));
}

std::optional<ProbeCostProfile> ProbeCostProfile::parse(std::string_view spec) {
  if (auto p = preset(spec)) return p;
  std::string_view cost_text = spec;
  std::string_view jitter_text;
  if (const auto tilde = spec.find('~'); tilde != std::string_view::npos) {
    cost_text = spec.substr(0, tilde);
    jitter_text = spec.substr(tilde + 1);
  }
  const auto cost = parse_duration(cost_text);
  if (!cost || *cost < Duration::zero()) return std::nullopt;
  Duration jitter = Duration::zero();
  if (!jitter_text.empty()) {
    const auto j = parse_duration(jitter_text);
    if (!j || *j < Duration::zero()) return std::nullopt;
    jitter = *j;
  }
  // Custom profiles model the same early-exit path as a uprobe filter:
  // a fixed fraction of the full probe cost.
  return make("custom", *cost, jitter, *cost / 8);
}

std::string ProbeCostProfile::describe() const {
  std::string out = backend + " (" + std::to_string(cost.count_ns()) + "ns";
  if (jitter > Duration::zero()) {
    out += " ± " + std::to_string(jitter.count_ns()) + "ns";
  }
  if (sample_every > 1) {
    out += ", 1-in-" + std::to_string(sample_every);
  }
  out += ")";
  return out;
}

}  // namespace tetra::overhead
