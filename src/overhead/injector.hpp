// Applies a ProbeCostProfile to the running substrate: stamps the
// timestamps a probed tracer would observe and charges each probe
// execution to the traced thread as scheduler debt (Thread::
// inject_overhead), so downstream events are physically delayed.
//
// Timestamping model: a real probe reads the clock at entry, then burns
// its cost before the application resumes. The simulator fires all
// same-instant hooks at one `now`, so the injector keeps a per-thread
// pending-debt ledger: an event is stamped at now + pending(pid), and
// the probe's own (jittered) cost is charged afterwards. Per-pid stamps
// are monotone; the suite re-sorts the shared buffer across pids.
#pragma once

#include <cstdint>
#include <map>

#include "overhead/profile.hpp"
#include "sched/machine.hpp"
#include "support/ids.hpp"
#include "support/rng.hpp"
#include "support/time.hpp"

namespace tetra::overhead {

class OverheadInjector {
 public:
  OverheadInjector(sched::Machine& machine, ProbeCostProfile profile)
      : machine_(machine), profile_(std::move(profile)), rng_(profile_.seed) {}

  const ProbeCostProfile& profile() const { return profile_; }
  bool injects() const { return profile_.injects(); }
  bool sampling() const { return profile_.sample_every > 1; }

  /// Timestamp a probe firing at hook-time `now` on `pid` records: the
  /// hook time plus the thread's not-yet-consumed probe debt. Pids
  /// without a simulated thread (external writers) are never delayed.
  TimePoint stamp(TimePoint now, Pid pid) {
    const sched::Thread* t = thread_of(pid);
    return t != nullptr ? now + t->pending_overhead() : now;
  }

  /// Charges one full probe execution (constant + jitter) to `pid`.
  void charge(Pid pid) { charge_amount(pid, sample_cost()); }

  /// Charges the early-exit cost of a probe whose instance is sampled out.
  void charge_skip(Pid pid) { charge_amount(pid, profile_.skip_cost); }

  /// Decides whether the callback instance beginning now on `pid` is
  /// traced (1-in-K, deterministic in (seed, pid, instance ordinal)).
  bool begin_instance(Pid pid) {
    ++instances_;
    const std::uint64_t ordinal = instance_counter_[pid]++;
    bool traced = true;
    if (sampling()) {
      traced = sample_hash(pid, ordinal) % profile_.sample_every == 0;
    }
    instance_traced_[pid] = traced;
    if (traced) ++sampled_;
    return traced;
  }
  /// True when the instance currently executing on `pid` is traced.
  /// Pids outside any begin/end window (external writers) count as traced.
  bool instance_traced(Pid pid) const {
    const auto it = instance_traced_.find(pid);
    return it == instance_traced_.end() || it->second;
  }
  void end_instance(Pid pid) { instance_traced_[pid] = true; }

  // --- accounting ---------------------------------------------------------
  Duration injected_total() const { return injected_; }
  std::uint64_t charges() const { return charges_; }
  std::uint64_t instances_total() const { return instances_; }
  std::uint64_t instances_sampled() const { return sampled_; }

 private:
  sched::Thread* thread_of(Pid pid) {
    const auto it = thread_cache_.find(pid);
    if (it != thread_cache_.end()) return it->second;
    sched::Thread* t = machine_.thread_by_pid(pid);
    // Misses are not cached: a pid probed before its thread registers
    // (and external writer pids, which never do) must stay re-resolvable.
    if (t != nullptr) thread_cache_.emplace(pid, t);
    return t;
  }

  Duration sample_cost() {
    Duration c = profile_.cost;
    if (profile_.jitter > Duration::zero()) {
      const std::int64_t j = profile_.jitter.count_ns();
      c += Duration::ns(rng_.uniform_int(-j, j));
    }
    return c < Duration::zero() ? Duration::zero() : c;
  }

  void charge_amount(Pid pid, Duration cost) {
    if (cost <= Duration::zero()) return;
    sched::Thread* t = thread_of(pid);
    if (t == nullptr) return;  // external pid: nothing to slow down
    t->inject_overhead(cost);
    injected_ += cost;
    ++charges_;
  }

  std::uint64_t sample_hash(Pid pid, std::uint64_t ordinal) const {
    // SplitMix64 over (seed, pid, ordinal): stable across runs and
    // independent of the jitter stream's consumption order.
    std::uint64_t x = profile_.seed ^ (static_cast<std::uint64_t>(pid) *
                                       0x9e37'79b9'7f4a'7c15ULL) ^
                      (ordinal * 0xbf58'476d'1ce4'e5b9ULL);
    x ^= x >> 30;
    x *= 0xbf58'476d'1ce4'e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d0'49bb'1331'11ebULL;
    x ^= x >> 31;
    return x;
  }

  sched::Machine& machine_;
  ProbeCostProfile profile_;
  Rng rng_;
  std::map<Pid, sched::Thread*> thread_cache_;
  std::map<Pid, std::uint64_t> instance_counter_;
  std::map<Pid, bool> instance_traced_;
  Duration injected_ = Duration::zero();
  std::uint64_t charges_ = 0;
  std::uint64_t instances_ = 0;
  std::uint64_t sampled_ = 0;
};

}  // namespace tetra::overhead
