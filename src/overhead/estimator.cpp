#include "overhead/estimator.hpp"

#include <cmath>
#include <cstdint>

#include "support/statistics.hpp"

namespace tetra::overhead {

namespace {

// Gaps wider than this are not probe overhead (no real backend costs
// milliseconds per hit); guards against malformed traces.
constexpr std::int64_t kOutlierNs = 10'000'000;

struct Fit {
  long double delta_sum = 0;
  std::uint64_t hit_sum = 0;
  RunningStats per_hit;

  void add(std::int64_t delta_ns, int hits) {
    if (delta_ns < 0 || delta_ns > kOutlierNs) return;
    delta_sum += static_cast<long double>(delta_ns);
    hit_sum += static_cast<std::uint64_t>(hits);
    per_hit.add(static_cast<double>(delta_ns) / hits);
  }
};

}  // namespace

OverheadEstimate estimate_probe_cost(const core::TraceIndex& index) {
  const trace::ColumnsView v = index.view();
  Fit fit;
  for (const auto& [pid, name] : index.nodes()) {
    (void)name;
    // Walk the pid's chronological ROS2 events tracking the previous
    // zero-work anchor (callback start or take).
    enum class Prev { Other, Start, Take };
    Prev prev = Prev::Other;
    std::int64_t prev_time = 0;
    for (const std::size_t seq : index.ros_events_of(pid)) {
      const auto type = static_cast<trace::EventType>(v.type[seq]);
      const std::int64_t t = v.time[seq];
      switch (type) {
        case trace::EventType::CallbackStart:
          prev = Prev::Start;
          prev_time = t;
          break;
        case trace::EventType::TimerCall:
          if (prev == Prev::Start) fit.add(t - prev_time, 1);
          prev = Prev::Other;
          break;
        case trace::EventType::Take:
          // rmw_take runs an entry and an exit probe: two hits between
          // the callback-start stamp and the take stamp.
          if (prev == Prev::Start) fit.add(t - prev_time, 2);
          prev = Prev::Take;
          prev_time = t;
          break;
        case trace::EventType::SyncOperator:
        case trace::EventType::TakeTypeErased:
          if (prev == Prev::Take) fit.add(t - prev_time, 1);
          prev = Prev::Other;
          break;
        default:
          prev = Prev::Other;
          break;
      }
    }
  }

  OverheadEstimate est;
  est.samples = fit.per_hit.count();
  if (fit.hit_sum > 0) {
    est.per_hit = Duration::ns(static_cast<std::int64_t>(
        std::llroundl(fit.delta_sum / static_cast<long double>(fit.hit_sum))));
    est.stddev_ns = fit.per_hit.stddev();
  }
  return est;
}

OverheadEstimate estimate_probe_cost(const trace::EventVector& events) {
  return estimate_probe_cost(core::TraceIndex(events));
}

}  // namespace tetra::overhead
