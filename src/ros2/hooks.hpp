// uprobe/uretprobe target sites in the simulated ROS2 stack.
//
// Each member mirrors one probed function from Table I of the paper. The
// middleware invokes these hooks at exactly the points the paper's eBPF
// programs attach to, passing what the program could read from function
// arguments (entry) or return values / stashed pointers (exit). The eBPF
// module attaches its tracer programs here; with no tracer attached the
// hooks are empty and the middleware runs unobserved.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "support/ids.hpp"
#include "support/time.hpp"
#include "trace/event.hpp"

namespace tetra::ros2 {

struct Ros2Hooks {
  /// P1 — rmw_create_node(node_name) in rmw_cyclonedds_cpp: fires when a
  /// node is created; pid identifies the executor thread.
  std::function<void(TimePoint, Pid, const std::string& node_name)>
      rmw_create_node;

  /// P2/P4, P5/P8, P9/P11, P12/P15 — execute_{timer, subscription, service,
  /// client} entry (is_entry=true) and exit (false) in rclcpp.
  std::function<void(TimePoint, Pid, CallbackKind, bool is_entry)>
      execute_callback;

  /// P3 — rcl_timer_call(timer_handle): exposes the timer callback id.
  std::function<void(TimePoint, Pid, CallbackId)> rcl_timer_call;

  /// Entry of rmw_take / rmw_take_request / rmw_take_response. The source
  /// timestamp is an out-parameter whose value is unknown at entry; only
  /// its address (`src_ts_addr`) can be stashed, plus what the arguments
  /// expose (callback id and topic/service name).
  std::function<void(TimePoint, Pid, trace::TakeKind, std::uint64_t src_ts_addr,
                     CallbackId, const std::string& topic)>
      rmw_take_entry;

  /// Exit (uretprobe) of the same functions: the value now present at the
  /// stashed address. P6/P10/P13 events are assembled by pairing this with
  /// the entry stash.
  std::function<void(TimePoint, Pid, trace::TakeKind, std::uint64_t src_ts_addr,
                     TimePoint src_ts)>
      rmw_take_exit;

  /// P14 — uretprobe on rclcpp's take_type_erased_response: `taken` is the
  /// return value; true means the local client callback will be dispatched.
  std::function<void(TimePoint, Pid, bool taken)> take_type_erased_response;

  /// P7 — message_filters' operator(): a subscriber callback participating
  /// in data synchronization just consumed a sample.
  std::function<void(TimePoint, Pid, CallbackId)> message_filter_operator;
};

}  // namespace tetra::ros2
