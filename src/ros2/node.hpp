// ROS2 nodes with single- or multi-threaded executors, and the four
// callback kinds the paper models: timers, subscriptions, services and
// clients. Callbacks belong to callback groups (ros2/executor.hpp):
// mutually-exclusive groups serialize, distinct groups run concurrently
// on the executor's workers. Services are implemented over
// request/response topics (as in ROS2/DDS), and the client-side dispatch
// check reproduces take_type_erased_response semantics: every client of a
// service receives every response, but only the caller's client callback
// is dispatched (probe P14).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "dds/domain.hpp"
#include "ros2/executor.hpp"
#include "ros2/plan.hpp"
#include "sched/machine.hpp"
#include "support/ids.hpp"
#include "support/rng.hpp"

namespace tetra::ros2 {

class Context;
class Node;
class SyncGroup;

/// Suffixes used to derive service request/response topics from a service
/// name ("/sv1" -> "/sv1Request", "/sv1Reply"), matching the paper's Fig 3a
/// edge labels. Algorithm 1 classifies dds_write topics with these.
inline constexpr const char* kServiceRequestSuffix = "Request";
inline constexpr const char* kServiceReplySuffix = "Reply";

/// Write side of a topic owned by a node.
class Publisher {
 public:
  const std::string& topic() const { return topic_; }
  /// Publishes from the owning node's context (fires P16).
  void publish(std::size_t bytes = 64);

 private:
  friend class Node;
  Publisher(Node& node, dds::DataWriter writer, std::string topic)
      : node_(&node), writer_(std::move(writer)), topic_(std::move(topic)) {}
  Node* node_;
  dds::DataWriter writer_;
  std::string topic_;
};

/// Periodic timer callback.
class Timer {
 public:
  CallbackId id() const { return id_; }
  Duration period() const { return period_; }
  std::uint64_t fired() const { return fired_; }
  CallbackGroup& group() const { return *group_; }

 private:
  friend class Node;
  friend class Executor;
  Timer(Node& node, CallbackId id, Duration period, Duration phase, Plan plan,
        CallbackGroup& group)
      : node_(&node), id_(id), period_(period), phase_(phase),
        plan_(std::move(plan)), group_(&group) {}
  void tick();

  Node* node_;
  CallbackId id_;
  Duration period_;
  Duration phase_;
  Plan plan_;
  CallbackGroup* group_;
  int pending_ = 0;
  std::uint64_t fired_ = 0;
};

/// Topic subscription callback.
class Subscription {
 public:
  CallbackId id() const { return id_; }
  const std::string& topic() const { return topic_; }
  /// Sync group this subscription belongs to (nullptr if none).
  SyncGroup* sync_group() const { return sync_; }
  std::size_t queued() const { return queue_.size(); }
  CallbackGroup& group() const { return *group_; }

 private:
  friend class Node;
  friend class SyncGroup;
  Subscription(Node& node, CallbackId id, std::string topic, Plan plan,
               CallbackGroup& group)
      : node_(&node), id_(id), topic_(std::move(topic)),
        plan_(std::move(plan)), group_(&group) {}

  Node* node_;
  CallbackId id_;
  std::string topic_;
  Plan plan_;
  CallbackGroup* group_;
  std::deque<dds::Sample> queue_;
  SyncGroup* sync_ = nullptr;
};

/// Service (server-side) callback. The middleware writes the response to
/// the reply topic when the callback body finishes, targeting the client
/// that issued the request.
class Service {
 public:
  CallbackId id() const { return id_; }
  const std::string& service_name() const { return service_name_; }
  const std::string& request_topic() const { return request_topic_; }
  const std::string& reply_topic() const { return reply_topic_; }
  CallbackGroup& group() const { return *group_; }

 private:
  friend class Node;
  Service(Node& node, CallbackId id, std::string service_name, Plan plan,
          dds::DataWriter reply_writer, CallbackGroup& group)
      : node_(&node), id_(id), service_name_(service_name),
        request_topic_(service_name + kServiceRequestSuffix),
        reply_topic_(service_name + kServiceReplySuffix),
        plan_(std::move(plan)), reply_writer_(std::move(reply_writer)),
        group_(&group) {}

  Node* node_;
  CallbackId id_;
  std::string service_name_;
  std::string request_topic_;
  std::string reply_topic_;
  Plan plan_;
  dds::DataWriter reply_writer_;
  CallbackGroup* group_;
  std::deque<dds::Sample> queue_;
};

/// Client (caller-side) handle + response callback. `async_call` can be
/// used directly or through ActionContext::call from another callback.
class Client {
 public:
  CallbackId id() const { return id_; }
  const std::string& service_name() const { return service_name_; }

  /// Issues a request (fires P16 on the request topic). Must be called
  /// from the owning node's executor context (i.e. from a plan action).
  void async_call(std::size_t bytes = 64);

  std::uint64_t dispatched_responses() const { return dispatched_; }
  std::uint64_t ignored_responses() const { return ignored_; }
  CallbackGroup& group() const { return *group_; }

 private:
  friend class Node;
  Client(Node& node, CallbackId id, std::string service_name, Plan plan,
         dds::DataWriter request_writer, CallbackGroup& group)
      : node_(&node), id_(id), service_name_(service_name),
        reply_topic_(service_name + kServiceReplySuffix),
        plan_(std::move(plan)), request_writer_(std::move(request_writer)),
        group_(&group) {}

  Node* node_;
  CallbackId id_;
  std::string service_name_;
  std::string reply_topic_;
  Plan plan_;
  dds::DataWriter request_writer_;
  CallbackGroup* group_;
  std::deque<dds::Sample> queue_;
  std::uint64_t dispatched_ = 0;
  std::uint64_t ignored_ = 0;
};

/// message_filters-style synchronizer over m subscriptions of one node.
/// The member whose sample completes the set runs the fusion demand and
/// publishes the output inside its own callback execution — so a member
/// that never arrives last shows no published topic in its CBlist entry,
/// matching the paper's modeling note.
class SyncGroup {
 public:
  bool complete() const;
  std::size_t member_count() const { return members_.size(); }
  int member_index(const Subscription* sub) const;

 private:
  friend class Node;
  SyncGroup(std::vector<Subscription*> members,
            DurationDistribution fusion_demand, Publisher& output,
            std::size_t output_bytes)
      : members_(std::move(members)), slots_(members_.size()),
        fusion_demand_(fusion_demand), output_(&output),
        output_bytes_(output_bytes) {}

  void record(const Subscription& sub, const dds::Sample& sample);
  void clear();

  std::vector<Subscription*> members_;
  std::vector<std::optional<dds::Sample>> slots_;
  DurationDistribution fusion_demand_;
  Publisher* output_;
  std::size_t output_bytes_;
};

struct NodeOptions {
  std::string name = "node";
  int priority = 0;
  sched::SchedPolicy policy = sched::SchedPolicy::RoundRobin;
  std::uint64_t affinity_mask = ~0ULL;
  /// Worker threads of the node's executor. 1 = the paper's
  /// single-threaded deployment assumption (callbacks never overlap).
  int executor_threads = 1;
};

/// One ROS2 node and its executor. With executor_threads == 1 callbacks
/// of the node never overlap in time; with more workers, overlap is
/// bounded by the callback groups (ros2/executor.hpp).
class Node {
 public:
  const std::string& name() const { return options_.name; }
  const NodeOptions& options() const { return options_; }
  /// PID of the executor's primary worker (the node identity a
  /// single-threaded deployment has).
  Pid pid() const;
  Context& context() { return ctx_; }
  Rng& rng() { return rng_; }
  Executor& executor() { return *executor_; }
  sched::Thread& thread() { return executor_->primary(); }

  /// Creates an additional callback group; group 0 (mutually exclusive)
  /// always exists as the default.
  CallbackGroup& create_callback_group(CallbackGroupKind kind);
  CallbackGroup& default_callback_group() { return *groups_.front(); }

  Publisher& create_publisher(const std::string& topic);
  Timer& create_timer(Duration period, Plan plan,
                      std::optional<Duration> phase = std::nullopt,
                      CallbackGroup* group = nullptr);
  Subscription& create_subscription(const std::string& topic, Plan plan,
                                    CallbackGroup* group = nullptr);
  Service& create_service(const std::string& service_name, Plan plan,
                          CallbackGroup* group = nullptr);
  Client& create_client(const std::string& service_name, Plan plan,
                        CallbackGroup* group = nullptr);
  SyncGroup& create_sync_group(const std::vector<Subscription*>& members,
                               DurationDistribution fusion_demand,
                               Publisher& output,
                               std::size_t output_bytes = 4096);

  /// Executed callback instances (all kinds), for test assertions.
  std::uint64_t callbacks_executed() const { return callbacks_executed_; }

 private:
  friend class Context;
  friend class Timer;
  friend class Publisher;
  friend class Client;
  friend class ActionContext;
  friend class Executor;

  Node(Context& ctx, NodeOptions options);

  // Executor interface -------------------------------------------------------
  using Work = std::variant<std::monostate, Timer*, Subscription*, Service*,
                            Client*>;
  /// Next dispatchable work item in wait-set order, skipping work whose
  /// mutually-exclusive group another worker has claimed.
  Work pick_work();
  /// Dispatches one work item on `worker`; `done` runs after the callback
  /// (and its group claim) is fully released.
  void execute(sched::Thread& worker, const Work& work,
               std::function<void()> done);
  void notify();
  /// PID of the worker currently executing a callback body (falls back to
  /// the primary worker outside callback context).
  Pid active_pid() const;

  void run_plan(sched::Thread& worker, const Plan& plan,
                std::shared_ptr<const dds::Sample> trigger,
                std::function<void()> done);
  void execute_timer(sched::Thread& worker, Timer& timer,
                     std::function<void()> done);
  void execute_subscription(sched::Thread& worker, Subscription& sub,
                            std::function<void()> done);
  void execute_service(sched::Thread& worker, Service& service,
                       std::function<void()> done);
  void execute_client(sched::Thread& worker, Client& client,
                      std::function<void()> done);

  // Middleware helpers -------------------------------------------------------
  void emit_take(const sched::Thread& worker, trace::TakeKind kind,
                 CallbackId cb, const std::string& topic, TimePoint src_ts);
  CallbackId allocate_callback_id();
  static std::uint64_t stack_slot_for(const sched::Thread& worker,
                                      trace::TakeKind kind);

  Context& ctx_;
  NodeOptions options_;
  std::unique_ptr<Executor> executor_;
  std::vector<std::unique_ptr<CallbackGroup>> groups_;
  sched::Thread* active_worker_ = nullptr;
  Rng rng_;
  CallbackId next_callback_slot_ = 0;
  CallbackId id_base_ = 0;
  std::uint64_t callbacks_executed_ = 0;

  std::vector<std::unique_ptr<Publisher>> publishers_;
  std::vector<std::unique_ptr<Timer>> timers_;
  std::vector<std::unique_ptr<Subscription>> subscriptions_;
  std::vector<std::unique_ptr<Service>> services_;
  std::vector<std::unique_ptr<Client>> clients_;
  std::vector<std::unique_ptr<SyncGroup>> sync_groups_;
};

}  // namespace tetra::ros2
