#include "ros2/context.hpp"

#include <stdexcept>

namespace tetra::ros2 {

Context::Context() : Context(Config{}) {}

Context::Context(Config config)
    : config_(config),
      rng_(config.seed),
      machine_(sim_, sched::Machine::Config{config.num_cpus, config.rr_slice,
                                            config.first_pid}),
      domain_(sim_, Rng{config.seed ^ 0xdd5'dd5ULL}) {
  domain_.set_latency(config_.dds_latency);
}

Node& Context::create_node(NodeOptions options) {
  if (node_by_name(options.name) != nullptr) {
    throw std::invalid_argument("create_node: duplicate node name '" +
                                options.name + "'");
  }
  nodes_.push_back(std::unique_ptr<Node>(new Node(*this, std::move(options))));
  return *nodes_.back();
}

Node* Context::node_by_name(const std::string& name) {
  for (auto& node : nodes_) {
    if (node->name() == name) return node.get();
  }
  return nullptr;
}

void Context::run_for(Duration duration) {
  sim_.run_until(sim_.now() + duration);
}

CallbackId Context::allocate_id_base() {
  // Pseudo heap addresses: high, page-aligned-ish, randomized per run.
  return 0x5600'0000'0000ULL +
         (rng_.next_u64() & 0x00ff'ffff'f000ULL);
}

}  // namespace tetra::ros2
