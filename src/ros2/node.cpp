#include "ros2/node.hpp"

#include <stdexcept>

#include "ros2/context.hpp"

namespace tetra::ros2 {

// ------------------------------------------------------------- Publisher --

void Publisher::publish(std::size_t bytes) {
  // Attributed to the worker whose callback body issued the write, so the
  // dds_write lands in that worker's per-PID event stream.
  writer_.write(node_->active_pid(), bytes);
}

// ---------------------------------------------------------------- Client --

void Client::async_call(std::size_t bytes) {
  // The request carries the issuing client handle id; the service copies it
  // into the response's target tag, which is what the P14 dispatch check
  // compares against.
  request_writer_.write(node_->active_pid(), bytes, /*origin_tag=*/id_,
                        /*target_tag=*/dds::kNoTag);
}

// ----------------------------------------------------------------- Timer --

void Timer::tick() {
  ++pending_;
  ++fired_;
  node_->notify();
  node_->ctx_.simulator().after(period_, [this] { tick(); });
}

// ------------------------------------------------------------- SyncGroup --

bool SyncGroup::complete() const {
  for (const auto& slot : slots_) {
    if (!slot.has_value()) return false;
  }
  return true;
}

int SyncGroup::member_index(const Subscription* sub) const {
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (members_[i] == sub) return static_cast<int>(i);
  }
  return -1;
}

void SyncGroup::record(const Subscription& sub, const dds::Sample& sample) {
  const int idx = member_index(&sub);
  if (idx < 0) throw std::logic_error("SyncGroup: subscription not a member");
  slots_[static_cast<std::size_t>(idx)] = sample;  // keep-latest policy
}

void SyncGroup::clear() {
  for (auto& slot : slots_) slot.reset();
}

// ------------------------------------------------------------------ Node --

Node::Node(Context& ctx, NodeOptions options)
    : ctx_(ctx), options_(std::move(options)), rng_(ctx.rng().fork()) {
  if (options_.executor_threads < 1) {
    throw std::invalid_argument("Node: executor_threads must be >= 1");
  }
  // Group 0: the default mutually-exclusive group every callback lands in
  // unless assigned elsewhere.
  groups_.push_back(std::unique_ptr<CallbackGroup>(
      new CallbackGroup(0, CallbackGroupKind::MutuallyExclusive)));
  executor_.reset(new Executor(*this, options_.executor_threads));
  // Pseudo-addresses: callback handles live on this process's heap.
  // Randomized per run.
  id_base_ = ctx_.allocate_id_base();
  // P1 fires once per worker thread: the tracer learns every PID that can
  // carry this node's callback events.
  if (ctx_.hooks().rmw_create_node) {
    for (int w = 0; w < executor_->worker_count(); ++w) {
      ctx_.hooks().rmw_create_node(ctx_.simulator().now(),
                                   executor_->worker(w).pid(), options_.name);
    }
  }
}

Pid Node::pid() const { return executor_->primary().pid(); }

Pid Node::active_pid() const {
  return active_worker_ != nullptr ? active_worker_->pid() : pid();
}

CallbackGroup& Node::create_callback_group(CallbackGroupKind kind) {
  groups_.push_back(
      std::unique_ptr<CallbackGroup>(new CallbackGroup(groups_.size(), kind)));
  return *groups_.back();
}

CallbackId Node::allocate_callback_id() {
  // 0x60 spacing mimics rclcpp handle objects on the heap.
  return id_base_ + (next_callback_slot_++) * 0x60;
}

std::uint64_t Node::stack_slot_for(const sched::Thread& worker,
                                   trace::TakeKind kind) {
  // The srcTS out-parameter lives on the calling worker's stack.
  const std::uint64_t stack_base =
      0x7ffc'0000'0000ULL ^ (static_cast<std::uint64_t>(worker.pid()) << 16);
  return stack_base + static_cast<std::uint64_t>(kind) * 8;
}

Publisher& Node::create_publisher(const std::string& topic) {
  publishers_.push_back(std::unique_ptr<Publisher>(
      new Publisher(*this, ctx_.domain().create_writer(topic), topic)));
  return *publishers_.back();
}

Timer& Node::create_timer(Duration period, Plan plan,
                          std::optional<Duration> phase, CallbackGroup* group) {
  if (period <= Duration::zero()) {
    throw std::invalid_argument("create_timer: period must be positive");
  }
  timers_.push_back(std::unique_ptr<Timer>(new Timer(
      *this, allocate_callback_id(), period, phase.value_or(period),
      std::move(plan), group != nullptr ? *group : default_callback_group())));
  Timer& timer = *timers_.back();
  ctx_.simulator().after(timer.phase_, [&timer] { timer.tick(); });
  return timer;
}

Subscription& Node::create_subscription(const std::string& topic, Plan plan,
                                        CallbackGroup* group) {
  subscriptions_.push_back(std::unique_ptr<Subscription>(new Subscription(
      *this, allocate_callback_id(), topic, std::move(plan),
      group != nullptr ? *group : default_callback_group())));
  Subscription& sub = *subscriptions_.back();
  ctx_.domain().create_reader(topic, [this, &sub](const dds::Sample& sample) {
    sub.queue_.push_back(sample);
    notify();
  });
  return sub;
}

Service& Node::create_service(const std::string& service_name, Plan plan,
                              CallbackGroup* group) {
  const std::string reply_topic = service_name + kServiceReplySuffix;
  services_.push_back(std::unique_ptr<Service>(new Service(
      *this, allocate_callback_id(), service_name, std::move(plan),
      ctx_.domain().create_writer(reply_topic),
      group != nullptr ? *group : default_callback_group())));
  Service& service = *services_.back();
  ctx_.domain().create_reader(service.request_topic_,
                              [this, &service](const dds::Sample& sample) {
                                service.queue_.push_back(sample);
                                notify();
                              });
  return service;
}

Client& Node::create_client(const std::string& service_name, Plan plan,
                            CallbackGroup* group) {
  const std::string request_topic = service_name + kServiceRequestSuffix;
  clients_.push_back(std::unique_ptr<Client>(new Client(
      *this, allocate_callback_id(), service_name, std::move(plan),
      ctx_.domain().create_writer(request_topic),
      group != nullptr ? *group : default_callback_group())));
  Client& client = *clients_.back();
  // Every client's reader receives every response on the service's reply
  // topic; the dispatch decision is made per-client at execution time
  // (take_type_erased_response, P14).
  ctx_.domain().create_reader(client.reply_topic_,
                              [this, &client](const dds::Sample& sample) {
                                client.queue_.push_back(sample);
                                notify();
                              });
  return client;
}

SyncGroup& Node::create_sync_group(const std::vector<Subscription*>& members,
                                   DurationDistribution fusion_demand,
                                   Publisher& output, std::size_t output_bytes) {
  if (members.size() < 2) {
    throw std::invalid_argument("create_sync_group: needs >= 2 members");
  }
  for (Subscription* member : members) {
    if (member == nullptr || member->node_ != this) {
      throw std::invalid_argument(
          "create_sync_group: members must belong to this node");
    }
    if (member->sync_ != nullptr) {
      throw std::invalid_argument(
          "create_sync_group: subscription already in a sync group");
    }
    // The synchronizer's record/clear state is unguarded, exactly like
    // message_filters'; members must be serialized with each other.
    if (member->group_->reentrant() ||
        member->group_ != members.front()->group_) {
      throw std::invalid_argument(
          "create_sync_group: members must share one mutually-exclusive "
          "callback group");
    }
  }
  sync_groups_.push_back(std::unique_ptr<SyncGroup>(
      new SyncGroup(members, fusion_demand, output, output_bytes)));
  SyncGroup& group = *sync_groups_.back();
  for (Subscription* member : members) member->sync_ = &group;
  return group;
}

void Node::notify() { executor_->notify(); }

Node::Work Node::pick_work() {
  // Foxy wait-set order: timers first, then subscriptions, then services,
  // then clients; registration order within each class; one callback
  // instance per dispatch. Work whose mutually-exclusive group another
  // worker holds is skipped — the multi-threaded executor's group rule.
  for (auto& timer : timers_) {
    if (timer->pending_ > 0 && timer->group_->eligible()) return timer.get();
  }
  for (auto& sub : subscriptions_) {
    if (!sub->queue_.empty() && sub->group_->eligible()) return sub.get();
  }
  for (auto& service : services_) {
    if (!service->queue_.empty() && service->group_->eligible()) {
      return service.get();
    }
  }
  for (auto& client : clients_) {
    if (!client->queue_.empty() && client->group_->eligible()) {
      return client.get();
    }
  }
  return std::monostate{};
}

void Node::execute(sched::Thread& worker, const Work& work,
                   std::function<void()> done) {
  ++callbacks_executed_;
  CallbackGroup* group = nullptr;
  if (auto* timer = std::get_if<Timer*>(&work)) {
    group = (*timer)->group_;
  } else if (auto* sub = std::get_if<Subscription*>(&work)) {
    group = (*sub)->group_;
  } else if (auto* service = std::get_if<Service*>(&work)) {
    group = (*service)->group_;
  } else if (auto* client = std::get_if<Client*>(&work)) {
    group = (*client)->group_;
  }
  // Claim the group for the whole callback execution.
  ++group->in_flight_;
  active_worker_ = &worker;
  auto finish = [this, group, done = std::move(done)] {
    --group->in_flight_;
    active_worker_ = nullptr;
    // Releasing a mutually-exclusive claim can make skipped work eligible
    // for *sibling* workers that blocked on it; the completing worker
    // re-polls itself right after, so a single-threaded executor needs
    // (and gets) no wakeup here.
    if (!group->reentrant() && executor_->worker_count() > 1) notify();
    done();
  };
  if (auto* timer = std::get_if<Timer*>(&work)) {
    execute_timer(worker, **timer, std::move(finish));
  } else if (auto* sub = std::get_if<Subscription*>(&work)) {
    execute_subscription(worker, **sub, std::move(finish));
  } else if (auto* service = std::get_if<Service*>(&work)) {
    execute_service(worker, **service, std::move(finish));
  } else if (auto* client = std::get_if<Client*>(&work)) {
    execute_client(worker, **client, std::move(finish));
  }
}

void Node::run_plan(sched::Thread& worker, const Plan& plan,
                    std::shared_ptr<const dds::Sample> trigger,
                    std::function<void()> done) {
  // Chain the steps through the worker's compute requests. The shared
  // state advances an index over the plan's steps; all callbacks run in
  // the dispatching worker's thread context.
  struct Runner : std::enable_shared_from_this<Runner> {
    Node* node;
    sched::Thread* worker;
    const Plan* plan;
    std::shared_ptr<const dds::Sample> trigger;
    std::function<void()> done;
    std::size_t index = 0;

    void step() {
      if (index >= plan->steps().size()) {
        node->active_worker_ = worker;
        done();
        return;
      }
      const PlanStep& s = plan->steps()[index];
      ++index;
      auto self = shared_from_this();
      worker->compute(s.demand.sample(node->rng_), [self, &s] {
        // Another worker may have run in between: re-establish which
        // worker's callback body is executing before any action fires.
        self->node->active_worker_ = self->worker;
        if (s.action) {
          ActionContext ctx(*self->node, self->trigger.get());
          s.action(ctx);
        }
        self->step();
      });
    }
  };
  auto runner = std::make_shared<Runner>();
  runner->node = this;
  runner->worker = &worker;
  runner->plan = &plan;
  runner->trigger = std::move(trigger);
  runner->done = std::move(done);
  runner->step();
}

void Node::emit_take(const sched::Thread& worker, trace::TakeKind kind,
                     CallbackId cb, const std::string& topic,
                     TimePoint src_ts) {
  const std::uint64_t addr = stack_slot_for(worker, kind);
  const TimePoint now = ctx_.simulator().now();
  if (ctx_.hooks().rmw_take_entry) {
    ctx_.hooks().rmw_take_entry(now, worker.pid(), kind, addr, cb, topic);
  }
  if (ctx_.hooks().rmw_take_exit) {
    ctx_.hooks().rmw_take_exit(now, worker.pid(), kind, addr, src_ts);
  }
}

void Node::execute_timer(sched::Thread& worker, Timer& timer,
                         std::function<void()> done) {
  const TimePoint now = ctx_.simulator().now();
  if (ctx_.hooks().execute_callback) {
    ctx_.hooks().execute_callback(now, worker.pid(), CallbackKind::Timer,
                                  true);  // P2
  }
  if (ctx_.hooks().rcl_timer_call) {
    ctx_.hooks().rcl_timer_call(now, worker.pid(), timer.id_);  // P3
  }
  --timer.pending_;
  sched::Thread* w = &worker;
  run_plan(worker, timer.plan_, nullptr, [this, w, done = std::move(done)] {
    if (ctx_.hooks().execute_callback) {
      ctx_.hooks().execute_callback(ctx_.simulator().now(), w->pid(),
                                    CallbackKind::Timer, false);  // P4
    }
    done();
  });
}

void Node::execute_subscription(sched::Thread& worker, Subscription& sub,
                                std::function<void()> done) {
  const TimePoint now = ctx_.simulator().now();
  if (ctx_.hooks().execute_callback) {
    ctx_.hooks().execute_callback(now, worker.pid(),
                                  CallbackKind::Subscription, true);  // P5
  }
  auto sample = std::make_shared<const dds::Sample>(sub.queue_.front());
  sub.queue_.pop_front();
  emit_take(worker, trace::TakeKind::Data, sub.id_, sub.topic_,
            sample->src_ts);  // P6
  SyncGroup* sync = sub.sync_;
  if (sync != nullptr) {
    if (ctx_.hooks().message_filter_operator) {
      ctx_.hooks().message_filter_operator(now, worker.pid(), sub.id_);  // P7
    }
    sync->record(sub, *sample);
  }
  sched::Thread* w = &worker;
  run_plan(worker, sub.plan_, sample,
           [this, w, sync, done = std::move(done)] {
    // If this sample completed the synchronization set, the fusion result
    // is produced inside this callback execution: extra compute demand,
    // then the output publication — all before P8.
    if (sync != nullptr && sync->complete()) {
      w->compute(sync->fusion_demand_.sample(rng_), [this, w, sync, done] {
        active_worker_ = w;
        sync->output_->publish(sync->output_bytes_);
        sync->clear();
        if (ctx_.hooks().execute_callback) {
          ctx_.hooks().execute_callback(ctx_.simulator().now(), w->pid(),
                                        CallbackKind::Subscription, false);
        }
        done();
      });
      return;
    }
    if (ctx_.hooks().execute_callback) {
      ctx_.hooks().execute_callback(ctx_.simulator().now(), w->pid(),
                                    CallbackKind::Subscription, false);  // P8
    }
    done();
  });
}

void Node::execute_service(sched::Thread& worker, Service& service,
                           std::function<void()> done) {
  const TimePoint now = ctx_.simulator().now();
  if (ctx_.hooks().execute_callback) {
    ctx_.hooks().execute_callback(now, worker.pid(), CallbackKind::Service,
                                  true);  // P9
  }
  auto request = std::make_shared<const dds::Sample>(service.queue_.front());
  service.queue_.pop_front();
  emit_take(worker, trace::TakeKind::Request, service.id_,
            service.request_topic_, request->src_ts);  // P10
  Service* sv = &service;
  sched::Thread* w = &worker;
  run_plan(worker, service.plan_, request,
           [this, w, sv, request, done = std::move(done)] {
    // The middleware sends the response as execute_service returns; the
    // response write targets the requesting client (P16 on the reply topic).
    sv->reply_writer_.write(w->pid(), /*payload_bytes=*/64, dds::kNoTag,
                            /*target_tag=*/request->origin_tag);
    if (ctx_.hooks().execute_callback) {
      ctx_.hooks().execute_callback(ctx_.simulator().now(), w->pid(),
                                    CallbackKind::Service, false);  // P11
    }
    done();
  });
}

void Node::execute_client(sched::Thread& worker, Client& client,
                          std::function<void()> done) {
  const TimePoint now = ctx_.simulator().now();
  if (ctx_.hooks().execute_callback) {
    ctx_.hooks().execute_callback(now, worker.pid(), CallbackKind::Client,
                                  true);  // P12
  }
  auto response = std::make_shared<const dds::Sample>(client.queue_.front());
  client.queue_.pop_front();
  emit_take(worker, trace::TakeKind::Response, client.id_, client.reply_topic_,
            response->src_ts);  // P13
  const bool dispatch = response->target_tag == client.id_;
  if (ctx_.hooks().take_type_erased_response) {
    ctx_.hooks().take_type_erased_response(now, worker.pid(), dispatch);  // P14
  }
  if (!dispatch) {
    ++client.ignored_;
    if (ctx_.hooks().execute_callback) {
      ctx_.hooks().execute_callback(ctx_.simulator().now(), worker.pid(),
                                    CallbackKind::Client, false);  // P15
    }
    done();
    return;
  }
  ++client.dispatched_;
  sched::Thread* w = &worker;
  run_plan(worker, client.plan_, response, [this, w, done = std::move(done)] {
    if (ctx_.hooks().execute_callback) {
      ctx_.hooks().execute_callback(ctx_.simulator().now(), w->pid(),
                                    CallbackKind::Client, false);  // P15
    }
    done();
  });
}

}  // namespace tetra::ros2
