#include "ros2/node.hpp"

#include <stdexcept>

#include "ros2/context.hpp"

namespace tetra::ros2 {

// ------------------------------------------------------------- Publisher --

void Publisher::publish(std::size_t bytes) {
  writer_.write(node_->pid(), bytes);
}

// ---------------------------------------------------------------- Client --

void Client::async_call(std::size_t bytes) {
  // The request carries the issuing client handle id; the service copies it
  // into the response's target tag, which is what the P14 dispatch check
  // compares against.
  request_writer_.write(node_->pid(), bytes, /*origin_tag=*/id_,
                        /*target_tag=*/dds::kNoTag);
}

// ----------------------------------------------------------------- Timer --

void Timer::tick() {
  ++pending_;
  ++fired_;
  node_->notify();
  node_->ctx_.simulator().after(period_, [this] { tick(); });
}

// ------------------------------------------------------------- SyncGroup --

bool SyncGroup::complete() const {
  for (const auto& slot : slots_) {
    if (!slot.has_value()) return false;
  }
  return true;
}

int SyncGroup::member_index(const Subscription* sub) const {
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (members_[i] == sub) return static_cast<int>(i);
  }
  return -1;
}

void SyncGroup::record(const Subscription& sub, const dds::Sample& sample) {
  const int idx = member_index(&sub);
  if (idx < 0) throw std::logic_error("SyncGroup: subscription not a member");
  slots_[static_cast<std::size_t>(idx)] = sample;  // keep-latest policy
}

void SyncGroup::clear() {
  for (auto& slot : slots_) slot.reset();
}

// ------------------------------------------------------------------ Node --

Node::Node(Context& ctx, NodeOptions options)
    : ctx_(ctx), options_(std::move(options)), rng_(ctx.rng().fork()) {
  sched::ThreadConfig tc;
  tc.name = options_.name;
  tc.priority = options_.priority;
  tc.policy = options_.policy;
  tc.affinity_mask = options_.affinity_mask;
  thread_ = &ctx_.machine().create_thread(tc, [this] { run_loop(); });
  // Pseudo-addresses: callback handles live on this process's heap, the
  // srcTS out-parameter on its stack. Randomized per run.
  id_base_ = ctx_.allocate_id_base();
  stack_base_ = 0x7ffc'0000'0000ULL ^ (static_cast<std::uint64_t>(pid()) << 16);
  if (ctx_.hooks().rmw_create_node) {
    ctx_.hooks().rmw_create_node(ctx_.simulator().now(), pid(), options_.name);
  }
}

Pid Node::pid() const { return thread_->pid(); }

CallbackId Node::allocate_callback_id() {
  // 0x60 spacing mimics rclcpp handle objects on the heap.
  return id_base_ + (next_callback_slot_++) * 0x60;
}

std::uint64_t Node::stack_slot_for(trace::TakeKind kind) const {
  return stack_base_ + static_cast<std::uint64_t>(kind) * 8;
}

Publisher& Node::create_publisher(const std::string& topic) {
  publishers_.push_back(std::unique_ptr<Publisher>(
      new Publisher(*this, ctx_.domain().create_writer(topic), topic)));
  return *publishers_.back();
}

Timer& Node::create_timer(Duration period, Plan plan,
                          std::optional<Duration> phase) {
  if (period <= Duration::zero()) {
    throw std::invalid_argument("create_timer: period must be positive");
  }
  timers_.push_back(std::unique_ptr<Timer>(new Timer(
      *this, allocate_callback_id(), period, phase.value_or(period),
      std::move(plan))));
  Timer& timer = *timers_.back();
  ctx_.simulator().after(timer.phase_, [&timer] { timer.tick(); });
  return timer;
}

Subscription& Node::create_subscription(const std::string& topic, Plan plan) {
  subscriptions_.push_back(std::unique_ptr<Subscription>(
      new Subscription(*this, allocate_callback_id(), topic, std::move(plan))));
  Subscription& sub = *subscriptions_.back();
  ctx_.domain().create_reader(topic, [this, &sub](const dds::Sample& sample) {
    sub.queue_.push_back(sample);
    notify();
  });
  return sub;
}

Service& Node::create_service(const std::string& service_name, Plan plan) {
  const std::string reply_topic = service_name + kServiceReplySuffix;
  services_.push_back(std::unique_ptr<Service>(
      new Service(*this, allocate_callback_id(), service_name, std::move(plan),
                  ctx_.domain().create_writer(reply_topic))));
  Service& service = *services_.back();
  ctx_.domain().create_reader(service.request_topic_,
                              [this, &service](const dds::Sample& sample) {
                                service.queue_.push_back(sample);
                                notify();
                              });
  return service;
}

Client& Node::create_client(const std::string& service_name, Plan plan) {
  const std::string request_topic = service_name + kServiceRequestSuffix;
  clients_.push_back(std::unique_ptr<Client>(
      new Client(*this, allocate_callback_id(), service_name, std::move(plan),
                 ctx_.domain().create_writer(request_topic))));
  Client& client = *clients_.back();
  // Every client's reader receives every response on the service's reply
  // topic; the dispatch decision is made per-client at execution time
  // (take_type_erased_response, P14).
  ctx_.domain().create_reader(client.reply_topic_,
                              [this, &client](const dds::Sample& sample) {
                                client.queue_.push_back(sample);
                                notify();
                              });
  return client;
}

SyncGroup& Node::create_sync_group(const std::vector<Subscription*>& members,
                                   DurationDistribution fusion_demand,
                                   Publisher& output, std::size_t output_bytes) {
  if (members.size() < 2) {
    throw std::invalid_argument("create_sync_group: needs >= 2 members");
  }
  for (Subscription* member : members) {
    if (member == nullptr || member->node_ != this) {
      throw std::invalid_argument(
          "create_sync_group: members must belong to this node");
    }
    if (member->sync_ != nullptr) {
      throw std::invalid_argument(
          "create_sync_group: subscription already in a sync group");
    }
  }
  sync_groups_.push_back(std::unique_ptr<SyncGroup>(
      new SyncGroup(members, fusion_demand, output, output_bytes)));
  SyncGroup& group = *sync_groups_.back();
  for (Subscription* member : members) member->sync_ = &group;
  return group;
}

void Node::notify() { thread_->wake(); }

Node::Work Node::pick_work() {
  // Foxy single-threaded executor wait-set order: timers first, then
  // subscriptions, then services, then clients; registration order within
  // each class; one callback instance per dispatch.
  for (auto& timer : timers_) {
    if (timer->pending_ > 0) return timer.get();
  }
  for (auto& sub : subscriptions_) {
    if (!sub->queue_.empty()) return sub.get();
  }
  for (auto& service : services_) {
    if (!service->queue_.empty()) return service.get();
  }
  for (auto& client : clients_) {
    if (!client->queue_.empty()) return client.get();
  }
  return std::monostate{};
}

void Node::run_loop() {
  Work work = pick_work();
  if (std::holds_alternative<std::monostate>(work)) {
    thread_->block([this] { run_loop(); });
    return;
  }
  ++callbacks_executed_;
  if (auto* timer = std::get_if<Timer*>(&work)) {
    execute_timer(**timer);
  } else if (auto* sub = std::get_if<Subscription*>(&work)) {
    execute_subscription(**sub);
  } else if (auto* service = std::get_if<Service*>(&work)) {
    execute_service(**service);
  } else if (auto* client = std::get_if<Client*>(&work)) {
    execute_client(**client);
  }
}

void Node::run_plan(const Plan& plan, std::shared_ptr<const dds::Sample> trigger,
                    std::function<void()> done) {
  // Chain the steps through thread_->compute. The shared state advances an
  // index over the plan's steps; all callbacks run in this node's executor
  // thread context.
  struct Runner : std::enable_shared_from_this<Runner> {
    Node* node;
    const Plan* plan;
    std::shared_ptr<const dds::Sample> trigger;
    std::function<void()> done;
    std::size_t index = 0;

    void step() {
      if (index >= plan->steps().size()) {
        done();
        return;
      }
      const PlanStep& s = plan->steps()[index];
      ++index;
      auto self = shared_from_this();
      node->thread_->compute(s.demand.sample(node->rng_), [self, &s] {
        if (s.action) {
          ActionContext ctx(*self->node, self->trigger.get());
          s.action(ctx);
        }
        self->step();
      });
    }
  };
  auto runner = std::make_shared<Runner>();
  runner->node = this;
  runner->plan = &plan;
  runner->trigger = std::move(trigger);
  runner->done = std::move(done);
  runner->step();
}

void Node::emit_take(trace::TakeKind kind, CallbackId cb,
                     const std::string& topic, TimePoint src_ts) {
  const std::uint64_t addr = stack_slot_for(kind);
  const TimePoint now = ctx_.simulator().now();
  if (ctx_.hooks().rmw_take_entry) {
    ctx_.hooks().rmw_take_entry(now, pid(), kind, addr, cb, topic);
  }
  if (ctx_.hooks().rmw_take_exit) {
    ctx_.hooks().rmw_take_exit(now, pid(), kind, addr, src_ts);
  }
}

void Node::execute_timer(Timer& timer) {
  const TimePoint now = ctx_.simulator().now();
  if (ctx_.hooks().execute_callback) {
    ctx_.hooks().execute_callback(now, pid(), CallbackKind::Timer, true);  // P2
  }
  if (ctx_.hooks().rcl_timer_call) {
    ctx_.hooks().rcl_timer_call(now, pid(), timer.id_);  // P3
  }
  --timer.pending_;
  run_plan(timer.plan_, nullptr, [this] {
    if (ctx_.hooks().execute_callback) {
      ctx_.hooks().execute_callback(ctx_.simulator().now(), pid(),
                                    CallbackKind::Timer, false);  // P4
    }
    run_loop();
  });
}

void Node::execute_subscription(Subscription& sub) {
  const TimePoint now = ctx_.simulator().now();
  if (ctx_.hooks().execute_callback) {
    ctx_.hooks().execute_callback(now, pid(), CallbackKind::Subscription,
                                  true);  // P5
  }
  auto sample = std::make_shared<const dds::Sample>(sub.queue_.front());
  sub.queue_.pop_front();
  emit_take(trace::TakeKind::Data, sub.id_, sub.topic_, sample->src_ts);  // P6
  SyncGroup* sync = sub.sync_;
  if (sync != nullptr) {
    if (ctx_.hooks().message_filter_operator) {
      ctx_.hooks().message_filter_operator(now, pid(), sub.id_);  // P7
    }
    sync->record(sub, *sample);
  }
  run_plan(sub.plan_, sample, [this, sync] {
    // If this sample completed the synchronization set, the fusion result
    // is produced inside this callback execution: extra compute demand,
    // then the output publication — all before P8.
    if (sync != nullptr && sync->complete()) {
      thread_->compute(sync->fusion_demand_.sample(rng_), [this, sync] {
        sync->output_->publish(sync->output_bytes_);
        sync->clear();
        if (ctx_.hooks().execute_callback) {
          ctx_.hooks().execute_callback(ctx_.simulator().now(), pid(),
                                        CallbackKind::Subscription, false);
        }
        run_loop();
      });
      return;
    }
    if (ctx_.hooks().execute_callback) {
      ctx_.hooks().execute_callback(ctx_.simulator().now(), pid(),
                                    CallbackKind::Subscription, false);  // P8
    }
    run_loop();
  });
}

void Node::execute_service(Service& service) {
  const TimePoint now = ctx_.simulator().now();
  if (ctx_.hooks().execute_callback) {
    ctx_.hooks().execute_callback(now, pid(), CallbackKind::Service, true);  // P9
  }
  auto request = std::make_shared<const dds::Sample>(service.queue_.front());
  service.queue_.pop_front();
  emit_take(trace::TakeKind::Request, service.id_, service.request_topic_,
            request->src_ts);  // P10
  Service* sv = &service;
  run_plan(service.plan_, request, [this, sv, request] {
    // The middleware sends the response as execute_service returns; the
    // response write targets the requesting client (P16 on the reply topic).
    sv->reply_writer_.write(pid(), /*payload_bytes=*/64, dds::kNoTag,
                            /*target_tag=*/request->origin_tag);
    if (ctx_.hooks().execute_callback) {
      ctx_.hooks().execute_callback(ctx_.simulator().now(), pid(),
                                    CallbackKind::Service, false);  // P11
    }
    run_loop();
  });
}

void Node::execute_client(Client& client) {
  const TimePoint now = ctx_.simulator().now();
  if (ctx_.hooks().execute_callback) {
    ctx_.hooks().execute_callback(now, pid(), CallbackKind::Client, true);  // P12
  }
  auto response = std::make_shared<const dds::Sample>(client.queue_.front());
  client.queue_.pop_front();
  emit_take(trace::TakeKind::Response, client.id_, client.reply_topic_,
            response->src_ts);  // P13
  const bool dispatch = response->target_tag == client.id_;
  if (ctx_.hooks().take_type_erased_response) {
    ctx_.hooks().take_type_erased_response(now, pid(), dispatch);  // P14
  }
  if (!dispatch) {
    ++client.ignored_;
    if (ctx_.hooks().execute_callback) {
      ctx_.hooks().execute_callback(ctx_.simulator().now(), pid(),
                                    CallbackKind::Client, false);  // P15
    }
    run_loop();
    return;
  }
  ++client.dispatched_;
  run_plan(client.plan_, response, [this] {
    if (ctx_.hooks().execute_callback) {
      ctx_.hooks().execute_callback(ctx_.simulator().now(), pid(),
                                    CallbackKind::Client, false);  // P15
    }
    run_loop();
  });
}

}  // namespace tetra::ros2
