// The ROS2 context: owns the simulation executive, the machine, the DDS
// domain, the hook registry and all nodes. One Context = one "system under
// trace" (applications can span several nodes; several applications share
// one Context, as AVP + SYN do in the paper's case study).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dds/domain.hpp"
#include "ros2/hooks.hpp"
#include "ros2/node.hpp"
#include "sched/machine.hpp"
#include "sim/simulator.hpp"
#include "support/rng.hpp"

namespace tetra::ros2 {

class Context {
 public:
  struct Config {
    int num_cpus = 4;
    Duration rr_slice = Duration::ms(4);
    std::uint64_t seed = 0x7e74;
    DurationDistribution dds_latency =
        DurationDistribution::uniform(Duration::us(50), Duration::us(200));
    Pid first_pid = 1000;
  };

  /// Default configuration.
  Context();
  explicit Context(Config config);

  /// Creates a node and its executor thread; fires P1 (rmw_create_node).
  /// Attach tracer hooks *before* creating nodes, exactly as the paper's
  /// ROS2-INIT tracer must run before the applications start.
  Node& create_node(NodeOptions options);

  /// Hook registry: middleware reads it on every probe-site crossing, so
  /// tracers can attach/detach at any time.
  Ros2Hooks& hooks() { return hooks_; }
  void set_hooks(Ros2Hooks hooks) { hooks_ = std::move(hooks); }

  sim::Simulator& simulator() { return sim_; }
  sched::Machine& machine() { return machine_; }
  dds::Domain& domain() { return domain_; }
  Rng& rng() { return rng_; }

  const std::vector<std::unique_ptr<Node>>& nodes() const { return nodes_; }
  Node* node_by_name(const std::string& name);

  /// Advances simulation time by `duration` ("run the apps for N seconds").
  void run_for(Duration duration);

  /// Pseudo-address allocator for callback handles; randomized per run so
  /// callback ids are NOT stable across runs (as with real heap addresses).
  CallbackId allocate_id_base();

 private:
  Config config_;
  Rng rng_;
  sim::Simulator sim_;
  sched::Machine machine_;
  dds::Domain domain_;
  Ros2Hooks hooks_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

}  // namespace tetra::ros2
