// Multi-threaded ROS2 executors and callback groups.
//
// A Node owns one Executor with N worker threads on the simulated machine
// (N = 1 reproduces the paper's single-threaded deployment assumption
// byte for byte). Callbacks belong to callback groups: callbacks of one
// mutually-exclusive group never overlap in time, while distinct groups —
// and the callbacks of a reentrant group among themselves — run genuinely
// concurrently, bounded only by the worker count. Workers follow the
// ready-set polling semantics of rclcpp's MultiThreadedExecutor: each idle
// worker scans the wait set in the fixed timer/subscription/service/client
// order, skips work whose mutually-exclusive group is claimed by another
// worker, and dispatches at most one callback instance at a time.
//
// Every worker is a distinct OS thread with its own PID; each fires P1
// (rmw_create_node) under the node's name, so Algorithm 1 still sees one
// strictly sequential callback stream per PID and per-group serialization
// becomes a property the synthesis *learns* from observed overlap.
#pragma once

#include <cstdint>
#include <vector>

#include "sched/thread.hpp"
#include "support/ids.hpp"

namespace tetra::ros2 {

class Node;

/// Mirror of rclcpp's callback-group types.
enum class CallbackGroupKind : std::uint8_t {
  MutuallyExclusive,  ///< callbacks of the group are serialized
  Reentrant,          ///< callbacks may overlap, even with themselves
};

const char* to_string(CallbackGroupKind kind);

/// A set of callbacks sharing one scheduling constraint. Created through
/// Node::create_callback_group; group 0 is the node's default
/// mutually-exclusive group (rclcpp's default_callback_group).
class CallbackGroup {
 public:
  CallbackGroupKind kind() const { return kind_; }
  bool reentrant() const { return kind_ == CallbackGroupKind::Reentrant; }
  /// Ordinal within the owning node (0 = default group).
  std::size_t index() const { return index_; }
  /// Callbacks of this group currently executing; mutually-exclusive
  /// groups never exceed 1.
  int in_flight() const { return in_flight_; }

 private:
  friend class Node;
  friend class Executor;
  CallbackGroup(std::size_t index, CallbackGroupKind kind)
      : index_(index), kind_(kind) {}
  /// May a worker dispatch work of this group right now?
  bool eligible() const { return reentrant() || in_flight_ == 0; }

  std::size_t index_;
  CallbackGroupKind kind_;
  int in_flight_ = 0;
};

/// One node's executor: N worker threads polling the node's ready set.
class Executor {
 public:
  int worker_count() const { return static_cast<int>(workers_.size()); }
  sched::Thread& worker(std::size_t i) { return *workers_.at(i); }
  /// Worker 0 — the thread a single-threaded executor runs on.
  sched::Thread& primary() { return *workers_.front(); }

  /// Highest number of callbacks observed executing simultaneously (the
  /// substrate-side ground truth the synthesis's worker estimate is
  /// validated against).
  int max_in_flight() const { return max_in_flight_; }

 private:
  friend class Node;
  Executor(Node& node, int worker_count);

  /// Wakes every idle worker: new work arrived or a group was released.
  void notify();
  /// The per-worker dispatch loop (ready-set polling).
  void worker_loop(std::size_t w);

  Node* node_;
  std::vector<sched::Thread*> workers_;
  int in_flight_ = 0;
  int max_in_flight_ = 0;
};

}  // namespace tetra::ros2
