#include "ros2/executor.hpp"

#include <string>
#include <variant>

#include "ros2/context.hpp"
#include "ros2/node.hpp"
#include "sched/machine.hpp"

namespace tetra::ros2 {

const char* to_string(CallbackGroupKind kind) {
  switch (kind) {
    case CallbackGroupKind::MutuallyExclusive: return "mutually_exclusive";
    case CallbackGroupKind::Reentrant: return "reentrant";
  }
  return "?";
}

Executor::Executor(Node& node, int worker_count) : node_(&node) {
  // Worker 0 keeps the node's plain name (and therefore the PID stream a
  // single-threaded deployment had); extra workers are suffixed.
  for (int w = 0; w < worker_count; ++w) {
    sched::ThreadConfig tc;
    tc.name = w == 0 ? node.options().name
                     : node.options().name + "#w" + std::to_string(w);
    tc.priority = node.options().priority;
    tc.policy = node.options().policy;
    tc.affinity_mask = node.options().affinity_mask;
    const std::size_t index = workers_.size();
    workers_.push_back(&node.context().machine().create_thread(
        tc, [this, index] { worker_loop(index); }));
  }
}

void Executor::notify() {
  for (sched::Thread* worker : workers_) worker->wake();
}

void Executor::worker_loop(std::size_t w) {
  Node::Work work = node_->pick_work();
  if (std::holds_alternative<std::monostate>(work)) {
    workers_[w]->block([this, w] { worker_loop(w); });
    return;
  }
  ++in_flight_;
  if (in_flight_ > max_in_flight_) max_in_flight_ = in_flight_;
  node_->execute(*workers_[w], work, [this, w] {
    --in_flight_;
    worker_loop(w);
  });
}

}  // namespace tetra::ros2
