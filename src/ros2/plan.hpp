// Callback behaviour model. A Plan is a sequence of (compute demand,
// action) steps: the executor consumes the demand on the simulated CPU and
// then runs the action in the callback's own context — publishing data,
// issuing service requests, and so on. Demands are distributions sampled
// per invocation, which is how workloads reproduce measured execution-time
// profiles.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "dds/sample.hpp"
#include "support/rng.hpp"
#include "support/time.hpp"

namespace tetra::ros2 {

class Node;
class Publisher;
class Client;

/// What a callback body can do when one of its actions runs. Lives only
/// for the duration of the action call.
class ActionContext {
 public:
  ActionContext(Node& node, const dds::Sample* trigger)
      : node_(&node), trigger_(trigger) {}

  Node& node() { return *node_; }
  TimePoint now() const;
  Rng& rng();

  /// Publishes a message through a publisher of this node (fires P16).
  void publish(Publisher& pub, std::size_t bytes = 64);

  /// Issues an asynchronous service request through a client handle of
  /// this node (fires P16 on the request topic). The response later
  /// triggers the client's callback.
  void call(Client& client, std::size_t bytes = 64);

  /// The sample that triggered this callback (nullptr for timers).
  const dds::Sample* trigger() const { return trigger_; }

 private:
  Node* node_;
  const dds::Sample* trigger_;
};

using Action = std::function<void(ActionContext&)>;

struct PlanStep {
  DurationDistribution demand = DurationDistribution::constant(Duration::zero());
  Action action;  ///< may be empty (pure compute step)
};

/// Builder-style callback body: compute(...).then(...)... steps execute in
/// order, each demand before its action.
class Plan {
 public:
  Plan() = default;

  /// Appends a compute step.
  Plan& compute(DurationDistribution demand);
  /// Attaches an action after the last compute step (or adds a zero-demand
  /// step if the last step already has an action).
  Plan& then(Action action);

  /// A plan that only computes.
  static Plan just(DurationDistribution demand);
  /// Compute, then publish on `pub`.
  static Plan publish_after(DurationDistribution demand, Publisher& pub,
                            std::size_t bytes = 64);
  /// Compute, then issue a service request via `client`.
  static Plan call_after(DurationDistribution demand, Client& client,
                         std::size_t bytes = 64);

  const std::vector<PlanStep>& steps() const { return steps_; }
  bool empty() const { return steps_.empty(); }

  /// Sum of nominal step demands (useful for load budgeting in workloads).
  Duration nominal_demand() const;

 private:
  std::vector<PlanStep> steps_;
};

}  // namespace tetra::ros2
