#include "ros2/plan.hpp"

#include "ros2/context.hpp"
#include "ros2/node.hpp"

namespace tetra::ros2 {

TimePoint ActionContext::now() const {
  return node_->context().simulator().now();
}

Rng& ActionContext::rng() { return node_->rng(); }

void ActionContext::publish(Publisher& pub, std::size_t bytes) {
  pub.publish(bytes);
}

void ActionContext::call(Client& client, std::size_t bytes) {
  client.async_call(bytes);
}

Plan& Plan::compute(DurationDistribution demand) {
  steps_.push_back(PlanStep{demand, nullptr});
  return *this;
}

Plan& Plan::then(Action action) {
  if (!steps_.empty() && !steps_.back().action) {
    steps_.back().action = std::move(action);
  } else {
    steps_.push_back(
        PlanStep{DurationDistribution::constant(Duration::zero()),
                 std::move(action)});
  }
  return *this;
}

Plan Plan::just(DurationDistribution demand) {
  Plan plan;
  plan.compute(demand);
  return plan;
}

Plan Plan::publish_after(DurationDistribution demand, Publisher& pub,
                         std::size_t bytes) {
  Plan plan;
  plan.compute(demand).then(
      [&pub, bytes](ActionContext& ctx) { ctx.publish(pub, bytes); });
  return plan;
}

Plan Plan::call_after(DurationDistribution demand, Client& client,
                      std::size_t bytes) {
  Plan plan;
  plan.compute(demand).then(
      [&client, bytes](ActionContext& ctx) { ctx.call(client, bytes); });
  return plan;
}

Duration Plan::nominal_demand() const {
  Duration total = Duration::zero();
  for (const auto& step : steps_) total += step.demand.nominal();
  return total;
}

}  // namespace tetra::ros2
