// SynthesisConfig: builder-style configuration of a SynthesisSession,
// subsuming the old core::SynthesisOptions plus the merge strategy and
// parallelism knobs that used to be implicit in which ModelSynthesizer
// method a caller picked.
#pragma once

#include <string>
#include <string_view>

#include "core/model_synthesis.hpp"

namespace tetra::api {

/// How models from separately-ingested traces combine (paper §V).
enum class MergeStrategy {
  /// Option (ii), the paper's experimental choice: synthesize a DAG per
  /// logical trace, merge the DAGs (vertex/edge union, statistics merged).
  /// Re-synthesis after new ingests is incremental per dirty trace.
  MergeDags,
  /// Option (i): k-way merge every segment of every trace into one
  /// chronological stream, synthesize once. Only meaningful when segments
  /// share PIDs/callback ids (segments of one run).
  MergeTraces,
};

std::string_view to_string(MergeStrategy strategy);

class SynthesisConfig {
 public:
  SynthesisConfig() = default;

  // -- builder setters (chainable) ---------------------------------------
  SynthesisConfig& merge_strategy(MergeStrategy strategy) {
    merge_strategy_ = strategy;
    return *this;
  }
  /// Worker threads for per-trace synthesis under MergeDags. 1 = inline.
  SynthesisConfig& threads(int count) {
    threads_ = count < 1 ? 1 : count;
    return *this;
  }
  /// Mode tag assigned to segments ingested without an explicit mode.
  SynthesisConfig& default_mode(std::string mode) {
    default_mode_ = std::move(mode);
    return *this;
  }
  SynthesisConfig& split_service_per_caller(bool on) {
    core_.dag.split_service_per_caller = on;
    return *this;
  }
  SynthesisConfig& model_sync_with_and_junction(bool on) {
    core_.dag.model_sync_with_and_junction = on;
    return *this;
  }
  SynthesisConfig& mark_or_junctions(bool on) {
    core_.dag.mark_or_junctions = on;
    return *this;
  }
  SynthesisConfig& compute_waiting_times(bool on) {
    core_.extract.compute_waiting_times = on;
    return *this;
  }
  /// Incremental per-trace re-synthesis under MergeDags: each trace keeps
  /// an appendable index plus per-node dependency sets, so a model query
  /// after new segments re-extracts only the nodes those segments touched
  /// (instead of the trace's full history). Produces byte-identical models
  /// to full re-synthesis. Ignored under MergeTraces.
  SynthesisConfig& incremental(bool on) {
    incremental_ = on;
    return *this;
  }
  /// Tracer-overhead compensation (src/overhead/): estimate the per-probe
  /// cost from each trace (or take probe_cost_hint) and subtract
  /// hit-count × cost from every instance's execution time before DAG
  /// annotation. Disables incremental re-synthesis (the estimate depends
  /// on the whole trace, so appends invalidate every node).
  SynthesisConfig& compensate_overhead(bool on) {
    compensate_overhead_ = on;
    return *this;
  }
  /// Known per-probe-hit cost; zero (default) means estimate per trace.
  SynthesisConfig& probe_cost_hint(Duration per_hit) {
    probe_cost_hint_ = per_hit;
    return *this;
  }
  /// Full passthrough for callers that already hold core options.
  SynthesisConfig& core_options(const core::SynthesisOptions& options) {
    core_ = options;
    return *this;
  }

  // -- getters ------------------------------------------------------------
  MergeStrategy merge_strategy() const { return merge_strategy_; }
  int threads() const { return threads_; }
  const std::string& default_mode() const { return default_mode_; }
  bool incremental() const { return incremental_; }
  bool compensate_overhead() const { return compensate_overhead_; }
  Duration probe_cost_hint() const { return probe_cost_hint_; }
  const core::SynthesisOptions& core_options() const { return core_; }

 private:
  MergeStrategy merge_strategy_ = MergeStrategy::MergeDags;
  int threads_ = 1;
  std::string default_mode_ = "nominal";
  bool incremental_ = false;
  bool compensate_overhead_ = false;
  Duration probe_cost_hint_ = Duration::zero();
  core::SynthesisOptions core_;
};

}  // namespace tetra::api
