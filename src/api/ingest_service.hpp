// ShardedIngestService: the fleet-scale ingest loop (ROADMAP north star —
// many robots continuously uploading trace segments).
//
// Segments arrive tagged with a logical trace id (one per robot/run) and
// are routed by hash onto N worker shards. Each shard owns a private
// SynthesisSession and a bounded FIFO queue: JSONL parsing and ingestion
// happen on the shard worker (that is where the parallelism pays), segments
// of one trace id always land on the same shard (so per-trace merge order
// is arrival order, exactly like a single session), and a full queue blocks
// the producer (backpressure instead of unbounded memory).
//
// model() synthesizes every shard's dirty traces in parallel — each shard
// processes a synthesize token on its own worker — then combines the
// per-trace models over lexicographically sorted trace ids, so the result
// is independent of the shard count.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/config.hpp"
#include "api/result.hpp"
#include "api/session.hpp"
#include "telemetry/metrics.hpp"

namespace tetra::api {

struct IngestServiceConfig {
  /// Worker shards; each owns one SynthesisSession and one thread.
  std::size_t shards = 1;
  /// Max queued items per shard before submit() blocks.
  std::size_t queue_capacity = 256;
  /// Configuration of every shard session.
  SynthesisConfig session;
};

class ShardedIngestService {
 public:
  explicit ShardedIngestService(IngestServiceConfig config = {});
  ~ShardedIngestService();

  ShardedIngestService(const ShardedIngestService&) = delete;
  ShardedIngestService& operator=(const ShardedIngestService&) = delete;

  /// Routes an already-parsed segment to its trace's shard. Blocks while
  /// the shard queue is full.
  void submit(const std::string& trace_id, trace::EventVector events);

  /// Routes raw JSONL text; the shard worker parses it. This is the
  /// scalable path — parsing dominates ingest cost.
  void submit_jsonl(const std::string& trace_id, std::string jsonl);

  /// Blocks until every queued item has been ingested.
  void flush();

  /// The combined model over everything ingested so far. Implies flush();
  /// must not run concurrently with submissions. Surfaces the first
  /// latched ingest error, if any.
  Result<core::TimingModel> model();

  std::size_t shard_count() const { return shards_.size(); }
  std::size_t shard_of(const std::string& trace_id) const;
  std::uint64_t events_ingested() const { return events_ingested_.load(); }

  /// First error any shard hit (ErrorCode::None when clean).
  Error first_error() const;

 private:
  struct Item {
    std::string trace_id;
    trace::EventVector events;
    std::string jsonl;
    bool parse = false;       ///< events come from parsing `jsonl`
    bool synthesize = false;  ///< token: synthesize this shard's session
  };

  struct Shard {
    std::mutex mutex;
    std::condition_variable cv;  ///< any state change (items, space, idle)
    std::deque<Item> queue;
    bool busy = false;
    bool stop = false;
    Error error;  ///< first failure, latched
    SynthesisSession session;
    std::thread thread;
    /// "ingest.queue_depth{shard=i}" — registered at construction so every
    /// shard shows up in snapshots even when idle.
    telemetry::Gauge* depth_gauge = nullptr;
  };

  void worker(Shard& shard);
  void enqueue(std::size_t shard_index, Item item);

  IngestServiceConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> events_ingested_{0};
};

}  // namespace tetra::api
