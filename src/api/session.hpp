// SynthesisSession: the streaming synthesis API (paper §V, Fig. 2).
//
// Traces arrive as many segments across runs and modes; a session accepts
// them incrementally and serves models at any point:
//
//   api::SynthesisSession session(
//       api::SynthesisConfig().merge_strategy(api::MergeStrategy::MergeDags)
//                             .threads(4));
//   session.ingest(run1_events, {.trace_id = "run-1"});
//   session.ingest_file("run2.jsonl", {.trace_id = "run-2"});
//   auto model = session.model();            // synthesizes run-1 + run-2
//   session.ingest(more_events, {.trace_id = "run-1"});
//   model = session.model();                 // re-synthesizes ONLY run-1
//
// Segments ingested under one trace id are k-way merged into a single
// sorted event view (no concatenate+re-sort, no per-call trace copy);
// distinct trace ids are synthesized independently — in parallel on a
// small worker pool when config.threads(N) > 1 — and combined per the
// configured merge strategy. Results carry typed api::Error diagnostics
// instead of bare exceptions.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "api/config.hpp"
#include "api/result.hpp"
#include "core/incremental.hpp"
#include "core/model_synthesis.hpp"
#include "predict/model_simulator.hpp"
#include "trace/database.hpp"
#include "trace/event.hpp"

namespace tetra::api {

/// Per-ingest options. An empty trace_id opens a fresh auto-named trace
/// ("trace-<n>"): the right default under MergeDags, where each ingest is
/// typically one run. Segments of the same run/mode should share an id.
struct IngestOptions {
  std::string trace_id;
  std::string mode;  ///< operating-mode tag; "" = config.default_mode()
};

class SynthesisSession {
 public:
  SynthesisSession() = default;
  explicit SynthesisSession(SynthesisConfig config)
      : config_(std::move(config)) {}

  // -- ingestion ----------------------------------------------------------

  /// Adds one event segment. Unsorted segments are sorted on ingest (and
  /// flagged in the returned SegmentInfo); synthesis is deferred until a
  /// model query, so ingest cost is O(segment).
  Result<SegmentInfo> ingest(trace::EventVector events,
                             const IngestOptions& options = {});

  /// Reads a trace file and ingests it — .ttb traces are detected by magic
  /// and decoded from the binary columns, everything else parses as JSONL.
  /// The default trace id is the path itself.
  Result<SegmentInfo> ingest_file(const std::string& path,
                                  const IngestOptions& options = {});

  /// Ingests one stored segment of a TraceDatabase; the trace id defaults
  /// to the key's run (so all segments of a run merge) and the mode to the
  /// segment's stored tag.
  Result<SegmentInfo> ingest_database_segment(
      const trace::TraceDatabase& db, const trace::TraceKey& key,
      const IngestOptions& options = {});

  /// Ingests every segment of the database (runs become trace ids, stored
  /// mode tags are kept). Returns per-segment infos in storage order.
  Result<std::vector<SegmentInfo>> ingest_database(
      const trace::TraceDatabase& db);

  // -- queries ------------------------------------------------------------

  /// The combined model over everything ingested so far, per the merge
  /// strategy. Under MergeDags only traces dirtied since the last query
  /// are re-synthesized; node_callbacks concatenates the per-trace lists.
  Result<core::TimingModel> model();

  /// Per-mode models (§V option iv): per-trace DAGs merged into the mode
  /// each trace was tagged with.
  Result<core::MultiModeDag> multi_mode_model();

  /// The model of one logical trace (its segments k-way merged).
  Result<core::TimingModel> trace_model(const std::string& trace_id);

  /// The chronologically merged event stream of one trace (a copy).
  Result<trace::EventVector> merged_events(const std::string& trace_id) const;

  /// Replays the session's combined model (predict::ModelSimulator) and
  /// returns predicted per-chain latency distributions — what-if queries
  /// answered from cached models, with no substrate re-run. Seed, horizon
  /// and the what-if knobs come from `config`; synthesis errors pass
  /// through unchanged.
  Result<predict::PredictionResult> predict(
      const predict::PredictionConfig& config = {});

  /// Frees the stored event segments of one trace while keeping its cached
  /// model, so long-lived sessions over heavy trace volume stay bounded in
  /// memory (MergeDags only — MergeTraces needs every event for the global
  /// merge). Synthesizes the trace first if it is still dirty. The trace
  /// is sealed afterwards: further ingests into it are rejected. Returns
  /// the number of events freed.
  Result<std::size_t> release_events(const std::string& trace_id);

  // -- introspection ------------------------------------------------------

  const SynthesisConfig& config() const { return config_; }
  std::size_t segment_count() const { return segments_.size(); }
  std::size_t trace_count() const { return traces_.size(); }
  std::size_t event_count() const { return event_count_; }
  std::vector<std::string> trace_ids() const;
  /// Ingestion diagnostics for every segment, in ingestion order.
  const std::vector<SegmentInfo>& segments() const { return segments_; }

  /// Drops all ingested data and cached models; the config is kept.
  void clear();

 private:
  struct TraceState {
    std::string id;
    std::string mode;
    std::vector<trace::EventVector> segments;  ///< each time-sorted
    /// Set under config.incremental(): owns the appendable index and the
    /// per-node dependency cache; `segments` stays empty then.
    std::unique_ptr<core::IncrementalSynthesizer> inc;
    core::TimingModel model;                   ///< cache, valid when !dirty
    bool dirty = true;
    bool sealed = false;  ///< events released; model cached, no re-ingest
  };

  TraceState& trace_for(const IngestOptions& options);
  bool use_incremental() const {
    // Overhead compensation estimates the probe cost from the whole trace,
    // so appends invalidate every node — incremental caching cannot help.
    return config_.incremental() &&
           config_.merge_strategy() == MergeStrategy::MergeDags &&
           !config_.compensate_overhead();
  }
  /// Synthesizes every dirty trace (worker pool when threads > 1).
  /// Returns an error naming the first failing trace, if any.
  Error synthesize_dirty();
  /// `span_parent` anchors the "synth.trace" telemetry span under the
  /// caller's open span even on pool threads (whose RAII span stacks
  /// start empty).
  static void synthesize_trace(TraceState& trace,
                               const SynthesisConfig& config,
                               std::uint64_t span_parent);

  SynthesisConfig config_;
  std::vector<TraceState> traces_;                ///< ingestion order
  std::map<std::string, std::size_t> trace_index_;
  std::vector<SegmentInfo> segments_;
  /// Per-segment (trace index, segment index) in ingestion order — the
  /// deterministic global tie-break for the MergeTraces k-way merge.
  std::vector<std::pair<std::size_t, std::size_t>> segment_locator_;
  std::size_t event_count_ = 0;
  std::size_t auto_trace_counter_ = 0;

  /// MergeTraces caches one global model instead of per-trace models.
  core::TimingModel merged_model_;
  bool merged_dirty_ = true;
};

}  // namespace tetra::api
