#include "api/session.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>
#include <utility>

#include "core/dag_builder.hpp"
#include "core/extract.hpp"
#include "overhead/estimator.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"
#include "trace/event_view.hpp"
#include "trace/serialize.hpp"
#include "trace/ttb.hpp"

namespace tetra::api {

namespace {

Error make_error(ErrorCode code, std::string message, std::string context) {
  return Error{code, std::move(message), std::move(context)};
}

struct SessionMetrics {
  telemetry::Counter& segments = telemetry::MetricsRegistry::global().counter(
      "session.segments_ingested");
  telemetry::Counter& events = telemetry::MetricsRegistry::global().counter(
      "session.events_ingested");
  telemetry::Counter& cache_hits =
      telemetry::MetricsRegistry::global().counter("session.cache_hits");
  telemetry::Counter& dirty_rebuilds =
      telemetry::MetricsRegistry::global().counter("session.dirty_rebuilds");
  telemetry::Counter& incremental =
      telemetry::MetricsRegistry::global().counter(
          "session.incremental_synthesis");
  telemetry::Counter& full = telemetry::MetricsRegistry::global().counter(
      "session.full_synthesis");

  static SessionMetrics& get() {
    static SessionMetrics metrics;
    return metrics;
  }
};

/// Extraction options with overhead compensation resolved against one
/// trace: an explicit probe-cost hint wins, otherwise the per-hit cost is
/// estimated from the trace itself (zero for probe-free traces, which
/// makes compensation a no-op).
core::ExtractOptions compensated_extract(const SynthesisConfig& config,
                                         const core::TraceIndex& index) {
  core::ExtractOptions extract = config.core_options().extract;
  if (config.compensate_overhead() &&
      extract.compensate_per_hit == Duration::zero()) {
    extract.compensate_per_hit =
        config.probe_cost_hint() > Duration::zero()
            ? config.probe_cost_hint()
            : overhead::estimate_probe_cost(index).per_hit;
  }
  return extract;
}

}  // namespace

SynthesisSession::TraceState& SynthesisSession::trace_for(
    const IngestOptions& options) {
  std::string id = options.trace_id;
  if (id.empty()) {
    // Auto-named traces must always be fresh — skip over any explicit
    // user id that happens to look like "trace-<n>".
    do {
      id = "trace-" + std::to_string(auto_trace_counter_++);
    } while (trace_index_.count(id) > 0);
  }
  auto it = trace_index_.find(id);
  if (it == trace_index_.end()) {
    it = trace_index_.emplace(id, traces_.size()).first;
    TraceState state;
    state.id = id;
    state.mode = options.mode;
    traces_.push_back(std::move(state));
  }
  return traces_[it->second];
}

Result<SegmentInfo> SynthesisSession::ingest(trace::EventVector events,
                                             const IngestOptions& options) {
  TraceState& trace = trace_for(options);
  if (trace.sealed) {
    return make_error(ErrorCode::InvalidArgument,
                      "trace events were released; ingest under a new trace id",
                      trace.id);
  }
  if (!options.mode.empty()) {
    if (!trace.mode.empty() && trace.mode != options.mode) {
      return make_error(ErrorCode::InvalidArgument,
                        "segment mode '" + options.mode +
                            "' conflicts with the trace's mode '" +
                            trace.mode + "'",
                        trace.id);
    }
    trace.mode = options.mode;
  }

  SegmentInfo info;
  info.id = segments_.size();
  info.trace_id = trace.id;
  info.mode = trace.mode;
  info.source = "events";
  info.event_count = events.size();
  info.arrived_sorted = trace::is_time_sorted(events);
  if (!info.arrived_sorted) trace::sort_by_time(events);

  event_count_ += events.size();
  SessionMetrics::get().segments.inc();
  SessionMetrics::get().events.add(events.size());
  if (use_incremental()) {
    // Events go straight into the trace's appendable index; no per-segment
    // copy is retained.
    if (!trace.inc) {
      trace.inc = std::make_unique<core::IncrementalSynthesizer>(
          config_.core_options());
    }
    trace.inc->append(events);
  } else {
    segment_locator_.push_back(
        {trace_index_.at(trace.id), trace.segments.size()});
    trace.segments.push_back(std::move(events));
  }
  trace.dirty = true;
  merged_dirty_ = true;
  segments_.push_back(info);
  return info;
}

Result<SegmentInfo> SynthesisSession::ingest_file(const std::string& path,
                                                  const IngestOptions& options) {
  trace::EventVector events;
  try {
    events = trace::is_ttb_file(path) ? trace::TtbReader(path).materialize()
                                      : trace::read_jsonl_file(path);
  } catch (const std::exception& e) {
    return make_error(ErrorCode::Io, e.what(), path);
  }
  IngestOptions resolved = options;
  if (resolved.trace_id.empty()) resolved.trace_id = path;
  Result<SegmentInfo> result = ingest(std::move(events), resolved);
  if (result.ok()) {
    segments_.back().source = path;
    return segments_.back();
  }
  return result;
}

Result<SegmentInfo> SynthesisSession::ingest_database_segment(
    const trace::TraceDatabase& db, const trace::TraceKey& key,
    const IngestOptions& options) {
  if (!db.contains(key)) {
    return make_error(ErrorCode::InvalidArgument,
                      "database has no segment " + std::to_string(key.segment),
                      key.run);
  }
  IngestOptions resolved = options;
  if (resolved.trace_id.empty()) resolved.trace_id = key.run;
  if (resolved.mode.empty()) resolved.mode = db.mode_of(key);
  Result<SegmentInfo> result = ingest(db.get(key), resolved);
  if (result.ok()) {
    segments_.back().source =
        "db:" + key.run + "/" + std::to_string(key.segment);
    return segments_.back();
  }
  return result;
}

Result<std::vector<SegmentInfo>> SynthesisSession::ingest_database(
    const trace::TraceDatabase& db) {
  std::vector<SegmentInfo> infos;
  for (const trace::TraceKey& key : db.keys()) {
    Result<SegmentInfo> result = ingest_database_segment(db, key);
    if (!result.ok()) return result.error();
    infos.push_back(*result);
  }
  return infos;
}

void SynthesisSession::synthesize_trace(TraceState& trace,
                                        const SynthesisConfig& config,
                                        std::uint64_t span_parent) {
  const core::SynthesisOptions& options = config.core_options();
  if (trace.inc) {
    telemetry::ScopedSpan span("synth.trace", span_parent,
                               trace.inc->event_count());
    SessionMetrics::get().incremental.inc();
    trace.model = trace.inc->model();
    trace.dirty = false;
    return;
  }
  telemetry::ScopedSpan span("synth.trace", span_parent, 0);
  SessionMetrics::get().full.inc();
  // Appending the segments in ingestion order reproduces the k-way merged
  // chronological stream (the index keeps (time, arrival) order).
  core::TraceIndex index;
  {
    telemetry::ScopedSpan merge_span("synth.merge");
    for (const auto& segment : trace.segments) index.append(segment);
    merge_span.set_items(index.size());
  }
  span.set_items(index.size());
  core::TimingModel model;
  {
    telemetry::ScopedSpan extract_span("synth.extract", index.size());
    model.node_callbacks =
        core::extract_all_nodes(index, compensated_extract(config, index));
    // Multi-threaded executors yield one per-worker list each; unify them
    // per node before labels are assigned.
    core::merge_worker_lists(model.node_callbacks);
    core::normalize_labels(model.node_callbacks);
  }
  {
    telemetry::ScopedSpan build_span("synth.build",
                                     model.node_callbacks.size());
    model.dag = core::build_dag(model.node_callbacks, options.dag);
  }
  trace.model = std::move(model);
  trace.dirty = false;
}

Error SynthesisSession::synthesize_dirty() {
  std::vector<TraceState*> dirty;
  for (auto& trace : traces_) {
    if (trace.dirty) dirty.push_back(&trace);
  }
  SessionMetrics::get().cache_hits.add(traces_.size() - dirty.size());
  if (dirty.empty()) return {};
  SessionMetrics::get().dirty_rebuilds.add(dirty.size());

  const std::size_t workers =
      std::min<std::size_t>(static_cast<std::size_t>(config_.threads()),
                            dirty.size());
  std::vector<std::string> failures(dirty.size());
  const std::uint64_t span_parent = telemetry::ScopedSpan::current_id();

  if (workers <= 1) {
    for (std::size_t i = 0; i < dirty.size(); ++i) {
      try {
        synthesize_trace(*dirty[i], config_, span_parent);
      } catch (const std::exception& e) {
        failures[i] = e.what();
      }
    }
  } else {
    std::atomic<std::size_t> next{0};
    auto worker = [&] {
      for (std::size_t i = next.fetch_add(1); i < dirty.size();
           i = next.fetch_add(1)) {
        try {
          synthesize_trace(*dirty[i], config_, span_parent);
        } catch (const std::exception& e) {
          failures[i] = e.what();
        } catch (...) {
          failures[i] = "unknown synthesis failure";
        }
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(worker);
    for (auto& thread : pool) thread.join();
  }

  for (std::size_t i = 0; i < dirty.size(); ++i) {
    if (!failures[i].empty()) {
      return make_error(ErrorCode::SynthesisFailed, failures[i],
                        dirty[i]->id);
    }
  }
  return {};
}

Result<core::TimingModel> SynthesisSession::model() {
  if (segments_.empty()) {
    return make_error(ErrorCode::EmptySession,
                      "no events ingested before model()", "");
  }
  telemetry::ScopedSpan model_span("session.model", event_count_);

  if (config_.merge_strategy() == MergeStrategy::MergeTraces) {
    if (merged_dirty_) {
      SessionMetrics::get().dirty_rebuilds.inc();
      SessionMetrics::get().full.inc();
      // Global merge over every segment, in ingestion order (ties keep
      // earlier-ingested segments first — the index's (time, arrival)
      // invariant).
      try {
        telemetry::ScopedSpan trace_span("synth.trace", event_count_);
        core::TraceIndex index;
        {
          telemetry::ScopedSpan merge_span("synth.merge");
          for (const auto& [trace_idx, seg_idx] : segment_locator_) {
            index.append(traces_[trace_idx].segments[seg_idx]);
          }
          merge_span.set_items(index.size());
        }
        core::TimingModel model;
        {
          telemetry::ScopedSpan extract_span("synth.extract", index.size());
          model.node_callbacks = core::extract_all_nodes(
              index, compensated_extract(config_, index));
          core::merge_worker_lists(model.node_callbacks);
          core::normalize_labels(model.node_callbacks);
        }
        {
          telemetry::ScopedSpan build_span("synth.build",
                                           model.node_callbacks.size());
          model.dag =
              core::build_dag(model.node_callbacks, config_.core_options().dag);
        }
        merged_model_ = std::move(model);
      } catch (const std::exception& e) {
        return make_error(ErrorCode::SynthesisFailed, e.what(),
                          "merged stream");
      }
      merged_dirty_ = false;
    } else {
      SessionMetrics::get().cache_hits.inc();
    }
    return merged_model_;
  }

  if (Error error = synthesize_dirty(); error.code != ErrorCode::None) {
    return error;
  }
  if (traces_.size() == 1) return traces_[0].model;

  core::TimingModel combined;
  for (const TraceState& trace : traces_) {
    combined.dag.merge(trace.model.dag);
    combined.node_callbacks.insert(combined.node_callbacks.end(),
                                   trace.model.node_callbacks.begin(),
                                   trace.model.node_callbacks.end());
  }
  return combined;
}

Result<predict::PredictionResult> SynthesisSession::predict(
    const predict::PredictionConfig& config) {
  Result<core::TimingModel> model_result = model();
  if (!model_result.ok()) return model_result.error();
  // The replay only reads the DAG; the model (incl. its cache) stays put.
  return predict::ModelSimulator(model_result.value().dag, config).predict();
}

Result<core::MultiModeDag> SynthesisSession::multi_mode_model() {
  if (segments_.empty()) {
    return make_error(ErrorCode::EmptySession,
                      "no events ingested before multi_mode_model()", "");
  }
  if (Error error = synthesize_dirty(); error.code != ErrorCode::None) {
    return error;
  }
  core::MultiModeDag multi;
  for (const TraceState& trace : traces_) {
    const std::string& mode =
        trace.mode.empty() ? config_.default_mode() : trace.mode;
    multi.merge_into_mode(mode, trace.model.dag);
  }
  return multi;
}

Result<core::TimingModel> SynthesisSession::trace_model(
    const std::string& trace_id) {
  auto it = trace_index_.find(trace_id);
  if (it == trace_index_.end()) {
    return make_error(ErrorCode::UnknownTrace, "no such trace in session",
                      trace_id);
  }
  TraceState& trace = traces_[it->second];
  if (trace.dirty) {
    try {
      synthesize_trace(trace, config_, telemetry::ScopedSpan::current_id());
    } catch (const std::exception& e) {
      return make_error(ErrorCode::SynthesisFailed, e.what(), trace_id);
    }
  }
  return trace.model;
}

Result<trace::EventVector> SynthesisSession::merged_events(
    const std::string& trace_id) const {
  auto it = trace_index_.find(trace_id);
  if (it == trace_index_.end()) {
    return make_error(ErrorCode::UnknownTrace, "no such trace in session",
                      trace_id);
  }
  const TraceState& trace = traces_[it->second];
  if (trace.sealed) {
    return make_error(ErrorCode::InvalidArgument,
                      "trace events were released", trace_id);
  }
  if (trace.inc) return trace.inc->merged_events();
  std::vector<const trace::EventVector*> parts;
  parts.reserve(trace.segments.size());
  for (const auto& segment : trace.segments) parts.push_back(&segment);
  return trace::SortedEventView::merged(parts).to_vector();
}

Result<std::size_t> SynthesisSession::release_events(
    const std::string& trace_id) {
  if (config_.merge_strategy() == MergeStrategy::MergeTraces) {
    return make_error(ErrorCode::InvalidArgument,
                      "release_events requires the MergeDags strategy",
                      trace_id);
  }
  auto it = trace_index_.find(trace_id);
  if (it == trace_index_.end()) {
    return make_error(ErrorCode::UnknownTrace, "no such trace in session",
                      trace_id);
  }
  TraceState& trace = traces_[it->second];
  if (trace.dirty) {
    try {
      synthesize_trace(trace, config_, telemetry::ScopedSpan::current_id());
    } catch (const std::exception& e) {
      return make_error(ErrorCode::SynthesisFailed, e.what(), trace_id);
    }
  }
  std::size_t freed = 0;
  if (trace.inc) {
    freed = trace.inc->event_count();
    trace.inc.reset();
  } else {
    for (const auto& segment : trace.segments) freed += segment.size();
    trace.segments.clear();
    trace.segments.shrink_to_fit();
  }
  trace.sealed = true;
  return freed;
}

std::vector<std::string> SynthesisSession::trace_ids() const {
  std::vector<std::string> ids;
  ids.reserve(traces_.size());
  for (const auto& trace : traces_) ids.push_back(trace.id);
  return ids;
}

void SynthesisSession::clear() {
  traces_.clear();
  trace_index_.clear();
  segments_.clear();
  segment_locator_.clear();
  event_count_ = 0;
  auto_trace_counter_ = 0;
  merged_model_ = {};
  merged_dirty_ = true;
}

}  // namespace tetra::api
