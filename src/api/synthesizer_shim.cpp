// Definitions of the deprecated core::ModelSynthesizer facade, implemented
// as one-shot api::SynthesisSession uses. They live in the api layer (not
// in core/model_synthesis.cpp) so that no core source depends on api
// headers — the declaration in core/model_synthesis.hpp is all the lower
// layer knows.
#include <stdexcept>

#include "api/session.hpp"
#include "core/model_synthesis.hpp"

namespace tetra::core {

namespace {

api::SynthesisConfig shim_config(const SynthesisOptions& options,
                                 api::MergeStrategy strategy) {
  return api::SynthesisConfig().core_options(options).merge_strategy(strategy);
}

/// Preserves the facade's throwing contract over the session's Result.
template <typename T>
T unwrap(api::Result<T> result) {
  if (!result.ok()) throw std::runtime_error(result.error().to_string());
  return std::move(result).take();
}

}  // namespace

TimingModel ModelSynthesizer::synthesize(const trace::EventVector& events) const {
  api::SynthesisSession session(
      shim_config(options_, api::MergeStrategy::MergeDags));
  unwrap(session.ingest(events));
  return unwrap(session.model());
}

TimingModel ModelSynthesizer::synthesize_merged(
    const std::vector<trace::EventVector>& traces) const {
  api::SynthesisSession session(
      shim_config(options_, api::MergeStrategy::MergeTraces));
  for (const auto& trace : traces) unwrap(session.ingest(trace));
  return unwrap(session.model());
}

Dag ModelSynthesizer::synthesize_and_merge(
    const std::vector<trace::EventVector>& traces) const {
  api::SynthesisSession session(
      shim_config(options_, api::MergeStrategy::MergeDags));
  for (const auto& trace : traces) unwrap(session.ingest(trace));
  return unwrap(session.model()).dag;
}

MultiModeDag ModelSynthesizer::synthesize_multi_mode(
    const std::vector<trace::EventVector>& traces,
    const std::vector<std::string>& modes) const {
  if (traces.size() != modes.size()) {
    throw std::invalid_argument(
        "synthesize_multi_mode: traces/modes size mismatch");
  }
  api::SynthesisSession session(
      shim_config(options_, api::MergeStrategy::MergeDags));
  for (std::size_t i = 0; i < traces.size(); ++i) {
    unwrap(session.ingest(traces[i], {.trace_id = "", .mode = modes[i]}));
  }
  return unwrap(session.multi_mode_model());
}

}  // namespace tetra::core
