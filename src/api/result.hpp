// Structured error/result types of the session API. Session operations
// return api::Result<T> instead of throwing: callers branch on ok(),
// inspect a typed Error with context (which segment, which trace, which
// file), and per-segment ingestion diagnostics accumulate on the session.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>

namespace tetra::api {

enum class ErrorCode {
  None,             ///< no error (default-constructed)
  InvalidArgument,  ///< caller passed inconsistent inputs
  Io,               ///< file could not be read/parsed
  EmptySession,     ///< model queried before any event was ingested
  UnknownTrace,     ///< trace id not present in the session
  SynthesisFailed,  ///< extraction/DAG synthesis raised internally
};

inline std::string_view to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::None: return "none";
    case ErrorCode::InvalidArgument: return "invalid_argument";
    case ErrorCode::Io: return "io";
    case ErrorCode::EmptySession: return "empty_session";
    case ErrorCode::UnknownTrace: return "unknown_trace";
    case ErrorCode::SynthesisFailed: return "synthesis_failed";
  }
  return "unknown";
}

struct Error {
  ErrorCode code = ErrorCode::None;
  std::string message;
  /// What the error pertains to: a trace id, a segment id, a file path.
  std::string context;

  /// "code: message (context)" for logs and CLI output.
  std::string to_string() const {
    std::string out{api::to_string(code)};
    out += ": " + message;
    if (!context.empty()) out += " (" + context + ")";
    return out;
  }
};

/// One ingested segment, as recorded by the session (ingestion order).
struct SegmentInfo {
  std::size_t id = 0;            ///< session-wide ingestion index
  std::string trace_id;          ///< logical trace the segment belongs to
  std::string mode;              ///< operating-mode tag ("" = default)
  std::string source;            ///< provenance: file path, "events", ...
  std::size_t event_count = 0;
  bool arrived_sorted = true;    ///< false: the segment needed sorting
};

/// Value-or-Error. Accessing value() on an error result throws
/// std::logic_error — the API contract is to branch on ok() first.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)), has_value_(true) {}  // NOLINT
  Result(Error error) : error_(std::move(error)) {}                // NOLINT

  bool ok() const { return has_value_; }
  explicit operator bool() const { return has_value_; }

  const T& value() const& {
    ensure_ok();
    return value_;
  }
  T& value() & {
    ensure_ok();
    return value_;
  }
  T&& take() && {
    ensure_ok();
    return std::move(value_);
  }
  const T& operator*() const& { return value(); }
  const T* operator->() const { return &value(); }

  /// The error; ErrorCode::None on success results.
  const Error& error() const { return error_; }

  /// value() on success, `fallback` on error (no throw).
  T value_or(T fallback) const& { return has_value_ ? value_ : fallback; }

 private:
  void ensure_ok() const {
    if (!has_value_) {
      throw std::logic_error("api::Result accessed on error: " +
                             error_.to_string());
    }
  }

  T value_{};
  Error error_;
  bool has_value_ = false;
};

}  // namespace tetra::api
