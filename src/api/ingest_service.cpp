#include "api/ingest_service.hpp"

#include <algorithm>
#include <exception>
#include <utility>

#include "telemetry/span.hpp"
#include "trace/serialize.hpp"

namespace tetra::api {

namespace {

struct IngestMetrics {
  telemetry::Counter& routed = telemetry::MetricsRegistry::global().counter(
      "ingest.segments_routed");
  telemetry::Counter& processed = telemetry::MetricsRegistry::global().counter(
      "ingest.segments_processed");
  telemetry::Counter& events = telemetry::MetricsRegistry::global().counter(
      "ingest.events_ingested");
  telemetry::Counter& stalls = telemetry::MetricsRegistry::global().counter(
      "ingest.backpressure_stalls");
  /// Time submit() spent blocked on a full shard queue; observed only on
  /// actual stalls so uncontended runs stay deterministic.
  telemetry::Histogram& block_ns =
      telemetry::MetricsRegistry::global().histogram(
          "ingest.enqueue_block_ns",
          {1'000, 10'000, 100'000, 1'000'000, 10'000'000, 100'000'000});

  static IngestMetrics& get() {
    static IngestMetrics metrics;
    return metrics;
  }
};

}  // namespace

ShardedIngestService::ShardedIngestService(IngestServiceConfig config)
    : config_(std::move(config)) {
  if (config_.shards == 0) config_.shards = 1;
  if (config_.queue_capacity == 0) config_.queue_capacity = 1;
  shards_.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->session = SynthesisSession(config_.session);
    shard->depth_gauge = &telemetry::MetricsRegistry::global().gauge(
        "ingest.queue_depth", {{"shard", std::to_string(i)}});
    shard->depth_gauge->set(0);
    shards_.push_back(std::move(shard));
  }
  for (auto& shard : shards_) {
    shard->thread = std::thread([this, raw = shard.get()] { worker(*raw); });
  }
}

ShardedIngestService::~ShardedIngestService() {
  for (auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    shard->stop = true;
    shard->cv.notify_all();
  }
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
  }
}

std::size_t ShardedIngestService::shard_of(const std::string& trace_id) const {
  // FNV-1a 64: stable across runs and platforms, good spread for the
  // short robot/run identifiers trace ids tend to be.
  std::uint64_t hash = 1469598103934665603ull;
  for (const char c : trace_id) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return static_cast<std::size_t>(hash % shards_.size());
}

void ShardedIngestService::submit(const std::string& trace_id,
                                  trace::EventVector events) {
  Item item;
  item.trace_id = trace_id;
  item.events = std::move(events);
  enqueue(shard_of(trace_id), std::move(item));
}

void ShardedIngestService::submit_jsonl(const std::string& trace_id,
                                        std::string jsonl) {
  Item item;
  item.trace_id = trace_id;
  item.jsonl = std::move(jsonl);
  item.parse = true;
  enqueue(shard_of(trace_id), std::move(item));
}

void ShardedIngestService::enqueue(std::size_t shard_index, Item item) {
  Shard& shard = *shards_[shard_index];
  std::unique_lock lock(shard.mutex);
  const auto has_space = [&] {
    return shard.queue.size() < config_.queue_capacity;
  };
  if (!has_space()) {
    IngestMetrics::get().stalls.inc();
    const std::int64_t blocked_at = telemetry::clock_now();
    shard.cv.wait(lock, has_space);
    IngestMetrics::get().block_ns.observe(telemetry::clock_now() - blocked_at);
  }
  if (!item.synthesize) IngestMetrics::get().routed.inc();
  shard.queue.push_back(std::move(item));
  shard.depth_gauge->set(static_cast<std::int64_t>(shard.queue.size()));
  shard.cv.notify_all();
}

void ShardedIngestService::flush() {
  for (auto& shard : shards_) {
    std::unique_lock lock(shard->mutex);
    shard->cv.wait(lock, [&] { return shard->queue.empty() && !shard->busy; });
  }
}

void ShardedIngestService::worker(Shard& shard) {
  std::unique_lock lock(shard.mutex);
  for (;;) {
    shard.cv.wait(lock, [&] { return shard.stop || !shard.queue.empty(); });
    if (shard.queue.empty()) return;  // stop requested, queue drained
    Item item = std::move(shard.queue.front());
    shard.queue.pop_front();
    shard.depth_gauge->set(static_cast<std::int64_t>(shard.queue.size()));
    shard.busy = true;
    shard.cv.notify_all();  // a slot freed up
    lock.unlock();

    Error error;
    std::size_t ingested = 0;
    try {
      if (item.synthesize) {
        Result<core::TimingModel> result = shard.session.model();
        // An idle shard legitimately has nothing to synthesize.
        if (!result.ok() && result.error().code != ErrorCode::EmptySession) {
          error = result.error();
        }
      } else {
        trace::EventVector events = item.parse
                                        ? trace::events_from_jsonl(item.jsonl)
                                        : std::move(item.events);
        ingested = events.size();
        IngestOptions options;
        options.trace_id = item.trace_id;
        Result<SegmentInfo> result =
            shard.session.ingest(std::move(events), options);
        if (!result.ok()) error = result.error();
      }
    } catch (const std::exception& e) {
      error = Error{ErrorCode::Io, e.what(), item.trace_id};
    }
    if (!item.synthesize) {
      IngestMetrics::get().processed.inc();
      IngestMetrics::get().events.add(ingested);
    }
    if (ingested > 0) events_ingested_.fetch_add(ingested);

    lock.lock();
    if (error.code != ErrorCode::None &&
        shard.error.code == ErrorCode::None) {
      shard.error = error;
    }
    shard.busy = false;
    shard.cv.notify_all();
  }
}

Error ShardedIngestService::first_error() const {
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    if (shard->error.code != ErrorCode::None) return shard->error;
  }
  return {};
}

Result<core::TimingModel> ShardedIngestService::model() {
  flush();
  if (Error error = first_error(); error.code != ErrorCode::None) {
    return error;
  }
  // Synthesize all shards in parallel: each worker runs its session's
  // model() (which only re-synthesizes dirty traces), …
  for (auto& shard : shards_) {
    Item token;
    token.synthesize = true;
    std::lock_guard lock(shard->mutex);
    shard->queue.push_back(std::move(token));
    shard->depth_gauge->set(static_cast<std::int64_t>(shard->queue.size()));
    shard->cv.notify_all();
  }
  flush();
  if (Error error = first_error(); error.code != ErrorCode::None) {
    return error;
  }

  // … then combine the cached per-trace models in lexicographic trace-id
  // order, which no shard count can perturb.
  std::vector<std::pair<std::string, SynthesisSession*>> traces;
  for (auto& shard : shards_) {
    for (const std::string& id : shard->session.trace_ids()) {
      traces.emplace_back(id, &shard->session);
    }
  }
  if (traces.empty()) {
    return Error{ErrorCode::EmptySession,
                 "no events ingested before model()", ""};
  }
  std::sort(traces.begin(), traces.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  core::TimingModel combined;
  for (auto& [id, session] : traces) {
    Result<core::TimingModel> result = session->trace_model(id);
    if (!result.ok()) return result.error();
    combined.dag.merge(result.value().dag);
    combined.node_callbacks.insert(combined.node_callbacks.end(),
                                   result.value().node_callbacks.begin(),
                                   result.value().node_callbacks.end());
  }
  return combined;
}

}  // namespace tetra::api
