#include "api/config.hpp"

namespace tetra::api {

std::string_view to_string(MergeStrategy strategy) {
  switch (strategy) {
    case MergeStrategy::MergeDags: return "merge-dags";
    case MergeStrategy::MergeTraces: return "merge-traces";
  }
  return "unknown";
}

}  // namespace tetra::api
