// End-to-end latency and waiting-time analysis (paper §VII future work,
// implemented here): traverse source timestamps through the AVP chain to
// measure per-frame raw-scan -> pose latencies, measure per-callback
// waiting times from sched_wakeup, and compare against the simplified
// chain response-time estimate computed from the synthesized model.
//
//   $ ./latency_analysis
#include <cstdio>

#include "analysis/chains.hpp"
#include "analysis/latency.hpp"
#include "analysis/response_time.hpp"
#include "api/session.hpp"
#include "ebpf/tracers.hpp"
#include "trace/merge.hpp"
#include "workloads/avp_localization.hpp"

int main() {
  using namespace tetra;
  ros2::Context::Config config;
  config.num_cpus = 4;
  ros2::Context ctx(config);
  ebpf::TracerSuite suite(ctx);
  suite.start_init();
  workloads::AvpOptions options;
  options.run_duration = Duration::sec(40);
  const auto app = workloads::build_avp_localization(ctx, options);
  auto init_trace = suite.stop_init();
  suite.start_runtime();
  ctx.run_for(Duration::sec(40));
  auto events = trace::merge_sorted({init_trace, suite.stop_runtime()});

  // Measured end-to-end latency through source timestamps.
  analysis::InstanceTimeline timeline(events);
  const auto latency =
      analysis::measure_chain_latency(timeline, app.chain_topics);
  std::printf("-- measured front-scan -> pose latency --\n");
  std::printf("  frames: %zu complete, %zu ended at the sync point\n",
              latency.complete, latency.incomplete);
  std::printf("  min / mean / max: %.1f / %.1f / %.1f ms\n",
              latency.min().to_ms(), latency.mean().to_ms(),
              latency.max().to_ms());
  std::printf("  p50 / p95 / p99: %.1f / %.1f / %.1f ms\n",
              latency.latencies.quantile(0.50) / 1e6,
              latency.latencies.quantile(0.95) / 1e6,
              latency.latencies.quantile(0.99) / 1e6);

  // Waiting times from the sched_wakeup extension.
  std::printf("\n-- per-callback waiting time (wakeup -> dispatch) --\n");
  api::SynthesisSession session;
  session.ingest(events);
  const auto model = session.model().value();
  const auto waits = analysis::measure_waiting_times(events);
  for (const auto& list : model.node_callbacks) {
    for (const auto& record : list.records) {
      auto it = waits.find(record.id);
      if (it == waits.end() || it->second.empty()) continue;
      std::printf("  %-40s mean %.3f ms, p95 %.3f ms (%zu samples)\n",
                  record.label.c_str(), it->second.mean() / 1e6,
                  it->second.quantile(0.95) / 1e6, it->second.count());
    }
  }

  // Model-based estimate for comparison (a *pessimistic* estimate built
  // from measured WCETs; the measured mean must come in well below it).
  std::printf("\n-- simplified chain response-time estimates --\n");
  analysis::ResponseTimeOptions rt_options;
  const auto estimated = analysis::estimate_all_chains(model.dag, rt_options);
  if (estimated.truncated) {
    std::printf("  (chain enumeration truncated; report incomplete)\n");
  }
  for (const auto& estimate : estimated.estimates) {
    std::printf("  %s\n    exec %.1f + blocking %.1f + queueing %.1f + "
                "transport %.1f = %.1f ms\n",
                analysis::to_string(estimate.chain).c_str(),
                estimate.execution.to_ms(), estimate.blocking.to_ms(),
                estimate.queueing.to_ms(), estimate.transport.to_ms(),
                estimate.total().to_ms());
  }
  return 0;
}
