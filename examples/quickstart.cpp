// Quickstart: build a tiny two-node ROS2 application, trace it with the
// three eBPF tracers, synthesize its timing model, and print the DAG.
//
//   $ ./quickstart
//
// This is the smallest end-to-end tour of the public API:
//   ros2::Context            - the simulated system under trace
//   ebpf::TracerSuite        - ROS2-INIT + ROS2-RT + Kernel tracers
//   api::SynthesisSession    - streaming ingest + Alg. 1 + Alg. 2 + DAG
#include <cstdio>

#include "api/session.hpp"
#include "core/export.hpp"
#include "ebpf/tracers.hpp"

int main() {
  using namespace tetra;

  // 1. A simulated machine with 2 CPUs hosting the ROS2 stack.
  ros2::Context ctx;

  // 2. Attach the tracers BEFORE creating nodes: the ROS2-INIT tracer
  //    must observe rmw_create_node (probe P1) to learn node PIDs.
  ebpf::TracerSuite suite(ctx);
  suite.start_init();

  // 3. The application: a 50 ms camera timer publishing /image, and a
  //    detector subscribing to it.
  ros2::Node& camera = ctx.create_node({.name = "camera"});
  ros2::Publisher& image = camera.create_publisher("/image");
  camera.create_timer(
      Duration::ms(50),
      ros2::Plan::publish_after(
          DurationDistribution::constant(Duration::ms(4)), image));

  ros2::Node& detector = ctx.create_node({.name = "detector"});
  detector.create_subscription(
      "/image", ros2::Plan::just(DurationDistribution::normal(
                    Duration::ms(12), Duration::ms(2), Duration::ms(8),
                    Duration::ms(18))));

  // 4. Initialization done; switch to the runtime tracers and run 10 s.
  trace::EventVector init_trace = suite.stop_init();
  suite.start_runtime();
  ctx.run_for(Duration::sec(10));
  trace::EventVector runtime_trace = suite.stop_runtime();

  // 5. Stream both tracer outputs into a synthesis session — segments of
  //    one logical trace, merged and synthesized on query.
  api::SynthesisSession session;
  session.ingest(std::move(init_trace), {.trace_id = "demo", .mode = ""});
  session.ingest(std::move(runtime_trace), {.trace_id = "demo", .mode = ""});
  const core::TimingModel model = session.model().value();

  // 6. Inspect the result.
  std::printf("Synthesized model: %zu vertices, %zu edges\n\n",
              model.dag.vertex_count(), model.dag.edge_count());
  std::printf("%s\n", core::to_exec_time_table(model.dag).c_str());
  for (const auto& vertex : model.dag.vertices()) {
    if (vertex.period.has_value()) {
      std::printf("%s runs every ~%.1f ms\n", vertex.key.c_str(),
                  vertex.period->to_ms());
    }
  }
  std::printf("\nGraphviz:\n%s", core::to_dot(model.dag).c_str());
  return 0;
}
