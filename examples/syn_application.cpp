// The SYN synthetic application (paper Fig. 3a) end to end: trace one run,
// synthesize the model, print the DAG with the duplicated service vertex
// and the AND junction, and validate measured-vs-designed execution times
// (SYN uses constant loads, so they must match exactly).
//
//   $ ./syn_application
#include <cstdio>

#include "api/session.hpp"
#include "core/export.hpp"
#include "ebpf/tracers.hpp"
#include "trace/merge.hpp"
#include "workloads/syn_app.hpp"

int main() {
  using namespace tetra;
  ros2::Context ctx;
  ebpf::TracerSuite suite(ctx);
  suite.start_init();
  const auto app = workloads::build_syn_app(ctx);
  auto init_trace = suite.stop_init();
  suite.start_runtime();
  ctx.run_for(Duration::sec(30));
  auto events = trace::merge_sorted({init_trace, suite.stop_runtime()});
  std::printf("collected %zu trace events\n", events.size());

  api::SynthesisSession session;
  session.ingest(std::move(events));
  const auto model = session.model().value();

  std::printf("\n-- SYN timing model: %zu vertices, %zu edges --\n",
              model.dag.vertex_count(), model.dag.edge_count());
  for (const auto& edge : model.dag.edges()) {
    std::printf("  %-34s -> %-34s [%s]\n", edge.from.c_str(), edge.to.c_str(),
                edge.topic.c_str());
  }

  std::printf("\n-- paper name -> synthesized vertex --\n");
  for (const auto& [paper_name, label] : app.label_of) {
    std::printf("  %-6s %s\n", paper_name.c_str(), label.c_str());
  }

  std::printf("\n-- measured vs designed (constant loads) --\n");
  const std::map<std::string, double> designed = {
      {"T1", 2.0},  {"T2", 3.0},  {"T3", 2.5},  {"SC1", 4.0},
      {"SC4", 3.0}, {"SC5", 2.0}, {"SV1", 3.0}, {"SV2", 2.5},
      {"CL1", 1.5}, {"CL2", 2.0}, {"CL3", 1.0}, {"CL4", 1.2}};
  for (const auto& [name, designed_ms] : designed) {
    const auto* record = model.find_callback(app.label_of.at(name));
    if (record == nullptr) continue;
    std::printf("  %-5s designed %.2f ms, measured mACET %.3f ms over %zu "
                "instances\n",
                name.c_str(), designed_ms, record->stats.macet().to_ms(),
                record->instances());
  }
  return 0;
}
