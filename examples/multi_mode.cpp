// Multi-mode model synthesis (paper §V option iv): traces collected per
// operating scenario — here "parking" (AVP active) versus "idle" (SYN
// only) — are merged per mode, yielding a multi-mode DAG that records
// which callbacks exist in which mode. The whole database streams into
// one api::SynthesisSession, which keeps the stored mode tags.
//
//   $ ./multi_mode
#include <cstdio>

#include "api/session.hpp"
#include "ebpf/tracers.hpp"
#include "trace/database.hpp"
#include "trace/merge.hpp"
#include "workloads/avp_localization.hpp"
#include "workloads/syn_app.hpp"

namespace {

tetra::trace::EventVector trace_one_run(bool with_avp, std::uint64_t seed) {
  using namespace tetra;
  ros2::Context::Config config;
  config.seed = seed;
  ros2::Context ctx(config);
  ebpf::TracerSuite suite(ctx);
  suite.start_init();
  workloads::AvpApp avp;
  if (with_avp) {
    workloads::AvpOptions options;
    options.run_duration = Duration::sec(8);
    avp = workloads::build_avp_localization(ctx, options);
  }
  workloads::build_syn_app(ctx);
  auto init_trace = suite.stop_init();
  suite.start_runtime();
  ctx.run_for(Duration::sec(8));
  return trace::merge_sorted({init_trace, suite.stop_runtime()});
}

}  // namespace

int main() {
  using namespace tetra;

  // Collect two runs per mode into a trace database, as the deployment
  // workflow of Fig. 2 suggests.
  trace::TraceDatabase db;
  db.store({"parking-1", 0}, trace_one_run(true, 101), "parking");
  db.store({"parking-2", 0}, trace_one_run(true, 102), "parking");
  db.store({"idle-1", 0}, trace_one_run(false, 201), "idle");
  db.store({"idle-2", 0}, trace_one_run(false, 202), "idle");
  std::printf("trace database: %zu segments, %.2f MB\n", db.segment_count(),
              static_cast<double>(db.footprint_bytes()) / 1e6);

  // Every stored segment streams into the session: runs become logical
  // traces, mode tags carry over, per-run synthesis shares two workers.
  api::SynthesisSession session(api::SynthesisConfig().threads(2));
  if (const auto ingested = session.ingest_database(db); !ingested.ok()) {
    std::fprintf(stderr, "ingest failed: %s\n",
                 ingested.error().to_string().c_str());
    return 1;
  }
  const api::Result<core::MultiModeDag> result = session.multi_mode_model();
  if (!result.ok()) {
    std::fprintf(stderr, "synthesis failed: %s\n",
                 result.error().to_string().c_str());
    return 1;
  }
  const core::MultiModeDag& multi = *result;

  for (const auto& mode : multi.modes()) {
    const auto* dag = multi.mode_dag(mode);
    std::printf("\nmode '%s': %zu vertices, %zu edges\n", mode.c_str(),
                dag->vertex_count(), dag->edge_count());
  }
  const auto combined = multi.combined();
  std::printf("\ncombined multi-mode model: %zu vertices\n",
              combined.vertex_count());
  std::printf("\nvertices by mode membership:\n");
  for (const auto& vertex : combined.vertices()) {
    const auto modes = multi.modes_of_vertex(vertex.key);
    std::string mode_list;
    for (const auto& mode : modes) {
      if (!mode_list.empty()) mode_list += ",";
      mode_list += mode;
    }
    std::printf("  %-44s [%s]\n", vertex.key.c_str(), mode_list.c_str());
  }
  return 0;
}
