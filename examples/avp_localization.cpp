// The paper's headline case study as an example: trace the Autoware AVP
// LIDAR-localization pipeline over several runs, merge the per-run DAGs,
// and print the timing model, the per-core load analysis, and a suggested
// core binding (the §VI "balancing load across processor cores" use case).
//
//   $ ./avp_localization [runs]
#include <cstdio>
#include <cstdlib>

#include "analysis/chains.hpp"
#include "analysis/load.hpp"
#include "core/export.hpp"
#include "workloads/experiment.hpp"

int main(int argc, char** argv) {
  using namespace tetra;
  const int runs = argc > 1 ? std::atoi(argv[1]) : 10;

  workloads::CaseStudyConfig config;
  config.runs = runs;
  config.run_duration = Duration::sec(20);
  config.with_syn = false;  // AVP alone in this example
  config.threads = 2;       // session worker pool for per-run synthesis
  std::printf("Tracing AVP localization: %d runs x %.0fs...\n", config.runs,
              config.run_duration.to_sec());
  const auto result = workloads::run_case_study(config);

  std::printf("\n-- Timing model (merged over %d runs) --\n", runs);
  std::printf("%s\n", core::to_exec_time_table(result.merged_dag).c_str());

  std::printf("-- Computation chains --\n");
  for (const auto& chain :
       analysis::enumerate_chains(result.merged_dag).chains) {
    std::printf("  %s\n    sum(mWCET)=%.1fms sum(mACET)=%.1fms\n",
                analysis::to_string(chain).c_str(),
                analysis::chain_wcet(result.merged_dag, chain).to_ms(),
                analysis::chain_acet(result.merged_dag, chain).to_ms());
  }

  std::printf("\n-- Processor load (measured) --\n");
  for (const auto& load :
       analysis::per_callback_load(result.merged_dag, result.observed_span)) {
    std::printf("  %-38s %5.1f Hz x %6.2f ms = %5.1f%%\n", load.key.c_str(),
                load.rate_hz, load.macet.to_ms(), load.utilization * 100.0);
  }

  const auto node_loads =
      analysis::per_node_load(result.merged_dag, result.observed_span);
  const auto binding = analysis::balance_node_loads(node_loads, 4);
  std::printf("\n-- Suggested binding of nodes to 4 cores (LPT) --\n");
  for (const auto& [node, core] : binding.node_to_core) {
    std::printf("  core %d <- %-32s (%.1f%%)\n", core, node.c_str(),
                node_loads.at(node) * 100.0);
  }
  std::printf("  max core load: %.1f%%\n", binding.makespan * 100.0);
  return 0;
}
