// Service modeling demo (paper §VI point iv): a motion-planning service
// called by two different clients. With the paper's per-caller service
// splitting the two computation chains stay disjoint; with the naive
// single-vertex model a spurious chain appears that crosses from one
// caller's request to the other caller's response.
//
//   $ ./service_modeling
#include <cstdio>

#include "analysis/chains.hpp"
#include "api/session.hpp"
#include "ebpf/tracers.hpp"
#include "trace/merge.hpp"

int main() {
  using namespace tetra;
  ros2::Context ctx;
  ebpf::TracerSuite suite(ctx);
  suite.start_init();

  // A planner service invoked by both the behavior module (every 100 ms)
  // and the teleop module (every 170 ms).
  ros2::Node& planner = ctx.create_node({.name = "planner"});
  planner.create_service(
      "/plan", ros2::Plan::just(DurationDistribution::constant(Duration::ms(6))));

  ros2::Node& behavior = ctx.create_node({.name = "behavior"});
  ros2::Client& behavior_client = behavior.create_client(
      "/plan", ros2::Plan::just(DurationDistribution::constant(Duration::ms(2))));
  behavior.create_timer(Duration::ms(100),
                        ros2::Plan::call_after(
                            DurationDistribution::constant(Duration::ms(3)),
                            behavior_client));

  ros2::Node& teleop = ctx.create_node({.name = "teleop"});
  ros2::Client& teleop_client = teleop.create_client(
      "/plan", ros2::Plan::just(DurationDistribution::constant(Duration::ms(1))));
  teleop.create_timer(Duration::ms(170),
                      ros2::Plan::call_after(
                          DurationDistribution::constant(Duration::ms(2)),
                          teleop_client));

  auto init_trace = suite.stop_init();
  suite.start_runtime();
  ctx.run_for(Duration::sec(20));
  auto events = trace::merge_sorted({init_trace, suite.stop_runtime()});

  auto print_model = [](const char* title, const core::Dag& dag) {
    std::printf("\n== %s ==\n", title);
    std::printf("vertices: %zu, edges: %zu\n", dag.vertex_count(),
                dag.edge_count());
    for (const auto& chain : analysis::enumerate_chains(dag).chains) {
      std::printf("  chain: %s\n", analysis::to_string(chain).c_str());
    }
  };

  auto synthesize_with = [&events](api::SynthesisConfig config) {
    api::SynthesisSession session(std::move(config));
    session.ingest(events);
    return session.model().value().dag;
  };

  print_model("per-caller service vertices (paper's proposal)",
              synthesize_with(api::SynthesisConfig()));  // the paper's default
  print_model("single service vertex (naive — note the spurious chains)",
              synthesize_with(
                  api::SynthesisConfig().split_service_per_caller(false)));

  std::printf(
      "\nWith one /plan vertex, behavior's request appears to reach teleop's\n"
      "response callback (and vice versa): 4 chains instead of the real 2.\n");
  return 0;
}
