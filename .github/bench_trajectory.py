#!/usr/bin/env python3
"""Render the perf-trajectory diff between two bench-JSON snapshots.

Usage: bench_trajectory.py PREV_DIR CURRENT_DIR

Reads the BENCH_*.json snapshots (synthesis, predict, ingest, overhead,
telemetry) from both directories and
prints a GitHub-flavored-markdown table of metric deltas (previous run ->
this run), followed by a per-stage time breakdown aggregated from each
snapshot's embedded telemetry span records (docs/TELEMETRY.md). Missing
files degrade gracefully: the table only covers what
both snapshots have. Informational only — the caller must not gate on it.
"""
import json
import os
import sys

BENCHES = ("BENCH_synthesis.json", "BENCH_predict.json", "BENCH_ingest.json",
           "BENCH_overhead.json", "BENCH_telemetry.json",
           "BENCH_sentinel.json")
# Keys that describe the configuration, not performance. "telemetry" is the
# embedded snapshot — rendered separately as the stage breakdown, not
# diffed metric by metric.
SKIP = {"bench", "seed", "traces", "threads", "hardware_threads", "what_ifs",
        "duration_s", "horizon_s", "robots", "shards", "runs", "profile",
        "segments", "span_ms",
        "telemetry", "tolerance_pct"}
# Leaf names that label a sweep point rather than measure it.
SKIP_LEAVES = {"body_us", "k", "n"}


def flatten(prefix, value, out):
    if isinstance(value, dict):
        for key, child in value.items():
            flatten(f"{prefix}.{key}" if prefix else key, child, out)
    elif isinstance(value, list):
        # Sweep arrays (e.g. the overhead matrix): label entries by their
        # own key field when they carry one, else by position.
        for i, child in enumerate(value):
            label = str(i)
            if isinstance(child, dict):
                for key_field in ("body_us", "k"):
                    if key_field in child:
                        label = f"{key_field}={child[key_field]:g}"
                        break
            flatten(f"{prefix}[{label}]", child, out)
    elif isinstance(value, (int, float)):
        out[prefix] = float(value)


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, ValueError):
        return None
    out = {}
    flatten("", data, out)
    return {k: v for k, v in out.items()
            if k.split(".")[0] not in SKIP
            and k.rsplit(".", 1)[-1] not in SKIP_LEAVES}


def stage_breakdown(path):
    """Aggregates the embedded telemetry spans by name: (count, wall_ms,
    items) per stage, sorted by total wall time descending."""
    try:
        with open(path, encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, ValueError):
        return None
    spans = data.get("telemetry", {}).get("spans")
    if not spans:
        return None
    stages = {}
    for span in spans:
        name = span.get("name", "?")
        count, wall_ns, items = stages.get(name, (0, 0, 0))
        stages[name] = (count + 1, wall_ns + span.get("wall_ns", 0),
                        items + span.get("items", 0))
    return sorted(stages.items(), key=lambda kv: -kv[1][1])


def print_stage_breakdowns(cur_dir):
    any_stages = False
    for bench in BENCHES:
        stages = stage_breakdown(os.path.join(cur_dir, bench))
        if not stages:
            continue
        if not any_stages:
            print("## Per-stage telemetry breakdown (this run)\n")
            any_stages = True
        print(f"### {bench}\n")
        print("| stage | count | wall (ms) | items |")
        print("|---|---:|---:|---:|")
        for name, (count, wall_ns, items) in stages:
            print(f"| {name} | {count} | {wall_ns / 1e6:.3f} | {items} |")
        print()


def main():
    if len(sys.argv) != 3:
        print("usage: bench_trajectory.py PREV_DIR CURRENT_DIR",
              file=sys.stderr)
        return 1
    prev_dir, cur_dir = sys.argv[1], sys.argv[2]

    print("## Perf trajectory (previous run → this run)\n")
    any_rows = False
    for bench in BENCHES:
        prev = load(os.path.join(prev_dir, bench))
        cur = load(os.path.join(cur_dir, bench))
        if cur is None:
            print(f"_{bench}: missing from this run._\n")
            continue
        print(f"### {bench}\n")
        if prev is None:
            print("_No previous artifact found (first run?); "
                  "current values only._\n")
        print("| metric | previous | current | delta |")
        print("|---|---:|---:|---:|")
        for key in sorted(cur):
            cur_value = cur[key]
            prev_value = prev.get(key) if prev else None
            if prev_value is None:
                print(f"| {key} | — | {cur_value:.6g} | — |")
            elif prev_value == 0:
                print(f"| {key} | 0 | {cur_value:.6g} | — |")
            else:
                delta = 100.0 * (cur_value - prev_value) / abs(prev_value)
                print(f"| {key} | {prev_value:.6g} | {cur_value:.6g} "
                      f"| {delta:+.1f}% |")
            any_rows = True
        print()
    if not any_rows:
        print("_No bench data available._")
    print_stage_breakdowns(cur_dir)
    return 0


if __name__ == "__main__":
    sys.exit(main())
