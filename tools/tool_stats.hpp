// Shared --stats / --stats-out handling for the CLI tools: every tool
// parses the two flags into a StatsOptions and calls emit_stats() once
// the run is done (docs/TELEMETRY.md).
#pragma once

#include <cstdio>
#include <string>

#include "telemetry/snapshot.hpp"

namespace tetra::tools {

struct StatsOptions {
  bool summary = false;  ///< --stats: human table to stderr
  std::string out_path;  ///< --stats-out FILE: JSON snapshot
};

/// Writes the requested telemetry outputs. Returns a process exit code:
/// 0 on success, 1 when the snapshot file cannot be written.
inline int emit_stats(const StatsOptions& options) {
  if (!options.out_path.empty()) {
    std::string error;
    if (!telemetry::write_snapshot_file(options.out_path, &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote telemetry snapshot to %s\n",
                 options.out_path.c_str());
  }
  if (options.summary) telemetry::write_summary(stderr);
  return 0;
}

}  // namespace tetra::tools
