// tetra_record_demo — records demo traces to JSONL files for use with
// tetra_synth. Runs the SYN application, the AVP localization pipeline,
// or both, under the three tracers, and writes one trace file per run.
//
//   tetra_record_demo [--workload syn|avp|both] [--runs N]
//                     [--duration SECONDS] [--seed S] [--out PREFIX]
//
// Output: PREFIX-<run>.jsonl (default: trace-0.jsonl, trace-1.jsonl, ...).
#include <cstdio>
#include <cstdlib>
#include <string>

#include "ebpf/tracers.hpp"
#include "trace/merge.hpp"
#include "trace/serialize.hpp"
#include "workloads/avp_localization.hpp"
#include "workloads/syn_app.hpp"

int main(int argc, char** argv) {
  using namespace tetra;
  std::string workload = "syn";
  int runs = 1;
  int seconds = 20;
  std::uint64_t seed = 1;
  std::string prefix = "trace";

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--workload") workload = next();
    else if (arg == "--runs") runs = std::atoi(next().c_str());
    else if (arg == "--duration") seconds = std::atoi(next().c_str());
    else if (arg == "--seed") seed = std::strtoull(next().c_str(), nullptr, 10);
    else if (arg == "--out") prefix = next();
    else {
      std::fprintf(stderr,
                   "usage: %s [--workload syn|avp|both] [--runs N]\n"
                   "          [--duration SECONDS] [--seed S] [--out PREFIX]\n",
                   argv[0]);
      return arg == "--help" || arg == "-h" ? 0 : 2;
    }
  }
  if (workload != "syn" && workload != "avp" && workload != "both") {
    std::fprintf(stderr, "unknown workload '%s'\n", workload.c_str());
    return 2;
  }

  for (int run = 0; run < runs; ++run) {
    ros2::Context::Config config;
    config.num_cpus = 12;
    config.seed = seed + static_cast<std::uint64_t>(run);
    ros2::Context ctx(config);
    ebpf::TracerSuite suite(ctx);
    suite.start_init();
    workloads::AvpApp avp;  // keeps sensor writers alive through the run
    if (workload == "avp" || workload == "both") {
      workloads::AvpOptions options;
      options.run_duration = Duration::sec(seconds);
      avp = workloads::build_avp_localization(ctx, options);
    }
    if (workload == "syn" || workload == "both") {
      workloads::build_syn_app(ctx);
    }
    auto init_trace = suite.stop_init();
    suite.start_runtime();
    ctx.run_for(Duration::sec(seconds));
    auto events =
        trace::merge_sorted({init_trace, suite.stop_runtime()});
    const std::string path = prefix + "-" + std::to_string(run) + ".jsonl";
    trace::write_jsonl_file(path, events);
    std::fprintf(stderr, "run %d: %zu events -> %s\n", run, events.size(),
                 path.c_str());
  }
  return 0;
}
