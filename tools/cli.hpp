// Shared typed flag registry for the CLI tools.
//
// Every tool used to hand-roll the same argv loop (string compare, `next()`
// helper, ad-hoc number validation, a usage() kept in sync by hand); the
// registry replaces that with typed flag declarations:
//
//   tools::FlagRegistry cli("tetra_sentinel");
//   cli.flag("--baseline", "FILE", "baseline trace (repeatable)", &baselines)
//      .flag("--alpha", "A", "KS significance level", &alpha)
//      .flag("--quiet", "suppress per-window output", &quiet);
//   switch (cli.parse(argc, argv)) {
//     case tools::FlagRegistry::Parse::Help: return 0;
//     case tools::FlagRegistry::Parse::Error: return 2;
//     case tools::FlagRegistry::Parse::Ok: break;
//   }
//
// Usage text is generated from the declarations, unknown flags and
// positional arguments are rejected (exit 2 convention), numeric flags
// validate their domain at parse time, and --help/-h is always available.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <limits>
#include <string>
#include <vector>

namespace tetra::tools {

class FlagRegistry {
 public:
  enum class Parse { Ok, Help, Error };

  explicit FlagRegistry(std::string tool) : tool_(std::move(tool)) {}

  /// Boolean switch (no value).
  FlagRegistry& flag(const std::string& name, const std::string& help,
                     bool* out) {
    return add(name, "", help, false,
               [out](const std::string&, std::string*) {
                 *out = true;
                 return true;
               });
  }

  /// Switch running a callback (e.g. --mt / --st forcing a mode).
  FlagRegistry& flag(const std::string& name, const std::string& help,
                     std::function<void()> on_set) {
    return add(name, "", help, false,
               [fn = std::move(on_set)](const std::string&, std::string*) {
                 fn();
                 return true;
               });
  }

  /// String value.
  FlagRegistry& flag(const std::string& name, const std::string& metavar,
                     const std::string& help, std::string* out) {
    return add(name, metavar, help, true,
               [out](const std::string& value, std::string*) {
                 *out = value;
                 return true;
               });
  }

  /// Repeatable string value.
  FlagRegistry& flag(const std::string& name, const std::string& metavar,
                     const std::string& help,
                     std::vector<std::string>* out) {
    return add(name, metavar, help, true,
               [out](const std::string& value, std::string*) {
                 out->push_back(value);
                 return true;
               });
  }

  /// Integer value with an inclusive lower bound.
  FlagRegistry& flag(const std::string& name, const std::string& metavar,
                     const std::string& help, int* out,
                     int min = std::numeric_limits<int>::min()) {
    return add(name, metavar, help, true,
               [name, min, out](const std::string& value, std::string* error) {
                 char* end = nullptr;
                 const long parsed = std::strtol(value.c_str(), &end, 10);
                 if (end == value.c_str() || *end != '\0' || parsed < min ||
                     parsed > std::numeric_limits<int>::max()) {
                   *error = name + " expects an integer >= " +
                            std::to_string(min) + ", got '" + value + "'";
                   return false;
                 }
                 *out = static_cast<int>(parsed);
                 return true;
               });
  }

  /// Unsigned 64-bit value.
  FlagRegistry& flag(const std::string& name, const std::string& metavar,
                     const std::string& help, std::uint64_t* out) {
    return add(name, metavar, help, true,
               [name, out](const std::string& value, std::string* error) {
                 char* end = nullptr;
                 const unsigned long long parsed =
                     std::strtoull(value.c_str(), &end, 10);
                 if (end == value.c_str() || *end != '\0' ||
                     value.front() == '-') {
                   *error = name + " expects a non-negative integer, got '" +
                            value + "'";
                   return false;
                 }
                 *out = parsed;
                 return true;
               });
  }

  /// Strictly positive floating-point value.
  FlagRegistry& flag(const std::string& name, const std::string& metavar,
                     const std::string& help, double* out) {
    return add(name, metavar, help, true,
               [name, out](const std::string& value, std::string* error) {
                 char* end = nullptr;
                 const double parsed = std::strtod(value.c_str(), &end);
                 if (end == value.c_str() || *end != '\0' || parsed <= 0.0) {
                   *error = name + " expects a positive number, got '" +
                            value + "'";
                   return false;
                 }
                 *out = parsed;
                 return true;
               });
  }

  /// Custom value parse; return false and fill *error to reject.
  FlagRegistry& flag(
      const std::string& name, const std::string& metavar,
      const std::string& help,
      std::function<bool(const std::string& value, std::string* error)>
          parse) {
    return add(name, metavar, help, true, std::move(parse));
  }

  /// Parses argv. On Error the diagnostic and usage text already went to
  /// stderr (tools map Error to exit 2); on Help the usage went to
  /// stderr and tools exit 0.
  Parse parse(int argc, char** argv) const {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--help" || arg == "-h") {
        print_usage(stderr, argv[0]);
        return Parse::Help;
      }
      const Flag* match = nullptr;
      for (const Flag& flag : flags_) {
        if (flag.name == arg) {
          match = &flag;
          break;
        }
      }
      if (match == nullptr) {
        if (arg.rfind("--", 0) == 0) {
          std::fprintf(stderr, "error: unknown flag '%s'\n", arg.c_str());
        } else {
          std::fprintf(stderr, "error: unexpected positional argument '%s'\n",
                       arg.c_str());
        }
        print_usage(stderr, argv[0]);
        return Parse::Error;
      }
      std::string value;
      if (match->takes_value) {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "error: %s expects a value (%s)\n",
                       match->name.c_str(), match->metavar.c_str());
          print_usage(stderr, argv[0]);
          return Parse::Error;
        }
        value = argv[++i];
      }
      std::string error;
      if (!match->handle(value, &error)) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        print_usage(stderr, argv[0]);
        return Parse::Error;
      }
    }
    return Parse::Ok;
  }

  /// Emits a usage diagnostic for a cross-flag constraint the registry
  /// cannot express (missing required flag, conflicting modes) and
  /// returns the usage exit code for `return cli.usage_error(...)`.
  int usage_error(const char* argv0, const std::string& message) const {
    std::fprintf(stderr, "error: %s\n", message.c_str());
    print_usage(stderr, argv0);
    return 2;
  }

  void print_usage(std::FILE* out, const char* argv0) const {
    std::fprintf(out, "usage: %s [flags]\n", argv0);
    std::size_t width = 0;
    for (const Flag& flag : flags_) {
      width = std::max(width, flag.name.size() + 1 + flag.metavar.size());
    }
    for (const Flag& flag : flags_) {
      std::string left = flag.name;
      if (!flag.metavar.empty()) left += " " + flag.metavar;
      std::fprintf(out, "  %-*s  %s\n", static_cast<int>(width), left.c_str(),
                   flag.help.c_str());
    }
  }

 private:
  struct Flag {
    std::string name;
    std::string metavar;
    std::string help;
    bool takes_value = false;
    std::function<bool(const std::string&, std::string*)> handle;
  };

  FlagRegistry& add(
      std::string name, std::string metavar, std::string help,
      bool takes_value,
      std::function<bool(const std::string&, std::string*)> handle) {
    flags_.push_back(Flag{std::move(name), std::move(metavar), std::move(help),
                          takes_value, std::move(handle)});
    return *this;
  }

  std::string tool_;
  std::vector<Flag> flags_;
};

}  // namespace tetra::tools
