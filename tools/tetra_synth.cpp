// tetra_synth — command-line timing-model synthesizer.
//
// Reads JSONL traces (the format the tracers and the trace database
// emit) into an api::SynthesisSession, synthesizes the model and writes
// it as Graphviz DOT and/or JSON, plus an optional text report.
//
//   tetra_synth --trace run1.jsonl [--trace run2.jsonl ...]
//               [--merge-dags | --merge-traces] [--threads N]
//               [--incremental]
//               [--dot out.dot] [--json out.json] [--report]
//               [--no-service-split] [--no-and-junction]
//               [--waiting-times]
//               [--compensate-overhead] [--probe-cost DUR]
//   tetra_synth --trace run1.jsonl --to-ttb run1.ttb
//   tetra_synth --trace run1.ttb --to-jsonl run1.jsonl
//
// With several --trace inputs, --merge-dags (default; §V option ii)
// synthesizes per trace — on N worker threads with --threads — and
// merges the DAGs; --merge-traces (option i, for segments of one run)
// k-way merges the event streams first. --incremental keeps appendable
// per-trace indexes so repeat queries only re-extract touched nodes.
//
// --compensate-overhead subtracts the per-probe tracer cost — estimated
// from the trace, or given via --probe-cost (e.g. "5us", implies
// compensation) — from every execution-time statistic (docs/OVERHEAD.md).
//
// --to-ttb / --to-jsonl are pure format conversions (docs/TRACE_FORMAT.md):
// exactly one --trace input, event order preserved byte-for-byte, no
// synthesis. Either format is accepted as input (.ttb detected by magic),
// so jsonl -> ttb -> jsonl is an identity.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/chains.hpp"
#include "api/session.hpp"
#include "core/export.hpp"
#include "overhead/profile.hpp"
#include "support/string_utils.hpp"
#include "tool_stats.hpp"
#include "trace/serialize.hpp"
#include "trace/ttb.hpp"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --trace FILE [--trace FILE ...]\n"
               "          [--merge-dags | --merge-traces] [--threads N]\n"
               "          [--incremental]\n"
               "          [--dot FILE] [--json FILE] [--report]\n"
               "          [--no-service-split] [--no-and-junction]\n"
               "          [--waiting-times]\n"
               "          [--compensate-overhead] [--probe-cost DUR]\n"
               "          [--lenient] [--stats] [--stats-out FILE]\n"
               "       %s --trace FILE --to-ttb FILE | --to-jsonl FILE\n",
               argv0, argv0);
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) throw std::runtime_error("cannot write " + path);
  f << content;
}

int reject_argument(const char* argv0, const std::string& arg) {
  if (arg.rfind("--", 0) == 0) {
    std::fprintf(stderr, "error: unknown flag '%s'\n", arg.c_str());
  } else {
    std::fprintf(stderr,
                 "error: unexpected positional argument '%s' (trace files "
                 "must be passed via --trace FILE)\n",
                 arg.c_str());
  }
  usage(argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tetra;
  std::vector<std::string> trace_paths;
  std::string dot_path;
  std::string json_path;
  std::string to_ttb_path;
  std::string to_jsonl_path;
  bool report = false;
  bool lenient = false;
  tools::StatsOptions stats;
  api::SynthesisConfig config;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s requires a value\n", arg.c_str());
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--trace") {
      trace_paths.push_back(next());
    } else if (arg == "--dot") {
      dot_path = next();
    } else if (arg == "--json") {
      json_path = next();
    } else if (arg == "--to-ttb") {
      to_ttb_path = next();
    } else if (arg == "--to-jsonl") {
      to_jsonl_path = next();
    } else if (arg == "--incremental") {
      config.incremental(true);
    } else if (arg == "--report") {
      report = true;
    } else if (arg == "--merge-traces") {
      config.merge_strategy(api::MergeStrategy::MergeTraces);
    } else if (arg == "--merge-dags") {
      config.merge_strategy(api::MergeStrategy::MergeDags);
    } else if (arg == "--threads") {
      const std::string value = next();
      const int threads = std::atoi(value.c_str());
      if (threads < 1) {
        std::fprintf(stderr, "error: --threads expects a positive integer, got '%s'\n",
                     value.c_str());
        return 2;
      }
      config.threads(threads);
    } else if (arg == "--no-service-split") {
      config.split_service_per_caller(false);
    } else if (arg == "--no-and-junction") {
      config.model_sync_with_and_junction(false);
    } else if (arg == "--waiting-times") {
      config.compute_waiting_times(true);
    } else if (arg == "--compensate-overhead") {
      config.compensate_overhead(true);
    } else if (arg == "--probe-cost") {
      const std::string value = next();
      const auto cost = overhead::parse_duration(value);
      if (!cost.has_value() || *cost < Duration::zero()) {
        std::fprintf(stderr,
                     "error: --probe-cost expects a duration like 5us or "
                     "200ns, got '%s'\n",
                     value.c_str());
        return 2;
      }
      config.compensate_overhead(true).probe_cost_hint(*cost);
    } else if (arg == "--lenient") {
      lenient = true;
    } else if (arg == "--stats") {
      stats.summary = true;
    } else if (arg == "--stats-out") {
      stats.out_path = next();
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      return reject_argument(argv[0], arg);
    }
  }
  if (trace_paths.empty()) {
    std::fprintf(stderr, "error: at least one --trace FILE is required\n");
    usage(argv[0]);
    return 2;
  }

  // Conversion mode: no synthesis, no session — the raw event sequence is
  // read in file order and re-emitted as-is, so converting back and forth
  // reproduces the original file byte-for-byte.
  if (!to_ttb_path.empty() || !to_jsonl_path.empty()) {
    if (trace_paths.size() != 1) {
      std::fprintf(stderr,
                   "error: --to-ttb/--to-jsonl convert exactly one --trace "
                   "input (got %zu)\n",
                   trace_paths.size());
      return 2;
    }
    try {
      const std::string& in = trace_paths[0];
      const trace::EventVector events = trace::is_ttb_file(in)
                                            ? trace::TtbReader(in).materialize()
                                            : trace::read_jsonl_file(in);
      if (!to_ttb_path.empty()) {
        trace::write_ttb_file(to_ttb_path, events);
        std::fprintf(stderr, "wrote %zu events to %s\n", events.size(),
                     to_ttb_path.c_str());
      }
      if (!to_jsonl_path.empty()) {
        trace::write_jsonl_file(to_jsonl_path, events);
        std::fprintf(stderr, "wrote %zu events to %s\n", events.size(),
                     to_jsonl_path.c_str());
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
    return tools::emit_stats(stats);
  }

  try {
    api::SynthesisSession session(config);
    for (const auto& path : trace_paths) {
      std::size_t malformed_skipped = 0;
      const api::Result<api::SegmentInfo> segment =
          [&]() -> api::Result<api::SegmentInfo> {
        if (lenient && !trace::is_ttb_file(path)) {
          // Fleet posture: one corrupt line must not sink the upload. Skips
          // are counted here and in trace.jsonl_malformed_skipped.
          trace::JsonlParseStats parse_stats;
          trace::EventVector events =
              trace::read_jsonl_file_lenient(path, &parse_stats);
          malformed_skipped = parse_stats.malformed_skipped;
          api::IngestOptions options;
          options.trace_id = path;
          return session.ingest(std::move(events), options);
        }
        return session.ingest_file(path);
      }();
      if (!segment.ok()) {
        std::fprintf(stderr, "error: %s\n", segment.error().to_string().c_str());
        return 1;
      }
      std::fprintf(stderr, "loaded %zu events from %s%s\n",
                   segment->event_count, path.c_str(),
                   segment->arrived_sorted ? "" : " (re-sorted)");
      if (malformed_skipped > 0) {
        std::fprintf(stderr, "warning: skipped %zu malformed line%s in %s\n",
                     malformed_skipped, malformed_skipped == 1 ? "" : "s",
                     path.c_str());
      }
    }

    api::Result<core::TimingModel> model = session.model();
    if (!model.ok()) {
      std::fprintf(stderr, "error: %s\n", model.error().to_string().c_str());
      return 1;
    }
    const core::Dag& dag = model->dag;

    std::fprintf(stderr, "model: %zu vertices, %zu edges, acyclic=%s\n",
                 dag.vertex_count(), dag.edge_count(),
                 dag.is_acyclic() ? "yes" : "NO");

    if (!dot_path.empty()) {
      write_file(dot_path, core::to_dot(dag));
      std::fprintf(stderr, "wrote %s\n", dot_path.c_str());
    }
    if (!json_path.empty()) {
      write_file(json_path, core::to_json(dag));
      std::fprintf(stderr, "wrote %s\n", json_path.c_str());
    }
    if (report || (dot_path.empty() && json_path.empty())) {
      std::printf("%s\n", core::to_exec_time_table(dag).c_str());
      std::printf("chains:\n");
      const analysis::ChainEnumeration chains = analysis::enumerate_chains(dag);
      for (const auto& chain : chains.chains) {
        std::printf("  %s  (sum mWCET %.2f ms)\n",
                    analysis::to_string(chain).c_str(),
                    analysis::chain_wcet(dag, chain).to_ms());
      }
      if (chains.truncated) {
        std::fprintf(stderr,
                     "warning: chain enumeration truncated at %zu chains; "
                     "the list above is incomplete\n",
                     chains.chains.size());
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return tools::emit_stats(stats);
}
