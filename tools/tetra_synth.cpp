// tetra_synth — command-line timing-model synthesizer.
//
// Reads a JSONL trace (the format the tracers and the trace database
// emit), runs Algorithm 1 + Algorithm 2 + DAG synthesis, and writes the
// model as Graphviz DOT and/or JSON, plus an optional text report.
//
//   tetra_synth --trace run1.jsonl [--trace run2.jsonl ...]
//               [--merge-dags | --merge-traces]
//               [--dot out.dot] [--json out.json] [--report]
//               [--no-service-split] [--no-and-junction]
//               [--waiting-times]
//
// With several --trace inputs, --merge-dags (default; §V option ii)
// synthesizes per trace and merges the DAGs; --merge-traces (option i,
// for segments of one run) merges the event streams first.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/chains.hpp"
#include "core/export.hpp"
#include "core/model_synthesis.hpp"
#include "support/string_utils.hpp"
#include "trace/serialize.hpp"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --trace FILE [--trace FILE ...]\n"
               "          [--merge-dags | --merge-traces]\n"
               "          [--dot FILE] [--json FILE] [--report]\n"
               "          [--no-service-split] [--no-and-junction]\n"
               "          [--waiting-times]\n",
               argv0);
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) throw std::runtime_error("cannot write " + path);
  f << content;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tetra;
  std::vector<std::string> trace_paths;
  std::string dot_path;
  std::string json_path;
  bool report = false;
  bool merge_traces = false;
  core::SynthesisOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--trace") {
      trace_paths.push_back(next());
    } else if (arg == "--dot") {
      dot_path = next();
    } else if (arg == "--json") {
      json_path = next();
    } else if (arg == "--report") {
      report = true;
    } else if (arg == "--merge-traces") {
      merge_traces = true;
    } else if (arg == "--merge-dags") {
      merge_traces = false;
    } else if (arg == "--no-service-split") {
      options.dag.split_service_per_caller = false;
    } else if (arg == "--no-and-junction") {
      options.dag.model_sync_with_and_junction = false;
    } else if (arg == "--waiting-times") {
      options.extract.compute_waiting_times = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }
  if (trace_paths.empty()) {
    usage(argv[0]);
    return 2;
  }

  try {
    std::vector<trace::EventVector> traces;
    for (const auto& path : trace_paths) {
      traces.push_back(trace::read_jsonl_file(path));
      std::fprintf(stderr, "loaded %zu events from %s\n", traces.back().size(),
                   path.c_str());
    }

    core::ModelSynthesizer synthesizer(options);
    core::Dag dag;
    if (traces.size() == 1) {
      dag = synthesizer.synthesize(traces[0]).dag;
    } else if (merge_traces) {
      dag = synthesizer.synthesize_merged(traces).dag;
    } else {
      dag = synthesizer.synthesize_and_merge(traces);
    }

    std::fprintf(stderr, "model: %zu vertices, %zu edges, acyclic=%s\n",
                 dag.vertex_count(), dag.edge_count(),
                 dag.is_acyclic() ? "yes" : "NO");

    if (!dot_path.empty()) {
      write_file(dot_path, core::to_dot(dag));
      std::fprintf(stderr, "wrote %s\n", dot_path.c_str());
    }
    if (!json_path.empty()) {
      write_file(json_path, core::to_json(dag));
      std::fprintf(stderr, "wrote %s\n", json_path.c_str());
    }
    if (report || (dot_path.empty() && json_path.empty())) {
      std::printf("%s\n", core::to_exec_time_table(dag).c_str());
      std::printf("chains:\n");
      for (const auto& chain : analysis::enumerate_chains(dag)) {
        std::printf("  %s  (sum mWCET %.2f ms)\n",
                    analysis::to_string(chain).c_str(),
                    analysis::chain_wcet(dag, chain).to_ms());
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
