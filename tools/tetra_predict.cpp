// tetra_predict — model-driven latency prediction and what-if exploration.
//
// Reads JSONL traces into an api::SynthesisSession, synthesizes the
// timing model, then *replays the model* (predict::ModelSimulator) to
// predict per-chain end-to-end latency distributions — and, with sweep
// flags, ranks candidate deployment configurations (WhatIfExplorer)
// without ever re-running the application.
//
//   tetra_predict --trace run1.jsonl [--trace run2.jsonl ...]
//                 [--merge-dags | --merge-traces] [--threads N]
//                 [--horizon SEC] [--seed N] [--hop-us LO:HI]
//                 [--input-period TOPIC=MS] [--timer-period KEY=MS]
//                 [--scale-exec KEY=F] [--scale-exec-all F] [--prune KEY]
//                 [--cpus N] [--workers NODE=N]
//                 [--sweep-timer KEY=MS1,MS2,...] [--sweep-exec F1,F2,...]
//                 [--sweep-cpus N1,N2,...] [--sweep-workers NODE=N1,N2,...]
//                 [--objective worst-mean|worst-p99|worst-max|mean-mean]
//                 [--json FILE] [--report] [--quiet]
//                 [--stats] [--stats-out FILE]
//
// --cpus switches the replay to the contention-aware machine mode (one
// executor per node on N simulated CPUs); without it the replay is
// contention-free. --workers overrides the learned executor worker count
// of a node; --sweep-workers asks "would 2 -> 4 executor threads cut
// chain latency?" across the listed counts. Sweep flags build one
// candidate per listed value and print the ranking best-first.
//
// Exit status: 0 only when the replay measured at least one complete
// chain traversal (in sweep mode: for the best-ranked candidate) — a
// prediction that measured nothing is a failed round trip, --quiet or
// not. 1 on errors/empty predictions, 2 on usage errors.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "api/session.hpp"
#include "predict/report.hpp"
#include "predict/what_if.hpp"
#include "support/string_utils.hpp"
#include "tool_stats.hpp"

namespace {

using namespace tetra;

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --trace FILE [--trace FILE ...]\n"
      "          [--merge-dags | --merge-traces] [--threads N]\n"
      "          [--horizon SEC] [--seed N] [--hop-us LO:HI]\n"
      "          [--input-period TOPIC=MS] [--timer-period KEY=MS]\n"
      "          [--scale-exec KEY=F] [--scale-exec-all F] [--prune KEY]\n"
      "          [--cpus N] [--workers NODE=N]\n"
      "          [--sweep-timer KEY=MS1,MS2,...] [--sweep-exec F1,F2,...]\n"
      "          [--sweep-cpus N1,N2,...] [--sweep-workers NODE=N1,N2,...]\n"
      "          [--objective worst-mean|worst-p99|worst-max|mean-mean]\n"
      "          [--json FILE] [--report] [--quiet]\n"
      "          [--stats] [--stats-out FILE]\n"
      "--report additionally prints the best candidate's chain table in\n"
      "sweep mode (single predictions always print theirs).\n",
      argv0);
}

[[noreturn]] void die(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  std::exit(2);
}

/// Splits "key=value"; dies when '=' is missing.
std::pair<std::string, std::string> split_kv(const std::string& arg,
                                             const std::string& flag) {
  const std::size_t eq = arg.find('=');
  if (eq == std::string::npos || eq == 0) {
    die(flag + " expects KEY=VALUE, got '" + arg + "'");
  }
  return {arg.substr(0, eq), arg.substr(eq + 1)};
}

double parse_double(const std::string& value, const std::string& flag) {
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0') {
    die(flag + " expects a number, got '" + value + "'");
  }
  return parsed;
}

std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(csv.substr(start));
      break;
    }
    out.push_back(csv.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) die("cannot write " + path);
  f << content;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> trace_paths;
  std::string json_path;
  bool report = false;
  api::SynthesisConfig synth_config;
  predict::PredictionConfig prediction;

  // Sweep requests are collected as flags and applied onto the explorer.
  std::vector<std::pair<std::string, std::vector<Duration>>> timer_sweeps;
  std::vector<double> exec_sweep;
  std::vector<int> cpu_sweep;
  std::vector<std::pair<std::string, std::vector<int>>> worker_sweeps;
  predict::Objective objective = predict::Objective::WorstChainP99;
  bool quiet = false;
  tetra::tools::StatsOptions stats;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) die(arg + " requires a value");
      return argv[++i];
    };
    if (arg == "--trace") {
      trace_paths.push_back(next());
    } else if (arg == "--merge-traces") {
      synth_config.merge_strategy(api::MergeStrategy::MergeTraces);
    } else if (arg == "--merge-dags") {
      synth_config.merge_strategy(api::MergeStrategy::MergeDags);
    } else if (arg == "--threads") {
      const int threads = std::atoi(next().c_str());
      if (threads < 1) die("--threads expects a positive integer");
      synth_config.threads(threads);
    } else if (arg == "--horizon") {
      prediction.horizon =
          Duration::ms_f(parse_double(next(), "--horizon") * 1e3);
      if (prediction.horizon <= Duration::zero()) {
        die("--horizon expects a positive number of seconds");
      }
    } else if (arg == "--seed") {
      const std::string value = next();
      char* end = nullptr;
      prediction.seed = std::strtoull(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') {
        die("--seed expects an unsigned integer, got '" + value + "'");
      }
    } else if (arg == "--hop-us") {
      const std::string value = next();
      const std::size_t colon = value.find(':');
      if (colon == std::string::npos) die("--hop-us expects LO:HI");
      prediction.hop_latency.lo = Duration::ms_f(
          parse_double(value.substr(0, colon), "--hop-us") / 1e3);
      prediction.hop_latency.hi = Duration::ms_f(
          parse_double(value.substr(colon + 1), "--hop-us") / 1e3);
    } else if (arg == "--input-period") {
      const auto [topic, ms] = split_kv(next(), "--input-period");
      prediction.input_period[topic] =
          Duration::ms_f(parse_double(ms, "--input-period"));
    } else if (arg == "--timer-period") {
      const auto [key, ms] = split_kv(next(), "--timer-period");
      prediction.timer_period[key] =
          Duration::ms_f(parse_double(ms, "--timer-period"));
    } else if (arg == "--scale-exec") {
      const auto [key, factor] = split_kv(next(), "--scale-exec");
      prediction.exec_scale[key] = parse_double(factor, "--scale-exec");
    } else if (arg == "--scale-exec-all") {
      prediction.global_exec_scale = parse_double(next(), "--scale-exec-all");
    } else if (arg == "--prune") {
      prediction.pruned.insert(next());
    } else if (arg == "--cpus") {
      const int cpus = std::atoi(next().c_str());
      if (cpus < 1) die("--cpus expects a positive integer");
      predict::ExecutorMapping mapping;
      mapping.num_cpus = cpus;
      prediction.executors = mapping;
    } else if (arg == "--workers") {
      const auto [node, count] = split_kv(next(), "--workers");
      const int workers =
          static_cast<int>(parse_double(count, "--workers"));
      if (workers < 1) die("--workers expects NODE=N with N >= 1");
      prediction.workers[node] = workers;
    } else if (arg == "--sweep-workers") {
      const auto [node, csv] = split_kv(next(), "--sweep-workers");
      std::vector<int> counts;
      for (const std::string& n : split_list(csv)) {
        const int workers = static_cast<int>(parse_double(n, "--sweep-workers"));
        if (workers < 1) die("--sweep-workers expects counts >= 1");
        counts.push_back(workers);
      }
      worker_sweeps.push_back({node, std::move(counts)});
    } else if (arg == "--sweep-timer") {
      const auto [key, csv] = split_kv(next(), "--sweep-timer");
      std::vector<Duration> periods;
      for (const std::string& ms : split_list(csv)) {
        periods.push_back(Duration::ms_f(parse_double(ms, "--sweep-timer")));
      }
      timer_sweeps.push_back({key, std::move(periods)});
    } else if (arg == "--sweep-exec") {
      for (const std::string& f : split_list(next())) {
        exec_sweep.push_back(parse_double(f, "--sweep-exec"));
      }
    } else if (arg == "--sweep-cpus") {
      for (const std::string& n : split_list(next())) {
        const int cpus = static_cast<int>(parse_double(n, "--sweep-cpus"));
        if (cpus < 1) die("--sweep-cpus expects positive integers");
        cpu_sweep.push_back(cpus);
      }
    } else if (arg == "--objective") {
      const std::string value = next();
      if (value == "worst-mean") {
        objective = predict::Objective::WorstChainMean;
      } else if (value == "worst-p99") {
        objective = predict::Objective::WorstChainP99;
      } else if (value == "worst-max") {
        objective = predict::Objective::WorstChainMax;
      } else if (value == "mean-mean") {
        objective = predict::Objective::MeanOfMeans;
      } else {
        die("unknown objective '" + value + "'");
      }
    } else if (arg == "--json") {
      json_path = next();
    } else if (arg == "--report") {
      report = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--stats") {
      stats.summary = true;
    } else if (arg == "--stats-out") {
      stats.out_path = next();
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "error: unknown argument '%s'\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }
  if (trace_paths.empty()) {
    std::fprintf(stderr, "error: at least one --trace FILE is required\n");
    usage(argv[0]);
    return 2;
  }

  try {
    api::SynthesisSession session(synth_config);
    for (const auto& path : trace_paths) {
      api::Result<api::SegmentInfo> segment = session.ingest_file(path);
      if (!segment.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     segment.error().to_string().c_str());
        return 1;
      }
      std::fprintf(stderr, "loaded %zu events from %s\n",
                   segment->event_count, path.c_str());
    }
    api::Result<core::TimingModel> model = session.model();
    if (!model.ok()) {
      std::fprintf(stderr, "error: %s\n", model.error().to_string().c_str());
      return 1;
    }
    const core::Dag& dag = model->dag;
    std::fprintf(stderr, "model: %zu vertices, %zu edges\n",
                 dag.vertex_count(), dag.edge_count());

    const auto complete_traversals =
        [](const predict::PredictionResult& result) {
          std::size_t complete = 0;
          for (const auto& chain : result.chains) {
            complete += chain.latency.complete;
          }
          return complete;
        };

    const bool sweeping = !timer_sweeps.empty() || !exec_sweep.empty() ||
                          !cpu_sweep.empty() || !worker_sweeps.empty();
    std::string json;
    bool truncated = false;
    std::size_t measured = 0;
    if (sweeping) {
      predict::WhatIfExplorer what_if(dag, prediction);
      what_if.add_baseline();
      for (const auto& [key, periods] : timer_sweeps) {
        what_if.sweep_timer_period(key, periods);
      }
      if (!exec_sweep.empty()) what_if.sweep_exec_scale(exec_sweep);
      if (!cpu_sweep.empty()) what_if.sweep_num_cpus(cpu_sweep);
      for (const auto& [node, counts] : worker_sweeps) {
        what_if.sweep_workers(node, counts);
      }
      const std::vector<predict::WhatIfOutcome> outcomes =
          what_if.explore(objective);
      for (const auto& outcome : outcomes) {
        truncated |= outcome.prediction.chains_truncated;
      }
      if (!outcomes.empty()) {
        measured = complete_traversals(outcomes.front().prediction);
      }
      if (!quiet) {
        std::printf("%s", predict::to_text_table(outcomes, objective).c_str());
        if (report && !outcomes.empty()) {
          std::printf(
              "\nbest candidate '%s':\n%s",
              outcomes.front().candidate.name.c_str(),
              predict::to_text_table(outcomes.front().prediction).c_str());
        }
      }
      json = predict::to_json(outcomes, objective);
    } else {
      const predict::PredictionResult result =
          predict::ModelSimulator(dag, prediction).predict();
      truncated = result.chains_truncated;
      measured = complete_traversals(result);
      // The per-chain table IS the report in single-prediction mode.
      if (!quiet) std::printf("%s", predict::to_text_table(result).c_str());
      json = predict::to_json(result);
    }
    if (truncated) {
      std::fprintf(stderr,
                   "warning: chain enumeration truncated at %zu chains; "
                   "predictions cover an incomplete chain set\n",
                   prediction.max_chains);
    }
    if (!json_path.empty()) {
      write_file(json_path, json + "\n");
      std::fprintf(stderr, "wrote %s\n", json_path.c_str());
    }
    if (measured == 0) {
      // A replay that completed no chain traversal predicted nothing; the
      // exit status must say so even when --quiet suppressed the tables.
      std::fprintf(stderr,
                   "error: no complete chain traversal in the prediction\n");
      return 1;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return tetra::tools::emit_stats(stats);
}
