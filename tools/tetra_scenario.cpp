// tetra_scenario — randomized scenario sweeps with round-trip validation.
//
// Generates seeded random ROS2 application scenarios, runs each on the
// simulated substrate under the three tracers, synthesizes the timing
// model and diffs it against the scenario's ground truth.
//
//   tetra_scenario --seed N [--count K] [--validate]
//                  [--cpus C] [--duration-ms D] [--interference T]
//                  [--threads W] [--modes] [--mt | --st]
//                  [--mutate KIND] [--run-index N]
//                  [--probe-cost SPEC] [--sample-every K]
//                  [--compensate-overhead]
//                  [--json FILE] [--dot FILE]
//                  [--trace-out FILE] [--ttb-out FILE] [--quiet]
//                  [--shards N] [--stats] [--stats-out FILE]
//
// --probe-cost SPEC injects simulated tracer overhead into every probe
// hit (presets uprobe | usdt | lttng | free, or "COST[~JITTER]" like
// "5us~500ns"); --sample-every K traces only one in K callback instances;
// --compensate-overhead estimates the injected cost from the trace and
// subtracts it during synthesis (docs/OVERHEAD.md).
//
// --mt forces every generated node onto a multi-threaded executor with
// callback groups; --st forces single-threaded executors everywhere
// (the default rolls the executor dimension per node).
//
// --mutate KIND (drop-edge | add-edge | retime-timer | scale-exec-time |
// reprioritize) perturbs each generated spec along that one axis before
// running it (mutation seed = scenario seed); validation then runs
// against the *mutant's* ground truth. --run-index N re-runs the same
// spec with a different sampling stream (N > 0 gives a resampled run of
// the identical application). Together they produce the sentinel's
// labeled drift / no-drift window fixtures.
//
// With --validate (the main mode), exits 0 only when every scenario's
// synthesized DAG matches its ground truth; mismatch reports go to
// stderr. --json/--dot/--trace-out dump the first scenario's spec,
// synthesized DAG and merged trace (the latter feeds the golden-trace
// regression test); --ttb-out writes the same merged trace in the
// compact binary format (docs/TRACE_FORMAT.md).
//
// --shards N re-ingests the first scenario's merged trace through a
// ShardedIngestService in chunks and cross-checks the resulting model
// against the session-synthesized one (exit 1 on mismatch); --stats /
// --stats-out dump the telemetry snapshot (docs/TELEMETRY.md).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>

#include "api/ingest_service.hpp"
#include "cli.hpp"
#include "core/export.hpp"
#include "overhead/profile.hpp"
#include "scenario/generator.hpp"
#include "scenario/runner.hpp"
#include "scenario/validator.hpp"
#include "tool_stats.hpp"
#include "trace/serialize.hpp"
#include "trace/ttb.hpp"

namespace {

void write_file(const std::string& path, const std::string& content) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) throw std::runtime_error("cannot write " + path);
  f << content;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tetra;

  std::uint64_t seed = 1;
  bool seed_given = false;
  int count = 1;
  bool validate = false;
  bool run_modes = false;
  bool quiet = false;
  std::optional<scenario::MutationKind> mutation;
  std::uint64_t run_index = 0;
  int shards = 0;
  tools::StatsOptions stats;
  std::string json_path, dot_path, trace_path, ttb_path;
  scenario::GeneratorOptions generator_options;
  scenario::RunnerOptions runner_options;

  int duration_ms = 0;
  bool duration_given = false;

  tools::FlagRegistry cli("tetra_scenario");
  cli.flag("--seed", "N", "base scenario seed (required)",
           [&seed, &seed_given](const std::string& value, std::string* error) {
             char* end = nullptr;
             const unsigned long long parsed =
                 std::strtoull(value.c_str(), &end, 10);
             if (end == value.c_str() || *end != '\0') {
               *error = "--seed expects a non-negative integer, got '" +
                        value + "'";
               return false;
             }
             seed = parsed;
             seed_given = true;
             return true;
           })
      .flag("--count", "K", "scenarios to run, seeds N..N+K-1", &count, 1)
      .flag("--validate", "diff each synthesized DAG against ground truth",
            &validate)
      .flag("--cpus", "C", "simulated CPU count", &generator_options.num_cpus,
            1)
      .flag("--duration-ms", "D", "simulated run duration",
            [&duration_ms, &duration_given](const std::string& value,
                                            std::string* error) {
              char* end = nullptr;
              const long parsed = std::strtol(value.c_str(), &end, 10);
              if (end == value.c_str() || *end != '\0' || parsed < 1) {
                *error = "--duration-ms expects a positive integer, got '" +
                         value + "'";
                return false;
              }
              duration_ms = static_cast<int>(parsed);
              duration_given = true;
              return true;
            })
      .flag("--interference", "T", "busy-loop interference threads",
            &runner_options.interference_threads, 0)
      .flag("--threads", "W", "synthesis session worker threads",
            &runner_options.threads, 1)
      .flag("--modes", "run per-mode traces (multi-mode synthesis)",
            &run_modes)
      .flag("--mutate", "KIND",
            "perturb each spec: drop-edge | add-edge | retime-timer | "
            "scale-exec-time | reprioritize",
            [&mutation](const std::string& value, std::string* error) {
              const auto parsed = scenario::mutation_kind_from_string(value);
              if (!parsed.has_value()) {
                *error = "--mutate expects drop-edge | add-edge | "
                         "retime-timer | scale-exec-time | reprioritize, "
                         "got '" + value + "'";
                return false;
              }
              mutation = parsed;
              return true;
            })
      .flag("--run-index", "N", "resampled run of the identical application",
            &run_index)
      .flag("--probe-cost", "SPEC",
            "simulated tracer overhead: uprobe | usdt | lttng | free or "
            "COST[~JITTER] (e.g. 5us~500ns)",
            [&runner_options](const std::string& value, std::string* error) {
              const auto profile = overhead::ProbeCostProfile::parse(value);
              if (!profile.has_value()) {
                *error = "--probe-cost expects uprobe | usdt | lttng | free "
                         "or COST[~JITTER] (e.g. 5us~500ns), got '" + value +
                         "'";
                return false;
              }
              const unsigned keep_sampling =
                  runner_options.probe_profile.sample_every;
              runner_options.probe_profile = *profile;
              runner_options.probe_profile.sample_every = keep_sampling;
              return true;
            })
      .flag("--sample-every", "K", "trace one in K callback instances",
            [&runner_options](const std::string& value, std::string* error) {
              char* end = nullptr;
              const long k = std::strtol(value.c_str(), &end, 10);
              if (end == value.c_str() || *end != '\0' || k < 1) {
                *error = "--sample-every expects a positive integer, got '" +
                         value + "'";
                return false;
              }
              runner_options.probe_profile.sample_every =
                  static_cast<unsigned>(k);
              return true;
            })
      .flag("--compensate-overhead",
            "estimate and subtract the injected probe cost",
            &runner_options.compensate_overhead)
      .flag("--mt", "force multi-threaded executors everywhere",
            [&generator_options] { generator_options.p_multithreaded = 1.0; })
      .flag("--st", "force single-threaded executors everywhere",
            [&generator_options] { generator_options.p_multithreaded = 0.0; })
      .flag("--json", "FILE", "dump the first scenario's spec JSON",
            &json_path)
      .flag("--dot", "FILE", "dump the first scenario's synthesized DAG",
            &dot_path)
      .flag("--trace-out", "FILE", "dump the first scenario's merged trace",
            &trace_path)
      .flag("--ttb-out", "FILE", "same trace in the binary .ttb format",
            &ttb_path)
      .flag("--quiet", "suppress per-scenario stdout output", &quiet)
      .flag("--shards", "N", "cross-check through a sharded ingest service",
            &shards, 1)
      .flag("--stats", "print the telemetry summary table", &stats.summary)
      .flag("--stats-out", "FILE", "write the telemetry JSON snapshot",
            &stats.out_path);

  switch (cli.parse(argc, argv)) {
    case tools::FlagRegistry::Parse::Help: return 0;
    case tools::FlagRegistry::Parse::Error: return 2;
    case tools::FlagRegistry::Parse::Ok: break;
  }
  if (duration_given) {
    generator_options.run_duration = Duration::ms(duration_ms);
  }
  if (!seed_given) {
    return cli.usage_error(argv[0], "--seed N is required");
  }

  const scenario::ScenarioGenerator generator(generator_options);
  const scenario::ScenarioRunner runner(runner_options);
  const scenario::RoundTripValidator validator;

  int mismatches = 0;
  try {
    for (int k = 0; k < count; ++k) {
      const std::uint64_t scenario_seed = seed + static_cast<std::uint64_t>(k);
      const scenario::Scenario scen = generator.generate(scenario_seed);
      scenario::ScenarioSpec spec = scen.spec;
      scenario::GroundTruth truth = scen.ground_truth;
      if (mutation.has_value()) {
        const scenario::MutationResult mutant =
            generator.mutate(scen.spec, scenario_seed, *mutation);
        if (!mutant.applied) {
          std::fprintf(stderr, "seed %llu: mutation not applicable: %s\n",
                       static_cast<unsigned long long>(scenario_seed),
                       mutant.description.c_str());
          return 1;
        }
        if (!quiet) {
          std::fprintf(stderr, "seed %llu: %s\n",
                       static_cast<unsigned long long>(scenario_seed),
                       mutant.description.c_str());
        }
        spec = mutant.spec;
        truth = scenario::build_ground_truth(spec);
      }

      if (k == 0 && !json_path.empty()) {
        write_file(json_path, scenario::spec_to_json(spec));
      }

      const bool validating = validate || run_modes;
      const bool needs_run = validating || !trace_path.empty() ||
                             !ttb_path.empty() || !dot_path.empty() ||
                             shards > 0;
      if (!needs_run) {
        if (!quiet) {
          std::printf("seed %llu: %zu nodes, %zu callbacks, %zu vertices, "
                      "%zu edges, %zu chains\n",
                      static_cast<unsigned long long>(scenario_seed),
                      spec.nodes.size(), spec.callback_count(),
                      truth.dag.vertex_count(), truth.dag.edge_count(),
                      truth.chain_count);
        }
        continue;
      }

      scenario::ValidationReport report;
      if (run_modes) {
        const core::MultiModeDag modes = runner.run_modes(spec);
        report = validator.validate_dag(modes.combined(), truth);
        if (k == 0 && !dot_path.empty()) {
          write_file(dot_path, core::to_dot(modes.combined()));
        }
        if (k == 0 && (!trace_path.empty() || !ttb_path.empty())) {
          std::fprintf(stderr,
                       "--trace-out/--ttb-out are ignored with --modes "
                       "(per-mode runs produce no single merged trace)\n");
        }
        if (k == 0 && shards > 0) {
          std::fprintf(stderr,
                       "--shards is ignored with --modes (per-mode runs "
                       "produce no single merged trace)\n");
        }
      } else {
        const scenario::ScenarioRunResult result =
            runner.run(spec, 1.0, run_index);
        if (validating) {
          report = validator.validate(result.model, truth);
        }
        if (k == 0 && !trace_path.empty()) {
          trace::write_jsonl_file(trace_path, result.trace);
          std::fprintf(stderr, "wrote %zu events to %s\n", result.trace.size(),
                       trace_path.c_str());
        }
        if (k == 0 && !ttb_path.empty()) {
          trace::write_ttb_file(ttb_path, result.trace);
          std::fprintf(stderr, "wrote %zu events to %s\n", result.trace.size(),
                       ttb_path.c_str());
        }
        if (k == 0 && !dot_path.empty()) {
          write_file(dot_path, core::to_dot(result.model.dag));
        }
        if (k == 0 && shards > 0) {
          // Fleet-path cross-check: re-ingest the merged trace through the
          // sharded service in chunks under one trace id (all chunks land
          // on one shard, so merge order is submission order) and require
          // the same model shape the in-process session produced. This also
          // populates the ingest.* metric family for --stats/--stats-out.
          api::IngestServiceConfig service_config;
          service_config.shards = static_cast<std::size_t>(shards);
          service_config.session =
              runner.session_config(api::MergeStrategy::MergeTraces);
          api::ShardedIngestService service(service_config);
          const std::size_t chunk =
              std::max<std::size_t>(1, result.trace.size() / 8);
          for (std::size_t begin = 0; begin < result.trace.size();
               begin += chunk) {
            const std::size_t end =
                std::min(result.trace.size(), begin + chunk);
            service.submit("run",
                           trace::EventVector(result.trace.begin() + begin,
                                              result.trace.begin() + end));
          }
          api::Result<core::TimingModel> sharded = service.model();
          if (!sharded.ok()) {
            ++mismatches;
            std::fprintf(stderr, "seed %llu: sharded ingest failed: %s\n",
                         static_cast<unsigned long long>(scenario_seed),
                         sharded.error().to_string().c_str());
          } else if (sharded->dag.vertex_count() !=
                         result.model.dag.vertex_count() ||
                     sharded->dag.edge_count() !=
                         result.model.dag.edge_count()) {
            ++mismatches;
            std::fprintf(
                stderr,
                "seed %llu: sharded model (%zu vertices, %zu edges) != "
                "session model (%zu vertices, %zu edges)\n",
                static_cast<unsigned long long>(scenario_seed),
                sharded->dag.vertex_count(), sharded->dag.edge_count(),
                result.model.dag.vertex_count(),
                result.model.dag.edge_count());
          } else if (!quiet) {
            std::fprintf(
                stderr, "seed %llu: sharded cross-check OK (%d shard%s)\n",
                static_cast<unsigned long long>(scenario_seed), shards,
                shards == 1 ? "" : "s");
          }
        }
      }

      // Exit status reflects validation only in the validating modes;
      // plain dump invocations succeed once their artifacts are written.
      if (!validating) continue;
      if (!report.ok()) {
        ++mismatches;
        std::fprintf(stderr, "seed %llu: %s\n",
                     static_cast<unsigned long long>(scenario_seed),
                     report.to_string().c_str());
      } else if (!quiet) {
        std::printf("seed %llu: OK (%zu vertices, %zu edges, %zu chains)\n",
                    static_cast<unsigned long long>(scenario_seed),
                    truth.dag.vertex_count(), truth.dag.edge_count(),
                    truth.chain_count);
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  // The exit status carries the verdict regardless of --quiet: mismatch
  // reports already went to stderr, the summary is informational.
  if ((validate || run_modes) && !quiet) {
    std::printf("%d/%d scenarios matched ground truth\n", count - mismatches,
                count);
  }
  const int stats_rc = tools::emit_stats(stats);
  return mismatches == 0 ? stats_rc : 1;
}
