// tetra_sentinel — model drift detection, one-shot and streaming.
//
// Holds a baseline synthesized from one or more trace files (JSONL or
// .ttb) and reports structured drift verdicts (added/removed DAG
// structure, execution-time distribution shifts, timer period shifts,
// chain-latency envelope and deadline violations) in two modes:
//
// Batch (CI-style gating): each --window FILE is checked independently,
// in order; --json writes the verdict JSON (the verdict object for one
// window, an array for several).
//
// Streaming (--follow FILE-or-DIR): the trace is fed through
// sentinel::StreamSentinel as a continuous stream — a directory is
// consumed as its segment files in name order, each rebased onto the end
// of the previous one — and one verdict JSON line is emitted per sliding
// window advance (--out FILE, stdout otherwise). Per-axis evidence
// accumulates sequentially across windows (docs/SENTINEL.md); the exit
// status reports whether any window *alarmed*, not whether a single
// window looked odd.
//
// --deadline attaches a latency deadline to the chain whose plain topic
// path (joined with " -> ") equals TOPICS, e.g. --deadline '/tp0 ->
// /tp2=12.5'.
//
// Exit status: 0 = no drift/alarm, 1 = drift detected (batch: any window
// drifted; streaming: any window alarmed), 2 = usage error, 3 = runtime
// error (unreadable file, synthesis failure).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "cli.hpp"
#include "sentinel/sentinel.hpp"
#include "tool_stats.hpp"

namespace {

void write_file(const std::string& path, const std::string& content) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) throw std::runtime_error("cannot write " + path);
  f << content;
}

/// The segment files of a --follow argument: the file itself, or the
/// .jsonl/.ttb files of a directory in name order (the deterministic
/// stream order the CI determinism job byte-diffs).
std::vector<std::string> follow_segments(const std::string& path,
                                         std::string* error) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(path, ec)) return {path};
  std::vector<std::string> segments;
  for (const auto& entry : fs::directory_iterator(path, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext == ".jsonl" || ext == ".ttb") {
      segments.push_back(entry.path().string());
    }
  }
  if (ec) {
    *error = "cannot list " + path + ": " + ec.message();
    return {};
  }
  if (segments.empty()) {
    *error = "no .jsonl or .ttb segments in " + path;
    return {};
  }
  std::sort(segments.begin(), segments.end());
  return segments;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tetra;

  std::vector<std::string> baseline_files;
  std::vector<std::string> window_files;
  std::string follow_path;
  std::string json_path;
  std::string out_path;
  double span_ms = 0.0;
  double advance_ms = 0.0;
  std::uint64_t refresh_after = 0;
  bool quiet = false;
  tools::StatsOptions stats;
  sentinel::SentinelConfig config;

  tools::FlagRegistry cli("tetra_sentinel");
  cli.flag("--baseline", "FILE", "baseline trace, JSONL or .ttb (repeatable)",
           &baseline_files)
      .flag("--window", "FILE", "trace window to check (repeatable)",
            &window_files)
      .flag("--follow", "PATH",
            "stream a trace file or a directory of segment files",
            &follow_path)
      .flag("--span", "MS", "sliding window span in ms (streaming)", &span_ms)
      .flag("--advance", "MS", "window advance in ms (streaming)",
            &advance_ms)
      .flag("--evidence-alpha", "A",
            "sequential alarm budget per accumulator (streaming)",
            &config.evidence_alpha)
      .flag("--refresh-after", "K",
            "baseline auto-refresh after K clean-but-shifted windows "
            "(streaming; 0 disables)",
            &refresh_after)
      .flag("--alpha", "A", "KS significance level per window", &config.alpha)
      .flag("--min-samples", "N",
            "minimum samples per side for a per-window KS finding",
            [&config](const std::string& value, std::string* error) {
              char* end = nullptr;
              const unsigned long long parsed =
                  std::strtoull(value.c_str(), &end, 10);
              if (end == value.c_str() || *end != '\0') {
                *error = "--min-samples expects a non-negative integer, "
                         "got '" + value + "'";
                return false;
              }
              config.min_samples = static_cast<std::size_t>(parsed);
              return true;
            })
      .flag("--period-tol", "F", "relative timer-period tolerance",
            &config.period_tolerance)
      .flag("--latency-tol", "F", "relative mean chain-latency tolerance",
            &config.latency_tolerance)
      .flag("--deadline", "TOPICS=MS",
            "per-chain latency deadline, e.g. '/tp0 -> /tp2=12.5'",
            [&config](const std::string& value, std::string* error) {
              const auto eq = value.rfind('=');
              if (eq == std::string::npos || eq == 0 ||
                  eq + 1 >= value.size()) {
                *error = "--deadline expects 'TOPICS=MS', got '" + value + "'";
                return false;
              }
              char* end = nullptr;
              const std::string ms_text = value.substr(eq + 1);
              const double ms = std::strtod(ms_text.c_str(), &end);
              if (end == ms_text.c_str() || *end != '\0' || ms <= 0.0) {
                *error = "--deadline expects a positive number of ms, got '" +
                         ms_text + "'";
                return false;
              }
              config.chain_deadlines[value.substr(0, eq)] = Duration::ms_f(ms);
              return true;
            })
      .flag("--json", "FILE", "write the batch verdict JSON", &json_path)
      .flag("--out", "FILE", "write streaming verdict JSON lines", &out_path)
      .flag("--quiet", "suppress per-window stdout output", &quiet)
      .flag("--stats", "print the telemetry summary table", &stats.summary)
      .flag("--stats-out", "FILE", "write the telemetry JSON snapshot",
            &stats.out_path);

  switch (cli.parse(argc, argv)) {
    case tools::FlagRegistry::Parse::Help: return 0;
    case tools::FlagRegistry::Parse::Error: return 2;
    case tools::FlagRegistry::Parse::Ok: break;
  }
  const bool streaming = !follow_path.empty();
  if (baseline_files.empty()) {
    return cli.usage_error(argv[0], "at least one --baseline is required");
  }
  if (streaming && !window_files.empty()) {
    return cli.usage_error(argv[0],
                           "--follow and --window are mutually exclusive");
  }
  if (!streaming && window_files.empty()) {
    return cli.usage_error(
        argv[0], "at least one --window (or --follow) is required");
  }
  if (!streaming && (span_ms > 0.0 || advance_ms > 0.0 || !out_path.empty())) {
    return cli.usage_error(argv[0],
                           "--span/--advance/--out only apply to --follow");
  }
  if (span_ms > 0.0) config.window_span = Duration::ms_f(span_ms);
  if (advance_ms > 0.0) config.window_advance = Duration::ms_f(advance_ms);
  if (config.window_advance > config.window_span) {
    return cli.usage_error(argv[0],
                           "--advance must not exceed --span (windows would "
                           "skip events)");
  }
  config.refresh_after = static_cast<std::size_t>(refresh_after);
  config.rebase_segments = true;  // directory segments each restart near t=0

  if (streaming) {
    sentinel::StreamSentinel stream(config);
    for (const auto& path : baseline_files) {
      const auto segment = stream.ingest_baseline_file(path);
      if (!segment.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     segment.error().to_string().c_str());
        return 3;
      }
    }
    std::string list_error;
    const std::vector<std::string> segments =
        follow_segments(follow_path, &list_error);
    if (segments.empty()) {
      std::fprintf(stderr, "error: %s\n", list_error.c_str());
      return 3;
    }

    bool any_alarm = false;
    std::string out_lines;
    for (const auto& segment_path : segments) {
      const auto verdicts = stream.feed_file(segment_path);
      if (!verdicts.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     verdicts.error().to_string().c_str());
        return verdicts.error().code == api::ErrorCode::InvalidArgument ? 2
                                                                        : 3;
      }
      for (const auto& window : verdicts.value()) {
        any_alarm = any_alarm || window.alarmed;
        const std::string line = sentinel::window_verdict_to_json(window);
        if (out_path.empty()) {
          std::printf("%s\n", line.c_str());
        } else {
          out_lines += line;
          out_lines += '\n';
          if (!quiet) {
            std::printf("window %zu: %s (%zu alarms, %zu transient, %zu "
                        "checks)\n",
                        window.index,
                        window.alarmed ? "ALARM"
                        : window.window_drifted ? "shifted"
                                                : "clean",
                        window.alarms.size(), window.transient.size(),
                        window.checks);
          }
        }
        if (window.refreshed) {
          // Operator-visible by contract: the refresh note survives
          // --quiet and redirected stdout.
          std::fprintf(stderr, "baseline refreshed at window %zu\n",
                       window.index);
        }
      }
    }
    if (!out_path.empty()) {
      try {
        write_file(out_path, out_lines);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 3;
      }
    }
    const int stats_rc = tools::emit_stats(stats);
    return any_alarm ? 1 : stats_rc;
  }

  sentinel::ModelSentinel sentinel(config);
  for (const auto& path : baseline_files) {
    const auto segment = sentinel.ingest_baseline_file(path);
    if (!segment.ok()) {
      std::fprintf(stderr, "error: %s\n", segment.error().to_string().c_str());
      return 3;
    }
  }

  bool any_drift = false;
  std::vector<std::string> verdict_jsons;
  for (const auto& path : window_files) {
    const auto verdict = sentinel.check_file(path);
    if (!verdict.ok()) {
      std::fprintf(stderr, "error: %s\n", verdict.error().to_string().c_str());
      return 3;
    }
    any_drift = any_drift || verdict->drifted;
    verdict_jsons.push_back(sentinel::verdict_to_json(*verdict));
    if (!quiet) {
      std::printf("%s: %s (%zu findings, %zu checks)\n", path.c_str(),
                  verdict->drifted ? "DRIFT" : "clean",
                  verdict->findings.size(), verdict->checks);
      for (const auto& finding : verdict->findings) {
        std::printf("  [%s] %s: %s\n",
                    std::string(to_string(finding.kind)).c_str(),
                    finding.subject.c_str(), finding.detail.c_str());
      }
    }
  }

  if (!json_path.empty()) {
    try {
      if (verdict_jsons.size() == 1) {
        write_file(json_path, verdict_jsons.front() + "\n");
      } else {
        std::string out = "[";
        for (std::size_t i = 0; i < verdict_jsons.size(); ++i) {
          if (i > 0) out += ",";
          out += verdict_jsons[i];
        }
        out += "]\n";
        write_file(json_path, out);
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 3;
    }
  }

  // The exit status carries the verdict regardless of --quiet; a failed
  // snapshot write only surfaces when the windows were clean.
  const int stats_rc = tools::emit_stats(stats);
  return any_drift ? 1 : stats_rc;
}
