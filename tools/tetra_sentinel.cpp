// tetra_sentinel — model drift detection for CI-style gating.
//
// Holds a baseline synthesized from one or more JSONL trace files, checks
// one or more fresh trace windows against it, and reports structured
// drift verdicts (added/removed DAG structure, execution-time
// distribution shifts, timer period shifts, chain-latency envelope and
// deadline violations).
//
//   tetra_sentinel --baseline FILE [--baseline FILE ...]
//                  --window FILE [--window FILE ...]
//                  [--alpha A] [--min-samples N]
//                  [--period-tol F] [--latency-tol F]
//                  [--deadline 'TOPICS=MS'] [--json FILE] [--quiet]
//                  [--stats] [--stats-out FILE]
//
// Each --window is checked independently, in order. --json writes the
// verdict JSON (the verdict object for one window, an array for several).
// --deadline attaches a latency deadline to the chain whose plain topic
// path (joined with " -> ") equals TOPICS, e.g. --deadline '/tp0 ->
// /tp2=12.5'.
//
// Exit status: 0 = no drift in any window, 1 = drift detected, 2 = usage
// error, 3 = runtime error (unreadable file, synthesis failure).
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "sentinel/sentinel.hpp"
#include "tool_stats.hpp"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --baseline FILE [--baseline FILE ...]\n"
               "          --window FILE [--window FILE ...]\n"
               "          [--alpha A] [--min-samples N]\n"
               "          [--period-tol F] [--latency-tol F]\n"
               "          [--deadline 'TOPICS=MS'] [--json FILE] [--quiet]\n"
               "          [--stats] [--stats-out FILE]\n",
               argv0);
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) throw std::runtime_error("cannot write " + path);
  f << content;
}

double parse_positive_double(const char* argv0, const std::string& flag,
                             const std::string& value) {
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0' || parsed <= 0.0) {
    std::fprintf(stderr, "error: %s expects a positive number, got '%s'\n",
                 flag.c_str(), value.c_str());
    usage(argv0);
    std::exit(2);
  }
  return parsed;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tetra;

  std::vector<std::string> baseline_files;
  std::vector<std::string> window_files;
  std::string json_path;
  bool quiet = false;
  tools::StatsOptions stats;
  sentinel::SentinelOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--baseline") {
      baseline_files.push_back(next());
    } else if (arg == "--window") {
      window_files.push_back(next());
    } else if (arg == "--alpha") {
      options.alpha = parse_positive_double(argv[0], arg, next());
    } else if (arg == "--min-samples") {
      options.min_samples =
          static_cast<std::size_t>(std::strtoull(next().c_str(), nullptr, 10));
    } else if (arg == "--period-tol") {
      options.period_tolerance = parse_positive_double(argv[0], arg, next());
    } else if (arg == "--latency-tol") {
      options.latency_tolerance = parse_positive_double(argv[0], arg, next());
    } else if (arg == "--deadline") {
      const std::string value = next();
      const auto eq = value.rfind('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 >= value.size()) {
        std::fprintf(stderr,
                     "error: --deadline expects 'TOPICS=MS', got '%s'\n",
                     value.c_str());
        usage(argv[0]);
        return 2;
      }
      const double ms =
          parse_positive_double(argv[0], arg, value.substr(eq + 1));
      options.chain_deadlines[value.substr(0, eq)] = Duration::ms_f(ms);
    } else if (arg == "--json") {
      json_path = next();
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--stats") {
      stats.summary = true;
    } else if (arg == "--stats-out") {
      stats.out_path = next();
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "error: unknown argument '%s'\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }
  if (baseline_files.empty() || window_files.empty()) {
    std::fprintf(stderr,
                 "error: at least one --baseline and one --window are "
                 "required\n");
    usage(argv[0]);
    return 2;
  }

  sentinel::ModelSentinel sentinel(options);
  for (const auto& path : baseline_files) {
    const auto segment = sentinel.ingest_baseline_file(path);
    if (!segment.ok()) {
      std::fprintf(stderr, "error: %s\n", segment.error().to_string().c_str());
      return 3;
    }
  }

  bool any_drift = false;
  std::vector<std::string> verdict_jsons;
  for (const auto& path : window_files) {
    const auto verdict = sentinel.check_file(path);
    if (!verdict.ok()) {
      std::fprintf(stderr, "error: %s\n", verdict.error().to_string().c_str());
      return 3;
    }
    any_drift = any_drift || verdict->drifted;
    verdict_jsons.push_back(sentinel::verdict_to_json(*verdict));
    if (!quiet) {
      std::printf("%s: %s (%zu findings, %zu checks)\n", path.c_str(),
                  verdict->drifted ? "DRIFT" : "clean",
                  verdict->findings.size(), verdict->checks);
      for (const auto& finding : verdict->findings) {
        std::printf("  [%s] %s: %s\n",
                    std::string(to_string(finding.kind)).c_str(),
                    finding.subject.c_str(), finding.detail.c_str());
      }
    }
  }

  if (!json_path.empty()) {
    try {
      if (verdict_jsons.size() == 1) {
        write_file(json_path, verdict_jsons.front() + "\n");
      } else {
        std::string out = "[";
        for (std::size_t i = 0; i < verdict_jsons.size(); ++i) {
          if (i > 0) out += ",";
          out += verdict_jsons[i];
        }
        out += "]\n";
        write_file(json_path, out);
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 3;
    }
  }

  // The exit status carries the verdict regardless of --quiet; a failed
  // snapshot write only surfaces when the windows were clean.
  const int stats_rc = tools::emit_stats(stats);
  return any_drift ? 1 : stats_rc;
}
