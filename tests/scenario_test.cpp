// Round-trip property tests for the scenario subsystem: randomized
// topologies with known ground truth, run on the traced substrate, and
// the synthesized model diffed against the truth — across seeds, CPU
// counts and interference; plus determinism, degenerate-spec edge cases,
// and the hand-written workloads flowing through the same validator.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <stdexcept>
#include <utility>

#include "core/model_synthesis.hpp"
#include "scenario/generator.hpp"
#include "scenario/runner.hpp"
#include "scenario/validator.hpp"
#include "trace/serialize.hpp"
#include "workloads/avp_localization.hpp"
#include "workloads/syn_app.hpp"

namespace tetra::scenario {
namespace {

// ---- randomized round-trip sweep -------------------------------------------

using SweepParam = std::tuple<int, int, bool>;  // seed, cpus, interference

class RoundTripTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(RoundTripTest, SynthesisRecoversGroundTruth) {
  const auto [seed, cpus, interference] = GetParam();

  GeneratorOptions generator_options;
  generator_options.num_cpus = cpus;
  generator_options.run_duration = Duration::ms(1200);
  const Scenario scen = ScenarioGenerator(generator_options)
                            .generate(static_cast<std::uint64_t>(seed));

  RunnerOptions runner_options;
  runner_options.interference_threads = interference ? 2 : 0;
  const ScenarioRunResult result = ScenarioRunner(runner_options).run(scen.spec);

  ASSERT_TRUE(result.model.dag.is_acyclic());
  const ValidationReport report =
      RoundTripValidator().validate(result.model, scen.ground_truth);
  EXPECT_TRUE(report.ok()) << "seed " << seed << ", cpus " << cpus
                           << ", interference " << interference << ":\n"
                           << report.to_string();
}

std::string sweep_name(const ::testing::TestParamInfo<SweepParam>& info) {
  return "seed" + std::to_string(std::get<0>(info.param)) + "_cpus" +
         std::to_string(std::get<1>(info.param)) +
         (std::get<2>(info.param) ? "_interf" : "_clean");
}

INSTANTIATE_TEST_SUITE_P(Sweep, RoundTripTest,
                         ::testing::Combine(::testing::Range(1, 21),
                                            ::testing::Values(1, 2, 4),
                                            ::testing::Bool()),
                         sweep_name);

// ---- determinism (seeding/reproducibility contract) ------------------------

TEST(ScenarioDeterminismTest, SameSeedYieldsIdenticalSpec) {
  const ScenarioGenerator generator;
  const Scenario a = generator.generate(42);
  const Scenario b = generator.generate(42);
  EXPECT_EQ(spec_to_json(a.spec), spec_to_json(b.spec));
  // Ground truth is a pure function of the spec: the DAGs must agree too.
  EXPECT_TRUE(
      RoundTripValidator().validate_dag(a.ground_truth.dag, b.ground_truth).ok());
}

TEST(ScenarioDeterminismTest, SameSeedYieldsIdenticalTrace) {
  const Scenario scen = ScenarioGenerator().generate(11);
  const ScenarioRunner runner;
  const ScenarioRunResult a = runner.run(scen.spec);
  const ScenarioRunResult b = runner.run(scen.spec);
  ASSERT_GT(a.trace.size(), 0u);
  EXPECT_EQ(trace::to_jsonl(a.trace), trace::to_jsonl(b.trace));
}

TEST(ScenarioDeterminismTest, DifferentSeedsYieldDifferentSpecs) {
  const ScenarioGenerator generator;
  const std::string a = spec_to_json(generator.generate(1).spec);
  const std::string b = spec_to_json(generator.generate(2).spec);
  EXPECT_NE(a, b);
}

// ---- generator guarantees ---------------------------------------------------

TEST(GeneratorGuaranteeTest, GeneratedSpecsAreValid) {
  const ScenarioGenerator generator;
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    const Scenario scen = generator.generate(seed);
    EXPECT_TRUE(validate_spec(scen.spec).empty()) << "seed " << seed;
  }
}

TEST(GeneratorGuaranteeTest, GroundTruthDagsAreAcyclicAndSelfLoopFree) {
  const ScenarioGenerator generator;
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    const Scenario scen = generator.generate(seed);
    EXPECT_TRUE(scen.ground_truth.dag.is_acyclic()) << "seed " << seed;
    for (const auto& edge : scen.ground_truth.dag.edges()) {
      EXPECT_NE(edge.from, edge.to) << "seed " << seed;
    }
  }
}

TEST(GeneratorGuaranteeTest, EveryGeneratedCallbackIsLive) {
  // The generator only wires callbacks that can execute, so the ground
  // truth must contain exactly one label per spec callback.
  const ScenarioGenerator generator;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const Scenario scen = generator.generate(seed);
    EXPECT_EQ(scen.ground_truth.callback_labels.size(),
              scen.spec.callback_count())
        << "seed " << seed;
  }
}

// ---- degenerate scenarios ----------------------------------------------------

ValidationReport round_trip(const ScenarioSpec& spec) {
  const GroundTruth truth = build_ground_truth(spec);
  const ScenarioRunResult result = ScenarioRunner().run(spec);
  return RoundTripValidator().validate(result.model, truth);
}

TEST(ScenarioEdgeCaseTest, ZeroSubscriptionNode) {
  ScenarioSpec spec;
  spec.name = "timers-only";
  ScenarioNodeSpec node;
  node.name = "lonely_timers";
  node.timers.push_back({Duration::ms(50), std::nullopt,
                         DurationDistribution::constant(Duration::ms_f(0.2)),
                         {publish_effect("/dangling")}});
  node.timers.push_back({Duration::ms(80), std::nullopt,
                         DurationDistribution::constant(Duration::ms_f(0.1)),
                         {}});
  spec.nodes.push_back(std::move(node));

  const ValidationReport report = round_trip(spec);
  EXPECT_TRUE(report.ok()) << report.to_string();
  const GroundTruth truth = build_ground_truth(spec);
  EXPECT_EQ(truth.dag.vertex_count(), 2u);
  EXPECT_EQ(truth.dag.edge_count(), 0u);
  EXPECT_EQ(truth.chain_count, 2u);  // two isolated single-vertex chains
}

TEST(ScenarioEdgeCaseTest, SingleNodeApp) {
  ScenarioSpec spec;
  spec.name = "single-node";
  ScenarioNodeSpec node;
  node.name = "solo";
  node.timers.push_back({Duration::ms(60), std::nullopt,
                         DurationDistribution::constant(Duration::ms_f(0.3)),
                         {publish_effect("/a")}});
  node.subscriptions.push_back(
      {"/a", DurationDistribution::constant(Duration::ms_f(0.2)),
       {publish_effect("/b")}});
  node.subscriptions.push_back(
      {"/b", DurationDistribution::constant(Duration::ms_f(0.1)), {}});
  spec.nodes.push_back(std::move(node));

  const ValidationReport report = round_trip(spec);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_EQ(build_ground_truth(spec).chain_count, 1u);  // T1 -> SC1 -> SC2
}

TEST(ScenarioEdgeCaseTest, EmptyNodeYieldsNoVertices) {
  ScenarioSpec spec;
  spec.name = "with-empty-node";
  ScenarioNodeSpec empty;
  empty.name = "shell";  // P1-only: discovered, but no callbacks ever run
  spec.nodes.push_back(std::move(empty));
  ScenarioNodeSpec active;
  active.name = "worker";
  active.timers.push_back({Duration::ms(50), std::nullopt,
                           DurationDistribution::constant(Duration::ms_f(0.2)),
                           {}});
  spec.nodes.push_back(std::move(active));

  const GroundTruth truth = build_ground_truth(spec);
  EXPECT_EQ(truth.dag.vertex_count(), 1u);
  const ValidationReport report = round_trip(spec);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(ScenarioEdgeCaseTest, StructurallyDeadCallbacksAreExcluded) {
  ScenarioSpec spec;
  spec.name = "dead-wood";
  ScenarioNodeSpec server;
  server.name = "server";
  server.services.push_back(  // service nobody calls: no vertex
      {"/unused", DurationDistribution::constant(Duration::ms_f(0.2)), {}});
  spec.nodes.push_back(std::move(server));
  ScenarioNodeSpec node;
  node.name = "mixed";
  node.timers.push_back({Duration::ms(50), std::nullopt,
                         DurationDistribution::constant(Duration::ms_f(0.2)),
                         {}});
  node.timers.push_back({Duration::sec(30), std::nullopt,  // beyond the run
                         DurationDistribution::constant(Duration::ms_f(0.2)),
                         {publish_effect("/late")}});
  node.subscriptions.push_back(  // topic nobody produces: no vertex
      {"/never", DurationDistribution::constant(Duration::ms_f(0.1)), {}});
  node.subscriptions.push_back(  // fed only by the dead timer: no vertex
      {"/late", DurationDistribution::constant(Duration::ms_f(0.1)), {}});
  node.clients.push_back(  // client no callback calls through: no vertex
      {"/unused", DurationDistribution::constant(Duration::ms_f(0.1)), {}});
  spec.nodes.push_back(std::move(node));

  const GroundTruth truth = build_ground_truth(spec);
  EXPECT_EQ(truth.callback_labels,
            (std::set<std::string>{"mixed/T1"}));
  const ValidationReport report = round_trip(spec);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(ScenarioEdgeCaseTest, EmptyTraceSynthesizesEmptyModel) {
  api::SynthesisSession session;
  session.ingest(trace::EventVector{});
  const core::TimingModel model = session.model().value();
  EXPECT_TRUE(model.node_callbacks.empty());
  EXPECT_EQ(model.dag.vertex_count(), 0u);

  // An empty spec's ground truth matches the empty model.
  const GroundTruth truth = build_ground_truth(ScenarioSpec{});
  EXPECT_TRUE(RoundTripValidator().validate(model, truth).ok());
}

TEST(ScenarioEdgeCaseTest, InvalidSpecIsRejected) {
  ScenarioSpec spec;
  ScenarioNodeSpec node;
  node.name = "bad";
  node.subscriptions.push_back(
      {"/tReply", DurationDistribution::constant(Duration::ms_f(0.1)), {}});
  spec.nodes.push_back(std::move(node));
  EXPECT_FALSE(validate_spec(spec).empty());
  EXPECT_THROW(ScenarioRunner().run(spec), std::invalid_argument);
}

// ---- validator sensitivity ---------------------------------------------------

TEST(ValidatorTest, DetectsMissingAndUnexpectedStructure) {
  const Scenario scen = ScenarioGenerator().generate(5);
  core::Dag tampered = scen.ground_truth.dag;
  core::DagVertex extra;
  extra.key = "phantom/T1";
  extra.node_name = "phantom";
  tampered.add_or_merge_vertex(extra);

  const ValidationReport report =
      RoundTripValidator().validate_dag(tampered, scen.ground_truth);
  EXPECT_FALSE(report.ok());
  ASSERT_EQ(report.unexpected_vertices.size(), 1u);
  EXPECT_EQ(report.unexpected_vertices[0], "phantom/T1");
  EXPECT_NE(report.to_string().find("phantom/T1"), std::string::npos);
}

// ---- multi-mode -------------------------------------------------------------

TEST(ScenarioModesTest, PerModeDagsAllMatchGroundTruth) {
  GeneratorOptions options;
  options.p_modes = 1.0;  // force mode variation
  const Scenario scen = ScenarioGenerator(options).generate(3);
  ASSERT_GE(scen.spec.modes.size(), 2u);

  const core::MultiModeDag modes = ScenarioRunner().run_modes(scen.spec);
  EXPECT_EQ(modes.modes().size(), scen.spec.modes.size());
  const RoundTripValidator validator;
  for (const auto& mode : modes.modes()) {
    const ValidationReport report =
        validator.validate_dag(*modes.mode_dag(mode), scen.ground_truth);
    EXPECT_TRUE(report.ok()) << "mode " << mode << ":\n" << report.to_string();
  }
  EXPECT_TRUE(
      validator.validate_dag(modes.combined(), scen.ground_truth).ok());
}

// ---- hand-written workloads through the same validator ----------------------

TEST(WorkloadRoundTripTest, SynMatchesItsGroundTruth) {
  const workloads::SynOptions options;
  ScenarioSpec spec = workloads::syn_scenario_spec(options);
  const GroundTruth truth = build_ground_truth(spec);
  // 16 callbacks; /sv3 has two callers (SC3, CL2) => 17 callback vertices,
  // plus the fusion AND junction = 18 (paper Fig. 3a).
  EXPECT_EQ(truth.dag.vertex_count(), 18u);

  const ScenarioRunResult result = ScenarioRunner().run(spec);
  const ValidationReport report =
      RoundTripValidator().validate(result.model, truth);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(WorkloadRoundTripTest, AvpMatchesItsGroundTruth) {
  workloads::AvpOptions options;
  options.run_duration = Duration::sec(2);
  ScenarioSpec spec = workloads::avp_scenario_spec(options);
  const GroundTruth truth = build_ground_truth(spec);
  // Six callbacks plus the fusion AND junction (paper Fig. 3b).
  EXPECT_EQ(truth.dag.vertex_count(), 7u);

  const ScenarioRunResult result = ScenarioRunner().run(spec);
  const ValidationReport report =
      RoundTripValidator().validate(result.model, truth);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(WorkloadRoundTripTest, BuildersExposeSpecAndGroundTruth) {
  ros2::Context ctx;
  const workloads::SynApp syn = workloads::build_syn_app(ctx);
  EXPECT_EQ(syn.spec.nodes.size(), 6u);
  EXPECT_EQ(syn.ground_truth.dag.vertex_count(), 18u);
  // Every label the ground truth predicts appears in the paper-name map.
  for (const auto& [paper_name, label] : syn.label_of) {
    EXPECT_EQ(syn.ground_truth.callback_labels.count(label), 1u)
        << paper_name << " -> " << label;
  }

  ros2::Context avp_ctx;
  workloads::AvpOptions options;
  options.run_duration = Duration::sec(1);
  const workloads::AvpApp avp = workloads::build_avp_localization(avp_ctx, options);
  EXPECT_EQ(avp.spec.nodes.size(), 5u);
  EXPECT_EQ(avp.spec.external_inputs.size(), 2u);
  EXPECT_EQ(avp.ground_truth.dag.vertex_count(), 7u);
}

// ---- mutation axes ----------------------------------------------------------

constexpr MutationKind kAllMutationKinds[] = {
    MutationKind::DropEdge, MutationKind::AddEdge, MutationKind::RetimeTimer,
    MutationKind::ScaleExecTime, MutationKind::Reprioritize};

std::vector<EffectSpec>& effects_of(ScenarioSpec& spec,
                                    const MutationResult& m) {
  for (auto& node : spec.nodes) {
    if (node.name != m.node) continue;
    switch (m.callback_kind) {
      case CallbackKind::Timer: return node.timers[m.callback_index].effects;
      case CallbackKind::Subscription:
        return node.subscriptions[m.callback_index].effects;
      case CallbackKind::Service:
        return node.services[m.callback_index].effects;
      case CallbackKind::Client:
        return node.clients[m.callback_index].effects;
    }
  }
  throw std::logic_error("mutation target not found: " + m.node);
}

DurationDistribution& demand_of(ScenarioSpec& spec, const MutationResult& m) {
  for (auto& node : spec.nodes) {
    if (node.name != m.node) continue;
    switch (m.callback_kind) {
      case CallbackKind::Timer: return node.timers[m.callback_index].demand;
      case CallbackKind::Subscription:
        return node.subscriptions[m.callback_index].demand;
      case CallbackKind::Service:
        return node.services[m.callback_index].demand;
      case CallbackKind::Client:
        return node.clients[m.callback_index].demand;
    }
  }
  throw std::logic_error("mutation target not found: " + m.node);
}

/// Undoes (or, for ScaleExecTime, normalizes away) exactly the axis the
/// mutation reports; comparing the result against the equally-normalized
/// original then proves no *other* axis moved.
std::pair<ScenarioSpec, ScenarioSpec> normalize_pair(
    const ScenarioSpec& original, const MutationResult& m) {
  ScenarioSpec base = original;
  ScenarioSpec reverted = m.spec;
  switch (m.kind) {
    case MutationKind::DropEdge: {
      auto& effects = effects_of(reverted, m);
      effects.insert(effects.begin() +
                         static_cast<std::ptrdiff_t>(m.effect_index),
                     m.removed_effect);
      break;
    }
    case MutationKind::AddEdge: {
      for (auto& node : reverted.nodes) {
        if (node.name == m.node) node.subscriptions.pop_back();
      }
      break;
    }
    case MutationKind::RetimeTimer: {
      for (auto& node : reverted.nodes) {
        if (node.name == m.node) {
          node.timers[m.callback_index].period = m.old_period;
        }
      }
      break;
    }
    case MutationKind::ScaleExecTime: {
      // Scaling rounds durations, so it cannot be inverted exactly:
      // overwrite the target demand with one fixed profile on both sides.
      const auto fixed = DurationDistribution::constant(Duration::ms(1));
      demand_of(base, m) = fixed;
      demand_of(reverted, m) = fixed;
      break;
    }
    case MutationKind::Reprioritize: {
      for (auto& node : reverted.nodes) {
        if (node.name == m.node) node.priority = m.old_priority;
      }
      break;
    }
  }
  return {std::move(base), std::move(reverted)};
}

std::set<std::pair<std::string, std::string>> truth_edges(
    const GroundTruth& truth) {
  std::set<std::pair<std::string, std::string>> out;
  for (const auto& edge : truth.dag.edges()) out.insert({edge.from, edge.to});
  return out;
}

std::set<std::string> truth_vertices(const GroundTruth& truth) {
  std::set<std::string> out;
  for (const auto& vertex : truth.dag.vertices()) out.insert(vertex.key);
  return out;
}

TEST(MutationTest, KindNamesRoundTrip) {
  for (const auto kind : kAllMutationKinds) {
    const auto parsed = mutation_kind_from_string(to_string(kind));
    ASSERT_TRUE(parsed.has_value()) << to_string(kind);
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(mutation_kind_from_string("definitely-not-a-kind"));
  EXPECT_FALSE(mutation_kind_from_string(""));
}

TEST(MutationTest, DeterministicInSeedAndKind) {
  const ScenarioGenerator generator;
  const Scenario scen = generator.generate(11);
  for (const auto kind : kAllMutationKinds) {
    const MutationResult a = generator.mutate(scen.spec, 3, kind);
    const MutationResult b = generator.mutate(scen.spec, 3, kind);
    EXPECT_EQ(a.applied, b.applied);
    EXPECT_EQ(a.description, b.description);
    EXPECT_EQ(spec_to_json(a.spec), spec_to_json(b.spec));
  }
}

// Property sweep: every applied mutant is a valid spec, changes exactly
// its labeled axis (undoing that one axis restores the original spec
// byte-for-byte), and changes the ground-truth DAG structure iff the kind
// is structural.
TEST(MutationTest, EachKindChangesExactlyItsAxis) {
  const ScenarioGenerator generator;
  std::map<MutationKind, int> applied_count;
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    const Scenario scen = generator.generate(seed);
    const auto base_edges = truth_edges(scen.ground_truth);
    const auto base_vertices = truth_vertices(scen.ground_truth);
    for (const auto kind : kAllMutationKinds) {
      const MutationResult m = generator.mutate(scen.spec, seed + 100, kind);
      if (!m.applied) {
        EXPECT_EQ(spec_to_json(m.spec), spec_to_json(scen.spec))
            << "unapplied mutation must return the spec unchanged";
        continue;
      }
      ++applied_count[kind];
      EXPECT_EQ(m.kind, kind);
      EXPECT_TRUE(validate_spec(m.spec).empty())
          << "seed " << seed << " kind " << to_string(kind);
      EXPECT_NE(spec_to_json(m.spec), spec_to_json(scen.spec));

      const auto [base, reverted] = normalize_pair(scen.spec, m);
      EXPECT_EQ(spec_to_json(reverted), spec_to_json(base))
          << "seed " << seed << " kind " << to_string(kind) << ": "
          << m.description;

      const GroundTruth mutated = build_ground_truth(m.spec);
      const bool structural = kind == MutationKind::DropEdge ||
                              kind == MutationKind::AddEdge;
      const bool dag_changed = truth_edges(mutated) != base_edges ||
                               truth_vertices(mutated) != base_vertices;
      EXPECT_EQ(dag_changed, structural)
          << "seed " << seed << " kind " << to_string(kind) << ": "
          << m.description;
    }
  }
  // The sweep only proves the properties if the axes actually fire: the
  // non-structural kinds always find a target, the structural ones on the
  // vast majority of generated topologies.
  EXPECT_EQ(applied_count[MutationKind::RetimeTimer], 25);
  EXPECT_EQ(applied_count[MutationKind::ScaleExecTime], 25);
  EXPECT_EQ(applied_count[MutationKind::Reprioritize], 25);
  EXPECT_GE(applied_count[MutationKind::DropEdge], 15);
  EXPECT_GE(applied_count[MutationKind::AddEdge], 20);
}

TEST(MutationTest, RetimeKeepsPeriodSampled) {
  const ScenarioGenerator generator;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const Scenario scen = generator.generate(seed);
    const MutationResult m =
        generator.mutate(scen.spec, seed, MutationKind::RetimeTimer);
    if (!m.applied) continue;
    EXPECT_NE(m.new_period, m.old_period);
    // First fire lands one period in; at least a few instances must fit.
    EXPECT_LE(m.new_period.count_ns() * 4, scen.spec.run_duration.count_ns());
  }
}

}  // namespace
}  // namespace tetra::scenario
