// Multi-threaded executor modeling, end to end: substrate semantics
// (worker concurrency, callback-group serialization, reentrancy),
// synthesis (per-worker extraction merge, concurrency inference), the
// group-aware round-trip validation, and the prediction layer's
// worker-count knob — plus the MT generator golden (tests/data/
// mt_seed7.json pins the executor dimension of the seed-7 scenario).
//
// Regenerate the golden after an intentional generator change:
//   tetra_scenario --seed 7 --count 1 --mt --json tests/data/mt_seed7.json
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "analysis/chains.hpp"
#include "core/concurrency.hpp"
#include "core/model_synthesis.hpp"
#include "predict/what_if.hpp"
#include "ros2/context.hpp"
#include "scenario/generator.hpp"
#include "scenario/runner.hpp"
#include "scenario/validator.hpp"

namespace tetra {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f.good()) << "missing fixture " << path;
  std::ostringstream out;
  out << f.rdbuf();
  return out.str();
}

// ---- substrate --------------------------------------------------------------

TEST(MtExecutorTest, WorkersGetDistinctPidsAndP1Each) {
  ros2::Context ctx;
  std::map<Pid, std::string> p1;
  ctx.hooks().rmw_create_node = [&p1](TimePoint, Pid pid,
                                      const std::string& name) {
    p1[pid] = name;
  };
  ros2::Node& node = ctx.create_node({.name = "mt", .executor_threads = 3});
  EXPECT_EQ(node.executor().worker_count(), 3);
  EXPECT_EQ(p1.size(), 3u);
  std::set<Pid> pids;
  for (const auto& [pid, name] : p1) {
    EXPECT_EQ(name, "mt");
    pids.insert(pid);
  }
  EXPECT_EQ(pids.size(), 3u);
  EXPECT_EQ(node.pid(), *pids.begin());
}

TEST(MtExecutorTest, InvalidWorkerCountRejected) {
  ros2::Context ctx;
  EXPECT_THROW(ctx.create_node({.name = "bad", .executor_threads = 0}),
               std::invalid_argument);
}

TEST(MtExecutorTest, DistinctGroupsRunConcurrently) {
  ros2::Context ctx;
  ros2::Node& node = ctx.create_node({.name = "mt", .executor_threads = 2});
  ros2::CallbackGroup& other =
      node.create_callback_group(ros2::CallbackGroupKind::MutuallyExclusive);
  // Two timers, same period, demand longer than half the period: with one
  // worker (or one group) they would serialize; on two workers in two
  // groups they overlap.
  const auto demand = DurationDistribution::constant(Duration::ms(8));
  node.create_timer(Duration::ms(10), ros2::Plan::just(demand));
  node.create_timer(Duration::ms(10), ros2::Plan::just(demand), std::nullopt,
                    &other);
  ctx.run_for(Duration::ms(200));
  EXPECT_GE(node.executor().max_in_flight(), 2);
  EXPECT_GE(node.callbacks_executed(), 30u);
}

TEST(MtExecutorTest, OneMutuallyExclusiveGroupSerializes) {
  ros2::Context ctx;
  ros2::Node& node = ctx.create_node({.name = "mt", .executor_threads = 4});
  // Same wait set as above but both timers in the default group: workers
  // idle while the group is claimed, so nothing ever overlaps.
  const auto demand = DurationDistribution::constant(Duration::ms(8));
  node.create_timer(Duration::ms(10), ros2::Plan::just(demand));
  node.create_timer(Duration::ms(10), ros2::Plan::just(demand));
  ctx.run_for(Duration::ms(200));
  EXPECT_EQ(node.executor().max_in_flight(), 1);
}

TEST(MtExecutorTest, ReentrantGroupOverlapsItself) {
  ros2::Context ctx;
  ros2::Node& node = ctx.create_node({.name = "re", .executor_threads = 2});
  ros2::CallbackGroup& group =
      node.create_callback_group(ros2::CallbackGroupKind::Reentrant);
  // Demand beyond the period: firings pile up and a reentrant callback
  // may run concurrently with itself.
  node.create_timer(Duration::ms(10),
                    ros2::Plan::just(
                        DurationDistribution::constant(Duration::ms(15))),
                    std::nullopt, &group);
  ctx.run_for(Duration::ms(300));
  EXPECT_GE(node.executor().max_in_flight(), 2);
}

TEST(MtExecutorTest, SingleThreadedExecutorUnchanged) {
  ros2::Context ctx;
  ros2::Node& node = ctx.create_node({.name = "st"});
  const auto demand = DurationDistribution::constant(Duration::ms(8));
  node.create_timer(Duration::ms(10), ros2::Plan::just(demand));
  node.create_timer(Duration::ms(10), ros2::Plan::just(demand));
  ctx.run_for(Duration::ms(200));
  EXPECT_EQ(node.executor().worker_count(), 1);
  EXPECT_EQ(node.executor().max_in_flight(), 1);
}

TEST(MtExecutorTest, SyncMembersMustShareMutexGroup) {
  ros2::Context ctx;
  ros2::Node& node = ctx.create_node({.name = "sync", .executor_threads = 2});
  ros2::CallbackGroup& reentrant =
      node.create_callback_group(ros2::CallbackGroupKind::Reentrant);
  const auto demand = DurationDistribution::constant(Duration::ms(1));
  ros2::Subscription& a = node.create_subscription("/a", ros2::Plan::just(demand));
  ros2::Subscription& b = node.create_subscription("/b", ros2::Plan::just(demand),
                                                   &reentrant);
  ros2::Publisher& out = node.create_publisher("/fused");
  EXPECT_THROW(node.create_sync_group({&a, &b}, demand, out),
               std::invalid_argument);
}

// ---- designed heavy-load scenario ------------------------------------------

/// One MT node with two mutually-exclusive groups under sustained load
/// (every cross-group pair overlaps many times over the run), plus a
/// reentrant-group node: the concurrency inference must recover the
/// partition exactly.
scenario::ScenarioSpec mt_load_spec() {
  using scenario::GroupPolicy;
  scenario::ScenarioSpec spec;
  spec.name = "mt-load";
  spec.seed = 99;
  spec.num_cpus = 8;
  spec.run_duration = Duration::sec(2);

  scenario::ScenarioNodeSpec node;
  node.name = "mt";
  node.executor_threads = 3;
  node.callback_groups.push_back({GroupPolicy::MutuallyExclusive});  // g1
  // Group 0: T1 -> /a, SC1 on /b. Group 1: T2 -> /b, SC2 on /a.
  scenario::TimerSpec t1;
  t1.period = Duration::ms(20);
  t1.demand = DurationDistribution::uniform(Duration::ms(8), Duration::ms(12));
  t1.effects.push_back(scenario::publish_effect("/a"));
  t1.group = 0;
  node.timers.push_back(t1);
  scenario::TimerSpec t2 = t1;
  t2.effects = {scenario::publish_effect("/b")};
  t2.group = 1;
  node.timers.push_back(t2);
  scenario::SubscriptionSpec sc1;
  sc1.topic = "/b";
  sc1.demand = DurationDistribution::uniform(Duration::ms(12), Duration::ms(18));
  sc1.group = 0;
  node.subscriptions.push_back(sc1);
  scenario::SubscriptionSpec sc2 = sc1;
  sc2.topic = "/a";
  sc2.group = 1;
  node.subscriptions.push_back(sc2);
  spec.nodes.push_back(std::move(node));

  scenario::ScenarioNodeSpec re;
  re.name = "re";
  re.executor_threads = 2;
  re.callback_groups.push_back({GroupPolicy::Reentrant});  // g1
  scenario::TimerSpec t3;
  t3.period = Duration::ms(30);
  t3.demand = DurationDistribution::uniform(Duration::ms(30), Duration::ms(45));
  t3.group = 1;
  re.timers.push_back(t3);
  spec.nodes.push_back(std::move(re));
  return spec;
}

core::TimingModel synthesize_mt_load() {
  const scenario::ScenarioSpec spec = mt_load_spec();
  return scenario::ScenarioRunner().run(spec).model;
}

TEST(MtInferenceTest, RecoversGroupsReentrancyAndWorkers) {
  const core::TimingModel model = synthesize_mt_load();
  const auto concurrency = core::infer_concurrency(model.node_callbacks);

  ASSERT_EQ(concurrency.count("mt"), 1u);
  const core::NodeConcurrency& mt = concurrency.at("mt");
  EXPECT_GE(mt.observed_workers, 2);
  EXPECT_LE(mt.observed_workers, 3);
  ASSERT_EQ(mt.by_label.size(), 4u);
  // Exact partition: {T1, SC1} vs {T2, SC2}.
  EXPECT_EQ(mt.group_count, 2);
  EXPECT_EQ(mt.by_label.at("mt/T1").group, mt.by_label.at("mt/SC1").group);
  EXPECT_EQ(mt.by_label.at("mt/T2").group, mt.by_label.at("mt/SC2").group);
  EXPECT_NE(mt.by_label.at("mt/T1").group, mt.by_label.at("mt/T2").group);
  for (const auto& [label, info] : mt.by_label) {
    EXPECT_FALSE(info.reentrant) << label;
  }

  ASSERT_EQ(concurrency.count("re"), 1u);
  const core::NodeConcurrency& re = concurrency.at("re");
  EXPECT_TRUE(re.by_label.at("re/T1").reentrant);
  EXPECT_EQ(re.observed_workers, 2);

  // The DAG vertices carry the learned constraints.
  const core::DagVertex* t1 = model.dag.find_vertex("mt/T1");
  const core::DagVertex* t2 = model.dag.find_vertex("mt/T2");
  ASSERT_NE(t1, nullptr);
  ASSERT_NE(t2, nullptr);
  EXPECT_NE(t1->exec_group, t2->exec_group);
  EXPECT_GE(t1->node_workers, 2);
  EXPECT_TRUE(model.dag.find_vertex("re/T1")->reentrant);
}

TEST(MtInferenceTest, GroupAwareRoundTripValidates) {
  const scenario::ScenarioSpec spec = mt_load_spec();
  const scenario::GroundTruth truth = scenario::build_ground_truth(spec);
  ASSERT_EQ(truth.concurrency.at("mt").executor_threads, 3);
  EXPECT_EQ(truth.concurrency.at("re").reentrant_labels.count("re/T1"), 1u);

  const scenario::ScenarioRunResult result = scenario::ScenarioRunner().run(spec);
  const scenario::ValidationReport report =
      scenario::RoundTripValidator().validate(result.model, truth);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(MtInferenceTest, ValidatorFlagsFalseConcurrency) {
  const scenario::ScenarioSpec spec = mt_load_spec();
  const scenario::GroundTruth truth = scenario::build_ground_truth(spec);
  const scenario::ScenarioRunResult result = scenario::ScenarioRunner().run(spec);

  // Tamper: split a true mutually-exclusive pair into separate groups —
  // the model would claim concurrency the executor forbids.
  core::Dag tampered = result.model.dag;
  core::DagVertex* sc1 = tampered.find_vertex("mt/SC1");
  ASSERT_NE(sc1, nullptr);
  sc1->exec_group = 7;
  const scenario::ValidationReport split_report =
      scenario::RoundTripValidator().validate_dag(tampered, truth);
  EXPECT_FALSE(split_report.ok());
  EXPECT_FALSE(split_report.concurrency_mismatches.empty());

  // Tamper: claim reentrancy for a mutually-exclusive callback.
  core::Dag tampered2 = result.model.dag;
  tampered2.find_vertex("mt/T1")->reentrant = true;
  EXPECT_FALSE(scenario::RoundTripValidator()
                   .validate_dag(tampered2, truth)
                   .concurrency_mismatches.empty());

  // Tamper: more workers than the executor has.
  core::Dag tampered3 = result.model.dag;
  tampered3.find_vertex("mt/T1")->node_workers = 9;
  EXPECT_FALSE(scenario::RoundTripValidator()
                   .validate_dag(tampered3, truth)
                   .concurrency_mismatches.empty());
}

TEST(MtInferenceTest, WorkerListMergeUnifiesCallbacks) {
  const core::TimingModel model = synthesize_mt_load();
  // One list per node (not per worker PID), every callback exactly once.
  std::set<std::string> nodes;
  for (const auto& list : model.node_callbacks) {
    EXPECT_TRUE(nodes.insert(list.node_name).second)
        << "duplicate list for node " << list.node_name;
  }
  const core::CallbackRecord* t1 = model.find_callback("mt/T1");
  ASSERT_NE(t1, nullptr);
  // ~100 firings in 2s at 20ms; instances survive the merge re-sort.
  EXPECT_GE(t1->instances(), 80u);
  for (std::size_t i = 1; i < t1->start_times.size(); ++i) {
    EXPECT_LE(t1->start_times[i - 1], t1->start_times[i]);
  }
  EXPECT_EQ(t1->start_times.size(), t1->end_times.size());
}

// ---- randomized MT round-trip sweep ----------------------------------------

TEST(MtRoundTripTest, ForcedMtSweepMatchesGroundTruth) {
  scenario::GeneratorOptions options;
  options.p_multithreaded = 1.0;
  const scenario::ScenarioGenerator generator(options);
  const scenario::ScenarioRunner runner;
  const scenario::RoundTripValidator validator;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const scenario::Scenario scen = generator.generate(seed);
    bool any_mt = false;
    for (const auto& node : scen.spec.nodes) {
      any_mt |= node.executor_threads > 1;
    }
    EXPECT_TRUE(any_mt) << "seed " << seed;
    const scenario::ScenarioRunResult result = runner.run(scen.spec);
    ASSERT_TRUE(result.model.dag.is_acyclic());
    const scenario::ValidationReport report =
        validator.validate(result.model, scen.ground_truth);
    EXPECT_TRUE(report.ok()) << "seed " << seed << ":\n" << report.to_string();
  }
}

TEST(MtRoundTripTest, GeneratedMtSpecsAreValidAndDeterministic) {
  scenario::GeneratorOptions options;
  options.p_multithreaded = 1.0;
  const scenario::ScenarioGenerator generator(options);
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const scenario::Scenario scen = generator.generate(seed);
    EXPECT_TRUE(validate_spec(scen.spec).empty()) << "seed " << seed;
    EXPECT_EQ(spec_to_json(scen.spec),
              spec_to_json(generator.generate(seed).spec));
  }
}

TEST(MtRoundTripTest, ExecutorDimensionLeavesTopologyUntouched) {
  // The executor dimension draws from its own stream: forcing it on or
  // off must not reshuffle the generated topology.
  scenario::GeneratorOptions st;
  st.p_multithreaded = 0.0;
  scenario::GeneratorOptions mt;
  mt.p_multithreaded = 1.0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    scenario::ScenarioSpec a = scenario::ScenarioGenerator(st).generate(seed).spec;
    scenario::ScenarioSpec b = scenario::ScenarioGenerator(mt).generate(seed).spec;
    // Neutralize the executor dimension; everything else must be equal.
    for (auto& node : b.nodes) {
      node.executor_threads = 1;
      node.callback_groups.clear();
      for (auto& t : node.timers) t.group = 0;
      for (auto& s : node.subscriptions) s.group = 0;
      for (auto& v : node.services) v.group = 0;
      for (auto& c : node.clients) c.group = 0;
    }
    EXPECT_EQ(spec_to_json(a), spec_to_json(b)) << "seed " << seed;
  }
}

// ---- prediction: the worker-count knob -------------------------------------

TEST(MtPredictionTest, WorkerKnobIsMonotone) {
  const core::TimingModel model = synthesize_mt_load();
  predict::PredictionConfig base;
  base.horizon = Duration::sec(8);

  auto worst_mean_ms = [&](int workers) {
    predict::PredictionConfig config = base;
    config.workers["mt"] = workers;
    const predict::PredictionResult result =
        predict::ModelSimulator(model.dag, config).predict();
    double worst = 0.0;
    for (const auto& chain : result.chains) {
      if (chain.latency.complete == 0) continue;
      worst = std::max(worst, chain.mean().to_ms());
    }
    return worst;
  };

  const double one = worst_mean_ms(1);
  const double two = worst_mean_ms(2);
  const double three = worst_mean_ms(3);
  // Fewer workers can only serialize more: latency is monotone
  // non-increasing in the worker count, and the fully serialized
  // deployment is strictly worse under this load.
  EXPECT_GE(one, two * 1.05);
  EXPECT_GE(two, three * 0.999);
}

TEST(MtPredictionTest, ExplorerRanksWorkerSweep) {
  const core::TimingModel model = synthesize_mt_load();
  predict::PredictionConfig base;
  base.horizon = Duration::sec(8);
  predict::WhatIfExplorer explorer(model.dag, base);
  explorer.add_baseline().sweep_workers("mt", {1, 2, 3});
  ASSERT_EQ(explorer.candidate_count(), 4u);
  const std::vector<predict::WhatIfOutcome> outcomes =
      explorer.explore(predict::Objective::WorstChainMean);
  ASSERT_EQ(outcomes.size(), 4u);
  // The serialized deployment must rank last.
  EXPECT_EQ(outcomes.back().candidate.name, "mt@1w");
  for (std::size_t i = 1; i < outcomes.size(); ++i) {
    EXPECT_LE(outcomes[i - 1].score_ms, outcomes[i].score_ms);
  }
}

// ---- golden -----------------------------------------------------------------

// The MT-forced seed-7 spec (executor dimension included) is pinned. The
// generator draws through libstdc++'s <random>; as with the other golden
// fixtures the byte comparison is scoped to libstdc++ hosts.
#if defined(__GLIBCXX__)
TEST(MtGoldenTest, ForcedMtSeed7SpecMatchesFixture) {
  scenario::GeneratorOptions options;
  options.p_multithreaded = 1.0;
  const scenario::Scenario scen =
      scenario::ScenarioGenerator(options).generate(7);
  const std::string golden =
      read_file(std::string(TETRA_TEST_DATA_DIR) + "/mt_seed7.json");
  EXPECT_EQ(scenario::spec_to_json(scen.spec), golden)
      << "regenerate with: tetra_scenario --seed 7 --count 1 --mt "
         "--json tests/data/mt_seed7.json";
}
#endif

}  // namespace
}  // namespace tetra
