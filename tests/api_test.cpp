// The session-based streaming synthesis API: lifecycle, the structured
// error model, and the core streaming guarantee — splitting any trace
// into K segments and ingesting them in shuffled order yields a model
// identical to whole-trace synthesis (property-tested across scenario
// generator seeds plus the seed7 golden trace), while per-trace worker
// pools and incremental re-synthesis leave results unchanged.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "api/session.hpp"
#include "core/model_synthesis.hpp"
#include "scenario/generator.hpp"
#include "scenario/runner.hpp"
#include "trace/database.hpp"
#include "trace/event_view.hpp"
#include "trace/serialize.hpp"

namespace tetra::api {
namespace {

// -- model comparison -------------------------------------------------------

void expect_same_dag(const core::Dag& a, const core::Dag& b,
                     const std::string& what) {
  ASSERT_EQ(a.vertex_count(), b.vertex_count()) << what;
  ASSERT_EQ(a.edge_count(), b.edge_count()) << what;
  for (const auto& vertex : a.vertices()) {
    const core::DagVertex* other = b.find_vertex(vertex.key);
    ASSERT_NE(other, nullptr) << what << ": missing vertex " << vertex.key;
    EXPECT_EQ(vertex.kind, other->kind) << what << ": " << vertex.key;
    EXPECT_EQ(vertex.in_topic, other->in_topic) << what << ": " << vertex.key;
    EXPECT_EQ(vertex.out_topics, other->out_topics)
        << what << ": " << vertex.key;
    EXPECT_EQ(vertex.instance_count, other->instance_count)
        << what << ": " << vertex.key;
    EXPECT_EQ(vertex.is_and_junction, other->is_and_junction)
        << what << ": " << vertex.key;
    EXPECT_EQ(vertex.is_or_junction, other->is_or_junction)
        << what << ": " << vertex.key;
    EXPECT_EQ(vertex.stats.count(), other->stats.count())
        << what << ": " << vertex.key;
    EXPECT_EQ(vertex.mbcet().count_ns(), other->mbcet().count_ns())
        << what << ": " << vertex.key;
    EXPECT_EQ(vertex.macet().count_ns(), other->macet().count_ns())
        << what << ": " << vertex.key;
    EXPECT_EQ(vertex.mwcet().count_ns(), other->mwcet().count_ns())
        << what << ": " << vertex.key;
  }
  auto edges_a = a.edges();
  auto edges_b = b.edges();
  std::sort(edges_a.begin(), edges_a.end());
  std::sort(edges_b.begin(), edges_b.end());
  EXPECT_EQ(edges_a, edges_b) << what;
}

// -- segmentation helpers ---------------------------------------------------

/// Splits into ~k contiguous chunks without ever separating events that
/// share a timestamp (cross-segment ties would make the shuffled k-way
/// merge order legitimately ambiguous).
std::vector<trace::EventVector> split_segments(const trace::EventVector& events,
                                               std::size_t k) {
  std::vector<trace::EventVector> out;
  const std::size_t target = std::max<std::size_t>(1, events.size() / k);
  std::size_t i = 0;
  while (i < events.size()) {
    std::size_t end = std::min(events.size(), i + target);
    while (end < events.size() && events[end].time == events[end - 1].time) {
      ++end;
    }
    out.emplace_back(events.begin() + static_cast<std::ptrdiff_t>(i),
                     events.begin() + static_cast<std::ptrdiff_t>(end));
    i = end;
  }
  return out;
}

core::TimingModel synthesize_whole(const trace::EventVector& events) {
  SynthesisSession session;
  session.ingest(events);
  return session.model().value();
}

core::TimingModel synthesize_segmented(const trace::EventVector& events,
                                       std::size_t k, std::uint64_t shuffle_seed) {
  std::vector<trace::EventVector> segments = split_segments(events, k);
  std::mt19937_64 rng(shuffle_seed);
  std::shuffle(segments.begin(), segments.end(), rng);
  SynthesisSession session(
      SynthesisConfig().merge_strategy(MergeStrategy::MergeTraces));
  for (auto& segment : segments) {
    session.ingest(std::move(segment), {.trace_id = "t", .mode = ""});
  }
  return session.model().value();
}

trace::EventVector scenario_trace(std::uint64_t seed) {
  const scenario::Scenario scen = scenario::ScenarioGenerator().generate(seed);
  return scenario::ScenarioRunner().run(scen.spec).trace;
}

// -- lifecycle & error model ------------------------------------------------

TEST(SynthesisSessionTest, EmptySessionReportsTypedError) {
  SynthesisSession session;
  const Result<core::TimingModel> result = session.model();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::EmptySession);
  EXPECT_THROW(result.value(), std::logic_error);
}

TEST(SynthesisSessionTest, UnknownTraceAndMissingFileErrors) {
  SynthesisSession session;
  EXPECT_EQ(session.trace_model("nope").error().code, ErrorCode::UnknownTrace);
  EXPECT_EQ(session.merged_events("nope").error().code,
            ErrorCode::UnknownTrace);
  const auto io = session.ingest_file("/nonexistent/trace.jsonl");
  ASSERT_FALSE(io.ok());
  EXPECT_EQ(io.error().code, ErrorCode::Io);
  EXPECT_EQ(io.error().context, "/nonexistent/trace.jsonl");
}

// -- malformed JSONL ingestion ----------------------------------------------

std::string write_temp_trace(const std::string& name,
                             const std::string& content) {
  const std::string path = ::testing::TempDir() + name;
  std::ofstream f(path, std::ios::trunc | std::ios::binary);
  EXPECT_TRUE(f.good()) << path;
  f << content;
  return path;
}

constexpr const char* kValidLine =
    R"({"t":1000,"pid":1004,"probe":"P5","type":"cb_start","kind":"subscriber"})";

/// Ingesting the file must fail with a typed Io error naming the path,
/// and leave the session empty (the bad segment is rejected whole).
void expect_io_rejection(const std::string& name, const std::string& content) {
  SynthesisSession session;
  const auto path = write_temp_trace(name, content);
  const auto result = session.ingest_file(path);
  ASSERT_FALSE(result.ok()) << name;
  EXPECT_EQ(result.error().code, ErrorCode::Io) << name;
  EXPECT_EQ(result.error().context, path) << name;
  EXPECT_EQ(session.event_count(), 0u) << name;
  EXPECT_EQ(session.segment_count(), 0u) << name;
}

TEST(MalformedIngestionTest, TruncatedLineIsTypedIoError) {
  expect_io_rejection(
      "truncated.jsonl",
      std::string(kValidLine) + "\n" +
          R"({"t":2000,"pid":1004,"probe":"P5","ty)" + "\n");
}

TEST(MalformedIngestionTest, NanTimestampIsTypedIoError) {
  // NaN is not valid JSON; the parser must reject the literal instead of
  // smuggling a NaN into the timestamp field.
  expect_io_rejection(
      "nan_ts.jsonl",
      R"({"t":NaN,"pid":1004,"probe":"P5","type":"cb_start","kind":"timer"})"
      "\n");
}

TEST(MalformedIngestionTest, InfiniteTimestampIsTypedIoError) {
  // 1e999 parses as a double that overflows to infinity; converting it to
  // an int64 timestamp must be a typed error, not an undefined cast.
  expect_io_rejection(
      "inf_ts.jsonl",
      R"({"t":1e999,"pid":1004,"probe":"P5","type":"cb_start","kind":"timer"})"
      "\n");
}

TEST(MalformedIngestionTest, OverflowIntegerTimestampIsTypedIoError) {
  // Past int64 range the parser falls back to double; the value is then
  // not representable as a timestamp.
  expect_io_rejection(
      "overflow_ts.jsonl",
      R"({"t":99999999999999999999999999999999999999,"pid":1004,)"
      R"("probe":"P5","type":"cb_start","kind":"timer"})"
      "\n");
}

TEST(MalformedIngestionTest, WrongTypeTimestampIsTypedIoError) {
  expect_io_rejection(
      "string_ts.jsonl",
      R"({"t":"soon","pid":1004,"probe":"P5","type":"cb_start","kind":"timer"})"
      "\n");
}

TEST(MalformedIngestionTest, DuplicateEventLinesDoNotCrash) {
  // A recorder hiccup that repeats event lines (same ids and timestamps)
  // must flow through ingestion and synthesis without crashing: either a
  // model comes back or a typed error does.
  const std::string fixture =
      std::string(TETRA_TEST_DATA_DIR) + "/scenario_seed7_trace.jsonl";
  const trace::EventVector original = trace::read_jsonl_file(fixture);
  trace::EventVector doubled = original;
  doubled.insert(doubled.end(), original.begin(), original.end());

  SynthesisSession session;
  const auto segment = session.ingest(std::move(doubled));
  ASSERT_TRUE(segment.ok()) << segment.error().to_string();
  EXPECT_EQ(segment->event_count, 2 * original.size());
  EXPECT_FALSE(segment->arrived_sorted);

  const auto model = session.model();
  if (model.ok()) {
    EXPECT_GT(model->dag.vertex_count(), 0u);
  } else {
    EXPECT_NE(model.error().code, ErrorCode::None);
  }
}

TEST(SynthesisSessionTest, AutoTraceIdsNeverCollideWithExplicitIds) {
  SynthesisSession session;
  const trace::EventVector events = scenario_trace(2);
  ASSERT_TRUE(session.ingest(events, {.trace_id = "trace-0", .mode = ""}).ok());
  const auto info = session.ingest(events);  // auto-named: must be fresh
  ASSERT_TRUE(info.ok());
  EXPECT_NE(info->trace_id, "trace-0");
  EXPECT_EQ(session.trace_count(), 2u);
}

TEST(SynthesisSessionTest, ConflictingModeTagsAreRejected) {
  SynthesisSession session;
  const trace::EventVector events = scenario_trace(3);
  ASSERT_TRUE(session.ingest(events, {.trace_id = "r", .mode = "city"}).ok());
  const auto conflict =
      session.ingest(events, {.trace_id = "r", .mode = "highway"});
  ASSERT_FALSE(conflict.ok());
  EXPECT_EQ(conflict.error().code, ErrorCode::InvalidArgument);
}

TEST(SynthesisSessionTest, IngestRecordsSegmentDiagnostics) {
  SynthesisSession session;
  trace::EventVector events = scenario_trace(4);
  std::reverse(events.begin(), events.end());  // force re-sorting
  const auto info = session.ingest(events, {.trace_id = "run-a", .mode = ""});
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->trace_id, "run-a");
  EXPECT_EQ(info->event_count, events.size());
  EXPECT_FALSE(info->arrived_sorted);
  EXPECT_EQ(session.segment_count(), 1u);
  EXPECT_EQ(session.trace_count(), 1u);
  EXPECT_EQ(session.event_count(), events.size());
  session.clear();
  EXPECT_EQ(session.segment_count(), 0u);
  EXPECT_EQ(session.model().error().code, ErrorCode::EmptySession);
}

TEST(SynthesisSessionTest, ReleaseEventsKeepsModelAndSealsTrace) {
  SynthesisSession session;
  const trace::EventVector events = scenario_trace(5);
  session.ingest(events, {.trace_id = "r", .mode = ""});
  const core::TimingModel before = session.trace_model("r").value();
  const auto freed = session.release_events("r");
  ASSERT_TRUE(freed.ok());
  EXPECT_EQ(*freed, events.size());
  // Cached model still served; events gone; re-ingest rejected.
  expect_same_dag(before.dag, session.trace_model("r").value().dag, "sealed");
  EXPECT_EQ(session.merged_events("r").error().code,
            ErrorCode::InvalidArgument);
  EXPECT_EQ(session.ingest(events, {.trace_id = "r", .mode = ""}).error().code,
            ErrorCode::InvalidArgument);

  SynthesisSession merge_traces(
      SynthesisConfig().merge_strategy(MergeStrategy::MergeTraces));
  merge_traces.ingest(events, {.trace_id = "r", .mode = ""});
  EXPECT_EQ(merge_traces.release_events("r").error().code,
            ErrorCode::InvalidArgument);
}

TEST(SynthesisSessionTest, DatabaseIngestKeepsRunsAndModes) {
  trace::TraceDatabase db;
  const trace::EventVector city = scenario_trace(6);
  const trace::EventVector highway = scenario_trace(8);
  db.store({"run-1", 0}, city, "city");
  db.store({"run-2", 0}, highway, "highway");

  SynthesisSession session;
  const auto infos = session.ingest_database(db);
  ASSERT_TRUE(infos.ok());
  ASSERT_EQ(infos->size(), 2u);
  EXPECT_EQ((*infos)[0].trace_id, "run-1");
  EXPECT_EQ((*infos)[0].mode, "city");

  const core::MultiModeDag multi = session.multi_mode_model().value();
  const std::vector<std::string> modes = multi.modes();
  EXPECT_NE(std::find(modes.begin(), modes.end(), "city"), modes.end());
  EXPECT_NE(std::find(modes.begin(), modes.end(), "highway"), modes.end());
  expect_same_dag(*multi.mode_dag("city"), synthesize_whole(city).dag,
                  "db city mode");
}

// -- incremental re-synthesis ----------------------------------------------

TEST(SynthesisSessionTest, IncrementalIngestMatchesFromScratch) {
  const trace::EventVector first = scenario_trace(10);
  const trace::EventVector second = scenario_trace(12);

  SynthesisSession incremental;
  incremental.ingest(first, {.trace_id = "a", .mode = ""});
  incremental.model().value();  // synthesize, cache
  incremental.ingest(second, {.trace_id = "b", .mode = ""});
  const core::TimingModel stepwise = incremental.model().value();

  SynthesisSession batch;
  batch.ingest(first, {.trace_id = "a", .mode = ""});
  batch.ingest(second, {.trace_id = "b", .mode = ""});
  expect_same_dag(stepwise.dag, batch.model().value().dag, "incremental");
}

TEST(SynthesisSessionTest, WorkerPoolMatchesSequential) {
  SynthesisSession sequential(SynthesisConfig().threads(1));
  SynthesisSession pooled(SynthesisConfig().threads(4));
  for (std::uint64_t seed = 20; seed < 26; ++seed) {
    const trace::EventVector events = scenario_trace(seed);
    const IngestOptions opts{.trace_id = "run-" + std::to_string(seed),
                             .mode = ""};
    sequential.ingest(events, opts);
    pooled.ingest(events, opts);
  }
  expect_same_dag(sequential.model().value().dag, pooled.model().value().dag,
                  "worker pool");
}

// -- segmented-ingestion equivalence property -------------------------------

TEST(SegmentedIngestionProperty, ShuffledSegmentsMatchWholeTrace) {
  // >= 20 generator seeds; K and the shuffle vary per seed.
  for (std::uint64_t seed = 1; seed <= 22; ++seed) {
    const trace::EventVector events = scenario_trace(seed);
    ASSERT_GT(events.size(), 100u) << "seed " << seed;
    const core::TimingModel whole = synthesize_whole(events);
    const std::size_t k = 2 + seed % 6;
    const core::TimingModel segmented =
        synthesize_segmented(events, k, 0xfeed + seed);
    expect_same_dag(whole.dag, segmented.dag,
                    "seed " + std::to_string(seed) + " k=" +
                        std::to_string(k));
  }
}

TEST(SegmentedIngestionProperty, GoldenTraceSurvivesSegmentation) {
  const std::string path =
      std::string(TETRA_TEST_DATA_DIR) + "/scenario_seed7_trace.jsonl";
  const trace::EventVector events = trace::read_jsonl_file(path);
  ASSERT_GT(events.size(), 100u);
  const core::TimingModel whole = synthesize_whole(events);
  for (std::size_t k : {2, 5, 9}) {
    expect_same_dag(whole.dag, synthesize_segmented(events, k, 7 * k).dag,
                    "golden k=" + std::to_string(k));
  }
}

TEST(SegmentedIngestionProperty, SegmentedMergedEventsRoundTrip) {
  // The k-way merged stream the session serves back must equal the
  // original whole trace, independent of segment arrival order.
  const trace::EventVector events = scenario_trace(17);
  std::vector<trace::EventVector> segments = split_segments(events, 5);
  std::mt19937_64 rng(99);
  std::shuffle(segments.begin(), segments.end(), rng);
  SynthesisSession session;
  for (auto& segment : segments) {
    session.ingest(std::move(segment), {.trace_id = "t", .mode = ""});
  }
  EXPECT_EQ(session.merged_events("t").value(), events);
}

}  // namespace
}  // namespace tetra::api
