// Unit tests for the support module: time types, statistics, RNG
// distributions, JSON round-trips, string utilities.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "support/json_parser.hpp"
#include "support/json_writer.hpp"
#include "support/rng.hpp"
#include "support/statistics.hpp"
#include "support/string_utils.hpp"
#include "support/time.hpp"

namespace tetra {
namespace {

TEST(TimeTest, DurationConstructionAndConversion) {
  EXPECT_EQ(Duration::ms(3).count_ns(), 3'000'000);
  EXPECT_EQ(Duration::us(5).count_ns(), 5'000);
  EXPECT_EQ(Duration::sec(2).count_ns(), 2'000'000'000);
  EXPECT_DOUBLE_EQ(Duration::ms(3).to_ms(), 3.0);
  EXPECT_DOUBLE_EQ(Duration::sec(2).to_sec(), 2.0);
}

TEST(TimeTest, DurationFloatingMilliseconds) {
  EXPECT_EQ(Duration::ms_f(1.5).count_ns(), 1'500'000);
  EXPECT_EQ(Duration::ms_f(0.0001).count_ns(), 100);
  EXPECT_EQ(Duration::ms_f(-2.5).count_ns(), -2'500'000);
}

TEST(TimeTest, DurationArithmetic) {
  const Duration a = Duration::ms(5);
  const Duration b = Duration::ms(3);
  EXPECT_EQ((a + b).count_ns(), 8'000'000);
  EXPECT_EQ((a - b).count_ns(), 2'000'000);
  EXPECT_EQ((a * 3).count_ns(), 15'000'000);
  EXPECT_EQ((a / 5).count_ns(), 1'000'000);
  EXPECT_EQ(a / b, 1);
  EXPECT_LT(b, a);
}

TEST(TimeTest, TimePointArithmetic) {
  const TimePoint t0{1'000};
  const TimePoint t1 = t0 + Duration::ns(500);
  EXPECT_EQ(t1.count_ns(), 1'500);
  EXPECT_EQ((t1 - t0).count_ns(), 500);
  EXPECT_EQ((t1 - Duration::ns(500)), t0);
}

TEST(TimeTest, ToStringPicksUnit) {
  EXPECT_EQ(to_string(Duration::ns(12)), "12ns");
  EXPECT_EQ(to_string(Duration::us(3)), "3.000us");
  EXPECT_EQ(to_string(Duration::ms(14)), "14.000ms");
  EXPECT_EQ(to_string(Duration::sec(2)), "2.000s");
}

TEST(RunningStatsTest, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10 + i;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a, b;
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 3.0);
}

TEST(RunningStatsTest, FromSummaryRoundTrip) {
  RunningStats s;
  for (double x : {1.0, 2.0, 6.0, 9.0}) s.add(x);
  RunningStats restored = RunningStats::from_summary(
      s.count(), s.min(), s.max(), s.mean(), s.variance());
  EXPECT_EQ(restored.count(), s.count());
  EXPECT_NEAR(restored.variance(), s.variance(), 1e-9);
  restored.add(5.0);
  EXPECT_EQ(restored.count(), 5u);
}

TEST(ExecStatsTest, ReportsPaperMetrics) {
  ExecStats stats;
  stats.add(Duration::ms(10));
  stats.add(Duration::ms(20));
  stats.add(Duration::ms(30));
  EXPECT_EQ(stats.mbcet(), Duration::ms(10));
  EXPECT_EQ(stats.macet(), Duration::ms(20));
  EXPECT_EQ(stats.mwcet(), Duration::ms(30));
}

TEST(SampleSetTest, QuantilesExact) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_NEAR(s.quantile(0.5), 50.5, 1e-9);
  EXPECT_NEAR(s.quantile(0.99), 99.01, 1e-9);
  EXPECT_THROW(s.quantile(1.5), std::invalid_argument);
}

TEST(SampleSetTest, EmptyThrows) {
  SampleSet s;
  EXPECT_THROW(s.min(), std::logic_error);
  EXPECT_THROW(s.mean(), std::logic_error);
}

TEST(HistogramTest, BinningAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);  // clamps into first bin
  h.add(0.5);
  h.add(9.9);
  h.add(25.0);  // clamps into last bin
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.count_in_bin(0), 2u);
  EXPECT_EQ(h.count_in_bin(4), 2u);
  EXPECT_FALSE(h.to_ascii().empty());
}

TEST(KsTest, IdenticalSamplesHaveZeroDistance) {
  const std::vector<double> a = {1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(ks_statistic(a, a), 0.0);
  const KsTestResult r = two_sample_ks_test(a, a);
  EXPECT_DOUBLE_EQ(r.statistic, 0.0);
  EXPECT_DOUBLE_EQ(r.p_value, 1.0);
  EXPECT_FALSE(r.significant(0.05));
}

TEST(KsTest, DisjointSamplesHaveDistanceOne) {
  std::vector<double> a, b;
  for (int i = 1; i <= 20; ++i) {
    a.push_back(static_cast<double>(i));
    b.push_back(static_cast<double>(i + 100));
  }
  EXPECT_DOUBLE_EQ(ks_statistic(a, b), 1.0);
  const KsTestResult r = two_sample_ks_test(a, b);
  EXPECT_DOUBLE_EQ(r.statistic, 1.0);
  EXPECT_LT(r.p_value, 1e-6);
  EXPECT_TRUE(r.significant(1e-4));
}

TEST(KsTest, UniformVsShiftedUniformClosedForm) {
  // Evenly spaced grids stand in for Uniform(0,10) and Uniform(5,15):
  // the ECDF gap peaks where the supports stop overlapping, at exactly
  // the shift fraction 5/10 = 0.5.
  std::vector<double> a, b;
  for (int i = 1; i <= 10; ++i) {
    a.push_back(static_cast<double>(i));
    b.push_back(static_cast<double>(i) + 5.0);
  }
  EXPECT_DOUBLE_EQ(ks_statistic(a, b), 0.5);
  // A 2.5 shift off the integer grid: a has exactly {1, 2, 3} strictly
  // below c's first point 3.5, so the peak ECDF gap is 3/10.
  std::vector<double> c;
  for (int i = 1; i <= 10; ++i) c.push_back(static_cast<double>(i) + 2.5);
  EXPECT_DOUBLE_EQ(ks_statistic(a, c), 0.3);
  // The statistic is symmetric in its arguments.
  EXPECT_DOUBLE_EQ(ks_statistic(b, a), 0.5);
}

TEST(KsTest, TiedValuesStepBothSides) {
  // All mass tied at one point: identical distributions, distance 0.
  const std::vector<double> a = {3.0, 3.0, 3.0};
  EXPECT_DOUBLE_EQ(ks_statistic(a, a), 0.0);
  // Half of b ties with a's single atom, half sits above: the ECDF gap
  // after the tie is |1 - 0.5| = 0.5.
  const std::vector<double> b = {3.0, 3.0, 4.0, 4.0};
  EXPECT_DOUBLE_EQ(ks_statistic(a, b), 0.5);
}

TEST(KsTest, KolmogorovQKnownValues) {
  // Critical values of the Kolmogorov distribution: Q(1.358) ~ 0.05 and
  // Q(1.628) ~ 0.01 (standard tables), Q monotonically decreasing.
  EXPECT_NEAR(kolmogorov_q(1.358), 0.05, 2e-3);
  EXPECT_NEAR(kolmogorov_q(1.628), 0.01, 1e-3);
  EXPECT_DOUBLE_EQ(kolmogorov_q(0.0), 1.0);
  EXPECT_DOUBLE_EQ(kolmogorov_q(0.1), 1.0);
  double prev = 1.0;
  for (double lambda = 0.3; lambda < 3.0; lambda += 0.1) {
    const double q = kolmogorov_q(lambda);
    EXPECT_LE(q, prev);
    prev = q;
  }
  EXPECT_LT(kolmogorov_q(3.0), 1e-7);
}

TEST(KsTest, AlphaThresholdBoundary) {
  KsTestResult r;
  r.p_value = 0.05;
  EXPECT_FALSE(r.significant(0.05));  // strict inequality at the boundary
  r.p_value = std::nextafter(0.05, 0.0);
  EXPECT_TRUE(r.significant(0.05));
  r.p_value = 1.0;
  EXPECT_FALSE(r.significant(1.0));
}

TEST(KsTest, DegenerateInputsNeverReject) {
  const std::vector<double> some = {1.0, 2.0, 3.0};
  const std::vector<double> none;
  EXPECT_DOUBLE_EQ(ks_statistic(some, none), 0.0);
  EXPECT_DOUBLE_EQ(ks_statistic(none, none), 0.0);
  KsTestResult r = two_sample_ks_test(some, none);
  EXPECT_DOUBLE_EQ(r.p_value, 1.0);
  EXPECT_FALSE(r.significant(0.5));
  // Two single-point samples: effective size <= 1, no power, p stays 1
  // even though the statistic is maximal.
  r = two_sample_ks_test({1.0}, {1000.0});
  EXPECT_DOUBLE_EQ(r.statistic, 1.0);
  EXPECT_DOUBLE_EQ(r.p_value, 1.0);
}

TEST(SequentialTest, CalibratorClosedForm) {
  // e(p) = 1 / (2 sqrt(p)): e(0.25) = 1 (the break-even p), e(0.01) = 5,
  // e(1) = 0.5 (a boring window *loses* evidence).
  EXPECT_DOUBLE_EQ(p_to_e_value(0.25), 1.0);
  EXPECT_DOUBLE_EQ(p_to_e_value(0.01), 5.0);
  EXPECT_DOUBLE_EQ(p_to_e_value(1.0), 0.5);
  // Tiny p-values clamp at max_e so one freak window cannot alarm alone.
  EXPECT_DOUBLE_EQ(p_to_e_value(1e-12, 20.0), 20.0);
  EXPECT_DOUBLE_EQ(p_to_e_value(0.01, 20.0), 5.0);
  // p = 0 is clamped, not infinite.
  EXPECT_TRUE(std::isfinite(p_to_e_value(0.0)));
}

TEST(SequentialTest, EValueLogThreshold) {
  EXPECT_DOUBLE_EQ(e_value_log_threshold(0.001), std::log(1000.0));
  EXPECT_DOUBLE_EQ(e_value_log_threshold(0.05), std::log(20.0));
  EXPECT_THROW(e_value_log_threshold(0.0), std::invalid_argument);
  EXPECT_THROW(e_value_log_threshold(1.0), std::invalid_argument);
}

TEST(SequentialTest, CusumAccumulatesAboveReferenceOnly) {
  CusumAccumulator acc(0.5, 2.0);
  acc.observe(0.5);  // exactly at reference: no movement
  EXPECT_DOUBLE_EQ(acc.value(), 0.0);
  acc.observe(1.5);  // +1.0
  EXPECT_DOUBLE_EQ(acc.value(), 1.0);
  acc.observe(0.0);  // -0.5
  EXPECT_DOUBLE_EQ(acc.value(), 0.5);
  EXPECT_FALSE(acc.crossed());
  acc.observe(2.0);  // +1.5 -> 2.0, at threshold counts as crossed
  EXPECT_DOUBLE_EQ(acc.value(), 2.0);
  EXPECT_TRUE(acc.crossed());
  EXPECT_EQ(acc.observations(), 4u);
}

TEST(SequentialTest, CusumClampsAtZeroAndResets) {
  CusumAccumulator acc(0.5, 2.0);
  acc.observe(0.0);
  acc.observe(0.0);
  // Clean windows cannot build negative credit that later drift must
  // first pay off.
  EXPECT_DOUBLE_EQ(acc.value(), 0.0);
  acc.observe(3.0);
  EXPECT_DOUBLE_EQ(acc.value(), 2.5);
  acc.reset();
  EXPECT_DOUBLE_EQ(acc.value(), 0.0);
  EXPECT_EQ(acc.observations(), 0u);
  EXPECT_FALSE(acc.crossed());
}

TEST(SequentialTest, EProcessAlarmsAtClosedFormWindowCount) {
  // A restarted e-process is a CUSUM of log e-values with reference 0.
  // Constant per-window p = 0.01 gives e = 5; at alpha = 1e-3 the budget
  // is ln(1000), so the alarm fires at window ceil(ln 1000 / ln 5) = 5.
  CusumAccumulator acc(0.0, e_value_log_threshold(1e-3));
  std::size_t alarm_at = 0;
  for (std::size_t window = 1; window <= 10 && alarm_at == 0; ++window) {
    acc.observe(std::log(p_to_e_value(0.01)));
    if (acc.crossed()) alarm_at = window;
  }
  EXPECT_EQ(alarm_at, 5u);
  // The anytime-valid p bound at the crossing is below the budget.
  EXPECT_LT(std::exp(-acc.value()), 1e-3);
}

TEST(RngTest, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, ForkDecorrelates) {
  Rng a(42);
  Rng child = a.fork();
  EXPECT_NE(a.next_u64(), child.next_u64());
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(5, 9);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 9);
  }
}

TEST(DurationDistributionTest, ConstantAlwaysNominal) {
  Rng rng(1);
  auto d = DurationDistribution::constant(Duration::ms(7));
  for (int i = 0; i < 10; ++i) EXPECT_EQ(d.sample(rng), Duration::ms(7));
}

TEST(DurationDistributionTest, UniformRespectsBounds) {
  Rng rng(1);
  auto d = DurationDistribution::uniform(Duration::ms(2), Duration::ms(4));
  for (int i = 0; i < 1000; ++i) {
    const Duration v = d.sample(rng);
    EXPECT_GE(v, Duration::ms(2));
    EXPECT_LE(v, Duration::ms(4));
  }
}

TEST(DurationDistributionTest, NormalTruncates) {
  Rng rng(1);
  auto d = DurationDistribution::normal(Duration::ms(10), Duration::ms(5),
                                        Duration::ms(8), Duration::ms(12));
  for (int i = 0; i < 1000; ++i) {
    const Duration v = d.sample(rng);
    EXPECT_GE(v, Duration::ms(8));
    EXPECT_LE(v, Duration::ms(12));
  }
}

TEST(DurationDistributionTest, NegativeBoundsAllowedForJitter) {
  Rng rng(1);
  auto d = DurationDistribution::uniform(Duration::ms(-6), Duration::ms(6));
  bool saw_negative = false, saw_positive = false;
  for (int i = 0; i < 1000; ++i) {
    const Duration v = d.sample(rng);
    saw_negative |= v < Duration::zero();
    saw_positive |= v > Duration::zero();
  }
  EXPECT_TRUE(saw_negative);
  EXPECT_TRUE(saw_positive);
}

TEST(DurationDistributionTest, MixtureDrawsBothComponents) {
  Rng rng(1);
  auto d = DurationDistribution::mixture(
      DurationDistribution::constant(Duration::ms(1)),
      DurationDistribution::constant(Duration::ms(100)), 0.5);
  int low = 0, high = 0;
  for (int i = 0; i < 1000; ++i) {
    (d.sample(rng) == Duration::ms(1) ? low : high)++;
  }
  EXPECT_GT(low, 300);
  EXPECT_GT(high, 300);
  EXPECT_EQ(d.min(), Duration::ms(1));
  EXPECT_EQ(d.max(), Duration::ms(100));
}

TEST(DurationDistributionTest, ScaledScalesBoundsAndNominal) {
  auto d = DurationDistribution::uniform(Duration::ms(2), Duration::ms(4))
               .scaled(2.0);
  EXPECT_EQ(d.min(), Duration::ms(4));
  EXPECT_EQ(d.max(), Duration::ms(8));
  EXPECT_EQ(d.nominal(), Duration::ms(6));
}

TEST(JsonWriterTest, ObjectsArraysValues) {
  JsonWriter w;
  w.begin_object();
  w.kv("name", "tetra");
  w.kv("count", std::int64_t{3});
  w.kv("ratio", 0.5);
  w.kv("ok", true);
  w.key("items").begin_array().value(std::int64_t{1}).value("two").end_array();
  w.end_object();
  EXPECT_EQ(w.str(),
            R"({"name":"tetra","count":3,"ratio":0.5,"ok":true,"items":[1,"two"]})");
}

TEST(JsonWriterTest, EscapesSpecials) {
  JsonWriter w;
  w.begin_object();
  w.kv("s", "a\"b\\c\nd");
  w.end_object();
  EXPECT_EQ(w.str(), "{\"s\":\"a\\\"b\\\\c\\nd\"}");
}

TEST(JsonWriterTest, MisuseThrows) {
  JsonWriter w;
  w.begin_object();
  EXPECT_THROW(w.value("no key"), std::logic_error);
  EXPECT_THROW(w.end_array(), std::logic_error);
  EXPECT_THROW(w.str(), std::logic_error);  // unclosed
}

TEST(JsonParserTest, ParsesScalars) {
  EXPECT_EQ(parse_json("42").as_int(), 42);
  EXPECT_DOUBLE_EQ(parse_json("-3.25").as_double(), -3.25);
  EXPECT_TRUE(parse_json("true").as_bool());
  EXPECT_TRUE(parse_json("null").is_null());
  EXPECT_EQ(parse_json("\"hi\\n\"").as_string(), "hi\n");
}

TEST(JsonParserTest, ParsesNested) {
  const auto v = parse_json(R"({"a": [1, {"b": "c"}], "d": 2.5})");
  EXPECT_EQ(v.at("a").as_array().size(), 2u);
  EXPECT_EQ(v.at("a").as_array()[1].at("b").as_string(), "c");
  EXPECT_DOUBLE_EQ(v.at("d").as_double(), 2.5);
  EXPECT_TRUE(v.contains("a"));
  EXPECT_FALSE(v.contains("zz"));
}

TEST(JsonParserTest, RejectsMalformed) {
  EXPECT_THROW(parse_json("{"), std::runtime_error);
  EXPECT_THROW(parse_json("[1,]"), std::runtime_error);
  EXPECT_THROW(parse_json("12 garbage"), std::runtime_error);
  EXPECT_THROW(parse_json(""), std::runtime_error);
}

TEST(JsonParserTest, RoundTripsWriterOutput) {
  JsonWriter w;
  w.begin_object();
  w.kv("t", std::int64_t{123456789});
  w.kv("topic", "/lidar_front/points_raw");
  w.kv("unicode", "é");
  w.end_object();
  const auto v = parse_json(w.str());
  EXPECT_EQ(v.at("t").as_int(), 123456789);
  EXPECT_EQ(v.at("topic").as_string(), "/lidar_front/points_raw");
}

TEST(StringUtilsTest, SplitJoin) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(join({"x", "y"}, "->"), "x->y");
}

TEST(StringUtilsTest, StartsEndsWith) {
  EXPECT_TRUE(starts_with("/sv3Request", "/sv3"));
  EXPECT_TRUE(ends_with("/sv3Request", "Request"));
  EXPECT_FALSE(ends_with("/sv3Reply", "Request"));
}

TEST(StringUtilsTest, FormatAndHex) {
  EXPECT_EQ(format("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(hex_id(0x1f), "0x1f");
}

TEST(TextTableTest, AlignsColumns) {
  TextTable t({"CB", "mWCET"});
  t.add_row({"cb1", "19.82"});
  t.add_row({"long_callback_name", "3"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| CB"), std::string::npos);
  EXPECT_NE(s.find("| long_callback_name"), std::string::npos);
}

}  // namespace
}  // namespace tetra
