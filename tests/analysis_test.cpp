// Tests for the analysis module: chain enumeration, end-to-end latency
// through source timestamps, waiting times, load/core binding, the
// simplified response-time estimate, and convergence tracking.
#include <gtest/gtest.h>

#include "analysis/chains.hpp"
#include "analysis/convergence.hpp"
#include "analysis/latency.hpp"
#include "analysis/load.hpp"
#include "analysis/response_time.hpp"
#include "core/dag_builder.hpp"
#include "ebpf/tracers.hpp"
#include "trace/merge.hpp"
#include "workloads/avp_localization.hpp"
#include "workloads/syn_app.hpp"

namespace tetra::analysis {
namespace {

core::Dag diamond_dag() {
  core::Dag dag;
  auto add = [&](const char* key, const char* node, double wcet_ms) {
    core::DagVertex v;
    v.key = key;
    v.node_name = node;
    v.stats.add(Duration::ms_f(wcet_ms / 2));
    v.stats.add(Duration::ms_f(wcet_ms));
    v.instance_count = 2;
    dag.add_or_merge_vertex(v);
  };
  add("A", "n1", 2);
  add("B", "n2", 4);
  add("C", "n2", 6);
  add("D", "n3", 8);
  dag.add_edge("A", "B", "/ab");
  dag.add_edge("A", "C", "/ac");
  dag.add_edge("B", "D", "/bd");
  dag.add_edge("C", "D", "/cd");
  return dag;
}

TEST(ChainsTest, EnumeratesAllSourceSinkPaths) {
  const auto [chains, truncated] = enumerate_chains(diamond_dag());
  EXPECT_FALSE(truncated);
  ASSERT_EQ(chains.size(), 2u);
  EXPECT_EQ(to_string(chains[0]), "A -> B -> D");
  EXPECT_EQ(to_string(chains[1]), "A -> C -> D");
}

TEST(ChainsTest, ChainsThroughVertex) {
  const auto through_b = chains_through(diamond_dag(), "B");
  EXPECT_FALSE(through_b.truncated);
  ASSERT_EQ(through_b.chains.size(), 1u);
  EXPECT_EQ(through_b.chains[0][1], "B");
}

TEST(ChainsTest, ChainWcetSumsVertices) {
  const auto dag = diamond_dag();
  const auto chains = enumerate_chains(dag).chains;
  EXPECT_EQ(chain_wcet(dag, chains[0]), Duration::ms(14));  // 2+4+8
  EXPECT_EQ(chain_wcet(dag, chains[1]), Duration::ms(16));  // 2+6+8
  EXPECT_EQ(chain_acet(dag, chains[0]),
            Duration::ms_f(0.75 * 14));  // averages of {w/2, w}
}

TEST(ChainsTest, ChainTopicsFollowsEdges) {
  const auto dag = diamond_dag();
  const auto chains = enumerate_chains(dag).chains;
  EXPECT_EQ(chain_topics(dag, chains[0]),
            (std::vector<std::string>{"/ab", "/bd"}));
  EXPECT_EQ(chain_topics(dag, chains[1]),
            (std::vector<std::string>{"/ac", "/cd"}));
}

TEST(ChainsTest, GuardAgainstExplosion) {
  core::Dag dag;
  // Ladder of diamonds: 2^20 paths — must truncate, not hang.
  std::string prev = "S";
  core::DagVertex s;
  s.key = "S";
  dag.add_or_merge_vertex(s);
  for (int i = 0; i < 20; ++i) {
    const std::string a = "a" + std::to_string(i);
    const std::string b = "b" + std::to_string(i);
    const std::string join = "j" + std::to_string(i);
    for (const auto& key : {a, b, join}) {
      core::DagVertex v;
      v.key = key;
      dag.add_or_merge_vertex(v);
    }
    dag.add_edge(prev, a, "/");
    dag.add_edge(prev, b, "/");
    dag.add_edge(a, join, "/");
    dag.add_edge(b, join, "/");
    prev = join;
  }
  const auto result = enumerate_chains(dag, 1000);
  EXPECT_TRUE(result.truncated);
  EXPECT_EQ(result.chains.size(), 1000u);
}

TEST(LoadTest, UtilizationFromRateAndAcet) {
  const auto dag = diamond_dag();
  // span 1s, 2 instances each: rate 2 Hz; util = rate * mACET.
  const auto loads = per_callback_load(dag, Duration::sec(1));
  ASSERT_EQ(loads.size(), 4u);
  for (const auto& load : loads) {
    EXPECT_NEAR(load.rate_hz, 2.0, 1e-9);
    EXPECT_NEAR(load.utilization, load.rate_hz * load.macet.to_sec(), 1e-12);
  }
  const auto node_loads = per_node_load(dag, Duration::sec(1));
  EXPECT_EQ(node_loads.size(), 3u);
  EXPECT_GT(node_loads.at("n2"), node_loads.at("n1"));
}

TEST(LoadTest, BalanceNodeLoadsLpt) {
  std::map<std::string, double> loads{
      {"a", 0.6}, {"b", 0.5}, {"c", 0.3}, {"d", 0.2}};
  const auto binding = balance_node_loads(loads, 2);
  EXPECT_EQ(binding.node_to_core.size(), 4u);
  // LPT: a->0, b->1, c->1, d->0 => loads 0.8 / 0.8.
  EXPECT_NEAR(binding.makespan, 0.8, 1e-9);
  EXPECT_THROW(balance_node_loads(loads, 0), std::invalid_argument);
}

TEST(ResponseTimeTest, TermsComposeAndBound) {
  const auto dag = diamond_dag();
  ResponseTimeOptions options;
  options.dds_hop_bound = Duration::ms(1);
  const auto chains = enumerate_chains(dag).chains;
  const auto estimate = estimate_chain_response(dag, chains[0], options);
  EXPECT_EQ(estimate.execution, Duration::ms(14));
  // Blocking: B and C share node n2 -> B's blocker is C (6ms); A and D
  // are alone in their nodes (0 blocking).
  EXPECT_EQ(estimate.blocking, Duration::ms(6));
  EXPECT_EQ(estimate.queueing, Duration::ms(6));
  EXPECT_EQ(estimate.transport, Duration::ms(2));
  EXPECT_EQ(estimate.total(), Duration::ms(28));
  // Estimate must dominate the raw chain WCET.
  EXPECT_GE(estimate.total(), chain_wcet(dag, chains[0]));
  const auto [all, truncated] = estimate_all_chains(dag, options);
  EXPECT_FALSE(truncated);
  EXPECT_EQ(all.size(), 2u);
}

TEST(ConvergenceTest, SeriesGrowsAndSettles) {
  ConvergenceTracker tracker({"X"});
  Rng rng(5);
  // Assigned from std::string, not string literals: the literal-assign
  // inline path trips a GCC -Wrestrict false positive under -O3, and the
  // Release CI matrix builds tests with -Werror.
  const std::string key = "X";
  const std::string node_name = "n";
  for (int run = 0; run < 30; ++run) {
    core::Dag dag;
    core::DagVertex v;
    v.key = key;
    v.node_name = node_name;
    // Samples from a fixed range: cumulative mWCET is non-decreasing and
    // approaches 10ms.
    for (int i = 0; i < 50; ++i) {
      v.stats.add(Duration::ms_f(rng.uniform(1.0, 10.0)));
    }
    v.instance_count = 50;
    dag.add_or_merge_vertex(v);
    tracker.add_run(dag);
  }
  const auto& series = tracker.series("X");
  ASSERT_EQ(series.size(), 30u);
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_GE(series[i].mwcet, series[i - 1].mwcet);
    EXPECT_LE(series[i].mbcet, series[i - 1].mbcet);
  }
  EXPECT_NEAR(series.back().mwcet.to_ms(), 10.0, 0.3);
  const std::size_t settle = tracker.mwcet_settling_run("X", 0.01);
  EXPECT_GT(settle, 0u);
  EXPECT_LT(settle, 30u);
  EXPECT_EQ(tracker.mwcet_settling_run("unknown"), 0u);
}

TEST(LatencyTest, InstanceTimelineLinksTakesAndWrites) {
  using namespace tetra::trace;
  EventVector ev;
  ev.push_back(make_callback_start(TimePoint{100}, 1, CallbackKind::Subscription));
  ev.push_back(make_take(TimePoint{101}, 1, TakeKind::Data, 0x1, "/in",
                         TimePoint{90}));
  ev.push_back(make_dds_write(TimePoint{150}, 1, "/out", TimePoint{150}));
  ev.push_back(make_callback_end(TimePoint{200}, 1, CallbackKind::Subscription));
  InstanceTimeline timeline(ev);
  ASSERT_EQ(timeline.instances().size(), 1u);
  const auto& instance = timeline.instances()[0];
  EXPECT_EQ(instance.take->first, "/in");
  ASSERT_EQ(instance.writes.size(), 1u);
  EXPECT_EQ(instance.writes[0].first, "/out");
  EXPECT_EQ(timeline.consumers_of("/in", TimePoint{90}).size(), 1u);
  EXPECT_TRUE(timeline.consumers_of("/in", TimePoint{91}).empty());
}

TEST(LatencyTest, SynChainLatencyMeasured) {
  ros2::Context ctx;
  ebpf::TracerSuite suite(ctx);
  suite.start_init();
  const auto app = workloads::build_syn_app(ctx);
  auto init_trace = suite.stop_init();
  suite.start_runtime();
  ctx.run_for(Duration::sec(10));
  auto events = trace::merge_sorted({init_trace, suite.stop_runtime()});
  InstanceTimeline timeline(events);
  const auto result = measure_chain_latency(timeline, app.main_chain_topics);
  ASSERT_GT(result.complete, 10u);
  // Chain compute alone: SC1(4)+SV1(3)+CL1(1.5)+SC5(2)+SC2.2(1.2+fusion)
  // ~ 12-14ms plus transport/queueing: expect 10-80ms.
  EXPECT_GT(result.mean(), Duration::ms(10));
  EXPECT_LT(result.mean(), Duration::ms(80));
  EXPECT_GE(result.max(), result.mean());
  // The fusion hop completes only when /f1 arrives last — the dominant
  // case here; incompletes are the AND-junction conditional-flow cases.
  const auto fusion = measure_chain_latency(timeline, app.fusion_chain_topics);
  EXPECT_GT(fusion.complete, 10u);
}

TEST(LatencyTest, AvpChainLatencyMeasured) {
  ros2::Context ctx;
  ebpf::TracerSuite suite(ctx);
  suite.start_init();
  workloads::AvpOptions options;
  options.run_duration = Duration::sec(10);
  const auto app = workloads::build_avp_localization(ctx, options);
  auto init_trace = suite.stop_init();
  suite.start_runtime();
  ctx.run_for(Duration::sec(10));
  auto events = trace::merge_sorted({init_trace, suite.stop_runtime()});
  InstanceTimeline timeline(events);
  const auto result = measure_chain_latency(timeline, app.chain_topics);
  // Fusion only completes when the front sample arrives last, so some
  // traversals are incomplete — but most complete.
  EXPECT_GT(result.complete, 50u);
  // cb2(27) + cb3(3.1) + cb5(8.5) + cb6(25) ≈ 64ms + waiting.
  EXPECT_GT(result.mean(), Duration::ms(40));
  EXPECT_LT(result.mean(), Duration::ms(200));
}

TEST(LatencyTest, WaitingTimesNonNegative) {
  ros2::Context ctx;
  ebpf::TracerSuite suite(ctx);
  suite.start_init();
  workloads::build_syn_app(ctx);
  auto init_trace = suite.stop_init();
  suite.start_runtime();
  ctx.run_for(Duration::sec(5));
  auto events = trace::merge_sorted({init_trace, suite.stop_runtime()});
  const auto waits = measure_waiting_times(events);
  EXPECT_GT(waits.size(), 5u);
  for (const auto& [cb, samples] : waits) {
    EXPECT_GE(samples.min(), 0.0);
    // Waiting under light load should be well under 50 ms.
    EXPECT_LT(samples.quantile(0.5), Duration::ms(50).count_ns());
  }
}

}  // namespace
}  // namespace tetra::analysis
