// Tests for the DAG model, builder (service splitting, AND/OR junctions),
// merging, multi-mode models, and the exporters.
#include <gtest/gtest.h>

#include "core/dag.hpp"
#include "core/dag_builder.hpp"
#include "core/export.hpp"

namespace tetra::core {
namespace {

CallbackRecord record(std::string node, CallbackKind kind, std::string label,
                      std::string in_topic, std::vector<std::string> out_topics,
                      bool sync = false) {
  CallbackRecord r;
  r.node_name = std::move(node);
  r.kind = kind;
  r.label = std::move(label);
  r.in_topic = std::move(in_topic);
  r.out_topics = std::move(out_topics);
  r.is_sync_subscriber = sync;
  r.id = std::hash<std::string>{}(r.label);
  r.add_instance(TimePoint{0}, Duration::ms(1));
  return r;
}

/// Simple pipeline: timer -> /a -> sub -> /b -> sub2.
std::vector<CallbackList> pipeline_lists() {
  CallbackList n1, n2, n3;
  n1.node_name = "n1";
  n1.records.push_back(record("n1", CallbackKind::Timer, "n1/T1", "", {"/a"}));
  n2.node_name = "n2";
  n2.records.push_back(
      record("n2", CallbackKind::Subscription, "n2/SC1", "/a", {"/b"}));
  n3.node_name = "n3";
  n3.records.push_back(
      record("n3", CallbackKind::Subscription, "n3/SC1", "/b", {}));
  return {n1, n2, n3};
}

TEST(DagTest, AddVertexAndEdges) {
  Dag dag;
  DagVertex a;
  a.key = "A";
  DagVertex b;
  b.key = "B";
  dag.add_or_merge_vertex(a);
  dag.add_or_merge_vertex(b);
  dag.add_edge("A", "B", "/t");
  EXPECT_EQ(dag.vertex_count(), 2u);
  EXPECT_EQ(dag.edge_count(), 1u);
  dag.add_edge("A", "B", "/t");  // duplicate ignored
  EXPECT_EQ(dag.edge_count(), 1u);
  EXPECT_THROW(dag.add_edge("A", "Z", "/t"), std::logic_error);
}

TEST(DagTest, MergeVertexCombinesStats) {
  Dag dag;
  DagVertex v;
  v.key = "X";
  v.stats.add(Duration::ms(5));
  v.instance_count = 1;
  v.out_topics = {"/a"};
  dag.add_or_merge_vertex(v);
  DagVertex v2;
  v2.key = "X";
  v2.stats.add(Duration::ms(9));
  v2.instance_count = 1;
  v2.out_topics = {"/b"};
  dag.add_or_merge_vertex(v2);
  const DagVertex* merged = dag.find_vertex("X");
  EXPECT_EQ(merged->stats.mwcet(), Duration::ms(9));
  EXPECT_EQ(merged->stats.mbcet(), Duration::ms(5));
  EXPECT_EQ(merged->instance_count, 2u);
  EXPECT_EQ(merged->out_topics.size(), 2u);
}

TEST(DagTest, SourcesSinksAcyclic) {
  Dag dag;
  for (const char* key : {"A", "B", "C"}) {
    DagVertex v;
    v.key = key;
    dag.add_or_merge_vertex(v);
  }
  dag.add_edge("A", "B", "/1");
  dag.add_edge("B", "C", "/2");
  EXPECT_TRUE(dag.is_acyclic());
  ASSERT_EQ(dag.sources().size(), 1u);
  EXPECT_EQ(dag.sources()[0]->key, "A");
  ASSERT_EQ(dag.sinks().size(), 1u);
  EXPECT_EQ(dag.sinks()[0]->key, "C");
  dag.add_edge("C", "A", "/3");
  EXPECT_FALSE(dag.is_acyclic());
}

TEST(DagBuilderTest, PipelineEdges) {
  const Dag dag = build_dag(pipeline_lists());
  EXPECT_EQ(dag.vertex_count(), 3u);
  EXPECT_EQ(dag.edge_count(), 2u);
  EXPECT_TRUE(dag.is_acyclic());
  const auto out = dag.out_edges("n1/T1");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0]->to, "n2/SC1");
  EXPECT_EQ(out[0]->topic, "/a");
}

TEST(DagBuilderTest, UnlabeledRecordThrows) {
  CallbackList list;
  list.node_name = "n";
  CallbackRecord r = record("n", CallbackKind::Timer, "", "", {});
  r.label.clear();
  list.records.push_back(r);
  EXPECT_THROW(build_dag({list}), std::logic_error);
}

TEST(DagBuilderTest, ServiceSplitPerCaller) {
  // Service SV with two callers: two annotated records -> two vertices,
  // two disjoint chains (the paper's §VI point iv).
  CallbackList callers, server, clients;
  callers.node_name = "c";
  callers.records.push_back(record("c", CallbackKind::Timer, "c/T1", "",
                                   {"/svRequest#c/T1"}));
  callers.records.push_back(record("c", CallbackKind::Timer, "c/T2", "",
                                   {"/svRequest#c/T2"}));
  server.node_name = "s";
  server.records.push_back(record("s", CallbackKind::Service, "s/SV1",
                                  "/svRequest#c/T1", {"/svReply#c/CL1"}));
  server.records.push_back(record("s", CallbackKind::Service, "s/SV1",
                                  "/svRequest#c/T2", {"/svReply#c/CL2"}));
  clients.node_name = "c";
  clients.records.push_back(
      record("c", CallbackKind::Client, "c/CL1", "/svReply#c/CL1", {}));
  clients.records.push_back(
      record("c", CallbackKind::Client, "c/CL2", "/svReply#c/CL2", {}));

  const Dag dag = build_dag({callers, server, clients});
  EXPECT_EQ(dag.vertex_count(), 6u);  // 2 timers + 2 service copies + 2 clients
  EXPECT_TRUE(dag.has_vertex("s/SV1@c/T1"));
  EXPECT_TRUE(dag.has_vertex("s/SV1@c/T2"));
  // Chains are disjoint: T1's service vertex must not reach CL2.
  const auto out1 = dag.out_edges("s/SV1@c/T1");
  ASSERT_EQ(out1.size(), 1u);
  EXPECT_EQ(out1[0]->to, "c/CL1");

  // Ablation: without splitting, one vertex with 2 in + 2 out edges —
  // creating the spurious T1 -> SV -> CL2 sub-chain.
  DagOptions no_split;
  no_split.split_service_per_caller = false;
  const Dag wrong = build_dag({callers, server, clients}, no_split);
  EXPECT_EQ(wrong.vertex_count(), 5u);
  EXPECT_TRUE(wrong.has_vertex("s/SV1"));
  EXPECT_EQ(wrong.in_edges("s/SV1").size(), 2u);
  EXPECT_EQ(wrong.out_edges("s/SV1").size(), 2u);
}

TEST(DagBuilderTest, SyncMembersRouteThroughAndJunction) {
  CallbackList sources, fusion, sink;
  sources.node_name = "src";
  sources.records.push_back(record("src", CallbackKind::Timer, "src/T1", "",
                                   {"/f1"}));
  sources.records.push_back(record("src", CallbackKind::Timer, "src/T2", "",
                                   {"/f2"}));
  fusion.node_name = "fus";
  fusion.records.push_back(record("fus", CallbackKind::Subscription, "fus/SC1",
                                  "/f1", {"/f3"}, /*sync=*/true));
  fusion.records.push_back(record("fus", CallbackKind::Subscription, "fus/SC2",
                                  "/f2", {}, /*sync=*/true));
  sink.node_name = "snk";
  sink.records.push_back(
      record("snk", CallbackKind::Subscription, "snk/SC1", "/f3", {}));

  const Dag dag = build_dag({sources, fusion, sink});
  // 2 timers + 2 sync members + & + sink = 6 vertices.
  EXPECT_EQ(dag.vertex_count(), 6u);
  ASSERT_TRUE(dag.has_vertex("fus/&"));
  const DagVertex* junction = dag.find_vertex("fus/&");
  EXPECT_TRUE(junction->is_and_junction);
  EXPECT_TRUE(junction->stats.empty());  // zero execution time task
  // Members feed the junction; the junction feeds the sink; no direct
  // member->sink edge.
  EXPECT_EQ(dag.in_edges("fus/&").size(), 2u);
  const auto junction_out = dag.out_edges("fus/&");
  ASSERT_EQ(junction_out.size(), 1u);
  EXPECT_EQ(junction_out[0]->to, "snk/SC1");
  for (const auto* edge : dag.in_edges("snk/SC1")) {
    EXPECT_EQ(edge->from, "fus/&");
  }
  // Edges INTO sync members are normal.
  EXPECT_EQ(dag.in_edges("fus/SC1").size(), 1u);

  // Ablation: junction disabled -> direct member->sink edge.
  DagOptions no_sync;
  no_sync.model_sync_with_and_junction = false;
  const Dag flat = build_dag({sources, fusion, sink}, no_sync);
  EXPECT_FALSE(flat.has_vertex("fus/&"));
  ASSERT_EQ(flat.in_edges("snk/SC1").size(), 1u);
  EXPECT_EQ(flat.in_edges("snk/SC1")[0]->from, "fus/SC1");
}

TEST(DagBuilderTest, OrJunctionMarked) {
  CallbackList writers, reader;
  writers.node_name = "w";
  writers.records.push_back(record("w", CallbackKind::Timer, "w/T1", "", {"/t"}));
  writers.records.push_back(record("w", CallbackKind::Timer, "w/T2", "", {"/t"}));
  reader.node_name = "r";
  reader.records.push_back(
      record("r", CallbackKind::Subscription, "r/SC1", "/t", {}));
  const Dag dag = build_dag({writers, reader});
  EXPECT_TRUE(dag.find_vertex("r/SC1")->is_or_junction);
  EXPECT_EQ(dag.in_edges("r/SC1").size(), 2u);

  DagOptions no_or;
  no_or.mark_or_junctions = false;
  const Dag plain = build_dag({writers, reader}, no_or);
  EXPECT_FALSE(plain.find_vertex("r/SC1")->is_or_junction);
}

TEST(DagBuilderTest, DanglingTopicsProduceNoEdges) {
  CallbackList list;
  list.node_name = "n";
  list.records.push_back(
      record("n", CallbackKind::Timer, "n/T1", "", {"/nowhere"}));
  list.records.push_back(
      record("n", CallbackKind::Subscription, "n/SC1", "/fromnowhere", {}));
  const Dag dag = build_dag({list});
  EXPECT_EQ(dag.edge_count(), 0u);
  EXPECT_EQ(dag.sources().size(), 2u);
}

TEST(DagMergeTest, UnionAcrossRuns) {
  const Dag run1 = build_dag(pipeline_lists());
  const Dag run2 = build_dag(pipeline_lists());
  Dag merged;
  merged.merge(run1);
  merged.merge(run2);
  EXPECT_EQ(merged.vertex_count(), run1.vertex_count());
  EXPECT_EQ(merged.edge_count(), run1.edge_count());
  // Statistics accumulate across runs.
  EXPECT_EQ(merged.find_vertex("n1/T1")->instance_count, 2u);
  EXPECT_EQ(merge_dags({run1, run2}).vertex_count(), run1.vertex_count());
}

TEST(MultiModeDagTest, PerModeAndCombined) {
  MultiModeDag multi;
  multi.merge_into_mode("city", build_dag(pipeline_lists()));
  // Highway mode sees an extra callback.
  auto lists = pipeline_lists();
  CallbackList extra;
  extra.node_name = "n4";
  extra.records.push_back(
      record("n4", CallbackKind::Subscription, "n4/SC1", "/b", {}));
  lists.push_back(extra);
  multi.merge_into_mode("highway", build_dag(lists));

  EXPECT_EQ(multi.modes().size(), 2u);
  EXPECT_EQ(multi.mode_dag("city")->vertex_count(), 3u);
  EXPECT_EQ(multi.mode_dag("highway")->vertex_count(), 4u);
  EXPECT_EQ(multi.combined().vertex_count(), 4u);
  EXPECT_EQ(multi.modes_of_vertex("n1/T1").size(), 2u);
  EXPECT_EQ(multi.modes_of_vertex("n4/SC1"),
            (std::vector<std::string>{"highway"}));
}

TEST(ExportTest, DotContainsClustersAndLabels) {
  const Dag dag = build_dag(pipeline_lists());
  const std::string dot = to_dot(dag);
  EXPECT_NE(dot.find("digraph timing_model"), std::string::npos);
  EXPECT_NE(dot.find("subgraph cluster_"), std::string::npos);
  EXPECT_NE(dot.find("label=\"/a\""), std::string::npos);
  EXPECT_NE(dot.find("n1/T1"), std::string::npos);
}

TEST(ExportTest, JsonRoundTrip) {
  Dag dag = build_dag(pipeline_lists());
  dag.find_vertex("n1/T1")->period = Duration::ms(100);
  const std::string json = to_json(dag);
  const Dag restored = dag_from_json(json);
  EXPECT_EQ(restored.vertex_count(), dag.vertex_count());
  EXPECT_EQ(restored.edge_count(), dag.edge_count());
  const DagVertex* t1 = restored.find_vertex("n1/T1");
  ASSERT_NE(t1, nullptr);
  EXPECT_EQ(t1->period.value(), Duration::ms(100));
  EXPECT_EQ(t1->stats.count(), 1u);
  EXPECT_EQ(t1->stats.mwcet(), Duration::ms(1));
}

TEST(ExportTest, ExecTimeTableListsCallbacks) {
  const Dag dag = build_dag(pipeline_lists());
  const std::string table = to_exec_time_table(dag);
  EXPECT_NE(table.find("n1/T1"), std::string::npos);
  EXPECT_NE(table.find("mWCET"), std::string::npos);
}

}  // namespace
}  // namespace tetra::core
