// Golden-trace regression: a fixed-seed scenario's merged trace is checked
// in under tests/data/; re-synthesizing it must keep matching the
// scenario's ground truth, and re-generating the scenario must reproduce
// the trace byte for byte. Catches silent drift anywhere in the pipeline —
// generator, substrate, tracers, merge, serialization, extraction.
//
// Regenerate after an *intentional* change to any of those:
//   tetra_scenario --seed 7 --count 1 --validate
//       --trace-out tests/data/scenario_seed7_trace.jsonl  (one command)
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "api/session.hpp"
#include "core/model_synthesis.hpp"
#include "scenario/generator.hpp"
#include "scenario/runner.hpp"
#include "scenario/validator.hpp"
#include "trace/serialize.hpp"

namespace tetra::scenario {
namespace {

constexpr std::uint64_t kGoldenSeed = 7;

std::string golden_path() {
  return std::string(TETRA_TEST_DATA_DIR) + "/scenario_seed7_trace.jsonl";
}

std::string read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f.good()) << "missing fixture " << path;
  std::ostringstream out;
  out << f.rdbuf();
  return out.str();
}

TEST(GoldenTraceTest, ResynthesisMatchesGroundTruth) {
  const trace::EventVector events = trace::read_jsonl_file(golden_path());
  ASSERT_GT(events.size(), 100u);

  api::SynthesisSession session;
  session.ingest(events);
  const core::TimingModel model = session.model().value();
  const Scenario scen = ScenarioGenerator().generate(kGoldenSeed);
  const ValidationReport report =
      RoundTripValidator().validate(model, scen.ground_truth);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(GoldenTraceTest, SerializationRoundTripIsByteStable) {
  const std::string contents = read_file(golden_path());
  const trace::EventVector events = trace::events_from_jsonl(contents);
  EXPECT_EQ(trace::to_jsonl(events), contents);
}

// Regenerating the scenario from its seed must reproduce the recorded
// trace exactly. Distribution sampling goes through libstdc++'s <random>
// (the platform the fixture was recorded on and CI runs on); other
// standard libraries may sample differently, so the byte comparison is
// scoped to libstdc++ — the structural checks above still apply there.
#if defined(__GLIBCXX__)
TEST(GoldenTraceTest, RegeneratedTraceIsByteIdentical) {
  const Scenario scen = ScenarioGenerator().generate(kGoldenSeed);
  const ScenarioRunResult result = ScenarioRunner().run(scen.spec);
  EXPECT_EQ(trace::to_jsonl(result.trace), read_file(golden_path()));
}
#endif

}  // namespace
}  // namespace tetra::scenario
