// Unit tests for trace records: construction, serialization round-trips,
// buffers, merging, the trace database.
#include <gtest/gtest.h>

#include <filesystem>

#include "trace/database.hpp"
#include "trace/merge.hpp"
#include "trace/serialize.hpp"
#include "trace/trace_buffer.hpp"

namespace tetra::trace {
namespace {

TraceEvent sample_take() {
  return make_take(TimePoint{123}, 1001, TakeKind::Request, 0xdeadbeef,
                   "/sv1Request", TimePoint{100});
}

TEST(ProbeIdTest, RoundTripsAllIds) {
  for (int i = 1; i <= 16; ++i) {
    const auto id = static_cast<ProbeId>(i);
    EXPECT_EQ(probe_id_from_string(std::string(to_string(id))), id);
  }
  EXPECT_EQ(probe_id_from_string("sched_switch"), ProbeId::SchedSwitch);
  EXPECT_THROW(probe_id_from_string("P99"), std::invalid_argument);
}

TEST(EventTest, ConstructorsSetProbeAndType) {
  const auto node = make_node_event(TimePoint{1}, 42, "n");
  EXPECT_EQ(node.probe, ProbeId::P1_RmwCreateNode);
  EXPECT_EQ(node.as<NodeInfo>().node_name, "n");

  const auto start = make_callback_start(TimePoint{2}, 42, CallbackKind::Service);
  EXPECT_EQ(start.probe, ProbeId::P9_ExecuteServiceEntry);
  const auto end = make_callback_end(TimePoint{3}, 42, CallbackKind::Service);
  EXPECT_EQ(end.probe, ProbeId::P11_ExecuteServiceExit);

  const auto take = sample_take();
  EXPECT_EQ(take.probe, ProbeId::P10_RmwTakeRequest);
  EXPECT_EQ(take.as<TakeInfo>().src_ts, TimePoint{100});
}

TEST(EventTest, PhaseProbeMapping) {
  for (CallbackKind kind :
       {CallbackKind::Timer, CallbackKind::Subscription, CallbackKind::Service,
        CallbackKind::Client}) {
    EXPECT_EQ(kind_for_phase_probe(start_probe_for(kind)), kind);
    EXPECT_EQ(kind_for_phase_probe(end_probe_for(kind)), kind);
  }
  EXPECT_THROW(kind_for_phase_probe(ProbeId::P16_DdsWriteImpl),
               std::invalid_argument);
}

TEST(EventTest, SortAndFilter) {
  EventVector events;
  events.push_back(make_dds_write(TimePoint{30}, 2, "/b", TimePoint{30}));
  events.push_back(make_dds_write(TimePoint{10}, 1, "/a", TimePoint{10}));
  events.push_back(make_dds_write(TimePoint{20}, 1, "/a", TimePoint{20}));
  sort_by_time(events);
  EXPECT_EQ(events[0].time, TimePoint{10});
  const auto pid1 = filter_by_pid(events, 1);
  EXPECT_EQ(pid1.size(), 2u);
}

TEST(SerializeTest, JsonlRoundTripsEveryEventType) {
  EventVector events;
  events.push_back(make_node_event(TimePoint{1}, 10, "node_a"));
  events.push_back(make_callback_start(TimePoint{2}, 10, CallbackKind::Timer));
  events.push_back(make_timer_call(TimePoint{3}, 10, 0xabc));
  events.push_back(sample_take());
  events.push_back(make_take_type_erased(TimePoint{5}, 10, true));
  events.push_back(make_sync_operator(TimePoint{6}, 10, 0xdef));
  events.push_back(make_callback_end(TimePoint{7}, 10, CallbackKind::Timer));
  events.push_back(make_dds_write(TimePoint{8}, 10, "/topic#anno", TimePoint{8}));
  events.push_back(make_sched_switch(
      TimePoint{9}, SchedSwitchInfo{2, 10, 5, ThreadRunState::Sleeping, 11, 0}));
  events.push_back(make_sched_wakeup(TimePoint{10}, SchedWakeupInfo{10, 3}));

  const auto restored = events_from_jsonl(to_jsonl(events));
  ASSERT_EQ(restored.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(restored[i], events[i]) << "event " << i;
  }
}

TEST(SerializeTest, FileRoundTrip) {
  const std::string path = "/tmp/tetra_trace_test.jsonl";
  EventVector events{sample_take(), make_node_event(TimePoint{2}, 3, "x")};
  write_jsonl_file(path, events);
  const auto restored = read_jsonl_file(path);
  EXPECT_EQ(restored, events);
  std::filesystem::remove(path);
}

TEST(SerializeTest, MissingFileThrows) {
  EXPECT_THROW(read_jsonl_file("/nonexistent/nope.jsonl"), std::runtime_error);
}

TEST(SerializeTest, ParsesCrlfLineEndings) {
  // Traces shuttled through Windows tooling or `git core.autocrlf` arrive
  // with \r\n terminators; the parser must not feed the \r into the JSON.
  EventVector events{sample_take(), make_node_event(TimePoint{2}, 3, "x")};
  std::string text = to_jsonl(events);
  std::string crlf;
  for (const char c : text) {
    if (c == '\n') crlf += '\r';
    crlf += c;
  }
  EXPECT_EQ(events_from_jsonl(crlf), events);
}

TEST(SerializeTest, ParsesMixedLineEndings) {
  // One producer per line: \n and \r\n may interleave in a concatenated
  // stream. A lone \r must survive inside string values, too.
  EventVector events;
  events.push_back(make_node_event(TimePoint{1}, 10, "node_a"));
  events.push_back(make_dds_write(TimePoint{2}, 10, "/t", TimePoint{2}));
  events.push_back(sample_take());
  const std::string lines = to_jsonl(events);
  const std::size_t first_break = lines.find('\n');
  std::string mixed = lines.substr(0, first_break) + "\r\n" +
                      lines.substr(first_break + 1);
  EXPECT_EQ(events_from_jsonl(mixed), events);
}

TEST(SerializeTest, RejectsOutOfRangeTakeKind) {
  const std::string line = to_jsonl(EventVector{sample_take()});
  std::string bad = line;
  const std::size_t pos = bad.find("\"take_kind\":1");
  ASSERT_NE(pos, std::string::npos);
  bad.replace(pos, 13, "\"take_kind\":7");
  EXPECT_THROW(events_from_jsonl(bad), std::invalid_argument);
}

TEST(SerializeTest, RejectsMalformedPrevState) {
  const TraceEvent sw = make_sched_switch(
      TimePoint{9}, SchedSwitchInfo{2, 10, 5, ThreadRunState::Sleeping, 11, 0});
  const std::string line = to_jsonl(EventVector{sw});
  for (const std::string bad_state : {"Z", "", "RS"}) {
    std::string bad = line;
    const std::size_t pos = bad.find("\"prev_state\":\"S\"");
    ASSERT_NE(pos, std::string::npos);
    bad.replace(pos, 16, "\"prev_state\":\"" + bad_state + "\"");
    EXPECT_THROW(events_from_jsonl(bad), std::invalid_argument)
        << "prev_state '" << bad_state << "' must be rejected";
  }
}

TEST(SerializeTest, FootprintCountsCompactBytes) {
  EventVector events{sample_take()};
  const std::size_t bytes = binary_footprint_bytes(events);
  EXPECT_GT(bytes, 14u);
  EXPECT_LT(bytes, 200u);
}

TEST(TraceBufferTest, DropsWhenFull) {
  TraceBuffer buffer(2);
  EXPECT_TRUE(buffer.push(sample_take()));
  EXPECT_TRUE(buffer.push(sample_take()));
  EXPECT_FALSE(buffer.push(sample_take()));
  EXPECT_EQ(buffer.dropped(), 1u);
  EXPECT_TRUE(buffer.full());
  const auto drained = buffer.drain();
  EXPECT_EQ(drained.size(), 2u);
  EXPECT_EQ(buffer.size(), 0u);
  EXPECT_TRUE(buffer.push(sample_take()));
}

TEST(TraceBufferTest, ClearResetsDropCounter) {
  TraceBuffer buffer(1);
  EXPECT_TRUE(buffer.push(sample_take()));
  EXPECT_FALSE(buffer.push(sample_take()));
  EXPECT_EQ(buffer.dropped(), 1u);
  buffer.clear();
  // A cleared buffer starts a fresh accounting period: stale drop counts
  // must not leak into the next capture window.
  EXPECT_EQ(buffer.dropped(), 0u);
  EXPECT_EQ(buffer.size(), 0u);
  EXPECT_TRUE(buffer.push(sample_take()));
  EXPECT_EQ(buffer.dropped(), 0u);
}

TEST(MergeTest, MergeSortedInterleaves) {
  EventVector a{make_dds_write(TimePoint{10}, 1, "/a", TimePoint{10}),
                make_dds_write(TimePoint{30}, 1, "/a", TimePoint{30})};
  EventVector b{make_dds_write(TimePoint{20}, 2, "/b", TimePoint{20})};
  const auto merged = merge_sorted({a, b});
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].time, TimePoint{10});
  EXPECT_EQ(merged[1].time, TimePoint{20});
  EXPECT_EQ(merged[2].time, TimePoint{30});
}

TEST(MergeTest, MergeSortedTieKeepsSourceOrder) {
  EventVector a{make_dds_write(TimePoint{10}, 1, "/a", TimePoint{10})};
  EventVector b{make_dds_write(TimePoint{10}, 2, "/b", TimePoint{10})};
  const auto merged = merge_sorted({a, b});
  EXPECT_EQ(merged[0].pid, 1);
  EXPECT_EQ(merged[1].pid, 2);
}

TEST(MergeTest, ShiftTimesMovesSourceTimestamps) {
  EventVector events{sample_take()};
  const auto shifted = shift_times(events, Duration::ns(1000));
  EXPECT_EQ(shifted[0].time, TimePoint{1123});
  EXPECT_EQ(shifted[0].as<TakeInfo>().src_ts, TimePoint{1100});
}

TEST(DatabaseTest, StoreAndMergeRuns) {
  TraceDatabase db;
  db.store({"run-1", 0},
           {make_dds_write(TimePoint{10}, 1, "/a", TimePoint{10})}, "city");
  db.store({"run-1", 1},
           {make_dds_write(TimePoint{20}, 1, "/a", TimePoint{20})}, "city");
  db.store({"run-2", 0},
           {make_dds_write(TimePoint{5}, 2, "/b", TimePoint{5})}, "highway");
  EXPECT_EQ(db.segment_count(), 3u);
  EXPECT_EQ(db.runs().size(), 2u);
  EXPECT_EQ(db.merged_run("run-1").size(), 2u);
  EXPECT_EQ(db.merged_all().size(), 3u);
  EXPECT_EQ(db.merged_all()[0].time, TimePoint{5});
  EXPECT_EQ(db.runs_for_mode("city"), (std::vector<std::string>{"run-1"}));
  EXPECT_THROW(db.get({"run-9", 0}), std::out_of_range);
}

TEST(DatabaseTest, DirectoryRoundTrip) {
  const std::string dir = "/tmp/tetra_db_test";
  std::filesystem::remove_all(dir);
  TraceDatabase db;
  db.store({"run-1", 0}, {sample_take()}, "city");
  db.store({"run-2", 0}, {make_node_event(TimePoint{1}, 7, "n")}, "");
  db.save_to_directory(dir);
  const auto restored = TraceDatabase::load_from_directory(dir);
  EXPECT_EQ(restored.segment_count(), 2u);
  EXPECT_EQ(restored.get({"run-1", 0})[0], sample_take());
  EXPECT_EQ(restored.runs_for_mode("city"),
            (std::vector<std::string>{"run-1"}));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace tetra::trace
